// Reproduces Figure 8 (microbenchmark fail-over throughput under compute
// and memory faults) and §6.4 post-failure throughput: with Pandora a
// compute crash drops throughput to roughly the surviving share (not
// zero), and reusing the freed resources restores the pre-failure level;
// a memory crash briefly stops the whole KVS for reconfiguration.

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

workloads::DriverResult RunFailover(bool crash_compute, bool reuse,
                                    bool crash_memory,
                                    uint64_t duration_ms) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 20'000;
  micro_config.write_percent = 50;
  workloads::MicroWorkload workload(micro_config);

  cluster::ClusterConfig cluster_config = PaperTestbed();
  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  rm.memory_reconfig_us = 50'000;  // Visible stop-the-world blip.
  Testbed testbed(cluster_config, rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 128;
  driver_config.duration_ms = duration_ms;
  driver_config.bucket_ms = duration_ms / 12;
  driver_config.pace_us = 4000;
  auto driver = testbed.MakeDriver(driver_config);

  if (crash_compute) {
    driver->AddFault(
        {workloads::FaultEvent::Kind::kComputeCrash, duration_ms / 3, 1});
    if (reuse) {
      driver->AddFault({workloads::FaultEvent::Kind::kComputeRestart,
                        duration_ms / 3 + duration_ms / 12, 1});
    }
  }
  if (crash_memory) {
    driver->AddFault(
        {workloads::FaultEvent::Kind::kMemoryCrash, duration_ms / 3, 0});
  }
  return driver->Run();
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader(
      "Microbenchmark fail-over throughput",
      "Figure 8 + §6.4: compute fault drops to ~the surviving share and "
      "recovers; with resource reuse it returns to pre-failure level; "
      "memory fault briefly stops the KVS for reconfiguration");

  const uint64_t duration_ms = Scaled(3000);
  const uint64_t bucket_ms = duration_ms / 12;

  const workloads::DriverResult baseline =
      RunFailover(false, false, false, duration_ms);
  PrintTimeline("no failure", baseline.timeline_mtps, bucket_ms);

  const workloads::DriverResult no_reuse =
      RunFailover(true, false, false, duration_ms);
  PrintTimeline("compute fault, no reuse", no_reuse.timeline_mtps,
                bucket_ms);

  const workloads::DriverResult reuse =
      RunFailover(true, true, false, duration_ms);
  PrintTimeline("compute fault, reuse", reuse.timeline_mtps, bucket_ms);

  const workloads::DriverResult memory =
      RunFailover(false, false, true, duration_ms);
  PrintTimeline("memory fault", memory.timeline_mtps, bucket_ms);

  PrintRow("steady-state average", baseline.mtps, "MTps");
  PrintRow("compute-fault (no reuse) average", no_reuse.mtps, "MTps");
  PrintRow("compute-fault (reuse) average", reuse.mtps, "MTps");
  PrintRow("memory-fault average", memory.mtps, "MTps");
  PrintLatencyRows("steady-state", baseline);
  PrintLatencyRows("compute-fault (reuse)", reuse);
  PrintLatencyRows("memory-fault", memory);
  return 0;
}

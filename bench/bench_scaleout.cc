// Scale-out scaling matrix: throughput, abort rate, RTTs/committed, and
// placement-cache hit rate across {1,2} driver threads x {4,8,16,32}
// memory nodes at replication 3, plus Zipf-skew and hot-key-storm cells.
// The companion of the placement fast path: sharding a transaction's
// working set over many memory servers is only free if the per-op
// placement lookup stays allocation-free and O(1), so this bench tracks
// the cache's hit rate next to every throughput number it could affect.
//
// The simulator charges per-verb round trips, not per-node contention, so
// adding memory nodes must NOT cost throughput in the uniform read-heavy
// cells — the gate checks the 4 -> 8 node step stays monotone within
// noise. Skewed cells (Zipf 0.99, hot-key storm) concentrate the key
// space, which is where the direct-mapped placement cache earns its keep.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/micro.h"
#include "workloads/smallbank.h"
#include "workloads/tatp.h"

namespace pandora {
namespace bench {
namespace {

constexpr uint32_t kCoordinators = 128;
constexpr uint32_t kFibersPerThread = 8;
constexpr uint32_t kReplication = 3;
constexpr uint32_t kReadHeavyWritePercent = 5;
constexpr uint32_t kWriteHeavyWritePercent = 50;

struct Cell {
  std::string label;
  uint32_t threads = 2;
  uint32_t memory_nodes = 8;
  uint64_t num_keys = 0;  // 0 = the sweep default.
  uint64_t hot_keys = 0;
  uint32_t write_percent = kReadHeavyWritePercent;
  double zipf_theta = 0;
};

uint64_t SweepKeys() { return Scaled(1'000'000); }

cluster::ClusterConfig ScaleoutCluster(uint32_t memory_nodes) {
  cluster::ClusterConfig config;
  config.memory_nodes = memory_nodes;
  config.compute_nodes = 2;
  config.replication = kReplication;
  config.net.one_way_ns = 1500;   // Low-us RDMA round trips (PaperTestbed).
  config.net.per_byte_ns = 0.08;  // 100 Gbps.
  // Micro write-sets are 4 objects: a slim log keeps the 32-node cells
  // from reserving PaperTestbed's ~140 MB of log per memory server.
  config.log.slots_per_coordinator = 32;
  config.log.slot_bytes = 1024;
  // Headroom above the 128 live coordinators: ids retire (never reassigned
  // until recycled) when FD false positives fence a saturated compute node
  // mid-cell, and a respawn can need a fresh batch before the recycling
  // scan returns the old ones.
  config.log.max_coordinators = 384;
  return config;
}

workloads::DriverResult RunCell(const Cell& cell) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = cell.num_keys > 0 ? cell.num_keys : SweepKeys();
  micro_config.hot_keys = cell.hot_keys;
  micro_config.write_percent = cell.write_percent;
  micro_config.zipf_theta = cell.zipf_theta;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  Testbed testbed(ScaleoutCluster(cell.memory_nodes), rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = cell.threads;
  driver_config.coordinators = kCoordinators;
  driver_config.duration_ms = Scaled(1200);
  driver_config.bucket_ms = Scaled(1200) / 6;
  driver_config.fibers_per_thread = kFibersPerThread;
  driver_config.txn.mode = txn::ProtocolMode::kPandora;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run();
}

// OLTP suite cells: the same scaling step (4 -> 8 memory nodes at 2
// threads) measured on SmallBank's hot-account write mix and TATP's
// read-mostly mix, so the matrix covers real transaction shapes, not just
// the micro workload's uniform point ops.
workloads::DriverResult RunOltpCell(const std::string& suite,
                                    uint32_t memory_nodes) {
  std::unique_ptr<workloads::Workload> workload;
  if (suite == "smallbank") {
    workloads::SmallBankConfig config;
    config.num_accounts = Scaled(10'000);
    config.hot_accounts = Scaled(1000);
    workload = std::make_unique<workloads::SmallBankWorkload>(config);
  } else {
    workloads::TatpConfig config;
    config.subscribers = Scaled(10'000);
    workload = std::make_unique<workloads::TatpWorkload>(config);
  }

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  Testbed testbed(ScaleoutCluster(memory_nodes), rm, workload.get());

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = kCoordinators;
  driver_config.duration_ms = Scaled(1200);
  driver_config.bucket_ms = Scaled(1200) / 6;
  driver_config.fibers_per_thread = kFibersPerThread;
  driver_config.txn.mode = txn::ProtocolMode::kPandora;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run();
}

double HitRate(const workloads::DriverResult& result) {
  const double lookups =
      static_cast<double>(result.totals.placement_hits) +
      static_cast<double>(result.totals.placement_misses);
  return lookups > 0
             ? static_cast<double>(result.totals.placement_hits) / lookups
             : 0.0;
}

double AbortRate(const workloads::DriverResult& result) {
  const double attempts =
      static_cast<double>(result.committed + result.aborted);
  return attempts > 0 ? static_cast<double>(result.aborted) / attempts
                      : 0.0;
}

double RttsPerCommitted(const workloads::DriverResult& result) {
  const double committed = result.totals.committed > 0
                               ? static_cast<double>(result.totals.committed)
                               : 1.0;
  return static_cast<double>(result.totals.execution_rtts +
                             result.totals.commit_rtts) /
         committed;
}

struct Gate {
  std::vector<std::string> failures;

  void Check(bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  }
};

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader(
      "Scale-out scaling matrix: threads x memory nodes at replication 3",
      "SS3.2.5 sharded placement: consistent-hash replica sets resolved "
      "through the per-coordinator placement cache; throughput must not "
      "degrade as the ring grows");

  // The scaling matrix proper: uniform read-heavy cells.
  std::vector<Cell> cells;
  for (const uint32_t threads : {1u, 2u}) {
    for (const uint32_t memory_nodes : {4u, 8u, 16u, 32u}) {
      Cell cell;
      cell.label = "scale.t" + std::to_string(threads) + ".m" +
                   std::to_string(memory_nodes);
      cell.threads = threads;
      cell.memory_nodes = memory_nodes;
      cells.push_back(cell);
    }
  }
  // Skew sweep on the 2-thread / 8-node shape: Zipf theta x write mix.
  for (const double theta : {0.5, 0.9, 0.99}) {
    for (const bool write_heavy : {false, true}) {
      Cell cell;
      char theta_label[16];
      std::snprintf(theta_label, sizeof(theta_label), "theta0p%02d",
                    static_cast<int>(theta * 100 + 0.5));
      cell.label = std::string("zipf.") + theta_label +
                   (write_heavy ? ".write" : ".read");
      cell.zipf_theta = theta;
      cell.write_percent = write_heavy ? kWriteHeavyWritePercent
                                       : kReadHeavyWritePercent;
      cells.push_back(cell);
    }
  }
  // Hot-key storm: every coordinator hammers 64 keys with pure writes —
  // worst case for lock conflicts, best case for the placement cache.
  {
    Cell cell;
    cell.label = "storm.hot64";
    cell.hot_keys = 64;
    cell.write_percent = 100;
    cells.push_back(cell);
  }

  BenchJson json("scaleout");
  json.SetText("git_sha", GitSha());
  // Config block: everything needed to re-run the matrix.
  json.Set("config.replication", kReplication);
  json.Set("config.coordinators", kCoordinators);
  json.Set("config.fibers_per_thread", kFibersPerThread);
  json.Set("config.num_keys", static_cast<double>(SweepKeys()));
  json.Set("config.duration_ms", static_cast<double>(Scaled(1200)));
  json.Set("config.read_heavy_write_percent", kReadHeavyWritePercent);
  json.Set("config.write_heavy_write_percent", kWriteHeavyWritePercent);
  json.Set("config.fast_mode", FastMode() ? 1 : 0);

  std::printf("%-22s %10s %9s %9s %9s %9s\n", "cell", "mtps", "abort",
              "rtts/txn", "hit_rate", "p99_us");

  double mtps_t2_m4 = 0;
  double mtps_t2_m8 = 0;
  double hit_uniform_m8 = 0;
  double hit_zipf99_read = 0;
  double hit_storm = 0;
  for (const Cell& cell : cells) {
    const workloads::DriverResult result = RunCell(cell);
    const double hit_rate = HitRate(result);
    std::printf("%-22s %10.4f %9.4f %9.2f %9.4f %9.1f\n",
                cell.label.c_str(), result.mtps, AbortRate(result),
                RttsPerCommitted(result), hit_rate,
                static_cast<double>(result.latency_p99_ns) / 1000.0);
    AddDriverMetrics(&json, cell.label, result);
    json.Set(cell.label + ".abort_rate", AbortRate(result));
    json.Set(cell.label + ".placement_hit_rate", hit_rate);
    json.Set(cell.label + ".rtts_per_committed", RttsPerCommitted(result));
    json.Set(cell.label + ".memory_nodes", cell.memory_nodes);
    json.Set(cell.label + ".threads", cell.threads);
    json.Set(cell.label + ".zipf_theta", cell.zipf_theta);
    json.Set(cell.label + ".write_percent", cell.write_percent);
    if (cell.label == "scale.t2.m4") mtps_t2_m4 = result.mtps;
    if (cell.label == "scale.t2.m8") {
      mtps_t2_m8 = result.mtps;
      hit_uniform_m8 = hit_rate;
    }
    if (cell.label == "zipf.theta0p99.read") hit_zipf99_read = hit_rate;
    if (cell.label == "storm.hot64") hit_storm = hit_rate;
  }

  // The scaling ratio compares two cells measured minutes apart on a
  // shared host, so drift can swamp the real (flat) node-count effect.
  // As bench_steady_state does for the PILL-overhead bar, average
  // interleaved repeats — m8 m4 m4 m8 continues the matrix's m4 m8 — so
  // linear drift cancels across the pair.
  {
    double m4_sum = mtps_t2_m4;
    double m8_sum = mtps_t2_m8;
    const bool repeat_is_m8[] = {true, false, false, true};
    for (const bool is_m8 : repeat_is_m8) {
      Cell cell;
      cell.label = is_m8 ? "scale.t2.m8" : "scale.t2.m4";
      cell.threads = 2;
      cell.memory_nodes = is_m8 ? 8 : 4;
      (is_m8 ? m8_sum : m4_sum) += RunCell(cell).mtps;
    }
    mtps_t2_m4 = m4_sum / 3.0;
    mtps_t2_m8 = m8_sum / 3.0;
  }
  json.Set("scale.t2.m4.mtps_avg3", mtps_t2_m4);
  json.Set("scale.t2.m8.mtps_avg3", mtps_t2_m8);
  json.Set("scaling_m8_over_m4_t2",
           mtps_t2_m4 > 0 ? mtps_t2_m8 / mtps_t2_m4 : 0.0);

  // Per-suite OLTP cells, interleaved (m4 m8 m8 m4 m4 m8 per suite) so
  // host drift cancels across the averaged triple, as above. Short
  // fast-mode cells are noisy enough that a single bad sample can fake a
  // 30% scaling cliff; three samples per shape keep the gate honest.
  struct SuiteRatio {
    std::string suite;
    double ratio = 0;
  };
  std::vector<SuiteRatio> suite_ratios;
  for (const std::string suite : {"smallbank", "tatp"}) {
    double m4_mtps = 0;
    double m8_mtps = 0;
    double m4_abort = 0;
    double m8_abort = 0;
    double m4_hit = 0;
    double m8_hit = 0;
    const bool pass_is_m8[] = {false, true, true, false, false, true};
    for (const bool is_m8 : pass_is_m8) {
      const workloads::DriverResult result =
          RunOltpCell(suite, is_m8 ? 8 : 4);
      (is_m8 ? m8_mtps : m4_mtps) += result.mtps / 3.0;
      (is_m8 ? m8_abort : m4_abort) += AbortRate(result) / 3.0;
      (is_m8 ? m8_hit : m4_hit) += HitRate(result) / 3.0;
      const std::string label =
          suite + ".t2.m" + std::string(is_m8 ? "8" : "4");
      // Last pass of each shape wins the per-cell detail metrics; the
      // averaged triple is recorded separately below.
      AddDriverMetrics(&json, label, result);
      json.Set(label + ".abort_rate", AbortRate(result));
      json.Set(label + ".placement_hit_rate", HitRate(result));
      json.Set(label + ".rtts_per_committed", RttsPerCommitted(result));
      json.Set(label + ".memory_nodes", is_m8 ? 8 : 4);
      json.Set(label + ".threads", 2);
    }
    const double ratio = m4_mtps > 0 ? m8_mtps / m4_mtps : 0.0;
    suite_ratios.push_back({suite, ratio});
    json.Set(suite + ".t2.m4.mtps_avg3", m4_mtps);
    json.Set(suite + ".t2.m8.mtps_avg3", m8_mtps);
    json.Set(suite + ".scaling_m8_over_m4_t2", ratio);
    std::printf("%-22s %10.4f %9.4f %9s %9.4f\n",
                (suite + ".t2.m4").c_str(), m4_mtps, m4_abort, "-", m4_hit);
    std::printf("%-22s %10.4f %9.4f %9s %9.4f\n",
                (suite + ".t2.m8").c_str(), m8_mtps, m8_abort, "-", m8_hit);
    PrintRow(suite + " scaling mtps(m8)/mtps(m4)", ratio, "x");
  }
  json.Write();

  PrintRow("t2 scaling mtps(m8)/mtps(m4)",
           mtps_t2_m4 > 0 ? mtps_t2_m8 / mtps_t2_m4 : 0.0, "x");
  PrintRow("placement hit rate, uniform 1M keys", hit_uniform_m8, "");
  PrintRow("placement hit rate, Zipf 0.99 read-heavy", hit_zipf99_read, "");
  PrintRow("placement hit rate, hot-key storm", hit_storm, "");

  const char* gate_env = std::getenv("PANDORA_BENCH_GATE");
  if (gate_env == nullptr || gate_env[0] != '1') return 0;

  const bool fast = FastMode();
  // The simulator charges per-verb RTTs, so growing the ring must not
  // cost throughput: mtps is monotone non-decreasing 4 -> 8 nodes within
  // noise. Quarter-length fast runs are noisier; loosen accordingly.
  const double min_scaling_ratio = fast ? 0.80 : 0.90;
  Gate gate;
  gate.Check(mtps_t2_m4 > 0 && mtps_t2_m8 / mtps_t2_m4 >= min_scaling_ratio,
             "scaling_m8_over_m4_t2 " +
                 std::to_string(mtps_t2_m4 > 0 ? mtps_t2_m8 / mtps_t2_m4
                                               : 0.0) +
                 " < " + std::to_string(min_scaling_ratio));
  // Skew concentrates lookups into the 1024-entry direct-mapped cache:
  // the hit-rate ordering uniform < zipf0.99 < storm is structural.
  // Quarter-length fast runs spend a larger fraction warming the cache,
  // which lands the storm cell right on the 0.90 bar — same slack there
  // as the scaling ratio gets.
  const double min_storm_hit = fast ? 0.88 : 0.90;
  gate.Check(hit_storm >= min_storm_hit,
             "storm.hot64 placement hit rate " + std::to_string(hit_storm) +
                 " < " + std::to_string(min_storm_hit));
  gate.Check(hit_zipf99_read >= hit_uniform_m8,
             "zipf 0.99 hit rate " + std::to_string(hit_zipf99_read) +
                 " below uniform " + std::to_string(hit_uniform_m8));
  // The same monotonicity check per OLTP suite: growing the ring must not
  // cost SmallBank or TATP throughput either. The suite cells run shorter
  // transactions against far smaller key spaces than the micro sweep, so
  // their averaged triple still wobbles a few percent run to run — the bar
  // is set to catch a real scaling cliff, not that wobble.
  const double min_suite_ratio = fast ? 0.78 : 0.85;
  for (const SuiteRatio& suite : suite_ratios) {
    gate.Check(suite.ratio >= min_suite_ratio,
               suite.suite + " scaling_m8_over_m4_t2 " +
                   std::to_string(suite.ratio) + " < " +
                   std::to_string(min_suite_ratio));
  }

  if (!gate.failures.empty()) {
    for (const std::string& failure : gate.failures) {
      std::fprintf(stderr, "BENCH GATE VIOLATION: %s\n", failure.c_str());
    }
    return 1;
  }
  std::printf("bench gate: scaling matrix bars met%s\n",
              fast ? " (fast-mode thresholds)" : "");
  return 0;
}

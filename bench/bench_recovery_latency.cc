// Reproduces Table 2 (Pandora recovery latency vs. outstanding
// coordinators per compute node), the §6.1 Traditional Logging Scheme
// recovery latencies, and the §6.1 Baseline full-KVS scan cost (~5 s per
// 1M keys on the paper's testbed).

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "recovery/recovery_coordinator.h"
#include "txn/coordinator.h"
#include "workloads/micro.h"
#include "workloads/smallbank.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"

namespace pandora {
namespace bench {
namespace {

// Crash hook that fires once at the given protocol point.
class CrashOnce : public txn::CrashHook {
 public:
  explicit CrashOnce(txn::CrashPoint point) : point_(point) {}
  bool MaybeCrash(txn::CrashPoint point) override {
    if (fired_ || point != point_) return false;
    fired_ = true;
    return true;
  }

 private:
  txn::CrashPoint point_;
  bool fired_ = false;
};

std::unique_ptr<workloads::Workload> MakeWorkload(const std::string& name) {
  if (name == "TPC-C") {
    workloads::TpccConfig config;
    config.warehouses = 1;
    config.districts_per_warehouse = 4;
    config.customers_per_district = 100;
    config.items = 200;
    config.max_orders_per_district = 8192;
    return std::make_unique<workloads::TpccWorkload>(config);
  }
  if (name == "SmallBank") {
    workloads::SmallBankConfig config;
    config.num_accounts = 5000;
    config.hot_accounts = 0;  // Uniform: staged txns must not conflict.
    return std::make_unique<workloads::SmallBankWorkload>(config);
  }
  if (name == "TATP") {
    workloads::TatpConfig config;
    config.subscribers = 5000;
    return std::make_unique<workloads::TatpWorkload>(config);
  }
  workloads::MicroConfig config;
  config.num_keys = 20'000;
  config.write_percent = 100;  // The paper's 100%-write microbenchmark.
  return std::make_unique<workloads::MicroWorkload>(config);
}

// Stages `coordinators` in-flight transactions on compute node 0 (each
// crashed right after its decision point, so logs and locks are live in
// memory), then times the recovery protocol for all of them.
void MeasureRecovery(const std::string& workload_name,
                     txn::ProtocolMode mode,
                     const std::vector<uint32_t>& coordinator_counts) {
  std::printf("%-12s", workload_name.c_str());
  for (const uint32_t coordinators : coordinator_counts) {
    auto workload = MakeWorkload(workload_name);
    recovery::RecoveryManagerConfig rm;
    rm.mode = mode;
    rm.fd = PaperFd();
    Testbed testbed(PaperTestbed(), rm, workload.get(),
                    /*start_fd=*/false);
    cluster::Cluster& cluster = testbed.cluster();
    const rdma::NodeId victim = cluster.compute_node_id(0);

    txn::TxnConfig txn_config;
    txn_config.mode = mode;
    Random rng(42);
    std::vector<uint16_t> all_ids;
    std::vector<std::unique_ptr<txn::Coordinator>> coords;
    std::vector<std::unique_ptr<CrashOnce>> hooks;
    for (uint32_t c = 0; c < coordinators; ++c) {
      std::vector<uint16_t> ids;
      PANDORA_CHECK(testbed.manager()
                        .RegisterComputeNode(cluster.compute(0), 1, &ids)
                        .ok());
      all_ids.push_back(ids[0]);
      coords.push_back(std::make_unique<txn::Coordinator>(
          &cluster, cluster.compute(0), ids[0], txn_config,
          &testbed.gate()));
      hooks.push_back(std::make_unique<CrashOnce>(
          txn::CrashPoint::kAfterValidation));
      coords.back()->set_crash_hook(hooks.back().get());
      // Stage: the transaction dies right after its logs are durable and
      // validation passed, leaving a logged stray transaction. Read-only
      // profiles leave nothing, as in the real mixed workloads.
      workload->RunTransaction(coords.back().get(), &rng);
      // Next coordinator on the same node needs the fabric back.
      cluster.fabric().ResumeNode(victim);
    }

    cluster.fabric().HaltNode(victim);
    PANDORA_CHECK(testbed.manager()
                      .RecoverComputeFailure(victim, all_ids)
                      .ok());
    const recovery::RecoveryStats stats =
        testbed.manager().last_recovery_stats();
    std::printf(" %9.0f", static_cast<double>(stats.log_recovery_ns) /
                              1000.0);
    std::fflush(stdout);
  }
  std::printf("   us\n");
}

void ScanRecoverySection() {
  PrintHeader("Baseline scan-based stray-lock recovery",
              "§6.1 (\"~5 seconds per 1 million keys\": latency grows "
              "linearly with KVS size and blocks the whole system)");
  std::printf("%-24s %14s %16s\n", "keys in KVS", "scan latency",
              "per 1M keys");
  for (const uint64_t keys :
       {Scaled(100'000), Scaled(200'000), Scaled(400'000)}) {
    workloads::MicroConfig config;
    config.num_keys = keys;
    workloads::MicroWorkload workload(config);
    recovery::RecoveryManagerConfig rm;
    rm.mode = txn::ProtocolMode::kFordBaseline;
    Testbed testbed(PaperTestbed(), rm, &workload, /*start_fd=*/false);

    recovery::RecoveryCoordinator rc(&testbed.cluster());
    recovery::RecoveryStats stats;
    PANDORA_CHECK(rc.ScanAndReleaseStrayLocks({1}, &stats).ok());
    const double seconds = static_cast<double>(stats.scan_ns) / 1e9;
    std::printf("%-24lu %12.3f s %13.3f s\n",
                static_cast<unsigned long>(keys), seconds,
                seconds * 1e6 / static_cast<double>(keys));
  }
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  std::vector<uint32_t> counts = {1, 8, 64, 128, 256, 512};
  if (FastMode()) counts = {1, 8, 64};

  PrintHeader("Pandora recovery latency (log-recovery step)",
              "Table 2: latency in microseconds while increasing the "
              "number of outstanding coordinators per compute node");
  std::printf("%-12s", "Bench\\Coord.");
  for (const uint32_t c : counts) std::printf(" %9u", c);
  std::printf("\n");
  for (const char* name : {"TPC-C", "SmallBank", "TATP", "MicroBench"}) {
    MeasureRecovery(name, txn::ProtocolMode::kPandora, counts);
  }

  PrintHeader("Traditional lock-logging scheme recovery latency",
              "§6.1: recovers locks from lock-intent logs without "
              "scanning, but ~2x slower than Pandora at high coordinator "
              "counts");
  std::printf("%-12s", "Bench\\Coord.");
  for (const uint32_t c : counts) std::printf(" %9u", c);
  std::printf("\n");
  for (const char* name : {"TPC-C", "SmallBank", "TATP", "MicroBench"}) {
    MeasureRecovery(name, txn::ProtocolMode::kTraditionalLogging, counts);
  }

  ScanRecoverySection();
  return 0;
}

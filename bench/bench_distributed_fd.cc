// Reproduces §6.4 "Distributed FD" (Figure 4): end-to-end recovery time —
// from the moment the compute node dies to the stray-lock notification —
// with the standalone failure detector vs a 3-replica quorum FD (paper:
// still under 20 ms with three ZooKeeper-managed replicas, orders of
// magnitude faster than the Baseline's scan).
//
// Measured under light load (one worker thread) so the heartbeat pumps run
// at the paper's 5 ms timeout without scheduler-induced false positives.

#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

double MeasureEndToEndMs(uint32_t fd_replicas,
                         uint64_t quorum_latency_us) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 10'000;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = PaperFd();  // The paper's 5 ms detection timeout.
  rm.fd.heartbeat_period_us = 500;
  rm.fd.replicas = fd_replicas;
  rm.fd.quorum_latency_us = quorum_latency_us;
  Testbed testbed(PaperTestbed(), rm, &workload);
  cluster::Cluster& cluster = testbed.cluster();
  const rdma::NodeId victim = cluster.compute_node_id(1);

  // Light background work on the victim so recovery has in-flight
  // transactions to clean up.
  workloads::DriverConfig driver_config;
  driver_config.threads = 1;
  driver_config.coordinators = 4;
  driver_config.duration_ms = Scaled(800);
  driver_config.pace_us = 2000;
  auto driver = testbed.MakeDriver(driver_config);
  std::thread run_thread([&driver] { driver->Run(); });

  // Let the run settle, then crash the victim and time crash -> recovery
  // completion (detection + link termination + log recovery +
  // notification).
  SleepForMicros(Scaled(800) * 1000 / 3);
  const uint64_t before = testbed.manager().recovery_count(victim);
  const uint64_t crash_ns = NowNanos();
  cluster.CrashComputeNode(victim);
  PANDORA_CHECK(testbed.manager().WaitForComputeRecovery(victim, 5'000'000,
                                                         before));
  const uint64_t recovered_ns = NowNanos();
  run_thread.join();
  return static_cast<double>(recovered_ns - crash_ns) / 1e6;
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("End-to-end recovery time: standalone vs distributed FD",
              "§6.4 \"Distributed FD\" (Figure 4): quorum detection adds "
              "a few ms; recovery stays well under the Baseline's "
              "multi-second scan");

  const double standalone = MeasureEndToEndMs(1, 0);
  PrintRow("standalone FD (crash -> notification)", standalone, "ms");
  const double distributed = MeasureEndToEndMs(3, 2000);
  PrintRow("3-replica quorum FD (crash -> notification)", distributed,
           "ms");
  PrintRow("paper's bound for the distributed FD", 20.0, "ms (<)");
  return 0;
}

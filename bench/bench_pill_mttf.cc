// Reproduces Figure 7: Pandora steady-state throughput while varying the
// mean time to failure (MTTF). Failures repeatedly crash-and-restore one
// of the two compute nodes; PILL's lock stealing keeps the overhead
// negligible even at absurdly low MTTFs (the paper: 0.912 / 0.901 / 0.911
// MTps at MTTF = 10s / 2s / 1s vs 0.911 without failures).

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

workloads::DriverResult RunWithMttf(uint64_t duration_ms,
                                    uint64_t mttf_ms) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 20'000;
  micro_config.write_percent = 50;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  Testbed testbed(PaperTestbed(), rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 128;
  driver_config.duration_ms = duration_ms;
  driver_config.bucket_ms = duration_ms / 10;
  driver_config.pace_us = 4000;
  auto driver = testbed.MakeDriver(driver_config);

  if (mttf_ms > 0) {
    // Crash one compute node every MTTF; restart it (fresh coordinators)
    // shortly after so half the fleet keeps cycling through failures.
    for (uint64_t at = mttf_ms; at + mttf_ms / 2 < duration_ms;
         at += mttf_ms) {
      driver->AddFault({workloads::FaultEvent::Kind::kComputeCrash, at, 1});
      driver->AddFault(
          {workloads::FaultEvent::Kind::kComputeRestart, at + mttf_ms / 2,
           1});
    }
  }
  return driver->Run();
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader(
      "PILL under failures: throughput vs mean time to failure",
      "Figure 7 + §6.2 \"PILL under failures\": stray-lock stealing "
      "amortizes to noise even at MTTF far below datacenter reality");

  const uint64_t duration_ms = Scaled(3000);
  // MTTFs scaled to the shortened run (the paper's 10s/2s/1s over 40s).
  struct Config {
    const char* label;
    uint64_t mttf_ms;
  };
  const Config configs[] = {
      {"no failures", 0},
      {"MTTF = duration/3", duration_ms / 3},
      {"MTTF = duration/6", duration_ms / 6},
      {"MTTF = duration/10", duration_ms / 10},
  };
  for (const Config& config : configs) {
    const workloads::DriverResult result =
        RunWithMttf(duration_ms, config.mttf_ms);
    PrintTimeline(config.label, result.timeline_mtps, duration_ms / 10);
    PrintRow(std::string(config.label) + " average", result.mtps, "MTps");
    PrintRow(std::string(config.label) + " locks stolen",
             static_cast<double>(result.totals.locks_stolen), "locks");
  }
  return 0;
}

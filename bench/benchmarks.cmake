# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains ONLY the experiment binaries — `for b in
# build/bench/*; do $b; done` must not trip over CMake bookkeeping.
add_library(pandora_bench_util STATIC bench/bench_util.cc)
target_link_libraries(pandora_bench_util PUBLIC pandora_workloads)
target_include_directories(pandora_bench_util PUBLIC ${PROJECT_SOURCE_DIR})

# One experiment binary per paper table/figure (see DESIGN.md's index).
function(pandora_add_bench name)
  add_executable(${name} bench/${name}.cc)
  target_link_libraries(${name} PRIVATE pandora_bench_util ${ARGN})
  set_target_properties(${name} PROPERTIES
                        RUNTIME_OUTPUT_DIRECTORY
                        "${CMAKE_BINARY_DIR}/bench")
endfunction()

pandora_add_bench(bench_litmus_validation pandora_litmus)   # Table 1
pandora_add_bench(bench_litmus_coverage pandora_litmus)     # §5 coverage
pandora_add_bench(bench_recovery_latency)                   # Table 2, §6.1
pandora_add_bench(bench_steady_state)                       # Figure 6
pandora_add_bench(bench_pill_mttf)                          # Figure 7
pandora_add_bench(bench_failover_micro)                     # Figure 8
pandora_add_bench(bench_failover_smallbank)                 # Figures 9, 12
pandora_add_bench(bench_failover_tatp)                      # Figure 10
pandora_add_bench(bench_failover_tpcc)                      # Figure 11
pandora_add_bench(bench_stall_sensitivity)                  # Figures 13-14
pandora_add_bench(bench_traditional_logging)                # §6.2.1
pandora_add_bench(bench_distributed_fd)                     # §6.4, Figure 4

# Micro-operation costs (google-benchmark).
add_executable(bench_micro_ops bench/bench_micro_ops.cc)
target_link_libraries(bench_micro_ops PRIVATE pandora_cluster
                      benchmark::benchmark)
set_target_properties(bench_micro_ops PROPERTIES
                      RUNTIME_OUTPUT_DIRECTORY "${CMAKE_BINARY_DIR}/bench")
pandora_add_bench(bench_ablation)                          # design ablations
pandora_add_bench(bench_scaleout)                          # scaling matrix
pandora_add_bench(bench_elasticity)                        # live join/drain
pandora_add_bench(bench_execution_pipeline)                # §3.1.1 pipelining
pandora_add_bench(bench_fiber_scaling)                     # fibers/thread sweep

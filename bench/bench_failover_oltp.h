#ifndef PANDORA_BENCH_BENCH_FAILOVER_OLTP_H_
#define PANDORA_BENCH_BENCH_FAILOVER_OLTP_H_

// Shared harness for the per-workload fail-over figures (Figures 9-11) and
// the low-contention variant (Figure 12): run the OLTP workload, crash one
// compute node mid-run (blue line), and in a second run crash one memory
// node (yellow line). Pandora keeps serving through the compute fault; the
// memory fault stops the KVS briefly for reconfiguration and recovers.

#include <functional>
#include <memory>

#include "bench/bench_util.h"

namespace pandora {
namespace bench {

using WorkloadFactory = std::function<std::unique_ptr<workloads::Workload>()>;

/// Runs the three scenarios (steady / compute fault / memory fault) and
/// prints the paper-style series. `coordinators` models contention
/// (Figure 12 halves it).
inline void RunOltpFailover(const WorkloadFactory& factory,
                            uint32_t coordinators, uint64_t pace_us) {
  const uint64_t duration_ms = Scaled(2400);
  const uint64_t bucket_ms = duration_ms / 12;

  auto run = [&](bool compute_fault, bool memory_fault) {
    auto workload = factory();
    recovery::RecoveryManagerConfig rm;
    rm.mode = txn::ProtocolMode::kPandora;
    rm.fd = BenchFd();
    rm.memory_reconfig_us = 50'000;
    Testbed testbed(PaperTestbed(), rm, workload.get());

    workloads::DriverConfig driver_config;
    driver_config.threads = 2;
    driver_config.coordinators = coordinators;
    driver_config.duration_ms = duration_ms;
    driver_config.bucket_ms = bucket_ms;
    driver_config.pace_us = pace_us;
    auto driver = testbed.MakeDriver(driver_config);
    if (compute_fault) {
      driver->AddFault(
          {workloads::FaultEvent::Kind::kComputeCrash, duration_ms / 3, 1});
      driver->AddFault({workloads::FaultEvent::Kind::kComputeRestart,
                        duration_ms / 3 + bucket_ms, 1});
    }
    if (memory_fault) {
      driver->AddFault(
          {workloads::FaultEvent::Kind::kMemoryCrash, duration_ms / 3, 0});
    }
    return driver->Run();
  };

  const workloads::DriverResult steady = run(false, false);
  const workloads::DriverResult compute_fault = run(true, false);
  const workloads::DriverResult memory_fault = run(false, true);

  PrintTimeline("no failure", steady.timeline_mtps, bucket_ms);
  PrintTimeline("compute fault (+restart)", compute_fault.timeline_mtps,
                bucket_ms);
  PrintTimeline("memory fault", memory_fault.timeline_mtps, bucket_ms);
  PrintRow("steady-state average", steady.mtps, "MTps");
  PrintRow("compute-fault average", compute_fault.mtps, "MTps");
  PrintRow("memory-fault average", memory_fault.mtps, "MTps");
  PrintLatencyRows("steady-state", steady);
  PrintLatencyRows("compute-fault", compute_fault);
  PrintLatencyRows("memory-fault", memory_fault);
}

}  // namespace bench
}  // namespace pandora

#endif  // PANDORA_BENCH_BENCH_FAILOVER_OLTP_H_

// Ablations of Pandora's design choices (DESIGN.md §5), beyond the
// paper's headline experiments:
//
//  1. Doorbell batching: Pandora groups the log write + validation reads
//     into one doorbell and the commit applies into another (§3.1.4 "we
//     can log all writes with the same single RDMA Write"). Disabling the
//     batching pays one round trip per verb instead of one per group.
//  2. Persistence mode (§7): plain DRAM (replication-only durability) vs
//     battery-backed DRAM (free persistence) vs NVM with FORD's selective
//     one-sided flush (extra read per touched server per durable group).
//  3. PILL failed-ids density: the per-conflict bitset check must stay
//     O(1) even with thousands of failed coordinator ids (§3.1.2).

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

workloads::DriverResult RunMicro(const cluster::ClusterConfig& cluster_cfg,
                                 const txn::TxnConfig& txn_cfg,
                                 uint32_t preset_failed_ids = 0) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 20'000;
  micro_config.write_percent = 100;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn_cfg.mode;
  rm.fd = BenchFd();
  Testbed testbed(cluster_cfg, rm, &workload);
  for (uint32_t id = 0; id < preset_failed_ids; ++id) {
    // Densely populate the failed-ids bitsets (ids from hypothetical
    // long-gone coordinators; none owns a live lock).
    for (auto* server : testbed.cluster().ComputeServers()) {
      server->failed_ids().Set(60'000 + (id % 5000));
    }
  }

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 64;
  driver_config.duration_ms = Scaled(2000);
  driver_config.txn = txn_cfg;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run();
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Design ablations",
              "doorbell batching, §7 persistence modes, PILL failed-ids "
              "density (supporting analysis; not a paper figure)");

  // --- 1. Doorbell batching.
  {
    txn::TxnConfig txn_cfg;
    const workloads::DriverResult batched =
        RunMicro(PaperTestbed(), txn_cfg);
    txn_cfg.sequential_verbs = true;
    const workloads::DriverResult sequential =
        RunMicro(PaperTestbed(), txn_cfg);
    PrintRow("doorbell batching ON", batched.mtps, "MTps");
    PrintRow("doorbell batching OFF (verb-per-RTT)", sequential.mtps,
             "MTps");
    PrintRow("batching speedup",
             sequential.mtps > 0 ? batched.mtps / sequential.mtps : 0.0,
             "x");
  }

  // --- 1b. Execution-phase pipelining (§3.1.1): the single-RTT
  // lock-then-read chain and batched range reads, independently of the
  // commit-phase batching above. bench_execution_pipeline has the full
  // latency story; this row tracks the throughput effect.
  {
    txn::TxnConfig txn_cfg;
    const workloads::DriverResult pipelined =
        RunMicro(PaperTestbed(), txn_cfg);
    txn_cfg.pipeline_execution = false;
    const workloads::DriverResult unpipelined =
        RunMicro(PaperTestbed(), txn_cfg);
    PrintRow("execution pipelining ON", pipelined.mtps, "MTps");
    PrintRow("execution pipelining OFF (2-RTT lock+fetch)",
             unpipelined.mtps, "MTps");
    PrintRttRows("pipelining ON", pipelined);
    PrintRttRows("pipelining OFF", unpipelined);
  }

  // --- 2. Persistence modes.
  {
    txn::TxnConfig txn_cfg;
    cluster::ClusterConfig dram = PaperTestbed();
    const workloads::DriverResult volatile_dram = RunMicro(dram, txn_cfg);
    cluster::ClusterConfig battery = PaperTestbed();
    battery.persistence = cluster::PersistenceMode::kBatteryBackedDram;
    const workloads::DriverResult battery_dram =
        RunMicro(battery, txn_cfg);
    cluster::ClusterConfig nvm = PaperTestbed();
    nvm.persistence = cluster::PersistenceMode::kNvmWithFlush;
    const workloads::DriverResult nvm_flush = RunMicro(nvm, txn_cfg);
    PrintRow("volatile DRAM (replication only)", volatile_dram.mtps,
             "MTps");
    PrintRow("battery-backed DRAM (no flush)", battery_dram.mtps, "MTps");
    PrintRow("NVM + selective flush", nvm_flush.mtps, "MTps");
    PrintRow("NVM flushes issued",
             static_cast<double>(nvm_flush.totals.nvm_flushes), "flushes");
  }

  // --- 3. PILL failed-ids density.
  {
    txn::TxnConfig txn_cfg;
    const workloads::DriverResult empty = RunMicro(PaperTestbed(), txn_cfg);
    const workloads::DriverResult dense =
        RunMicro(PaperTestbed(), txn_cfg, /*preset_failed_ids=*/5000);
    PrintRow("failed-ids empty", empty.mtps, "MTps");
    PrintRow("failed-ids with 5000 dead coordinators", dense.mtps,
             "MTps  (O(1) check: expected ~equal)");
  }
  return 0;
}

// Reproduces Figure 9 (SmallBank fail-over throughput under compute and
// memory faults) and Figure 12 (the low-contention variant with half the
// coordinators, where post-failure throughput returns to pre-failure
// levels once the freed resources are reused).

#include "bench/bench_failover_oltp.h"
#include "workloads/smallbank.h"

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  const WorkloadFactory factory = [] {
    workloads::SmallBankConfig config;
    config.num_accounts = 10'000;
    config.hot_accounts = 1000;
    return std::make_unique<workloads::SmallBankWorkload>(config);
  };

  PrintHeader("SmallBank fail-over throughput",
              "Figure 9: average fail-over throughput under memory and "
              "compute faults (128 coordinators)");
  RunOltpFailover(factory, /*coordinators=*/128, /*pace_us=*/4000);

  PrintHeader("SmallBank fail-over throughput, low contention",
              "Figure 12: half the coordinators — post-failure throughput "
              "is restored to pre-failure levels");
  RunOltpFailover(factory, /*coordinators=*/64, /*pace_us=*/4000);
  return 0;
}

#ifndef PANDORA_BENCH_BENCH_UTIL_H_
#define PANDORA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "recovery/recovery_manager.h"
#include "txn/system_gate.h"
#include "workloads/driver.h"
#include "workloads/workload.h"

namespace pandora {
namespace bench {

/// True when PANDORA_BENCH_FAST=1: shrink run times for smoke testing.
bool FastMode();

/// Scales a duration/count down 4x in fast mode.
uint64_t Scaled(uint64_t normal);

/// The paper's testbed shape (§6.3): two memory nodes, two compute nodes,
/// replication f+1 = 2, one service node for FD + recovery coordinator.
/// Latency model defaults approximate the 100 Gbps RDMA fabric.
cluster::ClusterConfig PaperTestbed();

/// FD configuration: the paper's 5 ms timeout (§3.2.2), plus heartbeat
/// cadence suited to the simulator. Use only for lightly loaded runs
/// (e.g. the detection-latency bench): heartbeats are real threads, and
/// under a saturating benchmark on two cores they starve for longer than
/// 5 ms, flooding the run with false positives.
recovery::FdConfig PaperFd();

/// FD configuration for saturating throughput benches: same protocol,
/// relaxed timing (100 ms) so detection noise does not drown the
/// throughput shapes. Detection latency then costs about one timeline
/// bucket in the fail-over figures.
recovery::FdConfig BenchFd();

/// A fully wired deployment: cluster + workload + recovery manager + gate.
class Testbed {
 public:
  /// `start_fd` = false leaves heartbeat detection off, for benches that
  /// trigger recovery manually to time it in isolation.
  Testbed(const cluster::ClusterConfig& cluster_config,
          const recovery::RecoveryManagerConfig& rm_config,
          workloads::Workload* workload, bool start_fd = true);
  ~Testbed();

  cluster::Cluster& cluster() { return *cluster_; }
  recovery::RecoveryManager& manager() { return *manager_; }
  txn::SystemGate& gate() { return gate_; }

  /// Builds a driver over this testbed.
  std::unique_ptr<workloads::Driver> MakeDriver(
      const workloads::DriverConfig& config);

 private:
  txn::SystemGate gate_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<recovery::RecoveryManager> manager_;
  workloads::Workload* workload_;
};

/// Printing helpers: every bench prints the same rows/series the paper
/// reports, in a plain, grep-able format.
void PrintHeader(const std::string& title, const std::string& paper_ref);
void PrintTimeline(const std::string& label,
                   const std::vector<double>& mtps, uint64_t bucket_ms);
void PrintRow(const std::string& label, double value,
              const std::string& unit);

/// Machine-readable results: an ordered flat map of metric name -> number
/// (or string), written as BENCH_<name>.json into PANDORA_BENCH_JSON_DIR
/// (or the working directory when unset). Keys use dotted prefixes to
/// group runs, e.g. "pipelined.p50_us".
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value);
  /// String-valued metadata (git SHA, config labels); emitted quoted.
  void SetText(const std::string& key, const std::string& value);

  /// Writes the file and returns its path ("" on I/O failure, which is
  /// logged but never fatal — benches must still print their rows).
  std::string Write() const;

 private:
  struct Metric {
    std::string key;
    double number = 0;
    std::string text;
    bool is_text = false;
  };
  std::string name_;
  std::vector<Metric> metrics_;
};

/// The git commit the bench binary's tree was at: the PANDORA_GIT_SHA env
/// var if set, else `git rev-parse --short HEAD` from the working
/// directory, else "unknown". Stamped into bench artifacts so the perf
/// trajectory is attributable.
std::string GitSha();

/// Adds the standard result metrics under `prefix.`: throughput
/// (committed/aborted/mtps), commit latency (p50/p99/mean, µs), and the
/// round-trip counters (execution_rtts, commit_rtts, doorbells — total
/// and per committed transaction).
void AddDriverMetrics(BenchJson* json, const std::string& prefix,
                      const workloads::DriverResult& result);

/// Prints the round-trip counter rows every bench reports the same way.
void PrintRttRows(const std::string& label,
                  const workloads::DriverResult& result);

/// Prints the commit-latency percentile rows (p50/p95/p99, µs) from the
/// result's precomputed percentiles.
void PrintLatencyRows(const std::string& label,
                      const workloads::DriverResult& result);

}  // namespace bench
}  // namespace pandora

#endif  // PANDORA_BENCH_BENCH_UTIL_H_

// Reproduces Figure 11: TPC-C fail-over throughput under compute and
// memory faults.

#include "bench/bench_failover_oltp.h"
#include "workloads/tpcc.h"

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("TPC-C fail-over throughput",
              "Figure 11: average fail-over throughput under memory and "
              "compute faults (128 coordinators, 95% write mix)");
  RunOltpFailover(
      [] {
        workloads::TpccConfig config;
        config.warehouses = 2;
        config.districts_per_warehouse = 10;
        config.customers_per_district = 100;
        config.items = 500;
        config.max_orders_per_district = 16384;
        return std::make_unique<workloads::TpccWorkload>(config);
      },
      // TPC-C transactions are ~10x heavier; pace them so the run is
      // latency-bound (throughput tracks alive coordinators) rather than
      // saturating the two simulation cores.
      /*coordinators=*/128, /*pace_us=*/160'000);
  return 0;
}

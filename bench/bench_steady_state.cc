// Reproduces Figure 6: steady-state throughput of non-recoverable FORD
// (no PILL, per-object undo logging) vs recoverable Pandora (PILL lock
// words, coordinator-log written at commit). The paper's point: Pandora's
// recoverability costs nothing in failure-free steady state (0.919 vs
// 0.912 MTps on their testbed).
//
// Each protocol runs twice: the blocking baseline (1 fiber per worker
// thread) and the fiber-scheduled configuration (8 fibers per thread),
// which overlaps simulated RDMA waits across in-flight transactions the
// way the paper's 128-coordinators-on-few-cores testbed does. The run
// emits the canonical BENCH_steady_state.json artifact (throughput,
// percentiles, config, git SHA) used to track the repo's perf trajectory.

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

constexpr uint32_t kThreads = 2;
constexpr uint32_t kCoordinators = 128;  // The paper's 128 coordinators.
constexpr uint32_t kScaledFibers = 8;

workloads::DriverResult RunSteadyState(bool recoverable,
                                       uint32_t fibers_per_thread) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 20'000;
  micro_config.write_percent = 50;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  Testbed testbed(PaperTestbed(), rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = kThreads;
  driver_config.coordinators = kCoordinators;
  driver_config.duration_ms = Scaled(3000);
  driver_config.bucket_ms = Scaled(3000) / 15;
  driver_config.fibers_per_thread = fibers_per_thread;
  driver_config.txn.mode = txn::ProtocolMode::kPandora;
  // The "FORD" line is the same online protocol with the entire
  // online-recovery component (C2: undo logging + truncation) disabled —
  // fast but unrecoverable, exactly what Figure 6 compares against.
  driver_config.txn.disable_recovery_logging = !recoverable;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run();
}

void Report(BenchJson* json, const std::string& label,
            const workloads::DriverResult& result) {
  PrintRow(label + " average throughput", result.mtps, "MTps");
  PrintLatencyRows(label, result);
  AddDriverMetrics(json, label, result);
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Steady-state throughput: FORD (no PILL) vs Pandora",
              "Figure 6 + §6.2 \"PILL under no failures\": the throughput "
              "difference is negligible because the failed-id bitset "
              "lookup costs nanoseconds against microsecond round trips");

  BenchJson json("steady_state");
  json.SetText("git_sha", GitSha());
  json.Set("threads", kThreads);
  json.Set("coordinators", kCoordinators);
  json.Set("duration_ms", static_cast<double>(Scaled(3000)));
  json.Set("fibers_per_thread_scaled", kScaledFibers);

  const workloads::DriverResult ford = RunSteadyState(false, 1);
  const workloads::DriverResult pandora = RunSteadyState(true, 1);
  const workloads::DriverResult ford_fibers =
      RunSteadyState(false, kScaledFibers);
  const workloads::DriverResult pandora_fibers =
      RunSteadyState(true, kScaledFibers);

  PrintTimeline("FORD (non-recoverable)", ford.timeline_mtps,
                Scaled(3000) / 15);
  PrintTimeline("Pandora (PILL)", pandora.timeline_mtps,
                Scaled(3000) / 15);
  Report(&json, "ford", ford);
  Report(&json, "pandora", pandora);
  Report(&json, "ford_fibers8", ford_fibers);
  Report(&json, "pandora_fibers8", pandora_fibers);

  PrintRow("Pandora fiber speedup (8 fibers/thread)",
           pandora.mtps > 0 ? pandora_fibers.mtps / pandora.mtps : 0.0,
           "x");
  PrintRow("Pandora overlap factor (8 fibers/thread)",
           pandora_fibers.overlap_factor, "x");
  const double overhead =
      ford.mtps > 0 ? (ford.mtps - pandora.mtps) / ford.mtps * 100.0 : 0.0;
  const double overhead_fibers =
      ford_fibers.mtps > 0
          ? (ford_fibers.mtps - pandora_fibers.mtps) / ford_fibers.mtps *
                100.0
          : 0.0;
  PrintRow("PILL steady-state overhead", overhead,
           "% (expected: negligible)");
  PrintRow("PILL steady-state overhead (8 fibers)", overhead_fibers,
           "% (expected: negligible)");
  json.Set("pill_overhead_percent", overhead);
  json.Set("pill_overhead_percent_fibers8", overhead_fibers);
  json.Set("pandora_fiber_speedup",
           pandora.mtps > 0 ? pandora_fibers.mtps / pandora.mtps : 0.0);
  json.Write();
  return 0;
}

// Reproduces Figure 6: steady-state throughput of non-recoverable FORD
// (no PILL, per-object undo logging) vs recoverable Pandora (PILL lock
// words, coordinator-log written at commit). The paper's point: Pandora's
// recoverability costs nothing in failure-free steady state (0.919 vs
// 0.912 MTps on their testbed).
//
// Each protocol runs twice: the blocking baseline (1 fiber per worker
// thread) and the fiber-scheduled configuration (8 fibers per thread),
// which overlaps simulated RDMA waits across in-flight transactions the
// way the paper's 128-coordinators-on-few-cores testbed does. The run
// emits the canonical BENCH_steady_state.json artifact (throughput,
// percentiles, config, git SHA) used to track the repo's perf trajectory.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

constexpr uint32_t kThreads = 2;
constexpr uint32_t kCoordinators = 128;  // The paper's 128 coordinators.
constexpr uint32_t kScaledFibers = 8;

workloads::DriverResult RunSteadyState(bool recoverable,
                                       uint32_t fibers_per_thread) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 20'000;
  micro_config.write_percent = 50;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  Testbed testbed(PaperTestbed(), rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = kThreads;
  driver_config.coordinators = kCoordinators;
  driver_config.duration_ms = Scaled(3000);
  driver_config.bucket_ms = Scaled(3000) / 15;
  driver_config.fibers_per_thread = fibers_per_thread;
  driver_config.txn.mode = txn::ProtocolMode::kPandora;
  // The "FORD" line is the same online protocol with the entire
  // online-recovery component (C2: undo logging + truncation) disabled —
  // fast but unrecoverable, exactly what Figure 6 compares against.
  driver_config.txn.disable_recovery_logging = !recoverable;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run();
}

void Report(BenchJson* json, const std::string& label,
            const workloads::DriverResult& result) {
  PrintRow(label + " average throughput", result.mtps, "MTps");
  PrintLatencyRows(label, result);
  AddDriverMetrics(json, label, result);
}

double P99OverP50(const workloads::DriverResult& result) {
  return result.latency_p50_ns > 0
             ? static_cast<double>(result.latency_p99_ns) /
                   static_cast<double>(result.latency_p50_ns)
             : 0.0;
}

double CommitRttsPerCommitted(const workloads::DriverResult& result) {
  return result.totals.committed > 0
             ? static_cast<double>(result.totals.commit_rtts) /
                   static_cast<double>(result.totals.committed)
             : 0.0;
}

/// CI gate (PANDORA_BENCH_GATE=1): fail the run when the steady-state
/// regression bars are violated. Fast mode (PANDORA_BENCH_FAST=1) runs a
/// quarter-length sweep whose numbers are noisier, so its bars are
/// correspondingly looser — the full-length canonical run enforces the
/// tight ones recorded in EXPERIMENTS.md.
struct Gate {
  std::vector<std::string> failures;

  void Check(bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  }
};

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Steady-state throughput: FORD (no PILL) vs Pandora",
              "Figure 6 + §6.2 \"PILL under no failures\": the throughput "
              "difference is negligible because the failed-id bitset "
              "lookup costs nanoseconds against microsecond round trips");

  BenchJson json("steady_state");
  json.SetText("git_sha", GitSha());
  json.Set("threads", kThreads);
  json.Set("coordinators", kCoordinators);
  json.Set("duration_ms", static_cast<double>(Scaled(3000)));
  json.Set("fibers_per_thread_scaled", kScaledFibers);

  workloads::DriverResult ford = RunSteadyState(false, 1);
  workloads::DriverResult pandora = RunSteadyState(true, 1);
  // The blocking pair feeds the PILL-overhead gate, and its measurement
  // windows run seconds apart — long enough for host-load drift to swamp
  // a low-single-digit throughput gap. Interleave repeats in Thue-Morse
  // order (F P P F P F F P), which balances both linear and quadratic
  // drift across the two protocols, and average. Latency percentiles and
  // RTT counters come from the first run of each; only the throughput
  // averages use all repeats.
  {
    // Continuing the F P prefix above: P F P F F P.
    const bool recoverable_order[] = {true, false, true, false, false,
                                      true};
    double ford_mtps_sum = ford.mtps;
    double pandora_mtps_sum = pandora.mtps;
    for (const bool recoverable : recoverable_order) {
      const workloads::DriverResult repeat = RunSteadyState(recoverable, 1);
      (recoverable ? pandora_mtps_sum : ford_mtps_sum) += repeat.mtps;
    }
    ford.mtps = ford_mtps_sum / 4.0;
    pandora.mtps = pandora_mtps_sum / 4.0;
  }
  const workloads::DriverResult ford_fibers =
      RunSteadyState(false, kScaledFibers);
  const workloads::DriverResult pandora_fibers =
      RunSteadyState(true, kScaledFibers);

  PrintTimeline("FORD (non-recoverable)", ford.timeline_mtps,
                Scaled(3000) / 15);
  PrintTimeline("Pandora (PILL)", pandora.timeline_mtps,
                Scaled(3000) / 15);
  Report(&json, "ford", ford);
  Report(&json, "pandora", pandora);
  Report(&json, "ford_fibers8", ford_fibers);
  Report(&json, "pandora_fibers8", pandora_fibers);

  PrintRow("Pandora fiber speedup (8 fibers/thread)",
           pandora.mtps > 0 ? pandora_fibers.mtps / pandora.mtps : 0.0,
           "x");
  PrintRow("Pandora overlap factor (8 fibers/thread)",
           pandora_fibers.overlap_factor, "x");
  const double overhead =
      ford.mtps > 0 ? (ford.mtps - pandora.mtps) / ford.mtps * 100.0 : 0.0;
  const double overhead_fibers =
      ford_fibers.mtps > 0
          ? (ford_fibers.mtps - pandora_fibers.mtps) / ford_fibers.mtps *
                100.0
          : 0.0;
  PrintRow("PILL steady-state overhead", overhead,
           "% (expected: negligible)");
  PrintRow("PILL steady-state overhead (8 fibers)", overhead_fibers,
           "% (expected: negligible)");
  json.Set("pill_overhead_percent", overhead);
  json.Set("pill_overhead_percent_fibers8", overhead_fibers);
  json.Set("pandora_fiber_speedup",
           pandora.mtps > 0 ? pandora_fibers.mtps / pandora.mtps : 0.0);

  // Ratio fields the CI gate (and trend tooling) key on.
  json.Set("pandora_over_ford_mtps",
           ford.mtps > 0 ? pandora.mtps / ford.mtps : 0.0);
  json.Set("pandora_over_ford_mtps_fibers8",
           ford_fibers.mtps > 0 ? pandora_fibers.mtps / ford_fibers.mtps
                                : 0.0);
  const double rtt_delta =
      CommitRttsPerCommitted(pandora) - CommitRttsPerCommitted(ford);
  json.Set("commit_rtt_delta_pandora_minus_ford", rtt_delta);
  json.Write();

  const char* gate_env = std::getenv("PANDORA_BENCH_GATE");
  if (gate_env == nullptr || gate_env[0] != '1') return 0;

  // Quarter-length fast runs are noisy; loosen the bars accordingly.
  const bool fast = FastMode();
  const double max_overhead_percent = fast ? 8.0 : 3.0;
  const double max_p99_over_p50 = fast ? 6.0 : 4.0;
  const double max_rtt_delta = fast ? 0.05 : 0.02;

  Gate gate;
  gate.Check(overhead <= max_overhead_percent,
             "pill_overhead_percent " + std::to_string(overhead) + " > " +
                 std::to_string(max_overhead_percent));
  gate.Check(rtt_delta <= max_rtt_delta,
             "commit_rtt_delta_pandora_minus_ford " +
                 std::to_string(rtt_delta) + " > " +
                 std::to_string(max_rtt_delta));
  gate.Check(P99OverP50(ford_fibers) <= max_p99_over_p50,
             "ford_fibers8 p99/p50 " +
                 std::to_string(P99OverP50(ford_fibers)) + " > " +
                 std::to_string(max_p99_over_p50));
  gate.Check(P99OverP50(pandora_fibers) <= max_p99_over_p50,
             "pandora_fibers8 p99/p50 " +
                 std::to_string(P99OverP50(pandora_fibers)) + " > " +
                 std::to_string(max_p99_over_p50));

  if (!gate.failures.empty()) {
    for (const std::string& failure : gate.failures) {
      std::fprintf(stderr, "BENCH GATE VIOLATION: %s\n", failure.c_str());
    }
    return 1;
  }
  std::printf("bench gate: all steady-state bars met%s\n",
              fast ? " (fast-mode thresholds)" : "");
  return 0;
}

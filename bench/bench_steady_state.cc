// Reproduces Figure 6: steady-state throughput of non-recoverable FORD
// (no PILL, per-object undo logging) vs recoverable Pandora (PILL lock
// words, coordinator-log written at commit). The paper's point: Pandora's
// recoverability costs nothing in failure-free steady state (0.919 vs
// 0.912 MTps on their testbed).

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

workloads::DriverResult RunSteadyState(bool recoverable) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 20'000;
  micro_config.write_percent = 50;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  Testbed testbed(PaperTestbed(), rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 128;  // The paper's 128 coordinators.
  driver_config.duration_ms = Scaled(3000);
  driver_config.bucket_ms = Scaled(3000) / 15;
  driver_config.txn.mode = txn::ProtocolMode::kPandora;
  // The "FORD" line is the same online protocol with the entire
  // online-recovery component (C2: undo logging + truncation) disabled —
  // fast but unrecoverable, exactly what Figure 6 compares against.
  driver_config.txn.disable_recovery_logging = !recoverable;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run();
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Steady-state throughput: FORD (no PILL) vs Pandora",
              "Figure 6 + §6.2 \"PILL under no failures\": the throughput "
              "difference is negligible because the failed-id bitset "
              "lookup costs nanoseconds against microsecond round trips");

  const workloads::DriverResult ford = RunSteadyState(false);
  const workloads::DriverResult pandora = RunSteadyState(true);

  PrintTimeline("FORD (non-recoverable)", ford.timeline_mtps,
                Scaled(3000) / 15);
  PrintTimeline("Pandora (PILL)", pandora.timeline_mtps,
                Scaled(3000) / 15);
  PrintRow("FORD average throughput", ford.mtps, "MTps");
  PrintRow("Pandora average throughput", pandora.mtps, "MTps");
  PrintRow("FORD commit latency p50",
           ford.commit_latency.PercentileNanos(50) / 1000.0, "us");
  PrintRow("FORD commit latency p99",
           ford.commit_latency.PercentileNanos(99) / 1000.0, "us");
  PrintRow("Pandora commit latency p50",
           pandora.commit_latency.PercentileNanos(50) / 1000.0, "us");
  PrintRow("Pandora commit latency p99",
           pandora.commit_latency.PercentileNanos(99) / 1000.0, "us");
  PrintRow("PILL steady-state overhead",
           ford.mtps > 0
               ? (ford.mtps - pandora.mtps) / ford.mtps * 100.0
               : 0.0,
           "% (expected: negligible)");
  return 0;
}

// Fiber scaling: overlapping RDMA waits across in-flight transactions.
// Every simulated verb wait used to block an entire OS worker thread, so
// the logical coordinators multiplexed over the driver's 2 threads
// serialized behind each other's network stalls. The paper's testbed gets
// its throughput precisely by overlapping many latency-bound coordinators
// per core (128 coordinators over a handful of cores), and the related
// work (FORD-lineage systems, Lotus, the RDMA-CC framework study) isolates
// coroutines-per-thread as a first-order throughput knob.
//
// This bench sweeps DriverConfig::fibers_per_thread under the paper's
// latency model and reports committed MTps, commit-latency percentiles,
// the overlap factor (simulated wait ns hidden per truly-idle wall ns),
// and the per-transaction round-trip counters — which must stay flat
// across the sweep: overlap reclaims CPU time, never simulated time.

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

workloads::DriverResult RunMicro(uint32_t fibers_per_thread) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 20'000;
  micro_config.write_percent = 100;
  micro_config.ops_per_txn = 4;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  Testbed testbed(PaperTestbed(), rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  // Enough slots that even the widest sweep point keeps every fiber fed.
  driver_config.coordinators = 64;
  driver_config.duration_ms = Scaled(1500);
  driver_config.fibers_per_thread = fibers_per_thread;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run();
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Fiber scaling: fibers per worker thread",
              "the paper's coordinators-per-core scaling lever (§6.3's "
              "128 coordinators): one transaction's RDMA stall is hidden "
              "by progress on another fiber of the same thread");

  BenchJson json("fiber_scaling");
  json.SetText("git_sha", GitSha());
  json.Set("threads", 2);
  json.Set("coordinators", 64);

  const uint32_t sweep[] = {1, 2, 4, 8, 16};
  double base_mtps = 0;
  for (const uint32_t fibers : sweep) {
    const workloads::DriverResult result = RunMicro(fibers);
    if (fibers == 1) base_mtps = result.mtps;
    const std::string tag = "fibers" + std::to_string(fibers);
    PrintRow(tag + " throughput", result.mtps, "MTps");
    PrintRow(tag + " speedup vs 1 fiber",
             base_mtps > 0 ? result.mtps / base_mtps : 0.0, "x");
    PrintRow(tag + " overlap factor", result.overlap_factor, "x");
    PrintRow(tag + " fiber yields",
             static_cast<double>(result.fiber_yields), "yields");
    PrintLatencyRows(tag, result);
    PrintRttRows(tag, result);
    AddDriverMetrics(&json, tag, result);
    json.Set(tag + ".speedup_vs_1fiber",
             base_mtps > 0 ? result.mtps / base_mtps : 0.0);
  }
  json.Write();
  return 0;
}

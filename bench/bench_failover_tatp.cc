// Reproduces Figure 10: TATP fail-over throughput under compute and
// memory faults.

#include "bench/bench_failover_oltp.h"
#include "workloads/tatp.h"

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("TATP fail-over throughput",
              "Figure 10: average fail-over throughput under memory and "
              "compute faults (128 coordinators, 80% read mix)");
  RunOltpFailover(
      [] {
        workloads::TatpConfig config;
        config.subscribers = 10'000;
        return std::make_unique<workloads::TatpWorkload>(config);
      },
      /*coordinators=*/128, /*pace_us=*/4000);
  return 0;
}

// Single-RTT lock-then-read: execution-phase doorbell pipelining
// (§3.1.1). FORD-style execution pays two dependent round trips per write
// op — the lock CAS, then the undo-image read of the locked object.
// Pandora posts both on the same QP in one doorbell: RC in-order delivery
// guarantees the read observes the post-CAS state, so a win yields the
// image in the same round trip and a loss just discards the speculative
// read. Range reads likewise batch their per-key verbs into max-RTT
// rounds.
//
// This bench measures what that buys on the paper's testbed latency
// model: commit latency (p50/p99) and throughput of a write-heavy
// microbenchmark with pipelining on vs off, plus the round-trip
// accounting that shows lock+fetch dropping from 2 RTTs to 1.

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

workloads::DriverResult RunMicro(const txn::TxnConfig& txn_cfg,
                                 uint32_t write_percent) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 20'000;
  micro_config.write_percent = write_percent;
  micro_config.ops_per_txn = 4;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn_cfg.mode;
  rm.fd = BenchFd();
  Testbed testbed(PaperTestbed(), rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  // Few coordinators: commit latency should be round-trip-bound, not
  // queueing-bound, so the RTT savings show up undiluted.
  driver_config.coordinators = 4;
  driver_config.duration_ms = Scaled(2000);
  driver_config.txn = txn_cfg;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run();
}

void Compare(BenchJson* json, const std::string& tag,
             uint32_t write_percent) {
  txn::TxnConfig txn_cfg;
  txn_cfg.pipeline_execution = true;
  const workloads::DriverResult on = RunMicro(txn_cfg, write_percent);
  txn_cfg.pipeline_execution = false;
  const workloads::DriverResult off = RunMicro(txn_cfg, write_percent);

  const double p50_on =
      static_cast<double>(on.commit_latency.PercentileNanos(50));
  const double p50_off =
      static_cast<double>(off.commit_latency.PercentileNanos(50));
  PrintRow(tag + " pipelined p50", p50_on / 1000.0, "us");
  PrintRow(tag + " unpipelined p50", p50_off / 1000.0, "us");
  PrintRow(tag + " p50 reduction",
           p50_off > 0 ? (1.0 - p50_on / p50_off) * 100.0 : 0.0, "%");
  PrintRow(tag + " pipelined p99",
           static_cast<double>(on.commit_latency.PercentileNanos(99)) /
               1000.0,
           "us");
  PrintRow(tag + " unpipelined p99",
           static_cast<double>(off.commit_latency.PercentileNanos(99)) /
               1000.0,
           "us");
  PrintRow(tag + " pipelined throughput", on.mtps, "MTps");
  PrintRow(tag + " unpipelined throughput", off.mtps, "MTps");
  PrintRttRows(tag + " pipelined", on);
  PrintRttRows(tag + " unpipelined", off);

  AddDriverMetrics(json, tag + ".pipelined", on);
  AddDriverMetrics(json, tag + ".unpipelined", off);
  json->Set(tag + ".p50_reduction_percent",
            p50_off > 0 ? (1.0 - p50_on / p50_off) * 100.0 : 0.0);
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Execution-phase doorbell pipelining",
              "§3.1.1 single-RTT lock-then-read (supporting analysis; "
              "round-trip accounting behind the execution-phase figures)");

  BenchJson json("execution_pipeline");
  // Config block: run shape for reproducing the comparison (git_sha is
  // stamped by BenchJson::Write).
  json.Set("config.num_keys", 20'000);
  json.Set("config.ops_per_txn", 4);
  json.Set("config.threads", 2);
  json.Set("config.coordinators", 4);
  json.Set("config.duration_ms", static_cast<double>(Scaled(2000)));
  json.Set("config.fast_mode", FastMode() ? 1 : 0);
  // Write-heavy: every op is a lock+fetch, the pipelined case saves one
  // round trip per op.
  Compare(&json, "write100", /*write_percent=*/100);
  // Mixed: half the ops are point reads (1 RTT either way), so the
  // saving dilutes — the accounting should show exactly that.
  Compare(&json, "write50", /*write_percent=*/50);
  json.Write();
  return 0;
}

#include "bench/bench_util.h"

#include "common/logging.h"

namespace pandora {
namespace bench {

bool FastMode() {
  const char* env = std::getenv("PANDORA_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

uint64_t Scaled(uint64_t normal) {
  return FastMode() ? std::max<uint64_t>(1, normal / 4) : normal;
}

cluster::ClusterConfig PaperTestbed() {
  cluster::ClusterConfig config;
  config.memory_nodes = 2;
  config.compute_nodes = 2;
  config.replication = 2;
  config.net.one_way_ns = 1500;   // Low-µs RDMA round trips.
  config.net.per_byte_ns = 0.08;  // 100 Gbps.
  // 64 x 2 KiB slots per coordinator: room for TPC-C's ~27-object
  // write-sets in every logging scheme (per-object records, lock intents,
  // and Pandora's fragmented coordinator records).
  config.log.slots_per_coordinator = 64;
  config.log.slot_bytes = 2048;
  config.log.max_coordinators = 1100;
  return config;
}

recovery::FdConfig PaperFd() {
  recovery::FdConfig fd;
  fd.timeout_us = 5000;  // The paper's 5 ms timeout.
  fd.heartbeat_period_us = 1000;
  fd.poll_period_us = 500;
  return fd;
}

recovery::FdConfig BenchFd() {
  recovery::FdConfig fd;
  fd.timeout_us = 100'000;
  fd.heartbeat_period_us = 10'000;
  fd.poll_period_us = 10'000;
  return fd;
}

Testbed::Testbed(const cluster::ClusterConfig& cluster_config,
                 const recovery::RecoveryManagerConfig& rm_config,
                 workloads::Workload* workload, bool start_fd)
    : workload_(workload) {
  cluster_ = std::make_unique<cluster::Cluster>(cluster_config);
  PANDORA_CHECK(workload_->Setup(cluster_.get()).ok());
  manager_ = std::make_unique<recovery::RecoveryManager>(cluster_.get(),
                                                         rm_config, &gate_);
  if (start_fd) manager_->Start();
}

Testbed::~Testbed() { manager_->Stop(); }

std::unique_ptr<workloads::Driver> Testbed::MakeDriver(
    const workloads::DriverConfig& config) {
  return std::make_unique<workloads::Driver>(
      cluster_.get(), manager_.get(), &gate_, workload_, config);
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================="
              "=============================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================"
              "============================\n");
}

void PrintTimeline(const std::string& label,
                   const std::vector<double>& mtps, uint64_t bucket_ms) {
  std::printf("%-28s", (label + " (MTps):").c_str());
  for (size_t i = 0; i < mtps.size(); ++i) {
    std::printf(" %.4f", mtps[i]);
  }
  std::printf("   [bucket=%lums]\n",
              static_cast<unsigned long>(bucket_ms));
}

void PrintRow(const std::string& label, double value,
              const std::string& unit) {
  std::printf("%-44s %12.4f %s\n", label.c_str(), value, unit.c_str());
}

void BenchJson::Set(const std::string& key, double value) {
  for (auto& metric : metrics_) {
    if (metric.key == key) {
      metric.number = value;
      metric.is_text = false;
      return;
    }
  }
  metrics_.push_back({key, value, "", false});
}

void BenchJson::SetText(const std::string& key, const std::string& value) {
  for (auto& metric : metrics_) {
    if (metric.key == key) {
      metric.text = value;
      metric.is_text = true;
      return;
    }
  }
  metrics_.push_back({key, 0, value, true});
}

std::string GitSha() {
  const char* env = std::getenv("PANDORA_GIT_SHA");
  if (env != nullptr && env[0] != '\0') return env;
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64] = {0};
    const bool read = std::fgets(buf, sizeof(buf), pipe) != nullptr;
    ::pclose(pipe);
    if (read) {
      std::string sha(buf);
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
      if (!sha.empty()) return sha;
    }
  }
  return "unknown";
}

std::string BenchJson::Write() const {
  // Every artifact is traceable to a commit: emitters that did not set
  // git_sha themselves get it stamped here.
  bool have_sha = false;
  for (const auto& metric : metrics_) {
    if (metric.key == "git_sha") have_sha = true;
  }
  std::string path;
  const char* dir = std::getenv("PANDORA_BENCH_JSON_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/";
  }
  path += "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PANDORA_LOG(kWarning) << "bench: cannot write " << path;
    return "";
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\"", name_.c_str());
  if (!have_sha) {
    std::fprintf(f, ",\n  \"git_sha\": \"%s\"", GitSha().c_str());
  }
  for (const auto& metric : metrics_) {
    if (metric.is_text) {
      std::fprintf(f, ",\n  \"%s\": \"%s\"", metric.key.c_str(),
                   metric.text.c_str());
    } else {
      std::fprintf(f, ",\n  \"%s\": %.10g", metric.key.c_str(),
                   metric.number);
    }
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("json: %s\n", path.c_str());
  return path;
}

void AddDriverMetrics(BenchJson* json, const std::string& prefix,
                      const workloads::DriverResult& result) {
  const std::string p = prefix.empty() ? "" : prefix + ".";
  const double committed =
      result.totals.committed > 0
          ? static_cast<double>(result.totals.committed)
          : 1.0;
  json->Set(p + "committed", static_cast<double>(result.committed));
  json->Set(p + "aborted", static_cast<double>(result.aborted));
  json->Set(p + "mtps", result.mtps);
  json->Set(p + "p50_us",
            static_cast<double>(result.latency_p50_ns) / 1000.0);
  json->Set(p + "p95_us",
            static_cast<double>(result.latency_p95_ns) / 1000.0);
  json->Set(p + "p99_us",
            static_cast<double>(result.latency_p99_ns) / 1000.0);
  json->Set(p + "mean_us", result.commit_latency.MeanNanos() / 1000.0);
  json->Set(p + "execution_rtts",
            static_cast<double>(result.totals.execution_rtts));
  json->Set(p + "commit_rtts",
            static_cast<double>(result.totals.commit_rtts));
  json->Set(p + "doorbells", static_cast<double>(result.totals.doorbells));
  json->Set(p + "execution_rtts_per_committed",
            static_cast<double>(result.totals.execution_rtts) / committed);
  json->Set(p + "commit_rtts_per_committed",
            static_cast<double>(result.totals.commit_rtts) / committed);
  json->Set(p + "doorbells_per_committed",
            static_cast<double>(result.totals.doorbells) / committed);
  json->Set(p + "fiber_yields",
            static_cast<double>(result.fiber_yields));
  json->Set(p + "overlap_factor", result.overlap_factor);
  // Tail-fairness metrics: the fibers8 latency gate is expressed as
  // p99/p50, and the scheduler's own starvation counters explain a miss.
  json->Set(p + "p99_over_p50",
            result.latency_p50_ns > 0
                ? static_cast<double>(result.latency_p99_ns) /
                      static_cast<double>(result.latency_p50_ns)
                : 0.0);
  json->Set(p + "max_resume_lag_us",
            static_cast<double>(result.fiber_max_resume_lag_ns) / 1000.0);
  json->Set(p + "paced_admissions",
            static_cast<double>(result.fiber_paced_admissions));
  // Placement fast path: fraction of placement lookups answered by the
  // per-coordinator cache instead of a ring walk.
  const double placement_lookups =
      static_cast<double>(result.totals.placement_hits) +
      static_cast<double>(result.totals.placement_misses);
  json->Set(p + "placement_hit_rate",
            placement_lookups > 0
                ? static_cast<double>(result.totals.placement_hits) /
                      placement_lookups
                : 0.0);
}

void PrintRttRows(const std::string& label,
                  const workloads::DriverResult& result) {
  const double committed =
      result.totals.committed > 0
          ? static_cast<double>(result.totals.committed)
          : 1.0;
  PrintRow(label + " execution RTTs/txn",
           static_cast<double>(result.totals.execution_rtts) / committed,
           "RTTs");
  PrintRow(label + " commit RTTs/txn",
           static_cast<double>(result.totals.commit_rtts) / committed,
           "RTTs");
  PrintRow(label + " doorbells/txn",
           static_cast<double>(result.totals.doorbells) / committed,
           "doorbells");
}

void PrintLatencyRows(const std::string& label,
                      const workloads::DriverResult& result) {
  PrintRow(label + " commit latency p50",
           static_cast<double>(result.latency_p50_ns) / 1000.0, "us");
  PrintRow(label + " commit latency p95",
           static_cast<double>(result.latency_p95_ns) / 1000.0, "us");
  PrintRow(label + " commit latency p99",
           static_cast<double>(result.latency_p99_ns) / 1000.0, "us");
}

}  // namespace bench
}  // namespace pandora

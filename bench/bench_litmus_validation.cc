// Reproduces Table 1 (§5.1): the litmus-testing framework's bug findings.
// For each of the six FORD bugs, the corresponding bug switch is enabled
// and the framework must flag a strict-serializability violation — all
// deterministically, in one pass: four via exhaustive crash-schedule
// enumeration, two via verb-order exploration (kVerbExhaustive, for the
// intra-phase races the lockstep rendezvous cannot order). With the
// fixes in place (all switches off), every litmus test passes under
// randomized crash injection.

#include <cstdio>

#include "litmus/harness.h"
#include "litmus/litmus_spec.h"
#include "bench/bench_util.h"

namespace pandora {
namespace bench {
namespace {

litmus::HarnessConfig BaseConfig() {
  litmus::HarnessConfig config;
  config.iterations = FastMode() ? 40 : 80;
  config.net.one_way_ns = 1500;
  // Middle-ground detection timing: fast enough that crash iterations do
  // not dominate wall time, slow enough that false-positive evictions
  // under CPU pressure stay rare (and those only make an iteration
  // inconclusive, never a spurious violation).
  config.fd.timeout_us = 50'000;
  config.fd.heartbeat_period_us = 4000;
  config.fd.poll_period_us = 4000;
  return config;
}

struct BugCase {
  const char* litmus;
  const char* bug;
  const char* category;
  txn::ProtocolMode mode;
  txn::BugFlags flags;
  litmus::LitmusSpec spec;
  uint32_t crash_percent;
  uint64_t seed;
  /// kExhaustive hunts via crash-point enumeration; kVerbExhaustive adds
  /// verb-order exploration for intra-phase races. Both are one
  /// deterministic pass.
  litmus::SchedulePolicy policy = litmus::SchedulePolicy::kExhaustive;
  int runs_per_txn = 2;
};

void RunBugCase(const BugCase& bug_case) {
  litmus::HarnessConfig config = BaseConfig();
  config.txn.mode = bug_case.mode;
  config.txn.bugs = bug_case.flags;
  config.iterations = 120;
  config.crash_percent = bug_case.crash_percent;
  config.seed = bug_case.seed;
  config.schedule = bug_case.policy;
  config.runs_per_txn = bug_case.runs_per_txn;
  config.stop_after_violations = 1;
  litmus::LitmusHarness harness(config);
  const litmus::LitmusReport report = harness.Run(bug_case.spec);
  if (report.violations > 0) {
    std::printf("%-12s %-26s %-4s CAUGHT after %5d iterations: %s\n",
                bug_case.litmus, bug_case.bug, bug_case.category,
                report.iterations,
                report.failures.empty() ? "(violation)"
                                        : report.failures[0].c_str());
    return;
  }
  std::printf("%-12s %-26s %-4s NOT reproduced within budget\n",
              bug_case.litmus, bug_case.bug, bug_case.category);
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;
  using litmus::LitmusSpec;

  PrintHeader("Litmus-test validation: bugs found and fixed",
              "Table 1 (§5.1): three bug categories — online-failure-free "
              "(C1), online-recovery (C2) — each caught by the framework "
              "when re-enabled, absent with the fixes");

  // --- The fixed protocols pass every litmus test.
  std::printf("--- fixed protocols under randomized crash injection ---\n");
  for (const txn::ProtocolMode mode :
       {txn::ProtocolMode::kPandora, txn::ProtocolMode::kFordBaseline}) {
    litmus::HarnessConfig config = BaseConfig();
    config.txn.mode = mode;
    config.iterations = FastMode() ? 20 : 40;
    litmus::LitmusHarness harness(config);
    int total_violations = 0;
    int total_crashes = 0;
    int total_inconclusive = 0;
    for (const LitmusSpec& spec : litmus::AllLitmusSpecs()) {
      const litmus::LitmusReport report = harness.Run(spec);
      total_violations += report.violations;
      total_crashes += report.crashes_injected;
      total_inconclusive += report.inconclusive;
      if (report.violations > 0) {
        std::printf("  VIOLATION in %s: %s\n", spec.name.c_str(),
                    report.failures[0].c_str());
      }
    }
    std::printf("%-10s all litmus specs: %d violations over %d injected "
                "crashes (%d iterations inconclusive)\n",
                mode == txn::ProtocolMode::kPandora ? "Pandora" : "Baseline",
                total_violations, total_crashes, total_inconclusive);
  }

  // --- Each Table-1 bug, re-enabled, is caught.
  std::printf("\n--- re-enabled FORD bugs ---\n");
  std::printf("%-12s %-26s %-4s result\n", "litmus", "bug", "cat");

  txn::BugFlags flags;

  flags = {};
  flags.complicit_abort = true;
  // Intra-phase three-party CAS race: needs verb-order exploration (the
  // lockstep rendezvous cannot order it — see DESIGN.md).
  RunBugCase({"litmus-1", "Complicit Aborts", "C1",
              txn::ProtocolMode::kPandora, flags,
              litmus::Litmus1LockRelease(), 0, 7,
              litmus::SchedulePolicy::kVerbExhaustive,
              /*runs_per_txn=*/3});

  flags = {};
  flags.missing_insert_logging = true;
  RunBugCase({"litmus-1", "Missing Actions (inserts)", "C2",
              txn::ProtocolMode::kFordBaseline, flags,
              litmus::Litmus1Inserts(), 100, 17,
              litmus::SchedulePolicy::kVerbExhaustive});

  flags = {};
  flags.covert_locks = true;
  RunBugCase({"litmus-2", "Covert Locks", "C1",
              txn::ProtocolMode::kPandora, flags, litmus::Litmus2(), 0, 11,
              litmus::SchedulePolicy::kExhaustive});

  flags = {};
  flags.relaxed_locks = true;
  RunBugCase({"litmus-2", "Relaxed Locks", "C1",
              txn::ProtocolMode::kPandora, flags, litmus::Litmus2(), 0, 13,
              litmus::SchedulePolicy::kExhaustive});

  flags = {};
  flags.lost_decision = true;
  RunBugCase({"litmus-3", "Lost Decision", "C2",
              txn::ProtocolMode::kFordBaseline, flags,
              litmus::Litmus3AbortLogging(), 100, 19,
              litmus::SchedulePolicy::kExhaustive});

  flags = {};
  flags.logging_without_locking = true;
  flags.lost_decision = true;
  // The guilty unlocked-log window only stays open for a single run per
  // slot; kVerbExhaustive explores run count 1 automatically, so no
  // manual runs_per_txn knob (see tests/litmus_test.cc).
  RunBugCase({"litmus-3", "Logging without locking", "C2",
              txn::ProtocolMode::kFordBaseline, flags,
              litmus::Litmus1PartialOverlap(), 100, 23,
              litmus::SchedulePolicy::kVerbExhaustive});

  return 0;
}

// Elasticity under traffic: a SmallBank cluster keeps committing while a
// standby memory server live-joins the ring mid-run and is later drained
// back out. The timeline shows throughput before / during / after both
// migrations; the gate holds the during-migration floor (no cliff) and the
// money-conservation audit (no migration may lose a committed write).
//
// This is the throughput companion of the crash-during-migration litmus
// spec: the litmus hunt proves the epoch fence is *necessary* (cutting
// over without it is caught), this bench proves it is *cheap* — the
// cutover stall and the fence-abort/retry traffic must not halve
// steady-state throughput.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/reconfig.h"
#include "txn/coordinator.h"
#include "workloads/smallbank.h"

namespace pandora {
namespace bench {
namespace {

constexpr uint32_t kActiveMemoryNodes = 4;
constexpr uint32_t kCoordinators = 128;
constexpr uint64_t kPaceUs = 4000;

cluster::ClusterConfig ElasticityCluster() {
  cluster::ClusterConfig config;
  config.memory_nodes = kActiveMemoryNodes;
  config.standby_memory_nodes = 1;  // The server that joins mid-run.
  config.compute_nodes = 2;
  config.replication = 2;
  config.net.one_way_ns = 1500;   // Low-µs RDMA round trips (PaperTestbed).
  config.net.per_byte_ns = 0.08;  // 100 Gbps.
  // SmallBank write-sets are <= 4 objects: a slim log keeps five memory
  // servers from reserving PaperTestbed's log footprint each.
  config.log.slots_per_coordinator = 32;
  config.log.slot_bytes = 1024;
  config.log.max_coordinators = 192;
  return config;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Gate {
  std::vector<std::string> failures;

  void Check(bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  }
};

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader(
      "Elasticity: live memory-server join + drain under SmallBank traffic",
      "online reconfiguration (ROADMAP item: epoch-fenced range "
      "migration); throughput before/during/after the migrations, with "
      "the money-conservation audit as the zero-loss checker");

  const uint64_t duration_ms = Scaled(2400);
  const uint64_t bucket_ms = duration_ms / 12;

  workloads::SmallBankConfig bank_config;
  // Scaled with the run length: the bulk copy's wall time grows with the
  // table, and the fault thread is sequential — a join overrunning the
  // drain's fire time in a quarter-length fast run would skip the drain.
  bank_config.num_accounts = Scaled(10'000);
  bank_config.hot_accounts = Scaled(1000);
  // Conserving profiles only: the total balance is invariant under any
  // interleaving, so a migration that drops or duplicates one committed
  // write is caught by a single audit read.
  bank_config.conserving_only = true;
  workloads::SmallBankWorkload bank(bank_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = txn::ProtocolMode::kPandora;
  rm.fd = BenchFd();
  Testbed testbed(ElasticityCluster(), rm, &bank);

  cluster::Cluster& cluster = testbed.cluster();
  const rdma::NodeId standby = cluster.memory_node_id(kActiveMemoryNodes);
  // The recovery layer supplies the quiesce hooks, so the cutover window
  // coordinates with in-flight transactions exactly as in production.
  cluster::ReconfigManager migrator(&cluster,
                                    testbed.manager().MakeReconfigOptions());

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = kCoordinators;
  driver_config.duration_ms = duration_ms;
  driver_config.bucket_ms = bucket_ms;
  driver_config.pace_us = kPaceUs;
  driver_config.txn.mode = txn::ProtocolMode::kPandora;
  auto driver = testbed.MakeDriver(driver_config);

  // Join at 1/3, drain at 2/3: buckets 4 and 8 of 12 are the migration
  // buckets, leaving clean steady-state windows before, between, and
  // after.
  std::atomic<bool> join_ok{false};
  std::atomic<bool> drain_ok{false};
  std::atomic<uint64_t> join_ns{0};
  std::atomic<uint64_t> drain_ns{0};
  workloads::FaultEvent join_event;
  join_event.kind = workloads::FaultEvent::Kind::kReconfig;
  join_event.at_ms = duration_ms / 3;
  join_event.action = [&] {
    const uint64_t start = NowNs();
    const Status status = migrator.JoinMemoryNode(standby);
    join_ns.store(NowNs() - start);
    join_ok.store(status.ok());
    if (!status.ok()) {
      std::fprintf(stderr, "live join failed: %s\n",
                   status.ToString().c_str());
    }
  };
  driver->AddFault(join_event);
  workloads::FaultEvent drain_event;
  drain_event.kind = workloads::FaultEvent::Kind::kReconfig;
  drain_event.at_ms = 2 * duration_ms / 3;
  drain_event.action = [&] {
    const uint64_t start = NowNs();
    const Status status = migrator.DrainMemoryNode(standby);
    drain_ns.store(NowNs() - start);
    drain_ok.store(status.ok());
    if (!status.ok()) {
      std::fprintf(stderr, "planned drain failed: %s\n",
                   status.ToString().c_str());
    }
  };
  driver->AddFault(drain_event);

  const workloads::DriverResult result = driver->Run();

  // The audit: a fresh coordinator sums every balance transactionally.
  // Any committed write lost (or resurrected) by either migration shifts
  // the total.
  int64_t total = 0;
  bool audit_read_ok = false;
  {
    std::vector<uint16_t> ids;
    if (testbed.manager()
            .RegisterComputeNode(cluster.compute(0), 1, &ids)
            .ok()) {
      txn::Coordinator auditor(&cluster, cluster.compute(0), ids[0],
                               txn::TxnConfig(), &testbed.gate());
      audit_read_ok = bank.TotalBalance(&auditor, &total).ok();
    }
  }
  const bool conserved = audit_read_ok && total == bank.ExpectedTotal();

  // Steady vs during-migration throughput. Bucket 0 is warmup; the
  // steady window is the pre-join buckets 1..3, the migration buckets are
  // the ones the join and drain fire in.
  double steady_mtps = 0;
  for (int b = 1; b <= 3; ++b) steady_mtps += result.timeline_mtps[b];
  steady_mtps /= 3.0;
  const double join_bucket_mtps = result.timeline_mtps[4];
  const double drain_bucket_mtps = result.timeline_mtps[8];
  const double during_mtps = std::min(join_bucket_mtps, drain_bucket_mtps);
  const double during_over_steady =
      steady_mtps > 0 ? during_mtps / steady_mtps : 0.0;

  const double attempts =
      static_cast<double>(result.committed + result.aborted);
  const double reconfig_abort_rate =
      attempts > 0
          ? static_cast<double>(result.totals.reconfig_aborts) / attempts
          : 0.0;
  const cluster::ReconfigStats mig = migrator.stats();

  PrintTimeline("join@1/3 drain@2/3", result.timeline_mtps, bucket_ms);
  PrintRow("steady-state average (pre-join)", steady_mtps, "MTps");
  PrintRow("join-bucket throughput", join_bucket_mtps, "MTps");
  PrintRow("drain-bucket throughput", drain_bucket_mtps, "MTps");
  PrintRow("during/steady ratio", during_over_steady, "x");
  PrintRow("join migration time",
           static_cast<double>(join_ns.load()) / 1e6, "ms");
  PrintRow("drain migration time",
           static_cast<double>(drain_ns.load()) / 1e6, "ms");
  PrintRow("cutover stall (last)",
           static_cast<double>(mig.last_cutover_ns) / 1e6, "ms");
  PrintRow("objects copied", static_cast<double>(mig.objects_copied), "");
  PrintRow("objects re-copied at cutover",
           static_cast<double>(mig.objects_recopied), "");
  PrintRow("reconfig-abort rate", reconfig_abort_rate, "");
  PrintRow("reconfig retries",
           static_cast<double>(result.totals.reconfig_retries), "");
  PrintLatencyRows("elasticity", result);
  std::printf("bank audit: total %lld expected %lld (%s)\n",
              static_cast<long long>(total),
              static_cast<long long>(bank.ExpectedTotal()),
              conserved ? "CONSERVED" : "MONEY LEAKED — BUG");

  BenchJson json("elasticity");
  json.SetText("git_sha", GitSha());
  json.Set("config.memory_nodes", kActiveMemoryNodes);
  json.Set("config.standby_memory_nodes", 1);
  json.Set("config.replication", 2);
  json.Set("config.coordinators", kCoordinators);
  json.Set("config.pace_us", kPaceUs);
  json.Set("config.duration_ms", static_cast<double>(duration_ms));
  json.Set("config.num_accounts",
           static_cast<double>(bank_config.num_accounts));
  json.Set("config.fast_mode", FastMode() ? 1 : 0);
  AddDriverMetrics(&json, "elasticity", result);
  for (size_t b = 0; b < result.timeline_mtps.size(); ++b) {
    json.Set("timeline.bucket" + std::to_string(b), result.timeline_mtps[b]);
  }
  json.Set("steady_mtps", steady_mtps);
  json.Set("join_bucket_mtps", join_bucket_mtps);
  json.Set("drain_bucket_mtps", drain_bucket_mtps);
  json.Set("during_over_steady", during_over_steady);
  json.Set("join_ok", join_ok.load() ? 1 : 0);
  json.Set("drain_ok", drain_ok.load() ? 1 : 0);
  json.Set("join_ms", static_cast<double>(join_ns.load()) / 1e6);
  json.Set("drain_ms", static_cast<double>(drain_ns.load()) / 1e6);
  json.Set("migration.objects_copied",
           static_cast<double>(mig.objects_copied));
  json.Set("migration.objects_recopied",
           static_cast<double>(mig.objects_recopied));
  json.Set("migration.ranges_migrated",
           static_cast<double>(mig.ranges_migrated));
  json.Set("migration.copy_rtts", static_cast<double>(mig.copy_rtts));
  json.Set("migration.last_migration_ms",
           static_cast<double>(mig.last_migration_ns) / 1e6);
  json.Set("migration.last_cutover_ms",
           static_cast<double>(mig.last_cutover_ns) / 1e6);
  json.Set("reconfig_aborts",
           static_cast<double>(result.totals.reconfig_aborts));
  json.Set("reconfig_retries",
           static_cast<double>(result.totals.reconfig_retries));
  json.Set("reconfig_abort_rate", reconfig_abort_rate);
  json.Set("conserved", conserved ? 1 : 0);
  json.Write();

  const char* gate_env = std::getenv("PANDORA_BENCH_GATE");
  if (gate_env == nullptr || gate_env[0] != '1') return 0;

  const bool fast = FastMode();
  Gate gate;
  gate.Check(join_ok.load(), "live join did not complete");
  gate.Check(drain_ok.load(), "planned drain did not complete");
  gate.Check(conserved, "money-conservation audit failed: total " +
                            std::to_string(total) + " expected " +
                            std::to_string(bank.ExpectedTotal()));
  gate.Check(result.committed > 0, "no transactions committed");
  // The elasticity bar: migrating a fifth of the key space must not cliff
  // throughput. Quarter-length fast buckets are noisier; loosen there.
  const double min_ratio = fast ? 0.35 : 0.50;
  gate.Check(during_over_steady >= min_ratio,
             "during/steady ratio " + std::to_string(during_over_steady) +
                 " < " + std::to_string(min_ratio));

  if (!gate.failures.empty()) {
    for (const std::string& failure : gate.failures) {
      std::fprintf(stderr, "BENCH GATE VIOLATION: %s\n", failure.c_str());
    }
    return 1;
  }
  std::printf("bench gate: elasticity bars met%s\n",
              fast ? " (fast-mode thresholds)" : "");
  return 0;
}

// Micro-operation costs of the simulated substrate and the protocol
// building blocks (google-benchmark). Supporting data for interpreting the
// macro benches: verb costs, lock/unlock cycles, log-record framing, ring
// lookups and the PILL failed-ids check.

#include <benchmark/benchmark.h>

#include "cluster/placement.h"
#include "common/checksum.h"
#include "common/fixed_bitset.h"
#include "rdma/fabric.h"
#include "store/log_layout.h"
#include "store/object_header.h"

namespace pandora {
namespace {

// Zero-latency fabric: measures the simulator's per-verb bookkeeping cost.
struct VerbFixture {
  VerbFixture()
      : fabric(rdma::NetworkConfig{.one_way_ns = 0, .per_byte_ns = 0}) {
    pd = fabric.AttachMemoryNode(0);
    rkey = pd->RegisterRegion(1 << 20, "bench");
    qp = fabric.CreateQueuePair(1, 0);
  }
  rdma::Fabric fabric;
  rdma::ProtectionDomain* pd;
  rdma::RKey rkey;
  std::unique_ptr<rdma::QueuePair> qp;
};

void BM_VerbRead64(benchmark::State& state) {
  VerbFixture fixture;
  alignas(8) uint64_t value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.qp->Read(fixture.rkey, 0, &value, 8));
  }
}
BENCHMARK(BM_VerbRead64);

void BM_VerbWrite1K(benchmark::State& state) {
  VerbFixture fixture;
  alignas(8) char buf[1024] = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.qp->Write(fixture.rkey, 0, buf, sizeof(buf)));
  }
}
BENCHMARK(BM_VerbWrite1K);

void BM_LockUnlockCycle(benchmark::State& state) {
  VerbFixture fixture;
  const store::LockWord mine = store::MakeLock(7);
  const uint64_t zero = 0;
  for (auto _ : state) {
    uint64_t observed = 0;
    benchmark::DoNotOptimize(
        fixture.qp->CompareSwap(fixture.rkey, 0, 0, mine, &observed));
    benchmark::DoNotOptimize(
        fixture.qp->Write(fixture.rkey, 0, &zero, 8));
  }
}
BENCHMARK(BM_LockUnlockCycle);

void BM_FailedIdCheck(benchmark::State& state) {
  FailedIdBitset bits;
  bits.Set(123);
  uint16_t owner = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.Test(owner++));
  }
}
BENCHMARK(BM_FailedIdCheck);

void BM_LogRecordSerialize(benchmark::State& state) {
  store::LogRecord record;
  record.txn_id = 42;
  record.coord_id = 7;
  for (int i = 0; i < state.range(0); ++i) {
    store::LogEntry entry;
    entry.table = 1;
    entry.key = static_cast<store::Key>(i);
    entry.old_version = store::MakeVersion(3, false);
    entry.old_value.assign(40, 'v');
    record.entries.push_back(entry);
  }
  std::vector<char> buf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store::SerializeLogRecord(record, 8192, &buf));
  }
}
BENCHMARK(BM_LogRecordSerialize)->Arg(1)->Arg(4)->Arg(16);

void BM_LogRecordParse(benchmark::State& state) {
  store::LogRecord record;
  record.txn_id = 42;
  record.coord_id = 7;
  for (int i = 0; i < 8; ++i) {
    store::LogEntry entry;
    entry.key = static_cast<store::Key>(i);
    entry.old_value.assign(40, 'v');
    record.entries.push_back(entry);
  }
  std::vector<char> buf;
  store::SerializeLogRecord(record, 8192, &buf);
  std::vector<char> slot(8192, 0);
  std::memcpy(slot.data(), buf.data(), buf.size());
  store::LogRecord parsed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store::ParseLogRecord(slot.data(), 8192, &parsed));
  }
}
BENCHMARK(BM_LogRecordParse);

void BM_RingLookup(benchmark::State& state) {
  cluster::HashRing ring({0, 1, 2, 3, 4}, 3);
  store::Key key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ReplicasFor(1, key++));
  }
}
BENCHMARK(BM_RingLookup);

// The allocation-free counterpart of BM_RingLookup: same ring walk, but
// the replica set comes back inline (no vector, no heap). The delta
// between these two is the per-lookup malloc/free cost the placement
// refactor removed from ExecuteOp.
void BM_RingLookupInline(benchmark::State& state) {
  cluster::HashRing ring({0, 1, 2, 3, 4}, 3);
  store::Key key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ReplicaSetFor(1, key++));
  }
}
BENCHMARK(BM_RingLookupInline);

// Warm placement-cache hit: hash fold + direct-mapped probe + 18-byte
// copy. This is ExecuteOp's per-op placement cost on skewed workloads.
void BM_PlacementCacheHit(benchmark::State& state) {
  cluster::HashRing ring({0, 1, 2, 3, 4}, 3);
  cluster::PlacementCache cache;
  constexpr uint64_t kKeys = 256;
  for (store::Key key = 0; key < kKeys; ++key) {
    const uint64_t hash = cluster::HashRing::PlacementHash(1, key);
    cache.Insert(hash, /*epoch=*/1, ring.ReplicaSetForHash(hash));
  }
  store::Key key = 0;
  for (auto _ : state) {
    const uint64_t hash =
        cluster::HashRing::PlacementHash(1, key++ % kKeys);
    const cluster::ReplicaSet* hit = cache.Lookup(hash, 1);
    benchmark::DoNotOptimize(hit != nullptr ? *hit
                                            : ring.ReplicaSetForHash(hash));
  }
}
BENCHMARK(BM_PlacementCacheHit);

void BM_KeyHash(benchmark::State& state) {
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKey(key++));
  }
}
BENCHMARK(BM_KeyHash);

}  // namespace
}  // namespace pandora

BENCHMARK_MAIN();

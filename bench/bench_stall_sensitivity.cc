// Reproduces Figures 13 and 14 (§6.4 "Sensitivity to stalls"): a 100%-
// write microbenchmark where transactions *stall* on conflicting locks
// instead of aborting, while half the coordinators crash mid-run.
//
//  * 1,000 hot keys (Figure 13): with slow (Baseline scan) recovery the
//    stalled coordinators pile up on stray locks and throughput collapses
//    to ~zero; with Pandora's fast recovery it dips and stabilizes.
//  * 100,000 hot keys (Figure 14): fewer conflicts, so slow recovery
//    degrades gradually instead of collapsing, and fast recovery holds
//    steady.

#include "bench/bench_util.h"
#include "workloads/micro.h"

namespace pandora {
namespace bench {
namespace {

workloads::DriverResult RunStall(uint64_t hot_keys,
                                 txn::ProtocolMode mode,
                                 uint64_t duration_ms) {
  workloads::MicroConfig micro_config;
  micro_config.num_keys = 100'000;
  micro_config.hot_keys = hot_keys;
  micro_config.write_percent = 100;
  micro_config.ops_per_txn = 2;
  workloads::MicroWorkload workload(micro_config);

  recovery::RecoveryManagerConfig rm;
  rm.mode = mode;
  rm.fd = BenchFd();
  // Model a production-sized KVS for the Baseline's scan: at simulator
  // memory speed a 100k-key scan is milliseconds, but §3.1.1's premise is
  // a multi-second network-bound scan. ~8 us/slot puts the scan at
  // roughly 1.6 s — the "slow recovery" the figures contrast against.
  rm.scan_throttle_ns_per_slot = 8000;
  Testbed testbed(PaperTestbed(), rm, &workload);

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 64;
  driver_config.duration_ms = duration_ms;
  driver_config.bucket_ms = duration_ms / 12;
  driver_config.pace_us = 2000;
  driver_config.txn.mode = mode;
  driver_config.txn.stall_on_conflict = true;
  driver_config.txn.stall_timeout_us = 500'000;
  auto driver = testbed.MakeDriver(driver_config);
  // Crash half the coordinators (one of the two compute nodes) mid-run;
  // restart later so the run does not end starved.
  driver->AddFault(
      {workloads::FaultEvent::Kind::kComputeCrash, duration_ms / 3, 1});
  driver->AddFault({workloads::FaultEvent::Kind::kComputeRestart,
                    2 * duration_ms / 3, 1});
  return driver->Run();
}

void RunFigure(uint64_t hot_keys, const char* figure) {
  const uint64_t duration_ms = Scaled(2400);
  const uint64_t bucket_ms = duration_ms / 12;
  std::printf("\n--- hot objects = %lu (%s) ---\n",
              static_cast<unsigned long>(hot_keys), figure);
  const workloads::DriverResult fast =
      RunStall(hot_keys, txn::ProtocolMode::kPandora, duration_ms);
  PrintTimeline("fast recovery (Pandora)", fast.timeline_mtps, bucket_ms);
  const workloads::DriverResult slow =
      RunStall(hot_keys, txn::ProtocolMode::kFordBaseline, duration_ms);
  PrintTimeline("slow recovery (Baseline)", slow.timeline_mtps, bucket_ms);
  PrintRow("fast-recovery average", fast.mtps, "MTps");
  PrintRow("slow-recovery average", slow.mtps, "MTps");
  PrintRow("fast-recovery stall retries",
           static_cast<double>(fast.totals.stall_retries), "retries");
  PrintRow("slow-recovery stall retries",
           static_cast<double>(slow.totals.stall_retries), "retries");
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Sensitivity of fail-over throughput to stalls",
              "Figures 13-14 (§6.4): stalling transactions wait out "
              "recovery; slow recovery starves hot workloads");
  RunFigure(1000, "Figure 13");
  RunFigure(100'000, "Figure 14");
  return 0;
}

// Reproduces §6.2.1: the steady-state cost of the traditional lock-
// logging scheme (one extra lock-intent round trip per lock before the
// lock CAS). The paper reports overheads vs the FORD baseline of 35%
// (SmallBank), 14% (TPC-C), 2% (TATP) and 21% (100%-write micro) — the
// shape to reproduce: write-heavy workloads hurt most, read-mostly TATP
// barely notices, and Pandora (PILL) costs nothing.

#include <memory>

#include "bench/bench_util.h"
#include "workloads/micro.h"
#include "workloads/smallbank.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"

namespace pandora {
namespace bench {
namespace {

std::unique_ptr<workloads::Workload> MakeWorkload(const std::string& name) {
  if (name == "SmallBank") {
    workloads::SmallBankConfig config;
    config.num_accounts = 10'000;
    config.hot_accounts = 1000;
    return std::make_unique<workloads::SmallBankWorkload>(config);
  }
  if (name == "TPC-C") {
    workloads::TpccConfig config;
    config.warehouses = 2;
    config.districts_per_warehouse = 10;
    config.customers_per_district = 100;
    config.items = 500;
    config.max_orders_per_district = 16384;
    return std::make_unique<workloads::TpccWorkload>(config);
  }
  if (name == "TATP") {
    workloads::TatpConfig config;
    config.subscribers = 10'000;
    return std::make_unique<workloads::TatpWorkload>(config);
  }
  workloads::MicroConfig config;
  config.num_keys = 20'000;
  config.write_percent = 100;
  return std::make_unique<workloads::MicroWorkload>(config);
}

double RunMode(const std::string& workload_name, txn::ProtocolMode mode) {
  auto workload = MakeWorkload(workload_name);
  recovery::RecoveryManagerConfig rm;
  rm.mode = mode;
  rm.fd = BenchFd();
  Testbed testbed(PaperTestbed(), rm, workload.get());

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 128;
  driver_config.duration_ms = Scaled(3000);
  driver_config.txn.mode = mode;
  auto driver = testbed.MakeDriver(driver_config);
  return driver->Run().mtps;
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Traditional lock-logging steady-state overhead",
              "§6.2.1: extra pre-lock logging round trip per lock; "
              "overhead grows with the write ratio (paper: SmallBank 35%, "
              "TPC-C 14%, TATP 2%, micro-100%w 21%)");

  std::printf("%-14s %12s %12s %12s %10s\n", "workload", "baseline",
              "traditional", "pandora", "overhead");
  for (const char* name : {"SmallBank", "TPC-C", "TATP", "MicroBench"}) {
    const double baseline =
        RunMode(name, txn::ProtocolMode::kFordBaseline);
    const double traditional =
        RunMode(name, txn::ProtocolMode::kTraditionalLogging);
    const double pandora = RunMode(name, txn::ProtocolMode::kPandora);
    const double overhead =
        baseline > 0 ? (baseline - traditional) / baseline * 100.0 : 0.0;
    std::printf("%-14s %9.3f MT %9.3f MT %9.3f MT %8.1f%%\n", name,
                baseline, traditional, pandora, overhead);
  }
  return 0;
}

// Schedule-exploration throughput and crash-point coverage of the litmus
// framework's exhaustive mode: for each spec, how many schedules the
// explorer enumerates and executes per second, and what fraction of the
// reachable crash points it actually crashed. Compound rows additionally
// chain every coordinator crash with a recovery-coordinator death and a
// memory-node failure.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "litmus/harness.h"
#include "litmus/litmus_spec.h"

namespace pandora {
namespace bench {
namespace {

litmus::HarnessConfig ExploreConfig() {
  litmus::HarnessConfig config;
  config.schedule = litmus::SchedulePolicy::kExhaustive;
  config.iterations = FastMode() ? 60 : 400;
  config.net.one_way_ns = 1500;
  config.fd.timeout_us = 30'000;
  config.fd.heartbeat_period_us = 2000;
  config.fd.poll_period_us = 2000;
  return config;
}

struct CoverageRow {
  int schedules = 0;
  int skipped = 0;
  int noops = 0;
  int reachable = 0;
  int covered = 0;
  int violations = 0;
  double schedules_per_sec = 0;
  // kVerbExhaustive only: contested-window size and verb-order coverage.
  int verb_window = 0;
  int verb_orders_explored = 0;
  int verb_orders_pruned = 0;
  int verb_kills = 0;
  int verb_diverged = 0;
};

CoverageRow Explore(const litmus::LitmusSpec& spec, bool compound,
                    int runs_per_txn,
                    litmus::SchedulePolicy policy =
                        litmus::SchedulePolicy::kExhaustive) {
  litmus::HarnessConfig config = ExploreConfig();
  config.schedule = policy;
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.runs_per_txn = runs_per_txn;
  config.compound_rc_fault = compound;
  config.compound_memory_kill = compound;
  litmus::LitmusHarness harness(config);
  const uint64_t start_us = NowMicros();
  const litmus::LitmusReport report = harness.Run(spec);
  const uint64_t elapsed_us = NowMicros() - start_us;

  CoverageRow row;
  row.schedules = report.iterations;
  row.skipped = report.schedules_skipped;
  row.noops = report.schedule_noops;
  row.violations = report.violations;
  for (int p = 0; p < txn::kNumCrashPoints; ++p) {
    if (report.point_visits[p] > 0) {
      row.reachable++;
      if (report.point_crashes[p] > 0) row.covered++;
    }
  }
  row.schedules_per_sec =
      elapsed_us > 0 ? report.iterations * 1e6 / elapsed_us : 0;
  row.verb_window = report.verb_window;
  row.verb_orders_explored = report.verb_orders_explored;
  row.verb_orders_pruned = report.verb_orders_pruned;
  row.verb_kills = report.verb_kills_injected;
  row.verb_diverged = report.verb_schedules_diverged;
  return row;
}

void PrintCoverageRow(const char* label, const CoverageRow& row) {
  std::printf("%-28s %5d schedules (%3d skipped, %2d no-op)  "
              "%5.1f schedules/s  points %2d/%2d  violations %d\n",
              label, row.schedules, row.skipped, row.noops,
              row.schedules_per_sec, row.covered, row.reachable,
              row.violations);
}

void PrintVerbRow(const char* label, const CoverageRow& row) {
  std::printf("%-28s window %2d verbs  orders %3d explored / %3d pruned  "
              "%2d kills  %2d diverged  %5.1f schedules/s\n",
              label, row.verb_window, row.verb_orders_explored,
              row.verb_orders_pruned, row.verb_kills, row.verb_diverged,
              row.schedules_per_sec);
}

void AddCoverageMetrics(BenchJson* json, const std::string& prefix,
                        const CoverageRow& row) {
  json->Set(prefix + ".schedules", row.schedules);
  json->Set(prefix + ".schedules_per_sec", row.schedules_per_sec);
  json->Set(prefix + ".points_reachable", row.reachable);
  json->Set(prefix + ".points_covered", row.covered);
  json->Set(prefix + ".noops", row.noops);
  json->Set(prefix + ".violations", row.violations);
}

void AddVerbMetrics(BenchJson* json, const std::string& prefix,
                    const CoverageRow& row) {
  json->Set(prefix + ".verb_window", row.verb_window);
  json->Set(prefix + ".verb_orders_explored", row.verb_orders_explored);
  json->Set(prefix + ".verb_orders_pruned", row.verb_orders_pruned);
  json->Set(prefix + ".verb_kills", row.verb_kills);
  json->Set(prefix + ".verb_diverged", row.verb_diverged);
}

}  // namespace
}  // namespace bench
}  // namespace pandora

int main() {
  using namespace pandora;
  using namespace pandora::bench;

  PrintHeader("Litmus schedule-exploration coverage",
              "§5 crash injection, deterministic mode: schedules "
              "enumerated and executed per second, and reachable "
              "crash points covered, per litmus spec");

  BenchJson json("litmus_coverage");
  // Config block: exploration shape behind every coverage number below
  // (git_sha is stamped by BenchJson::Write).
  json.Set("config.fast_mode", FastMode() ? 1 : 0);
  json.Set("config.spec_cases", 3);
  json.Set("config.compound_cases", 1);

  struct SpecCase {
    const char* label;
    const char* key;
    litmus::LitmusSpec spec;
    int runs_per_txn;
  };
  const SpecCase cases[] = {
      {"litmus-single", "single", litmus::LitmusSingle(), 1},
      {"litmus-1", "litmus1", litmus::Litmus1(), 1},
      {"litmus-2", "litmus2", litmus::Litmus2(), 2},
  };

  std::printf("--- exhaustive exploration ---\n");
  for (const SpecCase& spec_case : cases) {
    const CoverageRow row = Explore(spec_case.spec, /*compound=*/false,
                                    spec_case.runs_per_txn);
    PrintCoverageRow(spec_case.label, row);
    AddCoverageMetrics(&json, spec_case.key, row);
  }

  std::printf("--- compound schedules (RC death + memory kill) ---\n");
  const CoverageRow compound =
      Explore(litmus::LitmusSingle(), /*compound=*/true,
              /*runs_per_txn=*/1);
  PrintCoverageRow("litmus-single+compound", compound);
  AddCoverageMetrics(&json, "single_compound", compound);

  std::printf("--- verb-order exploration (kVerbExhaustive) ---\n");
  for (const SpecCase& spec_case : cases) {
    const CoverageRow row =
        Explore(spec_case.spec, /*compound=*/false,
                spec_case.runs_per_txn,
                litmus::SchedulePolicy::kVerbExhaustive);
    PrintVerbRow(spec_case.label, row);
    const std::string key = std::string(spec_case.key) + "_verb";
    AddCoverageMetrics(&json, key, row);
    AddVerbMetrics(&json, key, row);
  }

  json.Write();
  return 0;
}

// Quickstart: deploy a simulated disaggregated KVS, run a few Pandora
// transactions through the public API, crash the coordinator's compute
// server mid-transaction, and watch recovery clean up.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "common/coding.h"
#include "recovery/recovery_manager.h"
#include "txn/coordinator.h"
#include "txn/system_gate.h"

using namespace pandora;

int main() {
  // --- 1. Deploy: 3 memory servers, 2 compute servers, f+1 = 2 replicas.
  cluster::ClusterConfig cluster_config;
  cluster_config.memory_nodes = 3;
  cluster_config.compute_nodes = 2;
  cluster_config.replication = 2;
  cluster::Cluster cluster(cluster_config);

  // --- 2. Schema + bulk load (control path).
  const store::TableId accounts =
      cluster.CreateTable("accounts", /*value_size=*/8, /*expected_keys=*/
                          1000);
  for (store::Key key = 0; key < 1000; ++key) {
    char value[8];
    EncodeFixed64(value, 100);  // Everyone starts with 100 coins.
    if (!cluster.LoadRow(accounts, key, Slice(value, 8)).ok()) return 1;
  }

  // --- 3. Start the recovery stack: heartbeat failure detector +
  //        recovery coordinator (Pandora's §3.2 protocol).
  txn::SystemGate gate;
  recovery::RecoveryManagerConfig rm_config;
  rm_config.mode = txn::ProtocolMode::kPandora;
  recovery::RecoveryManager manager(&cluster, rm_config, &gate);
  manager.Start();

  // --- 4. A transaction coordinator with a PILL coordinator-id.
  std::vector<uint16_t> ids;
  if (!manager.RegisterComputeNode(cluster.compute(0), 1, &ids).ok()) {
    return 1;
  }
  txn::Coordinator alice(&cluster, cluster.compute(0), ids[0],
                         txn::TxnConfig(), &gate);

  // --- 5. Transfer 25 coins from account 1 to account 2, transactionally.
  std::string value;
  char buf[8];
  alice.Begin();
  alice.Read(accounts, 1, &value);
  const uint64_t from_balance = DecodeFixed64(value.data());
  alice.Read(accounts, 2, &value);
  const uint64_t to_balance = DecodeFixed64(value.data());
  EncodeFixed64(buf, from_balance - 25);
  alice.Write(accounts, 1, Slice(buf, 8));
  EncodeFixed64(buf, to_balance + 25);
  alice.Write(accounts, 2, Slice(buf, 8));
  const Status commit_status = alice.Commit();
  std::printf("transfer committed: %s\n",
              commit_status.ToString().c_str());

  // --- 6. Crash the compute server while a transaction holds locks.
  alice.Begin();
  EncodeFixed64(buf, 0);
  alice.Write(accounts, 7, Slice(buf, 8));  // Locks account 7...
  cluster.CrashComputeNode(cluster.compute_node_id(0));  // ...and dies.
  std::printf("compute node crashed mid-transaction (lock held on "
              "account 7)\n");

  // --- 7. The failure detector notices within its timeout, revokes the
  //        node's RDMA rights, rolls logged stray transactions forward or
  //        back, and notifies survivors so they can steal stray locks.
  if (!manager.WaitForComputeRecovery(cluster.compute_node_id(0),
                                      2'000'000)) {
    std::printf("recovery did not complete!\n");
    return 1;
  }
  std::printf("recovery completed in %.2f ms\n",
              static_cast<double>(manager.last_recovery_latency_ns()) /
                  1e6);

  // --- 8. A survivor on the other compute node carries on: it steals the
  //        stray lock through PILL and sees only committed state.
  std::vector<uint16_t> bob_ids;
  manager.RegisterComputeNode(cluster.compute(1), 1, &bob_ids);
  txn::Coordinator bob(&cluster, cluster.compute(1), bob_ids[0],
                       txn::TxnConfig(), &gate);
  bob.Begin();
  bob.Read(accounts, 1, &value);
  std::printf("account 1 after recovery: %lu (expected 75)\n",
              static_cast<unsigned long>(DecodeFixed64(value.data())));
  bob.Read(accounts, 2, &value);
  std::printf("account 2 after recovery: %lu (expected 125)\n",
              static_cast<unsigned long>(DecodeFixed64(value.data())));
  EncodeFixed64(buf, 42);
  bob.Write(accounts, 7, Slice(buf, 8));  // Steals the stray lock.
  bob.Commit();
  std::printf("survivor stole %lu stray lock(s) and committed\n",
              static_cast<unsigned long>(bob.stats().locks_stolen));

  manager.Stop();
  return 0;
}

// Fail-over tour: run the TATP workload on a four-node deployment while
// crashing (a) a compute server and (b) a memory server, printing the
// live throughput timeline — a miniature of the paper's Figures 9-11.
//
//   $ ./examples/failover_tour

#include <cstdio>

#include "recovery/recovery_manager.h"
#include "txn/system_gate.h"
#include "workloads/driver.h"
#include "workloads/tatp.h"

using namespace pandora;

int main() {
  cluster::ClusterConfig cluster_config;
  cluster_config.memory_nodes = 2;
  cluster_config.compute_nodes = 2;
  cluster_config.replication = 2;
  cluster_config.net.one_way_ns = 1500;
  cluster_config.net.per_byte_ns = 0.08;
  cluster::Cluster cluster(cluster_config);

  workloads::TatpConfig tatp_config;
  tatp_config.subscribers = 5000;
  workloads::TatpWorkload tatp(tatp_config);
  if (!tatp.Setup(&cluster).ok()) return 1;

  txn::SystemGate gate;
  recovery::RecoveryManagerConfig rm_config;
  rm_config.fd.timeout_us = 100'000;
  rm_config.fd.heartbeat_period_us = 10'000;
  rm_config.fd.poll_period_us = 10'000;
  rm_config.memory_reconfig_us = 50'000;
  recovery::RecoveryManager manager(&cluster, rm_config, &gate);
  manager.Start();

  workloads::DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 32;
  driver_config.duration_ms = 2000;
  driver_config.bucket_ms = 200;
  workloads::Driver driver(&cluster, &manager, &gate, &tatp,
                           driver_config);

  // t=500ms: compute server 1 dies (half the coordinators). Pandora keeps
  // serving on the survivor; the node is restarted at t=1000ms.
  driver.AddFault({workloads::FaultEvent::Kind::kComputeCrash, 500, 1});
  driver.AddFault({workloads::FaultEvent::Kind::kComputeRestart, 1000, 1});
  // t=1500ms: memory server 0 dies; the KVS pauses briefly to install the
  // new primaries (backups take over), then resumes.
  driver.AddFault({workloads::FaultEvent::Kind::kMemoryCrash, 1500, 0});

  std::printf("running TATP for 2 s: compute crash @500ms, restart "
              "@1000ms, memory crash @1500ms\n\n");
  const workloads::DriverResult result = driver.Run();

  std::printf("%-8s %10s\n", "t (ms)", "kTps");
  for (size_t bucket = 0; bucket < result.timeline_mtps.size(); ++bucket) {
    const double ktps = result.timeline_mtps[bucket] * 1000.0;
    std::printf("%-8zu %10.1f  ", bucket * 200, ktps);
    const int bars = static_cast<int>(ktps / 2);
    for (int b = 0; b < bars && b < 60; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf("\ncommitted %lu txns, %lu aborted, %lu stray locks "
              "stolen\n",
              static_cast<unsigned long>(result.committed),
              static_cast<unsigned long>(result.aborted),
              static_cast<unsigned long>(result.totals.locks_stolen));
  manager.Stop();
  return result.committed > 0 ? 0 : 1;
}

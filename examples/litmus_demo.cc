// Litmus-framework walkthrough: validate Pandora under randomized crash
// injection, then re-enable one of FORD's original bugs (Covert Locks) and
// watch the framework catch the strict-serializability violation.
//
//   $ ./examples/litmus_demo

#include <cstdio>

#include "litmus/harness.h"
#include "litmus/litmus_spec.h"

using namespace pandora;

namespace {

litmus::HarnessConfig DemoConfig() {
  litmus::HarnessConfig config;
  config.iterations = 60;
  config.net.one_way_ns = 1500;
  // Generous detection timing: the demo saturates both host cores, and
  // starved heartbeats would otherwise flood the run with (safe but
  // noisy) false-positive evictions.
  config.fd.timeout_us = 150'000;
  config.fd.heartbeat_period_us = 10'000;
  config.fd.poll_period_us = 10'000;
  return config;
}

void PrintReport(const litmus::LitmusReport& report) {
  std::printf("  %-26s %3d iterations, %3d crashes injected, "
              "%d violations%s\n",
              report.spec_name.c_str(), report.iterations,
              report.crashes_injected, report.violations,
              report.passed() ? "" : "  <-- BUG CAUGHT");
  for (const std::string& failure : report.failures) {
    std::printf("      %s\n", failure.c_str());
  }
}

}  // namespace

int main() {
  // --- 1. Pandora passes every litmus test, crashes and all.
  std::printf("validating Pandora (all fixes in) ...\n");
  {
    litmus::HarnessConfig config = DemoConfig();
    config.txn.mode = txn::ProtocolMode::kPandora;
    litmus::LitmusHarness harness(config);
    for (const litmus::LitmusSpec& spec : litmus::AllLitmusSpecs()) {
      PrintReport(harness.Run(spec));
    }
  }

  // --- 2. Re-enable FORD's Covert Locks bug (validation does not check
  //        whether read-set objects are locked) and let litmus 2 expose
  //        the read-write cycle it permits.
  std::printf("\nre-enabling the Covert Locks bug (Table 1, C1) ...\n");
  {
    litmus::HarnessConfig config = DemoConfig();
    config.txn.mode = txn::ProtocolMode::kPandora;
    config.txn.bugs.covert_locks = true;
    config.crash_percent = 0;  // A pure concurrency bug: no crashes needed.
    config.iterations = 300;
    litmus::LitmusHarness harness(config);
    const litmus::LitmusReport report = harness.Run(litmus::Litmus2());
    PrintReport(report);
    if (report.passed()) {
      std::printf("  (racy bug did not manifest this run — try again)\n");
    }
  }
  return 0;
}

// SmallBank under fire: four compute servers hammer a bank with
// money-conserving transactions while compute servers crash and restart
// repeatedly; an auditor then proves that not a single coin was created
// or destroyed across all crashes and recoveries.
//
//   $ ./examples/bank_audit

#include <cstdio>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "recovery/recovery_manager.h"
#include "txn/system_gate.h"
#include "workloads/smallbank.h"

using namespace pandora;

int main() {
  cluster::ClusterConfig cluster_config;
  cluster_config.memory_nodes = 3;
  cluster_config.compute_nodes = 4;
  cluster_config.replication = 2;
  cluster::Cluster cluster(cluster_config);

  workloads::SmallBankConfig bank_config;
  bank_config.num_accounts = 2000;
  bank_config.hot_accounts = 50;
  bank_config.conserving_only = true;  // Crashes cannot excuse lost coins.
  workloads::SmallBankWorkload bank(bank_config);
  if (!bank.Setup(&cluster).ok()) return 1;

  txn::SystemGate gate;
  recovery::RecoveryManagerConfig rm_config;
  // Generous detection timing: four busy worker threads on two cores can
  // starve heartbeats; false positives are safe but noisy.
  rm_config.fd.timeout_us = 150'000;
  rm_config.fd.heartbeat_period_us = 10'000;
  rm_config.fd.poll_period_us = 10'000;
  recovery::RecoveryManager manager(&cluster, rm_config, &gate);
  manager.Start();

  std::printf("initial bank total: %lld\n",
              static_cast<long long>(bank.ExpectedTotal()));

  // Three worker nodes run transactions; node 0 is crashed twice.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  for (uint32_t node = 0; node < 4; ++node) {
    workers.emplace_back([&, node] {
      Random rng(node + 1);
      while (!stop.load()) {
        std::vector<uint16_t> ids;
        if (!manager.RegisterComputeNode(cluster.compute(node), 1, &ids)
                 .ok()) {
          return;
        }
        txn::Coordinator coord(&cluster, cluster.compute(node), ids[0],
                               txn::TxnConfig(), &gate);
        while (!stop.load()) {
          const Status status = bank.RunTransaction(&coord, &rng);
          if (status.ok()) {
            committed.fetch_add(1);
          } else if (status.IsUnavailable() ||
                     status.IsPermissionDenied()) {
            // Our node crashed or was fenced. Wait out the restart /
            // recovery, restore the links (false-positive rejoin), and
            // come back with a fresh coordinator-id.
            const rdma::NodeId self = cluster.compute_node_id(node);
            while (!stop.load() && (cluster.fabric().IsHalted(self) ||
                                    manager.pending_recoveries() > 0)) {
              SleepForMicros(1000);
            }
            if (!stop.load()) cluster.RestartComputeNode(self);
            break;
          }
        }
      }
    });
  }

  for (int round = 1; round <= 2; ++round) {
    SleepForMicros(150'000);
    const rdma::NodeId victim = cluster.compute_node_id(0);
    const uint64_t before = manager.recovery_count(victim);
    std::printf("round %d: crashing compute node %u...\n", round, victim);
    cluster.CrashComputeNode(victim);
    if (!manager.WaitForComputeRecovery(victim, 5'000'000, before)) {
      std::printf("recovery timed out!\n");
      return 1;
    }
    const recovery::RecoveryStats stats = manager.last_recovery_stats();
    std::printf(
        "  recovered in %.2f ms: %lu logged txns (%lu forward, %lu "
        "back), %lu locks released\n",
        static_cast<double>(manager.last_recovery_latency_ns()) / 1e6,
        static_cast<unsigned long>(stats.logged_txns),
        static_cast<unsigned long>(stats.rolled_forward),
        static_cast<unsigned long>(stats.rolled_back),
        static_cast<unsigned long>(stats.locks_released));
    cluster.RestartComputeNode(victim);
  }

  SleepForMicros(150'000);
  stop.store(true);
  for (auto& worker : workers) worker.join();

  // The audit: every coin must still be there.
  std::vector<uint16_t> ids;
  if (!manager.RegisterComputeNode(cluster.compute(1), 1, &ids).ok()) {
    std::printf("auditor registration failed\n");
    return 1;
  }
  txn::Coordinator auditor(&cluster, cluster.compute(1), ids[0],
                           txn::TxnConfig(), &gate);
  int64_t total = 0;
  if (!bank.TotalBalance(&auditor, &total).ok()) return 1;
  std::printf("committed %lu transactions across 2 crash/recovery "
              "cycles\n",
              static_cast<unsigned long>(committed.load()));
  std::printf("final bank total:   %lld (%s)\n",
              static_cast<long long>(total),
              total == bank.ExpectedTotal() ? "CONSERVED"
                                            : "MONEY LEAKED — BUG");
  manager.Stop();
  return total == bank.ExpectedTotal() ? 0 : 1;
}

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/atomic_copy.h"
#include "common/checksum.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/fiber.h"
#include "common/fixed_bitset.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace pandora {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::PermissionDenied().IsPermissionDenied());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, MessageIncludedInToString) {
  Status s = Status::Aborted("validation failed");
  EXPECT_EQ(s.ToString(), "Aborted: validation failed");
}

Status FailsEarly(bool fail) {
  PANDORA_RETURN_NOT_OK(fail ? Status::Busy("locked") : Status::OK());
  return Status::NotFound("reached end");
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(FailsEarly(true).IsBusy());
  EXPECT_TRUE(FailsEarly(false).IsNotFound());
}

// ---------------------------------------------------------------- Result --

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = ParsePositive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.value_or(42), 42);
}

Status UseAssignOrReturn(int in, int* out) {
  PANDORA_ASSIGN_OR_RETURN(*out, ParsePositive(in));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseAssignOrReturn(-5, &out).IsInvalidArgument());
}

// ----------------------------------------------------------------- Slice --

TEST(SliceTest, BasicAndEquality) {
  std::string s = "hello";
  Slice a(s);
  Slice b("hello", 5);
  Slice c("hellx", 5);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_EQ(a[1], 'e');
  EXPECT_TRUE(Slice().empty());
}

// ---------------------------------------------------------------- Random --

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(RandomTest, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, PercentTrueIsRoughlyCalibrated) {
  Random r(99);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.PercentTrue(30) ? 1 : 0;
  EXPECT_NEAR(hits, 30000, 1500);
}

TEST(ZipfTest, InRangeAndSkewed) {
  ZipfGenerator zipf(1000, 0.99, 42);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank 0 must be much hotter than the tail under theta=0.99.
  EXPECT_GT(counts[0], counts[500] * 10);
  EXPECT_GT(counts[0], 1000);
}

TEST(ZipfTest, LowThetaIsCloserToUniform) {
  ZipfGenerator zipf(100, 0.1, 42);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Next()]++;
  // Hottest key should be well below 10% of accesses.
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  EXPECT_LT(max_count, 10000);
}

// ---------------------------------------------------------------- Bitset --

TEST(FixedBitsetTest, SetTestClear) {
  FailedIdBitset bits;
  EXPECT_FALSE(bits.Test(0));
  EXPECT_FALSE(bits.Test(65535));
  bits.Set(0);
  bits.Set(65535);
  bits.Set(1234);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(65535));
  EXPECT_TRUE(bits.Test(1234));
  EXPECT_FALSE(bits.Test(1233));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Clear(1234);
  EXPECT_FALSE(bits.Test(1234));
  EXPECT_EQ(bits.Count(), 2u);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(FixedBitsetTest, CopyFrom) {
  FailedIdBitset a, b;
  a.Set(7);
  a.Set(700);
  b.CopyFrom(a);
  EXPECT_TRUE(b.Test(7));
  EXPECT_TRUE(b.Test(700));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(PlainFixedBitsetTest, SetTestClearCount) {
  FixedBitset<4096> bits;
  EXPECT_FALSE(bits.Test(0));
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(4095);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(4095));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(PlainFixedBitsetTest, ForEachSetVisitsAscending) {
  FixedBitset<4096> bits;
  const std::vector<size_t> expected = {0, 2, 63, 64, 65, 1000, 4095};
  // Insert out of order; iteration must still come out ascending.
  bits.Set(4095);
  bits.Set(64);
  bits.Set(0);
  bits.Set(1000);
  bits.Set(65);
  bits.Set(2);
  bits.Set(63);
  std::vector<size_t> visited;
  bits.ForEachSet([&](size_t bit) { visited.push_back(bit); });
  EXPECT_EQ(visited, expected);
}

TEST(FixedBitsetTest, ConcurrentSetsAreAllVisible) {
  FailedIdBitset bits;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bits, t] {
      for (int i = 0; i < kPerThread; ++i) bits.Set(t * kPerThread + i);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bits.Count(), static_cast<size_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------- Coding --

TEST(CodingTest, Fixed64RoundTrip) {
  char buf[8];
  EncodeFixed64(buf, 0xdeadbeefcafebabeULL);
  EXPECT_EQ(DecodeFixed64(buf), 0xdeadbeefcafebabeULL);
}

TEST(CodingTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignUp(9, 8), 16u);
  EXPECT_EQ(AlignUp(100, 64), 128u);
}

// -------------------------------------------------------------- Checksum --

TEST(ChecksumTest, Fnv1aDiffersOnDifferentInput) {
  const char a[] = "transaction log record";
  const char b[] = "transaction log recorD";
  EXPECT_NE(Fnv1a64(a, sizeof(a)), Fnv1a64(b, sizeof(b)));
  EXPECT_EQ(Fnv1a64(a, sizeof(a)), Fnv1a64(a, sizeof(a)));
}

TEST(ChecksumTest, HashKeySpreadsConsecutiveKeys) {
  std::set<uint64_t> buckets;
  for (uint64_t k = 0; k < 1000; ++k) buckets.insert(HashKey(k) % 64);
  // Consecutive keys must not all land in a few buckets.
  EXPECT_GT(buckets.size(), 32u);
}

// ------------------------------------------------------------ AtomicCopy --

TEST(AtomicCopyTest, RoundTrip) {
  alignas(8) char region[64];
  std::memset(region, 0, sizeof(region));
  alignas(8) char src[32];
  for (int i = 0; i < 32; ++i) src[i] = static_cast<char>(i * 3);
  AtomicCopyToRegion(region + 8, src, 32);
  alignas(8) char dst[32];
  AtomicCopyFromRegion(dst, region + 8, 32);
  EXPECT_EQ(std::memcmp(src, dst, 32), 0);
}

TEST(AtomicCopyTest, Cas64) {
  alignas(8) uint64_t word = 10;
  uint64_t observed = 0;
  EXPECT_FALSE(AtomicCas64(&word, 11, 20, &observed));
  EXPECT_EQ(observed, 10u);
  EXPECT_EQ(word, 10u);
  EXPECT_TRUE(AtomicCas64(&word, 10, 20, &observed));
  EXPECT_EQ(observed, 10u);
  EXPECT_EQ(word, 20u);
}

TEST(AtomicCopyTest, FetchAdd64) {
  alignas(8) uint64_t word = 5;
  EXPECT_EQ(AtomicFetchAdd64(&word, 3), 5u);
  EXPECT_EQ(word, 8u);
}


// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileNanos(50), 0u);
  EXPECT_EQ(h.MeanNanos(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.MaxNanos(), 1000u);
  // Log buckets: the percentile is within one sub-bucket (<= 25% error).
  EXPECT_GE(h.PercentileNanos(50), 768u);
  EXPECT_LE(h.PercentileNanos(50), 1024u);
}

TEST(HistogramTest, PercentilesOrdered) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const uint64_t p10 = h.PercentileNanos(10);
  const uint64_t p50 = h.PercentileNanos(50);
  const uint64_t p99 = h.PercentileNanos(99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  // p50 of uniform 1..10000 is ~5000; log-bucket error <= 25%.
  EXPECT_GE(p50, 3500u);
  EXPECT_LE(p50, 6500u);
  EXPECT_GE(p99, 7000u);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.MeanNanos(), 5000.5, 1.0);
}

TEST(HistogramTest, MergeCombines) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(100);
  for (int i = 0; i < 100; ++i) b.Record(1'000'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_LT(a.PercentileNanos(25), 200u);
  EXPECT_GT(a.PercentileNanos(75), 500'000u);
  EXPECT_EQ(a.MaxNanos(), 1'000'000u);
}

TEST(HistogramTest, HugeValuesDoNotOverflowBuckets) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(~0ULL);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.MaxNanos(), ~0ULL);
}

TEST(HistogramTest, TailResolutionBoundsRelativeError) {
  // 16 sub-buckets per octave + intra-bucket interpolation: a percentile
  // of a single repeated value lands within one sub-bucket width of the
  // true value — 1/16 ≈ 6.25% relative error, at every magnitude. This
  // pins the resolution the fibers8 p99/p50 gate depends on (25%-wide
  // buckets made a passing 3.4x ratio indistinguishable from a failing
  // 4.2x one).
  const uint64_t values[] = {37,         1'000,        13'579,
                             3'670'016,  87'654'321,   1'234'567'890};
  for (const uint64_t value : values) {
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i) h.Record(value);
    for (const double pct : {50.0, 99.0}) {
      const double estimate =
          static_cast<double>(h.PercentileNanos(pct));
      const double err =
          std::abs(estimate - static_cast<double>(value)) /
          static_cast<double>(value);
      EXPECT_LE(err, 0.0700) << "value=" << value << " pct=" << pct;
    }
  }
  // Values below one sub-bucket row are represented exactly.
  LatencyHistogram small;
  for (int i = 0; i < 10; ++i) small.Record(7);
  EXPECT_EQ(small.PercentileNanos(50), 7u);
}

// ----------------------------------------------------------------- Clock --

TEST(ClockTest, MonotonicAndSpin) {
  const uint64_t t0 = NowNanos();
  SpinForNanos(100000);  // 100 us
  const uint64_t t1 = NowNanos();
  EXPECT_GE(t1 - t0, 100000u);
  EXPECT_GE(NowMicros(), t0 / 1000);
}

// ---------------------------------------------------------------- Fibers --

TEST(FiberTest, RunsAllFibersToCompletion) {
  FiberScheduler scheduler;
  int ran = 0;
  for (int i = 0; i < 8; ++i) {
    scheduler.Spawn([&ran] { ++ran; });
  }
  EXPECT_EQ(scheduler.num_fibers(), 8u);
  scheduler.Run();
  EXPECT_EQ(ran, 8);
  EXPECT_EQ(FiberScheduler::Active(), nullptr);
}

TEST(FiberTest, ActiveOnlyDuringRunAndOnlyOnThisThread) {
  FiberScheduler scheduler;
  FiberScheduler* seen_inside = nullptr;
  FiberScheduler* seen_on_other_thread = &scheduler;  // Sentinel.
  scheduler.Spawn([&] {
    seen_inside = FiberScheduler::Active();
    std::thread other(
        [&] { seen_on_other_thread = FiberScheduler::Active(); });
    other.join();
  });
  EXPECT_EQ(FiberScheduler::Active(), nullptr);
  scheduler.Run();
  EXPECT_EQ(seen_inside, &scheduler);
  // The scheduler is thread-local: other threads (the litmus harness's
  // slots, recovery threads) never see it, so the wait hook is inert
  // there.
  EXPECT_EQ(seen_on_other_thread, nullptr);
  EXPECT_EQ(FiberScheduler::Active(), nullptr);
}

TEST(FiberTest, ResumesInDeadlineOrderNotSpawnOrder) {
  FiberScheduler scheduler;
  const uint64_t base = NowNanos();
  std::vector<int> order;
  scheduler.Spawn([&] {
    scheduler.WaitUntilNanos(base + 3'000'000);
    order.push_back(3);
  });
  scheduler.Spawn([&] {
    scheduler.WaitUntilNanos(base + 1'000'000);
    order.push_back(1);
  });
  scheduler.Spawn([&] {
    scheduler.WaitUntilNanos(base + 2'000'000);
    order.push_back(2);
  });
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.stats().yields, 3u);
}

TEST(FiberTest, EqualDeadlinesResumeFifo) {
  FiberScheduler scheduler;
  const uint64_t deadline = NowNanos();  // Already due: pure tie-break.
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    scheduler.Spawn([&, i] {
      scheduler.WaitUntilNanos(deadline);
      order.push_back(i);
    });
  }
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FiberTest, WaitNeverResumesBeforeDeadline) {
  FiberScheduler scheduler;
  bool checked = false;
  scheduler.Spawn([&] {
    const uint64_t deadline = NowNanos() + 500'000;  // 500 us.
    SpinUntilNanos(deadline);  // Routed through the wait hook.
    EXPECT_GE(NowNanos(), deadline);
    checked = true;
  });
  scheduler.Run();
  EXPECT_TRUE(checked);
  // A single fiber has nothing to overlap with: the scheduler idled the
  // full wait and counted it.
  EXPECT_GE(scheduler.stats().idle_ns, 400'000u);
  EXPECT_GE(scheduler.stats().wait_ns, 400'000u);
}

TEST(FiberTest, SpinAndSleepHooksSuspendInsteadOfBlocking) {
  // Two fibers wait 1 ms each through the public clock entry points; with
  // overlap the pair completes in well under the 2 ms a blocking
  // implementation needs. Generous ceiling for sanitizer/CI jitter.
  FiberScheduler scheduler;
  scheduler.Spawn([] { SpinForNanos(1'000'000); });
  scheduler.Spawn([] { SleepForMicros(1000); });
  const uint64_t start = NowNanos();
  scheduler.Run();
  const uint64_t elapsed = NowNanos() - start;
  EXPECT_GE(elapsed, 1'000'000u);
  EXPECT_LT(elapsed, 1'900'000u);
  EXPECT_EQ(scheduler.stats().yields, 2u);
  // Both 1 ms waits were paid for by ~1 ms of true idling: overlap ~2x.
  EXPECT_GT(scheduler.stats().wait_ns,
            scheduler.stats().idle_ns + 500'000u);
}

TEST(FiberTest, NoRunnableFiberFallsBackToIdleSpin) {
  // One fiber far in the future, one ready now: the scheduler must run
  // the ready one first, then idle-spin until the far deadline rather
  // than busy-resume anyone early.
  FiberScheduler scheduler;
  uint64_t far_resumed_at = 0;
  uint64_t far_deadline = 0;
  scheduler.Spawn([&] {
    far_deadline = NowNanos() + 2'000'000;
    scheduler.WaitUntilNanos(far_deadline);
    far_resumed_at = NowNanos();
  });
  bool near_ran = false;
  scheduler.Spawn([&] { near_ran = true; });
  scheduler.Run();
  EXPECT_TRUE(near_ran);
  EXPECT_GE(far_resumed_at, far_deadline);
  EXPECT_GT(scheduler.stats().idle_ns, 0u);
}

TEST(FiberTest, ManySwitchesAreStable) {
  // Ping-pong two fibers through thousands of switches to shake out
  // stack/context corruption (and give the sanitizer annotations a real
  // workout under ASan/TSan CI).
  FiberScheduler scheduler;
  uint64_t counter = 0;
  for (int f = 0; f < 2; ++f) {
    scheduler.Spawn([&] {
      for (int i = 0; i < 2000; ++i) {
        ++counter;
        scheduler.WaitUntilNanos(0);  // Immediately ready: pure yield.
      }
    });
  }
  scheduler.Run();
  EXPECT_EQ(counter, 4000u);
  EXPECT_EQ(scheduler.stats().yields, 4000u);
}

TEST(FiberTest, HookInertOutsideFibers) {
  // SpinUntilNanos on a plain thread (no scheduler installed) must behave
  // exactly as before fibers existed.
  const uint64_t t0 = NowNanos();
  SpinForNanos(200'000);
  EXPECT_GE(NowNanos() - t0, 200'000u);
}

TEST(FiberTest, HeapOrderMatchesStableDeadlineSort) {
  // The min-heap PickNext must be observably identical to the old linear
  // EDF scan for non-starved schedules: resume order is a stable sort by
  // (deadline, suspension order). 16 fibers across 4 duplicated deadlines
  // exercise both the ordering and the FIFO tie-break at heap scale.
  FiberScheduler scheduler;
  const uint64_t base = NowNanos() + 500'000;
  std::vector<int> order;
  constexpr int kFibers = 16;
  for (int i = 0; i < kFibers; ++i) {
    scheduler.Spawn([&, i] {
      scheduler.WaitUntilNanos(base +
                               static_cast<uint64_t>(i % 4) * 400'000);
      order.push_back(i);
    });
  }
  scheduler.Run();
  std::vector<int> expected;
  for (int d = 0; d < 4; ++d) {
    for (int i = 0; i < kFibers; ++i) {
      if (i % 4 == d) expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(FiberTest, RecordsResumeLagAndBudgetOverruns) {
  // A runnable fiber held off the CPU by a hog shows up in the scheduler's
  // starvation stats: max_resume_lag_ns reflects the delay and the lag
  // budget overrun is counted.
  FiberScheduler::Options options;
  options.lag_budget_ns = 1'000;  // 1 us: the 500 us hog must overrun it.
  FiberScheduler scheduler(options);
  scheduler.Spawn([&] {
    scheduler.WaitUntilNanos(NowNanos());  // Immediately runnable again.
  });
  scheduler.Spawn([&] {
    // Hog the thread with a raw busy loop (not the clock hooks, which
    // would suspend this fiber and defeat the starvation).
    const uint64_t until = NowNanos() + 500'000;
    while (NowNanos() < until) {
    }
  });
  scheduler.Run();
  EXPECT_GE(scheduler.stats().resumes, 1u);
  EXPECT_GE(scheduler.stats().max_resume_lag_ns, 300'000u);
  EXPECT_GE(scheduler.stats().lag_budget_overruns, 1u);
}

TEST(FiberTest, PaceAdmissionDefersWhenOverdueWorkWaits) {
  // PaceAdmission suspends the calling fiber (yielding to the overdue one)
  // when the oldest runnable fiber has waited past the lag budget, and is
  // a cheap no when nothing is overdue.
  FiberScheduler::Options options;
  options.lag_budget_ns = 1'000;
  FiberScheduler scheduler(options);
  bool starved_ran = false;
  bool paced = false;
  bool paced_when_idle = false;
  scheduler.Spawn([&] {
    scheduler.WaitUntilNanos(NowNanos());  // Runnable, then starved.
    starved_ran = true;
  });
  scheduler.Spawn([&] {
    const uint64_t until = NowNanos() + 300'000;
    while (NowNanos() < until) {
    }
    paced = scheduler.PaceAdmission();
    // By now the starved fiber was dispatched and finished; with nothing
    // overdue the pacer must decline.
    paced_when_idle = scheduler.PaceAdmission();
  });
  scheduler.Run();
  EXPECT_TRUE(paced);
  EXPECT_TRUE(starved_ran);
  EXPECT_FALSE(paced_when_idle);
  EXPECT_GE(scheduler.stats().paced_admissions, 1u);
}

TEST(FiberTest, PeriodicOsYieldCountsUnderLongScheduling) {
  // With os_yield_every_ns set, a scheduler that stays busy past the
  // period must call std::this_thread::yield() and count it — the release
  // valve against whole-thread OS descheduling on oversubscribed cores.
  FiberScheduler::Options options;
  options.os_yield_every_ns = 50'000;  // 50 us.
  FiberScheduler scheduler(options);
  scheduler.Spawn([&] {
    for (int i = 0; i < 5; ++i) {
      scheduler.WaitUntilNanos(NowNanos() + 40'000);
    }
  });
  scheduler.Run();
  EXPECT_GE(scheduler.stats().os_yields, 1u);
}

}  // namespace
}  // namespace pandora

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "rdma/fabric.h"
#include "rdma/ordered_batch.h"
#include "rdma/verb_schedule.h"

namespace pandora {
namespace rdma {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NetworkConfig config;
    config.one_way_ns = 0;  // Semantics-only: no latency simulation.
    config.per_byte_ns = 0;
    fabric_ = std::make_unique<Fabric>(config);
    pd_ = fabric_->AttachMemoryNode(kMemNode);
    rkey_ = pd_->RegisterRegion(4096, "test-region");
    qp_ = fabric_->CreateQueuePair(kComputeNode, kMemNode);
  }

  static constexpr NodeId kMemNode = 0;
  static constexpr NodeId kComputeNode = 1;

  std::unique_ptr<Fabric> fabric_;
  ProtectionDomain* pd_ = nullptr;
  RKey rkey_ = kInvalidRKey;
  std::unique_ptr<QueuePair> qp_;
};

TEST_F(FabricTest, WriteThenReadRoundTrip) {
  alignas(8) char out[16] = "hello rdma!!!!";
  ASSERT_TRUE(qp_->Write(rkey_, 64, out, 16).ok());
  alignas(8) char in[16] = {0};
  ASSERT_TRUE(qp_->Read(rkey_, 64, in, 16).ok());
  EXPECT_EQ(std::memcmp(out, in, 16), 0);
}

TEST_F(FabricTest, RegionIsZeroInitialized) {
  alignas(8) uint64_t word = 0xff;
  ASSERT_TRUE(qp_->Read(rkey_, 128, &word, 8).ok());
  EXPECT_EQ(word, 0u);
}

TEST_F(FabricTest, CompareSwapSemantics) {
  uint64_t observed = 0;
  // CAS on zeroed word: succeed.
  ASSERT_TRUE(qp_->CompareSwap(rkey_, 0, 0, 42, &observed).ok());
  EXPECT_EQ(observed, 0u);
  // CAS with wrong expected: verb completes, returns current value.
  ASSERT_TRUE(qp_->CompareSwap(rkey_, 0, 7, 99, &observed).ok());
  EXPECT_EQ(observed, 42u);
  // Verify memory unchanged by failed CAS.
  uint64_t value = 0;
  ASSERT_TRUE(qp_->Read(rkey_, 0, &value, 8).ok());
  EXPECT_EQ(value, 42u);
}

TEST_F(FabricTest, FetchAddSemantics) {
  uint64_t old_value = 99;
  ASSERT_TRUE(qp_->FetchAdd(rkey_, 8, 5, &old_value).ok());
  EXPECT_EQ(old_value, 0u);
  ASSERT_TRUE(qp_->FetchAdd(rkey_, 8, 5, &old_value).ok());
  EXPECT_EQ(old_value, 5u);
  uint64_t value = 0;
  ASSERT_TRUE(qp_->Read(rkey_, 8, &value, 8).ok());
  EXPECT_EQ(value, 10u);
}

TEST_F(FabricTest, OutOfBoundsAccessRejected) {
  alignas(8) char buf[16];
  EXPECT_TRUE(qp_->Read(rkey_, 4096, buf, 16).IsInvalidArgument());
  EXPECT_TRUE(qp_->Read(rkey_, 4088, buf, 16).IsInvalidArgument());
  EXPECT_TRUE(qp_->Write(rkey_, 1u << 30, buf, 8).IsInvalidArgument());
}

TEST_F(FabricTest, MisalignedAccessRejected) {
  alignas(8) char buf[8];
  EXPECT_TRUE(qp_->Read(rkey_, 3, buf, 8).IsInvalidArgument());
}

TEST_F(FabricTest, UnknownRkeyRejected) {
  alignas(8) char buf[8];
  EXPECT_TRUE(qp_->Read(777, 0, buf, 8).IsInvalidArgument());
}

TEST_F(FabricTest, HaltedNodeCannotIssueVerbs) {
  alignas(8) uint64_t word = 1;
  ASSERT_TRUE(qp_->Write(rkey_, 0, &word, 8).ok());
  fabric_->HaltNode(kComputeNode);
  EXPECT_TRUE(qp_->Write(rkey_, 0, &word, 8).IsUnavailable());
  EXPECT_TRUE(qp_->Read(rkey_, 0, &word, 8).IsUnavailable());
  uint64_t observed;
  EXPECT_TRUE(qp_->CompareSwap(rkey_, 0, 1, 2, &observed).IsUnavailable());
  // Memory keeps the pre-halt state.
  fabric_->ResumeNode(kComputeNode);
  uint64_t value = 0;
  ASSERT_TRUE(qp_->Read(rkey_, 0, &value, 8).ok());
  EXPECT_EQ(value, 1u);
}

TEST_F(FabricTest, RevokedNodeIsDroppedAtMemory) {
  // Active-link termination: the *memory side* rejects, so this protects
  // against a falsely-suspected node that is still alive and issuing verbs.
  alignas(8) uint64_t word = 7;
  pd_->RevokeNode(kComputeNode);
  EXPECT_TRUE(qp_->Write(rkey_, 0, &word, 8).IsPermissionDenied());
  uint64_t observed;
  EXPECT_TRUE(
      qp_->CompareSwap(rkey_, 0, 0, 1, &observed).IsPermissionDenied());

  // Another compute node is unaffected.
  auto qp2 = fabric_->CreateQueuePair(2, kMemNode);
  EXPECT_TRUE(qp2->Write(rkey_, 0, &word, 8).ok());

  // Restoration re-admits the node (used when a false positive is resolved
  // by re-admitting the server under a fresh coordinator-id).
  pd_->RestoreNode(kComputeNode);
  EXPECT_TRUE(qp_->Write(rkey_, 0, &word, 8).ok());
}

TEST_F(FabricTest, RevokeEverywhereCoversAllMemoryNodes) {
  ProtectionDomain* pd2 = fabric_->AttachMemoryNode(5);
  const RKey rkey2 = pd2->RegisterRegion(256, "r2");
  auto qp2 = fabric_->CreateQueuePair(kComputeNode, 5);

  fabric_->RevokeNodeEverywhere(kComputeNode);
  alignas(8) uint64_t word = 1;
  EXPECT_TRUE(qp_->Write(rkey_, 0, &word, 8).IsPermissionDenied());
  EXPECT_TRUE(qp2->Write(rkey2, 0, &word, 8).IsPermissionDenied());
  fabric_->RestoreNodeEverywhere(kComputeNode);
  EXPECT_TRUE(qp2->Write(rkey2, 0, &word, 8).ok());
}

TEST_F(FabricTest, ConcurrentCasExactlyOneWinnerPerValue) {
  // N threads CAS-increment the same word through their own QPs; the final
  // value must equal the number of successful CASes (atomicity check).
  constexpr int kThreads = 8;
  constexpr int kAttempts = 2000;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &successes, t] {
      auto qp = fabric_->CreateQueuePair(static_cast<NodeId>(10 + t),
                                         kMemNode);
      for (int i = 0; i < kAttempts; ++i) {
        uint64_t current = 0;
        ASSERT_TRUE(qp->Read(rkey_, 256, &current, 8).ok());
        uint64_t observed = 0;
        ASSERT_TRUE(
            qp->CompareSwap(rkey_, 256, current, current + 1, &observed)
                .ok());
        if (observed == current) successes.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  uint64_t final_value = 0;
  ASSERT_TRUE(qp_->Read(rkey_, 256, &final_value, 8).ok());
  EXPECT_EQ(final_value, static_cast<uint64_t>(successes.load()));
}

TEST(NetworkModelTest, RttScalesWithPayload) {
  NetworkConfig config;
  config.one_way_ns = 1000;
  config.per_byte_ns = 1.0;
  NetworkModel net(config);
  EXPECT_EQ(net.RttNanos(0, 0), 2000u);
  EXPECT_EQ(net.RttNanos(0, 64), 2064u);
  EXPECT_EQ(net.RttNanos(128, 64), 2192u);
  EXPECT_TRUE(net.latency_enabled());

  NetworkModel off{NetworkConfig{.one_way_ns = 0, .per_byte_ns = 0}};
  EXPECT_FALSE(off.latency_enabled());
}

TEST(LatencySimulationTest, VerbTakesAtLeastModeledRtt) {
  NetworkConfig config;
  config.one_way_ns = 50000;  // 50 us one way: measurable.
  config.per_byte_ns = 0;
  Fabric fabric(config);
  ProtectionDomain* pd = fabric.AttachMemoryNode(0);
  const RKey rkey = pd->RegisterRegion(64, "r");
  auto qp = fabric.CreateQueuePair(1, 0);

  alignas(8) uint64_t word = 3;
  const uint64_t t0 = NowNanos();
  ASSERT_TRUE(qp->Write(rkey, 0, &word, 8).ok());
  EXPECT_GE(NowNanos() - t0, 100000u);
}

TEST(VerbBatchTest, BatchAppliesAllAndReportsFirstError) {
  Fabric fabric(NetworkConfig{.one_way_ns = 0, .per_byte_ns = 0});
  ProtectionDomain* pd = fabric.AttachMemoryNode(0);
  const RKey rkey = pd->RegisterRegion(256, "r");
  auto qp = fabric.CreateQueuePair(1, 0);

  alignas(8) uint64_t a = 11, b = 22;
  VerbBatch batch;
  batch.Write(qp.get(), rkey, 0, &a, 8);
  batch.Write(qp.get(), rkey, 8, &b, 8);
  alignas(8) char bad[8];
  batch.Read(qp.get(), rkey, 9999, bad, 8);  // out of bounds
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch.Execute().IsInvalidArgument());

  // Successful ops still landed.
  uint64_t v = 0;
  ASSERT_TRUE(qp->Read(rkey, 0, &v, 8).ok());
  EXPECT_EQ(v, 11u);
  ASSERT_TRUE(qp->Read(rkey, 8, &v, 8).ok());
  EXPECT_EQ(v, 22u);

  // Batch is reusable after Execute.
  batch.Write(qp.get(), rkey, 16, &a, 8);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch.Execute().ok());
}

TEST(VerbBatchTest, BatchLatencyIsMaxNotSum) {
  NetworkConfig config;
  config.one_way_ns = 30000;  // 60 us RTT
  config.per_byte_ns = 0;
  Fabric fabric(config);
  ProtectionDomain* pd = fabric.AttachMemoryNode(0);
  const RKey rkey = pd->RegisterRegion(256, "r");
  auto qp = fabric.CreateQueuePair(1, 0);

  alignas(8) uint64_t w = 1;
  VerbBatch batch;
  for (int i = 0; i < 8; ++i) {
    batch.Write(qp.get(), rkey, static_cast<uint64_t>(i) * 8, &w, 8);
  }
  const uint64_t t0 = NowNanos();
  ASSERT_TRUE(batch.Execute().ok());
  const uint64_t elapsed = NowNanos() - t0;
  EXPECT_GE(elapsed, 60000u);
  // One slowest-RTT wait, not an 8x480 us per-verb sum. Asserted on the
  // simulated wait; wall clock only bounds from below (the spin can be
  // preempted and overshoot arbitrarily).
  EXPECT_EQ(batch.last_wait_ns(), 60000u);
}

TEST_F(FabricTest, OrderedBatchAppliesInPostOrder) {
  // The §3.1.1 chain: a read posted behind a CAS on the same QP must
  // observe the post-CAS state (RC in-order delivery).
  OrderedBatch chain(qp_.get());
  uint64_t observed = 99;
  alignas(8) uint64_t lock_word = 0;
  chain.CompareSwap(rkey_, 0, 0, 0xabcd, &observed);
  chain.Read(rkey_, 0, &lock_word, 8);
  ASSERT_TRUE(chain.Execute().ok());
  EXPECT_EQ(observed, 0u);          // CAS won...
  EXPECT_EQ(lock_word, 0xabcdu);    // ...and the chained read saw it.

  // A losing CAS leaves memory unchanged and the chained read proves it.
  chain.CompareSwap(rkey_, 0, 0, 0xeeee, &observed);
  chain.Read(rkey_, 0, &lock_word, 8);
  ASSERT_TRUE(chain.Execute().ok());
  EXPECT_EQ(observed, 0xabcdu);
  EXPECT_EQ(lock_word, 0xabcdu);
}

TEST_F(FabricTest, OrderedBatchWriteThenReadChains) {
  alignas(8) uint64_t out = 7777, in = 0;
  OrderedBatch chain(qp_.get());
  chain.Write(rkey_, 64, &out, 8);
  chain.Read(rkey_, 64, &in, 8);
  EXPECT_EQ(chain.size(), 2u);
  ASSERT_TRUE(chain.Execute().ok());
  EXPECT_EQ(in, 7777u);
  EXPECT_EQ(chain.size(), 0u);  // Reset for reuse.
}

TEST_F(FabricTest, OrderedBatchFlushesVerbsAfterError) {
  // A failed verb moves the chain into an error state: later verbs are
  // flushed without applying (IBV_WC_WR_FLUSH_ERR).
  alignas(8) uint64_t w = 5;
  OrderedBatch chain(qp_.get());
  const size_t i0 = chain.Write(rkey_, 0, &w, 8);
  alignas(8) char bad[8];
  const size_t i1 = chain.Read(rkey_, 9999, bad, 8);  // out of bounds
  const size_t i2 = chain.Write(rkey_, 8, &w, 8);     // must be flushed
  EXPECT_TRUE(chain.status(i0).ok());
  EXPECT_TRUE(chain.status(i1).IsInvalidArgument());
  EXPECT_TRUE(chain.status(i2).IsAborted());
  EXPECT_TRUE(chain.Execute().IsInvalidArgument());

  uint64_t v = 1;
  ASSERT_TRUE(qp_->Read(rkey_, 8, &v, 8).ok());
  EXPECT_EQ(v, 0u);  // The flushed write never landed.
  ASSERT_TRUE(qp_->Read(rkey_, 0, &v, 8).ok());
  EXPECT_EQ(v, 5u);  // The pre-error write did.

  // Execute() cleared the error state: the chain is reusable.
  chain.Write(rkey_, 8, &w, 8);
  EXPECT_TRUE(chain.Execute().ok());
}

TEST_F(FabricTest, OrderedBatchOnHaltedOrFencedQp) {
  alignas(8) uint64_t w = 3;
  fabric_->HaltNode(kComputeNode);
  {
    OrderedBatch chain(qp_.get());
    chain.Write(rkey_, 0, &w, 8);
    chain.Read(rkey_, 0, &w, 8);
    EXPECT_TRUE(chain.status(0).IsUnavailable());
    EXPECT_TRUE(chain.status(1).IsAborted());  // flushed
    EXPECT_TRUE(chain.Execute().IsUnavailable());
  }
  fabric_->ResumeNode(kComputeNode);

  pd_->RevokeNode(kComputeNode);
  {
    OrderedBatch chain(qp_.get());
    chain.Write(rkey_, 0, &w, 8);
    EXPECT_TRUE(chain.Execute().IsPermissionDenied());
  }
  pd_->RestoreNode(kComputeNode);

  uint64_t v = 9;
  ASSERT_TRUE(qp_->Read(rkey_, 0, &v, 8).ok());
  EXPECT_EQ(v, 0u);  // Nothing reached memory while halted/fenced.
}

TEST(OrderedBatchTest, ChainLatencyIsOneRttNotTwo) {
  NetworkConfig config;
  config.one_way_ns = 30000;  // 60 us RTT
  config.per_byte_ns = 0;
  Fabric fabric(config);
  ProtectionDomain* pd = fabric.AttachMemoryNode(0);
  const RKey rkey = pd->RegisterRegion(256, "r");
  auto qp = fabric.CreateQueuePair(1, 0);

  // Lock CAS + speculative read in one doorbell: one round trip.
  uint64_t observed = 0;
  alignas(8) char image[16];
  OrderedBatch chain(qp.get());
  chain.CompareSwap(rkey, 0, 0, 1, &observed);
  chain.Read(rkey, 8, image, 16);
  const uint64_t t0 = NowNanos();
  ASSERT_TRUE(chain.Execute().ok());
  const uint64_t elapsed = NowNanos() - t0;
  EXPECT_GE(elapsed, 60000u);
  // One max-RTT wait for the whole chain, not a 120 us per-verb sum. The
  // simulated wait is asserted exactly; wall clock only bounds from below
  // (the spin can be preempted and overshoot arbitrarily).
  EXPECT_EQ(chain.last_wait_ns(), 60000u);
}

TEST(OrderedBatchTest, ExecuteCoversRiderBatchRtt) {
  NetworkConfig config;
  config.one_way_ns = 20000;  // 40 us RTT
  config.per_byte_ns = 0;
  Fabric fabric(config);
  ProtectionDomain* pd = fabric.AttachMemoryNode(0);
  ProtectionDomain* pd2 = fabric.AttachMemoryNode(2);
  const RKey rkey = pd->RegisterRegion(256, "r");
  const RKey rkey2 = pd2->RegisterRegion(1024, "r2");
  auto qp = fabric.CreateQueuePair(1, 0);
  auto qp2 = fabric.CreateQueuePair(1, 2);

  // A cross-QP VerbBatch (e.g. per-object log writes) rides the same
  // doorbell group as the chain: one wait covers both; Collect() then
  // drains the rider without a second spin.
  alignas(8) char record[512] = {1, 2, 3};
  VerbBatch rider;
  rider.Write(qp2.get(), rkey2, 0, record, 512);

  uint64_t observed = 0;
  alignas(8) char image[16];
  OrderedBatch chain(qp.get());
  chain.CompareSwap(rkey, 0, 0, 1, &observed);
  chain.Read(rkey, 8, image, 16);

  const uint64_t t0 = NowNanos();
  ASSERT_TRUE(chain.Execute(rider.pending_max_rtt_ns()).ok());
  ASSERT_TRUE(rider.Collect().ok());
  const uint64_t elapsed = NowNanos() - t0;
  EXPECT_GE(elapsed, 40000u);   // At least the slowest round trip...
  // ...and exactly one of them in simulated time: the rider rode the
  // chain's doorbell wait instead of adding a second 40 us trip. (Wall
  // clock has no upper bound here — the spin wait can be preempted.)
  EXPECT_EQ(chain.last_wait_ns(), 40000u);

  alignas(8) char check[8];
  ASSERT_TRUE(qp2->Read(rkey2, 0, check, 8).ok());
  EXPECT_EQ(check[2], 3);
}

// ------------------------------------------------ Verb schedule hooks --

// Records every desc it sees; never holds or drops.
class RecordingHook : public VerbScheduleHook {
 public:
  bool OnVerbIssue(const VerbDesc& desc) override {
    std::lock_guard<std::mutex> lock(mu_);
    issued_.push_back(desc);
    return true;
  }
  void OnVerbApplied(const VerbDesc& desc) override {
    std::lock_guard<std::mutex> lock(mu_);
    applied_.push_back(desc);
  }
  std::vector<VerbDesc> issued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return issued_;
  }
  std::vector<VerbDesc> applied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return applied_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<VerbDesc> issued_;
  std::vector<VerbDesc> applied_;
};

TEST_F(FabricTest, VerbHookSeesEveryVerbKindWithDescFields) {
  RecordingHook hook;
  fabric_->set_verb_hook(&hook);
  alignas(8) uint64_t word = 5;
  ASSERT_TRUE(qp_->Write(rkey_, 16, &word, 8).ok());
  ASSERT_TRUE(qp_->Read(rkey_, 16, &word, 8).ok());
  uint64_t observed = 0;
  ASSERT_TRUE(qp_->CompareSwap(rkey_, 16, 5, 6, &observed).ok());
  ASSERT_TRUE(qp_->FetchAdd(rkey_, 16, 1, &observed).ok());
  fabric_->set_verb_hook(nullptr);
  // Verbs after uninstall are invisible to the hook.
  ASSERT_TRUE(qp_->Read(rkey_, 16, &word, 8).ok());

  const std::vector<VerbDesc> issued = hook.issued();
  ASSERT_EQ(issued.size(), 4u);
  EXPECT_EQ(issued[0].kind, VerbKind::kWrite);
  EXPECT_EQ(issued[1].kind, VerbKind::kRead);
  EXPECT_EQ(issued[2].kind, VerbKind::kCompareSwap);
  EXPECT_EQ(issued[3].kind, VerbKind::kFetchAdd);
  for (size_t i = 0; i < issued.size(); ++i) {
    EXPECT_EQ(issued[i].src, kComputeNode);
    EXPECT_EQ(issued[i].dst, kMemNode);
    EXPECT_EQ(issued[i].rkey, rkey_);
    EXPECT_EQ(issued[i].offset, 16u);
    EXPECT_EQ(issued[i].qp_seq, static_cast<uint64_t>(i));
    EXPECT_EQ(issued[i].phase, -1);  // No crash-hooked protocol here.
  }
  // Every issued verb applied, in issue order.
  ASSERT_EQ(hook.applied().size(), 4u);
  EXPECT_EQ(hook.applied()[3].kind, VerbKind::kFetchAdd);
  EXPECT_EQ(word, 7u);  // CAS then FAA landed.
}

TEST_F(FabricTest, DroppedVerbReportsUnavailableAndNeverApplies) {
  // Returning false from OnVerbIssue models the issuing node dying
  // between posting the verb and the verb landing.
  class DropWrites : public VerbScheduleHook {
   public:
    bool OnVerbIssue(const VerbDesc& desc) override {
      return desc.kind != VerbKind::kWrite;
    }
    void OnVerbApplied(const VerbDesc& desc) override { ++applied_; }
    int applied_ = 0;
  };
  DropWrites hook;
  fabric_->set_verb_hook(&hook);
  alignas(8) uint64_t word = 9;
  EXPECT_TRUE(qp_->Write(rkey_, 0, &word, 8).IsUnavailable());
  uint64_t value = 77;
  ASSERT_TRUE(qp_->Read(rkey_, 0, &value, 8).ok());
  fabric_->set_verb_hook(nullptr);
  EXPECT_EQ(value, 0u);       // The dropped write never landed...
  EXPECT_EQ(hook.applied_, 1);  // ...and only the read reached memory.
}

// Held-verb release order across two QPs: the hook parks QP A's write
// until QP B's write has applied, so B-then-A is enforced even though A
// issues first. The loser of the enforced race owns the final value.
TEST(VerbHookTest, HeldVerbReleaseOrderRespectedAcrossTwoQps) {
  NetworkConfig config;
  config.one_way_ns = 0;
  config.per_byte_ns = 0;
  Fabric fabric(config);
  ProtectionDomain* pd = fabric.AttachMemoryNode(0);
  const RKey rkey = pd->RegisterRegion(256, "r");
  auto qp_a = fabric.CreateQueuePair(1, 0);
  auto qp_b = fabric.CreateQueuePair(2, 0);

  class HoldAUntilB : public VerbScheduleHook {
   public:
    bool OnVerbIssue(const VerbDesc& desc) override {
      if (desc.src == 1) {
        while (!b_applied_.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
      return true;
    }
    void OnVerbApplied(const VerbDesc& desc) override {
      std::lock_guard<std::mutex> lock(mu_);
      order_.push_back(desc.src);
      if (desc.src == 2) b_applied_.store(true, std::memory_order_release);
    }
    std::vector<NodeId> order() const {
      std::lock_guard<std::mutex> lock(mu_);
      return order_;
    }

   private:
    mutable std::mutex mu_;
    std::atomic<bool> b_applied_{false};
    std::vector<NodeId> order_;
  };
  HoldAUntilB hook;
  fabric.set_verb_hook(&hook);

  alignas(8) uint64_t from_a = 0xaaaa, from_b = 0xbbbb;
  std::thread writer_a(
      [&] { ASSERT_TRUE(qp_a->Write(rkey, 0, &from_a, 8).ok()); });
  // A tiny stagger makes A reach the hook first in practice; correctness
  // does not depend on it (the hold enforces the order either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::thread writer_b(
      [&] { ASSERT_TRUE(qp_b->Write(rkey, 0, &from_b, 8).ok()); });
  writer_a.join();
  writer_b.join();
  fabric.set_verb_hook(nullptr);

  ASSERT_EQ(hook.order().size(), 2u);
  EXPECT_EQ(hook.order()[0], 2u);  // B applied first...
  EXPECT_EQ(hook.order()[1], 1u);  // ...A released after.
  uint64_t value = 0;
  ASSERT_TRUE(qp_a->Read(rkey, 0, &value, 8).ok());
  EXPECT_EQ(value, 0xaaaau);  // Last writer (A) wins.
}

// RC in-order delivery per QP survives a hook that delays verbs: a held
// verb suspends its issuing thread, so the next verb on the same QP
// cannot be posted, let alone land, before its predecessor.
TEST_F(FabricTest, PerQpInOrderDeliveryPreservedUnderDelayingHook) {
  class DelayFirstVerb : public VerbScheduleHook {
   public:
    bool OnVerbIssue(const VerbDesc& desc) override {
      if (desc.qp_seq == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      std::lock_guard<std::mutex> lock(mu_);
      issue_seqs_.push_back(desc.qp_seq);
      return true;
    }
    std::vector<uint64_t> issue_seqs() const {
      std::lock_guard<std::mutex> lock(mu_);
      return issue_seqs_;
    }

   private:
    mutable std::mutex mu_;
    std::vector<uint64_t> issue_seqs_;
  };
  DelayFirstVerb hook;
  fabric_->set_verb_hook(&hook);

  // The §3.1.1 chain again, now with the CAS delayed at the fabric: the
  // chained read must still observe the post-CAS state.
  OrderedBatch chain(qp_.get());
  uint64_t observed = 99;
  alignas(8) uint64_t lock_word = 0;
  chain.CompareSwap(rkey_, 0, 0, 0xabcd, &observed);
  chain.Read(rkey_, 0, &lock_word, 8);
  ASSERT_TRUE(chain.Execute().ok());
  fabric_->set_verb_hook(nullptr);

  EXPECT_EQ(observed, 0u);
  EXPECT_EQ(lock_word, 0xabcdu);
  const std::vector<uint64_t> seqs = hook.issue_seqs();
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_LT(seqs[0], seqs[1]);  // Post order == issue order on one QP.
}

// A no-op hook must not perturb the simulated-latency accounting: the
// doorbell batch still charges one max-RTT wait, not a per-verb sum.
TEST(VerbHookTest, NoopHookLeavesBatchLatencyUnchanged) {
  NetworkConfig config;
  config.one_way_ns = 30000;  // 60 us RTT
  config.per_byte_ns = 0;
  Fabric fabric(config);
  ProtectionDomain* pd = fabric.AttachMemoryNode(0);
  const RKey rkey = pd->RegisterRegion(256, "r");
  auto qp = fabric.CreateQueuePair(1, 0);

  class Noop : public VerbScheduleHook {
   public:
    bool OnVerbIssue(const VerbDesc& desc) override { return true; }
  };
  Noop hook;
  fabric.set_verb_hook(&hook);

  alignas(8) uint64_t w = 1;
  VerbBatch batch;
  for (int i = 0; i < 8; ++i) {
    batch.Write(qp.get(), rkey, static_cast<uint64_t>(i) * 8, &w, 8);
  }
  ASSERT_TRUE(batch.Execute().ok());
  fabric.set_verb_hook(nullptr);
  EXPECT_EQ(batch.last_wait_ns(), 60000u);

  // OrderedBatch accounting is equally untouched.
  fabric.set_verb_hook(&hook);
  OrderedBatch chain(qp.get());
  uint64_t observed = 0;
  alignas(8) char image[16];
  chain.CompareSwap(rkey, 64, 0, 1, &observed);
  chain.Read(rkey, 72, image, 16);
  ASSERT_TRUE(chain.Execute().ok());
  fabric.set_verb_hook(nullptr);
  EXPECT_EQ(chain.last_wait_ns(), 60000u);
}

}  // namespace
}  // namespace rdma
}  // namespace pandora

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/coding.h"
#include "store/remote_object.h"
#include "txn/coordinator.h"

namespace pandora {
namespace txn {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster::ClusterConfig config;
    config.memory_nodes = 3;
    config.compute_nodes = 2;
    config.replication = 2;
    config.net.one_way_ns = 0;
    config.net.per_byte_ns = 0;
    config.log.max_coordinators = 64;
    cluster_ = std::make_unique<cluster::Cluster>(config);
    table_ = cluster_->CreateTable("t", /*value_size=*/16, 256);
    for (store::Key k = 0; k < 100; ++k) {
      std::string v = "init-" + std::to_string(k);
      v.resize(16, '\0');
      ASSERT_TRUE(cluster_->LoadRow(table_, k, v).ok());
    }
  }

  std::unique_ptr<Coordinator> MakeCoordinator(
      uint32_t compute_index, uint16_t coord_id,
      TxnConfig config = TxnConfig()) {
    return std::make_unique<Coordinator>(cluster_.get(),
                                         cluster_->compute(compute_index),
                                         coord_id, config);
  }

  std::string Padded(const std::string& s) {
    std::string v = s;
    v.resize(16, '\0');
    return v;
  }

  // Reads a value through a fresh transaction; EXPECTs success.
  std::string ReadCommitted(Coordinator* coord, store::Key key) {
    EXPECT_TRUE(coord->Begin().ok());
    std::string value;
    EXPECT_TRUE(coord->Read(table_, key, &value).ok());
    EXPECT_TRUE(coord->Commit().ok());
    return value;
  }

  // Inspects a slot's control words directly on a given replica.
  store::SlotState Inspect(store::Key key, rdma::NodeId node) {
    const auto& info = cluster_->catalog().table(table_);
    store::SlotState state;
    // Inspect through the last compute server (tests crash compute 0).
    rdma::QueuePair* qp =
        cluster_->compute(cluster_->num_compute_nodes() - 1)->qp(node);
    EXPECT_TRUE(store::FindSlotByProbe(qp, info.region_rkeys[node],
                                       info.layout, key, &state)
                    .ok());
    return state;
  }

  std::unique_ptr<cluster::Cluster> cluster_;
  store::TableId table_ = 0;
};

TEST_F(TxnTest, ReadYourOwnInitialLoad) {
  auto coord = MakeCoordinator(0, 1);
  EXPECT_EQ(ReadCommitted(coord.get(), 3), Padded("init-3"));
}

TEST_F(TxnTest, CommitUpdatesAllReplicasAndBumpsVersion) {
  auto coord = MakeCoordinator(0, 1);
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Write(table_, 5, Padded("updated-5")).ok());
  ASSERT_TRUE(coord->Commit().ok());
  EXPECT_EQ(coord->stats().committed, 1u);

  const auto& info = cluster_->catalog().table(table_);
  for (const rdma::NodeId node : cluster_->ReplicasFor(table_, 5)) {
    const store::SlotState state = Inspect(5, node);
    EXPECT_EQ(store::VersionOf(state.version), 2u) << "node " << node;
    EXPECT_FALSE(store::LockHeld(state.lock)) << "node " << node;
    alignas(8) char value[16];
    ASSERT_TRUE(cluster_->compute(0)
                    ->qp(node)
                    ->Read(info.region_rkeys[node],
                           info.layout.ValueOffset(state.slot), value, 16)
                    .ok());
    EXPECT_EQ(std::string(value, 16), Padded("updated-5"));
  }
}

TEST_F(TxnTest, ReadYourOwnWrites) {
  auto coord = MakeCoordinator(0, 1);
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Write(table_, 5, Padded("staged")).ok());
  std::string value;
  ASSERT_TRUE(coord->Read(table_, 5, &value).ok());
  EXPECT_EQ(value, Padded("staged"));
  ASSERT_TRUE(coord->Commit().ok());
}

TEST_F(TxnTest, AbortRestoresNothingAndReleasesLocks) {
  auto coord = MakeCoordinator(0, 1);
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Write(table_, 5, Padded("doomed")).ok());
  EXPECT_TRUE(coord->Abort().IsAborted());
  EXPECT_EQ(coord->stats().aborted, 1u);

  auto reader = MakeCoordinator(0, 2);
  EXPECT_EQ(ReadCommitted(reader.get(), 5), Padded("init-5"));
  for (const rdma::NodeId node : cluster_->ReplicasFor(table_, 5)) {
    EXPECT_FALSE(store::LockHeld(Inspect(5, node).lock));
  }
}

TEST_F(TxnTest, WriteConflictAborts) {
  auto c1 = MakeCoordinator(0, 1);
  auto c2 = MakeCoordinator(1, 2);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 7, Padded("one")).ok());
  ASSERT_TRUE(c2->Begin().ok());
  EXPECT_TRUE(c2->Write(table_, 7, Padded("two")).IsAborted());
  EXPECT_EQ(c2->stats().lock_conflicts, 1u);
  EXPECT_EQ(c2->stats().aborted, 1u);
  EXPECT_FALSE(c2->in_txn());
  // c1 is unaffected and commits.
  ASSERT_TRUE(c1->Commit().ok());
  auto reader = MakeCoordinator(0, 3);
  EXPECT_EQ(ReadCommitted(reader.get(), 7), Padded("one"));
}

TEST_F(TxnTest, ReadOfLockedObjectAborts) {
  auto c1 = MakeCoordinator(0, 1);
  auto c2 = MakeCoordinator(1, 2);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 7, Padded("one")).ok());
  ASSERT_TRUE(c2->Begin().ok());
  std::string value;
  EXPECT_TRUE(c2->Read(table_, 7, &value).IsAborted());
  ASSERT_TRUE(c1->Commit().ok());
}

TEST_F(TxnTest, ValidationCatchesConcurrentUpdate) {
  auto c1 = MakeCoordinator(0, 1);
  auto c2 = MakeCoordinator(1, 2);
  // c1 reads key 9, then c2 updates it before c1 commits.
  ASSERT_TRUE(c1->Begin().ok());
  std::string value;
  ASSERT_TRUE(c1->Read(table_, 9, &value).ok());
  ASSERT_TRUE(c1->Write(table_, 10, Padded("dep")).ok());

  ASSERT_TRUE(c2->Begin().ok());
  ASSERT_TRUE(c2->Write(table_, 9, Padded("sneaky")).ok());
  ASSERT_TRUE(c2->Commit().ok());

  EXPECT_TRUE(c1->Commit().IsAborted());
  EXPECT_EQ(c1->stats().validation_failures, 1u);
  // c1's write to 10 must have been rolled back (never applied) and
  // unlocked.
  auto reader = MakeCoordinator(0, 3);
  EXPECT_EQ(ReadCommitted(reader.get(), 10), Padded("init-10"));
}

TEST_F(TxnTest, ValidationCatchesLockedReadSetObject) {
  auto c1 = MakeCoordinator(0, 1);
  auto c2 = MakeCoordinator(1, 2);
  ASSERT_TRUE(c1->Begin().ok());
  std::string value;
  ASSERT_TRUE(c1->Read(table_, 9, &value).ok());
  ASSERT_TRUE(c1->Write(table_, 10, Padded("dep")).ok());

  // c2 locks 9 (in-flight, not yet committed) while c1 validates.
  ASSERT_TRUE(c2->Begin().ok());
  ASSERT_TRUE(c2->Write(table_, 9, Padded("pending")).ok());

  // Covert Locks fix: c1 must abort even though 9's version is unchanged.
  EXPECT_TRUE(c1->Commit().IsAborted());
  ASSERT_TRUE(c2->Commit().ok());
}

TEST_F(TxnTest, CovertLocksBugMissesLockedReadSet) {
  TxnConfig buggy;
  buggy.bugs.covert_locks = true;
  auto c1 = MakeCoordinator(0, 1, buggy);
  auto c2 = MakeCoordinator(1, 2);
  ASSERT_TRUE(c1->Begin().ok());
  std::string value;
  ASSERT_TRUE(c1->Read(table_, 9, &value).ok());
  ASSERT_TRUE(c1->Write(table_, 10, Padded("dep")).ok());
  ASSERT_TRUE(c2->Begin().ok());
  ASSERT_TRUE(c2->Write(table_, 9, Padded("pending")).ok());
  // With the bug, c1 commits — the serializability hole litmus 2 exposes.
  EXPECT_TRUE(c1->Commit().ok());
  ASSERT_TRUE(c2->Commit().ok());
}

TEST_F(TxnTest, InsertDeleteReinsert) {
  auto coord = MakeCoordinator(0, 1);
  std::string value;

  ASSERT_TRUE(coord->Begin().ok());
  EXPECT_TRUE(coord->Read(table_, 500, &value).IsNotFound());
  ASSERT_TRUE(coord->Commit().ok());

  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Insert(table_, 500, Padded("fresh")).ok());
  ASSERT_TRUE(coord->Commit().ok());
  EXPECT_EQ(ReadCommitted(coord.get(), 500), Padded("fresh"));

  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Delete(table_, 500).ok());
  ASSERT_TRUE(coord->Commit().ok());

  ASSERT_TRUE(coord->Begin().ok());
  EXPECT_TRUE(coord->Read(table_, 500, &value).IsNotFound());
  ASSERT_TRUE(coord->Commit().ok());

  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Insert(table_, 500, Padded("again")).ok());
  ASSERT_TRUE(coord->Commit().ok());
  EXPECT_EQ(ReadCommitted(coord.get(), 500), Padded("again"));
}

TEST_F(TxnTest, DeleteMissingKeyKeepsTxnAlive) {
  auto coord = MakeCoordinator(0, 1);
  ASSERT_TRUE(coord->Begin().ok());
  EXPECT_TRUE(coord->Delete(table_, 12345).IsNotFound());
  ASSERT_TRUE(coord->Write(table_, 3, Padded("still-works")).ok());
  ASSERT_TRUE(coord->Commit().ok());
}

TEST_F(TxnTest, WriteMissingKeyIsNotFound) {
  auto coord = MakeCoordinator(0, 1);
  ASSERT_TRUE(coord->Begin().ok());
  EXPECT_TRUE(
      coord->Write(table_, 99999, Padded("nope")).IsNotFound());
  ASSERT_TRUE(coord->Commit().ok());
}

TEST_F(TxnTest, ReadRange) {
  auto coord = MakeCoordinator(0, 1);
  ASSERT_TRUE(coord->Begin().ok());
  std::vector<std::pair<store::Key, std::string>> rows;
  ASSERT_TRUE(coord->ReadRange(table_, 95, 105, &rows).ok());
  ASSERT_TRUE(coord->Commit().ok());
  // Keys 95..99 exist; 100..105 do not.
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows.front().first, 95u);
  EXPECT_EQ(rows.back().first, 99u);
  EXPECT_EQ(rows.front().second, Padded("init-95"));
}

TEST_F(TxnTest, PillStealsStrayLock) {
  // Coordinator 1 locks key 7 then "crashes" (never completes).
  auto c1 = MakeCoordinator(0, 1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 7, Padded("dying")).ok());
  cluster_->CrashComputeNode(cluster_->compute_node_id(0));

  const rdma::NodeId primary = cluster_->ReplicasFor(table_, 7)[0];
  EXPECT_TRUE(store::LockHeld(Inspect(7, primary).lock));

  // Without the failed-ids bit, coordinator 2 conflicts and aborts.
  auto c2 = MakeCoordinator(1, 2);
  ASSERT_TRUE(c2->Begin().ok());
  EXPECT_TRUE(c2->Write(table_, 7, Padded("blocked")).IsAborted());

  // After the stray-lock notification (failed-ids update), it steals.
  cluster_->compute(1)->failed_ids().Set(1);
  ASSERT_TRUE(c2->Begin().ok());
  EXPECT_TRUE(c2->Write(table_, 7, Padded("stolen")).ok());
  EXPECT_EQ(c2->stats().locks_stolen, 1u);
  ASSERT_TRUE(c2->Commit().ok());

  auto reader = MakeCoordinator(1, 3);
  EXPECT_EQ(ReadCommitted(reader.get(), 7), Padded("stolen"));
}

TEST_F(TxnTest, PillReadsThroughStrayLock) {
  auto c1 = MakeCoordinator(0, 1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 7, Padded("dying")).ok());
  cluster_->CrashComputeNode(cluster_->compute_node_id(0));
  cluster_->compute(1)->failed_ids().Set(1);

  auto c2 = MakeCoordinator(1, 2);
  ASSERT_TRUE(c2->Begin().ok());
  std::string value;
  ASSERT_TRUE(c2->Read(table_, 7, &value).ok());
  // The stray lock's owner never updated the object (not logged), so the
  // committed value is observed.
  EXPECT_EQ(value, Padded("init-7"));
  EXPECT_EQ(c2->stats().stray_reads_ignored, 1u);
  ASSERT_TRUE(c2->Commit().ok());
}

TEST_F(TxnTest, BaselineCannotSteal) {
  auto c1 = MakeCoordinator(0, 1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 7, Padded("dying")).ok());
  cluster_->CrashComputeNode(cluster_->compute_node_id(0));
  cluster_->compute(1)->failed_ids().Set(1);

  TxnConfig baseline;
  baseline.mode = ProtocolMode::kFordBaseline;
  auto c2 = MakeCoordinator(1, 2, baseline);
  ASSERT_TRUE(c2->Begin().ok());
  EXPECT_TRUE(c2->Write(table_, 7, Padded("blocked")).IsAborted());
  EXPECT_EQ(c2->stats().locks_stolen, 0u);
}

TEST_F(TxnTest, CrashedCoordinatorAbandonsWithoutCleanup) {
  auto c1 = MakeCoordinator(0, 1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 7, Padded("half-done")).ok());
  cluster_->CrashComputeNode(cluster_->compute_node_id(0));
  EXPECT_TRUE(c1->Commit().IsUnavailable());
  EXPECT_FALSE(c1->in_txn());
  EXPECT_EQ(c1->stats().crashed, 1u);
  // The lock is still held in memory — a stray lock.
  const rdma::NodeId primary = cluster_->ReplicasFor(table_, 7)[0];
  EXPECT_TRUE(store::LockHeld(Inspect(7, primary).lock));
  EXPECT_EQ(store::LockOwner(Inspect(7, primary).lock), 1);
}

TEST_F(TxnTest, StallOnConflictWaitsOutRecoveryPendingLock) {
  // §6.4 stalling: a transaction meeting a lock that *awaits recovery*
  // (owner in failed-ids, no PILL stealing available) waits until the
  // recovery path releases it. Live-owner conflicts still abort.
  TxnConfig stall;
  stall.mode = ProtocolMode::kFordBaseline;  // No stealing.
  stall.stall_on_conflict = true;
  stall.stall_timeout_us = 2'000'000;

  // Coordinator 1 locks key 7 and crashes; mark its id failed (the FD
  // notification) without releasing the lock yet.
  auto c1 = MakeCoordinator(0, 1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 7, Padded("dying")).ok());
  cluster_->CrashComputeNode(cluster_->compute_node_id(0));
  cluster_->compute(1)->failed_ids().Set(1);

  auto c2 = MakeCoordinator(1, 2, stall);
  std::thread t2([&] {
    ASSERT_TRUE(c2->Begin().ok());
    ASSERT_TRUE(c2->Write(table_, 7, Padded("after-wait")).ok());
    ASSERT_TRUE(c2->Commit().ok());
  });
  // Let c2 start stalling, then play the recovery's lock release.
  SleepForMicros(20'000);
  const auto& info = cluster_->catalog().table(table_);
  const rdma::NodeId primary = cluster_->ReplicasFor(table_, 7)[0];
  const store::SlotState state = Inspect(7, primary);
  uint64_t observed = 0;
  ASSERT_TRUE(cluster_->compute(1)
                  ->qp(primary)
                  ->CompareSwap(info.region_rkeys[primary],
                                info.layout.LockOffset(state.slot),
                                store::MakeLock(1), store::kUnlocked,
                                &observed)
                  .ok());
  t2.join();
  EXPECT_GT(c2->stats().stall_retries, 0u);

  auto reader = MakeCoordinator(1, 3);
  EXPECT_EQ(ReadCommitted(reader.get(), 7), Padded("after-wait"));
}

TEST_F(TxnTest, LiveConflictAbortsEvenWithStallEnabled) {
  TxnConfig stall;
  stall.stall_on_conflict = true;
  auto c1 = MakeCoordinator(0, 1);
  auto c2 = MakeCoordinator(1, 2, stall);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 7, Padded("live")).ok());
  ASSERT_TRUE(c2->Begin().ok());
  // The owner is alive (not in failed-ids): abort, do not stall.
  EXPECT_TRUE(c2->Write(table_, 7, Padded("loser")).IsAborted());
  EXPECT_EQ(c2->stats().stall_retries, 0u);
  ASSERT_TRUE(c1->Commit().ok());
}

TEST_F(TxnTest, SerializableCounterUnderConcurrency) {
  // N coordinators increment the same counter with read-modify-write
  // transactions; committed increments must all survive (no lost updates).
  constexpr int kThreads = 4;
  constexpr int kAttempts = 300;
  std::string zero(16, '\0');
  {
    auto init = MakeCoordinator(0, 60);
    ASSERT_TRUE(init->Begin().ok());
    ASSERT_TRUE(init->Write(table_, 50, zero).ok());
    ASSERT_TRUE(init->Commit().ok());
  }
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto coord = MakeCoordinator(t % 2, static_cast<uint16_t>(10 + t));
      for (int i = 0; i < kAttempts; ++i) {
        if (!coord->Begin().ok()) continue;
        std::string value;
        if (!coord->Read(table_, 50, &value).ok()) continue;
        uint64_t counter = DecodeFixed64(value.data());
        char buf[16] = {0};
        EncodeFixed64(buf, counter + 1);
        if (!coord->Write(table_, 50, Slice(buf, 16)).ok()) continue;
        if (coord->Commit().ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  auto reader = MakeCoordinator(0, 61);
  const std::string final_value = ReadCommitted(reader.get(), 50);
  EXPECT_EQ(DecodeFixed64(final_value.data()), committed.load());
  EXPECT_GT(committed.load(), 0u);
}

TEST_F(TxnTest, TraditionalLoggingCommitsCorrectly) {
  TxnConfig traditional;
  traditional.mode = ProtocolMode::kTraditionalLogging;
  auto coord = MakeCoordinator(0, 1, traditional);
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Write(table_, 5, Padded("trad")).ok());
  ASSERT_TRUE(coord->Commit().ok());
  // Intent + undo record per write.
  EXPECT_GE(coord->stats().log_records_written, 2u);
  auto reader = MakeCoordinator(0, 2);
  EXPECT_EQ(ReadCommitted(reader.get(), 5), Padded("trad"));
}

TEST_F(TxnTest, EmptyTxnCommits) {
  auto coord = MakeCoordinator(0, 1);
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Commit().ok());
  EXPECT_EQ(coord->stats().committed, 1u);
}

TEST_F(TxnTest, ApiRejectsUseOutsideTxn) {
  auto coord = MakeCoordinator(0, 1);
  std::string value;
  EXPECT_TRUE(coord->Read(table_, 1, &value).IsInvalidArgument());
  EXPECT_TRUE(coord->Write(table_, 1, Padded("x")).IsInvalidArgument());
  EXPECT_TRUE(coord->Commit().IsInvalidArgument());
  EXPECT_TRUE(coord->Abort().IsInvalidArgument());
  ASSERT_TRUE(coord->Begin().ok());
  EXPECT_TRUE(coord->Begin().IsInvalidArgument());
}


TEST_F(TxnTest, NvmFlushIssuedOnlyInNvmMode) {
  // Rebuild the cluster in NVM mode.
  cluster::ClusterConfig config;
  config.memory_nodes = 3;
  config.compute_nodes = 2;
  config.replication = 2;
  config.net.one_way_ns = 0;
  config.net.per_byte_ns = 0;
  config.log.max_coordinators = 64;
  config.persistence = cluster::PersistenceMode::kNvmWithFlush;
  cluster::Cluster nvm_cluster(config);
  const store::TableId table = nvm_cluster.CreateTable("t", 16, 64);
  ASSERT_TRUE(nvm_cluster.LoadRow(table, 1, Padded("x")).ok());

  txn::Coordinator coord(&nvm_cluster, nvm_cluster.compute(0), 1,
                         TxnConfig());
  ASSERT_TRUE(coord.Begin().ok());
  ASSERT_TRUE(coord.Write(table, 1, Padded("durable")).ok());
  ASSERT_TRUE(coord.Commit().ok());
  // One flush group after the log write + one after the commit apply.
  EXPECT_GE(coord.stats().nvm_flushes, 2u);

  // The default (volatile DRAM) fixture never flushes.
  auto plain = MakeCoordinator(0, 2);
  ASSERT_TRUE(plain->Begin().ok());
  ASSERT_TRUE(plain->Write(table_, 1, Padded("plain")).ok());
  ASSERT_TRUE(plain->Commit().ok());
  EXPECT_EQ(plain->stats().nvm_flushes, 0u);
}

TEST_F(TxnTest, SequentialVerbsModeStillCorrect) {
  TxnConfig config;
  config.sequential_verbs = true;
  auto coord = MakeCoordinator(0, 1, config);
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Write(table_, 5, Padded("seq")).ok());
  ASSERT_TRUE(coord->Write(table_, 6, Padded("seq")).ok());
  ASSERT_TRUE(coord->Commit().ok());
  auto reader = MakeCoordinator(1, 2);
  EXPECT_EQ(ReadCommitted(reader.get(), 5), Padded("seq"));
  EXPECT_EQ(ReadCommitted(reader.get(), 6), Padded("seq"));
}

// Protocol-mode sweep: the three protocols must agree on basic
// transactional behaviour (commit, rollback-on-abort, conflict).
class ProtocolSweep : public TxnTest,
                      public ::testing::WithParamInterface<ProtocolMode> {};

TEST_P(ProtocolSweep, CommitAbortConflict) {
  TxnConfig config;
  config.mode = GetParam();
  auto c1 = MakeCoordinator(0, 1, config);
  auto c2 = MakeCoordinator(1, 2, config);

  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 20, Padded("v1")).ok());
  ASSERT_TRUE(c1->Commit().ok());

  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 20, Padded("v2")).ok());
  EXPECT_TRUE(c1->Abort().IsAborted());

  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 20, Padded("v3")).ok());
  ASSERT_TRUE(c2->Begin().ok());
  EXPECT_TRUE(c2->Write(table_, 20, Padded("loser")).IsAborted());
  ASSERT_TRUE(c1->Commit().ok());

  auto reader = MakeCoordinator(0, 3, config);
  EXPECT_EQ(ReadCommitted(reader.get(), 20), Padded("v3"));
}

INSTANTIATE_TEST_SUITE_P(Modes, ProtocolSweep,
                         ::testing::Values(ProtocolMode::kPandora,
                                           ProtocolMode::kFordBaseline,
                                           ProtocolMode::kTraditionalLogging));

TEST_F(TxnTest, PipelinedLockAndFetchCostsOneRoundTrip) {
  // §3.1.1: with the address cache warm, staging a write is one doorbell
  // (lock CAS + speculative undo read) under pipelining, two round trips
  // without it.
  auto coord = MakeCoordinator(0, 1);
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Write(table_, 5, Padded("warm")).ok());
  ASSERT_TRUE(coord->Commit().ok());

  const uint64_t before = coord->stats().execution_rtts;
  const uint64_t doorbells_before = coord->stats().doorbells;
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Write(table_, 5, Padded("hot")).ok());
  EXPECT_EQ(coord->stats().execution_rtts - before, 1u);
  EXPECT_EQ(coord->stats().doorbells - doorbells_before, 1u);
  ASSERT_TRUE(coord->Commit().ok());

  TxnConfig unpipelined;
  unpipelined.pipeline_execution = false;
  auto coord2 = MakeCoordinator(0, 2, unpipelined);
  ASSERT_TRUE(coord2->Begin().ok());
  ASSERT_TRUE(coord2->Write(table_, 5, Padded("warm2")).ok());
  ASSERT_TRUE(coord2->Commit().ok());

  const uint64_t before2 = coord2->stats().execution_rtts;
  ASSERT_TRUE(coord2->Begin().ok());
  ASSERT_TRUE(coord2->Write(table_, 5, Padded("hot2")).ok());
  EXPECT_EQ(coord2->stats().execution_rtts - before2, 2u);
  ASSERT_TRUE(coord2->Commit().ok());

  auto reader = MakeCoordinator(1, 3);
  EXPECT_EQ(ReadCommitted(reader.get(), 5), Padded("hot2"));
}

TEST_F(TxnTest, BatchedReadRangeUsesMaxRttRounds) {
  // 10 keys, addresses pre-warmed by the bulk loader: the sequential path
  // pays one slot-read round trip per key; the batched path reads all ten
  // slots in a single combined doorbell.
  auto pipelined = MakeCoordinator(0, 1);
  std::vector<std::pair<store::Key, std::string>> out;
  ASSERT_TRUE(pipelined->Begin().ok());
  ASSERT_TRUE(pipelined->ReadRange(table_, 0, 9, &out).ok());
  ASSERT_TRUE(pipelined->Commit().ok());
  ASSERT_EQ(out.size(), 10u);
  for (store::Key k = 0; k < 10; ++k) {
    EXPECT_EQ(out[k].first, k);
    EXPECT_EQ(out[k].second, Padded("init-" + std::to_string(k)));
  }
  const uint64_t batched_rtts = pipelined->stats().execution_rtts;

  TxnConfig unpipelined_cfg;
  unpipelined_cfg.pipeline_execution = false;
  auto unpipelined = MakeCoordinator(1, 2, unpipelined_cfg);
  out.clear();
  ASSERT_TRUE(unpipelined->Begin().ok());
  ASSERT_TRUE(unpipelined->ReadRange(table_, 0, 9, &out).ok());
  ASSERT_TRUE(unpipelined->Commit().ok());
  ASSERT_EQ(out.size(), 10u);
  const uint64_t sequential_rtts = unpipelined->stats().execution_rtts;

  EXPECT_LT(batched_rtts, sequential_rtts);
  EXPECT_GE(sequential_rtts, 10u);
  EXPECT_EQ(batched_rtts, 1u);
}

TEST(PipelineTimingTest, LockAndFetchWaitsOneRttNotTwo) {
  // Timing regression for the tentpole claim: with a measurable network
  // model, the pipelined lock+fetch spins out a single round trip.
  cluster::ClusterConfig config;
  config.memory_nodes = 3;
  config.compute_nodes = 1;
  config.replication = 2;
  config.net.one_way_ns = 200'000;  // 400 us RTT: dwarfs scheduling noise.
  config.net.per_byte_ns = 0;
  config.log.max_coordinators = 64;
  cluster::Cluster cluster(config);
  const store::TableId table = cluster.CreateTable("t", 16, 64);
  std::string v(16, 'x');
  ASSERT_TRUE(cluster.LoadRow(table, 1, v).ok());

  for (const bool pipelined : {true, false}) {
    TxnConfig txn_config;
    txn_config.pipeline_execution = pipelined;
    Coordinator coord(&cluster, cluster.compute(0),
                      pipelined ? 1 : 2, txn_config);
    // Warm the address cache so the measured Write is only lock+fetch.
    ASSERT_TRUE(coord.Begin().ok());
    ASSERT_TRUE(coord.Write(table, 1, Slice(v)).ok());
    ASSERT_TRUE(coord.Commit().ok());

    ASSERT_TRUE(coord.Begin().ok());
    const uint64_t t0 = NowNanos();
    ASSERT_TRUE(coord.Write(table, 1, Slice(v)).ok());
    const uint64_t elapsed = NowNanos() - t0;
    EXPECT_TRUE(coord.Abort().IsAborted());
    if (pipelined) {
      EXPECT_GE(elapsed, 400'000u);  // One full round trip...
      EXPECT_LT(elapsed, 780'000u);  // ...but clearly not two.
    } else {
      EXPECT_GE(elapsed, 800'000u);  // CAS then fetch: two round trips.
    }
  }
}

// Placement cache vs. membership failover: a warm cache must never serve a
// placement decision from before a failover. Crashing a key's primary bumps
// the cluster placement epoch, so the next lookup re-walks the ring (a
// cache miss) and the operation lands on the surviving backup.
TEST_F(TxnTest, PlacementCacheInvalidatedByMemoryFailover) {
  auto coord = MakeCoordinator(0, 1);  // placement_cache defaults on.

  // Warm the placement cache across many keys.
  for (store::Key k = 0; k < 50; ++k) {
    ReadCommitted(coord.get(), k);
  }
  EXPECT_GT(coord->stats().placement_misses, 0u);

  // Re-reading the same keys is now mostly cache hits; the direct-mapped
  // cache may evict a handful of colliding keys, so bound rather than
  // forbid repeat misses.
  const uint64_t misses_warm = coord->stats().placement_misses;
  const uint64_t hits_before = coord->stats().placement_hits;
  for (store::Key k = 0; k < 50; ++k) {
    ReadCommitted(coord.get(), k);
  }
  EXPECT_GT(coord->stats().placement_hits, hits_before + 30);
  EXPECT_LT(coord->stats().placement_misses, misses_warm + 15);

  // Find a key whose primary is node 0, then crash node 0.
  store::Key victim = store::kFreeKey;
  for (store::Key k = 0; k < 100; ++k) {
    if (cluster_->PrimaryFor(table_, k) == 0) {
      victim = k;
      break;
    }
  }
  ASSERT_NE(victim, store::kFreeKey);
  const auto replicas = cluster_->ReplicasFor(table_, victim);
  cluster_->CrashMemoryNode(0);

  // The epoch bump invalidates every cached entry: the next transaction on
  // the victim key misses the cache, re-resolves, and commits against the
  // surviving backup rather than the dead primary.
  const uint64_t misses_after_crash = coord->stats().placement_misses;
  ASSERT_TRUE(coord->Begin().ok());
  ASSERT_TRUE(coord->Write(table_, victim, Padded("failover")).ok());
  ASSERT_TRUE(coord->Commit().ok());
  EXPECT_GT(coord->stats().placement_misses, misses_after_crash);
  EXPECT_EQ(cluster_->PrimaryFor(table_, victim), replicas[1]);
  const store::SlotState state = Inspect(victim, replicas[1]);
  EXPECT_EQ(store::VersionOf(state.version), 2u);

  auto reader = MakeCoordinator(1, 2);
  EXPECT_EQ(ReadCommitted(reader.get(), victim), Padded("failover"));
}

// Ablation: with the cache disabled every lookup is a ring walk and the
// stats counters stay untouched — the knob isolates the fast path.
TEST_F(TxnTest, PlacementCacheKnobDisablesCounting) {
  TxnConfig config;
  config.placement_cache = false;
  auto coord = MakeCoordinator(0, 1, config);
  for (store::Key k = 0; k < 20; ++k) {
    ReadCommitted(coord.get(), k);
  }
  EXPECT_EQ(coord->stats().placement_hits, 0u);
  EXPECT_EQ(coord->stats().placement_misses, 0u);
}

}  // namespace
}  // namespace txn
}  // namespace pandora

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "cluster/cluster.h"
#include "common/coding.h"
#include "store/object_header.h"
#include "store/remote_object.h"

namespace pandora {
namespace cluster {
namespace {

// ----------------------------------------------------------------- Ring --

TEST(HashRingTest, ReplicasAreDistinctAndStable) {
  HashRing ring({0, 1, 2, 3}, /*replication=*/3);
  for (store::Key key = 0; key < 200; ++key) {
    const auto replicas = ring.ReplicasFor(1, key);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<rdma::NodeId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    // Deterministic.
    EXPECT_EQ(replicas, ring.ReplicasFor(1, key));
  }
}

TEST(HashRingTest, PrimariesAreBalanced) {
  HashRing ring({0, 1, 2, 3}, 2);
  std::map<rdma::NodeId, int> primary_count;
  constexpr int kKeys = 8000;
  for (store::Key key = 0; key < kKeys; ++key) {
    primary_count[ring.ReplicasFor(0, key)[0]]++;
  }
  for (const auto& [node, count] : primary_count) {
    // Within a factor of ~2 of perfectly even (consistent hashing with 64
    // vnodes is not perfectly uniform).
    EXPECT_GT(count, kKeys / 8) << "node " << node;
    EXPECT_LT(count, kKeys / 2) << "node " << node;
  }
}

TEST(HashRingTest, TablesPlaceIndependently) {
  HashRing ring({0, 1, 2}, 1);
  int diff = 0;
  for (store::Key key = 0; key < 300; ++key) {
    if (ring.ReplicasFor(0, key)[0] != ring.ReplicasFor(1, key)[0]) ++diff;
  }
  EXPECT_GT(diff, 50);
}

// Property: removing one node never changes the replica *prefix* for keys
// it did not serve — the essence of consistent hashing (minimal movement).
TEST(HashRingTest, NodeRemovalMovesOnlyAffectedKeys) {
  HashRing full({0, 1, 2, 3}, 1);
  HashRing without3({0, 1, 2}, 1);
  for (store::Key key = 0; key < 2000; ++key) {
    const rdma::NodeId before = full.ReplicasFor(0, key)[0];
    const rdma::NodeId after = without3.ReplicasFor(0, key)[0];
    if (before != 3) {
      EXPECT_EQ(after, before) << "key " << key << " moved unnecessarily";
    }
  }
}

// -------------------------------------------------------------- Cluster --

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.memory_nodes = 3;
  config.compute_nodes = 2;
  config.replication = 2;
  config.net.one_way_ns = 0;
  config.net.per_byte_ns = 0;
  config.log.max_coordinators = 16;
  return config;
}

TEST(ClusterTest, NodeIdConvention) {
  Cluster cluster(TestConfig());
  EXPECT_EQ(cluster.memory_node_id(0), 0);
  EXPECT_EQ(cluster.memory_node_id(2), 2);
  EXPECT_EQ(cluster.compute_node_id(0), 3);
  EXPECT_EQ(cluster.compute_node_id(1), 4);
  EXPECT_EQ(cluster.service_node_id(), 5);
  EXPECT_EQ(cluster.ComputeServers().size(), 2u);
}

TEST(ClusterTest, LoadAndReadBackThroughVerbs) {
  Cluster cluster(TestConfig());
  const store::TableId t =
      cluster.CreateTable("accounts", /*value_size=*/16, 100);
  const char value[16] = "hello-balance";
  ASSERT_TRUE(cluster.LoadRow(t, 7, Slice(value, 16)).ok());

  const auto& info = cluster.catalog().table(t);
  for (const rdma::NodeId node : cluster.ReplicasFor(t, 7)) {
    rdma::QueuePair* qp = cluster.compute(0)->qp(node);
    store::SlotState state;
    ASSERT_TRUE(store::FindSlotByProbe(qp, info.region_rkeys[node],
                                       info.layout, 7, &state)
                    .ok());
    EXPECT_EQ(store::VersionOf(state.version), 1u);
    EXPECT_FALSE(store::LockHeld(state.lock));
    alignas(8) char read_back[16] = {0};
    ASSERT_TRUE(qp->Read(info.region_rkeys[node],
                         info.layout.ValueOffset(state.slot), read_back, 16)
                    .ok());
    EXPECT_EQ(std::memcmp(read_back, value, 16), 0);
    // Address cache agrees with the probe.
    const auto cached = cluster.addresses().Lookup(t, node, 7);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(*cached, state.slot);
  }
}

TEST(ClusterTest, RejectsOversizedValueAndReservedKey) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 10);
  const char big[32] = {0};
  EXPECT_TRUE(cluster.LoadRow(t, 1, Slice(big, 32)).IsInvalidArgument());
  EXPECT_TRUE(
      cluster.LoadRow(t, store::kFreeKey, Slice(big, 8)).IsInvalidArgument());
}

TEST(ClusterTest, KeyZeroIsLegal) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 10);
  const char v[8] = "zero";
  ASSERT_TRUE(cluster.LoadRow(t, 0, Slice(v, 8)).ok());
  const rdma::NodeId node = cluster.ReplicasFor(t, 0)[0];
  const auto& info = cluster.catalog().table(t);
  store::SlotState state;
  EXPECT_TRUE(store::FindSlotByProbe(cluster.compute(0)->qp(node),
                                     info.region_rkeys[node], info.layout, 0,
                                     &state)
                  .ok());
}

TEST(ClusterTest, PrimaryFailsOverToBackup) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 100);
  const char v[8] = "x";
  for (store::Key k = 0; k < 50; ++k) {
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
  }
  for (store::Key k = 0; k < 50; ++k) {
    const auto replicas = cluster.ReplicasFor(t, k);
    EXPECT_EQ(cluster.PrimaryFor(t, k), replicas[0]);
  }
  const uint64_t epoch_before = cluster.membership().epoch();
  cluster.CrashMemoryNode(0);
  EXPECT_GT(cluster.membership().epoch(), epoch_before);
  for (store::Key k = 0; k < 50; ++k) {
    const auto replicas = cluster.ReplicasFor(t, k);
    const rdma::NodeId primary = cluster.PrimaryFor(t, k);
    if (replicas[0] == 0) {
      // New primary is the first alive backup, which holds the data.
      EXPECT_EQ(primary, replicas[1]);
    } else {
      EXPECT_EQ(primary, replicas[0]);
    }
    EXPECT_NE(primary, 0);
  }
}

TEST(ClusterTest, CrashedMemoryNodeFailsVerbs) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 10);
  const char v[8] = "x";
  ASSERT_TRUE(cluster.LoadRow(t, 1, Slice(v, 8)).ok());
  cluster.CrashMemoryNode(1);
  const auto& info = cluster.catalog().table(t);
  alignas(8) char buf[8];
  EXPECT_TRUE(cluster.compute(0)
                  ->qp(1)
                  ->Read(info.region_rkeys[1], 0, buf, 8)
                  .IsUnavailable());
}

TEST(ClusterTest, CrashAndRestartComputeNode) {
  Cluster cluster(TestConfig());
  const rdma::NodeId node = cluster.compute_node_id(0);
  EXPECT_FALSE(cluster.compute(0)->halted());
  cluster.CrashComputeNode(node);
  EXPECT_TRUE(cluster.compute(0)->halted());
  cluster.RestartComputeNode(node);
  EXPECT_FALSE(cluster.compute(0)->halted());
}

TEST(ClusterTest, MembershipReconfigurationBarrier) {
  Membership membership;
  EXPECT_FALSE(membership.reconfiguring());
  membership.BeginReconfiguration();
  EXPECT_TRUE(membership.reconfiguring());
  membership.EndReconfiguration();
  EXPECT_FALSE(membership.reconfiguring());
}

// Replication sweep: loading under different (memory_nodes, replication)
// shapes must place every row on exactly `replication` distinct servers.
class ReplicationSweep
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(ReplicationSweep, EveryRowOnExactlyRReplicas) {
  const auto [memory_nodes, replication] = GetParam();
  ClusterConfig config = TestConfig();
  config.memory_nodes = memory_nodes;
  config.replication = replication;
  Cluster cluster(config);
  const store::TableId t = cluster.CreateTable("t", 8, 64);
  const char v[8] = "x";
  for (store::Key k = 0; k < 64; ++k) {
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
    int copies = 0;
    const auto& info = cluster.catalog().table(t);
    for (uint32_t m = 0; m < memory_nodes; ++m) {
      store::SlotState state;
      if (store::FindSlotByProbe(cluster.compute(0)->qp(m),
                                 info.region_rkeys[m], info.layout, k,
                                 &state)
              .ok()) {
        ++copies;
      }
    }
    EXPECT_EQ(copies, static_cast<int>(replication)) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReplicationSweep,
                         ::testing::Values(std::make_pair(2u, 1u),
                                           std::make_pair(2u, 2u),
                                           std::make_pair(4u, 3u),
                                           std::make_pair(5u, 2u)));

}  // namespace
}  // namespace cluster
}  // namespace pandora

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/reconfig.h"
#include "common/coding.h"
#include "common/fixed_bitset.h"
#include "store/object_header.h"
#include "store/remote_object.h"

// ---- Allocation-counting guard ------------------------------------------
// Global operator new override (this test binary only): counts every heap
// allocation so tests can assert that the placement fast path and the
// touched-server collection never malloc per lookup.
namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pandora {
namespace cluster {
namespace {

// ----------------------------------------------------------------- Ring --

TEST(HashRingTest, ReplicasAreDistinctAndStable) {
  HashRing ring({0, 1, 2, 3}, /*replication=*/3);
  for (store::Key key = 0; key < 200; ++key) {
    const auto replicas = ring.ReplicasFor(1, key);
    ASSERT_EQ(replicas.size(), 3u);
    std::set<rdma::NodeId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
    // Deterministic.
    EXPECT_EQ(replicas, ring.ReplicasFor(1, key));
  }
}

TEST(HashRingTest, PrimariesAreBalanced) {
  HashRing ring({0, 1, 2, 3}, 2);
  std::map<rdma::NodeId, int> primary_count;
  constexpr int kKeys = 8000;
  for (store::Key key = 0; key < kKeys; ++key) {
    primary_count[ring.ReplicasFor(0, key)[0]]++;
  }
  for (const auto& [node, count] : primary_count) {
    // Within a factor of ~2 of perfectly even (consistent hashing with 64
    // vnodes is not perfectly uniform).
    EXPECT_GT(count, kKeys / 8) << "node " << node;
    EXPECT_LT(count, kKeys / 2) << "node " << node;
  }
}

TEST(HashRingTest, TablesPlaceIndependently) {
  HashRing ring({0, 1, 2}, 1);
  int diff = 0;
  for (store::Key key = 0; key < 300; ++key) {
    if (ring.ReplicasFor(0, key)[0] != ring.ReplicasFor(1, key)[0]) ++diff;
  }
  EXPECT_GT(diff, 50);
}

// Property: removing one node never changes the replica *prefix* for keys
// it did not serve — the essence of consistent hashing (minimal movement).
TEST(HashRingTest, NodeRemovalMovesOnlyAffectedKeys) {
  HashRing full({0, 1, 2, 3}, 1);
  HashRing without3({0, 1, 2}, 1);
  for (store::Key key = 0; key < 2000; ++key) {
    const rdma::NodeId before = full.ReplicasFor(0, key)[0];
    const rdma::NodeId after = without3.ReplicasFor(0, key)[0];
    if (before != 3) {
      EXPECT_EQ(after, before) << "key " << key << " moved unnecessarily";
    }
  }
}

// -------------------------------------------------------------- Cluster --

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.memory_nodes = 3;
  config.compute_nodes = 2;
  config.replication = 2;
  config.net.one_way_ns = 0;
  config.net.per_byte_ns = 0;
  config.log.max_coordinators = 16;
  return config;
}

TEST(ClusterTest, NodeIdConvention) {
  Cluster cluster(TestConfig());
  EXPECT_EQ(cluster.memory_node_id(0), 0);
  EXPECT_EQ(cluster.memory_node_id(2), 2);
  EXPECT_EQ(cluster.compute_node_id(0), 3);
  EXPECT_EQ(cluster.compute_node_id(1), 4);
  EXPECT_EQ(cluster.service_node_id(), 5);
  EXPECT_EQ(cluster.ComputeServers().size(), 2u);
}

TEST(ClusterTest, LoadAndReadBackThroughVerbs) {
  Cluster cluster(TestConfig());
  const store::TableId t =
      cluster.CreateTable("accounts", /*value_size=*/16, 100);
  const char value[16] = "hello-balance";
  ASSERT_TRUE(cluster.LoadRow(t, 7, Slice(value, 16)).ok());

  const auto& info = cluster.catalog().table(t);
  for (const rdma::NodeId node : cluster.ReplicasFor(t, 7)) {
    rdma::QueuePair* qp = cluster.compute(0)->qp(node);
    store::SlotState state;
    ASSERT_TRUE(store::FindSlotByProbe(qp, info.region_rkeys[node],
                                       info.layout, 7, &state)
                    .ok());
    EXPECT_EQ(store::VersionOf(state.version), 1u);
    EXPECT_FALSE(store::LockHeld(state.lock));
    alignas(8) char read_back[16] = {0};
    ASSERT_TRUE(qp->Read(info.region_rkeys[node],
                         info.layout.ValueOffset(state.slot), read_back, 16)
                    .ok());
    EXPECT_EQ(std::memcmp(read_back, value, 16), 0);
    // Address cache agrees with the probe.
    const auto cached = cluster.addresses().Lookup(t, node, 7);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(*cached, state.slot);
  }
}

TEST(ClusterTest, RejectsOversizedValueAndReservedKey) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 10);
  const char big[32] = {0};
  EXPECT_TRUE(cluster.LoadRow(t, 1, Slice(big, 32)).IsInvalidArgument());
  EXPECT_TRUE(
      cluster.LoadRow(t, store::kFreeKey, Slice(big, 8)).IsInvalidArgument());
}

TEST(ClusterTest, KeyZeroIsLegal) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 10);
  const char v[8] = "zero";
  ASSERT_TRUE(cluster.LoadRow(t, 0, Slice(v, 8)).ok());
  const rdma::NodeId node = cluster.ReplicasFor(t, 0)[0];
  const auto& info = cluster.catalog().table(t);
  store::SlotState state;
  EXPECT_TRUE(store::FindSlotByProbe(cluster.compute(0)->qp(node),
                                     info.region_rkeys[node], info.layout, 0,
                                     &state)
                  .ok());
}

TEST(ClusterTest, PrimaryFailsOverToBackup) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 100);
  const char v[8] = "x";
  for (store::Key k = 0; k < 50; ++k) {
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
  }
  for (store::Key k = 0; k < 50; ++k) {
    const auto replicas = cluster.ReplicasFor(t, k);
    EXPECT_EQ(cluster.PrimaryFor(t, k), replicas[0]);
  }
  const uint64_t epoch_before = cluster.membership().epoch();
  cluster.CrashMemoryNode(0);
  EXPECT_GT(cluster.membership().epoch(), epoch_before);
  for (store::Key k = 0; k < 50; ++k) {
    const auto replicas = cluster.ReplicasFor(t, k);
    const rdma::NodeId primary = cluster.PrimaryFor(t, k);
    if (replicas[0] == 0) {
      // New primary is the first alive backup, which holds the data.
      EXPECT_EQ(primary, replicas[1]);
    } else {
      EXPECT_EQ(primary, replicas[0]);
    }
    EXPECT_NE(primary, 0);
  }
}

TEST(ClusterTest, CrashedMemoryNodeFailsVerbs) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 10);
  const char v[8] = "x";
  ASSERT_TRUE(cluster.LoadRow(t, 1, Slice(v, 8)).ok());
  cluster.CrashMemoryNode(1);
  const auto& info = cluster.catalog().table(t);
  alignas(8) char buf[8];
  EXPECT_TRUE(cluster.compute(0)
                  ->qp(1)
                  ->Read(info.region_rkeys[1], 0, buf, 8)
                  .IsUnavailable());
}

TEST(ClusterTest, CrashAndRestartComputeNode) {
  Cluster cluster(TestConfig());
  const rdma::NodeId node = cluster.compute_node_id(0);
  EXPECT_FALSE(cluster.compute(0)->halted());
  cluster.CrashComputeNode(node);
  EXPECT_TRUE(cluster.compute(0)->halted());
  cluster.RestartComputeNode(node);
  EXPECT_FALSE(cluster.compute(0)->halted());
}

TEST(ClusterTest, MembershipReconfigurationBarrier) {
  Membership membership;
  EXPECT_FALSE(membership.reconfiguring());
  membership.BeginReconfiguration();
  EXPECT_TRUE(membership.reconfiguring());
  membership.EndReconfiguration();
  EXPECT_FALSE(membership.reconfiguring());
  // The barrier nests: a recovery finishing inside an online migration's
  // window must not release the migration's stall.
  membership.BeginReconfiguration();
  membership.BeginReconfiguration();
  EXPECT_TRUE(membership.reconfiguring());
  membership.EndReconfiguration();
  EXPECT_TRUE(membership.reconfiguring());
  membership.EndReconfiguration();
  EXPECT_FALSE(membership.reconfiguring());
}

// Replication sweep: loading under different (memory_nodes, replication)
// shapes must place every row on exactly `replication` distinct servers.
class ReplicationSweep
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(ReplicationSweep, EveryRowOnExactlyRReplicas) {
  const auto [memory_nodes, replication] = GetParam();
  ClusterConfig config = TestConfig();
  config.memory_nodes = memory_nodes;
  config.replication = replication;
  Cluster cluster(config);
  const store::TableId t = cluster.CreateTable("t", 8, 64);
  const char v[8] = "x";
  for (store::Key k = 0; k < 64; ++k) {
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
    int copies = 0;
    const auto& info = cluster.catalog().table(t);
    for (uint32_t m = 0; m < memory_nodes; ++m) {
      store::SlotState state;
      if (store::FindSlotByProbe(cluster.compute(0)->qp(m),
                                 info.region_rkeys[m], info.layout, k,
                                 &state)
              .ok()) {
        ++copies;
      }
    }
    EXPECT_EQ(copies, static_cast<int>(replication)) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReplicationSweep,
                         ::testing::Values(std::make_pair(2u, 1u),
                                           std::make_pair(2u, 2u),
                                           std::make_pair(4u, 3u),
                                           std::make_pair(5u, 2u)));

// --------------------------------------------- Placement fast path ------

// The inline ReplicaSet path must agree byte-for-byte with the legacy
// vector path across tables and keys.
TEST(HashRingTest, ReplicaSetMatchesVectorPath) {
  HashRing ring({0, 1, 2, 3, 4, 5, 6, 7}, /*replication=*/3);
  for (store::TableId table = 0; table < 4; ++table) {
    for (store::Key key = 0; key < 1000; ++key) {
      const ReplicaSet set = ring.ReplicaSetFor(table, key);
      const std::vector<rdma::NodeId> vec = ring.ReplicasFor(table, key);
      ASSERT_EQ(set.size(), vec.size());
      for (uint32_t i = 0; i < set.size(); ++i) {
        EXPECT_EQ(set[i], vec[i]) << "table " << table << " key " << key;
      }
      EXPECT_EQ(set.ToVector(), vec);
      // Hash-keyed entry point agrees with the (table, key) entry point.
      EXPECT_EQ(ring.ReplicaSetForHash(HashRing::PlacementHash(table, key)),
                set);
    }
  }
}

// Vnode load-balance bound: with 64 vnodes/node the primary ownership of a
// large uniform hash sample must stay within a small max/min ratio. This is
// the property the scale-out bench leans on — a skewed ring would turn the
// scaling matrix into a hot-node bench.
TEST(HashRingTest, VnodeLoadBalanceBound) {
  std::vector<rdma::NodeId> nodes;
  for (rdma::NodeId n = 0; n < 16; ++n) nodes.push_back(n);
  HashRing ring(nodes, /*replication=*/3);
  std::map<rdma::NodeId, uint64_t> primary_count;
  constexpr uint64_t kSamples = 1'000'000;
  // Sample placement hashes directly (what the cache is keyed on) rather
  // than sequential keys, so the bound covers the full hash space.
  uint64_t hash = 0x9e3779b97f4a7c15ull;
  for (uint64_t i = 0; i < kSamples; ++i) {
    hash ^= hash >> 33;
    hash *= 0xff51afd7ed558ccdull;
    hash ^= hash >> 29;
    const ReplicaSet replicas = ring.ReplicaSetForHash(hash);
    ASSERT_EQ(replicas.size(), 3u);
    primary_count[replicas[0]]++;
  }
  ASSERT_EQ(primary_count.size(), 16u) << "some node owns no keys";
  uint64_t min_count = kSamples;
  uint64_t max_count = 0;
  for (const auto& [node, count] : primary_count) {
    min_count = std::min(min_count, count);
    max_count = std::max(max_count, count);
  }
  EXPECT_LT(static_cast<double>(max_count) / static_cast<double>(min_count),
            2.0)
      << "max " << max_count << " min " << min_count;
}

TEST(HashRingTest, RingsGetDistinctEpochs) {
  HashRing a({0, 1}, 1);
  HashRing b({0, 1}, 1);
  EXPECT_NE(a.epoch(), b.epoch());
}

TEST(PlacementCacheTest, HitAtInsertEpochMissAfterEpochChange) {
  PlacementCache cache;
  ReplicaSet replicas;
  replicas.PushBack(3);
  replicas.PushBack(7);
  const uint64_t hash = HashRing::PlacementHash(1, 42);
  EXPECT_EQ(cache.Lookup(hash, /*epoch=*/5), nullptr);
  cache.Insert(hash, /*epoch=*/5, replicas);
  const ReplicaSet* hit = cache.Lookup(hash, 5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, replicas);
  // Any epoch change — ring swap or membership event — invalidates.
  EXPECT_EQ(cache.Lookup(hash, 6), nullptr);
  EXPECT_EQ(cache.Lookup(hash, 4), nullptr);
  // Re-inserting at the new epoch revalidates.
  cache.Insert(hash, 6, replicas);
  ASSERT_NE(cache.Lookup(hash, 6), nullptr);
}

TEST(PlacementCacheTest, CollidingIndexEvicts) {
  PlacementCache cache;
  ReplicaSet a;
  a.PushBack(1);
  // Two hashes that map to the same direct-mapped slot: differ only above
  // the index bits in a way that cancels in IndexOf's fold.
  const uint64_t h1 = 0x1234;
  const uint64_t h2 = h1 ^ (1ull << 40) ^ (1ull << (40 - 32));
  cache.Insert(h1, 1, a);
  ASSERT_NE(cache.Lookup(h1, 1), nullptr);
  cache.Insert(h2, 1, a);
  // h2 may or may not collide with h1 depending on the fold; the invariant
  // is simply that lookups never return a wrong entry.
  const ReplicaSet* r1 = cache.Lookup(h1, 1);
  if (r1 != nullptr) EXPECT_EQ(*r1, a);
  const ReplicaSet* r2 = cache.Lookup(h2, 1);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(*r2, a);
}

TEST(ClusterTest, PlacementEpochAdvancesOnFailoverAndRebuild) {
  ClusterConfig config = TestConfig();
  Cluster cluster(config);
  const store::TableId t = cluster.CreateTable("t", 8, 64);
  const char v[8] = "x";
  for (store::Key k = 0; k < 32; ++k) {
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
  }
  const uint64_t e0 = cluster.placement_epoch();
  cluster.CrashMemoryNode(0);
  const uint64_t e1 = cluster.placement_epoch();
  EXPECT_GT(e1, e0) << "crash must invalidate placement caches";
  ASSERT_TRUE(cluster.RebuildMemoryNode(0).ok());
  const uint64_t e2 = cluster.placement_epoch();
  EXPECT_GT(e2, e1) << "re-admission must invalidate placement caches";
}

// Zero-allocation guard: once the cache is warm, the hot placement path —
// hash, cache lookup, primary selection, touched-server collection — must
// not touch the heap. This is the tentpole's core claim; the global
// operator-new counter at the top of this file enforces it.
TEST(ClusterTest, PlacementFastPathIsAllocationFree) {
  ClusterConfig config = TestConfig();
  config.memory_nodes = 4;
  config.replication = 3;
  Cluster cluster(config);

  PlacementCache cache;
  const uint64_t epoch = cluster.placement_epoch();
  constexpr store::Key kKeys = 512;
  // Warm: every key's replica set enters the cache (collisions simply
  // leave some keys on the ring-walk path, which is also allocation-free).
  for (store::Key k = 0; k < kKeys; ++k) {
    const uint64_t hash = HashRing::PlacementHash(0, k);
    const ReplicaSet replicas = cluster.ring().ReplicaSetForHash(hash);
    cache.Insert(hash, epoch, replicas);
  }

  FixedBitset<rdma::kMaxNodes> touched_bits;
  std::vector<rdma::NodeId> touched;
  touched.reserve(config.memory_nodes);

  const uint64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  uint64_t checksum = 0;
  for (int iter = 0; iter < 20; ++iter) {
    touched_bits.Reset();
    touched.clear();
    for (store::Key k = 0; k < kKeys; ++k) {
      const uint64_t hash = HashRing::PlacementHash(0, k);
      const ReplicaSet* cached = cache.Lookup(hash, epoch);
      const ReplicaSet replicas =
          cached != nullptr ? *cached : cluster.ring().ReplicaSetForHash(hash);
      checksum += cluster.PrimaryOf(replicas);
      for (const rdma::NodeId node : replicas) touched_bits.Set(node);
    }
    touched_bits.ForEachSet([&touched](size_t bit) {
      touched.push_back(static_cast<rdma::NodeId>(bit));
    });
    checksum += touched.size();
  }
  const uint64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "hot placement path allocated " << (after - before) << " times";
  EXPECT_GT(checksum, 0u);  // Keep the loop observable.
}

// --------------------------------------------- Online reconfiguration ---

// Rebuild rewrites a server's regions from the current primaries with no
// coordination against in-flight transactions, so when a quiesce probe is
// installed it must refuse to run while traffic is live.
TEST(ClusterTest, RebuildMemoryNodeRequiresQuiesce) {
  Cluster cluster(TestConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 64);
  const char v[8] = "x";
  for (store::Key k = 0; k < 16; ++k) {
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
  }
  cluster.CrashMemoryNode(0);

  bool quiesced = false;
  cluster.set_quiesce_check([&quiesced] { return quiesced; });
  const Status busy = cluster.RebuildMemoryNode(0);
  EXPECT_TRUE(busy.IsBusy()) << busy.ToString();
  // The refused rebuild must not have re-admitted the node.
  EXPECT_FALSE(cluster.membership().IsMemoryAlive(0));

  quiesced = true;
  ASSERT_TRUE(cluster.RebuildMemoryNode(0).ok());
  EXPECT_TRUE(cluster.membership().IsMemoryAlive(0));
}

ClusterConfig StandbyConfig() {
  ClusterConfig config = TestConfig();
  config.standby_memory_nodes = 1;
  return config;
}

// The placement epoch is the coordinators' only staleness signal, so every
// transition of the reconfiguration lifecycle — live join, crash, rebuild,
// planned drain — must advance it strictly.
TEST(ClusterTest, PlacementEpochMonotonicAcrossJoinCrashRebuildDrain) {
  Cluster cluster(StandbyConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 128);
  char v[8] = {0};
  for (store::Key k = 0; k < 128; ++k) {
    EncodeFixed64(v, 1000 + k);
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
  }
  const rdma::NodeId standby = cluster.memory_node_id(3);
  ReconfigManager migrator(&cluster);

  const uint64_t e0 = cluster.placement_epoch();
  ASSERT_TRUE(migrator.JoinMemoryNode(standby).ok());
  const uint64_t e1 = cluster.placement_epoch();
  EXPECT_GT(e1, e0) << "join must invalidate placement caches";
  const auto& joined = cluster.ring().nodes();
  EXPECT_NE(std::find(joined.begin(), joined.end(), standby), joined.end());

  cluster.CrashMemoryNode(0);
  const uint64_t e2 = cluster.placement_epoch();
  EXPECT_GT(e2, e1) << "crash must invalidate placement caches";

  ASSERT_TRUE(cluster.RebuildMemoryNode(0).ok());
  const uint64_t e3 = cluster.placement_epoch();
  EXPECT_GT(e3, e2) << "re-admission must invalidate placement caches";

  ASSERT_TRUE(migrator.DrainMemoryNode(standby).ok());
  const uint64_t e4 = cluster.placement_epoch();
  EXPECT_GT(e4, e3) << "drain must invalidate placement caches";
  const auto& drained = cluster.ring().nodes();
  EXPECT_EQ(std::find(drained.begin(), drained.end(), standby),
            drained.end());

  // After the full cycle every row is readable at its current primary with
  // the loaded value — nothing was lost across the four transitions.
  const auto& info = cluster.catalog().table(t);
  for (store::Key k = 0; k < 128; ++k) {
    const rdma::NodeId primary = cluster.PrimaryFor(t, k);
    ASSERT_NE(primary, rdma::kInvalidNodeId) << "key " << k;
    ASSERT_NE(primary, standby) << "key " << k;
    rdma::QueuePair* qp = cluster.compute(0)->qp(primary);
    store::SlotState state;
    ASSERT_TRUE(store::FindSlotByProbe(qp, info.region_rkeys[primary],
                                       info.layout, k, &state)
                    .ok())
        << "key " << k;
    alignas(8) char read_back[8] = {0};
    ASSERT_TRUE(qp->Read(info.region_rkeys[primary],
                         info.layout.ValueOffset(state.slot), read_back, 8)
                    .ok());
    EXPECT_EQ(DecodeFixed64(read_back), 1000 + k) << "key " << k;
  }

  const ReconfigStats stats = migrator.stats();
  EXPECT_EQ(stats.joins, 1u);
  EXPECT_EQ(stats.drains, 1u);
  EXPECT_GT(stats.objects_copied, 0u);
}

// A cache entry inserted before a reconfiguration must never satisfy a
// lookup made at the post-reconfiguration epoch: the epoch key is the only
// thing standing between a coordinator and a retired replica set.
TEST(PlacementCacheTest, NeverServesPreReconfigurationReplicas) {
  Cluster cluster(StandbyConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 128);
  const char v[8] = "x";
  for (store::Key k = 0; k < 128; ++k) {
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
  }
  PlacementCache cache;
  const uint64_t e0 = cluster.placement_epoch();
  std::vector<uint64_t> hashes;
  for (store::Key k = 0; k < 128; ++k) {
    const uint64_t hash = HashRing::PlacementHash(t, k);
    cache.Insert(hash, e0, cluster.ring().ReplicaSetForHash(hash));
    hashes.push_back(hash);
  }

  ReconfigManager migrator(&cluster);
  ASSERT_TRUE(migrator.JoinMemoryNode(cluster.memory_node_id(3)).ok());
  const uint64_t e1 = cluster.placement_epoch();
  ASSERT_GT(e1, e0);

  int moved = 0;
  for (const uint64_t hash : hashes) {
    // The pre-join entry is dead at the new epoch — a fresh lookup must
    // miss and force a ring walk, never return the retired set.
    EXPECT_EQ(cache.Lookup(hash, e1), nullptr);
    const ReplicaSet now = cluster.ring().ReplicaSetForHash(hash);
    const ReplicaSet* old_entry = cache.Lookup(hash, e0);
    if (old_entry != nullptr && !(*old_entry == now)) ++moved;
    cache.Insert(hash, e1, now);
    const ReplicaSet* hit = cache.Lookup(hash, e1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, now);
  }
  // The join actually changed placement for some keys, so serving the old
  // sets would have been a real misdirection, not a no-op.
  EXPECT_GT(moved, 0);
}

// Same invariant under concurrency: readers that snapshot the epoch, look
// up, and double-check the epoch must never observe a replica set that
// disagrees with the ring published for that epoch, even while a join and
// a drain swap rings underneath them.
TEST(PlacementCacheTest, ConcurrentLookupsNeverSeeStaleReplicaSets) {
  Cluster cluster(StandbyConfig());
  const store::TableId t = cluster.CreateTable("t", 8, 128);
  const char v[8] = "x";
  for (store::Key k = 0; k < 128; ++k) {
    ASSERT_TRUE(cluster.LoadRow(t, k, Slice(v, 8)).ok());
  }
  PlacementCache cache;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> mismatches{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (store::Key k = 0; k < 128; ++k) {
          const uint64_t hash = HashRing::PlacementHash(t, k);
          const uint64_t epoch = cluster.placement_epoch();
          const ReplicaSet* cached = cache.Lookup(hash, epoch);
          const ReplicaSet from_ring = cluster.ring().ReplicaSetForHash(hash);
          // If the epoch did not move across the whole window, `from_ring`
          // came from the epoch's ring, so an epoch-matched hit must agree
          // with it. (If it did move, the comparison is not well-defined
          // and the iteration is discarded.)
          if (cluster.placement_epoch() != epoch) continue;
          if (cached != nullptr) {
            hits.fetch_add(1, std::memory_order_relaxed);
            if (!(*cached == from_ring)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            cache.Insert(hash, epoch, from_ring);
          }
        }
      }
    });
  }

  ReconfigManager migrator(&cluster);
  const rdma::NodeId standby = cluster.memory_node_id(3);
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(migrator.JoinMemoryNode(standby).ok());
    ASSERT_TRUE(migrator.DrainMemoryNode(standby).ok());
  }
  // Let the readers run against the settled ring so the final epoch's
  // entries are exercised too.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : readers) thread.join();

  EXPECT_GT(hits.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace cluster
}  // namespace pandora

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/coding.h"
#include "recovery/recovery_manager.h"
#include "store/remote_object.h"
#include "common/logging.h"
#include "txn/coordinator.h"

namespace pandora {
namespace recovery {
namespace {

// Crash hook that fires at the Nth occurrence of a given crash point.
class CrashAt : public txn::CrashHook {
 public:
  CrashAt(txn::CrashPoint point, int occurrence = 1)
      : point_(point), remaining_(occurrence) {}

  bool MaybeCrash(txn::CrashPoint point) override {
    if (point != point_) return false;
    return --remaining_ == 0;
  }

 private:
  txn::CrashPoint point_;
  int remaining_;
};

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild(txn::ProtocolMode::kPandora); }

  void Rebuild(txn::ProtocolMode mode) {
    manager_.reset();
    cluster_.reset();

    cluster::ClusterConfig config;
    config.memory_nodes = 3;
    config.compute_nodes = 2;
    config.replication = 2;
    config.net.one_way_ns = 0;
    config.net.per_byte_ns = 0;
    config.log.max_coordinators = 512;
    cluster_ = std::make_unique<cluster::Cluster>(config);
    table_ = cluster_->CreateTable("t", /*value_size=*/16, 512);
    for (store::Key k = 0; k < 200; ++k) {
      ASSERT_TRUE(cluster_->LoadRow(table_, k, Padded("init")).ok());
    }

    RecoveryManagerConfig rm_config;
    rm_config.mode = mode;
    rm_config.fd.timeout_us = 5000;
    manager_ = std::make_unique<RecoveryManager>(cluster_.get(), rm_config,
                                                 &gate_);
    manager_->Start();

    mode_ = mode;
    txn_config_ = txn::TxnConfig();
    txn_config_.mode = mode;
  }

  std::string Padded(const std::string& s) {
    std::string v = s;
    v.resize(16, '\0');
    return v;
  }

  std::unique_ptr<txn::Coordinator> MakeCoordinator(uint32_t compute_index) {
    std::vector<uint16_t> ids;
    const Status status = manager_->RegisterComputeNode(
        cluster_->compute(compute_index), 1, &ids);
    PANDORA_CHECK(status.ok());
    return std::make_unique<txn::Coordinator>(
        cluster_.get(), cluster_->compute(compute_index), ids[0],
        txn_config_, &gate_);
  }

  // Runs a transaction that writes `keys` and crashes at `point`; then
  // waits for the heartbeat-driven recovery to complete.
  void CrashDuringTxn(txn::Coordinator* coord, txn::CrashPoint point,
                      const std::vector<store::Key>& keys,
                      const std::string& value) {
    CrashAt hook(point);
    coord->set_crash_hook(&hook);
    ASSERT_TRUE(coord->Begin().ok());
    Status status;
    for (const store::Key key : keys) {
      status = coord->Write(table_, key, Padded(value));
      if (!status.ok()) break;
    }
    if (status.ok()) status = coord->Commit();
    ASSERT_TRUE(status.IsUnavailable())
        << "expected injected crash, got " << status.ToString();
    ASSERT_TRUE(manager_->WaitForComputeRecovery(
        cluster_->compute_node_id(0), /*timeout_us=*/3'000'000))
        << "recovery did not complete";
  }

  std::string ReadCommitted(store::Key key) {
    auto reader = MakeCoordinator(1);
    EXPECT_TRUE(reader->Begin().ok());
    std::string value;
    EXPECT_TRUE(reader->Read(table_, key, &value).ok());
    EXPECT_TRUE(reader->Commit().ok());
    return value;
  }

  bool KeyVisible(store::Key key) {
    auto reader = MakeCoordinator(1);
    EXPECT_TRUE(reader->Begin().ok());
    std::string value;
    const Status status = reader->Read(table_, key, &value);
    EXPECT_TRUE(reader->Commit().ok());
    return status.ok();
  }

  // All replicas of `key` must be unlocked and agree on version+value.
  void ExpectConsistentAndUnlocked(store::Key key) {
    const auto& info = cluster_->catalog().table(table_);
    uint64_t version = 0;
    std::string value;
    bool first = true;
    for (const rdma::NodeId node : cluster_->ReplicasFor(table_, key)) {
      if (!cluster_->membership().IsMemoryAlive(node)) continue;
      store::SlotState state;
      rdma::QueuePair* qp = cluster_->compute(1)->qp(node);
      ASSERT_TRUE(store::FindSlotByProbe(qp, info.region_rkeys[node],
                                         info.layout, key, &state)
                      .ok());
      EXPECT_FALSE(store::LockHeld(state.lock))
          << "key " << key << " locked on node " << node;
      alignas(8) char buf[16];
      ASSERT_TRUE(qp->Read(info.region_rkeys[node],
                           info.layout.ValueOffset(state.slot), buf, 16)
                      .ok());
      if (first) {
        version = store::VersionOf(state.version);
        value.assign(buf, 16);
        first = false;
      } else {
        EXPECT_EQ(store::VersionOf(state.version), version)
            << "replica version divergence on key " << key;
        EXPECT_EQ(std::string(buf, 16), value)
            << "replica value divergence on key " << key;
      }
    }
  }

  txn::SystemGate gate_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<RecoveryManager> manager_;
  store::TableId table_ = 0;
  txn::ProtocolMode mode_ = txn::ProtocolMode::kPandora;
  txn::TxnConfig txn_config_;
};

TEST_F(RecoveryTest, HeartbeatDetectsSilentNode) {
  auto coord = MakeCoordinator(0);
  cluster_->CrashComputeNode(cluster_->compute_node_id(0));
  EXPECT_TRUE(manager_->WaitForComputeRecovery(cluster_->compute_node_id(0),
                                               2'000'000));
  EXPECT_TRUE(manager_->fd().failed_ids().Test(coord->coord_id()));
  // Survivors received the stray-lock notification.
  EXPECT_TRUE(cluster_->compute(1)->failed_ids().Test(coord->coord_id()));
}

TEST_F(RecoveryTest, CrashBeforeLoggingRollsNothingLocksStealable) {
  auto c0 = MakeCoordinator(0);
  // Crash right after taking the first lock — no log exists yet.
  CrashDuringTxn(c0.get(), txn::CrashPoint::kAfterLockFetch, {5, 6},
                 "never");
  const RecoveryStats stats = manager_->last_recovery_stats();
  EXPECT_EQ(stats.rolled_forward + stats.rolled_back, 0u);

  // The lock on key 5 is stray; a survivor steals it through PILL and the
  // old value is intact.
  EXPECT_EQ(ReadCommitted(5), Padded("init"));
  auto c1 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 5, Padded("steal")).ok());
  EXPECT_EQ(c1->stats().locks_stolen, 1u);
  ASSERT_TRUE(c1->Commit().ok());
  ExpectConsistentAndUnlocked(5);
}

TEST_F(RecoveryTest, CrashAfterLogBeforeApplyRollsBack) {
  auto c0 = MakeCoordinator(0);
  CrashDuringTxn(c0.get(), txn::CrashPoint::kAfterValidation, {5, 6},
                 "phantom");
  const RecoveryStats stats = manager_->last_recovery_stats();
  EXPECT_EQ(stats.rolled_back, 1u);
  EXPECT_EQ(stats.rolled_forward, 0u);
  EXPECT_EQ(ReadCommitted(5), Padded("init"));
  EXPECT_EQ(ReadCommitted(6), Padded("init"));
  ExpectConsistentAndUnlocked(5);
  ExpectConsistentAndUnlocked(6);
}

TEST_F(RecoveryTest, CrashMidApplyRollsBackPartialUpdate) {
  auto c0 = MakeCoordinator(0);
  // First replica write lands, then the crash: memory holds a torn
  // transaction that must be undone.
  CrashDuringTxn(c0.get(), txn::CrashPoint::kMidCommitApply, {5, 6},
                 "partial");
  const RecoveryStats stats = manager_->last_recovery_stats();
  EXPECT_EQ(stats.rolled_back, 1u);
  EXPECT_GE(stats.objects_restored, 1u);
  EXPECT_EQ(ReadCommitted(5), Padded("init"));
  EXPECT_EQ(ReadCommitted(6), Padded("init"));
  ExpectConsistentAndUnlocked(5);
  ExpectConsistentAndUnlocked(6);
}

TEST_F(RecoveryTest, CrashAfterFullApplyRollsForward) {
  auto c0 = MakeCoordinator(0);
  // All replicas updated, client possibly acked, locks still held.
  CrashDuringTxn(c0.get(), txn::CrashPoint::kAfterClientAck, {5, 6},
                 "durable");
  const RecoveryStats stats = manager_->last_recovery_stats();
  EXPECT_EQ(stats.rolled_forward, 1u);
  EXPECT_EQ(stats.rolled_back, 0u);
  EXPECT_GE(stats.locks_released, 2u);
  // Cor3: the ack was (possibly) delivered, so the update must survive.
  EXPECT_EQ(ReadCommitted(5), Padded("durable"));
  EXPECT_EQ(ReadCommitted(6), Padded("durable"));
  ExpectConsistentAndUnlocked(5);
  ExpectConsistentAndUnlocked(6);
}

TEST_F(RecoveryTest, CrashMidUnlockIsRolledForwardIdempotently) {
  auto c0 = MakeCoordinator(0);
  CrashDuringTxn(c0.get(), txn::CrashPoint::kMidUnlock, {5, 6}, "done");
  EXPECT_EQ(manager_->last_recovery_stats().rolled_forward, 1u);
  EXPECT_EQ(ReadCommitted(5), Padded("done"));
  EXPECT_EQ(ReadCommitted(6), Padded("done"));
  ExpectConsistentAndUnlocked(5);
  ExpectConsistentAndUnlocked(6);
}

TEST_F(RecoveryTest, CrashDuringAbortAfterTruncationLeavesStealableLocks) {
  // A transaction that aborts, truncates its log, then crashes before
  // releasing locks: recovery sees no logged txn; locks are stray.
  auto c0 = MakeCoordinator(0);
  CrashAt hook(txn::CrashPoint::kAfterAbortTruncate);
  c0->set_crash_hook(&hook);
  ASSERT_TRUE(c0->Begin().ok());
  ASSERT_TRUE(c0->Write(table_, 5, Padded("doomed")).ok());
  EXPECT_TRUE(c0->Abort().IsUnavailable());
  ASSERT_TRUE(manager_->WaitForComputeRecovery(cluster_->compute_node_id(0),
                                               3'000'000));
  EXPECT_EQ(manager_->last_recovery_stats().logged_txns, 0u);
  // Steal and carry on.
  auto c1 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 5, Padded("fresh")).ok());
  EXPECT_EQ(c1->stats().locks_stolen, 1u);
  ASSERT_TRUE(c1->Commit().ok());
}

TEST_F(RecoveryTest, InsertRolledBackBecomesInvisible) {
  auto c0 = MakeCoordinator(0);
  CrashAt hook(txn::CrashPoint::kAfterValidation);
  c0->set_crash_hook(&hook);
  ASSERT_TRUE(c0->Begin().ok());
  ASSERT_TRUE(c0->Insert(table_, 1000, Padded("ghost")).ok());
  EXPECT_TRUE(c0->Commit().IsUnavailable());
  ASSERT_TRUE(manager_->WaitForComputeRecovery(cluster_->compute_node_id(0),
                                               3'000'000));
  EXPECT_FALSE(KeyVisible(1000));
}

TEST_F(RecoveryTest, InsertRolledForwardIsVisible) {
  auto c0 = MakeCoordinator(0);
  CrashAt hook(txn::CrashPoint::kAfterClientAck);
  c0->set_crash_hook(&hook);
  ASSERT_TRUE(c0->Begin().ok());
  ASSERT_TRUE(c0->Insert(table_, 1001, Padded("solid")).ok());
  EXPECT_TRUE(c0->Commit().IsUnavailable());
  ASSERT_TRUE(manager_->WaitForComputeRecovery(cluster_->compute_node_id(0),
                                               3'000'000));
  EXPECT_TRUE(KeyVisible(1001));
  EXPECT_EQ(ReadCommitted(1001), Padded("solid"));
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  auto c0 = MakeCoordinator(0);
  const uint16_t id = c0->coord_id();
  CrashDuringTxn(c0.get(), txn::CrashPoint::kMidCommitApply, {5, 6},
                 "partial");
  EXPECT_EQ(ReadCommitted(5), Padded("init"));

  // §3.2.3: any recovery step may be re-executed. Re-run the whole log
  // recovery for the same coordinator; nothing may change.
  ASSERT_TRUE(manager_
                  ->RecoverComputeFailure(cluster_->compute_node_id(0),
                                          {id})
                  .ok());
  EXPECT_EQ(ReadCommitted(5), Padded("init"));
  EXPECT_EQ(ReadCommitted(6), Padded("init"));
  ExpectConsistentAndUnlocked(5);
  ExpectConsistentAndUnlocked(6);
}

TEST_F(RecoveryTest, StaleRecordOfCompletedTxnPreservesCommittedData) {
  auto c0 = MakeCoordinator(0);
  // Txn 1 commits cleanly (its log record remains valid in the slot).
  ASSERT_TRUE(c0->Begin().ok());
  ASSERT_TRUE(c0->Write(table_, 5, Padded("first")).ok());
  ASSERT_TRUE(c0->Commit().ok());
  // Txn 2 locks the same key and crashes before logging.
  CrashDuringTxn(c0.get(), txn::CrashPoint::kAfterLockFetch, {5}, "second");
  // Processing the stale record of the committed txn 1 must not roll back
  // txn 1's committed data. (Its roll-forward may release txn 2's
  // not-logged stray lock outright — that is safe, since not-logged
  // strays have no updates; the lock is then simply free instead of
  // stealable.)
  EXPECT_EQ(ReadCommitted(5), Padded("first"));
  auto c1 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 5, Padded("third")).ok());
  ASSERT_TRUE(c1->Commit().ok());
  EXPECT_EQ(ReadCommitted(5), Padded("third"));
  ExpectConsistentAndUnlocked(5);
}

TEST_F(RecoveryTest, FalsePositiveCannotCorruptMemory) {
  // Declare a perfectly healthy node failed; active-link termination must
  // fence it before recovery proceeds (Cor1).
  auto c0 = MakeCoordinator(0);
  ASSERT_TRUE(c0->Begin().ok());
  ASSERT_TRUE(c0->Write(table_, 5, Padded("alive")).ok());

  ASSERT_TRUE(manager_
                  ->RecoverComputeFailure(cluster_->compute_node_id(0),
                                          {c0->coord_id()})
                  .ok());
  // The fenced node's commit fails: its verbs are dropped at the memory
  // side, so it cannot corrupt anything.
  const Status status = c0->Commit();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ReadCommitted(5), Padded("init"));
  // Survivors steal its lock as usual.
  auto c1 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 5, Padded("moved-on")).ok());
  ASSERT_TRUE(c1->Commit().ok());
}

TEST_F(RecoveryTest, BaselineScanReleasesStrayLocks) {
  Rebuild(txn::ProtocolMode::kFordBaseline);
  auto c0 = MakeCoordinator(0);
  CrashDuringTxn(c0.get(), txn::CrashPoint::kAfterLockFetch, {5}, "x");
  const RecoveryStats stats = manager_->last_recovery_stats();
  // The scan walked the whole KVS and released the stray lock.
  EXPECT_GT(stats.slots_scanned, 0u);
  EXPECT_GE(stats.locks_released, 1u);
  // No stealing needed: the lock is already free.
  auto c1 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 5, Padded("after-scan")).ok());
  EXPECT_EQ(c1->stats().locks_stolen, 0u);
  ASSERT_TRUE(c1->Commit().ok());
}

TEST_F(RecoveryTest, BaselinePerObjectLogsRollBack) {
  Rebuild(txn::ProtocolMode::kFordBaseline);
  auto c0 = MakeCoordinator(0);
  CrashDuringTxn(c0.get(), txn::CrashPoint::kMidCommitApply, {5, 6}, "p");
  EXPECT_EQ(ReadCommitted(5), Padded("init"));
  EXPECT_EQ(ReadCommitted(6), Padded("init"));
  ExpectConsistentAndUnlocked(5);
  ExpectConsistentAndUnlocked(6);
}

TEST_F(RecoveryTest, TraditionalLoggingRecoversLocksFromIntents) {
  Rebuild(txn::ProtocolMode::kTraditionalLogging);
  auto c0 = MakeCoordinator(0);
  CrashDuringTxn(c0.get(), txn::CrashPoint::kAfterLockFetch, {5}, "x");
  const RecoveryStats stats = manager_->last_recovery_stats();
  EXPECT_GE(stats.lock_intents, 1u);
  EXPECT_GE(stats.locks_released, 1u);
  EXPECT_EQ(stats.slots_scanned, 0u);  // No scan needed.
  auto c1 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 5, Padded("onwards")).ok());
  EXPECT_EQ(c1->stats().locks_stolen, 0u);
  ASSERT_TRUE(c1->Commit().ok());
}

TEST_F(RecoveryTest, MemoryFailureFailsOverToBackups) {
  auto c1 = MakeCoordinator(1);
  // Write some data so backups matter.
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 42, Padded("before")).ok());
  ASSERT_TRUE(c1->Commit().ok());

  cluster_->CrashMemoryNode(0);
  ASSERT_TRUE(manager_->RecoverMemoryFailure(0).ok());

  // All keys remain readable and writable through the new primaries.
  for (store::Key k = 40; k < 45; ++k) {
    ASSERT_TRUE(c1->Begin().ok());
    std::string value;
    ASSERT_TRUE(c1->Read(table_, k, &value).ok()) << "key " << k;
    ASSERT_TRUE(c1->Commit().ok());
  }
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 42, Padded("after")).ok());
  ASSERT_TRUE(c1->Commit().ok());
  EXPECT_EQ(ReadCommitted(42), Padded("after"));
}

TEST_F(RecoveryTest, DistributedFdDetectsWithQuorum) {
  manager_.reset();
  RecoveryManagerConfig rm_config;
  rm_config.fd.replicas = 3;
  rm_config.fd.quorum_latency_us = 500;
  manager_ = std::make_unique<RecoveryManager>(cluster_.get(), rm_config,
                                               &gate_);
  manager_->Start();
  auto c0 = MakeCoordinator(0);
  cluster_->CrashComputeNode(cluster_->compute_node_id(0));
  EXPECT_TRUE(manager_->WaitForComputeRecovery(cluster_->compute_node_id(0),
                                               2'000'000));
}

TEST_F(RecoveryTest, IdRecyclingReleasesLocksAndReusesIds) {
  auto c0 = MakeCoordinator(0);
  const uint16_t id = c0->coord_id();
  CrashDuringTxn(c0.get(), txn::CrashPoint::kAfterLockFetch, {5}, "x");

  // Force recycling regardless of fill level.
  ASSERT_TRUE(manager_->RecycleIdsIfNeeded(/*threshold=*/0.0).ok());
  EXPECT_FALSE(manager_->fd().failed_ids().Test(id));
  EXPECT_FALSE(cluster_->compute(1)->failed_ids().Test(id));
  // The stray lock was released by the recycling scan.
  ExpectConsistentAndUnlocked(5);
  // The id is reassignable.
  std::vector<uint16_t> ids;
  ASSERT_TRUE(manager_
                  ->RegisterComputeNode(cluster_->compute(1), 1, &ids)
                  .ok());
  EXPECT_EQ(ids[0], id);
}


// ---------------------------------------------------------------------
// Property sweep: for EVERY named crash point, a transaction that dies
// there must leave memory recoverable — after recovery the object set is
// consistent (all replicas agree, no live locks) and equals either the
// pre-transaction or post-transaction state, matching the client ack.
// ---------------------------------------------------------------------

class CrashPointSweep
    : public RecoveryTest,
      public ::testing::WithParamInterface<txn::CrashPoint> {};

TEST_P(CrashPointSweep, MemoryStaysRecoverable) {
  const txn::CrashPoint point = GetParam();
  auto c0 = MakeCoordinator(0);
  CrashAt hook(point);
  c0->set_crash_hook(&hook);

  bool acked_commit = false;
  bool acked_abort = false;
  c0->set_ack_callback([&](uint64_t, bool committed) {
    (committed ? acked_commit : acked_abort) = true;
  });

  ASSERT_TRUE(c0->Begin().ok());
  Status status = c0->Write(table_, 5, Padded("sweep"));
  if (status.ok()) status = c0->Write(table_, 6, Padded("sweep"));
  if (status.ok()) status = c0->Commit();

  if (!status.IsUnavailable()) {
    // This crash point was not reached by this transaction shape (e.g.
    // abort-path points); nothing to recover.
    GTEST_SKIP() << "crash point " << txn::CrashPointName(point)
                 << " not on the commit path";
  }
  ASSERT_TRUE(manager_->WaitForComputeRecovery(
      cluster_->compute_node_id(0), 3'000'000));

  // Survivors must observe one consistent outcome.
  cluster_->compute(1)->failed_ids().CopyFrom(
      manager_->fd().failed_ids());
  const std::string v5 = ReadCommitted(5);
  const std::string v6 = ReadCommitted(6);
  EXPECT_EQ(v5, v6) << "atomicity violated at "
                    << txn::CrashPointName(point);
  EXPECT_TRUE(v5 == Padded("init") || v5 == Padded("sweep"))
      << "unexpected state at " << txn::CrashPointName(point);
  // Cor3: a commit-ack pins the outcome to the new state.
  if (acked_commit) {
    EXPECT_EQ(v5, Padded("sweep"));
  }
  EXPECT_FALSE(acked_abort);

  // Crashes before logging leave stealable stray locks — that is the
  // design (PILL), not a leak. A survivor writing both keys steals them;
  // afterwards everything must be unlocked and replica-consistent.
  auto c1 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 5, Padded("after")).ok());
  ASSERT_TRUE(c1->Write(table_, 6, Padded("after")).ok());
  ASSERT_TRUE(c1->Commit().ok());
  ExpectConsistentAndUnlocked(5);
  ExpectConsistentAndUnlocked(6);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, CrashPointSweep,
    ::testing::Values(
        txn::CrashPoint::kBeforeLock, txn::CrashPoint::kAfterLock,
        txn::CrashPoint::kAfterLockFetch, txn::CrashPoint::kBeforeLogWrite,
        txn::CrashPoint::kAfterLogWrite, txn::CrashPoint::kAfterValidation,
        txn::CrashPoint::kBeforeCommitApply,
        txn::CrashPoint::kMidCommitApply,
        txn::CrashPoint::kAfterCommitApply,
        txn::CrashPoint::kAfterClientAck, txn::CrashPoint::kBeforeUnlock,
        txn::CrashPoint::kMidUnlock),
    [](const ::testing::TestParamInfo<txn::CrashPoint>& info) {
      return txn::CrashPointName(info.param);
    });

// The same sweep for the FORD baseline's per-object logging + scan
// recovery: the fixed baseline is slower but equally recoverable.
class BaselineCrashPointSweep
    : public RecoveryTest,
      public ::testing::WithParamInterface<txn::CrashPoint> {};

TEST_P(BaselineCrashPointSweep, MemoryStaysRecoverable) {
  Rebuild(txn::ProtocolMode::kFordBaseline);
  const txn::CrashPoint point = GetParam();
  auto c0 = MakeCoordinator(0);
  CrashAt hook(point);
  c0->set_crash_hook(&hook);

  ASSERT_TRUE(c0->Begin().ok());
  Status status = c0->Write(table_, 5, Padded("sweep"));
  if (status.ok()) status = c0->Write(table_, 6, Padded("sweep"));
  if (status.ok()) status = c0->Commit();
  if (!status.IsUnavailable()) GTEST_SKIP();
  ASSERT_TRUE(manager_->WaitForComputeRecovery(
      cluster_->compute_node_id(0), 5'000'000));

  const std::string v5 = ReadCommitted(5);
  const std::string v6 = ReadCommitted(6);
  EXPECT_EQ(v5, v6);
  EXPECT_TRUE(v5 == Padded("init") || v5 == Padded("sweep"));
  ExpectConsistentAndUnlocked(5);
  ExpectConsistentAndUnlocked(6);
}

INSTANTIATE_TEST_SUITE_P(
    BaselinePoints, BaselineCrashPointSweep,
    ::testing::Values(txn::CrashPoint::kAfterLockFetch,
                      txn::CrashPoint::kAfterLogWrite,
                      txn::CrashPoint::kMidCommitApply,
                      txn::CrashPoint::kAfterClientAck,
                      txn::CrashPoint::kMidUnlock),
    [](const ::testing::TestParamInfo<txn::CrashPoint>& info) {
      return txn::CrashPointName(info.param);
    });

// --------------------------------------------------------- FD unit tests

TEST_F(RecoveryTest, CoordinatorIdsAreUniqueAcrossNodes) {
  std::set<uint16_t> seen;
  for (int round = 0; round < 10; ++round) {
    for (uint32_t node = 0; node < 2; ++node) {
      std::vector<uint16_t> ids;
      ASSERT_TRUE(manager_
                      ->RegisterComputeNode(cluster_->compute(node), 3,
                                            &ids)
                      .ok());
      for (const uint16_t id : ids) {
        EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      }
    }
  }
  EXPECT_EQ(seen.size(), 60u);
}

TEST_F(RecoveryTest, IdSpaceExhaustionReported) {
  // The fixture's log config caps max_coordinators at 512.
  std::vector<uint16_t> ids;
  Status status;
  for (int i = 0; i < 200; ++i) {
    status = manager_->RegisterComputeNode(cluster_->compute(0), 8, &ids);
    if (!status.ok()) break;
  }
  EXPECT_TRUE(status.IsResourceExhausted());
}

TEST_F(RecoveryTest, LargeWriteSetFragmentsAcrossLogSlots) {
  // The fixture's slot_bytes default fits only a few 16-byte entries per
  // slot when the write-set is large; a 40-object transaction exercises
  // the fragmentation path end to end: crash mid-apply, recover, verify.
  auto c0 = MakeCoordinator(0);
  CrashAt hook(txn::CrashPoint::kMidCommitApply, /*occurrence=*/30);
  c0->set_crash_hook(&hook);
  ASSERT_TRUE(c0->Begin().ok());
  std::vector<store::Key> keys;
  for (store::Key k = 20; k < 60; ++k) {
    ASSERT_TRUE(c0->Write(table_, k, Padded("frag")).ok());
    keys.push_back(k);
  }
  EXPECT_TRUE(c0->Commit().IsUnavailable());
  ASSERT_TRUE(manager_->WaitForComputeRecovery(
      cluster_->compute_node_id(0), 5'000'000));
  const recovery::RecoveryStats stats = manager_->last_recovery_stats();
  EXPECT_EQ(stats.rolled_back, 1u);  // Fragments merged into ONE txn.
  for (const store::Key k : keys) {
    EXPECT_EQ(ReadCommitted(k), Padded("init")) << "key " << k;
    ExpectConsistentAndUnlocked(k);
  }
}


// ------------------------------------------------- Re-replication (§3.2.5)

TEST_F(RecoveryTest, ReplaceMemoryNodeRestoresReplicationDegree) {
  auto c1 = MakeCoordinator(1);
  // Update a spread of keys so the rebuilt node must carry fresh data.
  for (store::Key k = 0; k < 50; ++k) {
    ASSERT_TRUE(c1->Begin().ok());
    ASSERT_TRUE(c1->Write(table_, k, Padded("pre-crash")).ok());
    ASSERT_TRUE(c1->Commit().ok());
  }

  cluster_->CrashMemoryNode(0);
  ASSERT_TRUE(manager_->RecoverMemoryFailure(0).ok());

  // Degraded mode: keep writing; these updates exist on survivors only.
  for (store::Key k = 0; k < 50; ++k) {
    ASSERT_TRUE(c1->Begin().ok());
    ASSERT_TRUE(c1->Write(table_, k, Padded("degraded")).ok());
    ASSERT_TRUE(c1->Commit().ok());
  }

  // Re-replication: node 0 returns as a fresh replica with current data.
  ASSERT_TRUE(manager_->ReplaceMemoryNode(0).ok());
  EXPECT_TRUE(cluster_->membership().IsMemoryAlive(0));

  // Every key is consistent across ALL replicas again, including node 0.
  for (store::Key k = 0; k < 50; ++k) {
    EXPECT_EQ(ReadCommitted(k), Padded("degraded")) << "key " << k;
    ExpectConsistentAndUnlocked(k);
  }

  // Fault tolerance is actually restored: kill a *different* node; data
  // survives through the rebuilt replica.
  cluster_->CrashMemoryNode(1);
  ASSERT_TRUE(manager_->RecoverMemoryFailure(1).ok());
  for (store::Key k = 0; k < 50; ++k) {
    EXPECT_EQ(ReadCommitted(k), Padded("degraded")) << "key " << k;
  }
  // And the system still accepts writes.
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Write(table_, 3, Padded("post-rebuild")).ok());
  ASSERT_TRUE(c1->Commit().ok());
  EXPECT_EQ(ReadCommitted(3), Padded("post-rebuild"));
}

TEST_F(RecoveryTest, RebuildRequiresDeadNode) {
  EXPECT_TRUE(cluster_->RebuildMemoryNode(0).IsInvalidArgument());
}

TEST_F(RecoveryTest, RebuildPreservesInsertedAndDeletedObjects) {
  auto c1 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c1->Insert(table_, 400, Padded("inserted")).ok());
  ASSERT_TRUE(c1->Delete(table_, 10).ok());
  ASSERT_TRUE(c1->Commit().ok());

  cluster_->CrashMemoryNode(0);
  ASSERT_TRUE(manager_->RecoverMemoryFailure(0).ok());
  ASSERT_TRUE(manager_->ReplaceMemoryNode(0).ok());

  EXPECT_EQ(ReadCommitted(400), Padded("inserted"));
  EXPECT_FALSE(KeyVisible(10));  // Tombstone replicated too.
  ExpectConsistentAndUnlocked(400);
}


// §3.2.3: the recovery coordinator itself runs on a standard compute
// server and can die mid-recovery; re-executing the whole procedure from
// scratch must converge to the same correct state.
TEST_F(RecoveryTest, RecoveryCoordinatorCrashMidRecoveryIsIdempotent) {
  manager_->Stop();  // Manual recovery only: no FD racing the test.

  auto c0 = MakeCoordinator(0);
  const uint16_t id = c0->coord_id();
  // Two logged transactions in flight (two txns worth of logs exist:
  // first committed leaving its record, second crashed mid-apply).
  ASSERT_TRUE(c0->Begin().ok());
  ASSERT_TRUE(c0->Write(table_, 30, Padded("first")).ok());
  ASSERT_TRUE(c0->Commit().ok());
  CrashAt hook(txn::CrashPoint::kMidCommitApply);
  c0->set_crash_hook(&hook);
  ASSERT_TRUE(c0->Begin().ok());
  ASSERT_TRUE(c0->Write(table_, 31, Padded("second")).ok());
  ASSERT_TRUE(c0->Write(table_, 32, Padded("second")).ok());
  EXPECT_TRUE(c0->Commit().IsUnavailable());

  // First RC attempt dies after its first recovery step.
  int steps = 0;
  manager_->rc().set_step_fault_hook([&steps] { return ++steps == 2; });
  EXPECT_FALSE(manager_
                   ->RecoverComputeFailure(cluster_->compute_node_id(0),
                                           {id})
                   .ok());

  // A fresh RC re-executes everything; memory converges.
  manager_->rc().set_step_fault_hook(nullptr);
  ASSERT_TRUE(manager_
                  ->RecoverComputeFailure(cluster_->compute_node_id(0),
                                          {id})
                  .ok());
  EXPECT_EQ(ReadCommitted(30), Padded("first"));
  EXPECT_EQ(ReadCommitted(31), Padded("init"));
  EXPECT_EQ(ReadCommitted(32), Padded("init"));
  ExpectConsistentAndUnlocked(30);
  ExpectConsistentAndUnlocked(31);
  ExpectConsistentAndUnlocked(32);
}

}  // namespace
}  // namespace pandora
}  // namespace recovery

#include <gtest/gtest.h>

#include "litmus/checker.h"
#include "litmus/harness.h"
#include "litmus/litmus_spec.h"

namespace pandora {
namespace litmus {
namespace {

// ---------------------------------------------------------------- Checker --

TxnObservation Committed(std::vector<std::optional<uint64_t>> reads = {}) {
  TxnObservation obs;
  obs.outcome = TxnObservation::Outcome::kCommitted;
  obs.reads = std::move(reads);
  return obs;
}

TxnObservation Aborted() {
  TxnObservation obs;
  obs.outcome = TxnObservation::Outcome::kAborted;
  return obs;
}

TxnObservation Unknown() {
  TxnObservation obs;
  obs.outcome = TxnObservation::Outcome::kUnknown;
  return obs;
}

TEST(CheckerTest, Litmus1SerialOutcomesAccepted) {
  const LitmusSpec spec = Litmus1();  // three writers of {X, Y}
  SerializabilityChecker checker(spec);
  std::string why;
  // T1 then T2 then T3: X=Y=3.
  EXPECT_TRUE(checker.Check({Committed(), Committed(), Committed()},
                            {3, 3}, &why))
      << why;
  // Only T2 committed.
  EXPECT_TRUE(checker.Check({Aborted(), Committed(), Aborted()}, {2, 2},
                            &why))
      << why;
  // Nothing committed: initial state.
  EXPECT_TRUE(checker.Check({Aborted(), Aborted(), Aborted()}, {0, 0},
                            &why))
      << why;
}

TEST(CheckerTest, Litmus1MixedStateRejected) {
  const LitmusSpec spec = Litmus1();
  SerializabilityChecker checker(spec);
  std::string why;
  EXPECT_FALSE(checker.Check({Committed(), Committed(), Aborted()},
                             {1, 2}, &why));
  EXPECT_FALSE(why.empty());
  // Aborted txn's effects must not appear.
  EXPECT_FALSE(checker.Check({Committed(), Aborted(), Aborted()}, {2, 2},
                             nullptr));
}

TEST(CheckerTest, UnknownTxnMayOrMayNotApply) {
  const LitmusSpec spec = Litmus1();
  SerializabilityChecker checker(spec);
  // T1 crashed: both "applied fully" and "rolled back" final states are
  // acceptable — but a half-applied state is not.
  EXPECT_TRUE(checker.Check({Unknown(), Aborted(), Aborted()}, {1, 1},
                            nullptr));
  EXPECT_TRUE(checker.Check({Unknown(), Aborted(), Aborted()}, {0, 0},
                            nullptr));
  EXPECT_FALSE(checker.Check({Unknown(), Aborted(), Aborted()}, {1, 0},
                             nullptr));
}

TEST(CheckerTest, Litmus2CycleRejected) {
  const LitmusSpec spec = Litmus2();
  SerializabilityChecker checker(spec);
  std::string why;
  // Serial: T1 (reads X=0, writes Y=1) then T2 (reads Y=1, writes X=2).
  EXPECT_TRUE(checker.Check({Committed({0}), Committed({1})}, {2, 1},
                            &why))
      << why;
  // The both-read-zero cycle: X=1, Y=1 — not serializable.
  EXPECT_FALSE(checker.Check({Committed({0}), Committed({0})}, {1, 1},
                             nullptr));
}

TEST(CheckerTest, ObservedReadsConstrainOrder) {
  const LitmusSpec spec = Litmus2();
  SerializabilityChecker checker(spec);
  // Final state {X=2, Y=1} fits T1->T2 but only if T2 read Y=1. If T2
  // claims it read Y=0 the run is not serializable.
  EXPECT_FALSE(checker.Check({Committed({0}), Committed({0})}, {2, 1},
                             nullptr));
}

TEST(CheckerTest, Litmus3ObserversChecked) {
  const LitmusSpec spec = Litmus3();
  SerializabilityChecker checker(spec);
  std::string why;
  // T1, T2 increment X and write Y/Z; T3 observes (X=1, Y=1) between
  // them; T4 observes the final (X=2, Z=2)... which only fits the order
  // T1, T3, T2, T4.
  EXPECT_TRUE(checker.Check({Committed({0}), Committed({1}),
                             Committed({1, 1}), Committed({2, 2})},
                            {2, 1, 2}, &why))
      << why;
  // An observer seeing Y > X contradicts every order.
  EXPECT_FALSE(checker.Check({Committed({0}), Committed({1}),
                              Committed({0, 1}), Committed({2, 2})},
                             {2, 1, 2}, nullptr));
}

TEST(CheckerTest, InsertsAndDeletesModelAbsence) {
  const LitmusSpec spec = Litmus1Deletes();
  SerializabilityChecker checker(spec);
  std::string why;
  // T2 (delete) after T1 (write): both absent.
  EXPECT_TRUE(checker.Check({Committed(), Committed()},
                            {std::nullopt, std::nullopt}, &why))
      << why;
  // T1 after T2: X=Y=1.
  EXPECT_TRUE(checker.Check({Committed(), Committed()}, {1, 1}, &why))
      << why;
  // Half-deleted state rejected.
  EXPECT_FALSE(checker.Check({Committed(), Committed()},
                             {std::nullopt, 1}, nullptr));
}

TEST(CheckerTest, FormatVarState) {
  EXPECT_EQ(FormatVarState({1, std::nullopt, 3}), "{X=1, Y=absent, Z=3}");
}

// ---------------------------------------------------------------- Harness --

HarnessConfig FastConfig() {
  HarnessConfig config;
  config.iterations = 40;
  config.crash_percent = 60;
  // A little simulated fabric latency stretches each transaction to
  // realistic tens of microseconds so concurrent programs genuinely
  // overlap.
  config.net.one_way_ns = 1500;
  config.net.per_byte_ns = 0;
  // Generous FD timing: with 2 physical cores and dozens of simulation
  // threads, heartbeat pumps can starve for several milliseconds, and
  // tight timeouts flood the run with false positives. (False positives
  // remain *safe* — FalsePositiveCannotCorruptMemory covers that — they
  // are just noise here.)
  config.fd.timeout_us = 30'000;
  config.fd.heartbeat_period_us = 2000;
  config.fd.poll_period_us = 2000;
  return config;
}

// Pandora must pass every litmus test under randomized crash injection.
class PandoraLitmusSweep : public ::testing::TestWithParam<int> {};

TEST_P(PandoraLitmusSweep, NoViolations) {
  const std::vector<LitmusSpec> specs = AllLitmusSpecs();
  const LitmusSpec& spec = specs[GetParam()];
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.seed = 1000 + GetParam();
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(spec);
  EXPECT_EQ(report.violations, 0)
      << spec.name << ": " <<
      (report.failures.empty() ? "" : report.failures[0]);
  EXPECT_EQ(report.iterations, config.iterations);
  EXPECT_GT(report.committed, 0);
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, PandoraLitmusSweep,
                         ::testing::Range(0, 9));

// The fixed FORD Baseline (with Pandora's recovery + scan) must also pass.
TEST(LitmusHarnessTest, FixedBaselinePassesCoreSpecs) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kFordBaseline;
  config.iterations = 25;
  LitmusHarness harness(config);
  for (const auto& spec :
       {Litmus1(), Litmus2(), Litmus3AbortLogging()}) {
    const LitmusReport report = harness.Run(spec);
    EXPECT_EQ(report.violations, 0)
        << spec.name << ": "
        << (report.failures.empty() ? "" : report.failures[0]);
  }
}

TEST(LitmusHarnessTest, TraditionalLoggingPassesCoreSpecs) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kTraditionalLogging;
  config.iterations = 25;
  LitmusHarness harness(config);
  for (const auto& spec : {Litmus1(), Litmus2()}) {
    const LitmusReport report = harness.Run(spec);
    EXPECT_EQ(report.violations, 0)
        << spec.name << ": "
        << (report.failures.empty() ? "" : report.failures[0]);
  }
}


// Randomized compound litmus fuzzing: Pandora must stay serializable on
// machine-generated transaction mixes too, crashes included.
class LitmusFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LitmusFuzz, PandoraSerializable) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.iterations = 20;
  config.seed = 5000 + GetParam();
  LitmusHarness harness(config);
  const LitmusSpec spec = RandomLitmusSpec(GetParam());
  const LitmusReport report = harness.Run(spec);
  EXPECT_EQ(report.violations, 0)
      << spec.name << ": "
      << (report.failures.empty() ? "" : report.failures[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LitmusFuzz,
                         ::testing::Range<uint64_t>(1, 11));

TEST(LitmusFuzzSpec, GeneratorIsDeterministicAndWellFormed) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const LitmusSpec a = RandomLitmusSpec(seed);
    const LitmusSpec b = RandomLitmusSpec(seed);
    ASSERT_EQ(a.txns.size(), b.txns.size());
    ASSERT_GE(a.txns.size(), 2u);
    ASSERT_LE(a.txns.size(), 4u);
    ASSERT_GE(a.initial.size(), 2u);
    for (size_t t = 0; t < a.txns.size(); ++t) {
      ASSERT_EQ(a.txns[t].ops.size(), b.txns[t].ops.size());
      ASSERT_GE(a.txns[t].ops.size(), 2u);
      for (size_t o = 0; o < a.txns[t].ops.size(); ++o) {
        EXPECT_EQ(static_cast<int>(a.txns[t].ops[o].kind),
                  static_cast<int>(b.txns[t].ops[o].kind));
        EXPECT_LT(a.txns[t].ops[o].dst, a.initial.size());
      }
    }
  }
}

// --- Bug reproduction: each Table-1 bug must be *caught* by the framework.
//
// Bug manifestation is probabilistic (it needs a racy interleaving, and
// sometimes a crash at one specific protocol point), so each check runs
// batches of iterations with fresh seeds until the framework reports a
// violation, up to a generous cap. A bug the framework cannot catch at all
// still fails deterministically.

void ExpectBugCaught(txn::ProtocolMode mode, txn::BugFlags bugs,
                     const LitmusSpec& spec, uint32_t crash_percent,
                     uint64_t base_seed, const char* bug_name) {
  constexpr int kBatches = 12;
  constexpr int kIterationsPerBatch = 120;
  for (int batch = 0; batch < kBatches; ++batch) {
    HarnessConfig config = FastConfig();
    config.txn.mode = mode;
    config.txn.bugs = bugs;
    config.iterations = kIterationsPerBatch;
    config.crash_percent = crash_percent;
    config.seed = base_seed + static_cast<uint64_t>(batch) * 101;
    LitmusHarness harness(config);
    const LitmusReport report = harness.Run(spec);
    if (report.violations > 0) return;  // Caught.
  }
  FAIL() << "litmus framework failed to catch " << bug_name << " after "
         << kBatches * kIterationsPerBatch << " iterations";
}

TEST(LitmusBugHunt, ComplicitAbortCaught) {
  txn::BugFlags bugs;
  bugs.complicit_abort = true;
  ExpectBugCaught(txn::ProtocolMode::kPandora, bugs, Litmus1LockRelease(),
                  /*crash_percent=*/0, /*seed=*/7, "Complicit Aborts");
}

TEST(LitmusBugHunt, CovertLocksCaught) {
  txn::BugFlags bugs;
  bugs.covert_locks = true;
  ExpectBugCaught(txn::ProtocolMode::kPandora, bugs, Litmus2(),
                  /*crash_percent=*/0, /*seed=*/11, "Covert Locks");
}

TEST(LitmusBugHunt, RelaxedLocksCaught) {
  txn::BugFlags bugs;
  bugs.relaxed_locks = true;
  ExpectBugCaught(txn::ProtocolMode::kPandora, bugs, Litmus2(),
                  /*crash_percent=*/0, /*seed=*/13, "Relaxed Locks");
}

TEST(LitmusBugHunt, MissingInsertLoggingCaught) {
  txn::BugFlags bugs;
  bugs.missing_insert_logging = true;
  ExpectBugCaught(txn::ProtocolMode::kFordBaseline, bugs, Litmus1Inserts(),
                  /*crash_percent=*/100, /*seed=*/17, "Missing Actions");
}

TEST(LitmusBugHunt, LostDecisionCaught) {
  txn::BugFlags bugs;
  bugs.lost_decision = true;
  ExpectBugCaught(txn::ProtocolMode::kFordBaseline, bugs,
                  Litmus3AbortLogging(), /*crash_percent=*/100,
                  /*seed=*/19, "Lost Decision");
}

TEST(LitmusBugHunt, LoggingWithoutLockingCaught) {
  txn::BugFlags bugs;
  bugs.logging_without_locking = true;
  bugs.lost_decision = true;  // The FORD corner case combines both.
  ExpectBugCaught(txn::ProtocolMode::kFordBaseline, bugs,
                  Litmus1PartialOverlap(), /*crash_percent=*/100,
                  /*seed=*/23, "Logging-without-locking");
}

}  // namespace
}  // namespace litmus
}  // namespace pandora

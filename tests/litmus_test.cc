#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "common/fiber.h"
#include "litmus/checker.h"
#include "litmus/harness.h"
#include "litmus/litmus_spec.h"
#include "litmus/schedule.h"
#include "txn/crash_hook.h"

namespace pandora {
namespace litmus {
namespace {

// ---------------------------------------------------------------- Checker --

TxnObservation Committed(std::vector<std::optional<uint64_t>> reads = {}) {
  TxnObservation obs;
  obs.outcome = TxnObservation::Outcome::kCommitted;
  obs.reads = std::move(reads);
  return obs;
}

TxnObservation Aborted() {
  TxnObservation obs;
  obs.outcome = TxnObservation::Outcome::kAborted;
  return obs;
}

TxnObservation Unknown() {
  TxnObservation obs;
  obs.outcome = TxnObservation::Outcome::kUnknown;
  return obs;
}

TEST(CheckerTest, Litmus1SerialOutcomesAccepted) {
  const LitmusSpec spec = Litmus1();  // three writers of {X, Y}
  SerializabilityChecker checker(spec);
  std::string why;
  // T1 then T2 then T3: X=Y=3.
  EXPECT_TRUE(checker.Check({Committed(), Committed(), Committed()},
                            {3, 3}, &why))
      << why;
  // Only T2 committed.
  EXPECT_TRUE(checker.Check({Aborted(), Committed(), Aborted()}, {2, 2},
                            &why))
      << why;
  // Nothing committed: initial state.
  EXPECT_TRUE(checker.Check({Aborted(), Aborted(), Aborted()}, {0, 0},
                            &why))
      << why;
}

TEST(CheckerTest, Litmus1MixedStateRejected) {
  const LitmusSpec spec = Litmus1();
  SerializabilityChecker checker(spec);
  std::string why;
  EXPECT_FALSE(checker.Check({Committed(), Committed(), Aborted()},
                             {1, 2}, &why));
  EXPECT_FALSE(why.empty());
  // Aborted txn's effects must not appear.
  EXPECT_FALSE(checker.Check({Committed(), Aborted(), Aborted()}, {2, 2},
                             nullptr));
}

TEST(CheckerTest, UnknownTxnMayOrMayNotApply) {
  const LitmusSpec spec = Litmus1();
  SerializabilityChecker checker(spec);
  // T1 crashed: both "applied fully" and "rolled back" final states are
  // acceptable — but a half-applied state is not.
  EXPECT_TRUE(checker.Check({Unknown(), Aborted(), Aborted()}, {1, 1},
                            nullptr));
  EXPECT_TRUE(checker.Check({Unknown(), Aborted(), Aborted()}, {0, 0},
                            nullptr));
  EXPECT_FALSE(checker.Check({Unknown(), Aborted(), Aborted()}, {1, 0},
                             nullptr));
}

TEST(CheckerTest, Litmus2CycleRejected) {
  const LitmusSpec spec = Litmus2();
  SerializabilityChecker checker(spec);
  std::string why;
  // Serial: T1 (reads X=0, writes Y=1) then T2 (reads Y=1, writes X=2).
  EXPECT_TRUE(checker.Check({Committed({0}), Committed({1})}, {2, 1},
                            &why))
      << why;
  // The both-read-zero cycle: X=1, Y=1 — not serializable.
  EXPECT_FALSE(checker.Check({Committed({0}), Committed({0})}, {1, 1},
                             nullptr));
}

TEST(CheckerTest, ObservedReadsConstrainOrder) {
  const LitmusSpec spec = Litmus2();
  SerializabilityChecker checker(spec);
  // Final state {X=2, Y=1} fits T1->T2 but only if T2 read Y=1. If T2
  // claims it read Y=0 the run is not serializable.
  EXPECT_FALSE(checker.Check({Committed({0}), Committed({0})}, {2, 1},
                             nullptr));
}

TEST(CheckerTest, Litmus3ObserversChecked) {
  const LitmusSpec spec = Litmus3();
  SerializabilityChecker checker(spec);
  std::string why;
  // T1, T2 increment X and write Y/Z; T3 observes (X=1, Y=1) between
  // them; T4 observes the final (X=2, Z=2)... which only fits the order
  // T1, T3, T2, T4.
  EXPECT_TRUE(checker.Check({Committed({0}), Committed({1}),
                             Committed({1, 1}), Committed({2, 2})},
                            {2, 1, 2}, &why))
      << why;
  // An observer seeing Y > X contradicts every order.
  EXPECT_FALSE(checker.Check({Committed({0}), Committed({1}),
                              Committed({0, 1}), Committed({2, 2})},
                             {2, 1, 2}, nullptr));
}

TEST(CheckerTest, InsertsAndDeletesModelAbsence) {
  const LitmusSpec spec = Litmus1Deletes();
  SerializabilityChecker checker(spec);
  std::string why;
  // T2 (delete) after T1 (write): both absent.
  EXPECT_TRUE(checker.Check({Committed(), Committed()},
                            {std::nullopt, std::nullopt}, &why))
      << why;
  // T1 after T2: X=Y=1.
  EXPECT_TRUE(checker.Check({Committed(), Committed()}, {1, 1}, &why))
      << why;
  // Half-deleted state rejected.
  EXPECT_FALSE(checker.Check({Committed(), Committed()},
                             {std::nullopt, 1}, nullptr));
}

TEST(CheckerTest, FormatVarState) {
  EXPECT_EQ(FormatVarState({1, std::nullopt, 3}), "{X=1, Y=absent, Z=3}");
}

// ---------------------------------------------------------------- Harness --

HarnessConfig FastConfig() {
  HarnessConfig config;
  config.iterations = 40;
  config.crash_percent = 60;
  // A little simulated fabric latency stretches each transaction to
  // realistic tens of microseconds so concurrent programs genuinely
  // overlap.
  config.net.one_way_ns = 1500;
  config.net.per_byte_ns = 0;
  // Generous FD timing: with 2 physical cores and dozens of simulation
  // threads, heartbeat pumps can starve for several milliseconds, and
  // tight timeouts flood the run with false positives. (False positives
  // remain *safe* — FalsePositiveCannotCorruptMemory covers that — they
  // are just noise here.)
  config.fd.timeout_us = 30'000;
  config.fd.heartbeat_period_us = 2000;
  config.fd.poll_period_us = 2000;
  return config;
}

// CI sets PANDORA_SEQUENTIAL_VERBS=1 to re-run the litmus suite with every
// verb group issued sequentially instead of doorbell-batched.
bool SequentialVerbsFromEnv() {
  const char* env = std::getenv("PANDORA_SEQUENTIAL_VERBS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// When PANDORA_TRACE_DIR is set (CI does), write a report's minimized
// reproducers and replayable traces there so the workflow can upload them
// as artifacts on failure.
void DumpReproducerTraces(const LitmusReport& report,
                          const std::string& label) {
  const char* dir = std::getenv("PANDORA_TRACE_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  if (report.failures.empty() && report.violation_traces.empty() &&
      report.harness_error.empty()) {
    return;
  }
  std::ofstream out(std::string(dir) + "/" + label + ".trace",
                    std::ios::app);
  out << "spec: " << report.spec_name << "\n";
  if (!report.harness_error.empty()) {
    out << "harness_error: " << report.harness_error << "\n";
  }
  for (const std::string& failure : report.failures) {
    out << "failure: " << failure << "\n";
  }
  for (size_t i = 0; i < report.violation_traces.size(); ++i) {
    out << "trace: " << report.violation_traces[i] << "\n";
    if (i < report.violation_explanations.size()) {
      out << "  explanation: " << report.violation_explanations[i] << "\n";
    }
  }
  out << "\n";
}

// Pandora must pass every litmus test under randomized crash injection.
class PandoraLitmusSweep : public ::testing::TestWithParam<int> {};

TEST_P(PandoraLitmusSweep, NoViolations) {
  const std::vector<LitmusSpec> specs = AllLitmusSpecs();
  const LitmusSpec& spec = specs[GetParam()];
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.txn.sequential_verbs = SequentialVerbsFromEnv();
  config.seed = 1000 + GetParam();
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(spec);
  if (report.violations > 0) {
    DumpReproducerTraces(report, "sweep-" + spec.name);
  }
  EXPECT_EQ(report.violations, 0)
      << spec.name << ": " <<
      (report.failures.empty() ? "" : report.failures[0]);
  EXPECT_EQ(report.iterations, config.iterations);
  EXPECT_GT(report.committed, 0);
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, PandoraLitmusSweep,
                         ::testing::Range(0, 10));

// The fixed FORD Baseline (with Pandora's recovery + scan) must also pass.
TEST(LitmusHarnessTest, FixedBaselinePassesCoreSpecs) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kFordBaseline;
  config.iterations = 25;
  LitmusHarness harness(config);
  for (const auto& spec :
       {Litmus1(), Litmus2(), Litmus3AbortLogging()}) {
    const LitmusReport report = harness.Run(spec);
    EXPECT_EQ(report.violations, 0)
        << spec.name << ": "
        << (report.failures.empty() ? "" : report.failures[0]);
  }
}

TEST(LitmusHarnessTest, TraditionalLoggingPassesCoreSpecs) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kTraditionalLogging;
  config.iterations = 25;
  LitmusHarness harness(config);
  for (const auto& spec : {Litmus1(), Litmus2()}) {
    const LitmusReport report = harness.Run(spec);
    EXPECT_EQ(report.violations, 0)
        << spec.name << ": "
        << (report.failures.empty() ? "" : report.failures[0]);
  }
}


// Randomized compound litmus fuzzing: Pandora must stay serializable on
// machine-generated transaction mixes too, crashes included.
class LitmusFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LitmusFuzz, PandoraSerializable) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.iterations = 20;
  config.seed = 5000 + GetParam();
  LitmusHarness harness(config);
  const LitmusSpec spec = RandomLitmusSpec(GetParam());
  const LitmusReport report = harness.Run(spec);
  EXPECT_EQ(report.violations, 0)
      << spec.name << ": "
      << (report.failures.empty() ? "" : report.failures[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LitmusFuzz,
                         ::testing::Range<uint64_t>(1, 11));

TEST(LitmusFuzzSpec, GeneratorIsDeterministicAndWellFormed) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const LitmusSpec a = RandomLitmusSpec(seed);
    const LitmusSpec b = RandomLitmusSpec(seed);
    ASSERT_EQ(a.txns.size(), b.txns.size());
    ASSERT_GE(a.txns.size(), 2u);
    ASSERT_LE(a.txns.size(), 4u);
    ASSERT_GE(a.initial.size(), 2u);
    for (size_t t = 0; t < a.txns.size(); ++t) {
      ASSERT_EQ(a.txns[t].ops.size(), b.txns[t].ops.size());
      ASSERT_GE(a.txns[t].ops.size(), 2u);
      for (size_t o = 0; o < a.txns[t].ops.size(); ++o) {
        EXPECT_EQ(static_cast<int>(a.txns[t].ops[o].kind),
                  static_cast<int>(b.txns[t].ops[o].kind));
        EXPECT_LT(a.txns[t].ops[o].dst, a.initial.size());
      }
    }
  }
}

// --- Bug reproduction: each Table-1 bug must be *caught* by the framework.
//
// All six bugs are caught *deterministically* — no randomized sampler
// anywhere in the suite. Four need only the crash-point machinery: the
// exhaustive scheduler's lockstep profiling iteration forces the
// maximally-racy interleaving (covert/relaxed locks need no crash at
// all), and its enumeration then crashes every reachable (slot, run,
// point, occurrence) tuple in turn (lost-decision and
// logging-without-locking each have one specific guilty point).
//
// ComplicitAbort and MissingInsertLogging manifest through intra-phase
// races the per-crash-point rendezvous cannot order; they use
// kVerbExhaustive, which additionally enforces candidate apply orders of
// the contested one-sided verbs through the fabric's verb-schedule hook
// (bounded DPOR over the racing window, plus verb-level kills). Every
// catch is then re-proved by parsing its serialized trace and replaying
// it — one iteration, milliseconds — with an identical outcome.
//
// The whole suite runs twice — execution-phase pipelining on and off —
// because the bugs must be caught under either verb-issue discipline.
//
// Note on execution-phase pipelining: it was NOT what hid these bugs.
// The harness installs a crash hook on every litmus coordinator, and a
// hook disables doorbell batching/pipelining entirely (crash points must
// interleave per verb), so the litmus runs that missed the four bugs
// were already on the sequential paths. The misses were pure schedule
// starvation: random sampling almost never hits the one (point,
// occurrence) a bug needs, which is what the exhaustive policies fix.

// The pipelining matrix: every hunt runs with execution-phase doorbell
// pipelining on and off.
class LitmusBugHunt : public ::testing::TestWithParam<bool> {
 protected:
  static bool pipeline() { return GetParam(); }
};

// Deterministic hunt: the given schedule policy must find the bug, must
// prove the bug flags actually fired (no injection no-ops), and every
// catch must reproduce from its serialized trace — parsed back and
// replayed as a single iteration — with a violation.
void ExpectBugCaught(SchedulePolicy policy, txn::ProtocolMode mode,
                     txn::BugFlags bugs, const LitmusSpec& spec,
                     int runs_per_txn, bool pipeline,
                     const char* bug_name) {
  HarnessConfig config = FastConfig();
  config.txn.mode = mode;
  config.txn.bugs = bugs;
  config.txn.pipeline_execution = pipeline;
  config.txn.sequential_verbs = SequentialVerbsFromEnv();
  config.schedule = policy;
  config.iterations = 120;
  config.runs_per_txn = runs_per_txn;
  config.stop_after_violations = 1;
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(spec);
  EXPECT_TRUE(report.harness_error.empty()) << report.harness_error;
  EXPECT_GT(report.bug_injections, 0u)
      << bug_name << ": bug flags never deviated from the fixed protocol";
  ASSERT_GT(report.violations, 0)
      << "deterministic scheduler failed to catch " << bug_name << " in "
      << report.iterations << " iterations ("
      << report.schedules_planned << " schedules planned)";
  EXPECT_FALSE(report.failures.empty());
  DumpReproducerTraces(report, std::string("bughunt-") + bug_name);

  // Replay-from-trace: the recorded schedule alone must reproduce.
  ASSERT_FALSE(report.violation_traces.empty());
  CrashSchedule schedule;
  ASSERT_TRUE(CrashSchedule::Parse(report.violation_traces[0], &schedule))
      << report.violation_traces[0];
  HarnessConfig replay_config = config;
  replay_config.schedule = SchedulePolicy::kReplay;
  replay_config.replay = schedule;
  LitmusHarness replayer(replay_config);
  const LitmusReport replay = replayer.Run(spec);
  EXPECT_EQ(replay.violations, 1)
      << bug_name << ": trace did not replay: "
      << report.violation_traces[0];
  ASSERT_FALSE(replay.violation_traces.empty());
  EXPECT_EQ(replay.violation_traces[0], report.violation_traces[0]);
}

void ExpectBugCaughtExhaustive(txn::ProtocolMode mode, txn::BugFlags bugs,
                               const LitmusSpec& spec, int runs_per_txn,
                               bool pipeline, const char* bug_name) {
  ExpectBugCaught(SchedulePolicy::kExhaustive, mode, bugs, spec,
                  runs_per_txn, pipeline, bug_name);
}

TEST_P(LitmusBugHunt, ComplicitAbortCaught) {
  txn::BugFlags bugs;
  bugs.complicit_abort = true;
  // The guilty schedule is an intra-phase race: a buggy abort-path
  // release frees a lock a live transaction holds, a third transaction
  // acquires it, and the two holders' per-replica applies land in
  // opposite orders. No crash point separates those verbs — only the
  // verb-order exploration reaches it (it shows up as replica
  // divergence in the memory audit).
  ExpectBugCaught(SchedulePolicy::kVerbExhaustive,
                  txn::ProtocolMode::kPandora, bugs, Litmus1LockRelease(),
                  /*runs_per_txn=*/3, pipeline(), "Complicit Aborts");
}

TEST_P(LitmusBugHunt, CovertLocksCaught) {
  txn::BugFlags bugs;
  bugs.covert_locks = true;
  ExpectBugCaughtExhaustive(txn::ProtocolMode::kPandora, bugs, Litmus2(),
                            /*runs_per_txn=*/2, pipeline(),
                            "Covert Locks");
}

TEST_P(LitmusBugHunt, RelaxedLocksCaught) {
  txn::BugFlags bugs;
  bugs.relaxed_locks = true;
  ExpectBugCaughtExhaustive(txn::ProtocolMode::kPandora, bugs, Litmus2(),
                            /*runs_per_txn=*/2, pipeline(),
                            "Relaxed Locks");
}

TEST_P(LitmusBugHunt, MissingInsertLoggingCaught) {
  txn::BugFlags bugs;
  bugs.missing_insert_logging = true;
  // The guilty window (insert applied to memory, never logged, then the
  // coordinator dies before commit finishes) needs a single-run program:
  // a second run re-inserts and masks the loss. kVerbExhaustive tries run
  // count 1 automatically, and its crash-point phase lands the catch at a
  // deterministic MidCommitApply crash — no randomized timing needed.
  ExpectBugCaught(SchedulePolicy::kVerbExhaustive,
                  txn::ProtocolMode::kFordBaseline, bugs, Litmus1Inserts(),
                  /*runs_per_txn=*/2, pipeline(), "Missing Actions");
}

TEST_P(LitmusBugHunt, LostDecisionCaught) {
  txn::BugFlags bugs;
  bugs.lost_decision = true;
  ExpectBugCaughtExhaustive(txn::ProtocolMode::kFordBaseline, bugs,
                            Litmus3AbortLogging(), /*runs_per_txn=*/2,
                            pipeline(), "Lost Decision");
}

TEST_P(LitmusBugHunt, LoggingWithoutLockingCaught) {
  txn::BugFlags bugs;
  bugs.logging_without_locking = true;
  bugs.lost_decision = true;  // The FORD corner case combines both.
  // The guilty crash window (log written, lock not yet taken) closes once
  // the same coordinator runs a second program, so the catch needs a
  // single run per slot. kVerbExhaustive explores run count 1 alongside
  // the configured count automatically — no manual runs_per_txn knob.
  ExpectBugCaught(SchedulePolicy::kVerbExhaustive,
                  txn::ProtocolMode::kFordBaseline, bugs,
                  Litmus1PartialOverlap(), /*runs_per_txn=*/2, pipeline(),
                  "Logging-without-locking");
}

INSTANTIATE_TEST_SUITE_P(PipelineOnOff, LitmusBugHunt, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Pipelined"
                                             : "Unpipelined";
                         });

// ------------------------------------------------- Schedule exploration --

TEST(LitmusScheduleTest, TraceRoundTrips) {
  CrashSchedule schedule;
  schedule.sync = SyncMode::kLockstep;
  CrashDirective crash;
  crash.slot = 1;
  crash.run = 0;
  crash.point = txn::CrashPoint::kAfterAbort;
  crash.occurrence = 2;
  schedule.crashes.push_back(crash);
  schedule.rc_fault = true;
  schedule.kill_memory_node = 2;

  const std::string text = schedule.ToString();
  CrashSchedule parsed;
  ASSERT_TRUE(CrashSchedule::Parse(text, &parsed)) << text;
  EXPECT_EQ(parsed.ToString(), text);
  EXPECT_EQ(parsed.sync, SyncMode::kLockstep);
  ASSERT_EQ(parsed.crashes.size(), 1u);
  EXPECT_EQ(parsed.crashes[0].slot, 1);
  EXPECT_EQ(parsed.crashes[0].run, 0);
  EXPECT_EQ(parsed.crashes[0].point, txn::CrashPoint::kAfterAbort);
  EXPECT_EQ(parsed.crashes[0].occurrence, 2);
  EXPECT_TRUE(parsed.rc_fault);
  EXPECT_EQ(parsed.kill_memory_node, 2);

  CrashSchedule bad;
  EXPECT_FALSE(CrashSchedule::Parse("crash=0:0:NoSuchPoint:1", &bad));
  EXPECT_FALSE(CrashSchedule::Parse("sync=sideways", &bad));
}

TEST(LitmusScheduleTest, VerbTraceRoundTrips) {
  CrashSchedule schedule;
  schedule.sync = SyncMode::kFree;
  schedule.runs = 1;
  schedule.verb_order = {{0, 0, 0, 0}, {1, 0, 0, 0}, {0, 0, 1, 1}};
  schedule.has_verb_kill = true;
  schedule.verb_kill = {2, 0, 0, 1};

  const std::string text = schedule.ToString();
  EXPECT_EQ(text,
            "sync=free runs=1 vorder=0.0.0.0,1.0.0.0,0.0.1.1 "
            "vkill=2.0.0.1");
  CrashSchedule parsed;
  ASSERT_TRUE(CrashSchedule::Parse(text, &parsed)) << text;
  EXPECT_EQ(parsed.ToString(), text);
  EXPECT_EQ(parsed.runs, 1);
  ASSERT_EQ(parsed.verb_order.size(), 3u);
  EXPECT_TRUE(parsed.verb_order[1] == (VerbToken{1, 0, 0, 0}));
  ASSERT_TRUE(parsed.has_verb_kill);
  EXPECT_TRUE(parsed.verb_kill == (VerbToken{2, 0, 0, 1}));

  // The transient recording flag never serializes.
  CrashSchedule recording;
  recording.record_verbs = true;
  EXPECT_FALSE(recording.empty());
  EXPECT_EQ(recording.ToString(), "sync=free");

  CrashSchedule bad;
  EXPECT_FALSE(CrashSchedule::Parse("runs=0", &bad));
  EXPECT_FALSE(CrashSchedule::Parse("vorder=", &bad));
  EXPECT_FALSE(CrashSchedule::Parse("vorder=0.0.0", &bad));
  EXPECT_FALSE(CrashSchedule::Parse("vkill=1.2.x.4", &bad));
}

// kVerbExhaustive's verb phase must actually explore: a contested window
// is discovered, candidate orders are enforced, equivalent candidates are
// pruned, and run counts beyond the configured one are tried
// automatically. ComplicitAbort is the spec whose catch *requires* the
// verb phase (no crash-point schedule finds it), so its report proves all
// of that end to end: the violating trace is a verb order at run count 1
// even though the config asks for 3 runs.
TEST(LitmusScheduleTest, VerbExhaustiveExploresAndReportsCoverage) {
  txn::BugFlags bugs;
  bugs.complicit_abort = true;
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.txn.bugs = bugs;
  config.txn.sequential_verbs = SequentialVerbsFromEnv();
  config.schedule = SchedulePolicy::kVerbExhaustive;
  config.iterations = 120;
  config.runs_per_txn = 3;
  config.stop_after_violations = 1;
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(Litmus1LockRelease());
  EXPECT_TRUE(report.harness_error.empty()) << report.harness_error;
  ASSERT_GT(report.violations, 0);
  EXPECT_GT(report.verb_window, 0);
  EXPECT_GT(report.verb_orders_explored, 0);
  ASSERT_FALSE(report.violation_traces.empty());
  EXPECT_NE(report.violation_traces[0].find("vorder="), std::string::npos)
      << report.violation_traces[0];
  // The catch happened at an automatically-explored run count, and the
  // trace records it so replay repeats the program the same number of
  // times.
  CrashSchedule parsed;
  ASSERT_TRUE(CrashSchedule::Parse(report.violation_traces[0], &parsed));
  EXPECT_GT(parsed.runs, 0);
}

// A recorded violating schedule must replay to the *same* violation:
// identical executed trace, identical checker explanation.
TEST(LitmusScheduleTest, ViolatingScheduleReplaysIdentically) {
  txn::BugFlags bugs;
  bugs.lost_decision = true;
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kFordBaseline;
  config.txn.bugs = bugs;
  config.schedule = SchedulePolicy::kExhaustive;
  config.iterations = 120;
  config.stop_after_violations = 1;
  LitmusHarness harness(config);
  const LitmusReport first = harness.Run(Litmus3AbortLogging());
  ASSERT_GT(first.violations, 0);
  ASSERT_FALSE(first.violation_traces.empty());
  ASSERT_FALSE(first.violation_explanations.empty());

  CrashSchedule schedule;
  ASSERT_TRUE(CrashSchedule::Parse(first.violation_traces[0], &schedule))
      << first.violation_traces[0];

  HarnessConfig replay_config = config;
  replay_config.schedule = SchedulePolicy::kReplay;
  replay_config.replay = schedule;
  LitmusHarness replayer(replay_config);
  const LitmusReport replay = replayer.Run(Litmus3AbortLogging());
  ASSERT_EQ(replay.violations, 1);
  ASSERT_FALSE(replay.violation_traces.empty());
  EXPECT_EQ(replay.violation_traces[0], first.violation_traces[0]);
  EXPECT_EQ(replay.violation_explanations[0],
            first.violation_explanations[0]);
  EXPECT_EQ(replay.schedule_noops, 0);
}

// The fiber scheduler must be inert for the litmus framework: a hunt run
// from inside an active FiberScheduler (the wait hook armed on the
// calling thread) must produce byte-identical violation traces and
// explanations to a plain run. The harness's slot threads never install a
// scheduler, and the thread-local hook must not leak across threads.
TEST(LitmusScheduleTest, TracesByteIdenticalUnderActiveFiberScheduler) {
  txn::BugFlags bugs;
  bugs.lost_decision = true;
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kFordBaseline;
  config.txn.bugs = bugs;
  config.schedule = SchedulePolicy::kExhaustive;
  config.iterations = 120;
  config.stop_after_violations = 1;

  LitmusHarness plain(config);
  const LitmusReport plain_report = plain.Run(Litmus3AbortLogging());
  ASSERT_GT(plain_report.violations, 0);
  ASSERT_FALSE(plain_report.violation_traces.empty());

  LitmusReport fiber_report;
  FiberScheduler scheduler;
  scheduler.Spawn([&] {
    LitmusHarness fibered(config);
    fiber_report = fibered.Run(Litmus3AbortLogging());
  });
  scheduler.Run();
  ASSERT_GT(fiber_report.violations, 0);
  ASSERT_EQ(fiber_report.violation_traces.size(),
            plain_report.violation_traces.size());
  EXPECT_EQ(fiber_report.violation_traces[0],
            plain_report.violation_traces[0]);
  EXPECT_EQ(fiber_report.violation_explanations[0],
            plain_report.violation_explanations[0]);
  // schedules_planned is deliberately NOT compared: the profiling
  // iteration's conflict-retry counts are load-dependent, so two *plain*
  // runs already disagree on the planned total (bimodal under
  // contention). The violating trace is the determinism guard.
}

// Exhaustive mode on a single-transaction spec must crash at *every*
// crash point its profiling run visited — the per-point coverage counters
// prove nothing reachable was skipped.
TEST(LitmusScheduleTest, ExhaustiveCoversAllReachablePointsSingleTxn) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.schedule = SchedulePolicy::kExhaustive;
  config.iterations = 60;
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(LitmusSingle());
  EXPECT_EQ(report.violations, 0)
      << (report.failures.empty() ? "" : report.failures[0]);
  EXPECT_EQ(report.schedules_skipped, 0)
      << "iteration budget too small to enumerate every point";
  int covered = 0;
  for (int p = 0; p < txn::kNumCrashPoints; ++p) {
    const txn::CrashPoint point = static_cast<txn::CrashPoint>(p);
    if (report.point_visits[p] > 0) {
      EXPECT_GT(report.point_crashes[p], 0)
          << "reachable point never crashed: "
          << txn::CrashPointName(point);
      ++covered;
    } else {
      EXPECT_EQ(report.point_crashes[p], 0)
          << "crash fired at an unvisited point: "
          << txn::CrashPointName(point);
    }
  }
  // A solo committing transaction traverses lock, log, apply, unlock (and
  // more); far more than a handful of points must be reachable.
  EXPECT_GE(covered, 8) << report.CoverageSummary();
  EXPECT_FALSE(report.CoverageSummary().empty());
  EXPECT_EQ(report.schedule_noops, 0);
}

// Compound schedules: every coordinator crash chained with an RC death
// and with a memory-node failure must still recover to a serializable
// state.
TEST(LitmusScheduleTest, CompoundSchedulesRecoverCleanly) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.schedule = SchedulePolicy::kExhaustive;
  config.iterations = 40;
  config.runs_per_txn = 1;
  config.compound_rc_fault = true;
  config.compound_memory_kill = true;
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(LitmusSingle());
  EXPECT_EQ(report.violations, 0)
      << (report.failures.empty() ? "" : report.failures[0]);
  EXPECT_GT(report.rc_faults_injected, 0);
  EXPECT_GT(report.memory_kills_injected, 0);
}

// A run whose enabled bug flags never actually deviate from the fixed
// protocol is unsound, and the harness must say so rather than "pass".
TEST(LitmusScheduleTest, FlagsHarnessErrorWhenBugNeverExercised) {
  txn::BugFlags bugs;
  bugs.missing_insert_logging = true;  // Litmus2 performs no inserts.
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kFordBaseline;
  config.txn.bugs = bugs;
  config.schedule = SchedulePolicy::kExhaustive;
  config.iterations = 30;
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(Litmus2());
  EXPECT_EQ(report.bug_injections, 0u);
  EXPECT_FALSE(report.harness_error.empty());
  EXPECT_FALSE(report.passed());
}

// ----------------------------------------------- Online reconfiguration --
//
// LitmusReconfig races four read-modify-write counters against a live
// memory-node join/drain. With the epoch fence on, a correct cutover must
// never lose a committed increment no matter where the migration driver
// crashes. With the fence deliberately disabled, the naive cutover loses
// updates — objects locked during the bulk copy are deferred and never
// delta-copied, and post-cutover commits keep landing on the old primaries
// — and the checker must turn that into a violation.

TEST(LitmusScheduleTest, ReconfigTraceRoundTrips) {
  CrashSchedule schedule;
  schedule.sync = SyncMode::kLockstep;
  schedule.reconfig = ReconfigKind::kJoin;
  schedule.reconfig_crash =
      static_cast<int>(cluster::ReconfigCrashPoint::kMidRangeCopy);
  schedule.reconfig_kill_target = true;
  EXPECT_FALSE(schedule.empty());

  const std::string text = schedule.ToString();
  EXPECT_NE(text.find("reconfig=join"), std::string::npos) << text;
  EXPECT_NE(text.find("reconfig_crash=MidRangeCopy"), std::string::npos)
      << text;
  EXPECT_NE(text.find("reconfig_kill_target=1"), std::string::npos) << text;
  CrashSchedule parsed;
  ASSERT_TRUE(CrashSchedule::Parse(text, &parsed)) << text;
  EXPECT_EQ(parsed.ToString(), text);
  EXPECT_EQ(parsed.reconfig, ReconfigKind::kJoin);
  EXPECT_EQ(parsed.reconfig_crash,
            static_cast<int>(cluster::ReconfigCrashPoint::kMidRangeCopy));
  EXPECT_FALSE(parsed.reconfig_fence_off);
  EXPECT_TRUE(parsed.reconfig_kill_target);

  // The naive-cutover drain variant.
  CrashSchedule naive;
  naive.sync = SyncMode::kLockstep;
  naive.runs = 4;
  naive.reconfig = ReconfigKind::kDrain;
  naive.reconfig_fence_off = true;
  const std::string naive_text = naive.ToString();
  EXPECT_NE(naive_text.find("reconfig=drain"), std::string::npos)
      << naive_text;
  EXPECT_NE(naive_text.find("reconfig_fence=0"), std::string::npos)
      << naive_text;
  CrashSchedule naive_parsed;
  ASSERT_TRUE(CrashSchedule::Parse(naive_text, &naive_parsed)) << naive_text;
  EXPECT_EQ(naive_parsed.ToString(), naive_text);
  EXPECT_EQ(naive_parsed.reconfig, ReconfigKind::kDrain);
  EXPECT_TRUE(naive_parsed.reconfig_fence_off);
  EXPECT_EQ(naive_parsed.reconfig_crash, -1);
  EXPECT_EQ(naive_parsed.runs, 4);

  CrashSchedule bad;
  EXPECT_FALSE(CrashSchedule::Parse("reconfig=sideways", &bad));
  EXPECT_FALSE(CrashSchedule::Parse("reconfig_crash=NoSuchPoint", &bad));
}

// Exhaustive exploration under a live join must stay serializable AND
// cover every migration crash point: the enumeration prepends one schedule
// per ReconfigCrashPoint (plus a join-target kill), so every rollback /
// roll-forward decision of the migration driver is exercised.
TEST(LitmusReconfigTest, JoinCoversEveryMigrationCrashPoint) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.txn.sequential_verbs = SequentialVerbsFromEnv();
  config.schedule = SchedulePolicy::kExhaustive;
  config.reconfig = ReconfigKind::kJoin;
  config.iterations = 64;
  config.runs_per_txn = 1;
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(LitmusReconfig());
  if (report.violations > 0) {
    DumpReproducerTraces(report, "reconfig-join");
  }
  EXPECT_EQ(report.violations, 0)
      << (report.failures.empty() ? "" : report.failures[0]);
  EXPECT_GT(report.committed, 0);
  EXPECT_GT(report.reconfigs_run, 0);
  EXPECT_GT(report.reconfig_crashes_injected, 0);
  EXPECT_GT(report.reconfig_rollbacks, 0)
      << "pre-cutover crashes must roll the migration back";
  EXPECT_GT(report.reconfig_kills_injected, 0)
      << "the join-target kill schedule never fired";
  for (int p = 0; p < static_cast<int>(cluster::kNumReconfigCrashPoints); ++p) {
    const auto point = static_cast<cluster::ReconfigCrashPoint>(p);
    EXPECT_GT(report.reconfig_point_visits[p], 0)
        << "migration crash point never visited: "
        << cluster::ReconfigCrashPointName(point) << "\n"
        << report.CoverageSummary();
    EXPECT_GT(report.reconfig_point_crashes[p], 0)
        << "migration crash point never crashed: "
        << cluster::ReconfigCrashPointName(point) << "\n"
        << report.CoverageSummary();
  }
}

// The planned drain (join quietly, then drain under traffic) gets the same
// treatment: serializable at every migration crash point.
TEST(LitmusReconfigTest, DrainCoversEveryMigrationCrashPoint) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.txn.sequential_verbs = SequentialVerbsFromEnv();
  config.schedule = SchedulePolicy::kExhaustive;
  config.reconfig = ReconfigKind::kDrain;
  config.iterations = 64;
  config.runs_per_txn = 1;
  LitmusHarness harness(config);
  const LitmusReport report = harness.Run(LitmusReconfig());
  if (report.violations > 0) {
    DumpReproducerTraces(report, "reconfig-drain");
  }
  EXPECT_EQ(report.violations, 0)
      << (report.failures.empty() ? "" : report.failures[0]);
  EXPECT_GT(report.committed, 0);
  EXPECT_GT(report.reconfigs_run, 0);
  EXPECT_GT(report.reconfig_rollbacks, 0)
      << "pre-cutover crashes must roll the drain back";
  for (int p = 0; p < static_cast<int>(cluster::kNumReconfigCrashPoints); ++p) {
    const auto point = static_cast<cluster::ReconfigCrashPoint>(p);
    EXPECT_GT(report.reconfig_point_visits[p], 0)
        << "migration crash point never visited: "
        << cluster::ReconfigCrashPointName(point) << "\n"
        << report.CoverageSummary();
    EXPECT_GT(report.reconfig_point_crashes[p], 0)
        << "migration crash point never crashed: "
        << cluster::ReconfigCrashPointName(point) << "\n"
        << report.CoverageSummary();
  }
}

// Teeth test: the deliberately naive cutover (epoch fence off, no quiesce,
// no delta pass) must be CAUGHT by the litmus checker, and the catch must
// re-prove from its recorded trace. The loss is a wall-clock race between
// the bulk copy and the lockstep transactions, so both the hunt and the
// replay get a bounded number of attempts.
TEST(LitmusReconfigTest, NaiveCutoverIsCaught) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.txn.sequential_verbs = SequentialVerbsFromEnv();
  config.schedule = SchedulePolicy::kReplay;
  config.replay.sync = SyncMode::kLockstep;
  config.replay.runs = 4;
  config.replay.reconfig = ReconfigKind::kJoin;
  config.replay.reconfig_fence_off = true;

  LitmusReport caught;
  bool found = false;
  for (int attempt = 0; attempt < 20 && !found; ++attempt) {
    config.seed = 7000 + attempt;
    LitmusHarness harness(config);
    const LitmusReport report = harness.Run(LitmusReconfig());
    ASSERT_TRUE(report.harness_error.empty()) << report.harness_error;
    if (report.violations > 0) {
      caught = report;
      found = true;
    }
  }
  ASSERT_TRUE(found)
      << "the naive (fence-off) cutover was never caught: the litmus spec "
         "has no teeth";
  DumpReproducerTraces(caught, "reconfig-naive-cutover");
  ASSERT_FALSE(caught.violation_traces.empty());
  const std::string trace = caught.violation_traces[0];
  EXPECT_NE(trace.find("reconfig=join"), std::string::npos) << trace;
  EXPECT_NE(trace.find("reconfig_fence=0"), std::string::npos) << trace;

  // Re-prove from the recorded trace alone.
  CrashSchedule parsed;
  ASSERT_TRUE(CrashSchedule::Parse(trace, &parsed)) << trace;
  EXPECT_EQ(parsed.ToString(), trace);
  HarnessConfig replay_config = config;
  replay_config.replay = parsed;
  bool reproduced = false;
  for (int attempt = 0; attempt < 20 && !reproduced; ++attempt) {
    replay_config.seed = 7100 + attempt;
    LitmusHarness replayer(replay_config);
    reproduced = replayer.Run(LitmusReconfig()).violations > 0;
  }
  EXPECT_TRUE(reproduced) << "trace did not replay: " << trace;
}

// Coordinator crash *pairs* — two slots dying at different points of the
// same iteration, bounded to the contested (lock-holding) window — must
// all recover to a serializable state, and the enumeration must actually
// add pair schedules on top of the singles.
TEST(LitmusScheduleTest, CoordinatorCrashPairsStaySerializable) {
  HarnessConfig config = FastConfig();
  config.txn.mode = txn::ProtocolMode::kPandora;
  config.txn.sequential_verbs = SequentialVerbsFromEnv();
  config.schedule = SchedulePolicy::kExhaustive;
  config.iterations = 260;
  config.runs_per_txn = 1;

  LitmusHarness single(config);
  const LitmusReport singles = single.Run(Litmus2());
  EXPECT_EQ(singles.violations, 0)
      << (singles.failures.empty() ? "" : singles.failures[0]);

  config.crash_pairs = true;
  LitmusHarness paired(config);
  const LitmusReport pairs = paired.Run(Litmus2());
  if (pairs.violations > 0) {
    DumpReproducerTraces(pairs, "crash-pairs");
  }
  EXPECT_EQ(pairs.violations, 0)
      << (pairs.failures.empty() ? "" : pairs.failures[0]);
  EXPECT_EQ(pairs.schedules_skipped, 0)
      << "budget too small to execute every contested crash pair";
  EXPECT_GT(pairs.schedules_planned, singles.schedules_planned)
      << "crash_pairs added no schedules";
  EXPECT_GT(pairs.crashes_injected, singles.crashes_injected);
}

}  // namespace
}  // namespace litmus
}  // namespace pandora

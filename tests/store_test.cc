#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "common/coding.h"
#include "common/checksum.h"
#include "rdma/fabric.h"
#include "store/log_layout.h"
#include "store/object_header.h"
#include "store/remote_object.h"
#include "store/table_layout.h"

namespace pandora {
namespace store {
namespace {

// ---------------------------------------------------------- Lock/Version --

TEST(LockWordTest, FieldRoundTrip) {
  const LockWord w = MakeLock(0xabcd);
  EXPECT_TRUE(LockHeld(w));
  EXPECT_EQ(LockOwner(w), 0xabcd);
  EXPECT_FALSE(LockHeld(kUnlocked));
}

// Property sweep: owner round trips across the id space.
class LockWordSweep : public ::testing::TestWithParam<uint16_t> {};

TEST_P(LockWordSweep, OwnerRoundTrips) {
  const uint16_t owner = GetParam();
  const LockWord w = MakeLock(owner);
  EXPECT_TRUE(LockHeld(w));
  EXPECT_EQ(LockOwner(w), owner);
  EXPECT_NE(w, kUnlocked);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LockWordSweep,
                         ::testing::Values<uint16_t>(0, 1, 2, 255, 256,
                                                     32767, 32768, 65534,
                                                     65535));

TEST(VersionWordTest, FieldRoundTrip) {
  const VersionWord v = MakeVersion(123456789, true);
  EXPECT_EQ(VersionOf(v), 123456789u);
  EXPECT_TRUE(VersionTombstone(v));
  const VersionWord u = MakeVersion(1, false);
  EXPECT_EQ(VersionOf(u), 1u);
  EXPECT_FALSE(VersionTombstone(u));
}

TEST(VersionWordTest, BumpVersion) {
  const VersionWord v = MakeVersion(10, false);
  EXPECT_EQ(VersionOf(BumpVersion(v, false)), 11u);
  EXPECT_TRUE(VersionTombstone(BumpVersion(v, true)));
  // Bumping a tombstoned version resurrects when tombstone cleared.
  const VersionWord dead = MakeVersion(5, true);
  const VersionWord alive = BumpVersion(dead, false);
  EXPECT_EQ(VersionOf(alive), 6u);
  EXPECT_FALSE(VersionTombstone(alive));
}

TEST(VersionWordTest, Visibility) {
  EXPECT_FALSE(ObjectVisible(MakeVersion(0, false)));  // never committed
  EXPECT_FALSE(ObjectVisible(MakeVersion(3, true)));   // deleted
  EXPECT_TRUE(ObjectVisible(MakeVersion(3, false)));
}

// ----------------------------------------------------------- TableLayout --

TEST(TableLayoutTest, OffsetsAndPadding) {
  TableLayout layout(/*table=*/2, /*value_size=*/40, /*capacity=*/100);
  EXPECT_EQ(layout.padded_value_size(), 40u);
  EXPECT_EQ(layout.slot_size(), 64u);
  EXPECT_EQ(layout.region_size(), 6400u);
  EXPECT_EQ(layout.LockOffset(3), 192u);
  EXPECT_EQ(layout.VersionOffset(3), 200u);
  EXPECT_EQ(layout.KeyOffset(3), 208u);
  EXPECT_EQ(layout.ValueOffset(3), 216u);

  TableLayout odd(0, 13, 10);
  EXPECT_EQ(odd.padded_value_size(), 16u);
  EXPECT_EQ(odd.slot_size(), 40u);
}

TEST(TableLayoutTest, ProbeWrapsAround) {
  TableLayout layout(0, 8, 4);
  EXPECT_EQ(layout.NextSlot(0), 1u);
  EXPECT_EQ(layout.NextSlot(3), 0u);
  EXPECT_LT(layout.HomeSlot(0xdeadbeef), 4u);
}

// ------------------------------------------------------------- LogRecord --

LogRecord MakeTestRecord() {
  LogRecord rec;
  rec.txn_id = 0x1122334455667788ULL;
  rec.coord_id = 42;
  LogEntry e1;
  e1.table = 1;
  e1.key = 777;
  e1.old_version = MakeVersion(5, false);
  e1.old_value = {'a', 'b', 'c'};
  rec.entries.push_back(e1);
  LogEntry e2;
  e2.table = 2;
  e2.key = 888;
  e2.old_version = MakeVersion(9, false);
  e2.is_insert = true;
  rec.entries.push_back(e2);
  LogEntry e3;
  e3.table = 1;
  e3.key = 999;
  e3.old_version = MakeVersion(2, false);
  e3.old_value = std::vector<char>(40, 'x');
  e3.is_delete = true;
  rec.entries.push_back(e3);
  return rec;
}

TEST(LogRecordTest, SerializeParseRoundTrip) {
  const LogRecord rec = MakeTestRecord();
  std::vector<char> buf;
  ASSERT_TRUE(SerializeLogRecord(rec, 4096, &buf).ok());
  EXPECT_EQ(buf.size() % 8, 0u);

  // Pad to slot size as the log region would hold it.
  std::vector<char> slot(4096, 0);
  std::memcpy(slot.data(), buf.data(), buf.size());

  LogRecord parsed;
  ASSERT_TRUE(ParseLogRecord(slot.data(), 4096, &parsed).ok());
  EXPECT_EQ(parsed.txn_id, rec.txn_id);
  EXPECT_EQ(parsed.coord_id, rec.coord_id);
  ASSERT_EQ(parsed.entries.size(), 3u);
  EXPECT_EQ(parsed.entries[0].key, 777u);
  EXPECT_EQ(parsed.entries[0].old_value,
            (std::vector<char>{'a', 'b', 'c'}));
  EXPECT_FALSE(parsed.entries[0].is_insert);
  EXPECT_TRUE(parsed.entries[1].is_insert);
  EXPECT_TRUE(parsed.entries[1].old_value.empty());
  EXPECT_TRUE(parsed.entries[2].is_delete);
  EXPECT_EQ(parsed.entries[2].old_value.size(), 40u);
  EXPECT_EQ(parsed.entries[1].old_version, MakeVersion(9, false));
  EXPECT_FALSE(parsed.entries[0].is_lock_intent);
}

TEST(LogRecordTest, EmptySlotIsNotFound) {
  std::vector<char> slot(4096, 0);
  LogRecord parsed;
  EXPECT_TRUE(ParseLogRecord(slot.data(), 4096, &parsed).IsNotFound());
}

TEST(LogRecordTest, InvalidatedSlotIsNotFound) {
  const LogRecord rec = MakeTestRecord();
  std::vector<char> buf;
  ASSERT_TRUE(SerializeLogRecord(rec, 4096, &buf).ok());
  std::vector<char> slot(4096, 0);
  std::memcpy(slot.data(), buf.data(), buf.size());
  // Abort-path truncation: overwrite the magic word.
  EncodeFixed64(slot.data(), InvalidRecordMarker());
  LogRecord parsed;
  EXPECT_TRUE(ParseLogRecord(slot.data(), 4096, &parsed).IsNotFound());
}

// Property sweep: a torn write at any 8-byte boundary must be detected as
// corruption (or parse as nothing), never as a valid record with wrong
// contents. This is what makes "crash during log write" safe (§3.2.2).
class TornLogWrite : public ::testing::TestWithParam<size_t> {};

TEST_P(TornLogWrite, DetectedByChecksum) {
  const LogRecord rec = MakeTestRecord();
  std::vector<char> buf;
  ASSERT_TRUE(SerializeLogRecord(rec, 4096, &buf).ok());
  std::vector<char> slot(4096, 0);
  // Only a prefix of the record landed before the crash.
  const size_t torn_at = GetParam();
  if (torn_at >= buf.size()) GTEST_SKIP() << "prefix covers whole record";
  std::memcpy(slot.data(), buf.data(), torn_at);
  LogRecord parsed;
  const Status status = ParseLogRecord(slot.data(), 4096, &parsed);
  EXPECT_FALSE(status.ok()) << "torn prefix of " << torn_at
                            << " bytes parsed as valid";
}

INSTANTIATE_TEST_SUITE_P(Sweep, TornLogWrite,
                         ::testing::Values(0, 8, 16, 24, 32, 40, 48, 64, 96,
                                           128, 152));

TEST(LogRecordTest, CorruptedByteDetected) {
  const LogRecord rec = MakeTestRecord();
  std::vector<char> buf;
  ASSERT_TRUE(SerializeLogRecord(rec, 4096, &buf).ok());
  std::vector<char> slot(4096, 0);
  std::memcpy(slot.data(), buf.data(), buf.size());
  slot[50] ^= 0x1;
  LogRecord parsed;
  EXPECT_TRUE(ParseLogRecord(slot.data(), 4096, &parsed).IsCorruption());
}

TEST(LogRecordTest, OversizedRecordRejected) {
  LogRecord rec;
  rec.txn_id = 1;
  rec.coord_id = 1;
  LogEntry e;
  e.old_value = std::vector<char>(5000, 'v');
  rec.entries.push_back(e);
  std::vector<char> buf;
  EXPECT_TRUE(SerializeLogRecord(rec, 4096, &buf).IsResourceExhausted());
}

// ------------------------------------------------------------- LogLayout --

TEST(LogLayoutTest, Offsets) {
  LogConfig config;
  config.slots_per_coordinator = 8;
  config.slot_bytes = 4096;
  config.max_coordinators = 128;
  LogLayout layout(config);
  EXPECT_EQ(layout.region_size(), 128u * 8 * 4096);
  EXPECT_EQ(layout.CoordinatorBase(0), 0u);
  EXPECT_EQ(layout.CoordinatorBase(1), 8u * 4096);
  EXPECT_EQ(layout.SlotOffset(1, 2), 8u * 4096 + 2 * 4096);
  EXPECT_EQ(layout.CoordinatorAreaSize(), 8u * 4096);
}

// ---------------------------------------------------------- RemoteObject --

class RemoteObjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_unique<rdma::Fabric>(
        rdma::NetworkConfig{.one_way_ns = 0, .per_byte_ns = 0});
    pd_ = fabric_->AttachMemoryNode(0);
    layout_ = TableLayout(0, 8, 16);
    rkey_ = pd_->RegisterRegion(layout_.region_size(), "t");
    region_ = pd_->GetRegion(rkey_);
    // Mark all slots free.
    for (uint64_t s = 0; s < layout_.capacity(); ++s) {
      EncodeFixed64(region_->base() + layout_.KeyOffset(s), kFreeKey);
    }
    qp_ = fabric_->CreateQueuePair(1, 0);
  }

  void LoadKey(Key key, uint64_t version) {
    uint64_t slot = layout_.HomeSlot(pandora::HashKey(key));
    while (DecodeFixed64(region_->base() + layout_.KeyOffset(slot)) !=
           kFreeKey) {
      slot = layout_.NextSlot(slot);
    }
    EncodeFixed64(region_->base() + layout_.KeyOffset(slot), key);
    EncodeFixed64(region_->base() + layout_.LockOffset(slot), kUnlocked);
    EncodeFixed64(region_->base() + layout_.VersionOffset(slot),
                  MakeVersion(version, false));
  }

  std::unique_ptr<rdma::Fabric> fabric_;
  rdma::ProtectionDomain* pd_ = nullptr;
  TableLayout layout_;
  rdma::RKey rkey_ = rdma::kInvalidRKey;
  rdma::MemoryRegion* region_ = nullptr;
  std::unique_ptr<rdma::QueuePair> qp_;
};

TEST_F(RemoteObjectTest, FindExistingKey) {
  LoadKey(5, 3);
  LoadKey(9, 7);
  SlotState state;
  ASSERT_TRUE(FindSlotByProbe(qp_.get(), rkey_, layout_, 9, &state).ok());
  EXPECT_EQ(VersionOf(state.version), 7u);
  EXPECT_FALSE(LockHeld(state.lock));
  EXPECT_EQ(DecodeFixed64(region_->base() + layout_.KeyOffset(state.slot)),
            9u);
}

TEST_F(RemoteObjectTest, MissingKeyIsNotFound) {
  LoadKey(5, 3);
  SlotState state;
  EXPECT_TRUE(
      FindSlotByProbe(qp_.get(), rkey_, layout_, 6, &state).IsNotFound());
}

TEST_F(RemoteObjectTest, ProbeFollowsCollisionChain) {
  // Two keys with the same home slot: linear probing must find both.
  const uint64_t home = layout_.HomeSlot(pandora::HashKey(100));
  Key other = 101;
  while (layout_.HomeSlot(pandora::HashKey(other)) != home) ++other;
  LoadKey(100, 1);
  LoadKey(other, 2);
  SlotState state;
  ASSERT_TRUE(
      FindSlotByProbe(qp_.get(), rkey_, layout_, other, &state).ok());
  EXPECT_EQ(VersionOf(state.version), 2u);
}

TEST_F(RemoteObjectTest, ClaimInsertSlotThenFind) {
  SlotState state;
  bool existed = true;
  ASSERT_TRUE(
      FindOrClaimSlot(qp_.get(), rkey_, layout_, 55, &state, &existed).ok());
  EXPECT_FALSE(existed);
  // Claimed slot is not yet visible to reads (version 0).
  EXPECT_FALSE(ObjectVisible(state.version));
  // Claim is visible: second call finds it.
  SlotState state2;
  ASSERT_TRUE(FindOrClaimSlot(qp_.get(), rkey_, layout_, 55, &state2,
                              &existed)
                  .ok());
  EXPECT_TRUE(existed);
  EXPECT_EQ(state.slot, state2.slot);
}

TEST_F(RemoteObjectTest, FullRegionExhausts) {
  for (Key k = 0; k < 16; ++k) LoadKey(k + 1000 * (k % 2 + 1), 1);
  SlotState state;
  EXPECT_TRUE(FindSlotByProbe(qp_.get(), rkey_, layout_, 424242, &state)
                  .IsResourceExhausted());
}

TEST_F(RemoteObjectTest, BatchedProbeResolvesMixedOutcomes) {
  // A present key, a colliding present key, and an absent key resolve in
  // parallel rounds; round count = the longest probe chain, not the sum.
  const uint64_t home = layout_.HomeSlot(pandora::HashKey(100));
  Key collider = 101;
  while (layout_.HomeSlot(pandora::HashKey(collider)) != home) ++collider;
  LoadKey(100, 4);
  LoadKey(collider, 9);

  std::vector<ProbeRequest> requests(3);
  for (auto& request : requests) {
    request.qp = qp_.get();
    request.rkey = rkey_;
  }
  requests[0].key = 100;
  requests[1].key = collider;
  requests[2].key = 31337;  // absent

  std::vector<ProbeOutcome> outcomes;
  uint64_t rounds = 0;
  ASSERT_TRUE(FindSlotsByBatchedProbe(layout_, requests, &outcomes, &rounds)
                  .ok());
  ASSERT_EQ(outcomes.size(), 3u);
  ASSERT_TRUE(outcomes[0].status.ok());
  EXPECT_EQ(VersionOf(outcomes[0].state.version), 4u);
  ASSERT_TRUE(outcomes[1].status.ok());
  EXPECT_EQ(VersionOf(outcomes[1].state.version), 9u);
  EXPECT_TRUE(outcomes[1].state.slot != outcomes[0].state.slot);
  EXPECT_TRUE(outcomes[2].status.IsNotFound());
  // The collider sits at probe distance 2; three keys resolved in the two
  // rounds that chain needed.
  EXPECT_EQ(rounds, 2u);

  // Single-key sanity: the per-key helper agrees with the batched one.
  SlotState state;
  ASSERT_TRUE(
      FindSlotByProbe(qp_.get(), rkey_, layout_, collider, &state).ok());
  EXPECT_EQ(state.slot, outcomes[1].state.slot);
}

}  // namespace
}  // namespace store
}  // namespace pandora

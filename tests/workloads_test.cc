#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "common/clock.h"

#include "cluster/cluster.h"
#include "rdma/verb_schedule.h"
#include "recovery/recovery_manager.h"
#include "txn/system_gate.h"
#include "workloads/driver.h"
#include "workloads/micro.h"
#include "workloads/smallbank.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"

namespace pandora {
namespace workloads {
namespace {

cluster::ClusterConfig TestClusterConfig() {
  cluster::ClusterConfig config;
  config.memory_nodes = 2;
  config.compute_nodes = 2;
  config.replication = 2;
  config.net.one_way_ns = 0;
  config.net.per_byte_ns = 0;
  config.log.max_coordinators = 256;
  config.log.slot_bytes = 8192;  // TPC-C write-sets are large.
  return config;
}

recovery::RecoveryManagerConfig TestRmConfig() {
  recovery::RecoveryManagerConfig config;
  // Generous detection timing: saturating driver tests on two cores can
  // starve heartbeat pumps for tens of milliseconds.
  config.fd.timeout_us = 150'000;
  config.fd.heartbeat_period_us = 10'000;
  config.fd.poll_period_us = 10'000;
  return config;
}

class WorkloadsTest : public ::testing::Test {
 protected:
  void Start(Workload* workload) {
    cluster_ = std::make_unique<cluster::Cluster>(TestClusterConfig());
    ASSERT_TRUE(workload->Setup(cluster_.get()).ok());
    manager_ = std::make_unique<recovery::RecoveryManager>(
        cluster_.get(), TestRmConfig(), &gate_);
    manager_->Start();
  }

  std::unique_ptr<txn::Coordinator> MakeCoordinator(
      uint32_t compute_index, txn::TxnConfig config = txn::TxnConfig()) {
    std::vector<uint16_t> ids;
    EXPECT_TRUE(manager_
                    ->RegisterComputeNode(cluster_->compute(compute_index),
                                          1, &ids)
                    .ok());
    return std::make_unique<txn::Coordinator>(
        cluster_.get(), cluster_->compute(compute_index), ids[0], config,
        &gate_);
  }

  txn::SystemGate gate_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<recovery::RecoveryManager> manager_;
};

TEST_F(WorkloadsTest, MicroRunsTransactions) {
  MicroConfig config;
  config.num_keys = 1000;
  config.write_percent = 50;
  MicroWorkload micro(config);
  Start(&micro);
  auto coord = MakeCoordinator(0);
  Random rng(1);
  int committed = 0;
  for (int i = 0; i < 200; ++i) {
    if (micro.RunTransaction(coord.get(), &rng).ok()) ++committed;
  }
  EXPECT_GT(committed, 150);
}

TEST_F(WorkloadsTest, MicroHotKeysRestrictAccess) {
  MicroConfig config;
  config.num_keys = 1000;
  config.hot_keys = 4;
  config.write_percent = 100;
  config.ops_per_txn = 2;
  MicroWorkload micro(config);
  Start(&micro);

  // Distribution assertion: the workload draws only from the hot set, and
  // a modest sample covers all of it.
  {
    Random rng(42);
    std::vector<int> hits(config.hot_keys, 0);
    for (int i = 0; i < 4096; ++i) {
      const store::Key key = micro.SampleKey(&rng);
      ASSERT_LT(key, config.hot_keys) << "sampled key outside the hot set";
      hits[key]++;
    }
    for (uint64_t k = 0; k < config.hot_keys; ++k) {
      EXPECT_GT(hits[k], 0) << "hot key " << k << " never sampled";
    }
  }

  // Conflict assertion, made deterministic: c1 holds locks on the entire
  // hot set, so any write transaction c2 runs must hit a held lock. (The
  // old version raced two free-running coordinators on a zero-latency
  // fabric, where the lock windows are so short the conflict was flaky.)
  auto c1 = MakeCoordinator(0);
  auto c2 = MakeCoordinator(1);
  ASSERT_TRUE(c1->Begin().ok());
  char value[40] = {0};
  for (store::Key key = 0; key < config.hot_keys; ++key) {
    ASSERT_TRUE(c1->Write(micro.table(), key, Slice(value, 40)).ok());
  }
  Random rng(2);
  const Status status = micro.RunTransaction(c2.get(), &rng);
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
  EXPECT_GT(c2->stats().lock_conflicts, 0u);
  EXPECT_TRUE(c1->Abort().IsAborted());
}

TEST_F(WorkloadsTest, SmallBankConservesMoneySerially) {
  SmallBankConfig config;
  config.num_accounts = 200;
  SmallBankWorkload bank(config);
  Start(&bank);
  auto coord = MakeCoordinator(0);
  Random rng(7);
  int committed = 0;
  for (int i = 0; i < 300; ++i) {
    if (bank.RunTransaction(coord.get(), &rng).ok()) ++committed;
  }
  EXPECT_GT(committed, 250);
  int64_t total = 0;
  ASSERT_TRUE(bank.TotalBalance(coord.get(), &total).ok());
  EXPECT_EQ(total, bank.ExpectedTotal() + bank.committed_delta());
}

TEST_F(WorkloadsTest, SmallBankConservesMoneyUnderConcurrency) {
  SmallBankConfig config;
  config.num_accounts = 100;
  config.hot_accounts = 20;
  config.conserving_only = true;
  SmallBankWorkload bank(config);
  Start(&bank);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto coord = MakeCoordinator(t % 2);
      Random rng(100 + t);
      for (int i = 0; i < 150; ++i) {
        bank.RunTransaction(coord.get(), &rng);
      }
    });
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  auto auditor = MakeCoordinator(0);
  int64_t total = 0;
  ASSERT_TRUE(bank.TotalBalance(auditor.get(), &total).ok());
  EXPECT_EQ(total, bank.ExpectedTotal());
}

TEST_F(WorkloadsTest, SmallBankConservesMoneyAcrossCrashAndRecovery) {
  SmallBankConfig config;
  config.num_accounts = 100;
  config.hot_accounts = 10;
  config.conserving_only = true;
  SmallBankWorkload bank(config);
  Start(&bank);

  // Coordinator on node 0 runs transactions, then its node crashes
  // mid-flight; survivors continue; recovery must keep the invariant.
  std::thread victim_thread([&] {
    auto victim = MakeCoordinator(0);
    Random rng(5);
    for (int i = 0; i < 10000; ++i) {
      if (!bank.RunTransaction(victim.get(), &rng).ok() &&
          victim->stats().crashed > 0) {
        break;
      }
    }
  });
  std::thread survivor_thread([&] {
    auto survivor = MakeCoordinator(1);
    Random rng(6);
    for (int i = 0; i < 400; ++i) bank.RunTransaction(survivor.get(), &rng);
  });
  SleepForMicros(20'000);
  const uint64_t before =
      manager_->recovery_count(cluster_->compute_node_id(0));
  cluster_->CrashComputeNode(cluster_->compute_node_id(0));
  victim_thread.join();
  survivor_thread.join();
  ASSERT_TRUE(manager_->WaitForComputeRecovery(
      cluster_->compute_node_id(0), 3'000'000, before));

  auto auditor = MakeCoordinator(1);
  int64_t total = 0;
  ASSERT_TRUE(bank.TotalBalance(auditor.get(), &total).ok());
  EXPECT_EQ(total, bank.ExpectedTotal());
}

TEST_F(WorkloadsTest, TatpRunsAllProfiles) {
  TatpConfig config;
  config.subscribers = 500;
  TatpWorkload tatp(config);
  Start(&tatp);
  auto coord = MakeCoordinator(0);
  Random rng(11);
  int committed = 0;
  for (int i = 0; i < 400; ++i) {
    if (tatp.RunTransaction(coord.get(), &rng).ok()) ++committed;
  }
  // TATP is mostly read-only; nearly everything commits.
  EXPECT_GT(committed, 350);
}

TEST_F(WorkloadsTest, TpccRunsAllProfiles) {
  TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 4;
  config.customers_per_district = 50;
  config.items = 100;
  config.max_orders_per_district = 512;
  TpccWorkload tpcc(config);
  Start(&tpcc);
  auto coord = MakeCoordinator(0);
  Random rng(13);
  int committed = 0;
  for (int i = 0; i < 300; ++i) {
    if (tpcc.RunTransaction(coord.get(), &rng).ok()) ++committed;
  }
  EXPECT_GT(committed, 250);

  // Explicit per-profile smoke checks.
  EXPECT_TRUE(tpcc.NewOrder(coord.get(), &rng).ok());
  EXPECT_TRUE(tpcc.Payment(coord.get(), &rng).ok());
  EXPECT_TRUE(tpcc.OrderStatus(coord.get(), &rng).ok());
  EXPECT_TRUE(tpcc.Delivery(coord.get(), &rng).ok());
  EXPECT_TRUE(tpcc.StockLevel(coord.get(), &rng).ok());
}

TEST_F(WorkloadsTest, DriverProducesTimeline) {
  MicroConfig config;
  config.num_keys = 1000;
  MicroWorkload micro(config);
  Start(&micro);

  DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 4;
  driver_config.duration_ms = 300;
  driver_config.bucket_ms = 50;
  Driver driver(cluster_.get(), manager_.get(), &gate_, &micro,
                driver_config);
  const DriverResult result = driver.Run();
  EXPECT_GT(result.committed, 100u);
  EXPECT_GT(result.mtps, 0.0);
  EXPECT_EQ(result.timeline_mtps.size(), 6u);
  EXPECT_EQ(result.totals.committed, result.committed);
}

TEST_F(WorkloadsTest, DriverSurvivesComputeCrashAndRestart) {
  MicroConfig config;
  config.num_keys = 500;
  MicroWorkload micro(config);
  Start(&micro);

  DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 4;
  driver_config.duration_ms = 500;
  driver_config.bucket_ms = 50;
  Driver driver(cluster_.get(), manager_.get(), &gate_, &micro,
                driver_config);
  driver.AddFault({FaultEvent::Kind::kComputeCrash, 150, 0});
  driver.AddFault({FaultEvent::Kind::kComputeRestart, 300, 0});
  const DriverResult result = driver.Run();
  EXPECT_GT(result.committed, 50u);
  // Work continued after the crash: late buckets are non-empty.
  double tail = 0;
  for (size_t b = 6; b < result.timeline_mtps.size(); ++b) {
    tail += result.timeline_mtps[b];
  }
  EXPECT_GT(tail, 0.0);
}

// ------------------------------------------------------- Fiber driver --

// Sanitizer instrumentation inflates per-txn CPU cost ~10x, which would
// CPU-bind the overlapped runs on small test machines and compress the
// speedup; scale the simulated network latency up with it so waits keep
// dominating CPU and overlap stays measurable, and relax the floor for
// loaded single-core CI runners.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizerBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizerBuild = true;
#else
constexpr bool kSanitizerBuild = false;
#endif
#else
constexpr bool kSanitizerBuild = false;
#endif
constexpr double kMinFiberSpeedup = kSanitizerBuild ? 1.5 : 2.0;
constexpr uint64_t kFiberTestOneWayNs = kSanitizerBuild ? 50'000 : 5'000;
// Tail bound for the oversubscribed fiber run (p99 <= ratio * p50). The
// bench gate enforces 4x at full scale; test scale is shorter and noisier
// (and sanitizer CPU inflation compresses the wait/CPU ratio), so the
// regression bar here is looser — pure-EDF starvation produced ~30x.
constexpr double kMaxFiberTailRatio = kSanitizerBuild ? 12.0 : 6.0;

TEST_F(WorkloadsTest, DriverFibersOverlapSimulatedLatency) {
  // The tentpole acceptance check: under a 5 µs one-way simulated
  // latency (scaled up with sanitizer CPU inflation, see above),
  // 8 fibers/thread must commit at least 2x what 1 fiber/thread does —
  // the paper's coordinators-per-core scaling lever — while the
  // per-transaction round-trip accounting stays unchanged (overlap must
  // reclaim CPU time, never simulated time).
  MicroConfig config;
  config.num_keys = 20'000;
  config.write_percent = 100;
  config.ops_per_txn = 2;
  MicroWorkload micro(config);
  cluster::ClusterConfig cluster_config = TestClusterConfig();
  cluster_config.net.one_way_ns = kFiberTestOneWayNs;
  cluster_ = std::make_unique<cluster::Cluster>(cluster_config);
  ASSERT_TRUE(micro.Setup(cluster_.get()).ok());
  manager_ = std::make_unique<recovery::RecoveryManager>(
      cluster_.get(), TestRmConfig(), &gate_);
  manager_->Start();

  auto run = [&](uint32_t fibers) {
    DriverConfig driver_config;
    driver_config.threads = 2;
    driver_config.coordinators = 16;
    driver_config.duration_ms = 300;
    driver_config.bucket_ms = 50;
    driver_config.fibers_per_thread = fibers;
    Driver driver(cluster_.get(), manager_.get(), &gate_, &micro,
                  driver_config);
    return driver.Run();
  };

  const DriverResult base = run(1);
  const DriverResult fibered = run(8);
  ASSERT_GT(base.committed, 100u);
  EXPECT_GE(static_cast<double>(fibered.committed),
            kMinFiberSpeedup * static_cast<double>(base.committed))
      << "1 fiber: " << base.committed << ", 8 fibers: "
      << fibered.committed;

  // Overlap must not alter simulated-time accounting: the round trips a
  // committed transaction waits out are identical in both modes (small
  // tolerance for the abort mix shifting the per-committed ratio).
  const auto per_committed = [](const DriverResult& r, uint64_t rtts) {
    return static_cast<double>(rtts) /
           static_cast<double>(std::max<uint64_t>(r.totals.committed, 1));
  };
  EXPECT_NEAR(per_committed(base, base.totals.execution_rtts),
              per_committed(fibered, fibered.totals.execution_rtts),
              0.1 * per_committed(base, base.totals.execution_rtts));
  EXPECT_NEAR(per_committed(base, base.totals.commit_rtts),
              per_committed(fibered, fibered.totals.commit_rtts),
              0.1 * per_committed(base, base.totals.commit_rtts));

  // The blocking run never yields; the fiber run overlaps its waits.
  EXPECT_EQ(base.fiber_yields, 0u);
  EXPECT_EQ(base.totals.fiber_yields, 0u);
  EXPECT_GT(fibered.fiber_yields, 0u);
  EXPECT_EQ(fibered.totals.fiber_yields, fibered.fiber_yields);
  EXPECT_GT(fibered.overlap_factor, 1.5);
  // Percentiles are wired through for every run.
  EXPECT_GT(base.latency_p50_ns, 0u);
  EXPECT_GE(base.latency_p95_ns, base.latency_p50_ns);
  EXPECT_GE(base.latency_p99_ns, base.latency_p95_ns);
}

TEST_F(WorkloadsTest, FiberDriverSurvivesComputeCrashAndRestart) {
  MicroConfig config;
  config.num_keys = 500;
  MicroWorkload micro(config);
  Start(&micro);

  DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 8;
  driver_config.duration_ms = 500;
  driver_config.bucket_ms = 50;
  driver_config.fibers_per_thread = 4;
  Driver driver(cluster_.get(), manager_.get(), &gate_, &micro,
                driver_config);
  driver.AddFault({FaultEvent::Kind::kComputeCrash, 150, 0});
  driver.AddFault({FaultEvent::Kind::kComputeRestart, 300, 0});
  const DriverResult result = driver.Run();
  EXPECT_GT(result.committed, 50u);
  double tail = 0;
  for (size_t b = 6; b < result.timeline_mtps.size(); ++b) {
    tail += result.timeline_mtps[b];
  }
  EXPECT_GT(tail, 0.0);
}

TEST_F(WorkloadsTest, FiberDriverHonorsPacing) {
  // Deadline-aware pacing: a paced fiber suspends until its earliest slot
  // is due, and the pacing budget still caps throughput.
  MicroConfig config;
  config.num_keys = 1000;
  MicroWorkload micro(config);
  Start(&micro);

  DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 8;
  driver_config.duration_ms = 200;
  driver_config.bucket_ms = 50;
  driver_config.pace_us = 500;
  driver_config.fibers_per_thread = 4;
  Driver driver(cluster_.get(), manager_.get(), &gate_, &micro,
                driver_config);
  const DriverResult result = driver.Run();
  // 8 coordinators x (200 ms / 500 us) = 3200 paced starts, plus one
  // immediate start each; aborts only lower the committed count.
  EXPECT_GT(result.committed, 100u);
  EXPECT_LE(result.committed, 8u * (200'000u / 500u) + 8u);
}

TEST_F(WorkloadsTest, FiberDriverBoundsTailLatency) {
  // The tail-starvation regression test behind the fibers8 bench gate:
  // pure-EDF admission kept admitting fresh transactions while an
  // already-admitted runnable fiber sat unscheduled for milliseconds,
  // pushing p99 to ~30x p50. The lag-budgeted heap scheduler (bounded
  // admission pacing + periodic OS yields) must keep the oversubscribed
  // run's p99 within a small multiple of its p50.
  MicroConfig config;
  config.num_keys = 20'000;
  config.write_percent = 50;
  MicroWorkload micro(config);
  cluster::ClusterConfig cluster_config = TestClusterConfig();
  cluster_config.net.one_way_ns = kFiberTestOneWayNs;
  cluster_ = std::make_unique<cluster::Cluster>(cluster_config);
  ASSERT_TRUE(micro.Setup(cluster_.get()).ok());
  manager_ = std::make_unique<recovery::RecoveryManager>(
      cluster_.get(), TestRmConfig(), &gate_);
  manager_->Start();

  DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 16;
  driver_config.duration_ms = 400;
  driver_config.bucket_ms = 50;
  driver_config.fibers_per_thread = 8;
  Driver driver(cluster_.get(), manager_.get(), &gate_, &micro,
                driver_config);
  const DriverResult result = driver.Run();
  ASSERT_GT(result.committed, 100u);
  ASSERT_GT(result.latency_p50_ns, 0u);
  const double tail_ratio = static_cast<double>(result.latency_p99_ns) /
                            static_cast<double>(result.latency_p50_ns);
  EXPECT_LE(tail_ratio, kMaxFiberTailRatio)
      << "p50=" << result.latency_p50_ns / 1000
      << "us p99=" << result.latency_p99_ns / 1000 << "us";

  // The starvation metrics are plumbed end to end: the per-worker maxima
  // and sums surface both as DriverResult fields and in the aggregated
  // TxnStats totals the benches read.
  EXPECT_EQ(result.totals.max_resume_lag_ns,
            result.fiber_max_resume_lag_ns);
  EXPECT_EQ(result.totals.paced_admissions,
            result.fiber_paced_admissions);
}

// A verb held at the fabric must suspend only its own fiber: sibling
// fibers on the *same* worker thread keep issuing and landing verbs
// while the hold is in place. The hook holds the first lock CAS it sees
// and releases it only after observing 8 further CAS applies — so the
// release condition itself is proof of sibling progress (a blocked
// worker would starve the counter and trip the deadline instead).
TEST_F(WorkloadsTest, HeldVerbSuspendsOnlyItsFiber) {
  class HoldFirstCas : public rdma::VerbScheduleHook {
   public:
    bool OnVerbIssue(const rdma::VerbDesc& desc) override {
      if (desc.kind != rdma::VerbKind::kCompareSwap) return true;
      bool expected = false;
      if (!holding_.compare_exchange_strong(expected, true)) return true;
      const uint64_t deadline = NowNanos() + 100'000'000;  // 100 ms
      while (cas_applied_.load(std::memory_order_acquire) < 8) {
        if (NowNanos() > deadline) {
          timed_out_.store(true, std::memory_order_release);
          break;
        }
        SleepForMicros(50);  // Fiber-aware: suspends, never blocks.
      }
      held_one_.store(true, std::memory_order_release);
      return true;
    }
    void OnVerbApplied(const rdma::VerbDesc& desc) override {
      if (desc.kind == rdma::VerbKind::kCompareSwap) {
        cas_applied_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    std::atomic<bool> holding_{false};
    std::atomic<bool> held_one_{false};
    std::atomic<bool> timed_out_{false};
    std::atomic<int> cas_applied_{0};
  };

  MicroConfig config;
  config.num_keys = 20'000;
  config.write_percent = 100;
  config.ops_per_txn = 2;
  MicroWorkload micro(config);
  Start(&micro);

  auto run = [&](uint32_t fibers) {
    DriverConfig driver_config;
    driver_config.threads = 1;  // One worker: siblings share it.
    driver_config.coordinators = 4;
    driver_config.duration_ms = 200;
    driver_config.bucket_ms = 50;
    driver_config.fibers_per_thread = fibers;
    Driver driver(cluster_.get(), manager_.get(), &gate_, &micro,
                  driver_config);
    return driver.Run();
  };

  HoldFirstCas hook;
  cluster_->fabric().set_verb_hook(&hook);
  const DriverResult fibered = run(4);
  cluster_->fabric().set_verb_hook(nullptr);
  ASSERT_TRUE(hook.held_one_.load()) << "no lock CAS ever issued";
  EXPECT_FALSE(hook.timed_out_.load())
      << "sibling fibers made no progress while a verb was held";
  EXPECT_GT(fibered.committed, 20u);

  // Per-committed round-trip accounting is invariant vs the blocking
  // loop: a held verb costs wall-clock time, never simulated RTTs.
  const DriverResult blocking = run(1);
  ASSERT_GT(blocking.committed, 20u);
  const auto per_committed = [](const DriverResult& r, uint64_t rtts) {
    return static_cast<double>(rtts) /
           static_cast<double>(std::max<uint64_t>(r.totals.committed, 1));
  };
  EXPECT_NEAR(per_committed(blocking, blocking.totals.execution_rtts),
              per_committed(fibered, fibered.totals.execution_rtts),
              0.15 * per_committed(blocking, blocking.totals.execution_rtts));
  EXPECT_NEAR(per_committed(blocking, blocking.totals.commit_rtts),
              per_committed(fibered, fibered.totals.commit_rtts),
              0.15 * per_committed(blocking, blocking.totals.commit_rtts));
}

TEST_F(WorkloadsTest, DriverSurvivesMemoryCrash) {
  MicroConfig config;
  config.num_keys = 500;
  MicroWorkload micro(config);
  Start(&micro);

  DriverConfig driver_config;
  driver_config.threads = 2;
  driver_config.coordinators = 4;
  driver_config.duration_ms = 800;
  driver_config.bucket_ms = 50;
  Driver driver(cluster_.get(), manager_.get(), &gate_, &micro,
                driver_config);
  driver.AddFault({FaultEvent::Kind::kMemoryCrash, 200, 0});
  const DriverResult result = driver.Run();
  EXPECT_GT(result.committed, 50u);
  // Work resumed after the fail-over: the tail of the timeline is live.
  double tail = 0;
  for (size_t b = 8; b < result.timeline_mtps.size(); ++b) {
    tail += result.timeline_mtps[b];
  }
  EXPECT_GT(tail, 0.0);
}

}  // namespace
}  // namespace workloads
}  // namespace pandora

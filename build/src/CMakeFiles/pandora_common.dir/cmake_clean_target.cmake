file(REMOVE_RECURSE
  "libpandora_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pandora_common.dir/common/atomic_copy.cc.o"
  "CMakeFiles/pandora_common.dir/common/atomic_copy.cc.o.d"
  "CMakeFiles/pandora_common.dir/common/checksum.cc.o"
  "CMakeFiles/pandora_common.dir/common/checksum.cc.o.d"
  "CMakeFiles/pandora_common.dir/common/clock.cc.o"
  "CMakeFiles/pandora_common.dir/common/clock.cc.o.d"
  "CMakeFiles/pandora_common.dir/common/histogram.cc.o"
  "CMakeFiles/pandora_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/pandora_common.dir/common/logging.cc.o"
  "CMakeFiles/pandora_common.dir/common/logging.cc.o.d"
  "CMakeFiles/pandora_common.dir/common/random.cc.o"
  "CMakeFiles/pandora_common.dir/common/random.cc.o.d"
  "CMakeFiles/pandora_common.dir/common/status.cc.o"
  "CMakeFiles/pandora_common.dir/common/status.cc.o.d"
  "libpandora_common.a"
  "libpandora_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pandora_common.
# This may be replaced when dependencies are built.

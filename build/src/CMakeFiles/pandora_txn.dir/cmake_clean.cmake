file(REMOVE_RECURSE
  "CMakeFiles/pandora_txn.dir/txn/coordinator.cc.o"
  "CMakeFiles/pandora_txn.dir/txn/coordinator.cc.o.d"
  "CMakeFiles/pandora_txn.dir/txn/crash_hook.cc.o"
  "CMakeFiles/pandora_txn.dir/txn/crash_hook.cc.o.d"
  "CMakeFiles/pandora_txn.dir/txn/log_writer.cc.o"
  "CMakeFiles/pandora_txn.dir/txn/log_writer.cc.o.d"
  "libpandora_txn.a"
  "libpandora_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

src/CMakeFiles/pandora_txn.dir/txn/crash_hook.cc.o: \
 /root/repo/src/txn/crash_hook.cc /usr/include/stdc-predef.h \
 /root/repo/src/txn/crash_hook.h

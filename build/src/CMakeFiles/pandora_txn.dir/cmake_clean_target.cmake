file(REMOVE_RECURSE
  "libpandora_txn.a"
)

# Empty dependencies file for pandora_txn.
# This may be replaced when dependencies are built.

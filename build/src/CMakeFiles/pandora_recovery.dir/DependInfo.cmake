
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/failure_detector.cc" "src/CMakeFiles/pandora_recovery.dir/recovery/failure_detector.cc.o" "gcc" "src/CMakeFiles/pandora_recovery.dir/recovery/failure_detector.cc.o.d"
  "/root/repo/src/recovery/recovery_coordinator.cc" "src/CMakeFiles/pandora_recovery.dir/recovery/recovery_coordinator.cc.o" "gcc" "src/CMakeFiles/pandora_recovery.dir/recovery/recovery_coordinator.cc.o.d"
  "/root/repo/src/recovery/recovery_manager.cc" "src/CMakeFiles/pandora_recovery.dir/recovery/recovery_manager.cc.o" "gcc" "src/CMakeFiles/pandora_recovery.dir/recovery/recovery_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandora_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpandora_recovery.a"
)

# Empty compiler generated dependencies file for pandora_recovery.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pandora_recovery.dir/recovery/failure_detector.cc.o"
  "CMakeFiles/pandora_recovery.dir/recovery/failure_detector.cc.o.d"
  "CMakeFiles/pandora_recovery.dir/recovery/recovery_coordinator.cc.o"
  "CMakeFiles/pandora_recovery.dir/recovery/recovery_coordinator.cc.o.d"
  "CMakeFiles/pandora_recovery.dir/recovery/recovery_manager.cc.o"
  "CMakeFiles/pandora_recovery.dir/recovery/recovery_manager.cc.o.d"
  "libpandora_recovery.a"
  "libpandora_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pandora_litmus.dir/litmus/checker.cc.o"
  "CMakeFiles/pandora_litmus.dir/litmus/checker.cc.o.d"
  "CMakeFiles/pandora_litmus.dir/litmus/harness.cc.o"
  "CMakeFiles/pandora_litmus.dir/litmus/harness.cc.o.d"
  "CMakeFiles/pandora_litmus.dir/litmus/litmus_spec.cc.o"
  "CMakeFiles/pandora_litmus.dir/litmus/litmus_spec.cc.o.d"
  "libpandora_litmus.a"
  "libpandora_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pandora_litmus.
# This may be replaced when dependencies are built.

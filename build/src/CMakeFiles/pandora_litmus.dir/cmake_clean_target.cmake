file(REMOVE_RECURSE
  "libpandora_litmus.a"
)

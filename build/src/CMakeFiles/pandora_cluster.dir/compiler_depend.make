# Empty compiler generated dependencies file for pandora_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libpandora_cluster.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pandora_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/pandora_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/pandora_cluster.dir/cluster/placement.cc.o"
  "CMakeFiles/pandora_cluster.dir/cluster/placement.cc.o.d"
  "libpandora_cluster.a"
  "libpandora_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpandora_workloads.a"
)

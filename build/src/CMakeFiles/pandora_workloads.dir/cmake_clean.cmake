file(REMOVE_RECURSE
  "CMakeFiles/pandora_workloads.dir/workloads/driver.cc.o"
  "CMakeFiles/pandora_workloads.dir/workloads/driver.cc.o.d"
  "CMakeFiles/pandora_workloads.dir/workloads/micro.cc.o"
  "CMakeFiles/pandora_workloads.dir/workloads/micro.cc.o.d"
  "CMakeFiles/pandora_workloads.dir/workloads/smallbank.cc.o"
  "CMakeFiles/pandora_workloads.dir/workloads/smallbank.cc.o.d"
  "CMakeFiles/pandora_workloads.dir/workloads/tatp.cc.o"
  "CMakeFiles/pandora_workloads.dir/workloads/tatp.cc.o.d"
  "CMakeFiles/pandora_workloads.dir/workloads/tpcc.cc.o"
  "CMakeFiles/pandora_workloads.dir/workloads/tpcc.cc.o.d"
  "libpandora_workloads.a"
  "libpandora_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

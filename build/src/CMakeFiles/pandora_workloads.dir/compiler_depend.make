# Empty compiler generated dependencies file for pandora_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pandora_rdma.dir/rdma/fabric.cc.o"
  "CMakeFiles/pandora_rdma.dir/rdma/fabric.cc.o.d"
  "CMakeFiles/pandora_rdma.dir/rdma/memory_region.cc.o"
  "CMakeFiles/pandora_rdma.dir/rdma/memory_region.cc.o.d"
  "CMakeFiles/pandora_rdma.dir/rdma/protection_domain.cc.o"
  "CMakeFiles/pandora_rdma.dir/rdma/protection_domain.cc.o.d"
  "CMakeFiles/pandora_rdma.dir/rdma/queue_pair.cc.o"
  "CMakeFiles/pandora_rdma.dir/rdma/queue_pair.cc.o.d"
  "libpandora_rdma.a"
  "libpandora_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpandora_rdma.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/fabric.cc" "src/CMakeFiles/pandora_rdma.dir/rdma/fabric.cc.o" "gcc" "src/CMakeFiles/pandora_rdma.dir/rdma/fabric.cc.o.d"
  "/root/repo/src/rdma/memory_region.cc" "src/CMakeFiles/pandora_rdma.dir/rdma/memory_region.cc.o" "gcc" "src/CMakeFiles/pandora_rdma.dir/rdma/memory_region.cc.o.d"
  "/root/repo/src/rdma/protection_domain.cc" "src/CMakeFiles/pandora_rdma.dir/rdma/protection_domain.cc.o" "gcc" "src/CMakeFiles/pandora_rdma.dir/rdma/protection_domain.cc.o.d"
  "/root/repo/src/rdma/queue_pair.cc" "src/CMakeFiles/pandora_rdma.dir/rdma/queue_pair.cc.o" "gcc" "src/CMakeFiles/pandora_rdma.dir/rdma/queue_pair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pandora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for pandora_rdma.
# This may be replaced when dependencies are built.

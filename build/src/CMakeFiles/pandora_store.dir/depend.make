# Empty dependencies file for pandora_store.
# This may be replaced when dependencies are built.

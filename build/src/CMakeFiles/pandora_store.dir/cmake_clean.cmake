file(REMOVE_RECURSE
  "CMakeFiles/pandora_store.dir/store/log_layout.cc.o"
  "CMakeFiles/pandora_store.dir/store/log_layout.cc.o.d"
  "CMakeFiles/pandora_store.dir/store/remote_object.cc.o"
  "CMakeFiles/pandora_store.dir/store/remote_object.cc.o.d"
  "libpandora_store.a"
  "libpandora_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

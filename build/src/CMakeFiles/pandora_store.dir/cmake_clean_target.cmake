file(REMOVE_RECURSE
  "libpandora_store.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")

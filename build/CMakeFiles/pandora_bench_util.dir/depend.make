# Empty dependencies file for pandora_bench_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pandora_bench_util.dir/bench/bench_util.cc.o"
  "CMakeFiles/pandora_bench_util.dir/bench/bench_util.cc.o.d"
  "libpandora_bench_util.a"
  "libpandora_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandora_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

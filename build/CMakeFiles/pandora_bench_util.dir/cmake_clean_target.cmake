file(REMOVE_RECURSE
  "libpandora_bench_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_fd.dir/bench/bench_distributed_fd.cc.o"
  "CMakeFiles/bench_distributed_fd.dir/bench/bench_distributed_fd.cc.o.d"
  "bench/bench_distributed_fd"
  "bench/bench_distributed_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_distributed_fd.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_failover_tatp.cc" "CMakeFiles/bench_failover_tatp.dir/bench/bench_failover_tatp.cc.o" "gcc" "CMakeFiles/bench_failover_tatp.dir/bench/bench_failover_tatp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/pandora_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pandora_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_failover_tatp.dir/bench/bench_failover_tatp.cc.o"
  "CMakeFiles/bench_failover_tatp.dir/bench/bench_failover_tatp.cc.o.d"
  "bench/bench_failover_tatp"
  "bench/bench_failover_tatp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failover_tatp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_failover_tatp.
# This may be replaced when dependencies are built.

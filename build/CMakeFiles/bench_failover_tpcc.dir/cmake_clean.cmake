file(REMOVE_RECURSE
  "CMakeFiles/bench_failover_tpcc.dir/bench/bench_failover_tpcc.cc.o"
  "CMakeFiles/bench_failover_tpcc.dir/bench/bench_failover_tpcc.cc.o.d"
  "bench/bench_failover_tpcc"
  "bench/bench_failover_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failover_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

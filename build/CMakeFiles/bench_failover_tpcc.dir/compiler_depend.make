# Empty compiler generated dependencies file for bench_failover_tpcc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_failover_micro.dir/bench/bench_failover_micro.cc.o"
  "CMakeFiles/bench_failover_micro.dir/bench/bench_failover_micro.cc.o.d"
  "bench/bench_failover_micro"
  "bench/bench_failover_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failover_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

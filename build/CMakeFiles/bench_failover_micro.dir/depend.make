# Empty dependencies file for bench_failover_micro.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_litmus_validation.dir/bench/bench_litmus_validation.cc.o"
  "CMakeFiles/bench_litmus_validation.dir/bench/bench_litmus_validation.cc.o.d"
  "bench/bench_litmus_validation"
  "bench/bench_litmus_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_litmus_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

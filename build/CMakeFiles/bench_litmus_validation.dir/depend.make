# Empty dependencies file for bench_litmus_validation.
# This may be replaced when dependencies are built.

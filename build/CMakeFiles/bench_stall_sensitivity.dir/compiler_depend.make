# Empty compiler generated dependencies file for bench_stall_sensitivity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_stall_sensitivity.dir/bench/bench_stall_sensitivity.cc.o"
  "CMakeFiles/bench_stall_sensitivity.dir/bench/bench_stall_sensitivity.cc.o.d"
  "bench/bench_stall_sensitivity"
  "bench/bench_stall_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stall_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

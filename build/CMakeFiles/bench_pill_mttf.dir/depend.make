# Empty dependencies file for bench_pill_mttf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_pill_mttf.dir/bench/bench_pill_mttf.cc.o"
  "CMakeFiles/bench_pill_mttf.dir/bench/bench_pill_mttf.cc.o.d"
  "bench/bench_pill_mttf"
  "bench/bench_pill_mttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pill_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

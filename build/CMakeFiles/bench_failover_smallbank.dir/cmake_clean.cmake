file(REMOVE_RECURSE
  "CMakeFiles/bench_failover_smallbank.dir/bench/bench_failover_smallbank.cc.o"
  "CMakeFiles/bench_failover_smallbank.dir/bench/bench_failover_smallbank.cc.o.d"
  "bench/bench_failover_smallbank"
  "bench/bench_failover_smallbank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failover_smallbank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

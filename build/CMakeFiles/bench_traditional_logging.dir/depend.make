# Empty dependencies file for bench_traditional_logging.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_traditional_logging.dir/bench/bench_traditional_logging.cc.o"
  "CMakeFiles/bench_traditional_logging.dir/bench/bench_traditional_logging.cc.o.d"
  "bench/bench_traditional_logging"
  "bench/bench_traditional_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traditional_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for litmus_demo.
# This may be replaced when dependencies are built.

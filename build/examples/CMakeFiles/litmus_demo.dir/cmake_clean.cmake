file(REMOVE_RECURSE
  "CMakeFiles/litmus_demo.dir/litmus_demo.cc.o"
  "CMakeFiles/litmus_demo.dir/litmus_demo.cc.o.d"
  "litmus_demo"
  "litmus_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

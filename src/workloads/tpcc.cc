#include "workloads/tpcc.h"

#include "common/coding.h"

namespace pandora {
namespace workloads {

namespace {

// Value sizes follow the TPC-C row footprints of the KV mapping (customer
// carries the paper's headline 672 B rows).
constexpr uint32_t kWarehouseBytes = 89;
constexpr uint32_t kDistrictBytes = 98;
constexpr uint32_t kCustomerBytes = 672;
constexpr uint32_t kHistoryBytes = 46;
constexpr uint32_t kNewOrderBytes = 8;
constexpr uint32_t kOrderBytes = 24;
constexpr uint32_t kOrderLineBytes = 54;
constexpr uint32_t kItemBytes = 82;
constexpr uint32_t kStockBytes = 306;

// District value layout: [next_o_id][ytd][next_delivery_o_id]...
struct DistrictRow {
  uint64_t next_o_id;
  uint64_t ytd;
  uint64_t next_delivery;
};

DistrictRow DecodeDistrict(const std::string& value) {
  return {DecodeFixed64(value.data()), DecodeFixed64(value.data() + 8),
          DecodeFixed64(value.data() + 16)};
}

void EncodeDistrict(char* buf, const DistrictRow& row) {
  std::memset(buf, 0, kDistrictBytes);
  EncodeFixed64(buf, row.next_o_id);
  EncodeFixed64(buf + 8, row.ytd);
  EncodeFixed64(buf + 16, row.next_delivery);
}

void FillRow(char* buf, uint32_t size, uint64_t tag) {
  std::memset(buf, 0, size);
  EncodeFixed64(buf, tag);
}

}  // namespace

Status TpccWorkload::Setup(cluster::Cluster* cluster) {
  const uint64_t districts =
      static_cast<uint64_t>(config_.warehouses) *
      config_.districts_per_warehouse;
  const uint64_t customers =
      districts * config_.customers_per_district;
  const uint64_t order_capacity =
      districts * config_.max_orders_per_district;

  warehouse_ =
      cluster->CreateTable("warehouse", kWarehouseBytes,
                           config_.warehouses);
  district_ = cluster->CreateTable("district", kDistrictBytes, districts);
  customer_ = cluster->CreateTable("customer", kCustomerBytes, customers);
  history_ = cluster->CreateTable("history", kHistoryBytes, order_capacity);
  new_order_ =
      cluster->CreateTable("new_order", kNewOrderBytes, order_capacity);
  order_ = cluster->CreateTable("order", kOrderBytes, order_capacity);
  order_line_ = cluster->CreateTable("order_line", kOrderLineBytes,
                                     order_capacity * 10);
  item_ = cluster->CreateTable("item", kItemBytes, config_.items);
  stock_ = cluster->CreateTable(
      "stock", kStockBytes,
      static_cast<uint64_t>(config_.warehouses) * config_.items);

  char buf[kCustomerBytes];
  for (uint32_t w = 0; w < config_.warehouses; ++w) {
    FillRow(buf, kWarehouseBytes, w);
    PANDORA_RETURN_NOT_OK(cluster->LoadRow(warehouse_, WarehouseKey(w),
                                           Slice(buf, kWarehouseBytes)));
    for (uint32_t d = 0; d < config_.districts_per_warehouse; ++d) {
      EncodeDistrict(buf, {1, 0, 1});
      PANDORA_RETURN_NOT_OK(cluster->LoadRow(district_, DistrictKey(w, d),
                                             Slice(buf, kDistrictBytes)));
      for (uint32_t c = 0; c < config_.customers_per_district; ++c) {
        FillRow(buf, kCustomerBytes, c);
        PANDORA_RETURN_NOT_OK(
            cluster->LoadRow(customer_, CustomerKey(w, d, c),
                             Slice(buf, kCustomerBytes)));
      }
    }
    for (uint32_t i = 0; i < config_.items; ++i) {
      FillRow(buf, kStockBytes, 100);  // Initial stock quantity 100.
      PANDORA_RETURN_NOT_OK(cluster->LoadRow(stock_, StockKey(w, i),
                                             Slice(buf, kStockBytes)));
    }
  }
  for (uint32_t i = 0; i < config_.items; ++i) {
    FillRow(buf, kItemBytes, i);
    PANDORA_RETURN_NOT_OK(
        cluster->LoadRow(item_, ItemKey(i), Slice(buf, kItemBytes)));
  }
  return Status::OK();
}

Status TpccWorkload::NewOrder(txn::Coordinator* coord, Random* rng) {
  const uint32_t w = PickWarehouse(rng);
  const uint32_t d = PickDistrict(rng);
  const uint32_t c = PickCustomer(rng);

  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  PANDORA_RETURN_NOT_OK(coord->Read(warehouse_, WarehouseKey(w), &value));
  PANDORA_RETURN_NOT_OK(coord->Read(district_, DistrictKey(w, d), &value));
  DistrictRow district = DecodeDistrict(value);
  const uint64_t o_id = district.next_o_id;
  if (o_id + 1 >= config_.max_orders_per_district) {
    // Order-id space for this district exhausted (long benchmark run);
    // recycle from the start — old orders are simply overwritten.
    district.next_o_id = 1;
  } else {
    district.next_o_id = o_id + 1;
  }
  char dbuf[kDistrictBytes];
  EncodeDistrict(dbuf, district);
  PANDORA_RETURN_NOT_OK(coord->Write(district_, DistrictKey(w, d),
                                     Slice(dbuf, kDistrictBytes)));
  PANDORA_RETURN_NOT_OK(coord->Read(customer_, CustomerKey(w, d, c),
                                    &value));

  const uint32_t ol_cnt = 5 + static_cast<uint32_t>(rng->Uniform(11));
  char line_buf[kOrderLineBytes];
  char stock_buf[kStockBytes];
  for (uint32_t line = 0; line < ol_cnt; ++line) {
    const uint32_t i = static_cast<uint32_t>(rng->Uniform(config_.items));
    PANDORA_RETURN_NOT_OK(coord->Read(item_, ItemKey(i), &value));
    // 1% of lines hit a remote warehouse's stock (distributed NewOrder).
    const uint32_t stock_w =
        rng->PercentTrue(1) ? PickWarehouse(rng) : w;
    PANDORA_RETURN_NOT_OK(coord->Read(stock_, StockKey(stock_w, i),
                                      &value));
    uint64_t quantity = DecodeFixed64(value.data());
    quantity = quantity > 10 ? quantity - rng->Range(1, 10)
                             : quantity + 91;
    FillRow(stock_buf, kStockBytes, quantity);
    Status status = coord->Write(stock_, StockKey(stock_w, i),
                                 Slice(stock_buf, kStockBytes));
    if (!status.ok()) return status;
    FillRow(line_buf, kOrderLineBytes, i);
    status = coord->Insert(order_line_, OrderLineKey(w, d, o_id, line),
                           Slice(line_buf, kOrderLineBytes));
    if (!status.ok() && !status.IsInvalidArgument()) return status;
  }

  char order_buf[kOrderBytes];
  FillRow(order_buf, kOrderBytes, (static_cast<uint64_t>(c) << 8) | ol_cnt);
  Status status = coord->Insert(order_, OrderKey(w, d, o_id),
                                Slice(order_buf, kOrderBytes));
  if (!status.ok() && !status.IsInvalidArgument()) return status;
  char no_buf[kNewOrderBytes];
  FillRow(no_buf, kNewOrderBytes, o_id);
  status = coord->Insert(new_order_, OrderKey(w, d, o_id),
                         Slice(no_buf, kNewOrderBytes));
  if (!status.ok() && !status.IsInvalidArgument()) return status;
  return coord->Commit();
}

Status TpccWorkload::Payment(txn::Coordinator* coord, Random* rng) {
  const uint32_t w = PickWarehouse(rng);
  const uint32_t d = PickDistrict(rng);
  const uint32_t c = PickCustomer(rng);
  const uint64_t amount = rng->Range(1, 5000);

  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  char buf[kCustomerBytes];

  PANDORA_RETURN_NOT_OK(coord->Read(warehouse_, WarehouseKey(w), &value));
  FillRow(buf, kWarehouseBytes, DecodeFixed64(value.data()) + amount);
  PANDORA_RETURN_NOT_OK(coord->Write(warehouse_, WarehouseKey(w),
                                     Slice(buf, kWarehouseBytes)));

  PANDORA_RETURN_NOT_OK(coord->Read(district_, DistrictKey(w, d), &value));
  DistrictRow district = DecodeDistrict(value);
  district.ytd += amount;
  EncodeDistrict(buf, district);
  PANDORA_RETURN_NOT_OK(coord->Write(district_, DistrictKey(w, d),
                                     Slice(buf, kDistrictBytes)));

  PANDORA_RETURN_NOT_OK(coord->Read(customer_, CustomerKey(w, d, c),
                                    &value));
  FillRow(buf, kCustomerBytes, DecodeFixed64(value.data()) + amount);
  PANDORA_RETURN_NOT_OK(coord->Write(customer_, CustomerKey(w, d, c),
                                     Slice(buf, kCustomerBytes)));

  // History row keyed by a unique random id (append-only table).
  FillRow(buf, kHistoryBytes, amount);
  const Status status = coord->Insert(
      history_, rng->Next() & ~(0xffULL << 56), Slice(buf, kHistoryBytes));
  if (!status.ok() && !status.IsInvalidArgument()) return status;
  return coord->Commit();
}

Status TpccWorkload::OrderStatus(txn::Coordinator* coord, Random* rng) {
  const uint32_t w = PickWarehouse(rng);
  const uint32_t d = PickDistrict(rng);

  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  PANDORA_RETURN_NOT_OK(coord->Read(customer_,
                                    CustomerKey(w, d, PickCustomer(rng)),
                                    &value));
  PANDORA_RETURN_NOT_OK(coord->Read(district_, DistrictKey(w, d), &value));
  const DistrictRow district = DecodeDistrict(value);
  if (district.next_o_id > 1) {
    const uint64_t o_id = 1 + rng->Uniform(district.next_o_id - 1);
    Status status = coord->Read(order_, OrderKey(w, d, o_id), &value);
    if (!status.ok() && !status.IsNotFound()) return status;
    if (status.ok()) {
      for (uint32_t line = 0; line < 5; ++line) {
        status = coord->Read(order_line_, OrderLineKey(w, d, o_id, line),
                             &value);
        if (!status.ok() && !status.IsNotFound()) return status;
      }
    }
  }
  return coord->Commit();
}

Status TpccWorkload::Delivery(txn::Coordinator* coord, Random* rng) {
  const uint32_t w = PickWarehouse(rng);
  const uint32_t d = PickDistrict(rng);

  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  PANDORA_RETURN_NOT_OK(coord->Read(district_, DistrictKey(w, d), &value));
  DistrictRow district = DecodeDistrict(value);
  if (district.next_delivery >= district.next_o_id) {
    return coord->Commit();  // Nothing to deliver.
  }
  const uint64_t o_id = district.next_delivery;
  district.next_delivery++;
  char buf[kCustomerBytes];
  EncodeDistrict(buf, district);
  PANDORA_RETURN_NOT_OK(coord->Write(district_, DistrictKey(w, d),
                                     Slice(buf, kDistrictBytes)));

  Status status = coord->Delete(new_order_, OrderKey(w, d, o_id));
  if (!status.ok() && !status.IsNotFound()) return status;
  status = coord->Read(order_, OrderKey(w, d, o_id), &value);
  if (!status.ok() && !status.IsNotFound()) return status;
  if (status.ok()) {
    const uint32_t c =
        static_cast<uint32_t>(DecodeFixed64(value.data()) >> 8);
    FillRow(buf, kOrderBytes, DecodeFixed64(value.data()) | (1ULL << 60));
    status = coord->Write(order_, OrderKey(w, d, o_id),
                          Slice(buf, kOrderBytes));
    if (!status.ok()) return status;
    status = coord->Read(customer_, CustomerKey(w, d, c), &value);
    if (status.ok()) {
      FillRow(buf, kCustomerBytes, DecodeFixed64(value.data()) + 1);
      status = coord->Write(customer_, CustomerKey(w, d, c),
                            Slice(buf, kCustomerBytes));
      if (!status.ok()) return status;
    } else if (!status.IsNotFound()) {
      return status;
    }
  }
  return coord->Commit();
}

Status TpccWorkload::StockLevel(txn::Coordinator* coord, Random* rng) {
  const uint32_t w = PickWarehouse(rng);
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  PANDORA_RETURN_NOT_OK(
      coord->Read(district_, DistrictKey(w, PickDistrict(rng)), &value));
  for (uint32_t n = 0; n < 20; ++n) {
    const uint32_t i = static_cast<uint32_t>(rng->Uniform(config_.items));
    PANDORA_RETURN_NOT_OK(coord->Read(stock_, StockKey(w, i), &value));
  }
  return coord->Commit();
}

Status TpccWorkload::RunTransaction(txn::Coordinator* coord, Random* rng) {
  const uint32_t dice = static_cast<uint32_t>(rng->Uniform(100));
  if (dice < 45) return NewOrder(coord, rng);
  if (dice < 88) return Payment(coord, rng);
  if (dice < 92) return OrderStatus(coord, rng);
  if (dice < 96) return Delivery(coord, rng);
  return StockLevel(coord, rng);
}

}  // namespace workloads
}  // namespace pandora

#ifndef PANDORA_WORKLOADS_SMALLBANK_H_
#define PANDORA_WORKLOADS_SMALLBANK_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "workloads/workload.h"

namespace pandora {
namespace workloads {

/// SmallBank [2]: two tables (savings, checking; 16 B values per §4.1) and
/// six transaction profiles with an 85% write ratio. The money-conservation
/// invariant — the sum of all balances never changes when the overdraft
/// penalty is zero — makes it a natural property test for serializability
/// under crashes.
struct SmallBankConfig {
  uint64_t num_accounts = 10'000;
  /// Fraction (percent) of transactions that hit the hot accounts, and how
  /// many accounts are hot (the classic SmallBank hotspot).
  uint32_t hot_percent = 90;
  uint64_t hot_accounts = 100;
  int64_t initial_balance = 1000;
  /// Overdraft penalty applied by WriteCheck. Zero preserves the
  /// money-conservation invariant exactly.
  int64_t overdraft_penalty = 0;
  /// Restrict the mix to the money-conserving profiles (Balance,
  /// Amalgamate, SendPayment). With this on, the total balance is
  /// invariant under any interleaving *and any crash/recovery outcome*,
  /// making it the workload of choice for end-to-end invariant tests.
  bool conserving_only = false;
};

class SmallBankWorkload : public Workload {
 public:
  explicit SmallBankWorkload(const SmallBankConfig& config)
      : config_(config) {}

  std::string name() const override { return "SmallBank"; }
  Status Setup(cluster::Cluster* cluster) override;
  Status RunTransaction(txn::Coordinator* coord, Random* rng) override;

  const SmallBankConfig& config() const { return config_; }

  /// Sum of every savings + checking balance, read transactionally in
  /// chunks (used by the invariant tests and examples).
  Status TotalBalance(txn::Coordinator* coord, int64_t* total);

  /// Initial total balance.
  int64_t ExpectedTotal() const {
    return static_cast<int64_t>(config_.num_accounts) * 2 *
           config_.initial_balance;
  }

  /// Net money created/destroyed by committed non-conserving profiles
  /// (DepositChecking, TransactSavings, WriteCheck). The audit invariant
  /// is: total == ExpectedTotal() + committed_delta(). Zero by
  /// construction when conserving_only is set.
  int64_t committed_delta() const {
    return committed_delta_.load(std::memory_order_acquire);
  }

  /// --- Individual transaction profiles (public for tests/examples) -----
  Status Balance(txn::Coordinator* coord, uint64_t account,
                 int64_t* balance);
  Status DepositChecking(txn::Coordinator* coord, uint64_t account,
                         int64_t amount);
  Status TransactSavings(txn::Coordinator* coord, uint64_t account,
                         int64_t amount);
  Status Amalgamate(txn::Coordinator* coord, uint64_t from, uint64_t to);
  Status WriteCheck(txn::Coordinator* coord, uint64_t account,
                    int64_t amount);
  Status SendPayment(txn::Coordinator* coord, uint64_t from, uint64_t to,
                     int64_t amount);

 private:
  uint64_t PickAccount(Random* rng) const;

  SmallBankConfig config_;
  store::TableId savings_ = 0;
  store::TableId checking_ = 0;
  std::atomic<int64_t> committed_delta_{0};
};

}  // namespace workloads
}  // namespace pandora

#endif  // PANDORA_WORKLOADS_SMALLBANK_H_

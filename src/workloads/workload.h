#ifndef PANDORA_WORKLOADS_WORKLOAD_H_
#define PANDORA_WORKLOADS_WORKLOAD_H_

#include <string>

#include "cluster/cluster.h"
#include "common/random.h"
#include "common/status.h"
#include "txn/coordinator.h"

namespace pandora {
namespace workloads {

/// An OLTP workload: schema + loader + transaction mix. One instance is
/// shared by all coordinators (immutable after Setup).
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Creates tables and bulk-loads the initial dataset (control path).
  virtual Status Setup(cluster::Cluster* cluster) = 0;

  /// Runs one transaction of the mix on `coord` (which must be idle).
  /// Returns the commit status: OK = committed, Aborted = conflict,
  /// Unavailable = the coordinator's server crashed.
  virtual Status RunTransaction(txn::Coordinator* coord, Random* rng) = 0;
};

}  // namespace workloads
}  // namespace pandora

#endif  // PANDORA_WORKLOADS_WORKLOAD_H_

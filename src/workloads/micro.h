#ifndef PANDORA_WORKLOADS_MICRO_H_
#define PANDORA_WORKLOADS_MICRO_H_

#include <memory>
#include <string>

#include "workloads/workload.h"

namespace pandora {
namespace workloads {

/// The paper's microbenchmark (§4.1): one table of 8 B keys and 40 B
/// values with an adjustable write ratio; §6.4's stall-sensitivity
/// experiments additionally restrict accesses to a hot set of
/// 1,000 / 100,000 keys.
struct MicroConfig {
  uint64_t num_keys = 100'000;
  /// Keys actually accessed (<= num_keys). 0 = all keys.
  uint64_t hot_keys = 0;
  /// Percent of operations that are writes (paper sweeps up to 100%).
  uint32_t write_percent = 50;
  /// Operations per transaction.
  uint32_t ops_per_txn = 4;
  /// Optional Zipf skew (0 = uniform).
  double zipf_theta = 0;
};

class MicroWorkload : public Workload {
 public:
  explicit MicroWorkload(const MicroConfig& config) : config_(config) {}

  std::string name() const override { return "MicroBench"; }
  Status Setup(cluster::Cluster* cluster) override;
  Status RunTransaction(txn::Coordinator* coord, Random* rng) override;

  const MicroConfig& config() const { return config_; }
  store::TableId table() const { return table_; }

  /// The key-selection distribution RunTransaction draws from, exposed so
  /// tests can pin the hot-set restriction directly: every sampled key is
  /// < hot_keys when a hot set is configured.
  store::Key SampleKey(Random* rng) const { return PickKey(rng); }

 private:
  store::Key PickKey(Random* rng) const;

  MicroConfig config_;
  store::TableId table_ = 0;
  std::unique_ptr<ZipfGenerator> zipf_;  // Set when zipf_theta > 0.
};

}  // namespace workloads
}  // namespace pandora

#endif  // PANDORA_WORKLOADS_MICRO_H_

#include "workloads/smallbank.h"

#include "common/coding.h"

namespace pandora {
namespace workloads {

namespace {

// 16-byte value: [balance (int64)][generation counter].
void EncodeBalance(char* buf, int64_t balance, uint64_t generation) {
  EncodeFixed64(buf, static_cast<uint64_t>(balance));
  EncodeFixed64(buf + 8, generation);
}

int64_t DecodeBalance(const std::string& value) {
  return static_cast<int64_t>(DecodeFixed64(value.data()));
}

}  // namespace

Status SmallBankWorkload::Setup(cluster::Cluster* cluster) {
  savings_ = cluster->CreateTable("savings", 16, config_.num_accounts);
  checking_ = cluster->CreateTable("checking", 16, config_.num_accounts);
  char value[16];
  EncodeBalance(value, config_.initial_balance, 0);
  for (uint64_t account = 0; account < config_.num_accounts; ++account) {
    PANDORA_RETURN_NOT_OK(
        cluster->LoadRow(savings_, account, Slice(value, 16)));
    PANDORA_RETURN_NOT_OK(
        cluster->LoadRow(checking_, account, Slice(value, 16)));
  }
  return Status::OK();
}

uint64_t SmallBankWorkload::PickAccount(Random* rng) const {
  if (config_.hot_accounts > 0 && rng->PercentTrue(config_.hot_percent)) {
    return rng->Uniform(
        std::min<uint64_t>(config_.hot_accounts, config_.num_accounts));
  }
  return rng->Uniform(config_.num_accounts);
}

Status SmallBankWorkload::Balance(txn::Coordinator* coord, uint64_t account,
                                  int64_t* balance) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string savings, checking;
  PANDORA_RETURN_NOT_OK(coord->Read(savings_, account, &savings));
  PANDORA_RETURN_NOT_OK(coord->Read(checking_, account, &checking));
  PANDORA_RETURN_NOT_OK(coord->Commit());
  *balance = DecodeBalance(savings) + DecodeBalance(checking);
  return Status::OK();
}

Status SmallBankWorkload::DepositChecking(txn::Coordinator* coord,
                                          uint64_t account, int64_t amount) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  PANDORA_RETURN_NOT_OK(coord->Read(checking_, account, &value));
  char buf[16];
  EncodeBalance(buf, DecodeBalance(value) + amount,
                DecodeFixed64(value.data() + 8) + 1);
  PANDORA_RETURN_NOT_OK(coord->Write(checking_, account, Slice(buf, 16)));
  return coord->Commit();
}

Status SmallBankWorkload::TransactSavings(txn::Coordinator* coord,
                                          uint64_t account, int64_t amount) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  PANDORA_RETURN_NOT_OK(coord->Read(savings_, account, &value));
  char buf[16];
  EncodeBalance(buf, DecodeBalance(value) + amount,
                DecodeFixed64(value.data() + 8) + 1);
  PANDORA_RETURN_NOT_OK(coord->Write(savings_, account, Slice(buf, 16)));
  return coord->Commit();
}

Status SmallBankWorkload::Amalgamate(txn::Coordinator* coord, uint64_t from,
                                     uint64_t to) {
  if (from == to) return Status::OK();
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string from_savings, from_checking, to_checking;
  PANDORA_RETURN_NOT_OK(coord->Read(savings_, from, &from_savings));
  PANDORA_RETURN_NOT_OK(coord->Read(checking_, from, &from_checking));
  PANDORA_RETURN_NOT_OK(coord->Read(checking_, to, &to_checking));
  const int64_t moved =
      DecodeBalance(from_savings) + DecodeBalance(from_checking);
  char zero_s[16], zero_c[16], to_buf[16];
  EncodeBalance(zero_s, 0, DecodeFixed64(from_savings.data() + 8) + 1);
  EncodeBalance(zero_c, 0, DecodeFixed64(from_checking.data() + 8) + 1);
  EncodeBalance(to_buf, DecodeBalance(to_checking) + moved,
                DecodeFixed64(to_checking.data() + 8) + 1);
  PANDORA_RETURN_NOT_OK(coord->Write(savings_, from, Slice(zero_s, 16)));
  PANDORA_RETURN_NOT_OK(coord->Write(checking_, from, Slice(zero_c, 16)));
  PANDORA_RETURN_NOT_OK(coord->Write(checking_, to, Slice(to_buf, 16)));
  return coord->Commit();
}

Status SmallBankWorkload::WriteCheck(txn::Coordinator* coord,
                                     uint64_t account, int64_t amount) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string savings, checking;
  PANDORA_RETURN_NOT_OK(coord->Read(savings_, account, &savings));
  PANDORA_RETURN_NOT_OK(coord->Read(checking_, account, &checking));
  int64_t debit = amount;
  if (DecodeBalance(savings) + DecodeBalance(checking) < amount) {
    debit += config_.overdraft_penalty;
  }
  char buf[16];
  EncodeBalance(buf, DecodeBalance(checking) - debit,
                DecodeFixed64(checking.data() + 8) + 1);
  PANDORA_RETURN_NOT_OK(coord->Write(checking_, account, Slice(buf, 16)));
  return coord->Commit();
}

Status SmallBankWorkload::SendPayment(txn::Coordinator* coord,
                                      uint64_t from, uint64_t to,
                                      int64_t amount) {
  if (from == to) return Status::OK();
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string from_value, to_value;
  PANDORA_RETURN_NOT_OK(coord->Read(checking_, from, &from_value));
  PANDORA_RETURN_NOT_OK(coord->Read(checking_, to, &to_value));
  char from_buf[16], to_buf[16];
  EncodeBalance(from_buf, DecodeBalance(from_value) - amount,
                DecodeFixed64(from_value.data() + 8) + 1);
  EncodeBalance(to_buf, DecodeBalance(to_value) + amount,
                DecodeFixed64(to_value.data() + 8) + 1);
  PANDORA_RETURN_NOT_OK(coord->Write(checking_, from, Slice(from_buf, 16)));
  PANDORA_RETURN_NOT_OK(coord->Write(checking_, to, Slice(to_buf, 16)));
  return coord->Commit();
}

Status SmallBankWorkload::RunTransaction(txn::Coordinator* coord,
                                         Random* rng) {
  const uint64_t account = PickAccount(rng);
  const int64_t amount = static_cast<int64_t>(rng->Range(1, 100));
  const uint32_t dice = static_cast<uint32_t>(rng->Uniform(100));

  if (config_.conserving_only) {
    // Balance 15% / Amalgamate 40% / SendPayment 45%: every committed or
    // crashed outcome preserves the total.
    if (dice < 15) {
      int64_t balance = 0;
      return Balance(coord, account, &balance);
    }
    if (dice < 55) return Amalgamate(coord, account, PickAccount(rng));
    return SendPayment(coord, account, PickAccount(rng), amount);
  }

  // Standard SmallBank mix: 15% Balance (read-only), 85% updates. The
  // money-creating/destroying profiles record their delta on commit so
  // audits can reconcile the total.
  if (dice < 15) {
    int64_t balance = 0;
    return Balance(coord, account, &balance);
  }
  if (dice < 30) {
    const Status status = DepositChecking(coord, account, amount);
    if (status.ok()) {
      committed_delta_.fetch_add(amount, std::memory_order_acq_rel);
    }
    return status;
  }
  if (dice < 45) {
    const Status status = TransactSavings(coord, account, amount);
    if (status.ok()) {
      committed_delta_.fetch_add(amount, std::memory_order_acq_rel);
    }
    return status;
  }
  if (dice < 60) return Amalgamate(coord, account, PickAccount(rng));
  if (dice < 75) {
    const Status status = WriteCheck(coord, account, amount);
    if (status.ok()) {
      // Penalty is zero by default; WriteCheck debits exactly `amount`.
      committed_delta_.fetch_sub(amount, std::memory_order_acq_rel);
    }
    return status;
  }
  return SendPayment(coord, account, PickAccount(rng), amount);
}

Status SmallBankWorkload::TotalBalance(txn::Coordinator* coord,
                                       int64_t* total) {
  // Chunked read-only transactions (a single huge read-set would conflict
  // with everything; the audit runs on a quiesced system anyway).
  int64_t sum = 0;
  constexpr uint64_t kChunk = 512;
  for (uint64_t start = 0; start < config_.num_accounts; start += kChunk) {
    const uint64_t end =
        std::min(config_.num_accounts, start + kChunk) - 1;
    PANDORA_RETURN_NOT_OK(coord->Begin());
    std::vector<std::pair<store::Key, std::string>> rows;
    PANDORA_RETURN_NOT_OK(coord->ReadRange(savings_, start, end, &rows));
    PANDORA_RETURN_NOT_OK(coord->ReadRange(checking_, start, end, &rows));
    PANDORA_RETURN_NOT_OK(coord->Commit());
    for (const auto& [key, value] : rows) sum += DecodeBalance(value);
  }
  *total = sum;
  return Status::OK();
}

}  // namespace workloads
}  // namespace pandora

#include "workloads/micro.h"

#include "common/coding.h"

namespace pandora {
namespace workloads {

Status MicroWorkload::Setup(cluster::Cluster* cluster) {
  // A hot set larger than the table would index absent keys.
  if (config_.hot_keys > config_.num_keys) {
    config_.hot_keys = config_.num_keys;
  }
  table_ = cluster->CreateTable("micro", /*value_size=*/40,
                                config_.num_keys);
  if (config_.zipf_theta > 0) {
    const uint64_t range =
        config_.hot_keys > 0 ? config_.hot_keys : config_.num_keys;
    zipf_ = std::make_unique<ZipfGenerator>(range, config_.zipf_theta,
                                            /*seed=*/1);
  }
  char value[40] = {0};
  for (store::Key key = 0; key < config_.num_keys; ++key) {
    EncodeFixed64(value, key);
    PANDORA_RETURN_NOT_OK(cluster->LoadRow(table_, key, Slice(value, 40)));
  }
  return Status::OK();
}

store::Key MicroWorkload::PickKey(Random* rng) const {
  if (zipf_ != nullptr) return zipf_->Sample(rng);
  const uint64_t range =
      config_.hot_keys > 0 ? config_.hot_keys : config_.num_keys;
  return rng->Uniform(range);
}

Status MicroWorkload::RunTransaction(txn::Coordinator* coord, Random* rng) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  for (uint32_t op = 0; op < config_.ops_per_txn; ++op) {
    const store::Key key = PickKey(rng);
    if (rng->PercentTrue(config_.write_percent)) {
      char value[40] = {0};
      EncodeFixed64(value, rng->Next());
      EncodeFixed64(value + 8, key);
      PANDORA_RETURN_NOT_OK(coord->Write(table_, key, Slice(value, 40)));
    } else {
      std::string value;
      PANDORA_RETURN_NOT_OK(coord->Read(table_, key, &value));
    }
  }
  return coord->Commit();
}

}  // namespace workloads
}  // namespace pandora

#include "workloads/tatp.h"

#include "common/coding.h"

namespace pandora {
namespace workloads {

namespace {

constexpr uint32_t kValueSize = 48;

void FillValue(char* buf, uint64_t tag) {
  std::memset(buf, 0, kValueSize);
  EncodeFixed64(buf, tag);
}

}  // namespace

Status TatpWorkload::Setup(cluster::Cluster* cluster) {
  const uint64_t n = config_.subscribers;
  subscriber_ = cluster->CreateTable("subscriber", kValueSize, n);
  access_info_ = cluster->CreateTable("access_info", kValueSize, n * 4);
  special_facility_ =
      cluster->CreateTable("special_facility", kValueSize, n * 4);
  call_forwarding_ =
      cluster->CreateTable("call_forwarding", kValueSize, n * 4 * 3);

  char value[kValueSize];
  for (uint64_t s = 0; s < n; ++s) {
    FillValue(value, s);
    PANDORA_RETURN_NOT_OK(cluster->LoadRow(subscriber_, SubscriberKey(s),
                                           Slice(value, kValueSize)));
    for (uint32_t ai = 1; ai <= AiTypesOf(s); ++ai) {
      PANDORA_RETURN_NOT_OK(cluster->LoadRow(
          access_info_, AccessInfoKey(s, ai), Slice(value, kValueSize)));
    }
    for (uint32_t sf = 1; sf <= SfTypesOf(s); ++sf) {
      PANDORA_RETURN_NOT_OK(
          cluster->LoadRow(special_facility_, SpecialFacilityKey(s, sf),
                           Slice(value, kValueSize)));
      // Half the facilities start with a forwarding entry at time 0.
      if (s % 2 == 0) {
        PANDORA_RETURN_NOT_OK(
            cluster->LoadRow(call_forwarding_,
                             CallForwardingKey(s, sf, 0),
                             Slice(value, kValueSize)));
      }
    }
  }
  return Status::OK();
}

Status TatpWorkload::GetSubscriberData(txn::Coordinator* coord,
                                       uint64_t s) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  PANDORA_RETURN_NOT_OK(coord->Read(subscriber_, SubscriberKey(s), &value));
  return coord->Commit();
}

Status TatpWorkload::GetNewDestination(txn::Coordinator* coord, uint64_t s,
                                       uint32_t sf_type,
                                       uint32_t start_time) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  Status status =
      coord->Read(special_facility_, SpecialFacilityKey(s, sf_type),
                  &value);
  if (!status.ok() && !status.IsNotFound()) return status;
  if (status.ok()) {
    status = coord->Read(call_forwarding_,
                         CallForwardingKey(s, sf_type, start_time), &value);
    if (!status.ok() && !status.IsNotFound()) return status;
  }
  return coord->Commit();
}

Status TatpWorkload::GetAccessData(txn::Coordinator* coord, uint64_t s,
                                   uint32_t ai_type) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string value;
  const Status status =
      coord->Read(access_info_, AccessInfoKey(s, ai_type), &value);
  if (!status.ok() && !status.IsNotFound()) return status;
  return coord->Commit();
}

Status TatpWorkload::UpdateSubscriberData(txn::Coordinator* coord,
                                          uint64_t s, uint32_t sf_type,
                                          Random* rng) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  char value[kValueSize];
  FillValue(value, rng->Next());
  PANDORA_RETURN_NOT_OK(coord->Write(subscriber_, SubscriberKey(s),
                                     Slice(value, kValueSize)));
  const Status status =
      coord->Write(special_facility_, SpecialFacilityKey(s, sf_type),
                   Slice(value, kValueSize));
  if (!status.ok() && !status.IsNotFound()) return status;
  return coord->Commit();
}

Status TatpWorkload::UpdateLocation(txn::Coordinator* coord, uint64_t s,
                                    Random* rng) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  char value[kValueSize];
  FillValue(value, rng->Next());
  PANDORA_RETURN_NOT_OK(coord->Write(subscriber_, SubscriberKey(s),
                                     Slice(value, kValueSize)));
  return coord->Commit();
}

Status TatpWorkload::InsertCallForwarding(txn::Coordinator* coord,
                                          uint64_t s, uint32_t sf_type,
                                          uint32_t start_time,
                                          Random* rng) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  std::string existing;
  PANDORA_RETURN_NOT_OK(
      coord->Read(subscriber_, SubscriberKey(s), &existing));
  char value[kValueSize];
  FillValue(value, rng->Next());
  PANDORA_RETURN_NOT_OK(
      coord->Insert(call_forwarding_,
                    CallForwardingKey(s, sf_type, start_time),
                    Slice(value, kValueSize)));
  return coord->Commit();
}

Status TatpWorkload::DeleteCallForwarding(txn::Coordinator* coord,
                                          uint64_t s, uint32_t sf_type,
                                          uint32_t start_time) {
  PANDORA_RETURN_NOT_OK(coord->Begin());
  const Status status = coord->Delete(
      call_forwarding_, CallForwardingKey(s, sf_type, start_time));
  if (!status.ok() && !status.IsNotFound()) return status;
  return coord->Commit();
}

Status TatpWorkload::RunTransaction(txn::Coordinator* coord, Random* rng) {
  const uint64_t s = rng->Uniform(config_.subscribers);
  const uint32_t sf_type = 1 + static_cast<uint32_t>(rng->Uniform(4));
  const uint32_t ai_type = 1 + static_cast<uint32_t>(rng->Uniform(4));
  const uint32_t start_time = static_cast<uint32_t>(rng->Uniform(3)) * 8;
  const uint32_t dice = static_cast<uint32_t>(rng->Uniform(100));
  // Standard TATP mix: 80% read-only.
  if (dice < 35) return GetSubscriberData(coord, s);
  if (dice < 45) return GetNewDestination(coord, s, sf_type, start_time);
  if (dice < 80) return GetAccessData(coord, s, ai_type);
  if (dice < 82) return UpdateSubscriberData(coord, s, sf_type, rng);
  if (dice < 96) return UpdateLocation(coord, s, rng);
  if (dice < 98) {
    return InsertCallForwarding(coord, s, sf_type, start_time, rng);
  }
  return DeleteCallForwarding(coord, s, sf_type, start_time);
}

}  // namespace workloads
}  // namespace pandora

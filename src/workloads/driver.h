#ifndef PANDORA_WORKLOADS_DRIVER_H_
#define PANDORA_WORKLOADS_DRIVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/fiber.h"
#include "common/histogram.h"
#include "recovery/recovery_manager.h"
#include "txn/system_gate.h"
#include "workloads/workload.h"

namespace pandora {
namespace workloads {

/// Experiment driver: runs a workload on a set of logical transaction
/// coordinators multiplexed over a small pool of OS threads, records a
/// committed-transactions timeline, and injects scheduled faults — the
/// machinery behind every fail-over figure in §6.
struct DriverConfig {
  /// OS worker threads (the container has 2 cores; logical coordinators
  /// beyond this are multiplexed, as the paper's 128 coordinators
  /// multiplex over its cores).
  uint32_t threads = 2;
  /// Logical transaction coordinators, spread round-robin over the
  /// cluster's compute nodes.
  uint32_t coordinators = 8;
  uint64_t duration_ms = 1000;
  /// Timeline bucket width.
  uint64_t bucket_ms = 50;
  /// Closed-loop pacing: each logical coordinator starts at most one
  /// transaction per `pace_us`. On the real testbed throughput scales
  /// with the number of (latency-bound) coordinators; with 2 simulation
  /// cores it would otherwise be thread-bound and fail-over would not
  /// show the per-coordinator capacity loss the figures report. 0 = off.
  uint64_t pace_us = 0;
  /// Stackful fibers per worker thread (common/fiber.h). At 1 (default)
  /// the worker blocks through every simulated RDMA wait, exactly as
  /// before fibers existed. Above 1 the worker runs its slots as N
  /// cooperative fibers, so one transaction's network stall is hidden by
  /// progress on another — the paper's coordinators-per-core scaling
  /// lever. Simulated RTT accounting is unchanged either way.
  uint32_t fibers_per_thread = 1;
  /// Tail-fairness lag budget for the fiber scheduler (ignored at 1
  /// fiber): before admitting a NEW transaction, a fiber checks whether
  /// the oldest runnable sibling is overdue past this budget and, if so,
  /// donates its slice to the backlog instead (bounded in-flight
  /// admission pacing). 0 disables pacing.
  uint64_t fiber_lag_budget_us = 150;
  /// Cooperative OS-thread yield cadence inside the fiber scheduler: with
  /// more worker threads than cores, a fiber worker that never blocks
  /// (fibers soak every simulated wait) would hold the core for full OS
  /// quanta (milliseconds), stalling the sibling worker's fibers — the
  /// dominant fibers8 p99 term. Yielding every ~50 µs of scheduler CPU
  /// bounds that stall at microsecond scale. 0 disables.
  uint64_t fiber_os_yield_us = 50;
  txn::TxnConfig txn;
  uint64_t seed = 42;
};

/// A scheduled fault.
struct FaultEvent {
  enum class Kind {
    kComputeCrash,    // crash compute node (by compute index)
    kComputeRestart,  // restart it and respawn its coordinators
    kMemoryCrash,     // crash memory node (by memory index)
    kReconfig,        // run `action` (live join / drain) under traffic
  };
  Kind kind = Kind::kComputeCrash;
  uint64_t at_ms = 0;
  uint32_t node_index = 0;
  /// kReconfig only: the reconfiguration step to run at `at_ms`, invoked
  /// from the fault thread while the workload keeps going (blocking there,
  /// so a long migration delays later faults, not the workload).
  std::function<void()> action = nullptr;
};

struct DriverResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t crashed = 0;
  double mtps = 0;  // Committed millions of txns per second (wall clock).
  /// Committed-throughput timeline, one entry per bucket_ms.
  std::vector<double> timeline_mtps;
  /// Aggregated coordinator counters.
  txn::TxnStats totals;
  /// Commit latency (wall time of committed transactions).
  LatencyHistogram commit_latency;
  /// Commit-latency percentiles, precomputed from commit_latency.
  uint64_t latency_p50_ns = 0;
  uint64_t latency_p95_ns = 0;
  uint64_t latency_p99_ns = 0;
  /// Fiber-scheduler accounting, summed over workers (all zero when
  /// fibers_per_thread <= 1). wait_ns is the simulated wait suspended
  /// through the schedulers; idle_ns the wall time no fiber was runnable.
  uint64_t fiber_yields = 0;
  uint64_t fiber_wait_ns = 0;
  uint64_t fiber_idle_ns = 0;
  /// Worst resume lag across all workers' schedulers (max, not sum): how
  /// long a runnable fiber sat undispatched. The starvation metric.
  uint64_t fiber_max_resume_lag_ns = 0;
  /// Admissions deferred by lag-budget pacing, summed over workers.
  uint64_t fiber_paced_admissions = 0;
  /// fiber_wait_ns / max(fiber_idle_ns, 1): how many overlapped waits
  /// each truly-idle nanosecond paid for. ~1 = no overlap; ~N = N-way
  /// overlap; very large = the scheduler always had a runnable fiber
  /// (every wait hidden). 1.0 when nothing was suspended at all.
  double overlap_factor = 1.0;
};

class Driver {
 public:
  Driver(cluster::Cluster* cluster, recovery::RecoveryManager* manager,
         txn::SystemGate* gate, Workload* workload,
         const DriverConfig& config);

  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Schedules a fault before Run().
  void AddFault(const FaultEvent& event) { faults_.push_back(event); }

  /// Runs the workload for duration_ms and returns the aggregate result.
  DriverResult Run();

 private:
  struct Slot {
    rdma::NodeId node = rdma::kInvalidNodeId;
    uint32_t compute_index = 0;
    std::atomic<txn::Coordinator*> coord{nullptr};
    uint64_t next_allowed_ns = 0;  // Pacing deadline (owner thread only).
  };

  void WorkerLoop(uint32_t worker_index, uint64_t start_ns,
                  uint64_t deadline_ns, LatencyHistogram* latency);
  void FiberWorkerLoop(uint32_t worker_index, uint64_t start_ns,
                       uint64_t deadline_ns, LatencyHistogram* latency,
                       FiberScheduler::Stats* fiber_stats);
  /// Runs one transaction on the slot's coordinator and accounts the
  /// outcome (shared by the blocking and fiber worker loops).
  void RunSlotTxn(Slot* slot, Random* rng, uint64_t start_ns,
                  LatencyHistogram* latency);
  void FaultLoop(uint64_t start_ns);
  txn::Coordinator* SpawnCoordinator(uint32_t compute_index);

  // Rejoins a compute node that was fenced by a failure-detector false
  // positive: waits for its recovery to finish, restores its links, and
  // respawns its coordinators with fresh coordinator-ids.
  void RejoinFencedNode(rdma::NodeId node);

  cluster::Cluster* cluster_;
  recovery::RecoveryManager* manager_;
  txn::SystemGate* gate_;
  Workload* workload_;
  DriverConfig config_;
  std::vector<FaultEvent> faults_;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::mutex coords_mu_;  // Guards coords_ growth (spawn/respawn).
  std::vector<std::unique_ptr<txn::Coordinator>> coords_;

  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> bucket_commits_;
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> crashed_{0};
  /// Rejoin critical section; a cooperative flag instead of a mutex so a
  /// fiber suspended mid-rejoin cannot deadlock its worker thread.
  std::atomic<bool> rejoin_busy_{false};
};

}  // namespace workloads
}  // namespace pandora

#endif  // PANDORA_WORKLOADS_DRIVER_H_

#ifndef PANDORA_WORKLOADS_TATP_H_
#define PANDORA_WORKLOADS_TATP_H_

#include <string>

#include "workloads/workload.h"

namespace pandora {
namespace workloads {

/// TATP [1]: 4 tables (subscriber, access_info, special_facility,
/// call_forwarding) with 48 B values (§4.1) and the standard 7-transaction
/// mix, 80% of which is read-only.
struct TatpConfig {
  uint64_t subscribers = 10'000;
};

class TatpWorkload : public Workload {
 public:
  explicit TatpWorkload(const TatpConfig& config) : config_(config) {}

  std::string name() const override { return "TATP"; }
  Status Setup(cluster::Cluster* cluster) override;
  Status RunTransaction(txn::Coordinator* coord, Random* rng) override;

  const TatpConfig& config() const { return config_; }

 private:
  // Composite keys flattened to 8 bytes: subscriber id in the high bits,
  // record type / time slot in the low bits.
  static store::Key SubscriberKey(uint64_t s) { return s; }
  static store::Key AccessInfoKey(uint64_t s, uint32_t ai_type) {
    return (s << 3) | ai_type;  // ai_type in 1..4
  }
  static store::Key SpecialFacilityKey(uint64_t s, uint32_t sf_type) {
    return (s << 3) | sf_type;  // sf_type in 1..4
  }
  static store::Key CallForwardingKey(uint64_t s, uint32_t sf_type,
                                      uint32_t start_time) {
    return (s << 5) | (sf_type << 2) | (start_time / 8);  // time 0/8/16
  }

  // Deterministic synthetic population shape.
  static uint32_t AiTypesOf(uint64_t s) { return (s % 4) + 1; }
  static uint32_t SfTypesOf(uint64_t s) { return (s % 4) + 1; }

  Status GetSubscriberData(txn::Coordinator* coord, uint64_t s);
  Status GetNewDestination(txn::Coordinator* coord, uint64_t s,
                           uint32_t sf_type, uint32_t start_time);
  Status GetAccessData(txn::Coordinator* coord, uint64_t s,
                       uint32_t ai_type);
  Status UpdateSubscriberData(txn::Coordinator* coord, uint64_t s,
                              uint32_t sf_type, Random* rng);
  Status UpdateLocation(txn::Coordinator* coord, uint64_t s, Random* rng);
  Status InsertCallForwarding(txn::Coordinator* coord, uint64_t s,
                              uint32_t sf_type, uint32_t start_time,
                              Random* rng);
  Status DeleteCallForwarding(txn::Coordinator* coord, uint64_t s,
                              uint32_t sf_type, uint32_t start_time);

  TatpConfig config_;
  store::TableId subscriber_ = 0;
  store::TableId access_info_ = 0;
  store::TableId special_facility_ = 0;
  store::TableId call_forwarding_ = 0;
};

}  // namespace workloads
}  // namespace pandora

#endif  // PANDORA_WORKLOADS_TATP_H_

#include "workloads/driver.h"

#include <algorithm>
#include <thread>

#include "common/clock.h"
#include "common/logging.h"

namespace pandora {
namespace workloads {

Driver::Driver(cluster::Cluster* cluster,
               recovery::RecoveryManager* manager, txn::SystemGate* gate,
               Workload* workload, const DriverConfig& config)
    : cluster_(cluster),
      manager_(manager),
      gate_(gate),
      workload_(workload),
      config_(config) {}

txn::Coordinator* Driver::SpawnCoordinator(uint32_t compute_index) {
  std::vector<uint16_t> ids;
  Status status = manager_->RegisterComputeNode(
      cluster_->compute(compute_index), 1, &ids);
  // Fresh-id exhaustion is transient while a recycling scan is still
  // reclaiming a fenced node's ids (§3.1.2) — a respawn can race ahead of
  // the scan that frees its predecessors. Wait for recycled ids instead of
  // aborting the run.
  const uint64_t deadline = NowMicros() + 2'000'000;
  while (status.IsResourceExhausted() && NowMicros() < deadline) {
    SleepForMicros(500);
    status = manager_->RegisterComputeNode(cluster_->compute(compute_index),
                                           1, &ids);
  }
  PANDORA_CHECK(status.ok());
  std::lock_guard<std::mutex> lock(coords_mu_);
  coords_.push_back(std::make_unique<txn::Coordinator>(
      cluster_, cluster_->compute(compute_index), ids[0], config_.txn,
      gate_));
  return coords_.back().get();
}

void Driver::RunSlotTxn(Slot* slot, Random* rng, uint64_t start_ns,
                        LatencyHistogram* latency) {
  txn::Coordinator* coord = slot->coord.load(std::memory_order_acquire);
  const uint64_t txn_start_ns = NowNanos();
  const Status status = workload_->RunTransaction(coord, rng);
  if (status.ok()) {
    const uint64_t end_ns = NowNanos();
    latency->Record(end_ns - txn_start_ns);
    committed_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t bucket =
        (end_ns - start_ns) / (config_.bucket_ms * 1'000'000);
    if (bucket < bucket_commits_.size()) {
      bucket_commits_[bucket]->fetch_add(1, std::memory_order_relaxed);
    }
  } else if (status.IsAborted() || status.IsBusy()) {
    aborted_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsPermissionDenied()) {
    // This node was fenced — usually a failure-detector false positive
    // under CPU pressure (its process is alive). Rejoin it with fresh
    // coordinator-ids instead of hammering revoked links.
    crashed_.fetch_add(1, std::memory_order_relaxed);
    RejoinFencedNode(slot->node);
  } else if (status.IsUnavailable()) {
    crashed_.fetch_add(1, std::memory_order_relaxed);
  }
  // NotFound / ResourceExhausted etc.: transaction-level no-ops.
}

void Driver::WorkerLoop(uint32_t worker_index, uint64_t start_ns,
                        uint64_t deadline_ns, LatencyHistogram* latency) {
  Random rng(config_.seed * 7919 + worker_index);
  // Round-robin over the slots this worker owns.
  std::vector<Slot*> mine;
  for (size_t i = worker_index; i < slots_.size();
       i += config_.threads) {
    mine.push_back(slots_[i].get());
  }
  if (mine.empty()) return;

  size_t next = 0;
  size_t skipped = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    const uint64_t now = NowNanos();
    if (now >= deadline_ns) break;
    Slot* slot = mine[next];
    next = (next + 1) % mine.size();
    txn::Coordinator* coord = slot->coord.load(std::memory_order_acquire);
    if (coord == nullptr || cluster_->fabric().IsHalted(slot->node)) {
      // Crashed and not (yet) respawned.
      if (++skipped >= mine.size()) {
        skipped = 0;
        SleepForMicros(50);  // All dead/idle? Don't spin hard.
      }
      continue;
    }
    if (config_.pace_us > 0 && now < slot->next_allowed_ns) {
      if (++skipped >= mine.size()) {
        skipped = 0;
        SleepForMicros(20);
      }
      continue;
    }
    skipped = 0;
    slot->next_allowed_ns = now + config_.pace_us * 1000;
    RunSlotTxn(slot, &rng, start_ns, latency);
  }
}

void Driver::FiberWorkerLoop(uint32_t worker_index, uint64_t start_ns,
                             uint64_t deadline_ns,
                             LatencyHistogram* latency,
                             FiberScheduler::Stats* fiber_stats) {
  // The worker's slots, partitioned over fibers_per_thread fibers. Each
  // fiber round-robins its own subset, so a slot stays pinned to one
  // fiber (and this one thread) for the whole run; the wait hook in
  // SpinUntilNanos/SleepForMicros does the actual overlapping.
  std::vector<Slot*> mine;
  for (size_t i = worker_index; i < slots_.size();
       i += config_.threads) {
    mine.push_back(slots_[i].get());
  }
  if (mine.empty()) return;
  const uint32_t fibers = static_cast<uint32_t>(
      std::min<size_t>(config_.fibers_per_thread, mine.size()));

  FiberScheduler::Options options;
  options.lag_budget_ns = config_.fiber_lag_budget_us * 1000;
  options.os_yield_every_ns = config_.fiber_os_yield_us * 1000;
  FiberScheduler scheduler(options);
  for (uint32_t f = 0; f < fibers; ++f) {
    std::vector<Slot*> owned;
    for (size_t i = f; i < mine.size(); i += fibers) {
      owned.push_back(mine[i]);
    }
    scheduler.Spawn([this, &scheduler, owned = std::move(owned),
                     worker_index, f, start_ns, deadline_ns, latency] {
      Random rng(config_.seed * 7919 + worker_index + 131 * (f + 1));
      size_t next = 0;
      size_t skipped = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        const uint64_t now = NowNanos();
        if (now >= deadline_ns) break;
        Slot* slot = owned[next];
        next = (next + 1) % owned.size();
        txn::Coordinator* coord =
            slot->coord.load(std::memory_order_acquire);
        if (coord == nullptr || cluster_->fabric().IsHalted(slot->node)) {
          if (++skipped >= owned.size()) {
            skipped = 0;
            SleepForMicros(50);  // Suspends this fiber, not the thread.
          }
          continue;
        }
        if (config_.pace_us > 0 && now < slot->next_allowed_ns) {
          if (++skipped >= owned.size()) {
            skipped = 0;
            // Deadline-aware pacing: suspend until the earliest live slot
            // becomes due instead of sleeping a fixed quantum.
            uint64_t earliest = UINT64_MAX;
            for (Slot* s : owned) {
              if (s->coord.load(std::memory_order_acquire) == nullptr) {
                continue;
              }
              earliest = std::min(earliest, s->next_allowed_ns);
            }
            if (earliest == UINT64_MAX) {
              SleepForMicros(50);
            } else {
              SpinUntilNanos(
                  std::min(std::max(earliest, now), deadline_ns));
            }
          }
          continue;
        }
        skipped = 0;
        // Bounded in-flight admission: if the scheduler is overdue past
        // its lag budget on already-admitted transactions, let the
        // backlog drain before starting another (the stop/deadline checks
        // re-run after the pacing suspension).
        if (scheduler.PaceAdmission()) continue;
        slot->next_allowed_ns = now + config_.pace_us * 1000;
        RunSlotTxn(slot, &rng, start_ns, latency);
      }
    });
  }
  scheduler.Run();
  *fiber_stats = scheduler.stats();
}

void Driver::RejoinFencedNode(rdma::NodeId node) {
  // Not a blocking mutex: the holder may be a *fiber* suspended mid-
  // rejoin on this very thread, and blocking the OS thread would prevent
  // the holder from ever resuming (and locking a mutex twice from one
  // thread is UB besides). The retry sleep goes through the fiber-aware
  // SleepForMicros, so waiting fibers yield cooperatively while a plain
  // thread degrades to a 200 µs-granularity lock.
  while (rejoin_busy_.exchange(true, std::memory_order_acquire)) {
    SleepForMicros(200);
  }
  struct Release {
    std::atomic<bool>* busy;
    ~Release() { busy->store(false, std::memory_order_release); }
  } release{&rejoin_busy_};
  if (cluster_->fabric().IsHalted(node)) return;  // Genuinely crashed.
  // Let the (false-positive) recovery finish before restoring the links —
  // restoring earlier would violate Cor1.
  const uint64_t deadline = NowMicros() + 2'000'000;
  while (manager_->pending_recoveries() > 0 && NowMicros() < deadline) {
    SleepForMicros(200);
  }
  if (cluster_->fabric().GetMemoryNode(0) != nullptr &&
      !cluster_->fabric().GetMemoryNode(0)->IsRevoked(node)) {
    return;  // Another worker already rejoined it.
  }
  PANDORA_LOG(kInfo) << "driver: rejoining fenced compute node " << node;
  cluster_->RestartComputeNode(node);
  for (auto& slot : slots_) {
    if (slot->node != node) continue;
    slot->coord.store(SpawnCoordinator(slot->compute_index),
                      std::memory_order_release);
  }
}

void Driver::FaultLoop(uint64_t start_ns) {
  std::vector<FaultEvent> events = faults_;
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at_ms < b.at_ms;
            });
  for (const FaultEvent& event : events) {
    const uint64_t target_ns = start_ns + event.at_ms * 1'000'000;
    while (NowNanos() < target_ns && !stop_.load()) SleepForMicros(200);
    if (stop_.load()) return;

    switch (event.kind) {
      case FaultEvent::Kind::kComputeCrash: {
        const rdma::NodeId node =
            cluster_->compute_node_id(event.node_index);
        PANDORA_LOG(kInfo) << "driver: crashing compute node " << node;
        cluster_->CrashComputeNode(node);
        break;
      }
      case FaultEvent::Kind::kComputeRestart: {
        const rdma::NodeId node =
            cluster_->compute_node_id(event.node_index);
        // Wait for the node's recovery before readmitting it (a fenced
        // node must not resume with stale rights).
        manager_->WaitForComputeRecovery(node, 2'000'000);
        PANDORA_LOG(kInfo) << "driver: restarting compute node " << node;
        cluster_->RestartComputeNode(node);
        for (auto& slot : slots_) {
          if (slot->node != node) continue;
          slot->coord.store(SpawnCoordinator(slot->compute_index),
                            std::memory_order_release);
        }
        break;
      }
      case FaultEvent::Kind::kMemoryCrash: {
        const rdma::NodeId node =
            cluster_->memory_node_id(event.node_index);
        PANDORA_LOG(kInfo) << "driver: crashing memory node " << node;
        cluster_->CrashMemoryNode(node);
        manager_->RecoverMemoryFailure(node);
        break;
      }
      case FaultEvent::Kind::kReconfig: {
        PANDORA_LOG(kInfo) << "driver: running scheduled reconfiguration";
        if (event.action) event.action();
        break;
      }
    }
  }
}

DriverResult Driver::Run() {
  const uint64_t buckets =
      (config_.duration_ms + config_.bucket_ms - 1) / config_.bucket_ms;
  bucket_commits_.clear();
  for (uint64_t b = 0; b < buckets; ++b) {
    bucket_commits_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }

  // Logical coordinators, round-robin over compute nodes.
  slots_.clear();
  for (uint32_t i = 0; i < config_.coordinators; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->compute_index = i % cluster_->num_compute_nodes();
    slot->node = cluster_->compute_node_id(slot->compute_index);
    slot->coord.store(SpawnCoordinator(slot->compute_index),
                      std::memory_order_release);
    slots_.push_back(std::move(slot));
  }

  const uint64_t start_ns = NowNanos();
  const uint64_t deadline_ns = start_ns + config_.duration_ms * 1'000'000;
  stop_.store(false);

  std::vector<std::thread> workers;
  std::vector<LatencyHistogram> latencies(config_.threads);
  std::vector<FiberScheduler::Stats> fiber_stats(config_.threads);
  for (uint32_t w = 0; w < config_.threads; ++w) {
    workers.emplace_back(
        [this, w, start_ns, deadline_ns, &latencies, &fiber_stats] {
          if (config_.fibers_per_thread > 1) {
            FiberWorkerLoop(w, start_ns, deadline_ns, &latencies[w],
                            &fiber_stats[w]);
          } else {
            WorkerLoop(w, start_ns, deadline_ns, &latencies[w]);
          }
        });
  }
  std::thread fault_thread([this, start_ns] { FaultLoop(start_ns); });

  for (auto& worker : workers) worker.join();
  stop_.store(true);
  fault_thread.join();
  const uint64_t end_ns = NowNanos();

  DriverResult result;
  result.committed = committed_.load();
  result.aborted = aborted_.load();
  result.crashed = crashed_.load();
  result.mtps = static_cast<double>(result.committed) /
                (static_cast<double>(end_ns - start_ns) / 1e9) / 1e6;
  const double bucket_seconds =
      static_cast<double>(config_.bucket_ms) / 1000.0;
  for (const auto& bucket : bucket_commits_) {
    result.timeline_mtps.push_back(
        static_cast<double>(bucket->load()) / bucket_seconds / 1e6);
  }
  for (const LatencyHistogram& latency : latencies) {
    result.commit_latency.Merge(latency);
  }
  result.latency_p50_ns = result.commit_latency.PercentileNanos(50);
  result.latency_p95_ns = result.commit_latency.PercentileNanos(95);
  result.latency_p99_ns = result.commit_latency.PercentileNanos(99);
  for (const FiberScheduler::Stats& stats : fiber_stats) {
    result.fiber_yields += stats.yields;
    result.fiber_wait_ns += stats.wait_ns;
    result.fiber_idle_ns += stats.idle_ns;
    result.fiber_max_resume_lag_ns =
        std::max(result.fiber_max_resume_lag_ns, stats.max_resume_lag_ns);
    result.fiber_paced_admissions += stats.paced_admissions;
  }
  // Idle of zero means every simulated wait was hidden behind another
  // fiber's work (perfect overlap), so divide by at-least-one nanosecond
  // rather than falling back to "no overlap".
  result.overlap_factor =
      result.fiber_wait_ns > 0
          ? static_cast<double>(result.fiber_wait_ns) /
                static_cast<double>(
                    std::max<uint64_t>(result.fiber_idle_ns, 1))
          : 1.0;
  {
    std::lock_guard<std::mutex> lock(coords_mu_);
    for (const auto& coord : coords_) {
      const txn::TxnStats& stats = coord->stats();
      result.totals.committed += stats.committed;
      result.totals.aborted += stats.aborted;
      result.totals.lock_conflicts += stats.lock_conflicts;
      result.totals.validation_failures += stats.validation_failures;
      result.totals.locks_stolen += stats.locks_stolen;
      result.totals.stray_reads_ignored += stats.stray_reads_ignored;
      result.totals.stall_retries += stats.stall_retries;
      result.totals.log_records_written += stats.log_records_written;
      result.totals.nvm_flushes += stats.nvm_flushes;
      result.totals.crashed += stats.crashed;
      result.totals.execution_rtts += stats.execution_rtts;
      result.totals.commit_rtts += stats.commit_rtts;
      result.totals.doorbells += stats.doorbells;
      result.totals.bug_injections += stats.bug_injections;
      result.totals.placement_hits += stats.placement_hits;
      result.totals.placement_misses += stats.placement_misses;
      result.totals.reconfig_aborts += stats.reconfig_aborts;
      result.totals.reconfig_retries += stats.reconfig_retries;
    }
  }
  result.totals.fiber_yields = result.fiber_yields;
  result.totals.max_resume_lag_ns = result.fiber_max_resume_lag_ns;
  result.totals.paced_admissions = result.fiber_paced_admissions;
  return result;
}

}  // namespace workloads
}  // namespace pandora

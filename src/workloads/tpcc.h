#ifndef PANDORA_WORKLOADS_TPCC_H_
#define PANDORA_WORKLOADS_TPCC_H_

#include <string>

#include "workloads/workload.h"

namespace pandora {
namespace workloads {

/// TPC-C [3] mapped onto the KV API, as FORD evaluates it (§4.1: 9 tables,
/// 672 B customer rows, 95% writes): warehouse, district, customer,
/// history, new-order, order, order-line, item, stock, and the five
/// standard transaction profiles (NewOrder 45%, Payment 43%, OrderStatus /
/// Delivery / StockLevel 4% each). Orders and order-lines are created at
/// runtime through transactional inserts; per-district sequence numbers
/// live inside the district rows.
struct TpccConfig {
  uint32_t warehouses = 2;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 300;
  uint32_t items = 1000;
  /// Capacity headroom for runtime-inserted orders per district.
  uint32_t max_orders_per_district = 4096;
};

class TpccWorkload : public Workload {
 public:
  explicit TpccWorkload(const TpccConfig& config) : config_(config) {}

  std::string name() const override { return "TPC-C"; }
  Status Setup(cluster::Cluster* cluster) override;
  Status RunTransaction(txn::Coordinator* coord, Random* rng) override;

  const TpccConfig& config() const { return config_; }

  /// Per-profile entry points (public for tests).
  Status NewOrder(txn::Coordinator* coord, Random* rng);
  Status Payment(txn::Coordinator* coord, Random* rng);
  Status OrderStatus(txn::Coordinator* coord, Random* rng);
  Status Delivery(txn::Coordinator* coord, Random* rng);
  Status StockLevel(txn::Coordinator* coord, Random* rng);

 private:
  // --- Flattened 8-byte keys -------------------------------------------
  uint64_t DistrictIndex(uint32_t w, uint32_t d) const {
    return static_cast<uint64_t>(w) * config_.districts_per_warehouse + d;
  }
  store::Key WarehouseKey(uint32_t w) const { return w; }
  store::Key DistrictKey(uint32_t w, uint32_t d) const {
    return DistrictIndex(w, d);
  }
  store::Key CustomerKey(uint32_t w, uint32_t d, uint32_t c) const {
    return DistrictIndex(w, d) * config_.customers_per_district + c;
  }
  store::Key ItemKey(uint32_t i) const { return i; }
  store::Key StockKey(uint32_t w, uint32_t i) const {
    return static_cast<uint64_t>(w) * config_.items + i;
  }
  store::Key OrderKey(uint32_t w, uint32_t d, uint64_t o_id) const {
    return (DistrictIndex(w, d) << 24) | o_id;
  }
  store::Key OrderLineKey(uint32_t w, uint32_t d, uint64_t o_id,
                          uint32_t line) const {
    return (OrderKey(w, d, o_id) << 4) | line;
  }

  uint32_t PickWarehouse(Random* rng) const {
    return static_cast<uint32_t>(rng->Uniform(config_.warehouses));
  }
  uint32_t PickDistrict(Random* rng) const {
    return static_cast<uint32_t>(
        rng->Uniform(config_.districts_per_warehouse));
  }
  uint32_t PickCustomer(Random* rng) const {
    return static_cast<uint32_t>(
        rng->Uniform(config_.customers_per_district));
  }

  TpccConfig config_;
  store::TableId warehouse_ = 0;
  store::TableId district_ = 0;
  store::TableId customer_ = 0;
  store::TableId history_ = 0;
  store::TableId new_order_ = 0;
  store::TableId order_ = 0;
  store::TableId order_line_ = 0;
  store::TableId item_ = 0;
  store::TableId stock_ = 0;
};

}  // namespace workloads
}  // namespace pandora

#endif  // PANDORA_WORKLOADS_TPCC_H_

#ifndef PANDORA_RDMA_QUEUE_PAIR_H_
#define PANDORA_RDMA_QUEUE_PAIR_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "rdma/network_model.h"
#include "rdma/protection_domain.h"
#include "rdma/types.h"
#include "rdma/verb_schedule.h"

namespace pandora {
namespace rdma {

/// A reliable-connected (RC) queue pair from one compute server to one
/// memory server. Verbs are synchronous: the call applies the operation at
/// the remote region and returns after the simulated round-trip time.
///
/// RC semantics preserved from real hardware (§2.1 "Consistency and Failure
/// Model"): verbs issued on the same QP apply in issue order, and the
/// transport neither drops nor duplicates messages (retransmission is the
/// transport's job). Failure semantics: if this QP's compute node has been
/// halted (crash emulation) the verb does not reach memory at all; if the
/// node's rights were revoked at the memory server (active-link
/// termination) the verb is dropped at the remote NIC.
class QueuePair {
 public:
  QueuePair(NodeId src, ProtectionDomain* remote, const NetworkModel* net,
            const std::atomic<bool>* src_halted,
            VerbHookSlot* hook_slot = nullptr)
      : src_(src),
        remote_(remote),
        net_(net),
        src_halted_(src_halted),
        hook_slot_(hook_slot) {}

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  NodeId src() const { return src_; }
  NodeId dst() const { return remote_->owner(); }

  /// One-sided RDMA Read of `len` bytes at (rkey, offset) into `dst`.
  Status Read(RKey rkey, uint64_t offset, void* dst, size_t len);

  /// One-sided RDMA Write of `len` bytes from `src` to (rkey, offset).
  Status Write(RKey rkey, uint64_t offset, const void* src, size_t len);

  /// One-sided RDMA Compare-And-Swap on the 64-bit word at (rkey, offset).
  /// Always returns the observed pre-operation value in `*observed`; the
  /// swap succeeded iff *observed == expected (hardware semantics).
  Status CompareSwap(RKey rkey, uint64_t offset, uint64_t expected,
                     uint64_t desired, uint64_t* observed);

  /// One-sided RDMA Fetch-And-Add on the 64-bit word at (rkey, offset).
  Status FetchAdd(RKey rkey, uint64_t offset, uint64_t delta,
                  uint64_t* old_value);

  /// --- Deferred-completion variants (doorbell batching) ---------------
  /// Apply the operation immediately and report the verb's RTT without
  /// waiting. VerbBatch uses these to model a group of verbs issued in the
  /// same doorbell: they fly in parallel, so the batch completes after the
  /// *maximum* RTT, not the sum.
  Status PostRead(RKey rkey, uint64_t offset, void* dst, size_t len,
                  uint64_t* rtt_ns);
  Status PostWrite(RKey rkey, uint64_t offset, const void* src, size_t len,
                   uint64_t* rtt_ns);
  Status PostCompareSwap(RKey rkey, uint64_t offset, uint64_t expected,
                         uint64_t desired, uint64_t* observed,
                         uint64_t* rtt_ns);

 private:
  Status CheckHalted() const;
  /// A verb the schedule hook dropped fails exactly like a verb issued by
  /// a freshly-dead node.
  Status DroppedVerbStatus() const;
  void Wait(uint64_t rtt_ns) const;

  NodeId src_;
  ProtectionDomain* remote_;
  const NetworkModel* net_;
  const std::atomic<bool>* src_halted_;
  /// The Fabric's verb-schedule hook slot (nullptr for QPs built outside a
  /// fabric). One relaxed load per verb when no hook is installed.
  VerbHookSlot* hook_slot_;
  /// Per-QP verb issue index, tagged into VerbDesc::qp_seq.
  uint64_t seq_ = 0;
};

/// Groups verbs (possibly across several queue pairs / memory servers) that
/// the coordinator issues back-to-back without waiting for completions —
/// e.g. "write the undo log to all f+1 log servers" or "apply the write to
/// the primary and every backup". The batch completes after the slowest
/// verb's round trip.
class VerbBatch {
 public:
  VerbBatch() = default;

  void Read(QueuePair* qp, RKey rkey, uint64_t offset, void* dst,
            size_t len);
  void Write(QueuePair* qp, RKey rkey, uint64_t offset, const void* src,
             size_t len);
  void CompareSwap(QueuePair* qp, RKey rkey, uint64_t offset,
                   uint64_t expected, uint64_t desired, uint64_t* observed);

  /// Waits out the slowest round trip; returns the first verb error, if any.
  Status Execute();

  /// Slowest round trip posted so far. An OrderedBatch chain that fires in
  /// the same doorbell group passes this to its Execute() so one wait
  /// covers both; the caller then drains this batch with Collect().
  uint64_t pending_max_rtt_ns() const { return max_rtt_ns_; }

  /// Returns the first verb error and resets, without waiting — for a
  /// batch whose round trip was covered by another wait in the same
  /// doorbell group.
  Status Collect();

  size_t size() const { return count_; }

  /// Simulated nanoseconds the previous Execute() waited out — the slowest
  /// single round trip, never a per-verb sum. Deterministic, unlike
  /// wall-clock measurements of the spin wait.
  uint64_t last_wait_ns() const { return last_wait_ns_; }

 private:
  void Record(const Status& status, uint64_t rtt_ns);

  Status first_error_;
  uint64_t max_rtt_ns_ = 0;
  uint64_t last_wait_ns_ = 0;
  size_t count_ = 0;
};

}  // namespace rdma
}  // namespace pandora

#endif  // PANDORA_RDMA_QUEUE_PAIR_H_

#include "rdma/ordered_batch.h"

#include "common/clock.h"

namespace pandora {
namespace rdma {

size_t OrderedBatch::Record(const Status& status, uint64_t rtt_ns) {
  statuses_.push_back(status);
  if (!status.ok()) {
    errored_ = true;
    if (first_error_.ok()) first_error_ = status;
  }
  if (rtt_ns > max_rtt_ns_) max_rtt_ns_ = rtt_ns;
  return statuses_.size() - 1;
}

size_t OrderedBatch::Read(RKey rkey, uint64_t offset, void* dst,
                          size_t len) {
  if (errored_) return Record(Status::Aborted("work request flushed"), 0);
  uint64_t rtt = 0;
  const Status status = qp_->PostRead(rkey, offset, dst, len, &rtt);
  return Record(status, rtt);
}

size_t OrderedBatch::Write(RKey rkey, uint64_t offset, const void* src,
                           size_t len) {
  if (errored_) return Record(Status::Aborted("work request flushed"), 0);
  uint64_t rtt = 0;
  const Status status = qp_->PostWrite(rkey, offset, src, len, &rtt);
  return Record(status, rtt);
}

size_t OrderedBatch::CompareSwap(RKey rkey, uint64_t offset,
                                 uint64_t expected, uint64_t desired,
                                 uint64_t* observed) {
  if (errored_) return Record(Status::Aborted("work request flushed"), 0);
  uint64_t rtt = 0;
  const Status status =
      qp_->PostCompareSwap(rkey, offset, expected, desired, observed, &rtt);
  return Record(status, rtt);
}

Status OrderedBatch::Execute(uint64_t extra_rtt_ns) {
  const uint64_t wait_ns =
      max_rtt_ns_ > extra_rtt_ns ? max_rtt_ns_ : extra_rtt_ns;
  last_wait_ns_ = wait_ns;
  if (wait_ns > 0) SpinForNanos(wait_ns);
  Status result = first_error_;
  first_error_ = Status::OK();
  statuses_.clear();
  max_rtt_ns_ = 0;
  errored_ = false;
  return result;
}

Status OrderedBatch::Collect() {
  Status result = first_error_;
  first_error_ = Status::OK();
  statuses_.clear();
  max_rtt_ns_ = 0;
  errored_ = false;
  return result;
}

}  // namespace rdma
}  // namespace pandora

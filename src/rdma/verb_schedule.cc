#include "rdma/verb_schedule.h"

namespace pandora {
namespace rdma {

namespace {
thread_local int g_verb_phase = -1;
}  // namespace

const char* VerbKindName(VerbKind kind) {
  switch (kind) {
    case VerbKind::kRead:
      return "READ";
    case VerbKind::kWrite:
      return "WRITE";
    case VerbKind::kCompareSwap:
      return "CAS";
    case VerbKind::kFetchAdd:
      return "FAA";
  }
  return "?";
}

void SetVerbPhase(int phase) { g_verb_phase = phase; }

int CurrentVerbPhase() { return g_verb_phase; }

}  // namespace rdma
}  // namespace pandora

#ifndef PANDORA_RDMA_NETWORK_MODEL_H_
#define PANDORA_RDMA_NETWORK_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace pandora {
namespace rdma {

/// Latency/bandwidth parameters for the simulated fabric.
///
/// Defaults approximate the paper's testbed: 100 Gbps links with low-µs RDMA
/// round trips (§4.1, §3.2.4 "RDMA round-trip times are in the low µs
/// range"). Setting `one_way_ns = 0` disables latency simulation entirely
/// (useful for unit tests, which exercise semantics rather than timing).
struct NetworkConfig {
  /// One-way propagation + NIC processing latency per message.
  uint64_t one_way_ns = 1500;
  /// Serialization cost per payload byte. 100 Gbps = 12.5 GB/s = 0.08 ns/B.
  double per_byte_ns = 0.08;

  bool latency_enabled() const { return one_way_ns != 0 || per_byte_ns != 0; }
};

/// Computes verb completion latency. Stateless and shared by all queue
/// pairs; jitter-free so benchmark runs are reproducible.
class NetworkModel {
 public:
  explicit NetworkModel(const NetworkConfig& config) : config_(config) {}

  const NetworkConfig& config() const { return config_; }
  bool latency_enabled() const { return config_.latency_enabled(); }

  /// Round-trip time for a verb carrying `request_bytes` to the memory
  /// server and `response_bytes` back. CAS/FAA carry 8 bytes each way;
  /// reads carry the payload back; writes carry it out.
  uint64_t RttNanos(size_t request_bytes, size_t response_bytes) const {
    return 2 * config_.one_way_ns +
           static_cast<uint64_t>(
               config_.per_byte_ns *
               static_cast<double>(request_bytes + response_bytes));
  }

 private:
  NetworkConfig config_;
};

}  // namespace rdma
}  // namespace pandora

#endif  // PANDORA_RDMA_NETWORK_MODEL_H_

#ifndef PANDORA_RDMA_VERB_SCHEDULE_H_
#define PANDORA_RDMA_VERB_SCHEDULE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "rdma/types.h"

namespace pandora {
namespace rdma {

/// The four one-sided verb kinds the simulated fabric carries.
enum class VerbKind { kRead, kWrite, kCompareSwap, kFetchAdd };

const char* VerbKindName(VerbKind kind);

/// True for verbs that mutate remote memory (everything but a read).
inline bool VerbMutates(VerbKind kind) { return kind != VerbKind::kRead; }

/// Description of one verb at apply time, handed to the schedule hook
/// before the operation lands at the remote region.
struct VerbDesc {
  NodeId src = kInvalidNodeId;  // issuing compute node
  NodeId dst = kInvalidNodeId;  // target memory node
  VerbKind kind = VerbKind::kRead;
  RKey rkey = kInvalidRKey;
  uint64_t offset = 0;
  size_t len = 0;
  /// Per-queue-pair issue index (0-based, monotonic over the QP's life).
  uint64_t qp_seq = 0;
  /// The issuing thread's protocol phase: the ordinal of the most recent
  /// txn::CrashPoint the thread visited (-1 outside a crash-hooked
  /// protocol section). See SetVerbPhase.
  int phase = -1;
};

/// Sub-phase sync points for the litmus framework: a hook installed on the
/// Fabric intercepts every one-sided verb at apply time. OnVerbIssue runs
/// *before* the operation lands at remote memory and may block (hold the
/// verb) until a schedule controller releases it — inside a fiber the wait
/// must suspend the fiber (use SleepForMicros-style waits), so a held verb
/// never blocks sibling fibers on the same worker thread. Returning false
/// drops the verb without applying it (the controller has killed the
/// issuing node mid-verb); the queue pair then reports the same
/// Unavailable error a real process death would produce.
///
/// RC in-order delivery per QP is preserved by construction: verbs issue
/// synchronously on their QP, so holding verb i blocks the issuing
/// thread/fiber and verb i+1 of the same QP cannot even be posted until i
/// applied.
class VerbScheduleHook {
 public:
  virtual ~VerbScheduleHook() = default;

  /// Called before the verb applies. May block. Return false to drop the
  /// verb (issuing node killed mid-verb).
  virtual bool OnVerbIssue(const VerbDesc& desc) = 0;

  /// Called after the verb applied at remote memory (successors ordered
  /// behind this verb may now be released). Not called for dropped or
  /// errored verbs.
  virtual void OnVerbApplied(const VerbDesc& desc) {}
};

/// Shared hook slot owned by the Fabric and referenced by every QueuePair.
/// The no-hook fast path is one relaxed atomic load per verb; `active`
/// ripcords uninstallation: Fabric::set_verb_hook(nullptr) waits until no
/// verb is inside a hook callback before returning, so the caller may
/// destroy the hook immediately afterwards.
struct VerbHookSlot {
  std::atomic<VerbScheduleHook*> hook{nullptr};
  std::atomic<int> active{0};
};

/// --- Protocol-phase tagging -------------------------------------------
/// The txn layer's crash-hook path tags the issuing thread with the
/// ordinal of the crash point it most recently visited; every verb the
/// thread issues afterwards carries that tag in VerbDesc::phase. Thread-
/// local, so concurrent coordinators do not interfere; -1 means "no
/// protocol phase known".
void SetVerbPhase(int phase);
int CurrentVerbPhase();

}  // namespace rdma
}  // namespace pandora

#endif  // PANDORA_RDMA_VERB_SCHEDULE_H_

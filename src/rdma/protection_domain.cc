#include "rdma/protection_domain.h"

#include <utility>

#include "common/atomic_copy.h"
#include "common/logging.h"

namespace pandora {
namespace rdma {

ProtectionDomain::ProtectionDomain(NodeId owner) : owner_(owner) {}

RKey ProtectionDomain::RegisterRegion(size_t size, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t index = num_regions_.load(std::memory_order_relaxed);
  PANDORA_CHECK(index < kMaxRegions);
  const RKey rkey = static_cast<RKey>(index);
  regions_[index] =
      std::make_unique<MemoryRegion>(rkey, size, std::move(name));
  // Publish the slot: data-path readers acquire num_regions_ and only then
  // dereference regions_[rkey].
  num_regions_.store(index + 1, std::memory_order_release);
  return rkey;
}

MemoryRegion* ProtectionDomain::GetRegion(RKey rkey) {
  if (rkey >= num_regions_.load(std::memory_order_acquire)) return nullptr;
  return regions_[rkey].get();
}

void ProtectionDomain::RevokeNode(NodeId node) { revoked_.Set(node); }

void ProtectionDomain::RestoreNode(NodeId node) { revoked_.Clear(node); }

bool ProtectionDomain::IsRevoked(NodeId node) const {
  return revoked_.Test(node);
}

Status ProtectionDomain::Check(NodeId src, RKey rkey, uint64_t offset,
                               size_t len, size_t alignment,
                               const MemoryRegion** region) const {
  if (halted_.load(std::memory_order_acquire)) {
    return Status::Unavailable("memory server crashed");
  }
  if (revoked_.Test(src)) {
    return Status::PermissionDenied("RDMA rights revoked (link terminated)");
  }
  if (rkey >= num_regions_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("unknown rkey");
  }
  const MemoryRegion* r = regions_[rkey].get();
  if (!r->Contains(offset, len)) {
    return Status::InvalidArgument("access outside region bounds");
  }
  if (offset % alignment != 0) {
    return Status::InvalidArgument("misaligned access");
  }
  *region = r;
  return Status::OK();
}

Status ProtectionDomain::ExecuteRead(NodeId src, RKey rkey, uint64_t offset,
                                     void* dst, size_t len) const {
  const MemoryRegion* region;
  PANDORA_RETURN_NOT_OK(Check(src, rkey, offset, len, /*alignment=*/8,
                              &region));
  AtomicCopyFromRegion(dst, region->base() + offset, len);
  return Status::OK();
}

Status ProtectionDomain::ExecuteWrite(NodeId src, RKey rkey, uint64_t offset,
                                      const void* from, size_t len) {
  const MemoryRegion* region;
  PANDORA_RETURN_NOT_OK(Check(src, rkey, offset, len, /*alignment=*/8,
                              &region));
  AtomicCopyToRegion(const_cast<char*>(region->base()) + offset, from, len);
  return Status::OK();
}

Status ProtectionDomain::ExecuteCompareSwap(NodeId src, RKey rkey,
                                            uint64_t offset,
                                            uint64_t expected,
                                            uint64_t desired,
                                            uint64_t* observed) {
  const MemoryRegion* region;
  PANDORA_RETURN_NOT_OK(Check(src, rkey, offset, sizeof(uint64_t),
                              /*alignment=*/8, &region));
  AtomicCas64(const_cast<char*>(region->base()) + offset, expected, desired,
              observed);
  // Like the hardware verb, a value mismatch is not an error: the verb
  // completes successfully and returns the observed value.
  return Status::OK();
}

Status ProtectionDomain::ExecuteFetchAdd(NodeId src, RKey rkey,
                                         uint64_t offset, uint64_t delta,
                                         uint64_t* old_value) {
  const MemoryRegion* region;
  PANDORA_RETURN_NOT_OK(Check(src, rkey, offset, sizeof(uint64_t),
                              /*alignment=*/8, &region));
  const uint64_t old =
      AtomicFetchAdd64(const_cast<char*>(region->base()) + offset, delta);
  if (old_value != nullptr) *old_value = old;
  return Status::OK();
}

}  // namespace rdma
}  // namespace pandora

#include "rdma/fabric.h"

#include <thread>

#include "common/logging.h"

namespace pandora {
namespace rdma {

Fabric::Fabric(const NetworkConfig& config)
    : net_(config),
      halted_(std::make_unique<std::array<std::atomic<bool>, kMaxNodes>>()) {
  for (auto& flag : *halted_) flag.store(false, std::memory_order_relaxed);
}

ProtectionDomain* Fabric::AttachMemoryNode(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, pd] : memory_nodes_) {
    PANDORA_CHECK(id != node);
  }
  memory_nodes_.emplace_back(node, std::make_unique<ProtectionDomain>(node));
  return memory_nodes_.back().second.get();
}

ProtectionDomain* Fabric::GetMemoryNode(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, pd] : memory_nodes_) {
    if (id == node) return pd.get();
  }
  return nullptr;
}

std::vector<NodeId> Fabric::MemoryNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeId> out;
  out.reserve(memory_nodes_.size());
  for (const auto& [id, pd] : memory_nodes_) out.push_back(id);
  return out;
}

std::unique_ptr<QueuePair> Fabric::CreateQueuePair(NodeId src,
                                                   NodeId dst) const {
  ProtectionDomain* pd = GetMemoryNode(dst);
  PANDORA_CHECK(pd != nullptr);
  return std::make_unique<QueuePair>(src, pd, &net_, halted_flag(src),
                                     &verb_hook_);
}

void Fabric::set_verb_hook(VerbScheduleHook* hook) {
  verb_hook_.hook.store(hook, std::memory_order_release);
  if (hook == nullptr) {
    // Drain: a verb that loaded the old pointer may still be inside a
    // callback; wait it out so the caller can destroy the hook.
    while (verb_hook_.active.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
  }
}

void Fabric::HaltNode(NodeId node) {
  (*halted_)[node].store(true, std::memory_order_release);
  // A halted memory node also stops serving verbs.
  if (ProtectionDomain* pd = GetMemoryNode(node)) pd->Halt();
}

void Fabric::ResumeNode(NodeId node) {
  (*halted_)[node].store(false, std::memory_order_release);
  if (ProtectionDomain* pd = GetMemoryNode(node)) pd->Resume();
}

bool Fabric::IsHalted(NodeId node) const {
  return (*halted_)[node].load(std::memory_order_acquire);
}

const std::atomic<bool>* Fabric::halted_flag(NodeId node) const {
  return &(*halted_)[node];
}

void Fabric::RevokeNodeEverywhere(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, pd] : memory_nodes_) pd->RevokeNode(node);
}

void Fabric::RestoreNodeEverywhere(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, pd] : memory_nodes_) pd->RestoreNode(node);
}

}  // namespace rdma
}  // namespace pandora

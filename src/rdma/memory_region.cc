#include "rdma/memory_region.h"

#include <cstring>
#include <utility>

namespace pandora {
namespace rdma {

MemoryRegion::MemoryRegion(RKey rkey, size_t size, std::string name)
    : rkey_(rkey), size_(size), name_(std::move(name)) {
  // operator new[] for char returns memory aligned for max_align_t (>= 16),
  // which satisfies the 8-byte alignment the atomic accessors require for
  // any 8-byte-aligned offset within the region.
  base_ = std::make_unique<char[]>(size);
  std::memset(base_.get(), 0, size);
}

}  // namespace rdma
}  // namespace pandora

#ifndef PANDORA_RDMA_TYPES_H_
#define PANDORA_RDMA_TYPES_H_

#include <cstdint>

namespace pandora {
namespace rdma {

/// Identifies a server (compute or memory) attached to the fabric.
using NodeId = uint16_t;

/// Remote key naming a registered memory region within a protection domain,
/// as in the ibverbs API.
using RKey = uint32_t;

constexpr NodeId kInvalidNodeId = 0xffff;
constexpr RKey kInvalidRKey = 0xffffffff;

/// Maximum number of fabric-attached nodes the simulator supports. Bounds
/// the revocation bitset in each protection domain.
constexpr uint32_t kMaxNodes = 4096;

/// Verb opcodes, mirroring the one-sided subset of ibverbs that a DKVS can
/// use (§2.1): Send/Receive exist on real NICs but are RPC machinery and are
/// deliberately absent from the data-path API.
enum class Opcode : uint8_t {
  kRead = 0,
  kWrite = 1,
  kCompareSwap = 2,
  kFetchAdd = 3,
};

}  // namespace rdma
}  // namespace pandora

#endif  // PANDORA_RDMA_TYPES_H_

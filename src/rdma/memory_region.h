#ifndef PANDORA_RDMA_MEMORY_REGION_H_
#define PANDORA_RDMA_MEMORY_REGION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "rdma/types.h"

namespace pandora {
namespace rdma {

/// A registered, RDMA-accessible memory region owned by a memory server.
///
/// The buffer is 64-byte aligned and zero-initialized. Compute servers can
/// only touch it through QueuePair verbs carrying this region's rkey — never
/// through a raw pointer — which is what makes the simulation faithfully
/// one-sided.
class MemoryRegion {
 public:
  MemoryRegion(RKey rkey, size_t size, std::string name);

  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  RKey rkey() const { return rkey_; }
  size_t size() const { return size_; }
  const std::string& name() const { return name_; }

  /// Raw base pointer. Reserved for the owning memory server's control path
  /// (initial data load, region teardown) — the data path must go through
  /// verbs.
  char* base() { return base_.get(); }
  const char* base() const { return base_.get(); }

  bool Contains(uint64_t offset, size_t len) const {
    return offset <= size_ && len <= size_ - offset;
  }

 private:
  RKey rkey_;
  size_t size_;
  std::string name_;
  std::unique_ptr<char[]> base_;
};

}  // namespace rdma
}  // namespace pandora

#endif  // PANDORA_RDMA_MEMORY_REGION_H_

#ifndef PANDORA_RDMA_FABRIC_H_
#define PANDORA_RDMA_FABRIC_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "rdma/network_model.h"
#include "rdma/protection_domain.h"
#include "rdma/queue_pair.h"
#include "rdma/types.h"
#include "rdma/verb_schedule.h"

namespace pandora {
namespace rdma {

/// The simulated RDMA network: a registry of memory-server protection
/// domains, the shared latency model, and per-node liveness flags used to
/// emulate compute-server crashes.
///
/// Node-id space is shared between compute and memory servers; creating a
/// queue pair is the control-path "connection setup" the paper permits RPCs
/// for (§1.1).
class Fabric {
 public:
  explicit Fabric(const NetworkConfig& config = NetworkConfig());

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const NetworkModel& network() const { return net_; }

  /// Attaches a memory server and returns its protection domain.
  ProtectionDomain* AttachMemoryNode(NodeId node);

  /// Returns the protection domain of a memory node, or nullptr.
  ProtectionDomain* GetMemoryNode(NodeId node) const;

  /// All currently attached memory nodes.
  std::vector<NodeId> MemoryNodes() const;

  /// Creates an RC queue pair from compute node `src` to memory node `dst`.
  /// Verbs on the QP fail with Unavailable once `src` is halted.
  std::unique_ptr<QueuePair> CreateQueuePair(NodeId src, NodeId dst) const;

  /// --- Crash emulation -------------------------------------------------
  /// Halting a node makes every verb it subsequently issues fail, exactly
  /// as if the process died between two RDMA operations. Memory state is
  /// left as the last landed verb left it.
  void HaltNode(NodeId node);
  void ResumeNode(NodeId node);
  bool IsHalted(NodeId node) const;
  const std::atomic<bool>* halted_flag(NodeId node) const;

  /// Control-path broadcast: revokes `node`'s rights on every memory
  /// server (active-link termination, §3.2.2 step 2).
  void RevokeNodeEverywhere(NodeId node);
  void RestoreNodeEverywhere(NodeId node);

  /// --- Verb-level scheduling ------------------------------------------
  /// Installs (or, with nullptr, uninstalls) the verb-schedule hook every
  /// queue pair of this fabric consults before applying a verb. Uninstall
  /// waits until no in-flight verb is still inside a hook callback, so the
  /// caller may destroy the hook object as soon as this returns. With no
  /// hook installed the per-verb cost is a single relaxed atomic load.
  void set_verb_hook(VerbScheduleHook* hook);
  VerbScheduleHook* verb_hook() const {
    return verb_hook_.hook.load(std::memory_order_acquire);
  }

 private:
  NetworkModel net_;
  mutable VerbHookSlot verb_hook_;
  mutable std::mutex mu_;
  std::vector<std::pair<NodeId, std::unique_ptr<ProtectionDomain>>>
      memory_nodes_;
  std::unique_ptr<std::array<std::atomic<bool>, kMaxNodes>> halted_;
};

}  // namespace rdma
}  // namespace pandora

#endif  // PANDORA_RDMA_FABRIC_H_

#ifndef PANDORA_RDMA_ORDERED_BATCH_H_
#define PANDORA_RDMA_ORDERED_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rdma/queue_pair.h"
#include "rdma/types.h"

namespace pandora {
namespace rdma {

/// A chain of verbs posted to the *same* RC queue pair in one doorbell.
///
/// RC in-order delivery (§3.1.1) guarantees that verbs posted on one QP
/// apply at the remote memory in post order, so a later verb in the chain
/// observes the effects of every earlier one — e.g. a read posted behind a
/// lock CAS sees the post-CAS lock word. The whole chain still completes
/// after a *single* round trip (the verbs fly back-to-back), which is what
/// lets the execution phase collapse lock-then-read from 2 RTTs into 1.
///
/// The simulated QueuePair applies each verb synchronously at post time and
/// in call order, so ordering holds by construction; OrderedBatch's job is
/// the completion model (one max-RTT wait instead of a sum of per-verb
/// waits) and the error model (a failed verb moves the QP chain into an
/// error state and every later verb is flushed without applying, mirroring
/// IBV_WC_WR_FLUSH_ERR on real hardware).
class OrderedBatch {
 public:
  explicit OrderedBatch(QueuePair* qp) : qp_(qp) {}

  OrderedBatch(const OrderedBatch&) = delete;
  OrderedBatch& operator=(const OrderedBatch&) = delete;

  QueuePair* qp() const { return qp_; }

  /// Each poster returns the verb's index in the chain (for status()).
  size_t Read(RKey rkey, uint64_t offset, void* dst, size_t len);
  size_t Write(RKey rkey, uint64_t offset, const void* src, size_t len);
  size_t CompareSwap(RKey rkey, uint64_t offset, uint64_t expected,
                     uint64_t desired, uint64_t* observed);

  /// Waits out one max-RTT for the whole chain (plus `extra_rtt_ns`, for a
  /// VerbBatch or sibling chains to other servers riding the same doorbell
  /// group) and returns the first verb error, if any. Resets the chain for
  /// reuse.
  Status Execute(uint64_t extra_rtt_ns = 0);

  /// Max RTT of the verbs posted so far. Lets this chain ride another
  /// chain's doorbell group: the other chain executes with this value as
  /// extra_rtt_ns and this one is drained with Collect() — one shared
  /// max-RTT wait covers both.
  uint64_t pending_max_rtt_ns() const { return max_rtt_ns_; }

  /// Completes the chain WITHOUT waiting (its RTT was paid by another
  /// batch's Execute in the same doorbell group). Returns the first verb
  /// error and resets the chain, like Execute.
  Status Collect();

  /// Per-verb completion status, valid until the next Execute(). Verbs
  /// after a failed verb report Aborted("work request flushed").
  const Status& status(size_t index) const { return statuses_[index]; }

  size_t size() const { return statuses_.size(); }

  /// Simulated nanoseconds the previous Execute() waited out — one max-RTT
  /// for the chain (and any rider), never a per-verb sum. Deterministic,
  /// unlike wall-clock measurements of the spin wait.
  uint64_t last_wait_ns() const { return last_wait_ns_; }

 private:
  size_t Record(const Status& status, uint64_t rtt_ns);

  QueuePair* qp_;
  std::vector<Status> statuses_;
  Status first_error_;
  uint64_t max_rtt_ns_ = 0;
  uint64_t last_wait_ns_ = 0;
  bool errored_ = false;
};

}  // namespace rdma
}  // namespace pandora

#endif  // PANDORA_RDMA_ORDERED_BATCH_H_

#include "rdma/queue_pair.h"

#include "common/clock.h"

namespace pandora {
namespace rdma {

namespace {

// One pass of a verb through the fabric's schedule hook. Entering bumps
// the slot's active count (so Fabric::set_verb_hook(nullptr) can wait out
// in-flight callbacks), OnVerbIssue may hold or drop the verb, and
// Applied() notifies the hook once the operation landed at remote memory.
class HookedVerb {
 public:
  HookedVerb(VerbHookSlot* slot, NodeId src, NodeId dst, VerbKind kind,
             RKey rkey, uint64_t offset, size_t len, uint64_t qp_seq) {
    if (slot == nullptr ||
        slot->hook.load(std::memory_order_relaxed) == nullptr) {
      return;
    }
    slot_ = slot;
    slot_->active.fetch_add(1, std::memory_order_acq_rel);
    hook_ = slot_->hook.load(std::memory_order_acquire);
    if (hook_ == nullptr) return;  // Raced an uninstall: pass through.
    desc_.src = src;
    desc_.dst = dst;
    desc_.kind = kind;
    desc_.rkey = rkey;
    desc_.offset = offset;
    desc_.len = len;
    desc_.qp_seq = qp_seq;
    desc_.phase = CurrentVerbPhase();
    dropped_ = !hook_->OnVerbIssue(desc_);
  }

  ~HookedVerb() {
    if (slot_ != nullptr) {
      slot_->active.fetch_sub(1, std::memory_order_release);
    }
  }

  HookedVerb(const HookedVerb&) = delete;
  HookedVerb& operator=(const HookedVerb&) = delete;

  bool dropped() const { return dropped_; }

  void Applied() {
    if (hook_ != nullptr && !dropped_) hook_->OnVerbApplied(desc_);
  }

 private:
  VerbHookSlot* slot_ = nullptr;
  VerbScheduleHook* hook_ = nullptr;
  VerbDesc desc_;
  bool dropped_ = false;
};

}  // namespace

Status QueuePair::CheckHalted() const {
  if (src_halted_ != nullptr &&
      src_halted_->load(std::memory_order_acquire)) {
    return Status::Unavailable("compute node halted");
  }
  return Status::OK();
}

Status QueuePair::DroppedVerbStatus() const {
  // A schedule hook drops a verb to emulate the issuing node dying
  // mid-verb; by then the controller has usually halted the node, so the
  // verb fails indistinguishably from a real death.
  const Status halted = CheckHalted();
  if (!halted.ok()) return halted;
  return Status::Unavailable("verb dropped by schedule hook");
}

void QueuePair::Wait(uint64_t rtt_ns) const {
  if (net_->latency_enabled()) SpinForNanos(rtt_ns);
}

Status QueuePair::Read(RKey rkey, uint64_t offset, void* dst, size_t len) {
  uint64_t rtt;
  PANDORA_RETURN_NOT_OK(PostRead(rkey, offset, dst, len, &rtt));
  Wait(rtt);
  return Status::OK();
}

Status QueuePair::Write(RKey rkey, uint64_t offset, const void* src,
                        size_t len) {
  uint64_t rtt;
  PANDORA_RETURN_NOT_OK(PostWrite(rkey, offset, src, len, &rtt));
  Wait(rtt);
  return Status::OK();
}

Status QueuePair::CompareSwap(RKey rkey, uint64_t offset, uint64_t expected,
                              uint64_t desired, uint64_t* observed) {
  uint64_t rtt;
  PANDORA_RETURN_NOT_OK(
      PostCompareSwap(rkey, offset, expected, desired, observed, &rtt));
  Wait(rtt);
  return Status::OK();
}

Status QueuePair::FetchAdd(RKey rkey, uint64_t offset, uint64_t delta,
                           uint64_t* old_value) {
  PANDORA_RETURN_NOT_OK(CheckHalted());
  HookedVerb hook(hook_slot_, src_, remote_->owner(), VerbKind::kFetchAdd,
                  rkey, offset, sizeof(uint64_t), seq_++);
  if (hook.dropped()) return DroppedVerbStatus();
  PANDORA_RETURN_NOT_OK(CheckHalted());  // The hook may have killed src.
  PANDORA_RETURN_NOT_OK(
      remote_->ExecuteFetchAdd(src_, rkey, offset, delta, old_value));
  hook.Applied();
  Wait(net_->RttNanos(sizeof(uint64_t), sizeof(uint64_t)));
  return Status::OK();
}

Status QueuePair::PostRead(RKey rkey, uint64_t offset, void* dst, size_t len,
                           uint64_t* rtt_ns) {
  PANDORA_RETURN_NOT_OK(CheckHalted());
  HookedVerb hook(hook_slot_, src_, remote_->owner(), VerbKind::kRead, rkey,
                  offset, len, seq_++);
  if (hook.dropped()) return DroppedVerbStatus();
  PANDORA_RETURN_NOT_OK(CheckHalted());
  PANDORA_RETURN_NOT_OK(remote_->ExecuteRead(src_, rkey, offset, dst, len));
  hook.Applied();
  *rtt_ns = net_->RttNanos(/*request_bytes=*/0, /*response_bytes=*/len);
  return Status::OK();
}

Status QueuePair::PostWrite(RKey rkey, uint64_t offset, const void* src,
                            size_t len, uint64_t* rtt_ns) {
  PANDORA_RETURN_NOT_OK(CheckHalted());
  HookedVerb hook(hook_slot_, src_, remote_->owner(), VerbKind::kWrite,
                  rkey, offset, len, seq_++);
  if (hook.dropped()) return DroppedVerbStatus();
  PANDORA_RETURN_NOT_OK(CheckHalted());
  PANDORA_RETURN_NOT_OK(remote_->ExecuteWrite(src_, rkey, offset, src, len));
  hook.Applied();
  *rtt_ns = net_->RttNanos(/*request_bytes=*/len, /*response_bytes=*/0);
  return Status::OK();
}

Status QueuePair::PostCompareSwap(RKey rkey, uint64_t offset,
                                  uint64_t expected, uint64_t desired,
                                  uint64_t* observed, uint64_t* rtt_ns) {
  PANDORA_RETURN_NOT_OK(CheckHalted());
  HookedVerb hook(hook_slot_, src_, remote_->owner(),
                  VerbKind::kCompareSwap, rkey, offset, sizeof(uint64_t),
                  seq_++);
  if (hook.dropped()) return DroppedVerbStatus();
  PANDORA_RETURN_NOT_OK(CheckHalted());
  PANDORA_RETURN_NOT_OK(remote_->ExecuteCompareSwap(src_, rkey, offset,
                                                    expected, desired,
                                                    observed));
  hook.Applied();
  *rtt_ns = net_->RttNanos(sizeof(uint64_t), sizeof(uint64_t));
  return Status::OK();
}

void VerbBatch::Record(const Status& status, uint64_t rtt_ns) {
  ++count_;
  if (!status.ok() && first_error_.ok()) first_error_ = status;
  if (rtt_ns > max_rtt_ns_) max_rtt_ns_ = rtt_ns;
}

void VerbBatch::Read(QueuePair* qp, RKey rkey, uint64_t offset, void* dst,
                     size_t len) {
  uint64_t rtt = 0;
  const Status status = qp->PostRead(rkey, offset, dst, len, &rtt);
  Record(status, rtt);
}

void VerbBatch::Write(QueuePair* qp, RKey rkey, uint64_t offset,
                      const void* src, size_t len) {
  uint64_t rtt = 0;
  const Status status = qp->PostWrite(rkey, offset, src, len, &rtt);
  Record(status, rtt);
}

void VerbBatch::CompareSwap(QueuePair* qp, RKey rkey, uint64_t offset,
                            uint64_t expected, uint64_t desired,
                            uint64_t* observed) {
  uint64_t rtt = 0;
  const Status status =
      qp->PostCompareSwap(rkey, offset, expected, desired, observed, &rtt);
  Record(status, rtt);
}

Status VerbBatch::Execute() {
  last_wait_ns_ = max_rtt_ns_;
  if (max_rtt_ns_ > 0) SpinForNanos(max_rtt_ns_);
  return Collect();
}

Status VerbBatch::Collect() {
  Status result = first_error_;
  first_error_ = Status::OK();
  max_rtt_ns_ = 0;
  count_ = 0;
  return result;
}

}  // namespace rdma
}  // namespace pandora

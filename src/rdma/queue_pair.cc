#include "rdma/queue_pair.h"

#include "common/clock.h"

namespace pandora {
namespace rdma {

Status QueuePair::CheckHalted() const {
  if (src_halted_ != nullptr &&
      src_halted_->load(std::memory_order_acquire)) {
    return Status::Unavailable("compute node halted");
  }
  return Status::OK();
}

void QueuePair::Wait(uint64_t rtt_ns) const {
  if (net_->latency_enabled()) SpinForNanos(rtt_ns);
}

Status QueuePair::Read(RKey rkey, uint64_t offset, void* dst, size_t len) {
  uint64_t rtt;
  PANDORA_RETURN_NOT_OK(PostRead(rkey, offset, dst, len, &rtt));
  Wait(rtt);
  return Status::OK();
}

Status QueuePair::Write(RKey rkey, uint64_t offset, const void* src,
                        size_t len) {
  uint64_t rtt;
  PANDORA_RETURN_NOT_OK(PostWrite(rkey, offset, src, len, &rtt));
  Wait(rtt);
  return Status::OK();
}

Status QueuePair::CompareSwap(RKey rkey, uint64_t offset, uint64_t expected,
                              uint64_t desired, uint64_t* observed) {
  uint64_t rtt;
  PANDORA_RETURN_NOT_OK(
      PostCompareSwap(rkey, offset, expected, desired, observed, &rtt));
  Wait(rtt);
  return Status::OK();
}

Status QueuePair::FetchAdd(RKey rkey, uint64_t offset, uint64_t delta,
                           uint64_t* old_value) {
  PANDORA_RETURN_NOT_OK(CheckHalted());
  PANDORA_RETURN_NOT_OK(
      remote_->ExecuteFetchAdd(src_, rkey, offset, delta, old_value));
  Wait(net_->RttNanos(sizeof(uint64_t), sizeof(uint64_t)));
  return Status::OK();
}

Status QueuePair::PostRead(RKey rkey, uint64_t offset, void* dst, size_t len,
                           uint64_t* rtt_ns) {
  PANDORA_RETURN_NOT_OK(CheckHalted());
  PANDORA_RETURN_NOT_OK(remote_->ExecuteRead(src_, rkey, offset, dst, len));
  *rtt_ns = net_->RttNanos(/*request_bytes=*/0, /*response_bytes=*/len);
  return Status::OK();
}

Status QueuePair::PostWrite(RKey rkey, uint64_t offset, const void* src,
                            size_t len, uint64_t* rtt_ns) {
  PANDORA_RETURN_NOT_OK(CheckHalted());
  PANDORA_RETURN_NOT_OK(remote_->ExecuteWrite(src_, rkey, offset, src, len));
  *rtt_ns = net_->RttNanos(/*request_bytes=*/len, /*response_bytes=*/0);
  return Status::OK();
}

Status QueuePair::PostCompareSwap(RKey rkey, uint64_t offset,
                                  uint64_t expected, uint64_t desired,
                                  uint64_t* observed, uint64_t* rtt_ns) {
  PANDORA_RETURN_NOT_OK(CheckHalted());
  PANDORA_RETURN_NOT_OK(remote_->ExecuteCompareSwap(src_, rkey, offset,
                                                    expected, desired,
                                                    observed));
  *rtt_ns = net_->RttNanos(sizeof(uint64_t), sizeof(uint64_t));
  return Status::OK();
}

void VerbBatch::Record(const Status& status, uint64_t rtt_ns) {
  ++count_;
  if (!status.ok() && first_error_.ok()) first_error_ = status;
  if (rtt_ns > max_rtt_ns_) max_rtt_ns_ = rtt_ns;
}

void VerbBatch::Read(QueuePair* qp, RKey rkey, uint64_t offset, void* dst,
                     size_t len) {
  uint64_t rtt = 0;
  const Status status = qp->PostRead(rkey, offset, dst, len, &rtt);
  Record(status, rtt);
}

void VerbBatch::Write(QueuePair* qp, RKey rkey, uint64_t offset,
                      const void* src, size_t len) {
  uint64_t rtt = 0;
  const Status status = qp->PostWrite(rkey, offset, src, len, &rtt);
  Record(status, rtt);
}

void VerbBatch::CompareSwap(QueuePair* qp, RKey rkey, uint64_t offset,
                            uint64_t expected, uint64_t desired,
                            uint64_t* observed) {
  uint64_t rtt = 0;
  const Status status =
      qp->PostCompareSwap(rkey, offset, expected, desired, observed, &rtt);
  Record(status, rtt);
}

Status VerbBatch::Execute() {
  last_wait_ns_ = max_rtt_ns_;
  if (max_rtt_ns_ > 0) SpinForNanos(max_rtt_ns_);
  return Collect();
}

Status VerbBatch::Collect() {
  Status result = first_error_;
  first_error_ = Status::OK();
  max_rtt_ns_ = 0;
  count_ = 0;
  return result;
}

}  // namespace rdma
}  // namespace pandora

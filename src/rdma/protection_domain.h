#ifndef PANDORA_RDMA_PROTECTION_DOMAIN_H_
#define PANDORA_RDMA_PROTECTION_DOMAIN_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/fixed_bitset.h"
#include "common/status.h"
#include "rdma/memory_region.h"
#include "rdma/types.h"

namespace pandora {
namespace rdma {

/// The memory-server side of the simulated NIC: owns the registered regions
/// of one memory server and enforces access control.
///
/// Access revocation implements the paper's *active-link termination*
/// (§3.2.2): after the failure detector suspects compute server C, it asks
/// each memory server (via the control path, served by the wimpy cores) to
/// revoke C's RDMA rights, so any in-flight or future verb from C is
/// dropped. This holds even if the suspicion was a false positive (Cor1).
class ProtectionDomain {
 public:
  explicit ProtectionDomain(NodeId owner);

  ProtectionDomain(const ProtectionDomain&) = delete;
  ProtectionDomain& operator=(const ProtectionDomain&) = delete;

  NodeId owner() const { return owner_; }

  /// Crash emulation for the *memory* side: a halted memory server fails
  /// every verb with Unavailable until resumed. Region contents are
  /// preserved only if the simulation chooses to resume it (used to model
  /// re-replication; a real DRAM node would lose state).
  void Halt() { halted_.store(true, std::memory_order_release); }
  void Resume() { halted_.store(false, std::memory_order_release); }
  bool IsHaltedMemory() const {
    return halted_.load(std::memory_order_acquire);
  }

  /// Registers a new region of `size` bytes and returns its rkey.
  /// Control-path only.
  RKey RegisterRegion(size_t size, std::string name);

  /// Looks up a region by rkey; nullptr if unknown. Control-path only
  /// (initial data load). The data path goes through the Execute* methods.
  MemoryRegion* GetRegion(RKey rkey);

  /// Control-path RPC: revoke / restore `node`'s RDMA rights.
  void RevokeNode(NodeId node);
  void RestoreNode(NodeId node);
  bool IsRevoked(NodeId node) const;

  /// --- Data path (invoked by QueuePair only) -------------------------
  /// Each verb validates the source node against the revocation set and the
  /// target range against the region bounds, then applies the operation
  /// with word-atomic semantics.

  Status ExecuteRead(NodeId src, RKey rkey, uint64_t offset, void* dst,
                     size_t len) const;
  Status ExecuteWrite(NodeId src, RKey rkey, uint64_t offset,
                      const void* from, size_t len);
  Status ExecuteCompareSwap(NodeId src, RKey rkey, uint64_t offset,
                            uint64_t expected, uint64_t desired,
                            uint64_t* observed);
  Status ExecuteFetchAdd(NodeId src, RKey rkey, uint64_t offset,
                         uint64_t delta, uint64_t* old_value);

 private:
  Status Check(NodeId src, RKey rkey, uint64_t offset, size_t len,
               size_t alignment, const MemoryRegion** region) const;

  /// Registered regions. Registration is control-path only; the data path
  /// reads `num_regions_` with acquire ordering and indexes the fixed
  /// array lock-free — a verb must never take a mutex, since every
  /// simulated RDMA operation of every compute thread funnels through
  /// here and a contended lock would dominate the modelled sub-µs verbs.
  static constexpr size_t kMaxRegions = 256;

  NodeId owner_;
  std::mutex mu_;  // Serializes RegisterRegion (control path only).
  std::array<std::unique_ptr<MemoryRegion>, kMaxRegions> regions_;
  std::atomic<uint32_t> num_regions_{0};
  AtomicFixedBitset<kMaxNodes> revoked_;
  std::atomic<bool> halted_{false};
};

}  // namespace rdma
}  // namespace pandora

#endif  // PANDORA_RDMA_PROTECTION_DOMAIN_H_

#ifndef PANDORA_TXN_TXN_CONFIG_H_
#define PANDORA_TXN_TXN_CONFIG_H_

#include <cstdint>

namespace pandora {
namespace txn {

/// Which transactional protocol a coordinator runs.
enum class ProtocolMode {
  /// Pandora (§3): PILL lock words, coordinator-log on f+1 designated log
  /// servers written with one RDMA write per server at commit time
  /// (overlapped with validation), abort-truncation, lock stealing.
  kPandora,
  /// The paper's Baseline (§4.1): FORD's online protocol — per-object undo
  /// logs written eagerly to the object's replicas during execution — with
  /// Pandora's recovery algorithm integrated. No PILL: stray locks require
  /// a blocking full-KVS scan.
  kFordBaseline,
  /// §6.1/§6.2.1 "Traditional Logging Scheme": Baseline plus a lock-intent
  /// log write *before* every lock CAS (one extra round trip per lock),
  /// which lets recovery release stray locks from the logs without
  /// scanning, at a steady-state throughput cost.
  kTraditionalLogging,
};

/// Bug switches reproducing the six FORD defects of Table 1 (§5.1). All
/// default to off (= the fixed protocols). The litmus framework flips them
/// one at a time to demonstrate that each bug is caught.
struct BugFlags {
  /// C1 "Complicit Aborts": the abort path releases every write-set lock,
  /// including locks the transaction never acquired — possibly releasing a
  /// lock held by a *different* transaction.
  bool complicit_abort = false;
  /// C2 "Missing Actions": inserts are omitted from the undo log, so a
  /// crashed transaction's inserts cannot be rolled back.
  bool missing_insert_logging = false;
  /// C1 "Covert Locks": validation checks only the version of read-set
  /// objects, not whether they are locked.
  bool covert_locks = false;
  /// C1 "Relaxed Locks": write-set locks are deferred and issued in the
  /// same doorbell as (after) the validation reads, so validation can
  /// overlap lock acquisition.
  bool relaxed_locks = false;
  /// C2 "Lost Decision": logs of aborted transactions are not invalidated,
  /// so recovery cannot tell an aborted logged transaction from a committed
  /// one.
  bool lost_decision = false;
  /// C2 "Logging without locking": the per-object undo record is written
  /// *before* the lock is acquired (with a pre-lock value image).
  bool logging_without_locking = false;

  bool AnySet() const {
    return complicit_abort || missing_insert_logging || covert_locks ||
           relaxed_locks || lost_decision || logging_without_locking;
  }
};

/// Per-coordinator protocol configuration.
struct TxnConfig {
  ProtocolMode mode = ProtocolMode::kPandora;
  BugFlags bugs;

  /// Conflict policy (§6.4 "Sensitivity to stalls"): false = abort the
  /// transaction on a lock conflict (the default, as in FORD); true = stall
  /// and retry the lock until it is released, stolen, or the timeout
  /// expires.
  bool stall_on_conflict = false;
  uint64_t stall_timeout_us = 1'000'000;
  uint64_t stall_retry_interval_us = 5;

  /// Forces every verb group (logging, commit apply, unlock) to issue
  /// sequentially instead of in one doorbell batch — the ablation knob for
  /// measuring what doorbell batching buys (each group then costs one
  /// round trip per verb instead of one per group).
  bool sequential_verbs = false;

  /// Execution-phase doorbell pipelining (§3.1.1): post the lock CAS and a
  /// speculative undo-image read on the same QP in one doorbell (RC
  /// in-order delivery makes the read observe the post-CAS state), so a
  /// write op's lock+fetch costs 1 round trip instead of 2; range reads
  /// batch their per-key verbs into max-RTT rounds likewise. The ablation
  /// knob for the paper's round-trip accounting. Ignored (off) when
  /// `sequential_verbs` is set or a crash hook is installed.
  bool pipeline_execution = true;

  /// Disables the online-recovery component (C2) entirely: no undo
  /// logging, no truncation. Models the *non-recoverable* FORD that
  /// Figure 6 compares against — fast, but a compute crash leaves memory
  /// unrecoverable. Benchmarking only.
  bool disable_recovery_logging = false;

  /// Per-coordinator placement cache: memoize PlacementHash -> ReplicaSet
  /// so repeated touches of hot keys skip the ring binary search entirely.
  /// Entries are epoch-validated against the cluster's placement epoch
  /// (ring identity + membership view), so failovers invalidate them
  /// implicitly. Off = every lookup walks the ring (the ablation knob).
  bool placement_cache = true;

  /// Placement-epoch fence for online reconfiguration: snapshot the ring
  /// epoch at Begin and re-check it before every lock acquisition and at
  /// validation time. A transaction that raced a ring cutover aborts
  /// cheaply (TxnStats::reconfig_aborts) instead of committing against a
  /// superseded placement, then retries under bounded exponential backoff.
  /// Off = the deliberately naive mode the crash-during-migration litmus
  /// spec exists to catch.
  bool reconfig_fence = true;
  /// Backoff base/cap for retries after a reconfiguration abort. The next
  /// Begin sleeps min(max, base << level) microseconds; a successful
  /// commit resets the level.
  uint64_t reconfig_backoff_base_us = 20;
  uint64_t reconfig_backoff_max_us = 2000;

  /// PILL is a Pandora feature; the baselines cannot steal.
  bool pill_enabled() const { return mode == ProtocolMode::kPandora; }
};

/// Per-coordinator counters (single-threaded; aggregated by the drivers).
struct TxnStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t lock_conflicts = 0;
  uint64_t validation_failures = 0;
  uint64_t locks_stolen = 0;
  uint64_t stray_reads_ignored = 0;
  uint64_t stall_retries = 0;
  uint64_t log_records_written = 0;
  uint64_t nvm_flushes = 0;
  uint64_t crashed = 0;
  /// Round trips waited out during the execution phase (Read / Write /
  /// Insert / Delete / ReadRange): slot-resolution probes, lock CASes,
  /// undo-image fetches, per-object log writes. A pipelined lock+fetch
  /// counts 1; unpipelined counts 2.
  uint64_t execution_rtts = 0;
  /// Round trips waited out during Commit (log+validation, apply, flush,
  /// unlock) and the abort path.
  uint64_t commit_rtts = 0;
  /// Doorbells rung: one per verb group issued together (a batch of N
  /// verbs is 1 doorbell; N sequential verbs are N).
  uint64_t doorbells = 0;
  /// Fiber suspensions taken on the coordinator's behalf while its worker
  /// thread overlapped this wait with other in-flight transactions (zero
  /// when the driver runs without a fiber scheduler). Aggregated from the
  /// per-thread schedulers, not counted by the coordinator itself.
  uint64_t fiber_yields = 0;
  /// Worst fiber resume lag observed by the drivers' schedulers: wall
  /// nanoseconds between a fiber becoming runnable and being dispatched.
  /// The starvation metric behind the fibers8 tail gate (max across
  /// workers, not a sum; zero without a fiber scheduler).
  uint64_t max_resume_lag_ns = 0;
  /// Times a fiber deferred admitting a new transaction because the
  /// scheduler was overdue past its lag budget on already-admitted work
  /// (aggregated from the per-thread schedulers, like fiber_yields).
  uint64_t paced_admissions = 0;
  /// Times an enabled BugFlags deviation actually altered protocol
  /// behavior (a check skipped, a log omitted, an ordering relaxed). The
  /// litmus harness uses this to flag bug flags that were never exercised
  /// — an injection no-op proves nothing.
  uint64_t bug_injections = 0;
  /// Placement-cache hits: lookups answered from the per-coordinator
  /// direct-mapped cache without touching the ring.
  uint64_t placement_hits = 0;
  /// Placement-cache misses: lookups that walked the ring (cold entry,
  /// index collision, or epoch invalidation after a failover/rebuild).
  /// Zero when TxnConfig::placement_cache is off.
  uint64_t placement_misses = 0;
  /// Transactions aborted by the reconfiguration epoch fence: the ring
  /// was swapped (live join/drain/replication change) after this
  /// transaction took locks or validated against the old placement.
  uint64_t reconfig_aborts = 0;
  /// Cheap pre-lock retries against a fresh placement: the fence caught
  /// the epoch change before any lock was taken (plus the backoff sleeps
  /// armed by a prior reconfig abort).
  uint64_t reconfig_retries = 0;
};

}  // namespace txn
}  // namespace pandora

#endif  // PANDORA_TXN_TXN_CONFIG_H_

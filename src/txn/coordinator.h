#ifndef PANDORA_TXN_COORDINATOR_H_
#define PANDORA_TXN_COORDINATOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/fixed_bitset.h"
#include "common/slice.h"
#include "common/status.h"
#include "rdma/ordered_batch.h"
#include "store/log_layout.h"
#include "store/object_header.h"
#include "store/remote_object.h"
#include "txn/crash_hook.h"
#include "txn/log_writer.h"
#include "txn/system_gate.h"
#include "txn/txn_config.h"

namespace pandora {
namespace txn {

/// Outcome notification delivered at the protocol's client-ack points:
/// after all replicas are updated (commit) or after locks are released
/// (abort). Used by the litmus framework to reason about what the client
/// may have observed (correctness criterion Cor3).
using AckCallback = std::function<void(uint64_t txn_id, bool committed)>;

/// A transaction coordinator: the compute-side engine that executes the
/// DKVS transactional API (§2.1: BeginTx / Read / Write / ReadRange /
/// Insert / Delete / CommitTx) entirely through one-sided RDMA verbs.
///
/// One Coordinator is single-threaded and runs one transaction at a time;
/// a compute server runs many coordinators. Which protocol it speaks —
/// Pandora, the FORD Baseline, or the traditional lock-logging scheme — is
/// chosen by TxnConfig, as are the injectable FORD bugs of Table 1.
///
/// Error model: Read/Write/Insert/Delete return
///  * OK            — staged/read successfully;
///  * Aborted       — a conflict aborted the whole transaction (locks
///                    already released; do not call Commit);
///  * NotFound      — key absent; the transaction is still live;
///  * Unavailable   — this compute server crashed (fault injection) or the
///                    fabric is gone; the transaction is abandoned as-is.
class Coordinator {
 public:
  Coordinator(cluster::Cluster* cluster, cluster::ComputeServer* server,
              uint16_t coord_id, const TxnConfig& config,
              SystemGate* gate = nullptr);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  uint16_t coord_id() const { return coord_id_; }
  const TxnConfig& config() const { return config_; }
  const TxnStats& stats() const { return stats_; }
  bool in_txn() const { return in_txn_; }

  /// Fault injection (litmus framework). Not owned.
  void set_crash_hook(CrashHook* hook) { crash_hook_ = hook; }
  /// Client-ack observer. Invoked from the coordinator's thread.
  void set_ack_callback(AckCallback callback) {
    ack_callback_ = std::move(callback);
  }

  /// --- Transactional API ------------------------------------------------

  Status Begin();

  /// Reads `table[key]` into `value` (sized to the table's value_size).
  /// Reads see the transaction's own staged writes.
  Status Read(store::TableId table, store::Key key, std::string* value);

  /// Stages an update of an existing object, eagerly locking its primary
  /// (FORD-style execution).
  Status Write(store::TableId table, store::Key key, Slice value);

  /// Stages creation of a new object (or resurrection of a deleted one).
  Status Insert(store::TableId table, store::Key key, Slice value);

  /// Stages deletion of an existing object.
  Status Delete(store::TableId table, store::Key key);

  /// Point-reads every existing key in [lo, hi] (bounded interval scan over
  /// the hash-partitioned store, as in FORD's KV mapping).
  Status ReadRange(store::TableId table, store::Key lo, store::Key hi,
                   std::vector<std::pair<store::Key, std::string>>* out);

  /// Runs validation, logging and commit/abort. Returns OK if committed,
  /// Aborted if validation or a deferred lock failed (locks released),
  /// Unavailable if this server crashed mid-protocol.
  Status Commit();

  /// User-initiated abort: releases acquired locks, invalidates logs.
  Status Abort();

 private:
  struct WriteOp {
    store::TableId table = 0;
    store::Key key = 0;
    std::vector<char> new_value;  // staged, padded to the slot value size
    bool is_insert = false;
    bool is_delete = false;

    // Static ring-order replica set and the object's slot on each replica,
    // both inline (fixed capacity kMaxReplication): staging a write never
    // heap-allocates for placement.
    cluster::ReplicaSet replicas;
    std::array<uint64_t, cluster::kMaxReplication> slots{};
    rdma::NodeId lock_node = rdma::kInvalidNodeId;  // where we (will) lock
    uint64_t lock_slot = 0;

    bool locked = false;
    store::VersionWord old_version = 0;
    std::vector<char> old_value;  // undo image (padded)

    // Baseline modes: log slots written for this op, for invalidation.
    std::vector<std::pair<rdma::NodeId, uint32_t>> log_slots;
    // Relaxed-locks bug: result word of the deferred lock CAS.
    uint64_t deferred_lock_observed = 0;
  };

  struct ReadOp {
    store::TableId table = 0;
    store::Key key = 0;
    rdma::NodeId node = rdma::kInvalidNodeId;
    uint64_t slot = 0;
    store::VersionWord version = 0;
  };

  // Crash-injection helper: returns Unavailable (and halts the node) when
  // the hook fires.
  Status MaybeCrash(CrashPoint point);

  // Tears down local transaction bookkeeping when `status` reports that
  // this node crashed mid-operation (memory state is left untouched).
  Status FinalizeIfCrashed(Status status);

  Status ReadInternal(store::TableId table, store::Key key,
                      std::string* value);

  // Batched fast path of ReadRange: resolves and reads the whole range in
  // max-RTT doorbell rounds instead of per-key sequential round trips.
  Status ReadRangeBatched(
      store::TableId table, store::Key lo, store::Key hi,
      std::vector<std::pair<store::Key, std::string>>* out);

  // Resolves the slot of (table, key) on `node`, consulting the address
  // cache first and probing remotely on a miss. Probe round trips are
  // charged to `rtt_counter` (an execution- or commit-phase stat).
  Status ResolveSlot(store::TableId table, store::Key key,
                     rdma::NodeId node, bool claim_for_insert,
                     uint64_t* slot, bool* existed, uint64_t* rtt_counter);

  // Fills op->replicas / op->slots / op->lock_node.
  Status ResolvePlacement(WriteOp* op);

  // Placement fast path: answers from the per-coordinator direct-mapped
  // PlacementCache when the entry's epoch matches the cluster's placement
  // epoch (ring identity + membership view), else walks the ring once and
  // refills. Hit/miss counts land in TxnStats.
  cluster::ReplicaSet PlacementFor(store::TableId table, store::Key key);

  // Current primary = first alive node of PlacementFor's replica set.
  // Returns kInvalidNodeId when every replica is dead (> f failures).
  rdma::NodeId PrimaryFor(store::TableId table, store::Key key);

  // Locks op's primary with CAS (stealing stray locks under PILL; stalling
  // or aborting on live conflicts) and fetches the undo image. With
  // pipelining the CAS and the (speculative) undo-image read share one
  // doorbell; a non-null `rider` batch (per-object log writes whose
  // content is already known) fires in the same doorbell group, so the
  // whole step still costs a single round trip.
  Status LockAndFetch(WriteOp* op, rdma::VerbBatch* rider = nullptr);

  // Pipelined lock-then-read chain (§3.1.1): posts the lock CAS
  // (`expected` -> mine) and the undo-image read on the lock node's QP in
  // one doorbell. RC in-order delivery makes the read observe the
  // post-CAS state, so when the CAS wins (*observed == expected) the image
  // is already decoded into op->old_version / old_value and *fetched is
  // set; when it loses, the speculative read is discarded.
  Status PostLockAndFetchChain(WriteOp* op, uint64_t expected,
                               uint64_t* observed, rdma::VerbBatch* rider,
                               bool* fetched);

  // Reads version word + value of op's primary slot (post-lock).
  Status FetchUndoImage(WriteOp* op);

  // Same, without holding the lock (used only by injected FORD bugs that
  // break the lock-to-read order).
  Status FetchUndoImageUnlocked(WriteOp* op);

  // Stages a Write/Insert/Delete after placement resolution.
  Status StageWrite(WriteOp op);

  // Posts the per-object undo record's writes into `batch` without
  // waiting (baseline modes).
  Status PostPerObjectLog(WriteOp* op, rdma::VerbBatch* batch);

  // Writes the per-object undo record (baseline modes) as its own
  // doorbell / round trip.
  Status WritePerObjectLog(WriteOp* op);

  // Traditional scheme: lock-intent record before the lock CAS.
  Status WriteLockIntent(const WriteOp& op);

  // Builds the Pandora commit-time record over the whole write-set into
  // `record_scratch_` (entry and undo-image buffers are recycled across
  // transactions; the hot path must not reallocate per commit).
  const store::LogRecord& BuildCoordinatorRecord();

  // Validation read results (lock+version per read-set entry).
  struct ValidationRead {
    alignas(8) char buf[16];
  };

  // Commit sub-steps.
  Status CommitInternal();
  Status PostValidationReads(rdma::VerbBatch* batch,
                             std::vector<ValidationRead>* reads);
  Status CheckValidation(const std::vector<ValidationRead>& reads);
  Status ApplyWrites();
  Status UnlockWriteSet(bool crash_points);

  // Fills apply_bufs_ (one [version][key][value] image per write op).
  void BuildApplyBufs();

  // Merged commit path (§3.1.4 taken to its conclusion): validate first,
  // then ride the undo-log record, every replica apply, AND the unlocks in
  // ONE doorbell group — an ordered chain per touched server. Saves one
  // full round trip per update transaction over the legacy
  // log+validate / apply / unlock sequence. See DESIGN.md for the
  // recovery-invariant argument.
  Status CommitMergedInternal();

  // The merged path requires doorbell batching, the stock protocol (any
  // injected FORD bug reorders commit sub-steps the merge would hide), and
  // a persistence mode whose log writes are durable at completion (NVM
  // selective flushes must happen between apply and unlock, which the
  // merge eliminates).
  bool merged_commit_enabled() const {
    return batching_enabled() && config_.mode == ProtocolMode::kPandora &&
           !config_.bugs.AnySet() &&
           cluster_->config().persistence !=
               cluster::PersistenceMode::kNvmWithFlush;
  }

  // §7 NVM support: after durable writes landed on `servers`, issue
  // FORD's selective one-sided flush (one small read per server, batched)
  // when the deployment runs NVM behind an RNIC cache. No-op for DRAM and
  // battery-backed deployments.
  Status FlushForPersistence(const std::vector<rdma::NodeId>& servers);

  // Distinct memory servers holding replicas of the current write-set, in
  // ascending node-id order (CommitMergedInternal's chain lookup binary
  // searches it). Collected through a node-id bitset into a reserved member
  // vector — no per-commit allocation or sort. The returned reference is
  // valid until the next call.
  const std::vector<rdma::NodeId>& TouchedReplicaServers();

  // True when the protocols may group verbs into one doorbell batch.
  bool batching_enabled() const {
    return crash_hook_ == nullptr && !config_.sequential_verbs;
  }

  // True when the execution phase may pipeline dependent verbs (lock CAS +
  // speculative read, batched range reads) into single doorbells.
  bool pipelining_enabled() const {
    return batching_enabled() && config_.pipeline_execution;
  }

  // Charges `n` round trips to the given TxnStats counter (execution_rtts
  // or commit_rtts) and rings `n` doorbells.
  void CountRtts(uint64_t* counter, uint64_t n) {
    *counter += n;
    stats_.doorbells += n;
  }

  // Abort path. `validated_log_slot` >= 0 means a Pandora coordinator-log
  // record was written and must be truncated.
  Status AbortInternal();

  // Handles Unavailable statuses from commit-apply verbs: distinguishes
  // dead memory servers (skip, §3.2.5) from our own crash.
  Status ResolveApplyFailure(rdma::NodeId node);

  void FinishTxn();

  // Write-set index: hashed (table, key) -> write_set_ position, so
  // read-your-writes and re-writes stay O(1) on large write-sets.
  struct TableKey {
    store::TableId table;
    store::Key key;
    bool operator==(const TableKey& other) const {
      return table == other.table && key == other.key;
    }
  };
  struct TableKeyHasher {
    size_t operator()(const TableKey& tk) const {
      const uint64_t h =
          (tk.key + tk.table) * 0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  // Reconfiguration epoch fence (TxnConfig::reconfig_fence): true when
  // the active ring changed since Begin's snapshot. `refresh` re-arms the
  // snapshot so a pre-lock retry can continue against the new placement.
  bool RingEpochChanged(bool refresh);
  // Sleeps the bounded-exponential backoff armed by a prior reconfig
  // abort (no-op at level 0).
  void ReconfigBackoff();

  WriteOp* FindWriteOp(store::TableId table, store::Key key);
  // Appends `op` to the write-set and indexes it; returns the staged op.
  WriteOp* AppendWriteOp(WriteOp op);
  // Removes the most recently staged op (Delete of an absent key).
  WriteOp PopLastWriteOp();

  cluster::Cluster* cluster_;
  cluster::ComputeServer* server_;
  // Private L1 over the cluster's shared address cache (epoch-validated
  // against memory-server rebuilds); single-threaded like the coordinator.
  cluster::LocalAddressCache local_addresses_;
  // Private placement-hash -> ReplicaSet cache (epoch-validated against
  // ring identity + membership); single-threaded like the coordinator.
  cluster::PlacementCache placement_cache_;
  uint16_t coord_id_;
  TxnConfig config_;
  SystemGate* gate_;
  LogWriter log_writer_;
  CrashHook* crash_hook_ = nullptr;
  AckCallback ack_callback_;

  bool in_txn_ = false;
  uint64_t txn_id_ = 0;
  uint64_t next_txn_seq_ = 1;
  std::vector<WriteOp> write_set_;
  std::unordered_map<TableKey, size_t, TableKeyHasher> write_index_;
  std::vector<ReadOp> read_set_;
  // Reusable scratch for undo-image fetches and point reads: the hot path
  // must not heap-allocate per verb.
  std::vector<char> fetch_buf_;
  std::vector<char> read_buf_;
  std::vector<char> range_buf_;
  // Pandora: coordinator-log slots used by the in-flight transaction
  // (empty = no record written yet).
  std::vector<uint32_t> coord_log_slots_;
  // Reusable commit-apply buffers, one per write op.
  std::vector<std::vector<char>> apply_bufs_;
  // Reusable coordinator-log record (BuildCoordinatorRecord).
  store::LogRecord record_scratch_;
  // Reusable touched-server collection (TouchedReplicaServers): dedup via
  // node-id bitset, emitted ascending into the reserved vector.
  FixedBitset<rdma::kMaxNodes> touched_bits_;
  std::vector<rdma::NodeId> touched_servers_;
  // Reusable cursor/buffer scratch for batched range probes.
  store::BatchedProbeScratch probe_scratch_;

  // Reconfiguration fence state: the ring epoch snapshot taken at Begin
  // and the exponential-backoff level armed by reconfig aborts (reset by
  // the next successful commit).
  uint64_t begin_ring_epoch_ = 0;
  uint32_t reconfig_backoff_level_ = 0;

  TxnStats stats_;
};

}  // namespace txn
}  // namespace pandora

#endif  // PANDORA_TXN_COORDINATOR_H_

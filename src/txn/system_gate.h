#ifndef PANDORA_TXN_SYSTEM_GATE_H_
#define PANDORA_TXN_SYSTEM_GATE_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace pandora {
namespace txn {

/// Coordination point between coordinators and blocking ("stop-the-world")
/// recovery.
///
/// Pandora never blocks the gate for compute failures — that is the point
/// of PILL. The FORD Baseline's scan-based stray-lock recovery must block
/// every coordinator while it scans (§3.1.1 "we must block the entire
/// system for several seconds"), and memory-server reconfiguration blocks
/// both protocols briefly (§3.2.5).
class SystemGate {
 public:
  SystemGate() = default;

  SystemGate(const SystemGate&) = delete;
  SystemGate& operator=(const SystemGate&) = delete;

  /// --- Coordinator side -----------------------------------------------

  /// Blocks until the gate is open, then registers an active transaction.
  /// Returns false if `abandon` became true while waiting (coordinator's
  /// node crashed).
  bool EnterTxn(const std::atomic<bool>* abandon = nullptr) {
    while (blocked_.load(std::memory_order_acquire)) {
      if (abandon != nullptr && abandon->load(std::memory_order_acquire)) {
        return false;
      }
      SleepForMicros(50);
    }
    active_txns_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  void ExitTxn() { active_txns_.fetch_sub(1, std::memory_order_acq_rel); }

  bool blocked() const { return blocked_.load(std::memory_order_acquire); }

  /// --- Recovery side ----------------------------------------------------

  /// Closes the gate and waits for in-flight transactions to drain.
  /// Crashed coordinators drain too: their verbs fail fast with
  /// Unavailable, the protocol returns, and the driver calls ExitTxn().
  /// Stalling coordinators abort their transaction when they observe the
  /// closed gate, so quiescence cannot deadlock on a stray lock.
  void BlockAndQuiesce() {
    blocked_.store(true, std::memory_order_release);
    while (active_txns_.load(std::memory_order_acquire) > 0) {
      SleepForMicros(20);
    }
  }

  void Unblock() { blocked_.store(false, std::memory_order_release); }

  uint64_t active_txns() const {
    return active_txns_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> blocked_{false};
  std::atomic<uint64_t> active_txns_{0};
};

}  // namespace txn
}  // namespace pandora

#endif  // PANDORA_TXN_SYSTEM_GATE_H_

#ifndef PANDORA_TXN_CRASH_HOOK_H_
#define PANDORA_TXN_CRASH_HOOK_H_

#include <functional>
#include <string>
#include <vector>

namespace pandora {
namespace txn {

/// Named points in the transaction protocols where a compute-server crash
/// can be injected. Each point sits between two RDMA verbs, so injecting a
/// crash there reproduces exactly the partial states a real process death
/// can leave in disaggregated memory (§3.1.1 "failure atomicity").
enum class CrashPoint {
  kBeforeLock,
  kAfterLock,          // lock taken, undo image not yet read
  kAfterLockFetch,     // lock taken and undo image read
  kBeforeLogWrite,
  kAfterLogWrite,      // logged but validation outcome unknown
  kAfterValidation,    // decision reached, nothing applied
  kBeforeCommitApply,
  kMidCommitApply,     // some replicas updated, some not
  kAfterCommitApply,   // all replicas updated, client not yet acked
  kAfterClientAck,     // acked, locks still held
  kBeforeUnlock,
  kMidUnlock,          // some locks released
  kAfterUnlock,
  kBeforeAbortTruncate,
  kAfterAbortTruncate,  // logs invalidated, locks still held
  kMidAbortUnlock,
  kAfterAbort,
  kBeforeDeferredLock,  // relaxed-locks bug: validation read done, the
                        // deferred lock CAS not yet posted
};

constexpr int kNumCrashPoints =
    static_cast<int>(CrashPoint::kBeforeDeferredLock) + 1;

/// Returns a stable human-readable name (for litmus reports and trace
/// serialization).
const char* CrashPointName(CrashPoint point);

/// Inverse of CrashPointName; returns false if `name` is unknown.
bool CrashPointFromName(const std::string& name, CrashPoint* out);

/// Fault-injection callback. Implementations (the litmus framework's crash
/// schedules) return true to kill the coordinator's compute server at this
/// point; the coordinator then halts its node and abandons the transaction
/// without any cleanup, exactly like a process crash.
class CrashHook {
 public:
  virtual ~CrashHook() = default;
  virtual bool MaybeCrash(CrashPoint point) = 0;
};

/// Schedule-aware crash hook used by the litmus schedule explorer. It
/// records every crash point a coordinator actually visits (per program
/// run), so the explorer can enumerate exactly the reachable schedules and
/// flag directives that never fired (injection no-ops). A crash can be
/// armed two ways:
///  * precisely — fire at the Nth visit of one point in one run
///    (deterministic schedule exploration / replay);
///  * globally — fire at the Nth crash point hit overall, whatever it is
///    (the legacy randomized sampler).
///
/// The optional point observer runs at *every* visited point before the
/// crash decision; the litmus lockstep scheduler uses it as a rendezvous
/// barrier to force racy interleavings deterministically.
///
/// Not thread-safe: one hook per coordinator, driven from its thread;
/// results are read after the thread joins.
class ScheduleRecorderHook : public CrashHook {
 public:
  using PointObserver =
      std::function<void(CrashPoint point, int run, int occurrence)>;

  void set_point_observer(PointObserver observer) {
    observer_ = std::move(observer);
  }

  /// Marks the start of program run `run` (0-based, monotonic).
  void BeginRun(int run);

  /// Arms a precise crash: the `occurrence`-th (1-based) visit of `point`
  /// during run `run`.
  void ArmCrashAt(int run, CrashPoint point, int occurrence);

  /// Arms a global-occurrence crash: the `occurrence`-th (1-based) crash
  /// point hit across all points and runs.
  void ArmCrashAtGlobalOccurrence(int occurrence);

  bool MaybeCrash(CrashPoint point) override;

  bool armed() const { return armed_ || any_point_; }
  bool fired() const { return fired_; }
  CrashPoint fired_point() const { return fired_point_; }
  int fired_run() const { return fired_run_; }
  int fired_occurrence() const { return fired_occurrence_; }

  int runs_recorded() const { return static_cast<int>(visited_.size()); }
  /// Points visited during `run`, in visit order.
  const std::vector<CrashPoint>& visited(int run) const;
  /// Number of times `point` was visited during `run`.
  int VisitCount(int run, CrashPoint point) const;

 private:
  PointObserver observer_;
  std::vector<std::vector<CrashPoint>> visited_;
  int run_ = -1;

  bool armed_ = false;
  int arm_run_ = 0;
  CrashPoint arm_point_ = CrashPoint::kBeforeLock;
  int arm_occurrence_ = 1;

  bool any_point_ = false;
  int global_remaining_ = 0;

  bool fired_ = false;
  CrashPoint fired_point_ = CrashPoint::kBeforeLock;
  int fired_run_ = 0;
  int fired_occurrence_ = 0;
};

}  // namespace txn
}  // namespace pandora

#endif  // PANDORA_TXN_CRASH_HOOK_H_

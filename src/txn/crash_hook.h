#ifndef PANDORA_TXN_CRASH_HOOK_H_
#define PANDORA_TXN_CRASH_HOOK_H_

namespace pandora {
namespace txn {

/// Named points in the transaction protocols where a compute-server crash
/// can be injected. Each point sits between two RDMA verbs, so injecting a
/// crash there reproduces exactly the partial states a real process death
/// can leave in disaggregated memory (§3.1.1 "failure atomicity").
enum class CrashPoint {
  kBeforeLock,
  kAfterLock,          // lock taken, undo image not yet read
  kAfterLockFetch,     // lock taken and undo image read
  kBeforeLogWrite,
  kAfterLogWrite,      // logged but validation outcome unknown
  kAfterValidation,    // decision reached, nothing applied
  kBeforeCommitApply,
  kMidCommitApply,     // some replicas updated, some not
  kAfterCommitApply,   // all replicas updated, client not yet acked
  kAfterClientAck,     // acked, locks still held
  kBeforeUnlock,
  kMidUnlock,          // some locks released
  kAfterUnlock,
  kBeforeAbortTruncate,
  kAfterAbortTruncate,  // logs invalidated, locks still held
  kMidAbortUnlock,
  kAfterAbort,
};

/// Returns a stable human-readable name (for litmus reports).
const char* CrashPointName(CrashPoint point);

/// Fault-injection callback. Implementations (the litmus framework's crash
/// schedules) return true to kill the coordinator's compute server at this
/// point; the coordinator then halts its node and abandons the transaction
/// without any cleanup, exactly like a process crash.
class CrashHook {
 public:
  virtual ~CrashHook() = default;
  virtual bool MaybeCrash(CrashPoint point) = 0;
};

}  // namespace txn
}  // namespace pandora

#endif  // PANDORA_TXN_CRASH_HOOK_H_

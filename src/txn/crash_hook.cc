#include "txn/crash_hook.h"

#include <algorithm>

#include "rdma/verb_schedule.h"

namespace pandora {
namespace txn {

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kBeforeLock:
      return "BeforeLock";
    case CrashPoint::kAfterLock:
      return "AfterLock";
    case CrashPoint::kAfterLockFetch:
      return "AfterLockFetch";
    case CrashPoint::kBeforeLogWrite:
      return "BeforeLogWrite";
    case CrashPoint::kAfterLogWrite:
      return "AfterLogWrite";
    case CrashPoint::kAfterValidation:
      return "AfterValidation";
    case CrashPoint::kBeforeCommitApply:
      return "BeforeCommitApply";
    case CrashPoint::kMidCommitApply:
      return "MidCommitApply";
    case CrashPoint::kAfterCommitApply:
      return "AfterCommitApply";
    case CrashPoint::kAfterClientAck:
      return "AfterClientAck";
    case CrashPoint::kBeforeUnlock:
      return "BeforeUnlock";
    case CrashPoint::kMidUnlock:
      return "MidUnlock";
    case CrashPoint::kAfterUnlock:
      return "AfterUnlock";
    case CrashPoint::kBeforeAbortTruncate:
      return "BeforeAbortTruncate";
    case CrashPoint::kAfterAbortTruncate:
      return "AfterAbortTruncate";
    case CrashPoint::kMidAbortUnlock:
      return "MidAbortUnlock";
    case CrashPoint::kAfterAbort:
      return "AfterAbort";
    case CrashPoint::kBeforeDeferredLock:
      return "BeforeDeferredLock";
  }
  return "Unknown";
}

bool CrashPointFromName(const std::string& name, CrashPoint* out) {
  for (int p = 0; p < kNumCrashPoints; ++p) {
    const CrashPoint point = static_cast<CrashPoint>(p);
    if (name == CrashPointName(point)) {
      *out = point;
      return true;
    }
  }
  return false;
}

void ScheduleRecorderHook::BeginRun(int run) {
  run_ = run;
  if (static_cast<size_t>(run) >= visited_.size()) {
    visited_.resize(static_cast<size_t>(run) + 1);
  }
  // A fresh program run starts outside any protocol phase.
  rdma::SetVerbPhase(-1);
}

void ScheduleRecorderHook::ArmCrashAt(int run, CrashPoint point,
                                      int occurrence) {
  armed_ = true;
  arm_run_ = run;
  arm_point_ = point;
  arm_occurrence_ = occurrence;
}

void ScheduleRecorderHook::ArmCrashAtGlobalOccurrence(int occurrence) {
  any_point_ = true;
  global_remaining_ = occurrence;
}

bool ScheduleRecorderHook::MaybeCrash(CrashPoint point) {
  if (run_ < 0) BeginRun(0);
  // Tag the issuing thread: every verb until the next crash point carries
  // this phase in its VerbDesc (verb-level schedule hooks key off it).
  rdma::SetVerbPhase(static_cast<int>(point));
  auto& trace = visited_[static_cast<size_t>(run_)];
  trace.push_back(point);
  const int occurrence = static_cast<int>(
      std::count(trace.begin(), trace.end(), point));
  if (observer_) observer_(point, run_, occurrence);
  if (fired_) return false;

  bool fire = false;
  if (any_point_) {
    fire = (--global_remaining_ == 0);
  } else if (armed_ && run_ == arm_run_ && point == arm_point_ &&
             occurrence == arm_occurrence_) {
    fire = true;
  }
  if (fire) {
    fired_ = true;
    fired_point_ = point;
    fired_run_ = run_;
    fired_occurrence_ = occurrence;
  }
  return fire;
}

const std::vector<CrashPoint>& ScheduleRecorderHook::visited(int run) const {
  static const std::vector<CrashPoint> kEmpty;
  if (run < 0 || static_cast<size_t>(run) >= visited_.size()) return kEmpty;
  return visited_[static_cast<size_t>(run)];
}

int ScheduleRecorderHook::VisitCount(int run, CrashPoint point) const {
  const std::vector<CrashPoint>& trace = visited(run);
  return static_cast<int>(std::count(trace.begin(), trace.end(), point));
}

}  // namespace txn
}  // namespace pandora

#include "txn/crash_hook.h"

namespace pandora {
namespace txn {

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kBeforeLock:
      return "BeforeLock";
    case CrashPoint::kAfterLock:
      return "AfterLock";
    case CrashPoint::kAfterLockFetch:
      return "AfterLockFetch";
    case CrashPoint::kBeforeLogWrite:
      return "BeforeLogWrite";
    case CrashPoint::kAfterLogWrite:
      return "AfterLogWrite";
    case CrashPoint::kAfterValidation:
      return "AfterValidation";
    case CrashPoint::kBeforeCommitApply:
      return "BeforeCommitApply";
    case CrashPoint::kMidCommitApply:
      return "MidCommitApply";
    case CrashPoint::kAfterCommitApply:
      return "AfterCommitApply";
    case CrashPoint::kAfterClientAck:
      return "AfterClientAck";
    case CrashPoint::kBeforeUnlock:
      return "BeforeUnlock";
    case CrashPoint::kMidUnlock:
      return "MidUnlock";
    case CrashPoint::kAfterUnlock:
      return "AfterUnlock";
    case CrashPoint::kBeforeAbortTruncate:
      return "BeforeAbortTruncate";
    case CrashPoint::kAfterAbortTruncate:
      return "AfterAbortTruncate";
    case CrashPoint::kMidAbortUnlock:
      return "MidAbortUnlock";
    case CrashPoint::kAfterAbort:
      return "AfterAbort";
  }
  return "Unknown";
}

}  // namespace txn
}  // namespace pandora

#ifndef PANDORA_TXN_LOG_WRITER_H_
#define PANDORA_TXN_LOG_WRITER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "rdma/queue_pair.h"
#include "store/log_layout.h"

namespace pandora {
namespace txn {

/// Writes undo-log records into the per-coordinator areas of the memory
/// servers' log regions, in both placement modes the protocols need:
///
///  * Coordinator log (Pandora, §3.1.4): a coordinator's records all go to
///    the same f+1 *designated log servers*, chosen from the coordinator-id
///    on the placement ring (the Stamos/Cristian coordinator-log
///    technique). One record covers the whole write-set and costs one RDMA
///    write per log server.
///
///  * Per-object log (FORD Baseline): each write-set object gets its own
///    single-entry record in the log regions of that *object's* replica
///    servers — f+1 writes per object.
///
/// Record slots rotate round-robin within the coordinator's fixed-slot
/// area; invalidation overwrites a slot's magic word with one 8-byte write.
class LogWriter {
 public:
  LogWriter(cluster::Cluster* cluster, cluster::ComputeServer* server,
            uint16_t coord_id);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// The f+1 designated log servers of a coordinator.
  static std::vector<rdma::NodeId> LogServersFor(
      const cluster::Cluster& cluster, uint16_t coord_id);

  const std::vector<rdma::NodeId>& log_servers() const {
    return log_servers_;
  }

  /// Posts the record (one write per designated log server) into `batch`
  /// so the caller can overlap it with validation reads. A record larger
  /// than one slot is split into multiple records sharing the txn_id over
  /// consecutive slots — recovery merges fragments by txn_id, so the
  /// failure-atomicity argument is unchanged (all fragments land in the
  /// same doorbell and validation completes only after all of them).
  /// Appends the slot indices used to `slots`.
  Status PostCoordinatorRecord(const store::LogRecord& record,
                               rdma::VerbBatch* batch,
                               std::vector<uint32_t>* slots);

  /// Splits `record` into slot-sized fragments and serializes each one
  /// exactly once — O(entries) wire-size accounting, no trial
  /// serialization. The fragments stay valid until ResetForNewTxn() or
  /// the next Prepare call; read them back with PreparedFragment(). The
  /// merged-commit path posts them itself (into per-server ordered
  /// chains) instead of going through PostCoordinatorRecord.
  Status PrepareCoordinatorFragments(const store::LogRecord& record,
                                     size_t* num_fragments);
  const std::vector<char>& PreparedFragment(size_t i) const {
    return buffers_[prepared_first_ + i];
  }

  /// Posts one single-entry record to each of the object's replica servers.
  /// Appends the (server, slot) pairs written to `written` so the abort
  /// path can invalidate them.
  Status PostPerObjectRecord(
      const store::LogRecord& record,
      const cluster::ReplicaSet& object_replicas, rdma::VerbBatch* batch,
      std::vector<std::pair<rdma::NodeId, uint32_t>>* written);

  /// Posts an invalidation (8-byte magic overwrite) of `slot` on `server`.
  void PostInvalidate(rdma::NodeId server, uint32_t slot,
                      rdma::VerbBatch* batch);

  /// Posts invalidation of a coordinator-log slot on every designated log
  /// server.
  void PostInvalidateCoordinatorSlot(uint32_t slot, rdma::VerbBatch* batch);

  /// Hot-path fragment assembly without an intermediate LogRecord: the
  /// merged commit serializes straight from the write set into the reused
  /// buffer pool via store::LogRecordWriter. BeginPrepare() marks the
  /// start of the fragment run; AcquireBuffer() hands out one (recycled)
  /// buffer per fragment, readable back through PreparedFragment().
  void BeginPrepare() { prepared_first_ = buffers_used_; }
  std::vector<char>* AcquireBuffer() {
    if (buffers_used_ == buffers_.size()) buffers_.emplace_back();
    return &buffers_[buffers_used_++];
  }

  /// Recycles the serialization buffers; call at transaction begin.
  void ResetForNewTxn() { buffers_used_ = 0; }

 private:
  uint32_t NextSlot(rdma::NodeId server);

  cluster::Cluster* cluster_;
  cluster::ComputeServer* server_;
  uint16_t coord_id_;
  std::vector<rdma::NodeId> log_servers_;
  /// Round-robin slot cursor per memory server (indexed by NodeId).
  std::vector<uint32_t> next_slot_;
  /// Serialization buffers; stable for the duration of one batch because
  /// the simulated fabric applies writes at post time.
  std::vector<std::vector<char>> buffers_;
  size_t buffers_used_ = 0;
  /// First buffer index of the most recent PrepareCoordinatorFragments.
  size_t prepared_first_ = 0;
  uint64_t invalid_marker_;
};

}  // namespace txn
}  // namespace pandora

#endif  // PANDORA_TXN_LOG_WRITER_H_

#include "txn/coordinator.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>

#include "common/checksum.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"
#include "store/remote_object.h"

namespace pandora {
namespace txn {

namespace {

// Stable-address source for unlock writes (the lock word's unlocked value).
const uint64_t kUnlockedWord = store::kUnlocked;

// How long to wait for the failure detector's verdict about an unreachable
// memory server before giving up.
constexpr uint64_t kMemoryVerdictTimeoutUs = 100'000;

}  // namespace

Coordinator::Coordinator(cluster::Cluster* cluster,
                         cluster::ComputeServer* server, uint16_t coord_id,
                         const TxnConfig& config, SystemGate* gate)
    : cluster_(cluster),
      server_(server),
      coord_id_(coord_id),
      config_(config),
      gate_(gate),
      log_writer_(cluster, server, coord_id) {
  // A transaction can touch at most every memory server; reserving here
  // keeps TouchedReplicaServers() allocation-free per commit.
  touched_servers_.reserve(cluster->total_memory_nodes());
}

Status Coordinator::MaybeCrash(CrashPoint point) {
  if (crash_hook_ != nullptr && crash_hook_->MaybeCrash(point)) {
    PANDORA_LOG(kDebug) << "coordinator " << coord_id_
                        << " crash injected at " << CrashPointName(point);
    cluster_->fabric().HaltNode(server_->node());
    return Status::Unavailable("injected crash");
  }
  return Status::OK();
}

Status Coordinator::FinalizeIfCrashed(Status status) {
  // A coordinator whose node died mid-operation abandons the transaction
  // exactly as a real process death would: memory keeps the partial state
  // for recovery to repair, and only local bookkeeping (including the
  // system-gate registration) is torn down. A fenced node (PermissionDenied
  // after active-link termination, possibly a failure-detector false
  // positive) is logically dead too: its verbs are dropped at the memory
  // side and its in-flight work is recovered like any crash; the process
  // must rejoin with fresh coordinator-ids.
  const bool dead = (status.IsUnavailable() && server_->halted()) ||
                    status.IsPermissionDenied();
  if (dead && in_txn_) {
    stats_.crashed++;
    FinishTxn();
    return status;
  }
  if (status.IsUnavailable() && in_txn_) {
    // Unavailable without a self-crash: a memory server died under an
    // operation that could not fail over in place. §3.2.5's rule for
    // in-flight transactions is to abort the ones that cannot complete;
    // the abort path skips dead replicas, so the coordinator stays
    // usable for the next transaction.
    const Status abort_status = AbortInternal();
    if (abort_status.IsUnavailable() || abort_status.IsPermissionDenied()) {
      stats_.crashed++;
      if (in_txn_) FinishTxn();
      return abort_status;
    }
    return Status::Aborted("memory failure during transaction");
  }
  return status;
}

Status Coordinator::Begin() {
  if (in_txn_) return Status::InvalidArgument("transaction already open");
  if (server_->halted()) return Status::Unavailable("compute node halted");
  // Backoff armed by a reconfig abort: sleep *before* registering with the
  // gate, so a backing-off coordinator never delays a cutover quiesce.
  ReconfigBackoff();
  // Memory-failure reconfiguration barrier (§3.2.5).
  while (cluster_->membership().reconfiguring()) {
    if (server_->halted()) return Status::Unavailable("compute node halted");
    SleepForMicros(50);
  }
  if (gate_ != nullptr && !gate_->EnterTxn(server_->halted_flag())) {
    return Status::Unavailable("compute node halted");
  }
  begin_ring_epoch_ = cluster_->ring().epoch();
  in_txn_ = true;
  txn_id_ = (static_cast<uint64_t>(coord_id_) << 32) | next_txn_seq_++;
  write_set_.clear();
  write_index_.clear();
  read_set_.clear();
  coord_log_slots_.clear();
  log_writer_.ResetForNewTxn();
  return Status::OK();
}

void Coordinator::FinishTxn() {
  in_txn_ = false;
  write_set_.clear();
  write_index_.clear();
  read_set_.clear();
  coord_log_slots_.clear();
  if (gate_ != nullptr) gate_->ExitTxn();
}

bool Coordinator::RingEpochChanged(bool refresh) {
  const uint64_t current = cluster_->ring().epoch();
  if (current == begin_ring_epoch_) return false;
  if (refresh) begin_ring_epoch_ = current;
  return true;
}

void Coordinator::ReconfigBackoff() {
  if (reconfig_backoff_level_ == 0) return;
  const uint32_t shift = std::min<uint32_t>(reconfig_backoff_level_ - 1, 10);
  const uint64_t us = std::min<uint64_t>(
      config_.reconfig_backoff_max_us,
      config_.reconfig_backoff_base_us << shift);
  stats_.reconfig_retries++;
  SleepForMicros(us);
}

Coordinator::WriteOp* Coordinator::FindWriteOp(store::TableId table,
                                               store::Key key) {
  const auto it = write_index_.find(TableKey{table, key});
  return it == write_index_.end() ? nullptr : &write_set_[it->second];
}

Coordinator::WriteOp* Coordinator::AppendWriteOp(WriteOp op) {
  write_index_[TableKey{op.table, op.key}] = write_set_.size();
  write_set_.push_back(std::move(op));
  return &write_set_.back();
}

Coordinator::WriteOp Coordinator::PopLastWriteOp() {
  WriteOp op = std::move(write_set_.back());
  write_set_.pop_back();
  write_index_.erase(TableKey{op.table, op.key});
  return op;
}

Status Coordinator::ResolveSlot(store::TableId table, store::Key key,
                                rdma::NodeId node, bool claim_for_insert,
                                uint64_t* slot, bool* existed,
                                uint64_t* rtt_counter) {
  const cluster::AddressCache& shared = cluster_->addresses();
  if (const auto cached = local_addresses_.Lookup(shared, table, node, key)) {
    *slot = *cached;
    *existed = true;
    return Status::OK();
  }
  if (const auto cached = shared.Lookup(table, node, key)) {
    local_addresses_.Insert(shared, table, node, key, *cached);
    *slot = *cached;
    *existed = true;
    return Status::OK();
  }
  const cluster::TableInfo& info = cluster_->catalog().table(table);
  rdma::QueuePair* qp = server_->qp(node);
  store::SlotState state;
  uint64_t probe_rtts = 0;
  Status status;
  if (claim_for_insert) {
    bool was_there = false;
    status = store::FindOrClaimSlot(qp, info.region_rkeys[node],
                                    info.layout, key, &state, &was_there,
                                    &probe_rtts);
    *existed = was_there;
  } else {
    status = store::FindSlotByProbe(qp, info.region_rkeys[node],
                                    info.layout, key, &state, &probe_rtts);
    if (status.IsNotFound()) *existed = false;
    if (status.ok()) *existed = true;
  }
  CountRtts(rtt_counter, probe_rtts);
  if (status.IsNotFound() && !claim_for_insert) return Status::OK();
  PANDORA_RETURN_NOT_OK(status);
  *slot = state.slot;
  cluster_->addresses().InsertOverlay(table, node, key, state.slot);
  local_addresses_.Insert(shared, table, node, key, state.slot);
  return Status::OK();
}

cluster::ReplicaSet Coordinator::PlacementFor(store::TableId table,
                                              store::Key key) {
  const uint64_t hash = cluster::HashRing::PlacementHash(table, key);
  if (!config_.placement_cache) {
    return cluster_->ring().ReplicaSetForHash(hash);
  }
  const uint64_t epoch = cluster_->placement_epoch();
  if (const cluster::ReplicaSet* cached =
          placement_cache_.Lookup(hash, epoch)) {
    stats_.placement_hits++;
    return *cached;
  }
  stats_.placement_misses++;
  const cluster::ReplicaSet replicas =
      cluster_->ring().ReplicaSetForHash(hash);
  placement_cache_.Insert(hash, epoch, replicas);
  return replicas;
}

rdma::NodeId Coordinator::PrimaryFor(store::TableId table, store::Key key) {
  return cluster_->PrimaryOf(PlacementFor(table, key));
}

Status Coordinator::ResolvePlacement(WriteOp* op) {
  op->replicas = PlacementFor(op->table, op->key);
  op->slots.fill(std::numeric_limits<uint64_t>::max());
  op->lock_node = rdma::kInvalidNodeId;
  for (uint32_t i = 0; i < op->replicas.size(); ++i) {
    const rdma::NodeId node = op->replicas[i];
    if (!cluster_->membership().IsMemoryAlive(node)) continue;
    bool existed = false;
    uint64_t slot = 0;
    PANDORA_RETURN_NOT_OK(ResolveSlot(op->table, op->key, node,
                                      op->is_insert, &slot, &existed,
                                      &stats_.execution_rtts));
    if (!existed && !op->is_insert) {
      return Status::NotFound("key absent");
    }
    op->slots[i] = slot;
    if (op->lock_node == rdma::kInvalidNodeId) {
      // First alive replica = current primary; locks live there.
      op->lock_node = node;
      op->lock_slot = slot;
    }
  }
  if (op->lock_node == rdma::kInvalidNodeId) {
    return Status::Internal("all replicas of object lost (> f failures)");
  }
  return Status::OK();
}

Status Coordinator::FetchUndoImage(WriteOp* op) {
  const cluster::TableInfo& info = cluster_->catalog().table(op->table);
  const store::TableLayout& layout = info.layout;
  const size_t len = 16 + layout.padded_value_size();
  fetch_buf_.resize(len);
  CountRtts(&stats_.execution_rtts, 1);
  PANDORA_RETURN_NOT_OK(server_->qp(op->lock_node)
                            ->Read(info.region_rkeys[op->lock_node],
                                   layout.VersionOffset(op->lock_slot),
                                   fetch_buf_.data(), len));
  op->old_version = DecodeFixed64(fetch_buf_.data());
  op->old_value.assign(fetch_buf_.begin() + 16, fetch_buf_.begin() + len);
  return Status::OK();
}

Status Coordinator::PostLockAndFetchChain(WriteOp* op, uint64_t expected,
                                          uint64_t* observed,
                                          rdma::VerbBatch* rider,
                                          bool* fetched) {
  const cluster::TableInfo& info = cluster_->catalog().table(op->table);
  const store::TableLayout& layout = info.layout;
  const store::LockWord mine = store::MakeLock(coord_id_);
  const size_t len = 16 + layout.padded_value_size();
  fetch_buf_.resize(len);
  *fetched = false;

  rdma::OrderedBatch chain(server_->qp(op->lock_node));
  chain.CompareSwap(info.region_rkeys[op->lock_node],
                    layout.LockOffset(op->lock_slot), expected, mine,
                    observed);
  chain.Read(info.region_rkeys[op->lock_node],
             layout.VersionOffset(op->lock_slot), fetch_buf_.data(), len);
  CountRtts(&stats_.execution_rtts, 1);
  const Status status =
      chain.Execute(rider != nullptr ? rider->pending_max_rtt_ns() : 0);
  if (rider != nullptr) {
    // The rider's round trip was covered by the chain's wait; surface its
    // first error after the chain's own.
    const Status rider_status = rider->Collect();
    PANDORA_RETURN_NOT_OK(status);
    PANDORA_RETURN_NOT_OK(rider_status);
  }
  PANDORA_RETURN_NOT_OK(status);
  if (*observed != expected) return Status::OK();  // CAS lost: discard read.
  op->old_version = DecodeFixed64(fetch_buf_.data());
  op->old_value.assign(fetch_buf_.begin() + 16, fetch_buf_.begin() + len);
  *fetched = true;
  return Status::OK();
}

Status Coordinator::LockAndFetch(WriteOp* op, rdma::VerbBatch* rider) {
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kBeforeLock));
  const store::LockWord mine = store::MakeLock(coord_id_);
  const uint64_t deadline =
      NowMicros() + config_.stall_timeout_us;

  while (true) {
    // Reconfiguration epoch fence: a ring cutover since Begin means this
    // op's resolved placement may point into a moved range. With locks
    // already held the transaction aborts cheaply (the abort path releases
    // them wherever they were taken); before the first lock it simply
    // re-resolves against the new ring and proceeds.
    if (config_.reconfig_fence && RingEpochChanged(/*refresh=*/false)) {
      bool any_locked = false;
      for (const WriteOp& w : write_set_) any_locked |= w.locked;
      if (any_locked) {
        stats_.reconfig_aborts++;
        if (reconfig_backoff_level_ < 16) reconfig_backoff_level_++;
        return Status::Busy("placement epoch changed by reconfiguration");
      }
      stats_.reconfig_retries++;
      RingEpochChanged(/*refresh=*/true);
      PANDORA_RETURN_NOT_OK(ResolvePlacement(op));
    }
    const cluster::TableInfo& info = cluster_->catalog().table(op->table);
    uint64_t observed = 0;
    bool fetched = false;
    Status status;
    if (pipelining_enabled()) {
      // §3.1.1: lock CAS + speculative undo-image read, one doorbell, one
      // round trip. If the CAS loses, the read result is discarded and the
      // conflict path below runs exactly as in the unpipelined protocol.
      status = PostLockAndFetchChain(op, store::kUnlocked, &observed,
                                     rider, &fetched);
    } else {
      status =
          server_->qp(op->lock_node)
              ->CompareSwap(info.region_rkeys[op->lock_node],
                            info.layout.LockOffset(op->lock_slot),
                            store::kUnlocked, mine, &observed);
      CountRtts(&stats_.execution_rtts, 1);
    }
    rider = nullptr;  // A rider batch is drained by the first attempt.
    if (status.IsUnavailable()) {
      if (server_->halted()) return status;
      // Primary died under us: fail over to the next alive replica.
      PANDORA_RETURN_NOT_OK(ResolveApplyFailure(op->lock_node));
      PANDORA_RETURN_NOT_OK(ResolvePlacement(op));
      continue;
    }
    PANDORA_RETURN_NOT_OK(status);

    if (observed == store::kUnlocked) {
      PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterLock));
      op->locked = true;
      if (!fetched) PANDORA_RETURN_NOT_OK(FetchUndoImage(op));
      PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterLockFetch));
      return Status::OK();
    }

    const uint16_t owner = store::LockOwner(observed);
    if (server_->failed_ids().Test(owner)) {
      if (config_.pill_enabled()) {
        // PILL (§3.1.2): the lock is stray — its owner has failed and its
        // transaction was never logged (stray-lock notification is sent
        // only after log recovery). Steal it with one more CAS; under
        // pipelining the steal CAS and the undo-image read share one
        // doorbell just like the fast path.
        uint64_t steal_observed = 0;
        bool steal_fetched = false;
        if (pipelining_enabled()) {
          PANDORA_RETURN_NOT_OK(PostLockAndFetchChain(
              op, observed, &steal_observed, nullptr, &steal_fetched));
        } else {
          PANDORA_RETURN_NOT_OK(
              server_->qp(op->lock_node)
                  ->CompareSwap(info.region_rkeys[op->lock_node],
                                info.layout.LockOffset(op->lock_slot),
                                observed, mine, &steal_observed));
          CountRtts(&stats_.execution_rtts, 1);
        }
        if (steal_observed == observed) {
          stats_.locks_stolen++;
          PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterLock));
          op->locked = true;
          if (!steal_fetched) PANDORA_RETURN_NOT_OK(FetchUndoImage(op));
          PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterLockFetch));
          return Status::OK();
        }
        continue;  // Someone else stole or released it first; retry.
      }
      // No PILL: the object needs recovery. §6.4's stalling path waits
      // out the recovery (scan / intent processing) instead of aborting.
      // Stalling only on *recovery-pending* locks (never on live owners)
      // cannot deadlock live transactions against each other.
      stats_.lock_conflicts++;
      if (config_.stall_on_conflict && NowMicros() < deadline &&
          (gate_ == nullptr || !gate_->blocked())) {
        stats_.stall_retries++;
        SleepForMicros(config_.stall_retry_interval_us);
        continue;
      }
      return Status::Busy("object awaiting recovery");
    }

    stats_.lock_conflicts++;
    return Status::Busy("object locked by live transaction");
  }
}

Status Coordinator::WriteLockIntent(const WriteOp& op) {
  store::LogRecord record;
  record.txn_id = txn_id_;
  record.coord_id = coord_id_;
  store::LogEntry entry;
  entry.table = op.table;
  entry.key = op.key;
  entry.is_lock_intent = true;
  record.entries.push_back(std::move(entry));

  rdma::VerbBatch batch;
  std::vector<uint32_t> slots;
  PANDORA_RETURN_NOT_OK(
      log_writer_.PostCoordinatorRecord(record, &batch, &slots));
  stats_.log_records_written++;
  CountRtts(&stats_.execution_rtts, 1);
  return batch.Execute();
}

Status Coordinator::PostPerObjectLog(WriteOp* op, rdma::VerbBatch* batch) {
  store::LogRecord record;
  record.txn_id = txn_id_;
  record.coord_id = coord_id_;
  store::LogEntry entry;
  entry.table = op->table;
  entry.key = op->key;
  entry.old_version = op->old_version;
  entry.is_insert = op->is_insert;
  entry.is_delete = op->is_delete;
  if (!op->is_insert) entry.old_value = op->old_value;
  record.entries.push_back(std::move(entry));

  PANDORA_RETURN_NOT_OK(log_writer_.PostPerObjectRecord(
      record, op->replicas, batch, &op->log_slots));
  stats_.log_records_written++;
  return Status::OK();
}

Status Coordinator::WritePerObjectLog(WriteOp* op) {
  if (config_.disable_recovery_logging) return Status::OK();
  if (op->is_insert && config_.bugs.missing_insert_logging) {
    stats_.bug_injections++;
    return Status::OK();  // FORD bug: inserts never logged.
  }
  rdma::VerbBatch batch;
  PANDORA_RETURN_NOT_OK(PostPerObjectLog(op, &batch));
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kBeforeLogWrite));
  CountRtts(&stats_.execution_rtts, 1);
  PANDORA_RETURN_NOT_OK(batch.Execute());
  return MaybeCrash(CrashPoint::kAfterLogWrite);
}

Status Coordinator::StageWrite(WriteOp op) {
  // Guard the fixed-slot log area: baseline modes write one record per
  // object (plus one intent in the traditional scheme).
  const uint32_t slots =
      cluster_->catalog().log_layout().config().slots_per_coordinator;
  const uint32_t per_op =
      config_.mode == ProtocolMode::kTraditionalLogging ? 2 : 1;
  if (config_.mode != ProtocolMode::kPandora &&
      (write_set_.size() + 1) * per_op > slots) {
    return Status::ResourceExhausted(
        "write-set exceeds per-coordinator log slots");
  }

  PANDORA_RETURN_NOT_OK(ResolvePlacement(&op));

  if (config_.mode == ProtocolMode::kTraditionalLogging) {
    // §6.1: lock-intent logged *before* the lock CAS — the extra round
    // trip that lets recovery release stray locks without scanning.
    PANDORA_RETURN_NOT_OK(WriteLockIntent(op));
  }

  if (config_.bugs.relaxed_locks) {
    // FORD bug: defer the lock to commit time, where it overlaps
    // validation. Prefetch the undo image without holding the lock.
    stats_.bug_injections++;
    PANDORA_RETURN_NOT_OK(FetchUndoImageUnlocked(&op));
    AppendWriteOp(std::move(op));
    return Status::OK();
  }

  const bool log_before_lock = config_.bugs.logging_without_locking &&
                               config_.mode != ProtocolMode::kPandora;
  rdma::VerbBatch log_rider;
  bool rider_pending = false;
  if (log_before_lock) {
    // FORD bug: undo record written before the lock is grabbed, with a
    // pre-lock value image.
    stats_.bug_injections++;
    PANDORA_RETURN_NOT_OK(FetchUndoImageUnlocked(&op));
    if (pipelining_enabled() && !config_.disable_recovery_logging &&
        !(op.is_insert && config_.bugs.missing_insert_logging)) {
      // The record's content is already known here (pre-lock image), so
      // its writes can ride the lock CAS + read doorbell group instead of
      // costing a round trip of their own. The normal (fixed) FORD path
      // cannot coalesce this way: its record carries the post-lock image
      // the chain is about to fetch.
      PANDORA_RETURN_NOT_OK(PostPerObjectLog(&op, &log_rider));
      rider_pending = true;
    } else {
      PANDORA_RETURN_NOT_OK(WritePerObjectLog(&op));
    }
  }

  // Stage before locking so the abort path sees this op (the Complicit
  // Aborts bug releases locks of ops that never acquired them).
  WriteOp* staged = AppendWriteOp(std::move(op));

  Status status =
      LockAndFetch(staged, rider_pending ? &log_rider : nullptr);
  if (status.IsBusy()) {
    Status abort_status = AbortInternal();
    if (abort_status.IsUnavailable()) return abort_status;
    return Status::Aborted("lock conflict");
  }
  PANDORA_RETURN_NOT_OK(status);

  if (config_.mode != ProtocolMode::kPandora && !log_before_lock) {
    // FORD writes the per-object undo record during execution, after
    // lock + read (lock-to-log order holds per object).
    PANDORA_RETURN_NOT_OK(WritePerObjectLog(staged));
  }
  return Status::OK();
}

Status Coordinator::FetchUndoImageUnlocked(WriteOp* op) {
  const rdma::NodeId saved = op->lock_node;
  PANDORA_RETURN_NOT_OK(FetchUndoImage(op));
  op->lock_node = saved;
  return Status::OK();
}

Status Coordinator::Read(store::TableId table, store::Key key,
                         std::string* value) {
  return FinalizeIfCrashed(ReadInternal(table, key, value));
}

Status Coordinator::ReadInternal(store::TableId table, store::Key key,
                                 std::string* value) {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  const cluster::TableInfo& info = cluster_->catalog().table(table);

  // Read-your-writes.
  if (const WriteOp* op = FindWriteOp(table, key)) {
    if (op->is_delete) return Status::NotFound("deleted in this txn");
    value->assign(op->new_value.data(), info.spec.value_size);
    return Status::OK();
  }

  const uint64_t deadline = NowMicros() + config_.stall_timeout_us;
  while (true) {
    const rdma::NodeId node = PrimaryFor(table, key);
    if (node == rdma::kInvalidNodeId) {
      return Status::Internal("all replicas of object lost (> f failures)");
    }
    uint64_t slot = 0;
    bool existed = false;
    PANDORA_RETURN_NOT_OK(
        ResolveSlot(table, key, node, /*claim_for_insert=*/false, &slot,
                    &existed, &stats_.execution_rtts));
    if (!existed) return Status::NotFound("key absent");

    const store::TableLayout& layout = info.layout;
    const size_t len = store::SlotReadSize(layout);
    read_buf_.resize(len);
    char* buf = read_buf_.data();
    CountRtts(&stats_.execution_rtts, 1);
    const Status status =
        server_->qp(node)->Read(info.region_rkeys[node],
                                layout.LockOffset(slot), buf, len);
    if (status.IsUnavailable()) {
      if (server_->halted()) return status;
      PANDORA_RETURN_NOT_OK(ResolveApplyFailure(node));
      continue;  // Primary died; re-resolve.
    }
    PANDORA_RETURN_NOT_OK(status);

    const store::LockWord lock = DecodeFixed64(buf);
    const store::VersionWord version = DecodeFixed64(buf + 8);
    if (store::LockHeld(lock) && store::LockOwner(lock) != coord_id_) {
      const uint16_t owner = store::LockOwner(lock);
      if (server_->failed_ids().Test(owner)) {
        if (config_.pill_enabled()) {
          // Stray lock: its owner failed before logging, so the object
          // state is the last committed one — proceed as if unlocked
          // (§3.1.2).
          stats_.stray_reads_ignored++;
        } else if (config_.stall_on_conflict && NowMicros() < deadline &&
                   (gate_ == nullptr || !gate_->blocked())) {
          // §6.4 stalling path: the object awaits recovery; wait it out.
          stats_.stall_retries++;
          SleepForMicros(config_.stall_retry_interval_us);
          continue;
        } else {
          stats_.lock_conflicts++;
          Status abort_status = AbortInternal();
          if (abort_status.IsUnavailable()) return abort_status;
          return Status::Aborted("read conflict: object awaiting recovery");
        }
      } else {
        stats_.lock_conflicts++;
        Status abort_status = AbortInternal();
        if (abort_status.IsUnavailable()) return abort_status;
        return Status::Aborted("read conflict: object locked");
      }
    }

    // Track absence too: validation re-checks the version word, so a
    // not-found read stays stable until commit.
    read_set_.push_back({table, key, node, slot, version});
    if (!store::ObjectVisible(version)) {
      return Status::NotFound("object deleted or not yet committed");
    }
    value->assign(buf + 24, info.spec.value_size);
    return Status::OK();
  }
}

Status Coordinator::ReadRange(
    store::TableId table, store::Key lo, store::Key hi,
    std::vector<std::pair<store::Key, std::string>>* out) {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  if (hi < lo || hi - lo > 4096) {
    return Status::InvalidArgument("range too large (cap 4096 keys)");
  }
  if (pipelining_enabled()) {
    return FinalizeIfCrashed(ReadRangeBatched(table, lo, hi, out));
  }
  for (store::Key key = lo;; ++key) {
    std::string value;
    const Status status = Read(table, key, &value);
    if (status.ok()) {
      out->emplace_back(key, std::move(value));
    } else if (!status.IsNotFound()) {
      return status;
    }
    if (key == hi) break;
  }
  return Status::OK();
}

Status Coordinator::ReadRangeBatched(
    store::TableId table, store::Key lo, store::Key hi,
    std::vector<std::pair<store::Key, std::string>>* out) {
  const cluster::TableInfo& info = cluster_->catalog().table(table);
  const store::TableLayout& layout = info.layout;
  const size_t count = static_cast<size_t>(hi - lo) + 1;

  // Per-key resolved value; unset entries are absent keys. Filled out of
  // order, emitted in key order at the end.
  std::vector<std::string> values(count);
  std::vector<bool> present(count, false);

  struct Target {
    store::Key key = 0;
    rdma::NodeId node = rdma::kInvalidNodeId;
    uint64_t slot = 0;
  };
  std::vector<Target> targets;
  std::vector<store::ProbeRequest> probes;
  std::vector<Target> probe_targets;  // Aligned with `probes` (slot unset).

  for (store::Key key = lo;; ++key) {
    if (const WriteOp* op = FindWriteOp(table, key)) {
      // Read-your-writes, straight from the staged image.
      if (!op->is_delete) {
        values[key - lo].assign(op->new_value.data(),
                                info.spec.value_size);
        present[key - lo] = true;
      }
      if (key == hi) break;
      continue;
    }
    const rdma::NodeId node = PrimaryFor(table, key);
    if (node == rdma::kInvalidNodeId) {
      return Status::Internal("all replicas of object lost (> f failures)");
    }
    const cluster::AddressCache& shared = cluster_->addresses();
    if (const auto local = local_addresses_.Lookup(shared, table, node, key)) {
      targets.push_back({key, node, *local});
    } else if (const auto cached = shared.Lookup(table, node, key)) {
      local_addresses_.Insert(shared, table, node, key, *cached);
      targets.push_back({key, node, *cached});
    } else {
      probes.push_back(
          {server_->qp(node), info.region_rkeys[node], key});
      probe_targets.push_back({key, node, 0});
    }
    if (key == hi) break;
  }

  // Resolve cache misses with batched probe rounds (max-RTT per round
  // across all unresolved keys, instead of a sequential chain per key).
  if (!probes.empty()) {
    std::vector<store::ProbeOutcome> outcomes;
    uint64_t probe_rounds = 0;
    const Status probe_status = store::FindSlotsByBatchedProbe(
        layout, probes, &outcomes, &probe_rounds, &probe_scratch_);
    CountRtts(&stats_.execution_rtts, probe_rounds);
    if (!probe_status.ok()) {
      // A verb failed (dead server / our own halt): fall back to the
      // sequential path for the unresolved keys — it carries the
      // fail-over and retry machinery.
      for (const Target& target : probe_targets) {
        std::string value;
        const Status status = ReadInternal(table, target.key, &value);
        if (status.ok()) {
          values[target.key - lo] = std::move(value);
          present[target.key - lo] = true;
        } else if (!status.IsNotFound()) {
          return status;
        }
      }
      probe_targets.clear();
    } else {
      for (size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].status.IsNotFound()) continue;  // Key absent.
        PANDORA_RETURN_NOT_OK(outcomes[i].status);
        Target target = probe_targets[i];
        target.slot = outcomes[i].state.slot;
        cluster_->addresses().InsertOverlay(table, target.node, target.key,
                                            target.slot);
        local_addresses_.Insert(cluster_->addresses(), table, target.node,
                                target.key, target.slot);
        targets.push_back(target);
      }
    }
  }

  // One combined {lock, version, key, value} read per existing key, all in
  // one doorbell round.
  const size_t len = store::SlotReadSize(layout);
  range_buf_.resize(len * targets.size());
  rdma::VerbBatch batch;
  for (size_t i = 0; i < targets.size(); ++i) {
    store::PostSlotRead(&batch, server_->qp(targets[i].node),
                        info.region_rkeys[targets[i].node], layout,
                        targets[i].slot, range_buf_.data() + i * len);
  }
  if (batch.size() > 0) {
    CountRtts(&stats_.execution_rtts, 1);
    const Status status = batch.Execute();
    if (!status.ok()) {
      if (status.IsUnavailable() && server_->halted()) return status;
      if (status.IsPermissionDenied()) return status;
      // A replica died mid-round: re-read the affected keys through the
      // sequential path, which fails over to the new primary.
      for (const Target& target : targets) {
        std::string value;
        const Status read_status = ReadInternal(table, target.key, &value);
        if (read_status.ok()) {
          values[target.key - lo] = std::move(value);
          present[target.key - lo] = true;
        } else if (!read_status.IsNotFound()) {
          return read_status;
        }
      }
      targets.clear();
    }
  }

  for (size_t i = 0; i < targets.size(); ++i) {
    const Target& target = targets[i];
    const store::SlotReadView view =
        store::DecodeSlotRead(range_buf_.data() + i * len);
    if (store::LockHeld(view.lock) &&
        store::LockOwner(view.lock) != coord_id_) {
      const uint16_t owner = store::LockOwner(view.lock);
      if (server_->failed_ids().Test(owner) && config_.pill_enabled()) {
        // Stray lock (§3.1.2): the object state is the last committed one.
        stats_.stray_reads_ignored++;
      } else if (server_->failed_ids().Test(owner) &&
                 config_.stall_on_conflict) {
        // Object awaiting recovery: take the sequential path for this key
        // so its stall/retry loop applies.
        std::string value;
        const Status status = ReadInternal(table, target.key, &value);
        if (status.ok()) {
          values[target.key - lo] = std::move(value);
          present[target.key - lo] = true;
        } else if (!status.IsNotFound()) {
          return status;
        }
        continue;
      } else {
        stats_.lock_conflicts++;
        Status abort_status = AbortInternal();
        if (abort_status.IsUnavailable()) return abort_status;
        return Status::Aborted("read conflict: object locked");
      }
    }
    // Track absence too, exactly as the point read does.
    read_set_.push_back(
        {table, target.key, target.node, target.slot, view.version});
    if (store::ObjectVisible(view.version)) {
      values[target.key - lo].assign(view.value, info.spec.value_size);
      present[target.key - lo] = true;
    }
  }

  for (size_t i = 0; i < count; ++i) {
    if (present[i]) {
      out->emplace_back(lo + static_cast<store::Key>(i),
                        std::move(values[i]));
    }
  }
  return Status::OK();
}

Status Coordinator::Write(store::TableId table, store::Key key,
                          Slice value) {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  const cluster::TableInfo& info = cluster_->catalog().table(table);
  if (value.size() > info.spec.value_size) {
    return Status::InvalidArgument("value larger than table value_size");
  }
  if (WriteOp* op = FindWriteOp(table, key)) {
    std::fill(op->new_value.begin(), op->new_value.end(), 0);
    std::memcpy(op->new_value.data(), value.data(), value.size());
    op->is_delete = false;
    return Status::OK();
  }
  WriteOp op;
  op.table = table;
  op.key = key;
  op.new_value.assign(info.layout.padded_value_size(), 0);
  std::memcpy(op.new_value.data(), value.data(), value.size());
  return FinalizeIfCrashed(StageWrite(std::move(op)));
}

Status Coordinator::Insert(store::TableId table, store::Key key,
                           Slice value) {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  const cluster::TableInfo& info = cluster_->catalog().table(table);
  if (value.size() > info.spec.value_size) {
    return Status::InvalidArgument("value larger than table value_size");
  }
  if (key == store::kFreeKey) {
    return Status::InvalidArgument("reserved key value");
  }
  if (FindWriteOp(table, key) != nullptr) {
    return Status::InvalidArgument("key already staged in this txn");
  }
  WriteOp op;
  op.table = table;
  op.key = key;
  op.is_insert = true;
  op.new_value.assign(info.layout.padded_value_size(), 0);
  std::memcpy(op.new_value.data(), value.data(), value.size());
  const Status status = FinalizeIfCrashed(StageWrite(std::move(op)));
  if (!status.ok()) return status;
  // Upsert semantics: if the object turned out to already exist and be
  // visible, this behaves as a Write (is_insert drops so the undo image is
  // kept and a rollback restores the old value).
  WriteOp* staged = &write_set_.back();
  if (store::ObjectVisible(staged->old_version)) staged->is_insert = false;
  return Status::OK();
}

Status Coordinator::Delete(store::TableId table, store::Key key) {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  if (WriteOp* op = FindWriteOp(table, key)) {
    op->is_delete = true;
    return Status::OK();
  }
  WriteOp op;
  op.table = table;
  op.key = key;
  op.is_delete = true;
  const cluster::TableInfo& info = cluster_->catalog().table(table);
  op.new_value.assign(info.layout.padded_value_size(), 0);
  const Status status = FinalizeIfCrashed(StageWrite(std::move(op)));
  if (!status.ok()) return status;
  if (!store::ObjectVisible(write_set_.back().old_version)) {
    // Deleting a non-existent object: release the lock we just took and
    // drop the op; the transaction stays live.
    WriteOp dropped = PopLastWriteOp();
    if (dropped.locked) {
      const cluster::TableInfo& t = cluster_->catalog().table(table);
      CountRtts(&stats_.execution_rtts, 1);
      server_->qp(dropped.lock_node)
          ->Write(t.region_rkeys[dropped.lock_node],
                  t.layout.LockOffset(dropped.lock_slot), &kUnlockedWord,
                  sizeof(kUnlockedWord));
    }
    return Status::NotFound("key absent");
  }
  return Status::OK();
}

const store::LogRecord& Coordinator::BuildCoordinatorRecord() {
  store::LogRecord& record = record_scratch_;
  record.txn_id = txn_id_;
  record.coord_id = coord_id_;
  size_t n = 0;
  for (const WriteOp& op : write_set_) {
    if (op.is_insert && config_.bugs.missing_insert_logging) continue;
    if (n == record.entries.size()) record.entries.emplace_back();
    store::LogEntry& entry = record.entries[n++];
    entry.table = op.table;
    entry.key = op.key;
    entry.old_version = op.old_version;
    entry.is_insert = op.is_insert;
    entry.is_delete = op.is_delete;
    entry.is_lock_intent = false;
    if (op.is_insert) {
      entry.old_value.clear();
    } else {
      entry.old_value.assign(op.old_value.begin(), op.old_value.end());
    }
  }
  record.entries.resize(n);
  return record;
}

Status Coordinator::PostValidationReads(rdma::VerbBatch* batch,
                                        std::vector<ValidationRead>* reads) {
  reads->resize(read_set_.size());
  for (size_t i = 0; i < read_set_.size(); ++i) {
    const ReadOp& r = read_set_[i];
    const cluster::TableInfo& info = cluster_->catalog().table(r.table);
    if (!cluster_->membership().IsMemoryAlive(r.node)) continue;
    batch->Read(server_->qp(r.node), info.region_rkeys[r.node],
                info.layout.LockOffset(r.slot), (*reads)[i].buf, 16);
  }
  return Status::OK();
}

Status Coordinator::CheckValidation(
    const std::vector<ValidationRead>& reads) {
  for (size_t i = 0; i < read_set_.size(); ++i) {
    const ReadOp& r = read_set_[i];
    store::LockWord lock;
    store::VersionWord version;
    if (cluster_->membership().IsMemoryAlive(r.node)) {
      lock = DecodeFixed64(reads[i].buf);
      version = DecodeFixed64(reads[i].buf + 8);
    } else {
      // The primary we read from died: re-validate against the current
      // primary (a backup holding the same committed version).
      const rdma::NodeId node = PrimaryFor(r.table, r.key);
      if (node == rdma::kInvalidNodeId) {
        return Status::Aborted("replicas lost during validation");
      }
      uint64_t slot = 0;
      bool existed = false;
      PANDORA_RETURN_NOT_OK(ResolveSlot(r.table, r.key, node,
                                        /*claim_for_insert=*/false, &slot,
                                        &existed, &stats_.commit_rtts));
      if (!existed) return Status::Aborted("object vanished");
      alignas(8) char buf[16];
      const cluster::TableInfo& info = cluster_->catalog().table(r.table);
      CountRtts(&stats_.commit_rtts, 1);
      PANDORA_RETURN_NOT_OK(server_->qp(node)->Read(
          info.region_rkeys[node], info.layout.LockOffset(slot), buf, 16));
      lock = DecodeFixed64(buf);
      version = DecodeFixed64(buf + 8);
    }

    if (version != r.version) {
      return Status::Aborted("read-set version changed");
    }
    if (config_.bugs.covert_locks) {
      // FORD bug: skip the lock check. Count it as exercised only when
      // the skipped check would actually have seen a foreign lock.
      if (store::LockHeld(lock) && store::LockOwner(lock) != coord_id_) {
        stats_.bug_injections++;
      }
      continue;
    }
    if (store::LockHeld(lock)) {
      const uint16_t owner = store::LockOwner(lock);
      if (owner == coord_id_) continue;  // Our own write-set lock.
      if (config_.pill_enabled() && server_->failed_ids().Test(owner)) {
        stats_.stray_reads_ignored++;
        continue;  // Stray lock: object state is still the committed one.
      }
      return Status::Aborted("read-set object locked");
    }
  }
  return Status::OK();
}

Status Coordinator::Commit() {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  const Status status = FinalizeIfCrashed(
      server_->halted() ? Status::Unavailable("compute node halted")
                        : CommitInternal());
  if (status.ok()) reconfig_backoff_level_ = 0;
  return status;
}

Status Coordinator::CommitInternal() {
  if (merged_commit_enabled()) return CommitMergedInternal();

  // ---- Logging + validation, overlapped in one doorbell (§3.1.4-3.1.5:
  // logging costs no extra round trip on the commit path).
  rdma::VerbBatch batch;
  std::vector<ValidationRead> vreads;

  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kBeforeLogWrite));
  if (config_.mode == ProtocolMode::kPandora && !write_set_.empty() &&
      !config_.disable_recovery_logging) {
    const Status log_status = log_writer_.PostCoordinatorRecord(
        BuildCoordinatorRecord(), &batch, &coord_log_slots_);
    if (log_status.IsResourceExhausted()) {
      // Write-set larger than the coordinator's log area: abort cleanly.
      if (batch.size() > 0) CountRtts(&stats_.commit_rtts, 1);
      batch.Execute();
      Status abort_status = AbortInternal();
      if (abort_status.IsUnavailable()) return abort_status;
      return Status::Aborted(log_status.message());
    }
    PANDORA_RETURN_NOT_OK(log_status);
    stats_.log_records_written++;
    if (!batching_enabled()) {
      // Ablation: without doorbell batching the log write is its own
      // round trip instead of overlapping the validation reads.
      CountRtts(&stats_.commit_rtts, 1);
      const Status status = batch.Execute();
      if (status.IsUnavailable() && server_->halted()) return status;
    }
  }
  PANDORA_RETURN_NOT_OK(PostValidationReads(&batch, &vreads));

  if (config_.bugs.relaxed_locks) {
    // FORD bug: the deferred lock CASes ride in the same doorbell *after*
    // the validation reads, so validation can overlap lock acquisition.
    bool any_deferred = false;
    for (const WriteOp& op : write_set_) {
      if (!op.locked) any_deferred = true;
    }
    if (any_deferred) {
      PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kBeforeDeferredLock));
    }
    for (WriteOp& op : write_set_) {
      if (op.locked) continue;
      const cluster::TableInfo& info = cluster_->catalog().table(op.table);
      batch.CompareSwap(server_->qp(op.lock_node),
                        info.region_rkeys[op.lock_node],
                        info.layout.LockOffset(op.lock_slot),
                        store::kUnlocked, store::MakeLock(coord_id_),
                        &op.deferred_lock_observed);
    }
  }

  if (batch.size() > 0) CountRtts(&stats_.commit_rtts, 1);
  Status status = batch.Execute();
  if (status.IsUnavailable() && server_->halted()) return status;
  // A dead memory server inside the batch is tolerated: log writes to dead
  // log servers are skipped, validation falls back per entry below.

  if (config_.mode == ProtocolMode::kPandora && !coord_log_slots_.empty()) {
    // NVM deployments: the record is durable only after the flush.
    PANDORA_RETURN_NOT_OK(
        FlushForPersistence(log_writer_.log_servers()));
  }
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterLogWrite));

  if (config_.bugs.relaxed_locks) {
    for (WriteOp& op : write_set_) {
      if (op.locked) continue;
      if (op.deferred_lock_observed == store::kUnlocked) {
        op.locked = true;
      } else {
        stats_.lock_conflicts++;
        Status abort_status = AbortInternal();
        if (abort_status.IsUnavailable()) return abort_status;
        return Status::Aborted("deferred lock conflict");
      }
    }
  }

  status = CheckValidation(vreads);
  if (status.IsUnavailable() && server_->halted()) return status;
  if (!status.ok()) {
    stats_.validation_failures++;
    Status abort_status = AbortInternal();
    if (abort_status.IsUnavailable()) return abort_status;
    return Status::Aborted(status.message());
  }
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterValidation));

  // Reconfiguration epoch fence at the validation point: the versions just
  // checked (and the locks held) live on the *old* placement. If the ring
  // was cut over since Begin, committing here could land updates on
  // replicas a migrated range no longer reads — abort instead and let the
  // retry run against the new placement.
  if (config_.reconfig_fence && RingEpochChanged(/*refresh=*/false)) {
    stats_.reconfig_aborts++;
    if (reconfig_backoff_level_ < 16) reconfig_backoff_level_++;
    Status abort_status = AbortInternal();
    if (abort_status.IsUnavailable()) return abort_status;
    return Status::Aborted("placement epoch changed at validation");
  }

  // ---- Decision reached: commit. Apply to every live replica.
  PANDORA_RETURN_NOT_OK(ApplyWrites());

  // ---- Client ack (Cor3: only after all replicas are updated).
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterCommitApply));
  if (ack_callback_) ack_callback_(txn_id_, true);
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterClientAck));

  // ---- Unlock.
  PANDORA_RETURN_NOT_OK(UnlockWriteSet(/*crash_points=*/true));
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterUnlock));

  stats_.committed++;
  FinishTxn();
  return Status::OK();
}

Status Coordinator::CommitMergedInternal() {
  // ---- Validation first. Because the commit decision is reached before
  // any log write below, an abort here needs no truncation round trip:
  // coord_log_slots_ stays empty and AbortInternal only releases locks.
  if (!read_set_.empty()) {
    rdma::VerbBatch vbatch;
    std::vector<ValidationRead> vreads;
    PANDORA_RETURN_NOT_OK(PostValidationReads(&vbatch, &vreads));
    if (vbatch.size() > 0) CountRtts(&stats_.commit_rtts, 1);
    Status status = vbatch.Execute();
    if (status.IsUnavailable() && server_->halted()) return status;
    status = CheckValidation(vreads);
    if (status.IsUnavailable() && server_->halted()) return status;
    if (!status.ok()) {
      stats_.validation_failures++;
      Status abort_status = AbortInternal();
      if (abort_status.IsUnavailable()) return abort_status;
      return Status::Aborted(status.message());
    }
  }

  // Reconfiguration epoch fence at the validation point (see
  // CommitInternal): covers read-only transactions too — their validated
  // versions came from the pre-cutover primaries, which a post-cutover
  // writer no longer updates.
  if (config_.reconfig_fence && RingEpochChanged(/*refresh=*/false)) {
    stats_.reconfig_aborts++;
    if (reconfig_backoff_level_ < 16) reconfig_backoff_level_++;
    Status abort_status = AbortInternal();
    if (abort_status.IsUnavailable()) return abort_status;
    return Status::Aborted("placement epoch changed at validation");
  }

  if (write_set_.empty()) {
    // Read-only transaction: validation was the whole commit.
    if (ack_callback_) ack_callback_(txn_id_, true);
    stats_.committed++;
    FinishTxn();
    return Status::OK();
  }

  // ---- Decision reached: commit. The undo-log record, every replica
  // apply, and the unlocks merge into ONE doorbell group — an ordered
  // chain per touched memory server (whose union covers ≥ f+1 replicas of
  // every write-set object, so the record survives f failures without the
  // designated-server rider). RC in-order delivery makes a server's
  // unlock apply only after its log fragments and its applies; the
  // cross-server post order (all fragments, then all applies, then all
  // unlocks) means a coordinator crash mid-group leaves either a
  // not-yet-applied state recovery rolls back, or a fully-applied state
  // (any unlock posted implies every apply was posted) recovery rolls
  // forward. See DESIGN.md "Merged commit doorbell".
  const bool log_record = !config_.disable_recovery_logging;
  size_t num_fragments = 0;
  if (log_record) {
    // Serialize fragments straight from the write set (no intermediate
    // LogRecord): with a hundred-plus coordinators sharing a core, every
    // per-coordinator scratch structure is cache-cold by its next commit,
    // so the copy into record entries was pure miss tax.
    const store::LogConfig& log_config =
        cluster_->catalog().log_layout().config();
    log_writer_.BeginPrepare();
    bool overflow = false;
    store::LogRecordWriter writer(txn_id_, coord_id_,
                                  log_config.slot_bytes,
                                  log_writer_.AcquireBuffer());
    for (const WriteOp& op : write_set_) {
      const size_t old_len = op.is_insert ? 0 : op.old_value.size();
      const void* old_data = old_len > 0 ? op.old_value.data() : nullptr;
      if (writer.AddEntry(op.table, op.key, op.old_version, op.is_insert,
                          op.is_delete, old_data, old_len)) {
        continue;
      }
      // Fragment full: seal it and start the next one.
      writer.Finish();
      ++num_fragments;
      writer = store::LogRecordWriter(txn_id_, coord_id_,
                                      log_config.slot_bytes,
                                      log_writer_.AcquireBuffer());
      if (!writer.AddEntry(op.table, op.key, op.old_version, op.is_insert,
                           op.is_delete, old_data, old_len)) {
        overflow = true;  // Single entry exceeds the slot size.
        break;
      }
    }
    writer.Finish();
    ++num_fragments;
    if (overflow || num_fragments > log_config.slots_per_coordinator) {
      // Write-set larger than the coordinator's log area: abort cleanly.
      Status abort_status = AbortInternal();
      if (abort_status.IsUnavailable()) return abort_status;
      return Status::Aborted(
          "write-set exceeds the coordinator's log area");
    }
  }

  BuildApplyBufs();

  const std::vector<rdma::NodeId>& touched = TouchedReplicaServers();
  std::vector<std::unique_ptr<rdma::OrderedBatch>> chains;
  chains.reserve(touched.size());
  for (const rdma::NodeId node : touched) {
    chains.push_back(
        std::make_unique<rdma::OrderedBatch>(server_->qp(node)));
  }
  auto chain_for = [&](rdma::NodeId node) -> rdma::OrderedBatch* {
    const auto it = std::lower_bound(touched.begin(), touched.end(), node);
    return chains[static_cast<size_t>(it - touched.begin())].get();
  };

  // 1) Log fragments, on every touched server.
  if (log_record) {
    const store::LogLayout& log_layout = cluster_->catalog().log_layout();
    for (size_t i = 0; i < touched.size(); ++i) {
      const rdma::NodeId node = touched[i];
      if (!cluster_->membership().IsMemoryAlive(node)) continue;
      // Fragments reuse slots [0, num_fragments) every commit instead of
      // round-robining the whole ring: a merged commit posts the record
      // and its applies in one doorbell group, so at most one in-flight
      // record exists per coordinator and the previous txn's (already
      // applied, benign-stale) record is safe to overwrite. The small
      // fixed window also keeps these writes in warm cache lines rather
      // than strobing the 128 KB slot ring on every commit.
      for (size_t f = 0; f < num_fragments; ++f) {
        const std::vector<char>& buf = log_writer_.PreparedFragment(f);
        chains[i]->Write(
            cluster_->catalog().log_rkey(node),
            log_layout.SlotOffset(coord_id_, static_cast<uint32_t>(f)),
            buf.data(), buf.size());
      }
    }
    stats_.log_records_written++;
  }

  // 2) Replica applies.
  for (size_t i = 0; i < write_set_.size(); ++i) {
    WriteOp& op = write_set_[i];
    const cluster::TableInfo& info = cluster_->catalog().table(op.table);
    for (size_t r = 0; r < op.replicas.size(); ++r) {
      const rdma::NodeId node = op.replicas[r];
      if (!cluster_->membership().IsMemoryAlive(node)) continue;
      chain_for(node)->Write(info.region_rkeys[node],
                             info.layout.VersionOffset(op.slots[r]),
                             apply_bufs_[i].data(), apply_bufs_[i].size());
    }
  }

  // 3) Unlocks.
  for (WriteOp& op : write_set_) {
    if (!op.locked) continue;
    if (!cluster_->membership().IsMemoryAlive(op.lock_node)) continue;
    const cluster::TableInfo& info = cluster_->catalog().table(op.table);
    chain_for(op.lock_node)
        ->Write(info.region_rkeys[op.lock_node],
                info.layout.LockOffset(op.lock_slot), &kUnlockedWord,
                sizeof(kUnlockedWord));
  }

  // One shared max-RTT wait covers the whole group: the first non-empty
  // chain pays the max of the sibling chains as extra, the rest drain with
  // Collect().
  size_t first = chains.size();
  uint64_t extra_rtt_ns = 0;
  for (size_t i = 0; i < chains.size(); ++i) {
    if (chains[i]->size() == 0) continue;
    if (first == chains.size()) {
      first = i;
    } else {
      extra_rtt_ns =
          std::max(extra_rtt_ns, chains[i]->pending_max_rtt_ns());
    }
  }
  if (first < chains.size()) {
    CountRtts(&stats_.commit_rtts, 1);
    for (size_t i = first; i < chains.size(); ++i) {
      if (chains[i]->size() == 0) continue;
      const Status status = i == first ? chains[i]->Execute(extra_rtt_ns)
                                       : chains[i]->Collect();
      if (status.ok()) continue;
      if (server_->halted()) {
        return Status::Unavailable("compute node halted");
      }
      // The fabric fails verbs only against dead servers; wait for the
      // membership verdict and skip (§3.2.5: every *live* replica carries
      // the update — chains to live servers completed in full).
      PANDORA_RETURN_NOT_OK(ResolveApplyFailure(touched[i]));
    }
  }

  // ---- Client ack (Cor3: all live replicas are updated).
  if (ack_callback_) ack_callback_(txn_id_, true);

  stats_.committed++;
  FinishTxn();
  return Status::OK();
}

Status Coordinator::FlushForPersistence(
    const std::vector<rdma::NodeId>& servers) {
  if (cluster_->config().persistence !=
      cluster::PersistenceMode::kNvmWithFlush) {
    return Status::OK();
  }
  rdma::VerbBatch batch;
  alignas(8) static thread_local uint64_t sink = 0;
  for (const rdma::NodeId server : servers) {
    if (!cluster_->membership().IsMemoryAlive(server)) continue;
    // Reading any byte of the region drains the RNIC cache for the
    // preceding writes on this connection (FORD's selective flush).
    batch.Read(server_->qp(server), cluster_->catalog().log_rkey(server),
               0, &sink, sizeof(sink));
    stats_.nvm_flushes++;
  }
  if (batch.size() > 0) CountRtts(&stats_.commit_rtts, 1);
  const Status status = batch.Execute();
  if (status.IsUnavailable() && server_->halted()) return status;
  return Status::OK();
}

void Coordinator::BuildApplyBufs() {
  // One buffer per op: [version_word][key][value]; identical bytes for the
  // primary and every backup (the lock word is not part of this span, so
  // the primary stays locked until the unlock step).
  apply_bufs_.resize(write_set_.size());
  for (size_t i = 0; i < write_set_.size(); ++i) {
    WriteOp& op = write_set_[i];
    const cluster::TableInfo& info = cluster_->catalog().table(op.table);
    std::vector<char>& buf = apply_bufs_[i];
    buf.assign(16 + info.layout.padded_value_size(), 0);
    EncodeFixed64(buf.data(),
                  store::BumpVersion(op.old_version, op.is_delete));
    EncodeFixed64(buf.data() + 8, op.key);
    const std::vector<char>& value =
        op.is_delete ? op.old_value : op.new_value;
    std::memcpy(buf.data() + 16, value.data(),
                std::min(value.size(), buf.size() - 16));
  }
}

Status Coordinator::ApplyWrites() {
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kBeforeCommitApply));
  if (write_set_.empty()) return Status::OK();

  BuildApplyBufs();

  bool need_repair = false;
  if (!batching_enabled()) {
    // Litmus / ablation mode: apply replica-by-replica (with crash points
    // in between when a hook is set), so partial-commit states are
    // reachable and per-verb round trips are visible.
    for (size_t i = 0; i < write_set_.size(); ++i) {
      WriteOp& op = write_set_[i];
      const cluster::TableInfo& info = cluster_->catalog().table(op.table);
      for (size_t r = 0; r < op.replicas.size(); ++r) {
        const rdma::NodeId node = op.replicas[r];
        if (!cluster_->membership().IsMemoryAlive(node)) continue;
        CountRtts(&stats_.commit_rtts, 1);
        const Status status = server_->qp(node)->Write(
            info.region_rkeys[node], info.layout.VersionOffset(op.slots[r]),
            apply_bufs_[i].data(), apply_bufs_[i].size());
        if (status.IsUnavailable()) {
          if (server_->halted()) return status;
          PANDORA_RETURN_NOT_OK(ResolveApplyFailure(node));
          continue;  // Dead replica: skip (§3.2.5 rule).
        }
        PANDORA_RETURN_NOT_OK(status);
        PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kMidCommitApply));
      }
    }
    return FlushForPersistence(TouchedReplicaServers());
  }

  rdma::VerbBatch batch;
  for (size_t i = 0; i < write_set_.size(); ++i) {
    WriteOp& op = write_set_[i];
    const cluster::TableInfo& info = cluster_->catalog().table(op.table);
    for (size_t r = 0; r < op.replicas.size(); ++r) {
      const rdma::NodeId node = op.replicas[r];
      if (!cluster_->membership().IsMemoryAlive(node)) continue;
      batch.Write(server_->qp(node), info.region_rkeys[node],
                  info.layout.VersionOffset(op.slots[r]),
                  apply_bufs_[i].data(), apply_bufs_[i].size());
    }
  }
  if (batch.size() > 0) CountRtts(&stats_.commit_rtts, 1);
  const Status status = batch.Execute();
  if (!status.ok()) {
    if (server_->halted()) return Status::Unavailable("compute node halted");
    need_repair = true;
  }

  if (need_repair) {
    // A memory server died mid-apply. Re-verify per replica: every replica
    // alive *now* must carry the new version (§3.2.5: "committing
    // transactions that have updated all live replicas").
    for (size_t i = 0; i < write_set_.size(); ++i) {
      WriteOp& op = write_set_[i];
      const cluster::TableInfo& info = cluster_->catalog().table(op.table);
      const uint64_t new_version = DecodeFixed64(apply_bufs_[i].data());
      for (size_t r = 0; r < op.replicas.size(); ++r) {
        const rdma::NodeId node = op.replicas[r];
        for (int attempt = 0; attempt < 2; ++attempt) {
          if (!cluster_->membership().IsMemoryAlive(node)) break;
          alignas(8) uint64_t version = 0;
          CountRtts(&stats_.commit_rtts, 1);
          Status read_status = server_->qp(node)->Read(
              info.region_rkeys[node],
              info.layout.VersionOffset(op.slots[r]), &version, 8);
          if (read_status.IsUnavailable()) {
            if (server_->halted()) return read_status;
            PANDORA_RETURN_NOT_OK(ResolveApplyFailure(node));
            continue;  // Re-check membership.
          }
          PANDORA_RETURN_NOT_OK(read_status);
          if (version == new_version) break;
          CountRtts(&stats_.commit_rtts, 1);
          Status write_status = server_->qp(node)->Write(
              info.region_rkeys[node],
              info.layout.VersionOffset(op.slots[r]), apply_bufs_[i].data(),
              apply_bufs_[i].size());
          if (write_status.IsUnavailable()) {
            if (server_->halted()) return write_status;
            PANDORA_RETURN_NOT_OK(ResolveApplyFailure(node));
            continue;
          }
          PANDORA_RETURN_NOT_OK(write_status);
          break;
        }
      }
    }
  }
  return FlushForPersistence(TouchedReplicaServers());
}

const std::vector<rdma::NodeId>& Coordinator::TouchedReplicaServers() {
  touched_bits_.Reset();
  touched_servers_.clear();
  for (const WriteOp& op : write_set_) {
    for (const rdma::NodeId node : op.replicas) touched_bits_.Set(node);
  }
  // ForEachSet walks bits in ascending order, so the vector comes out
  // sorted without the allocate + sort + unique pass the old path paid
  // per commit.
  touched_bits_.ForEachSet([this](size_t bit) {
    touched_servers_.push_back(static_cast<rdma::NodeId>(bit));
  });
  return touched_servers_;
}

Status Coordinator::UnlockWriteSet(bool crash_points) {
  if (crash_points) {
    PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kBeforeUnlock));
  }
  if (!batching_enabled()) {
    for (WriteOp& op : write_set_) {
      if (!op.locked) continue;
      if (!cluster_->membership().IsMemoryAlive(op.lock_node)) continue;
      const cluster::TableInfo& info = cluster_->catalog().table(op.table);
      CountRtts(&stats_.commit_rtts, 1);
      const Status status = server_->qp(op.lock_node)
                                ->Write(info.region_rkeys[op.lock_node],
                                        info.layout.LockOffset(op.lock_slot),
                                        &kUnlockedWord,
                                        sizeof(kUnlockedWord));
      if (status.IsUnavailable() && !server_->halted()) continue;
      PANDORA_RETURN_NOT_OK(status);
      op.locked = false;
      if (crash_points) {
        PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kMidUnlock));
      }
    }
    return Status::OK();
  }

  rdma::VerbBatch batch;
  for (WriteOp& op : write_set_) {
    if (!op.locked) continue;
    if (!cluster_->membership().IsMemoryAlive(op.lock_node)) continue;
    const cluster::TableInfo& info = cluster_->catalog().table(op.table);
    batch.Write(server_->qp(op.lock_node), info.region_rkeys[op.lock_node],
                info.layout.LockOffset(op.lock_slot), &kUnlockedWord,
                sizeof(kUnlockedWord));
  }
  if (batch.size() > 0) CountRtts(&stats_.commit_rtts, 1);
  const Status status = batch.Execute();
  if (status.IsUnavailable() && server_->halted()) return status;
  return Status::OK();
}

Status Coordinator::Abort() {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  return FinalizeIfCrashed(AbortInternal());
}

Status Coordinator::AbortInternal() {
  // §3.1.5 abort path: first log the decision by truncating logs, then
  // release the locks acquired during execution.
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kBeforeAbortTruncate));
  rdma::VerbBatch batch;
  if (config_.mode == ProtocolMode::kPandora) {
    for (const uint32_t slot : coord_log_slots_) {
      log_writer_.PostInvalidateCoordinatorSlot(slot, &batch);
    }
  }
  if (config_.mode != ProtocolMode::kPandora) {
    if (config_.bugs.lost_decision) {
      // FORD bug: the abort decision is never logged. Exercised whenever
      // valid-looking undo records survive this abort.
      for (const WriteOp& op : write_set_) {
        if (!op.log_slots.empty()) {
          stats_.bug_injections++;
          break;
        }
      }
    } else {
      for (WriteOp& op : write_set_) {
        for (const auto& [server, slot] : op.log_slots) {
          log_writer_.PostInvalidate(server, slot, &batch);
        }
      }
    }
  }
  if (batch.size() > 0) {
    CountRtts(&stats_.commit_rtts, 1);
    const Status status = batch.Execute();
    if (status.IsUnavailable() && server_->halted()) return status;
  }
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterAbortTruncate));

  // Release locks. The Complicit Aborts bug releases *every* write-set
  // lock, including ones this transaction never acquired — which can free
  // a lock held by a different, live transaction.
  rdma::VerbBatch unlock_batch;
  for (WriteOp& op : write_set_) {
    const bool release = op.locked || config_.bugs.complicit_abort;
    if (!release) continue;
    if (op.lock_node == rdma::kInvalidNodeId) continue;
    if (!cluster_->membership().IsMemoryAlive(op.lock_node)) continue;
    if (!op.locked) stats_.bug_injections++;  // Complicit release fired.
    const cluster::TableInfo& info = cluster_->catalog().table(op.table);
    unlock_batch.Write(server_->qp(op.lock_node),
                       info.region_rkeys[op.lock_node],
                       info.layout.LockOffset(op.lock_slot), &kUnlockedWord,
                       sizeof(kUnlockedWord));
  }
  if (unlock_batch.size() > 0) {
    CountRtts(&stats_.commit_rtts, 1);
    const Status status = unlock_batch.Execute();
    if (status.IsUnavailable() && server_->halted()) return status;
  }
  PANDORA_RETURN_NOT_OK(MaybeCrash(CrashPoint::kAfterAbort));

  if (ack_callback_) ack_callback_(txn_id_, false);
  stats_.aborted++;
  FinishTxn();
  return Status::Aborted("transaction aborted");
}

Status Coordinator::ResolveApplyFailure(rdma::NodeId node) {
  if (server_->halted()) return Status::Unavailable("compute node halted");
  const uint64_t deadline = NowMicros() + kMemoryVerdictTimeoutUs;
  while (cluster_->membership().IsMemoryAlive(node)) {
    if (NowMicros() > deadline) {
      return Status::Internal("memory server unreachable but not declared "
                              "failed");
    }
    SleepForMicros(100);
  }
  return Status::OK();
}

}  // namespace txn
}  // namespace pandora

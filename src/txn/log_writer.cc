#include "txn/log_writer.h"

#include "common/checksum.h"
#include "common/logging.h"

namespace pandora {
namespace txn {

LogWriter::LogWriter(cluster::Cluster* cluster,
                     cluster::ComputeServer* server, uint16_t coord_id)
    : cluster_(cluster),
      server_(server),
      coord_id_(coord_id),
      log_servers_(LogServersFor(*cluster, coord_id)),
      // Sized to include standbys: after a live join the placement ring
      // can designate one as a log server, and next_slot_ is indexed by
      // node id.
      next_slot_(cluster->total_memory_nodes(), 0),
      invalid_marker_(store::InvalidRecordMarker()) {
  PANDORA_CHECK(coord_id_ <
                cluster->catalog().log_layout().config().max_coordinators);
}

std::vector<rdma::NodeId> LogWriter::LogServersFor(
    const cluster::Cluster& cluster, uint16_t coord_id) {
  // Designate the coordinator's log servers from the same ring used for
  // data placement, hashing the coordinator id (with a salt so coordinator
  // 0 does not alias table 0 / key 0 placement).
  const uint64_t hash =
      HashKey(0x10c0'0000'0000'0000ULL | coord_id);
  return cluster.ring().ReplicasForHash(hash);
}

uint32_t LogWriter::NextSlot(rdma::NodeId server) {
  const uint32_t slots =
      cluster_->catalog().log_layout().config().slots_per_coordinator;
  const uint32_t slot = next_slot_[server];
  next_slot_[server] = (slot + 1) % slots;
  return slot;
}

Status LogWriter::PrepareCoordinatorFragments(const store::LogRecord& record,
                                              size_t* num_fragments) {
  const store::LogLayout& layout = cluster_->catalog().log_layout();
  const uint32_t slot_bytes = layout.config().slot_bytes;
  const size_t header = store::LogRecordHeaderBytes();
  prepared_first_ = buffers_used_;
  *num_fragments = 0;

  // Split into fragments that fit one slot each, packing greedily by wire
  // size — O(entries) accounting, one serialization per fragment.
  // Recovery merges fragments of the same txn_id, so one slot per
  // fragment is all that is needed.
  auto emit = [&](size_t first, size_t count) -> Status {
    if (buffers_used_ == buffers_.size()) buffers_.emplace_back();
    std::vector<char>& buf = buffers_[buffers_used_++];
    PANDORA_RETURN_NOT_OK(store::SerializeLogRecordSpan(
        record, first, count, slot_bytes, &buf));
    (*num_fragments)++;
    return Status::OK();
  };

  size_t begin = 0;
  size_t used = header;
  for (size_t i = 0; i < record.entries.size(); ++i) {
    const size_t entry_bytes =
        store::LogEntrySerializedSize(record.entries[i]);
    if (header + entry_bytes > slot_bytes) {
      return Status::ResourceExhausted(
          "single log entry exceeds slot size; raise "
          "LogConfig::slot_bytes");
    }
    if (used + entry_bytes > slot_bytes) {
      PANDORA_RETURN_NOT_OK(emit(begin, i - begin));
      begin = i;
      used = header;
    }
    used += entry_bytes;
  }
  // The tail fragment; also the whole record when the entry list is empty
  // (an all-inserts write-set under the missing-insert-logging bug).
  PANDORA_RETURN_NOT_OK(emit(begin, record.entries.size() - begin));

  if (*num_fragments > layout.config().slots_per_coordinator) {
    return Status::ResourceExhausted(
        "write-set exceeds the coordinator's log area");
  }
  return Status::OK();
}

Status LogWriter::PostCoordinatorRecord(const store::LogRecord& record,
                                        rdma::VerbBatch* batch,
                                        std::vector<uint32_t>* slots) {
  const store::LogLayout& layout = cluster_->catalog().log_layout();
  size_t num_fragments = 0;
  PANDORA_RETURN_NOT_OK(
      PrepareCoordinatorFragments(record, &num_fragments));

  for (size_t f = 0; f < num_fragments; ++f) {
    const std::vector<char>& buf = PreparedFragment(f);
    // All designated servers use the same slot index; advance their
    // cursors in lockstep.
    uint32_t chosen = 0;
    bool first = true;
    for (const rdma::NodeId server : log_servers_) {
      const uint32_t s = NextSlot(server);
      if (first) {
        chosen = s;
        first = false;
      }
      if (!cluster_->membership().IsMemoryAlive(server)) continue;
      batch->Write(server_->qp(server),
                   cluster_->catalog().log_rkey(server),
                   layout.SlotOffset(coord_id_, s), buf.data(),
                   buf.size());
    }
    slots->push_back(chosen);
  }
  return Status::OK();
}

Status LogWriter::PostPerObjectRecord(
    const store::LogRecord& record,
    const cluster::ReplicaSet& object_replicas, rdma::VerbBatch* batch,
    std::vector<std::pair<rdma::NodeId, uint32_t>>* written) {
  const store::LogLayout& layout = cluster_->catalog().log_layout();
  if (buffers_used_ == buffers_.size()) buffers_.emplace_back();
  std::vector<char>& buf = buffers_[buffers_used_++];
  PANDORA_RETURN_NOT_OK(SerializeLogRecord(
      record, layout.config().slot_bytes, &buf));

  for (const rdma::NodeId server : object_replicas) {
    if (!cluster_->membership().IsMemoryAlive(server)) continue;
    const uint32_t s = NextSlot(server);
    batch->Write(server_->qp(server), cluster_->catalog().log_rkey(server),
                 layout.SlotOffset(coord_id_, s), buf.data(), buf.size());
    written->emplace_back(server, s);
  }
  return Status::OK();
}

void LogWriter::PostInvalidate(rdma::NodeId server, uint32_t slot,
                               rdma::VerbBatch* batch) {
  if (!cluster_->membership().IsMemoryAlive(server)) return;
  const store::LogLayout& layout = cluster_->catalog().log_layout();
  batch->Write(server_->qp(server), cluster_->catalog().log_rkey(server),
               layout.SlotOffset(coord_id_, slot), &invalid_marker_,
               sizeof(invalid_marker_));
}

void LogWriter::PostInvalidateCoordinatorSlot(uint32_t slot,
                                              rdma::VerbBatch* batch) {
  for (const rdma::NodeId server : log_servers_) {
    PostInvalidate(server, slot, batch);
  }
}

}  // namespace txn
}  // namespace pandora

#include "cluster/placement.h"

#include <algorithm>
#include <atomic>

#include "common/checksum.h"
#include "common/logging.h"

namespace pandora {
namespace cluster {
namespace {

uint64_t NextRingEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

HashRing::HashRing(std::vector<rdma::NodeId> nodes, uint32_t replication,
                   uint32_t vnodes_per_node)
    : nodes_(std::move(nodes)),
      replication_(replication),
      epoch_(NextRingEpoch()) {
  PANDORA_CHECK(!nodes_.empty());
  PANDORA_CHECK(replication_ >= 1);
  PANDORA_CHECK(replication_ <= nodes_.size());
  PANDORA_CHECK(replication_ <= kMaxReplication);
  ring_.reserve(nodes_.size() * vnodes_per_node);
  for (const rdma::NodeId node : nodes_) {
    for (uint32_t v = 0; v < vnodes_per_node; ++v) {
      // Derive the virtual point from (node, v) so the ring is stable
      // regardless of node registration order.
      const uint64_t h =
          HashKey((static_cast<uint64_t>(node) << 32) | (v + 1));
      ring_.push_back({h, node});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              return a.hash < b.hash || (a.hash == b.hash && a.node < b.node);
            });
}

uint64_t HashRing::PlacementHash(store::TableId table, store::Key key) {
  return HashKey((static_cast<uint64_t>(table) << 48) ^ HashKey(key));
}

ReplicaSet HashRing::ReplicaSetForHash(uint64_t hash) const {
  ReplicaSet replicas;
  // First point clockwise from `hash`.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const Point& p, uint64_t h) { return p.hash < h; });
  size_t idx = static_cast<size_t>(it - ring_.begin()) % ring_.size();
  for (size_t scanned = 0;
       scanned < ring_.size() && replicas.size() < replication_; ++scanned) {
    const rdma::NodeId node = ring_[idx].node;
    if (!replicas.Contains(node)) replicas.PushBack(node);
    idx = (idx + 1) % ring_.size();
  }
  PANDORA_CHECK(replicas.size() == replication_);
  return replicas;
}

std::vector<rdma::NodeId> HashRing::ReplicasForHash(uint64_t hash) const {
  return ReplicaSetForHash(hash).ToVector();
}

std::vector<rdma::NodeId> HashRing::ReplicasFor(store::TableId table,
                                                store::Key key) const {
  return ReplicaSetForHash(PlacementHash(table, key)).ToVector();
}

}  // namespace cluster
}  // namespace pandora

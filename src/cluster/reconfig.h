#ifndef PANDORA_CLUSTER_RECONFIG_H_
#define PANDORA_CLUSTER_RECONFIG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "rdma/queue_pair.h"

namespace pandora {
namespace cluster {

/// Crash points inside the online-migration driver, mirroring the
/// transaction-side txn::CrashPoint idiom: a fault injector is consulted
/// at each point and may abandon the migration there, exercising the
/// rollback (before cutover publish) / roll-forward (at or after publish)
/// rule deterministically.
enum class ReconfigCrashPoint : uint32_t {
  kBeforeCopy = 0,     // after planning, before any object moved
  kMidRangeCopy,       // between two ranges of the bulk copy
  kAfterCopy,          // bulk copy done, cutover not started
  kBeforeCutover,      // quiesced + delta-copied, ring not yet published
  kAfterCutover,       // new ring published, cleanup not yet run
};
constexpr uint32_t kNumReconfigCrashPoints = 5;

const char* ReconfigCrashPointName(ReconfigCrashPoint point);
/// Returns true and fills `point` if `name` names a reconfig crash point.
bool ReconfigCrashPointFromName(const char* name, ReconfigCrashPoint* point);

/// Consulted by the migration driver at every ReconfigCrashPoint.
/// Returning true abandons the migration at that point: strictly before
/// the cutover publish this rolls back to the old ring; at or after the
/// publish it rolls forward (the new ring stays). Implementations also use
/// the callback to observe progress (coverage counters) or to inject
/// node deaths at a precise migration phase.
class ReconfigFaultInjector {
 public:
  virtual ~ReconfigFaultInjector() = default;
  virtual bool MaybeCrash(ReconfigCrashPoint point) = 0;
};

/// Migration state of one hash-space range.
enum class RangeState : uint8_t { kOld = 0, kMigrating = 1, kNew = 2 };

struct ReconfigOptions {
  /// Hash-space partitions the bulk copy is chunked into (crash points
  /// fire between them; the checker window of a mid-migration crash is
  /// one range, not the whole key space).
  uint32_t ranges = 64;
  /// The correctness switch this module exists for: with the fence on,
  /// the cutover stalls new transactions (membership barrier + quiesce
  /// hooks), re-copies objects mutated since the bulk pass, and only then
  /// publishes the new ring — so every coordinator either committed
  /// against the old placement or observes the epoch bump. With it off
  /// the ring is published right after the bulk copy (a deliberately
  /// naive cutover): updates committed during the copy are silently lost
  /// on the new replicas, which the crash-during-migration litmus spec
  /// must catch.
  bool epoch_fence = true;
  /// Bounded re-plans when a source memory server dies mid-copy.
  uint32_t max_replans = 4;
  /// Microseconds to wait for the membership verdict after a source verb
  /// failure before giving up on the re-plan.
  uint64_t verdict_timeout_us = 100'000;
  /// Stop-the-world hooks for the cutover window, supplied by the
  /// recovery layer (which owns the SystemGate): block must return with
  /// no transaction in flight; unblock releases them. Optional — without
  /// them the fence still stalls *new* transactions via the membership
  /// barrier, but in-flight ones are only caught by the validation fence.
  std::function<void()> quiesce_block;
  std::function<void()> quiesce_unblock;
};

struct ReconfigStats {
  uint64_t joins = 0;
  uint64_t drains = 0;
  uint64_t replication_changes = 0;
  uint64_t objects_copied = 0;
  /// Objects re-copied by the quiesced delta pass (mutated or locked
  /// during the bulk copy).
  uint64_t objects_recopied = 0;
  uint64_t ranges_migrated = 0;
  uint64_t replans = 0;
  uint64_t rollbacks = 0;
  /// One-sided round trips spent copying (reads + claims + writes).
  uint64_t copy_rtts = 0;
  /// Wall time of the last completed migration / its cutover stall.
  uint64_t last_migration_ns = 0;
  uint64_t last_cutover_ns = 0;
};

/// Online reconfiguration: live memory-server join, planned drain, and
/// replication-factor change under traffic.
///
/// The design is epoch-fenced range migration (ROADMAP item 3 /
/// "Reconfigurable Atomic Transaction Commit"): plan a target HashRing,
/// bulk-copy the moved objects range-by-range from their current primaries
/// with ordinary one-sided verbs while traffic keeps committing against
/// the old ring, then cut over under a short stop-the-world window — stall
/// new transactions, re-copy the delta (objects whose version moved since
/// the bulk pass), publish the target ring. The publish bumps the
/// placement epoch, so every coordinator's cached placement
/// self-invalidates and transactions that started before the cutover
/// observe the mismatch at lock or validation time, abort cheaply, and
/// retry against the new placement (txn::TxnConfig::reconfig_fence knobs).
///
/// Fault model: a source server dying mid-copy re-plans against the new
/// primaries (bounded by max_replans); the joining server dying rolls the
/// join back to the old ring (its partial regions are wiped); an injected
/// crash of the migration driver itself rolls back strictly before the
/// cutover publish and rolls forward at or after it. One migration runs
/// at a time.
class ReconfigManager {
 public:
  ReconfigManager(Cluster* cluster, ReconfigOptions options = {});

  ReconfigManager(const ReconfigManager&) = delete;
  ReconfigManager& operator=(const ReconfigManager&) = delete;

  /// Live join: migrates ranges onto a standby memory server and admits
  /// it to the ring + membership. The node must be attached, outside the
  /// current ring, and not halted.
  Status JoinMemoryNode(rdma::NodeId node);

  /// Planned drain: migrates this server's ranges onto the survivors,
  /// removes it from the ring, marks it dead (back to the standby pool),
  /// and wipes it. At least `replication` servers must remain.
  Status DrainMemoryNode(rdma::NodeId node);

  /// Replication-factor change on the current node set.
  Status SetReplication(uint32_t replication);

  void set_fault_injector(ReconfigFaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  ReconfigStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  bool in_progress() const {
    return in_progress_.load(std::memory_order_acquire);
  }

  uint32_t num_ranges() const { return options_.ranges; }
  RangeState range_state(uint32_t range) const {
    return static_cast<RangeState>(
        range_states_[range].load(std::memory_order_acquire));
  }

 private:
  enum class Kind { kJoin, kDrain, kReplication };

  /// One moved object discovered by the enumeration scan.
  struct MoveItem {
    store::TableId table = 0;
    store::Key key = 0;
    uint64_t hash = 0;
    rdma::NodeId source = rdma::kInvalidNodeId;
    uint64_t source_slot = 0;
  };

  uint32_t RangeOf(uint64_t hash) const {
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(hash) * options_.ranges) >> 64);
  }

  Status Migrate(Kind kind, rdma::NodeId subject,
                 std::vector<rdma::NodeId> new_nodes,
                 uint32_t new_replication);

  /// Scans the old ring's primaries and collects every object whose
  /// replica set changes under `target`, grouped by hash range.
  Status EnumerateMoves(const HashRing& old_ring, const HashRing& target,
                        std::vector<std::vector<MoveItem>>* by_range);

  /// Copies one object's slot image from its source to every node that
  /// newly replicates it, with one-sided verbs (read + claim + write).
  /// `delta` skips objects whose source version is unchanged since the
  /// bulk pass.
  Status CopyObject(const HashRing& old_ring, const HashRing& target,
                    Kind kind, rdma::NodeId subject, const MoveItem& item,
                    bool delta);

  bool InjectorMaybeCrash(ReconfigCrashPoint point);

  Cluster* cluster_;
  ReconfigOptions options_;
  std::mutex mu_;  // One migration at a time.
  std::atomic<bool> in_progress_{false};
  std::atomic<ReconfigFaultInjector*> injector_{nullptr};
  std::vector<std::atomic<uint8_t>> range_states_;

  /// Control-plane queue pairs from the service node to every memory
  /// server (connection setup is a permitted RPC, §1.1).
  std::vector<std::unique_ptr<rdma::QueuePair>> qps_;

  /// Source version recorded per copied object during the bulk pass; the
  /// delta pass re-copies exactly the objects whose version moved.
  /// Indexed by table, then key. kDeferred marks objects found locked
  /// during the bulk pass (always re-copied at delta time).
  static constexpr uint64_t kDeferredVersion = ~0ULL;
  std::vector<std::unordered_map<store::Key, uint64_t>> copied_versions_;

  std::vector<char> slot_buf_;

  mutable std::mutex stats_mu_;
  ReconfigStats stats_;
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_RECONFIG_H_

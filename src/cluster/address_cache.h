#ifndef PANDORA_CLUSTER_ADDRESS_CACHE_H_
#define PANDORA_CLUSTER_ADDRESS_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "rdma/types.h"
#include "store/table_layout.h"

namespace pandora {
namespace cluster {

/// Maps (table, memory node, key) -> hash-table slot index.
///
/// FORD-style DKVSes resolve object addresses by traversing a hash index
/// with one-sided reads, then cache the addresses on the compute side so
/// that steady-state transactions know "exact addresses" and can lock
/// eagerly (§3.1.5 step 1). We model that cache directly: the bulk loader
/// fills a shared read-only base map, and runtime inserts/probes add to a
/// small per-compute-node overlay.
class AddressCache {
 public:
  AddressCache(size_t num_tables, uint32_t num_memory_nodes)
      : base_(num_tables * num_memory_nodes),
        overlay_(num_tables * num_memory_nodes),
        num_memory_nodes_(num_memory_nodes) {}

  AddressCache(const AddressCache&) = delete;
  AddressCache& operator=(const AddressCache&) = delete;

  /// Monotonic per-node epoch, bumped by ResetNode when a rebuilt memory
  /// server's slot assignments change. Per-coordinator L1 caches
  /// (LocalAddressCache) tag entries with this epoch, so a rebuild
  /// invalidates every coordinator's private entries without a broadcast.
  uint32_t node_epoch(rdma::NodeId node) const {
    return node < kMaxEpochNodes
               ? epochs_[node].load(std::memory_order_acquire)
               : 0;
  }

  /// Loader-only (single-threaded, before transactions start).
  void InsertBase(store::TableId table, rdma::NodeId node, store::Key key,
                  uint64_t slot) {
    base_[Index(table, node)][key] = slot;
  }

  /// Runtime insert discovered via remote probing (thread-safe).
  void InsertOverlay(store::TableId table, rdma::NodeId node, store::Key key,
                     uint64_t slot) {
    Shard& shard = overlay_[Index(table, node)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map[key] = slot;
  }

  /// Drops every entry for (table, node) — used when a memory server is
  /// rebuilt and its slot assignments change. Loader-grade operation: the
  /// caller must have quiesced the system.
  void ResetNode(store::TableId table, rdma::NodeId node) {
    base_[Index(table, node)].clear();
    Shard& shard = overlay_[Index(table, node)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
    if (node < kMaxEpochNodes) {
      epochs_[node].fetch_add(1, std::memory_order_acq_rel);
    }
  }

  std::optional<uint64_t> Lookup(store::TableId table, rdma::NodeId node,
                                 store::Key key) const {
    const auto& base = base_[Index(table, node)];
    if (auto it = base.find(key); it != base.end()) return it->second;
    const Shard& shard = overlay_[Index(table, node)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      return it->second;
    }
    return std::nullopt;
  }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<store::Key, uint64_t> map;
  };

  size_t Index(store::TableId table, rdma::NodeId node) const {
    return static_cast<size_t>(table) * num_memory_nodes_ + node;
  }

  static constexpr uint32_t kMaxEpochNodes = 64;

  std::vector<std::unordered_map<store::Key, uint64_t>> base_;
  mutable std::vector<Shard> overlay_;
  std::array<std::atomic<uint32_t>, kMaxEpochNodes> epochs_{};
  uint32_t num_memory_nodes_;
};

/// Per-coordinator L1 in front of the shared AddressCache: a small
/// direct-mapped, lock-free table of (table, node, key) -> slot.
///
/// The shared overlay already persists across aborts, but every retried
/// transaction still pays a reader-writer lock plus a hash-map probe per
/// replica per op to re-resolve addresses it just resolved. Coordinators
/// are single-threaded, so this private cache answers the retry hit with
/// one array index and no synchronization; entries are validated against
/// the shared per-node epoch so a memory-server rebuild (which reassigns
/// slots) invalidates them implicitly.
class LocalAddressCache {
 public:
  std::optional<uint64_t> Lookup(const AddressCache& shared,
                                 store::TableId table, rdma::NodeId node,
                                 store::Key key) const {
    const Entry& e = entries_[IndexOf(table, node, key)];
    if (e.valid && e.table == table && e.node == node && e.key == key &&
        e.epoch == shared.node_epoch(node)) {
      return e.slot;
    }
    return std::nullopt;
  }

  void Insert(const AddressCache& shared, store::TableId table,
              rdma::NodeId node, store::Key key, uint64_t slot) {
    Entry& e = entries_[IndexOf(table, node, key)];
    e.key = key;
    e.slot = slot;
    e.table = table;
    e.node = node;
    e.epoch = shared.node_epoch(node);
    e.valid = true;
  }

 private:
  // Power of two; 1024 entries × 32 B ≈ 32 KiB per coordinator, enough to
  // keep a transaction's whole footprint resident across a retry burst.
  static constexpr size_t kEntries = 1024;

  struct Entry {
    store::Key key = 0;
    uint64_t slot = 0;
    store::TableId table = 0;
    rdma::NodeId node = 0;
    uint32_t epoch = 0;
    bool valid = false;
  };

  static size_t IndexOf(store::TableId table, rdma::NodeId node,
                        store::Key key) {
    uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(table) << 32) ^ node;
    h *= 0xff51afd7ed558ccdULL;
    return static_cast<size_t>((h >> 33) & (kEntries - 1));
  }

  std::array<Entry, kEntries> entries_{};
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_ADDRESS_CACHE_H_

#ifndef PANDORA_CLUSTER_ADDRESS_CACHE_H_
#define PANDORA_CLUSTER_ADDRESS_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "rdma/types.h"
#include "store/table_layout.h"

namespace pandora {
namespace cluster {

/// Maps (table, memory node, key) -> hash-table slot index.
///
/// FORD-style DKVSes resolve object addresses by traversing a hash index
/// with one-sided reads, then cache the addresses on the compute side so
/// that steady-state transactions know "exact addresses" and can lock
/// eagerly (§3.1.5 step 1). We model that cache directly: the bulk loader
/// fills a shared read-only base map, and runtime inserts/probes add to a
/// small per-compute-node overlay.
class AddressCache {
 public:
  AddressCache(size_t num_tables, uint32_t num_memory_nodes)
      : base_(num_tables * num_memory_nodes),
        overlay_(num_tables * num_memory_nodes),
        num_memory_nodes_(num_memory_nodes) {}

  AddressCache(const AddressCache&) = delete;
  AddressCache& operator=(const AddressCache&) = delete;

  /// Loader-only (single-threaded, before transactions start).
  void InsertBase(store::TableId table, rdma::NodeId node, store::Key key,
                  uint64_t slot) {
    base_[Index(table, node)][key] = slot;
  }

  /// Runtime insert discovered via remote probing (thread-safe).
  void InsertOverlay(store::TableId table, rdma::NodeId node, store::Key key,
                     uint64_t slot) {
    Shard& shard = overlay_[Index(table, node)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map[key] = slot;
  }

  /// Drops every entry for (table, node) — used when a memory server is
  /// rebuilt and its slot assignments change. Loader-grade operation: the
  /// caller must have quiesced the system.
  void ResetNode(store::TableId table, rdma::NodeId node) {
    base_[Index(table, node)].clear();
    Shard& shard = overlay_[Index(table, node)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
  }

  std::optional<uint64_t> Lookup(store::TableId table, rdma::NodeId node,
                                 store::Key key) const {
    const auto& base = base_[Index(table, node)];
    if (auto it = base.find(key); it != base.end()) return it->second;
    const Shard& shard = overlay_[Index(table, node)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      return it->second;
    }
    return std::nullopt;
  }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<store::Key, uint64_t> map;
  };

  size_t Index(store::TableId table, rdma::NodeId node) const {
    return static_cast<size_t>(table) * num_memory_nodes_ + node;
  }

  std::vector<std::unordered_map<store::Key, uint64_t>> base_;
  mutable std::vector<Shard> overlay_;
  uint32_t num_memory_nodes_;
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_ADDRESS_CACHE_H_

#ifndef PANDORA_CLUSTER_COMPUTE_SERVER_H_
#define PANDORA_CLUSTER_COMPUTE_SERVER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/fixed_bitset.h"
#include "rdma/fabric.h"
#include "rdma/queue_pair.h"
#include "rdma/types.h"

namespace pandora {
namespace cluster {

/// Compute-side per-server state: queue pairs to every memory server and
/// the failed-ids bitset that PILL consults on every lock conflict.
///
/// Queue pairs are shared by all coordinators on the server — they carry no
/// mutable state, so concurrent verbs are safe (each verb is independently
/// applied and timed).
class ComputeServer {
 public:
  ComputeServer(rdma::NodeId node, rdma::Fabric* fabric)
      : node_(node), fabric_(fabric) {
    for (const rdma::NodeId mem : fabric->MemoryNodes()) {
      if (qps_.size() <= mem) qps_.resize(mem + 1);
      qps_[mem] = fabric->CreateQueuePair(node, mem);
    }
  }

  ComputeServer(const ComputeServer&) = delete;
  ComputeServer& operator=(const ComputeServer&) = delete;

  rdma::NodeId node() const { return node_; }

  rdma::QueuePair* qp(rdma::NodeId memory_node) const {
    return qps_[memory_node].get();
  }

  /// PILL failed-ids set (§3.1.2). Updated by the failure detector's
  /// stray-lock notification; read lock-free on the transaction fast path.
  FailedIdBitset& failed_ids() { return failed_ids_; }
  const FailedIdBitset& failed_ids() const { return failed_ids_; }

  /// True once this server's process has been crashed by the simulation.
  bool halted() const { return fabric_->IsHalted(node_); }

  /// Liveness flag pointer for wait loops that must abandon on crash.
  const std::atomic<bool>* halted_flag() const {
    return fabric_->halted_flag(node_);
  }

 private:
  rdma::NodeId node_;
  rdma::Fabric* fabric_;
  std::vector<std::unique_ptr<rdma::QueuePair>> qps_;
  FailedIdBitset failed_ids_;
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_COMPUTE_SERVER_H_

#include "cluster/cluster.h"

#include <algorithm>
#include <cstring>

#include "common/checksum.h"
#include "common/coding.h"
#include "common/logging.h"
#include "store/object_header.h"

namespace pandora {
namespace cluster {

namespace {

// Upper bound on tables per deployment (TPC-C needs 9); lets the address
// cache be sized before the schema exists.
constexpr size_t kMaxTables = 16;

// Keep hash-table regions at or below this load factor so linear probes
// stay short.
constexpr double kMaxLoadFactor = 0.6;

}  // namespace

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  PANDORA_CHECK(config_.replication >= 1);
  PANDORA_CHECK(config_.replication <= config_.memory_nodes);
  fabric_ = std::make_unique<rdma::Fabric>(config_.net);

  // Active nodes first, then standbys: both are attached (regions, queue
  // pairs, rkeys exist) but only active nodes enter the initial ring;
  // standbys are marked dead until a live join admits them.
  std::vector<rdma::NodeId> memory_ids;
  for (uint32_t i = 0; i < total_memory_nodes(); ++i) {
    const rdma::NodeId id = memory_node_id(i);
    memory_pds_.push_back(fabric_->AttachMemoryNode(id));
    if (i < config_.memory_nodes) {
      memory_ids.push_back(id);
      membership_.MarkMemoryAlive(id);
    } else {
      membership_.MarkMemoryDead(id);
    }
  }

  ring_storage_.push_back(
      std::make_unique<HashRing>(memory_ids, config_.replication));
  active_ring_.store(ring_storage_.back().get(),
                     std::memory_order_release);
  catalog_ = std::make_unique<Catalog>(total_memory_nodes());
  addresses_ =
      std::make_unique<AddressCache>(kMaxTables, total_memory_nodes());

  // Per-coordinator undo-log area on every memory server.
  const store::LogLayout log_layout(config_.log);
  for (uint32_t i = 0; i < total_memory_nodes(); ++i) {
    const rdma::RKey rkey = memory_pds_[i]->RegisterRegion(
        log_layout.region_size(), "log");
    catalog_->SetLogRegion(memory_node_id(i), rkey, log_layout);
  }

  for (uint32_t i = 0; i < config_.compute_nodes; ++i) {
    computes_.push_back(
        std::make_unique<ComputeServer>(compute_node_id(i), fabric_.get()));
  }
}

std::vector<ComputeServer*> Cluster::ComputeServers() {
  std::vector<ComputeServer*> out;
  out.reserve(computes_.size());
  for (auto& c : computes_) out.push_back(c.get());
  return out;
}

store::TableId Cluster::CreateTable(const std::string& name,
                                    uint32_t value_size,
                                    uint64_t expected_keys) {
  PANDORA_CHECK(catalog_->num_tables() < kMaxTables);
  // Every memory server can be a replica for any key; with an even key
  // spread each holds ~ expected_keys * replication / memory_nodes objects.
  const double per_server =
      static_cast<double>(expected_keys) * config_.replication /
      config_.memory_nodes;
  const uint64_t capacity = std::max<uint64_t>(
      64, static_cast<uint64_t>(per_server / kMaxLoadFactor) + 1);

  TableInfo info;
  info.spec.name = name;
  info.spec.value_size = value_size;
  info.spec.capacity = capacity;
  info.region_rkeys.resize(total_memory_nodes(), rdma::kInvalidRKey);
  const store::TableId id = catalog_->AddTable(std::move(info));

  TableInfo& stored = catalog_->mutable_table(id);
  for (uint32_t i = 0; i < total_memory_nodes(); ++i) {
    stored.region_rkeys[i] = memory_pds_[i]->RegisterRegion(
        stored.layout.region_size(), name);
    // Mark every slot free: a zeroed key word would collide with legal
    // key 0.
    rdma::MemoryRegion* region =
        memory_pds_[i]->GetRegion(stored.region_rkeys[i]);
    for (uint64_t slot = 0; slot < stored.layout.capacity(); ++slot) {
      EncodeFixed64(region->base() + stored.layout.KeyOffset(slot),
                    store::kFreeKey);
    }
  }
  return id;
}

Status Cluster::LoadRow(store::TableId table, store::Key key, Slice value) {
  const TableInfo& info = catalog_->table(table);
  if (key == store::kFreeKey) {
    return Status::InvalidArgument("reserved key value");
  }
  if (value.size() > info.spec.value_size) {
    return Status::InvalidArgument("value larger than table value_size");
  }
  const store::TableLayout& layout = info.layout;

  for (const rdma::NodeId node : ring().ReplicaSetFor(table, key)) {
    rdma::MemoryRegion* region =
        memory_pds_[node]->GetRegion(info.region_rkeys[node]);
    PANDORA_CHECK(region != nullptr);
    char* base = region->base();

    // Linear probe for the key's slot (control path: direct memory).
    uint64_t slot = layout.HomeSlot(HashKey(key));
    uint64_t scanned = 0;
    while (true) {
      if (scanned++ == layout.capacity()) {
        return Status::ResourceExhausted("table region full during load");
      }
      const uint64_t existing =
          DecodeFixed64(base + layout.KeyOffset(slot));
      if (existing == store::kFreeKey) break;
      if (existing == key) break;  // Overwrite (idempotent load).
      slot = layout.NextSlot(slot);
    }

    EncodeFixed64(base + layout.KeyOffset(slot), key);
    std::memset(base + layout.ValueOffset(slot), 0,
                layout.padded_value_size());
    if (!value.empty()) {
      std::memcpy(base + layout.ValueOffset(slot), value.data(),
                  value.size());
    }
    EncodeFixed64(base + layout.LockOffset(slot), store::kUnlocked);
    EncodeFixed64(base + layout.VersionOffset(slot),
                  store::MakeVersion(/*version=*/1, /*tombstone=*/false));
    addresses_->InsertBase(table, node, key, slot);
  }
  return Status::OK();
}

void Cluster::WipeMemoryNode(rdma::NodeId node) {
  rdma::ProtectionDomain* pd = memory_pds_[node];
  for (size_t t = 0; t < catalog_->num_tables(); ++t) {
    const TableInfo& info = catalog_->table(static_cast<store::TableId>(t));
    rdma::MemoryRegion* region = pd->GetRegion(info.region_rkeys[node]);
    std::memset(region->base(), 0, region->size());
    for (uint64_t slot = 0; slot < info.layout.capacity(); ++slot) {
      EncodeFixed64(region->base() + info.layout.KeyOffset(slot),
                    store::kFreeKey);
    }
    addresses_->ResetNode(static_cast<store::TableId>(t), node);
  }
  rdma::MemoryRegion* log_region = pd->GetRegion(catalog_->log_rkey(node));
  std::memset(log_region->base(), 0, log_region->size());
}

const HashRing& Cluster::InstallRing(std::unique_ptr<HashRing> ring) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_storage_.push_back(std::move(ring));
  const HashRing* installed = ring_storage_.back().get();
  active_ring_.store(installed, std::memory_order_release);
  return *installed;
}

Status Cluster::RebuildMemoryNode(rdma::NodeId node) {
  if (membership_.IsMemoryAlive(node)) {
    return Status::InvalidArgument("memory node is not dead");
  }
  // Stop-the-world precondition: copying slots while transactions mutate
  // them silently corrupts the rebuilt replica. When the recovery layer
  // installed its quiesce probe, refuse instead of corrupting; callers
  // that need a rebuild under traffic must go through the online
  // reconfiguration path (cluster::ReconfigManager).
  if (quiesce_check_ && !quiesce_check_()) {
    return Status::Busy(
        "RebuildMemoryNode requires quiesced transactions; use the online "
        "reconfiguration path under traffic");
  }
  rdma::ProtectionDomain* pd = memory_pds_[node];

  // Wipe: a replacement server starts empty (the crashed server's DRAM is
  // gone). Region objects are reused; contents are reset.
  WipeMemoryNode(node);

  // Re-replicate: copy every object whose replica set includes this node
  // from its current primary. (A production system streams this with
  // one-sided reads; re-replication is a stop-the-world control-path bulk
  // operation either way, §3.2.5.)
  for (size_t t = 0; t < catalog_->num_tables(); ++t) {
    const store::TableId table = static_cast<store::TableId>(t);
    const TableInfo& info = catalog_->table(table);
    const store::TableLayout& layout = info.layout;
    rdma::MemoryRegion* dst_region = pd->GetRegion(info.region_rkeys[node]);

    for (const rdma::NodeId source : ring().nodes()) {
      if (source == node || !membership_.IsMemoryAlive(source)) continue;
      rdma::MemoryRegion* src_region =
          memory_pds_[source]->GetRegion(info.region_rkeys[source]);

      for (uint64_t slot = 0; slot < layout.capacity(); ++slot) {
        const store::Key key =
            DecodeFixed64(src_region->base() + layout.KeyOffset(slot));
        if (key == store::kFreeKey) continue;
        // One ring walk per object: replica membership and the current
        // primary both come from the same inline replica set.
        const ReplicaSet replicas = ring().ReplicaSetFor(table, key);
        if (!replicas.Contains(node)) continue;
        // Copy once, from the current primary only.
        if (PrimaryOf(replicas) != source) continue;
        // Probe-insert into the rebuilt region.
        uint64_t dst = layout.HomeSlot(HashKey(key));
        uint64_t scanned = 0;
        while (DecodeFixed64(dst_region->base() + layout.KeyOffset(dst)) !=
               store::kFreeKey) {
          if (scanned++ == layout.capacity()) {
            return Status::ResourceExhausted(
                "rebuilt region full during re-replication");
          }
          dst = layout.NextSlot(dst);
        }
        std::memcpy(dst_region->base() + layout.SlotOffset(dst),
                    src_region->base() + layout.SlotOffset(slot),
                    layout.slot_size());
        addresses_->InsertBase(table, node, key, dst);
      }
    }
  }

  fabric_->RestoreNodeEverywhere(node);
  fabric_->ResumeNode(node);
  membership_.MarkMemoryAlive(node);
  return Status::OK();
}

rdma::NodeId Cluster::PrimaryFor(store::TableId table,
                                 store::Key key) const {
  return PrimaryOf(ring().ReplicaSetFor(table, key));
}

}  // namespace cluster
}  // namespace pandora

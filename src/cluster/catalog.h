#ifndef PANDORA_CLUSTER_CATALOG_H_
#define PANDORA_CLUSTER_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "rdma/types.h"
#include "store/log_layout.h"
#include "store/table_layout.h"

namespace pandora {
namespace cluster {

/// Everything a compute server needs to know to address a table on a given
/// memory server: the region layout (identical on every replica) and the
/// per-node rkey.
struct TableInfo {
  store::TableSpec spec;
  store::TableLayout layout;
  /// rkey of this table's region, indexed by memory NodeId.
  std::vector<rdma::RKey> region_rkeys;
};

/// Cluster-wide schema and region directory. Built once on the control path
/// at startup; read-only afterwards (no locking needed on the data path).
class Catalog {
 public:
  explicit Catalog(uint32_t num_memory_nodes)
      : num_memory_nodes_(num_memory_nodes),
        log_rkeys_(num_memory_nodes, rdma::kInvalidRKey) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  store::TableId AddTable(TableInfo info) {
    const store::TableId id = static_cast<store::TableId>(tables_.size());
    info.spec.id = id;
    info.layout =
        store::TableLayout(id, info.spec.value_size, info.spec.capacity);
    tables_.push_back(std::move(info));
    return id;
  }

  const TableInfo& table(store::TableId id) const {
    PANDORA_CHECK(id < tables_.size());
    return tables_[id];
  }

  TableInfo& mutable_table(store::TableId id) {
    PANDORA_CHECK(id < tables_.size());
    return tables_[id];
  }

  size_t num_tables() const { return tables_.size(); }
  uint32_t num_memory_nodes() const { return num_memory_nodes_; }

  void SetLogRegion(rdma::NodeId node, rdma::RKey rkey,
                    const store::LogLayout& layout) {
    log_rkeys_[node] = rkey;
    log_layout_ = layout;
  }
  rdma::RKey log_rkey(rdma::NodeId node) const { return log_rkeys_[node]; }
  const store::LogLayout& log_layout() const { return log_layout_; }

 private:
  uint32_t num_memory_nodes_;
  std::vector<TableInfo> tables_;
  std::vector<rdma::RKey> log_rkeys_;
  store::LogLayout log_layout_;
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_CATALOG_H_

#ifndef PANDORA_CLUSTER_PLACEMENT_H_
#define PANDORA_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "rdma/types.h"
#include "store/table_layout.h"

namespace pandora {
namespace cluster {

/// Consistent-hash placement of objects onto memory servers (§3.2.5: "We
/// use consistent hashing to statically partition data across memory
/// servers, avoiding resizing when new replicas are added or removed").
///
/// Each memory node contributes a fixed number of virtual points on the
/// ring. An object's replica set is the first `replication` *distinct*
/// nodes clockwise from hash(table, key). The replica list is a static
/// property of the full ring; liveness filtering (who is primary *now*) is
/// applied on top by the membership view, so that when a memory server
/// fails, "compute servers deterministically calculate the new primary"
/// (the first alive node in the replica list).
class HashRing {
 public:
  HashRing(std::vector<rdma::NodeId> nodes, uint32_t replication,
           uint32_t vnodes_per_node = 64);

  uint32_t replication() const { return replication_; }
  const std::vector<rdma::NodeId>& nodes() const { return nodes_; }

  /// Replica set (primary first) for an object. Size == replication().
  std::vector<rdma::NodeId> ReplicasFor(store::TableId table,
                                        store::Key key) const;

  /// Replica set for a precomputed placement hash.
  std::vector<rdma::NodeId> ReplicasForHash(uint64_t hash) const;

  /// Placement hash of (table, key).
  static uint64_t PlacementHash(store::TableId table, store::Key key);

 private:
  struct Point {
    uint64_t hash;
    rdma::NodeId node;
  };

  std::vector<rdma::NodeId> nodes_;
  uint32_t replication_;
  std::vector<Point> ring_;  // Sorted by hash.
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_PLACEMENT_H_

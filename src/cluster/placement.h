#ifndef PANDORA_CLUSTER_PLACEMENT_H_
#define PANDORA_CLUSTER_PLACEMENT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "rdma/types.h"
#include "store/table_layout.h"

namespace pandora {
namespace cluster {

/// Upper bound on the replication factor. Placement results are returned in
/// fixed-capacity inline arrays sized by this constant so the per-operation
/// lookup path never touches the heap; raising it only costs a few bytes per
/// cached placement entry.
constexpr uint32_t kMaxReplication = 8;

/// Fixed-capacity, inline replica set (primary-candidate order). Fits in two
/// cache lines' worth of registers, is trivially copyable, and never
/// allocates — this is the hot-path currency for placement lookups, replacing
/// the heap-allocated std::vector the ring used to return per operation.
class ReplicaSet {
 public:
  using const_iterator = const rdma::NodeId*;

  ReplicaSet() = default;

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  rdma::NodeId operator[](uint32_t i) const { return nodes_[i]; }

  const_iterator begin() const { return nodes_.data(); }
  const_iterator end() const { return nodes_.data() + size_; }

  /// First replica in ring order — the *static* primary candidate. Liveness
  /// filtering (who is primary now) is layered on top by the caller.
  rdma::NodeId front() const { return nodes_[0]; }

  void PushBack(rdma::NodeId node) { nodes_[size_++] = node; }
  void Clear() { size_ = 0; }

  bool Contains(rdma::NodeId node) const {
    for (uint32_t i = 0; i < size_; ++i) {
      if (nodes_[i] == node) return true;
    }
    return false;
  }

  bool operator==(const ReplicaSet& other) const {
    if (size_ != other.size_) return false;
    for (uint32_t i = 0; i < size_; ++i) {
      if (nodes_[i] != other.nodes_[i]) return false;
    }
    return true;
  }
  bool operator!=(const ReplicaSet& other) const { return !(*this == other); }

  /// Compatibility bridge for cold paths and tests that still speak vector.
  std::vector<rdma::NodeId> ToVector() const {
    return std::vector<rdma::NodeId>(begin(), end());
  }

 private:
  std::array<rdma::NodeId, kMaxReplication> nodes_{};
  uint32_t size_ = 0;
};

/// Consistent-hash placement of objects onto memory servers (§3.2.5: "We
/// use consistent hashing to statically partition data across memory
/// servers, avoiding resizing when new replicas are added or removed").
///
/// Each memory node contributes a fixed number of virtual points on the
/// ring. An object's replica set is the first `replication` *distinct*
/// nodes clockwise from hash(table, key). The replica list is a static
/// property of the full ring; liveness filtering (who is primary *now*) is
/// applied on top by the membership view, so that when a memory server
/// fails, "compute servers deterministically calculate the new primary"
/// (the first alive node in the replica list).
class HashRing {
 public:
  HashRing(std::vector<rdma::NodeId> nodes, uint32_t replication,
           uint32_t vnodes_per_node = 64);

  uint32_t replication() const { return replication_; }
  const std::vector<rdma::NodeId>& nodes() const { return nodes_; }

  /// Monotonic ring identity: every constructed ring gets a distinct epoch
  /// from a process-wide counter, so epoch-tagged placement caches are
  /// implicitly invalidated when a cluster swaps in a rebuilt ring.
  uint64_t epoch() const { return epoch_; }

  /// Allocation-free replica set (ring order, primary candidate first) for
  /// an object. Size == replication(). This is the hot-path lookup.
  ReplicaSet ReplicaSetFor(store::TableId table, store::Key key) const {
    return ReplicaSetForHash(PlacementHash(table, key));
  }

  /// Allocation-free replica set for a precomputed placement hash.
  ReplicaSet ReplicaSetForHash(uint64_t hash) const;

  /// Replica set (primary first) for an object. Size == replication().
  /// Heap-allocating compatibility wrapper over ReplicaSetFor.
  std::vector<rdma::NodeId> ReplicasFor(store::TableId table,
                                        store::Key key) const;

  /// Replica set for a precomputed placement hash (allocating wrapper).
  std::vector<rdma::NodeId> ReplicasForHash(uint64_t hash) const;

  /// Placement hash of (table, key).
  static uint64_t PlacementHash(store::TableId table, store::Key key);

 private:
  struct Point {
    uint64_t hash;
    rdma::NodeId node;
  };

  std::vector<rdma::NodeId> nodes_;
  uint32_t replication_;
  uint64_t epoch_;
  std::vector<Point> ring_;  // Sorted by hash.
};

/// Per-coordinator direct-mapped cache of placement-hash -> ReplicaSet,
/// validated by a placement epoch (ring identity + membership view), the
/// same idiom as LocalAddressCache in address_cache.h. Coordinators are
/// single-threaded, so lookups are one array index with no synchronization;
/// a ring rebuild or membership change bumps the epoch and implicitly
/// invalidates every entry without a broadcast.
class PlacementCache {
 public:
  /// Returns the cached replica set for `hash` if present and tagged with
  /// the current `epoch`, else nullptr.
  const ReplicaSet* Lookup(uint64_t hash, uint64_t epoch) const {
    const Entry& e = entries_[IndexOf(hash)];
    if (e.valid && e.hash == hash && e.epoch == epoch) return &e.replicas;
    return nullptr;
  }

  void Insert(uint64_t hash, uint64_t epoch, const ReplicaSet& replicas) {
    Entry& e = entries_[IndexOf(hash)];
    e.hash = hash;
    e.epoch = epoch;
    e.replicas = replicas;
    e.valid = true;
  }

 private:
  // Power of two; 1024 entries × ~40 B ≈ 40 KiB per coordinator — covers a
  // hot key set far larger than any transaction footprint while staying
  // resident in L1/L2.
  static constexpr size_t kEntries = 1024;

  struct Entry {
    uint64_t hash = 0;
    uint64_t epoch = 0;
    ReplicaSet replicas;
    bool valid = false;
  };

  static size_t IndexOf(uint64_t hash) {
    // PlacementHash output is already well-mixed; fold the high bits in so
    // the direct-mapped index is not just the ring-search low bits.
    return static_cast<size_t>((hash ^ (hash >> 32)) & (kEntries - 1));
  }

  std::array<Entry, kEntries> entries_{};
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_PLACEMENT_H_

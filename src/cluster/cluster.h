#ifndef PANDORA_CLUSTER_CLUSTER_H_
#define PANDORA_CLUSTER_CLUSTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/address_cache.h"
#include "cluster/catalog.h"
#include "cluster/compute_server.h"
#include "cluster/membership.h"
#include "cluster/placement.h"
#include "common/slice.h"
#include "common/status.h"
#include "rdma/fabric.h"

namespace pandora {
namespace cluster {

/// Memory technology of the memory servers (§7). The protocols are
/// identical; only the durability mechanism differs.
enum class PersistenceMode {
  /// Plain DRAM: durability comes from f+1 in-memory replication (the
  /// paper's default deployment).
  kVolatileDram,
  /// Battery-backed DRAM: every landed write is durable; "no flushing is
  /// required on the critical path".
  kBatteryBackedDram,
  /// NVM behind an RNIC cache: durable writes need FORD's selective
  /// one-sided flush (a small RDMA read to the same region forces the
  /// preceding writes out of the RNIC cache into the NVM).
  kNvmWithFlush,
};

/// Deployment parameters for one simulated DKVS.
struct ClusterConfig {
  uint32_t memory_nodes = 2;
  /// Spare memory servers attached to the fabric but outside the initial
  /// hash ring: their regions exist (so queue pairs and rkeys are valid)
  /// but they hold no data and are marked dead in the membership until a
  /// live join (cluster::ReconfigManager) migrates ranges onto them.
  uint32_t standby_memory_nodes = 0;
  uint32_t compute_nodes = 2;
  /// Replication degree f+1 (each object lives on one primary + f backups).
  uint32_t replication = 2;
  PersistenceMode persistence = PersistenceMode::kVolatileDram;
  rdma::NetworkConfig net;
  store::LogConfig log;
};

/// Builds and owns the whole simulated deployment: the fabric, the memory
/// servers (regions), the compute servers, placement and the catalog.
///
/// Node-id convention: memory servers take ids [0, memory_nodes); compute
/// servers take [memory_nodes, memory_nodes + compute_nodes); auxiliary
/// services (failure detector, recovery coordinator) take ids above that.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  rdma::Fabric& fabric() { return *fabric_; }
  /// The active hash ring. Swapped atomically by InstallRing during an
  /// online reconfiguration; superseded rings stay alive until the cluster
  /// is destroyed, so a reference obtained here never dangles.
  const HashRing& ring() const {
    return *active_ring_.load(std::memory_order_acquire);
  }
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  Membership& membership() { return membership_; }
  const Membership& membership() const { return membership_; }
  AddressCache& addresses() { return *addresses_; }
  const AddressCache& addresses() const { return *addresses_; }

  uint32_t num_memory_nodes() const { return config_.memory_nodes; }
  /// Attached memory servers including standbys outside the initial ring.
  uint32_t total_memory_nodes() const {
    return config_.memory_nodes + config_.standby_memory_nodes;
  }
  uint32_t num_compute_nodes() const { return config_.compute_nodes; }

  rdma::NodeId memory_node_id(uint32_t i) const {
    return static_cast<rdma::NodeId>(i);
  }
  rdma::NodeId compute_node_id(uint32_t i) const {
    return static_cast<rdma::NodeId>(total_memory_nodes() + i);
  }
  /// Node id reserved for control services (FD / recovery coordinator).
  rdma::NodeId service_node_id() const {
    return static_cast<rdma::NodeId>(total_memory_nodes() +
                                     config_.compute_nodes);
  }

  ComputeServer* compute(uint32_t i) { return computes_[i].get(); }

  /// All compute servers (for failed-id broadcast).
  std::vector<ComputeServer*> ComputeServers();

  /// --- Control-path schema & bulk load ---------------------------------

  /// Creates a table able to hold `expected_keys` objects with values of
  /// `value_size` bytes, allocating a region on every memory server.
  store::TableId CreateTable(const std::string& name, uint32_t value_size,
                             uint64_t expected_keys);

  /// Loads one row into every replica (control path, before transactions
  /// start). Records the slot addresses in the shared address cache.
  Status LoadRow(store::TableId table, store::Key key, Slice value);

  /// Replica set (static, primary first) of an object. Allocating
  /// compatibility wrapper over ReplicaSetFor; cold paths and tests only.
  std::vector<rdma::NodeId> ReplicasFor(store::TableId table,
                                        store::Key key) const {
    return ring().ReplicasFor(table, key);
  }

  /// Allocation-free replica set (static, primary candidate first).
  ReplicaSet ReplicaSetFor(store::TableId table, store::Key key) const {
    return ring().ReplicaSetFor(table, key);
  }

  /// Epoch covering everything a cached placement depends on: the ring
  /// identity plus the membership view (primary = first *alive* replica,
  /// so a failover must invalidate cached placements too). Both inputs are
  /// monotonic, hence so is the sum.
  uint64_t placement_epoch() const {
    return ring().epoch() + membership_.epoch();
  }

  /// First *alive* node of the replica set = the current primary (§3.2.5).
  /// Returns kInvalidNodeId if every replica is dead (> f failures).
  rdma::NodeId PrimaryFor(store::TableId table, store::Key key) const;

  /// Liveness filter over an already-resolved replica set: the current
  /// primary without re-walking the ring.
  rdma::NodeId PrimaryOf(const ReplicaSet& replicas) const {
    for (const rdma::NodeId node : replicas) {
      if (membership_.IsMemoryAlive(node)) return node;
    }
    return rdma::kInvalidNodeId;
  }

  /// --- Failure emulation -------------------------------------------------

  /// Crashes a compute server's process.
  void CrashComputeNode(rdma::NodeId node) { fabric_->HaltNode(node); }

  /// Restores a previously crashed compute server (models restarting the
  /// process on the freed resources; it must obtain fresh coordinator-ids).
  void RestartComputeNode(rdma::NodeId node) {
    fabric_->RestoreNodeEverywhere(node);
    fabric_->ResumeNode(node);
  }

  /// Crashes a memory server.
  void CrashMemoryNode(rdma::NodeId node) {
    fabric_->HaltNode(node);
    membership_.MarkMemoryDead(node);
  }

  /// §3.2.5 re-replication: brings a previously crashed memory server
  /// back as a *fresh* replica — wipes its regions, copies every object
  /// it should replicate from the current primaries, and re-admits it to
  /// the membership. The caller must have quiesced transactions (the
  /// paper stops the DKVS for this); when a quiesce check is installed
  /// (set_quiesce_check), the call refuses (Busy) if the check reports
  /// in-flight traffic instead of silently corrupting.
  Status RebuildMemoryNode(rdma::NodeId node);

  /// Installs the precondition probe RebuildMemoryNode consults: must
  /// return true only when the system is quiesced (no in-flight
  /// transactions). Installed by the recovery layer, which owns the gate;
  /// bare clusters without one keep the unchecked legacy behavior.
  void set_quiesce_check(std::function<bool()> check) {
    quiesce_check_ = std::move(check);
  }

  /// --- Online reconfiguration hooks (cluster::ReconfigManager) ---------

  /// Atomically publishes a new active ring. The superseded ring is kept
  /// alive (readers may still hold references); its distinct epoch makes
  /// every cached placement self-invalidate. Returns the new ring.
  const HashRing& InstallRing(std::unique_ptr<HashRing> ring);

  /// Wipes a memory server's table regions, address entries, and log
  /// region back to the freshly-attached state. Used by RebuildMemoryNode
  /// and by reconfiguration rollback/drain cleanup.
  void WipeMemoryNode(rdma::NodeId node);

  /// Direct access to a memory server's protection domain (control path:
  /// bulk loaders, litmus harness, reconfiguration copy loops).
  rdma::ProtectionDomain* memory_pd(rdma::NodeId node) const {
    return memory_pds_[node];
  }

 private:
  ClusterConfig config_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::vector<rdma::ProtectionDomain*> memory_pds_;
  /// Active ring + every ring ever installed. Swap-only, never freed
  /// mid-run: one retained ring per reconfiguration is a bounded cost and
  /// keeps the read path a single atomic load (no reference counting).
  std::atomic<const HashRing*> active_ring_{nullptr};
  std::vector<std::unique_ptr<HashRing>> ring_storage_;
  std::mutex ring_mu_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<AddressCache> addresses_;
  Membership membership_;
  std::vector<std::unique_ptr<ComputeServer>> computes_;
  std::function<bool()> quiesce_check_;
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_CLUSTER_H_

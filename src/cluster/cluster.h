#ifndef PANDORA_CLUSTER_CLUSTER_H_
#define PANDORA_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/address_cache.h"
#include "cluster/catalog.h"
#include "cluster/compute_server.h"
#include "cluster/membership.h"
#include "cluster/placement.h"
#include "common/slice.h"
#include "common/status.h"
#include "rdma/fabric.h"

namespace pandora {
namespace cluster {

/// Memory technology of the memory servers (§7). The protocols are
/// identical; only the durability mechanism differs.
enum class PersistenceMode {
  /// Plain DRAM: durability comes from f+1 in-memory replication (the
  /// paper's default deployment).
  kVolatileDram,
  /// Battery-backed DRAM: every landed write is durable; "no flushing is
  /// required on the critical path".
  kBatteryBackedDram,
  /// NVM behind an RNIC cache: durable writes need FORD's selective
  /// one-sided flush (a small RDMA read to the same region forces the
  /// preceding writes out of the RNIC cache into the NVM).
  kNvmWithFlush,
};

/// Deployment parameters for one simulated DKVS.
struct ClusterConfig {
  uint32_t memory_nodes = 2;
  uint32_t compute_nodes = 2;
  /// Replication degree f+1 (each object lives on one primary + f backups).
  uint32_t replication = 2;
  PersistenceMode persistence = PersistenceMode::kVolatileDram;
  rdma::NetworkConfig net;
  store::LogConfig log;
};

/// Builds and owns the whole simulated deployment: the fabric, the memory
/// servers (regions), the compute servers, placement and the catalog.
///
/// Node-id convention: memory servers take ids [0, memory_nodes); compute
/// servers take [memory_nodes, memory_nodes + compute_nodes); auxiliary
/// services (failure detector, recovery coordinator) take ids above that.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  rdma::Fabric& fabric() { return *fabric_; }
  const HashRing& ring() const { return *ring_; }
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  Membership& membership() { return membership_; }
  const Membership& membership() const { return membership_; }
  AddressCache& addresses() { return *addresses_; }
  const AddressCache& addresses() const { return *addresses_; }

  uint32_t num_memory_nodes() const { return config_.memory_nodes; }
  uint32_t num_compute_nodes() const { return config_.compute_nodes; }

  rdma::NodeId memory_node_id(uint32_t i) const {
    return static_cast<rdma::NodeId>(i);
  }
  rdma::NodeId compute_node_id(uint32_t i) const {
    return static_cast<rdma::NodeId>(config_.memory_nodes + i);
  }
  /// Node id reserved for control services (FD / recovery coordinator).
  rdma::NodeId service_node_id() const {
    return static_cast<rdma::NodeId>(config_.memory_nodes +
                                     config_.compute_nodes);
  }

  ComputeServer* compute(uint32_t i) { return computes_[i].get(); }

  /// All compute servers (for failed-id broadcast).
  std::vector<ComputeServer*> ComputeServers();

  /// --- Control-path schema & bulk load ---------------------------------

  /// Creates a table able to hold `expected_keys` objects with values of
  /// `value_size` bytes, allocating a region on every memory server.
  store::TableId CreateTable(const std::string& name, uint32_t value_size,
                             uint64_t expected_keys);

  /// Loads one row into every replica (control path, before transactions
  /// start). Records the slot addresses in the shared address cache.
  Status LoadRow(store::TableId table, store::Key key, Slice value);

  /// Replica set (static, primary first) of an object. Allocating
  /// compatibility wrapper over ReplicaSetFor; cold paths and tests only.
  std::vector<rdma::NodeId> ReplicasFor(store::TableId table,
                                        store::Key key) const {
    return ring_->ReplicasFor(table, key);
  }

  /// Allocation-free replica set (static, primary candidate first).
  ReplicaSet ReplicaSetFor(store::TableId table, store::Key key) const {
    return ring_->ReplicaSetFor(table, key);
  }

  /// Epoch covering everything a cached placement depends on: the ring
  /// identity plus the membership view (primary = first *alive* replica,
  /// so a failover must invalidate cached placements too). Both inputs are
  /// monotonic, hence so is the sum.
  uint64_t placement_epoch() const {
    return ring_->epoch() + membership_.epoch();
  }

  /// First *alive* node of the replica set = the current primary (§3.2.5).
  /// Returns kInvalidNodeId if every replica is dead (> f failures).
  rdma::NodeId PrimaryFor(store::TableId table, store::Key key) const;

  /// Liveness filter over an already-resolved replica set: the current
  /// primary without re-walking the ring.
  rdma::NodeId PrimaryOf(const ReplicaSet& replicas) const {
    for (const rdma::NodeId node : replicas) {
      if (membership_.IsMemoryAlive(node)) return node;
    }
    return rdma::kInvalidNodeId;
  }

  /// --- Failure emulation -------------------------------------------------

  /// Crashes a compute server's process.
  void CrashComputeNode(rdma::NodeId node) { fabric_->HaltNode(node); }

  /// Restores a previously crashed compute server (models restarting the
  /// process on the freed resources; it must obtain fresh coordinator-ids).
  void RestartComputeNode(rdma::NodeId node) {
    fabric_->RestoreNodeEverywhere(node);
    fabric_->ResumeNode(node);
  }

  /// Crashes a memory server.
  void CrashMemoryNode(rdma::NodeId node) {
    fabric_->HaltNode(node);
    membership_.MarkMemoryDead(node);
  }

  /// §3.2.5 re-replication: brings a previously crashed memory server
  /// back as a *fresh* replica — wipes its regions, copies every object
  /// it should replicate from the current primaries, and re-admits it to
  /// the membership. The caller must have quiesced transactions (the
  /// paper stops the DKVS for this).
  Status RebuildMemoryNode(rdma::NodeId node);

 private:
  ClusterConfig config_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::vector<rdma::ProtectionDomain*> memory_pds_;
  std::unique_ptr<HashRing> ring_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<AddressCache> addresses_;
  Membership membership_;
  std::vector<std::unique_ptr<ComputeServer>> computes_;
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_CLUSTER_H_

#ifndef PANDORA_CLUSTER_MEMBERSHIP_H_
#define PANDORA_CLUSTER_MEMBERSHIP_H_

#include <atomic>
#include <cstdint>

#include "common/fixed_bitset.h"
#include "rdma/types.h"

namespace pandora {
namespace cluster {

/// Shared view of which memory servers are alive, plus a reconfiguration
/// barrier.
///
/// On a memory-server failure the paper stops the whole DKVS briefly to
/// install the new replica configuration (§3.2.5, §6.3 "fail-over
/// throughput drops to zero but rapidly recovers"). Coordinators poll
/// `reconfiguring()` between transactions and stall while it is set.
class Membership {
 public:
  Membership() = default;

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  void MarkMemoryAlive(rdma::NodeId node) {
    dead_memory_.Clear(node);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  void MarkMemoryDead(rdma::NodeId node) {
    dead_memory_.Set(node);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  bool IsMemoryAlive(rdma::NodeId node) const {
    return !dead_memory_.Test(node);
  }

  /// Configuration epoch; bumped on every membership change so compute
  /// servers can detect staleness cheaply.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// The barrier nests: a recovery running concurrently with an online
  /// reconfiguration must not clear the other's stall when it finishes,
  /// so Begin/End form a counter rather than a flag.
  void BeginReconfiguration() {
    reconfiguring_.fetch_add(1, std::memory_order_acq_rel);
  }
  void EndReconfiguration() {
    reconfiguring_.fetch_sub(1, std::memory_order_acq_rel);
  }
  bool reconfiguring() const {
    return reconfiguring_.load(std::memory_order_acquire) > 0;
  }

 private:
  AtomicFixedBitset<rdma::kMaxNodes> dead_memory_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int> reconfiguring_{0};
};

}  // namespace cluster
}  // namespace pandora

#endif  // PANDORA_CLUSTER_MEMBERSHIP_H_

#include "cluster/reconfig.h"

#include <algorithm>
#include <cstring>

#include "common/checksum.h"
#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"
#include "store/object_header.h"
#include "store/remote_object.h"

namespace pandora {
namespace cluster {

namespace {

// Key words scanned per enumeration doorbell: the scan flies chunk-sized
// batches of 8-byte reads, so a region walk costs capacity/chunk max-RTT
// rounds instead of capacity sequential round trips.
constexpr uint64_t kScanChunk = 512;

const char* kReconfigPointNames[kNumReconfigCrashPoints] = {
    "BeforeCopy", "MidRangeCopy", "AfterCopy", "BeforeCutover",
    "AfterCutover",
};

}  // namespace

const char* ReconfigCrashPointName(ReconfigCrashPoint point) {
  const uint32_t i = static_cast<uint32_t>(point);
  return i < kNumReconfigCrashPoints ? kReconfigPointNames[i] : "?";
}

bool ReconfigCrashPointFromName(const char* name,
                                ReconfigCrashPoint* point) {
  for (uint32_t i = 0; i < kNumReconfigCrashPoints; ++i) {
    if (std::strcmp(name, kReconfigPointNames[i]) == 0) {
      *point = static_cast<ReconfigCrashPoint>(i);
      return true;
    }
  }
  return false;
}

ReconfigManager::ReconfigManager(Cluster* cluster, ReconfigOptions options)
    : cluster_(cluster), options_(options) {
  options_.ranges = std::max<uint32_t>(1, options_.ranges);
  range_states_ = std::vector<std::atomic<uint8_t>>(options_.ranges);
  for (uint32_t i = 0; i < cluster_->total_memory_nodes(); ++i) {
    qps_.push_back(cluster_->fabric().CreateQueuePair(
        cluster_->service_node_id(), cluster_->memory_node_id(i)));
  }
}

bool ReconfigManager::InjectorMaybeCrash(ReconfigCrashPoint point) {
  ReconfigFaultInjector* injector =
      injector_.load(std::memory_order_acquire);
  return injector != nullptr && injector->MaybeCrash(point);
}

Status ReconfigManager::JoinMemoryNode(rdma::NodeId node) {
  if (node >= cluster_->total_memory_nodes()) {
    return Status::InvalidArgument("join target is not an attached node");
  }
  if (cluster_->ring().nodes().end() !=
      std::find(cluster_->ring().nodes().begin(),
                cluster_->ring().nodes().end(), node)) {
    return Status::InvalidArgument("join target already in the ring");
  }
  if (cluster_->fabric().IsHalted(node)) {
    return Status::Unavailable("join target is halted");
  }
  std::vector<rdma::NodeId> nodes = cluster_->ring().nodes();
  nodes.push_back(node);
  return Migrate(Kind::kJoin, node, std::move(nodes),
                 cluster_->ring().replication());
}

Status ReconfigManager::DrainMemoryNode(rdma::NodeId node) {
  const std::vector<rdma::NodeId>& current = cluster_->ring().nodes();
  if (std::find(current.begin(), current.end(), node) == current.end()) {
    return Status::InvalidArgument("drain target is not in the ring");
  }
  if (current.size() <= cluster_->ring().replication()) {
    return Status::InvalidArgument(
        "drain would leave fewer nodes than the replication factor");
  }
  std::vector<rdma::NodeId> nodes;
  for (const rdma::NodeId n : current) {
    if (n != node) nodes.push_back(n);
  }
  return Migrate(Kind::kDrain, node, std::move(nodes),
                 cluster_->ring().replication());
}

Status ReconfigManager::SetReplication(uint32_t replication) {
  if (replication < 1 || replication > kMaxReplication ||
      replication > cluster_->ring().nodes().size()) {
    return Status::InvalidArgument("replication factor out of range");
  }
  if (replication == cluster_->ring().replication()) return Status::OK();
  return Migrate(Kind::kReplication, rdma::kInvalidNodeId,
                 cluster_->ring().nodes(), replication);
}

Status ReconfigManager::EnumerateMoves(
    const HashRing& old_ring, const HashRing& target,
    std::vector<std::vector<MoveItem>>* by_range) {
  by_range->assign(options_.ranges, {});
  const Catalog& catalog = cluster_->catalog();
  const Membership& membership = cluster_->membership();
  std::vector<char> key_buf(kScanChunk * 8);

  for (size_t t = 0; t < catalog.num_tables(); ++t) {
    const store::TableId table = static_cast<store::TableId>(t);
    const TableInfo& info = catalog.table(table);
    const store::TableLayout& layout = info.layout;

    for (const rdma::NodeId source : old_ring.nodes()) {
      if (!membership.IsMemoryAlive(source)) continue;
      rdma::QueuePair* qp = qps_[source].get();

      for (uint64_t start = 0; start < layout.capacity();
           start += kScanChunk) {
        const uint64_t n =
            std::min<uint64_t>(kScanChunk, layout.capacity() - start);
        rdma::VerbBatch batch;
        for (uint64_t i = 0; i < n; ++i) {
          batch.Read(qp, info.region_rkeys[source],
                     layout.KeyOffset(start + i), key_buf.data() + i * 8,
                     8);
        }
        const Status status = batch.Execute();
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          stats_.copy_rtts += 1;  // One doorbell round per chunk.
        }
        if (!status.ok()) return status;

        for (uint64_t i = 0; i < n; ++i) {
          const store::Key key = DecodeFixed64(key_buf.data() + i * 8);
          if (key == store::kFreeKey) continue;
          const uint64_t hash = HashRing::PlacementHash(table, key);
          const ReplicaSet old_set = old_ring.ReplicaSetForHash(hash);
          // Copy each object exactly once, from its *current* primary;
          // after a source death the re-plan naturally falls over to the
          // first alive backup.
          if (cluster_->PrimaryOf(old_set) != source) continue;
          const ReplicaSet new_set = target.ReplicaSetForHash(hash);
          bool moved = false;
          for (const rdma::NodeId d : new_set) {
            if (!old_set.Contains(d)) moved = true;
          }
          if (!moved) continue;
          MoveItem item;
          item.table = table;
          item.key = key;
          item.hash = hash;
          item.source = source;
          item.source_slot = start + i;
          (*by_range)[RangeOf(hash)].push_back(item);
        }
      }
    }
  }
  return Status::OK();
}

Status ReconfigManager::CopyObject(const HashRing& old_ring,
                                   const HashRing& target, Kind kind,
                                   rdma::NodeId subject,
                                   const MoveItem& item, bool delta) {
  const TableInfo& info = cluster_->catalog().table(item.table);
  const store::TableLayout& layout = info.layout;
  auto& recs = copied_versions_[item.table];
  uint64_t rtts = 0;

  // Full slot image from the source (one verb: the layout keeps a slot
  // contiguous exactly so it can be fetched in a single read).
  Status status = qps_[item.source]->Read(
      info.region_rkeys[item.source], layout.SlotOffset(item.source_slot),
      slot_buf_.data(), layout.slot_size());
  ++rtts;
  if (status.ok()) {
    const store::SlotReadView view = store::DecodeSlotRead(slot_buf_.data());
    if (view.key != item.key) {
      // The slot no longer names this key (stale enumeration after a
      // re-plan); the caller re-enumerates.
      status = Status::NotFound("source slot changed under migration");
    } else if (delta) {
      const auto it = recs.find(item.key);
      if (it != recs.end() && it->second == view.version &&
          !store::LockHeld(view.lock)) {
        status = Status::OK();  // Unchanged since the bulk pass.
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.copy_rtts += rtts;
        return status;
      }
    } else if (store::LockHeld(view.lock)) {
      // Locked by an in-flight transaction: don't copy a possibly
      // half-applied image. The quiesced delta pass (no live locks left)
      // picks it up.
      recs[item.key] = kDeferredVersion;
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.copy_rtts += rtts;
      return Status::OK();
    }
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.copy_rtts += rtts;
    return status;
  }

  // The copied image lands unlocked regardless of the source's lock word:
  // lock ownership is placement-scoped, and a new replica must never
  // surface a lock its owner would only ever release on the old replicas.
  const uint64_t source_version =
      DecodeFixed64(slot_buf_.data() + 8);  // Version word follows the lock.
  EncodeFixed64(slot_buf_.data(), store::kUnlocked);

  const ReplicaSet old_set = old_ring.ReplicaSetForHash(item.hash);
  const ReplicaSet new_set = target.ReplicaSetForHash(item.hash);
  const Membership& membership = cluster_->membership();
  for (const rdma::NodeId d : new_set) {
    if (old_set.Contains(d)) continue;
    // A dead destination (crashed mid-migration) is skipped: the cutover
    // publishes it as a dead replica and the normal §3.2.5 rebuild path
    // re-replicates it later. The join subject is membership-dead by
    // design until the cutover admits it.
    if (!membership.IsMemoryAlive(d) &&
        !(kind == Kind::kJoin && d == subject)) {
      continue;
    }
    store::SlotState state;
    bool existed = false;
    status = store::FindOrClaimSlot(qps_[d].get(), info.region_rkeys[d],
                                    layout, item.key, &state, &existed,
                                    &rtts);
    if (!status.ok()) break;
    status = qps_[d]->Write(info.region_rkeys[d],
                            layout.SlotOffset(state.slot),
                            slot_buf_.data(), layout.slot_size());
    ++rtts;
    if (!status.ok()) break;
    cluster_->addresses().InsertOverlay(item.table, d, item.key,
                                        state.slot);
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.copy_rtts += rtts;
  if (status.ok()) {
    if (delta && recs.count(item.key) > 0) {
      ++stats_.objects_recopied;
    } else {
      ++stats_.objects_copied;
    }
    recs[item.key] = source_version;
  }
  return status;
}

Status ReconfigManager::Migrate(Kind kind, rdma::NodeId subject,
                                std::vector<rdma::NodeId> new_nodes,
                                uint32_t new_replication) {
  std::lock_guard<std::mutex> migration_lock(mu_);
  in_progress_.store(true, std::memory_order_release);
  struct InProgressGuard {
    std::atomic<bool>* flag;
    ~InProgressGuard() { flag->store(false, std::memory_order_release); }
  } in_progress_guard{&in_progress_};

  const uint64_t start_ns = NowNanos();
  for (auto& state : range_states_) {
    state.store(static_cast<uint8_t>(RangeState::kOld),
                std::memory_order_release);
  }
  copied_versions_.assign(cluster_->catalog().num_tables(), {});
  uint64_t max_slot = 0;
  for (size_t t = 0; t < cluster_->catalog().num_tables(); ++t) {
    max_slot = std::max(max_slot, cluster_->catalog()
                                      .table(static_cast<store::TableId>(t))
                                      .layout.slot_size());
  }
  slot_buf_.resize(max_slot);

  const HashRing& old_ring = cluster_->ring();
  auto target = std::make_unique<HashRing>(new_nodes, new_replication);

  const auto rollback = [&](Status why) {
    // Strictly before the cutover publish the old ring is still the
    // truth: wipe the join target's partial regions (and their address
    // entries) so a later attempt starts clean. Orphan copies left on
    // surviving nodes by a drain/replication rollback are unreachable
    // under the old ring and get overwritten by the next migration.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rollbacks;
    }
    if (kind == Kind::kJoin) cluster_->WipeMemoryNode(subject);
    for (auto& state : range_states_) {
      state.store(static_cast<uint8_t>(RangeState::kOld),
                  std::memory_order_release);
    }
    PANDORA_LOG(kInfo) << "reconfig: rolled back (" << why.ToString()
                       << ")";
    return why;
  };

  if (InjectorMaybeCrash(ReconfigCrashPoint::kBeforeCopy)) {
    return rollback(Status::Aborted("reconfig crashed before copy"));
  }

  // --- Bulk copy (traffic keeps committing against the old ring) -------
  uint32_t replans = 0;
  while (true) {
    const uint64_t plan_epoch = cluster_->membership().epoch();
    std::vector<std::vector<MoveItem>> by_range;
    Status status = EnumerateMoves(old_ring, *target, &by_range);
    if (status.ok()) {
      for (uint32_t r = 0; r < options_.ranges && status.ok(); ++r) {
        range_states_[r].store(
            static_cast<uint8_t>(RangeState::kMigrating),
            std::memory_order_release);
        for (const MoveItem& item : by_range[r]) {
          status = CopyObject(old_ring, *target, kind, subject, item,
                              /*delta=*/false);
          if (!status.ok()) break;
        }
        if (!status.ok()) break;
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.ranges_migrated;
        }
        if (InjectorMaybeCrash(ReconfigCrashPoint::kMidRangeCopy)) {
          return rollback(
              Status::Aborted("reconfig crashed mid-range copy"));
        }
      }
    }
    if (status.ok() && cluster_->membership().epoch() == plan_epoch) {
      break;  // Copied everything against a stable membership view.
    }
    if (kind == Kind::kJoin && cluster_->fabric().IsHalted(subject)) {
      // The joining server died mid-join: no re-plan can complete this
      // migration; roll back gracefully to the old ring.
      return rollback(
          Status::Unavailable("joining memory node died mid-join"));
    }
    if (!status.ok() && cluster_->membership().epoch() == plan_epoch) {
      // A verb failed but the membership has no verdict yet (the failure
      // detector hasn't marked the source dead). Wait bounded for it.
      const uint64_t deadline = NowMicros() + options_.verdict_timeout_us;
      while (cluster_->membership().epoch() == plan_epoch &&
             NowMicros() < deadline) {
        SleepForMicros(100);
      }
      if (cluster_->membership().epoch() == plan_epoch) {
        return rollback(status);
      }
    }
    if (++replans > options_.max_replans) {
      return rollback(
          Status::Aborted("reconfig re-plan budget exhausted"));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.replans;
    }
    PANDORA_LOG(kInfo) << "reconfig: membership changed mid-copy, "
                       << "re-planning (attempt " << replans << ")";
  }

  if (InjectorMaybeCrash(ReconfigCrashPoint::kAfterCopy)) {
    return rollback(Status::Aborted("reconfig crashed after copy"));
  }

  // --- Cutover ----------------------------------------------------------
  // The fence guard models the membership barrier's lease: it releases on
  // every exit path — including a driver crash injected at or after the
  // publish — so an abandoned migration can never wedge the cluster.
  struct FenceGuard {
    Membership* membership = nullptr;
    const std::function<void()>* unblock = nullptr;
    bool armed = false;
    void Release() {
      if (!armed) return;
      armed = false;
      if (unblock != nullptr && *unblock) (*unblock)();
      membership->EndReconfiguration();
    }
    ~FenceGuard() { Release(); }
  } fence;

  const uint64_t cutover_start_ns = NowNanos();
  if (options_.epoch_fence) {
    cluster_->membership().BeginReconfiguration();
    fence.membership = &cluster_->membership();
    fence.unblock = &options_.quiesce_unblock;
    fence.armed = true;
    if (options_.quiesce_block) options_.quiesce_block();

    // Delta pass: with no transaction in flight, re-enumerate and re-copy
    // exactly the objects whose version moved since the bulk pass (plus
    // inserts the bulk scan never saw and objects deferred while locked).
    std::vector<std::vector<MoveItem>> by_range;
    Status status = EnumerateMoves(old_ring, *target, &by_range);
    for (uint32_t r = 0; r < options_.ranges && status.ok(); ++r) {
      for (const MoveItem& item : by_range[r]) {
        status = CopyObject(old_ring, *target, kind, subject, item,
                            /*delta=*/true);
        if (!status.ok()) break;
      }
    }
    if (!status.ok()) return rollback(status);
  }
  // With the fence disabled (deliberately naive cutover) the ring is
  // published right here, straight after the bulk copy: updates committed
  // during the copy are lost on the new replicas. The crash-during-
  // migration litmus spec exists to catch exactly this.

  if (InjectorMaybeCrash(ReconfigCrashPoint::kBeforeCutover)) {
    return rollback(Status::Aborted("reconfig crashed before cutover"));
  }

  // Publish: admit/remove the subject and swap the ring. The ring epoch
  // bump is the fence every cached placement checks.
  if (kind == Kind::kJoin) cluster_->membership().MarkMemoryAlive(subject);
  cluster_->InstallRing(std::move(target));
  if (kind == Kind::kDrain) cluster_->membership().MarkMemoryDead(subject);
  for (auto& state : range_states_) {
    state.store(static_cast<uint8_t>(RangeState::kNew),
                std::memory_order_release);
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    switch (kind) {
      case Kind::kJoin: ++stats_.joins; break;
      case Kind::kDrain: ++stats_.drains; break;
      case Kind::kReplication: ++stats_.replication_changes; break;
    }
    stats_.last_cutover_ns = NowNanos() - cutover_start_ns;
  }

  // At or after the publish a crash rolls *forward*: the new ring is the
  // truth, only cleanup is skipped (the fence guard still releases).
  const bool abandoned =
      InjectorMaybeCrash(ReconfigCrashPoint::kAfterCutover);
  fence.Release();
  if (kind == Kind::kDrain && !abandoned) {
    // The drained server leaves the ring with its (now unreachable) data
    // wiped — back to the standby pool.
    cluster_->WipeMemoryNode(subject);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.last_migration_ns = NowNanos() - start_ns;
  }
  return Status::OK();
}

}  // namespace cluster
}  // namespace pandora

#include "recovery/recovery_manager.h"

#include "common/clock.h"
#include "common/logging.h"

namespace pandora {
namespace recovery {

RecoveryManager::RecoveryManager(cluster::Cluster* cluster,
                                 const RecoveryManagerConfig& config,
                                 txn::SystemGate* gate)
    : cluster_(cluster), config_(config), gate_(gate) {
  fd_ = std::make_unique<FailureDetector>(cluster, config.fd);
  rc_ = std::make_unique<RecoveryCoordinator>(cluster);
  rc_->set_scan_throttle_ns_per_slot(config.scan_throttle_ns_per_slot);
  fd_->set_failure_callback(
      [this](rdma::NodeId node, const std::vector<uint16_t>& ids) {
        OnFailureDetected(node, ids);
      });
  if (gate_ != nullptr) {
    // Arm the stop-the-world precondition of RebuildMemoryNode: with a
    // system gate present, a rebuild is legal only while the gate is
    // blocked and drained (as ReplaceMemoryNode arranges). Direct calls
    // under traffic get refused instead of silently corrupting replicas.
    txn::SystemGate* gate = gate_;
    cluster_->set_quiesce_check(
        [gate] { return gate->blocked() && gate->active_txns() == 0; });
  }
}

RecoveryManager::~RecoveryManager() { Stop(); }

void RecoveryManager::Start() { fd_->Start(); }

void RecoveryManager::Stop() {
  fd_->Stop();
  std::vector<std::unique_ptr<HeartbeatPump>> pumps;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pumps.swap(pumps_);
    threads.swap(recovery_threads_);
  }
  for (auto& pump : pumps) pump->Stop();
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

Status RecoveryManager::RegisterComputeNode(cluster::ComputeServer* server,
                                            uint32_t coordinators,
                                            std::vector<uint16_t>* ids) {
  PANDORA_RETURN_NOT_OK(
      fd_->RegisterComputeNode(server->node(), coordinators, ids));
  // Initial configuration message: current failed-ids snapshot (§3.1.2).
  server->failed_ids().CopyFrom(fd_->failed_ids());
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One heartbeat pump per node, even across re-registrations (a node
    // restarting after a crash re-registers with fresh ids).
    if (!pumped_nodes_.count(server->node())) {
      pumps_.push_back(std::make_unique<HeartbeatPump>(
          fd_.get(), cluster_, server->node(),
          config_.fd.heartbeat_period_us));
      pumped_nodes_.insert(server->node());
    }
    all_failed_ids_.insert(all_failed_ids_.end(), ids->begin(), ids->end());
    // (ids are only *candidates* for failure; kept for recycling scans.)
  }
  return Status::OK();
}

void RecoveryManager::OnFailureDetected(rdma::NodeId node,
                                        const std::vector<uint16_t>& ids) {
  // Run recovery off the detector thread so one failure does not delay
  // detection of the next.
  std::lock_guard<std::mutex> lock(mu_);
  recovery_threads_.emplace_back([this, node, ids] {
    Status status = RecoverComputeFailure(node, ids);
    // The recovery coordinator itself can die mid-recovery (fault
    // injection via rc().set_step_fault_hook, or a real RC crash).
    // Recovery is idempotent (§3.2.3), so a restarted RC simply re-runs
    // the whole procedure from the top.
    for (int restart = 0; !status.ok() && restart < 2; ++restart) {
      rc_restarts_.fetch_add(1, std::memory_order_acq_rel);
      PANDORA_LOG(kWarning) << "recovery coordinator died recovering node "
                         << node << " (" << status.ToString()
                         << "); restarting";
      status = RecoverComputeFailure(node, ids);
    }
    if (!status.ok()) {
      PANDORA_LOG(kError) << "recovery of node " << node
                          << " failed: " << status.ToString();
    }
  });
}

Status RecoveryManager::RecoverComputeFailure(
    rdma::NodeId node, const std::vector<uint16_t>& coordinator_ids) {
  started_.fetch_add(1, std::memory_order_acq_rel);
  // Balance started_/completed_ on every exit path.
  struct Completion {
    std::atomic<uint64_t>* counter;
    ~Completion() { counter->fetch_add(1, std::memory_order_acq_rel); }
  } completion{&completed_};
  std::lock_guard<std::mutex> recovery_lock(recovery_mu_);
  const uint64_t start = NowNanos();

  // Step 2 — active-link termination: revoke the suspect's RDMA rights on
  // every memory server so even a false positive cannot corrupt memory
  // (Cor1).
  cluster_->fabric().RevokeNodeEverywhere(node);

  // Make sure the master failed-ids copy covers these ids even when this
  // call bypassed the FD (tests / manual invocation).
  for (const uint16_t id : coordinator_ids) fd_->MarkFailed(id);

  // Step 3 — log recovery: roll every logged stray transaction forward or
  // back, then truncate the logs (idempotence, §3.2.3).
  RecoveryStats stats;
  for (const uint16_t id : coordinator_ids) {
    PANDORA_RETURN_NOT_OK(
        rc_->RecoverCoordinatorLogs(id, config_.mode, &stats));
  }

  // Baseline only: stray locks of *not-logged* transactions cannot be
  // found without scanning the whole KVS, and the scan cannot tell live
  // locks from stray ones, so the entire system is blocked (§3.1.1).
  if (config_.mode == txn::ProtocolMode::kFordBaseline) {
    if (gate_ != nullptr) gate_->BlockAndQuiesce();
    const Status scan_status =
        rc_->ScanAndReleaseStrayLocks(coordinator_ids, &stats);
    if (gate_ != nullptr) gate_->Unblock();
    PANDORA_RETURN_NOT_OK(scan_status);
  }

  // Step 4 — stray-lock notification: only now may live coordinators
  // steal (Cor4: every surviving lock of these ids belongs to a
  // not-logged transaction).
  for (cluster::ComputeServer* server : cluster_->ComputeServers()) {
    for (const uint16_t id : coordinator_ids) {
      server->failed_ids().Set(id);
    }
  }

  const uint64_t elapsed = NowNanos() - start;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_stats_ = stats;
    recoveries_done_[node]++;
  }
  last_latency_ns_.store(elapsed, std::memory_order_release);
  PANDORA_LOG(kInfo) << "recovered compute node " << node << " ("
                     << coordinator_ids.size() << " coordinators) in "
                     << elapsed / 1000 << " us: " << stats.logged_txns
                     << " logged txns, " << stats.rolled_forward
                     << " forward, " << stats.rolled_back << " back, "
                     << stats.locks_released << " locks released";
  return Status::OK();
}

Status RecoveryManager::RecoverMemoryFailure(rdma::NodeId node) {
  std::lock_guard<std::mutex> recovery_lock(recovery_mu_);
  if (cluster_->membership().IsMemoryAlive(node)) {
    cluster_->membership().MarkMemoryDead(node);
  }
  // §3.2.5: the whole KVS pauses briefly while the new replica
  // configuration is installed; in-flight transactions decide for
  // themselves (coordinators commit if all live replicas are updated).
  cluster_->membership().BeginReconfiguration();
  SleepForMicros(config_.memory_reconfig_us);
  cluster_->membership().EndReconfiguration();
  PANDORA_LOG(kInfo) << "memory node " << node
                     << " failed over; new primaries installed";
  return Status::OK();
}

uint64_t RecoveryManager::recovery_count(rdma::NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = recoveries_done_.find(node);
  return it == recoveries_done_.end() ? 0 : it->second;
}

bool RecoveryManager::WaitForComputeRecovery(rdma::NodeId node,
                                             uint64_t timeout_us,
                                             uint64_t completions_before) {
  const uint64_t deadline = NowMicros() + timeout_us;
  while (NowMicros() < deadline) {
    if (recovery_count(node) > completions_before) return true;
    SleepForMicros(100);
  }
  return false;
}

RecoveryStats RecoveryManager::last_recovery_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_stats_;
}

Status RecoveryManager::ReplaceMemoryNode(rdma::NodeId node) {
  std::lock_guard<std::mutex> recovery_lock(recovery_mu_);
  cluster_->membership().BeginReconfiguration();
  if (gate_ != nullptr) gate_->BlockAndQuiesce();
  const Status status = cluster_->RebuildMemoryNode(node);
  if (gate_ != nullptr) gate_->Unblock();
  cluster_->membership().EndReconfiguration();
  if (status.ok()) {
    PANDORA_LOG(kInfo) << "memory node " << node
                       << " re-replicated and re-admitted";
  }
  return status;
}

cluster::ReconfigOptions RecoveryManager::MakeReconfigOptions() {
  cluster::ReconfigOptions options;
  if (gate_ == nullptr) return options;
  options.quiesce_block = [this] {
    gate_->BlockAndQuiesce();
    // A compute recovery started before the gate closed may still be
    // repairing state; let it finish so the delta pass copies the repaired
    // images rather than racing the recovery coordinator's writes.
    const uint64_t deadline = NowMicros() + 1'000'000;
    while (pending_recoveries() > 0 && NowMicros() < deadline) {
      SleepForMicros(100);
    }
  };
  options.quiesce_unblock = [this] { gate_->Unblock(); };
  return options;
}

Status RecoveryManager::RecycleIdsIfNeeded(double threshold) {
  if (fd_->IdSpaceUsed() < threshold) return Status::OK();
  // Gather the ids that are currently marked failed; release all their
  // stray locks with a quiesced scan, then return them to the pool.
  std::vector<uint16_t> recyclable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const uint16_t id : all_failed_ids_) {
      if (fd_->failed_ids().Test(id)) recyclable.push_back(id);
    }
  }
  if (recyclable.empty()) {
    return Status::ResourceExhausted("id space full but nothing failed");
  }
  if (gate_ != nullptr) gate_->BlockAndQuiesce();
  RecoveryStats stats;
  const Status status = rc_->ScanAndReleaseStrayLocks(recyclable, &stats);
  if (gate_ != nullptr) gate_->Unblock();
  PANDORA_RETURN_NOT_OK(status);
  fd_->ReleaseRecycledIds(recyclable);
  // The recycled ids must also disappear from every compute server's
  // failed-ids set (they may be reassigned).
  for (cluster::ComputeServer* server : cluster_->ComputeServers()) {
    for (const uint16_t id : recyclable) server->failed_ids().Clear(id);
  }
  PANDORA_LOG(kInfo) << "recycled " << recyclable.size()
                     << " coordinator ids (" << stats.locks_released
                     << " stray locks released)";
  return Status::OK();
}

}  // namespace recovery
}  // namespace pandora

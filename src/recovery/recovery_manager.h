#ifndef PANDORA_RECOVERY_RECOVERY_MANAGER_H_
#define PANDORA_RECOVERY_RECOVERY_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/reconfig.h"
#include "common/status.h"
#include "recovery/failure_detector.h"
#include "recovery/recovery_coordinator.h"
#include "txn/system_gate.h"
#include "txn/txn_config.h"

namespace pandora {
namespace recovery {

struct RecoveryManagerConfig {
  /// Which protocol's recovery to run. kPandora uses PILL (non-blocking);
  /// kFordBaseline adds the stop-the-world stray-lock scan; the
  /// traditional scheme recovers stray locks from lock-intent logs.
  txn::ProtocolMode mode = txn::ProtocolMode::kPandora;
  FdConfig fd;
  /// Reconfiguration pause after a memory-server failure (§3.2.5; §6.3:
  /// fail-over throughput drops to zero, then rapidly recovers).
  uint64_t memory_reconfig_us = 2000;
  /// Per-slot cost charged to the Baseline's stray-lock scan, modelling
  /// the paper's production-sized KVS (§3.1.1). 0 = scan at simulator
  /// memory speed.
  uint64_t scan_throttle_ns_per_slot = 0;
};

/// End-to-end recovery orchestration (Figure 3): failure detection,
/// active-link termination, log recovery, stray-lock notification — plus
/// the memory-server failure path and coordinator-id recycling.
class RecoveryManager {
 public:
  RecoveryManager(cluster::Cluster* cluster,
                  const RecoveryManagerConfig& config,
                  txn::SystemGate* gate = nullptr);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  FailureDetector& fd() { return *fd_; }
  RecoveryCoordinator& rc() { return *rc_; }

  /// Starts the failure detector.
  void Start();
  void Stop();

  /// Registers a compute server: allocates `coordinators` coordinator-ids,
  /// seeds the server's failed-ids bitset from the master copy, and starts
  /// a heartbeat pump for the node.
  Status RegisterComputeNode(cluster::ComputeServer* server,
                             uint32_t coordinators,
                             std::vector<uint16_t>* ids);

  /// Runs the §3.2.2 recovery steps 2-4 for a failed compute node.
  /// Normally invoked automatically from the FD callback; exposed for
  /// tests and for benches that bypass heartbeat detection. Blocking.
  Status RecoverComputeFailure(rdma::NodeId node,
                               const std::vector<uint16_t>& coordinator_ids);

  /// §3.2.5 memory-failure handling: marks the server dead (if the fabric
  /// has not already), pauses the DKVS behind the reconfiguration barrier
  /// while compute servers recompute primaries, then resumes. Blocking.
  Status RecoverMemoryFailure(rdma::NodeId node);

  /// Number of completed compute recoveries for `node` so far. Capture it
  /// before inducing a crash and pass it as `completions_before` to wait
  /// for the *next* recovery rather than a stale earlier one.
  uint64_t recovery_count(rdma::NodeId node) const;

  /// Waits until `node`'s completed-recovery count exceeds
  /// `completions_before` (stray-lock notification sent). Returns false on
  /// timeout.
  bool WaitForComputeRecovery(rdma::NodeId node, uint64_t timeout_us,
                              uint64_t completions_before = 0);

  /// Compute recoveries currently in flight (started, not yet completed).
  uint64_t pending_recoveries() const {
    return started_.load(std::memory_order_acquire) -
           completed_.load(std::memory_order_acquire);
  }

  /// Times an FD-driven recovery attempt died (step_fault_hook or real RC
  /// failure) and the RC was restarted to re-run it. Litmus compound
  /// schedules assert the injected RC death actually happened.
  uint64_t rc_restarts() const {
    return rc_restarts_.load(std::memory_order_acquire);
  }

  /// Stats of the most recent completed compute recovery.
  RecoveryStats last_recovery_stats() const;

  /// Time from FD verdict to stray-lock notification of the most recent
  /// compute recovery.
  uint64_t last_recovery_latency_ns() const {
    return last_latency_ns_.load(std::memory_order_acquire);
  }

  /// §3.2.5 re-replication: quiesces the system, rebuilds the dead
  /// memory server as a fresh replica (data copied from the surviving
  /// primaries), and resumes. Restores the replication degree after a
  /// memory failure.
  Status ReplaceMemoryNode(rdma::NodeId node);

  /// Reconfiguration options wired to this manager's system gate: the
  /// cutover quiesce blocks new transactions, drains the in-flight ones,
  /// and additionally waits out any compute recovery currently running
  /// (recovery-during-reconfiguration re-plans instead of interleaving).
  cluster::ReconfigOptions MakeReconfigOptions();

  /// §3.1.2 "Recycling coordinator-ids": when more than 95% of the id
  /// space is used, scan memory, release all stray locks of failed ids and
  /// return them to the free pool. Blocking (quiesces the system).
  Status RecycleIdsIfNeeded(double threshold = 0.95);

 private:
  void OnFailureDetected(rdma::NodeId node,
                         const std::vector<uint16_t>& ids);

  cluster::Cluster* cluster_;
  RecoveryManagerConfig config_;
  txn::SystemGate* gate_;
  std::unique_ptr<FailureDetector> fd_;
  std::unique_ptr<RecoveryCoordinator> rc_;

  mutable std::mutex mu_;
  std::map<rdma::NodeId, uint64_t> recoveries_done_;  // node -> count
  std::vector<std::unique_ptr<HeartbeatPump>> pumps_;
  std::set<rdma::NodeId> pumped_nodes_;
  std::vector<std::thread> recovery_threads_;
  std::vector<uint16_t> all_failed_ids_;  // for recycling
  RecoveryStats last_stats_;
  std::atomic<uint64_t> last_latency_ns_{0};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rc_restarts_{0};
  // Serializes compute-failure recovery against memory reconfiguration
  // (joint failures run both protocols, but not interleaved).
  std::mutex recovery_mu_;
};

}  // namespace recovery
}  // namespace pandora

#endif  // PANDORA_RECOVERY_RECOVERY_MANAGER_H_

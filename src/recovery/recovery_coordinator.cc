#include "recovery/recovery_coordinator.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/clock.h"
#include "common/coding.h"
#include "common/logging.h"
#include "store/object_header.h"
#include "store/remote_object.h"

namespace pandora {
namespace recovery {

void RecoveryStats::Add(const RecoveryStats& other) {
  log_bytes_read += other.log_bytes_read;
  logged_txns += other.logged_txns;
  lock_intents += other.lock_intents;
  rolled_forward += other.rolled_forward;
  rolled_back += other.rolled_back;
  torn_records += other.torn_records;
  locks_released += other.locks_released;
  objects_restored += other.objects_restored;
  slots_scanned += other.slots_scanned;
  log_recovery_ns += other.log_recovery_ns;
  scan_ns += other.scan_ns;
}

RecoveryCoordinator::RecoveryCoordinator(cluster::Cluster* cluster)
    : cluster_(cluster) {
  // The RC runs on the service node; its QPs are set up on the control
  // path like any other connection.
  // Standbys included: a live join can admit them to the ring at any
  // time, and recovery must be able to read their logs and regions.
  const rdma::NodeId self = cluster->service_node_id();
  qps_.resize(cluster->total_memory_nodes());
  for (uint32_t m = 0; m < cluster->total_memory_nodes(); ++m) {
    qps_[m] = cluster->fabric().CreateQueuePair(
        self, cluster->memory_node_id(m));
  }
}

Status RecoveryCoordinator::CollectRecords(
    uint16_t coord_id, rdma::NodeId server,
    std::vector<store::LogRecord>* records, RecoveryStats* stats) {
  const store::LogLayout& layout = cluster_->catalog().log_layout();
  const uint64_t area = layout.CoordinatorAreaSize();
  area_buf_.resize(area);
  // One big one-sided read per log server (§3.2.2 "F+1 Log Reads": each
  // RDMA read returns the coordinator's whole contiguous log area).
  PANDORA_RETURN_NOT_OK(qp(server)->Read(
      cluster_->catalog().log_rkey(server),
      layout.CoordinatorBase(coord_id), area_buf_.data(), area));
  stats->log_bytes_read += area;

  const uint32_t slot_bytes = layout.config().slot_bytes;
  for (uint32_t s = 0; s < layout.config().slots_per_coordinator; ++s) {
    store::LogRecord record;
    const Status status = store::ParseLogRecord(
        area_buf_.data() + static_cast<uint64_t>(s) * slot_bytes,
        slot_bytes, &record);
    if (status.ok()) {
      if (record.coord_id == coord_id) records->push_back(std::move(record));
      continue;
    }
    if (status.IsNotFound()) continue;  // Empty or truncated slot.
    // Torn write: the coordinator died mid-log-write. The transaction
    // cannot have applied any update (validation completes only after the
    // log write), so ignoring the record is exactly right — its locks are
    // stray and will be stolen / scanned.
    stats->torn_records++;
  }
  return Status::OK();
}

Status RecoveryCoordinator::ResolveSlot(store::TableId table,
                                        store::Key key, rdma::NodeId node,
                                        uint64_t* slot, bool* found) {
  if (const auto cached = cluster_->addresses().Lookup(table, node, key)) {
    *slot = *cached;
    *found = true;
    return Status::OK();
  }
  const cluster::TableInfo& info = cluster_->catalog().table(table);
  store::SlotState state;
  const Status status = store::FindSlotByProbe(
      qp(node), info.region_rkeys[node], info.layout, key, &state);
  if (status.IsNotFound()) {
    *found = false;
    return Status::OK();
  }
  PANDORA_RETURN_NOT_OK(status);
  *slot = state.slot;
  *found = true;
  cluster_->addresses().InsertOverlay(table, node, key, state.slot);
  return Status::OK();
}

Status RecoveryCoordinator::ReleaseObjectLocks(uint16_t coord_id,
                                               store::TableId table,
                                               store::Key key,
                                               RecoveryStats* stats) {
  const cluster::TableInfo& info = cluster_->catalog().table(table);
  const store::LockWord theirs = store::MakeLock(coord_id);
  for (const rdma::NodeId node : cluster_->ReplicaSetFor(table, key)) {
    if (!cluster_->membership().IsMemoryAlive(node)) continue;
    uint64_t slot = 0;
    bool found = false;
    PANDORA_RETURN_NOT_OK(ResolveSlot(table, key, node, &slot, &found));
    if (!found) continue;
    uint64_t observed = 0;
    PANDORA_RETURN_NOT_OK(
        qp(node)->CompareSwap(info.region_rkeys[node],
                              info.layout.LockOffset(slot), theirs,
                              store::kUnlocked, &observed));
    if (observed == theirs) stats->locks_released++;
  }
  return Status::OK();
}

Status RecoveryCoordinator::RecoverLoggedTxn(
    uint16_t coord_id, const MergedTxn& txn,
    std::set<std::pair<store::TableId, store::Key>>* handled,
    RecoveryStats* stats) {
  // Objects re-touched by a later transaction of the same coordinator are
  // that transaction's responsibility; skip them here.
  std::vector<store::LogEntry> entries;
  for (const store::LogEntry& entry : txn.entries) {
    if (handled->insert({entry.table, entry.key}).second) {
      entries.push_back(entry);
    }
  }
  if (entries.empty()) return Status::OK();

  // --- Decision (§3.2.2): roll forward iff every replica of every
  // write-set object carries the post-commit version; otherwise roll back.
  // Sound because the client commit-ack is sent only after all replicas
  // are updated (Cor3), and versions only grow.
  struct ReplicaView {
    rdma::NodeId node;
    uint64_t slot;
    bool updated;
    uint64_t version;
  };
  std::vector<std::vector<ReplicaView>> views(entries.size());
  bool all_updated = true;

  for (size_t i = 0; i < entries.size(); ++i) {
    const store::LogEntry& entry = entries[i];
    const cluster::TableInfo& info = cluster_->catalog().table(entry.table);
    for (const rdma::NodeId node :
         cluster_->ReplicaSetFor(entry.table, entry.key)) {
      if (!cluster_->membership().IsMemoryAlive(node)) continue;
      uint64_t slot = 0;
      bool found = false;
      PANDORA_RETURN_NOT_OK(
          ResolveSlot(entry.table, entry.key, node, &slot, &found));
      if (!found) {
        // Insert whose slot claim never reached this replica.
        all_updated = false;
        continue;
      }
      alignas(8) uint64_t version_word = 0;
      PANDORA_RETURN_NOT_OK(
          qp(node)->Read(info.region_rkeys[node],
                         info.layout.VersionOffset(slot), &version_word,
                         8));
      const bool updated = store::VersionOf(version_word) !=
                           store::VersionOf(entry.old_version);
      if (!updated) all_updated = false;
      views[i].push_back({node, slot, updated,
                          store::VersionOf(version_word)});
    }
  }

  if (all_updated) {
    // Roll forward: all updates are in place; just release the locks
    // (conditionally, so a transaction that already unlocked is a no-op).
    stats->rolled_forward++;
    for (const store::LogEntry& entry : entries) {
      PANDORA_RETURN_NOT_OK(
          ReleaseObjectLocks(coord_id, entry.table, entry.key, stats));
    }
    return Status::OK();
  }

  // Roll back: restore the undo image on every updated replica, then
  // release the locks. Value restores are safe while the primary lock is
  // still held by the dead (and link-terminated) coordinator, and
  // idempotent if re-executed.
  stats->rolled_back++;
  for (size_t i = 0; i < entries.size(); ++i) {
    const store::LogEntry& entry = entries[i];
    const cluster::TableInfo& info = cluster_->catalog().table(entry.table);
    for (const ReplicaView& view : views[i]) {
      if (!view.updated) continue;
      // Restore only the failed coordinator's own update (exactly old+1).
      // Under joint compute+memory failures a promoted backup may already
      // carry a later committed version; that state must be preserved.
      if (view.version != store::VersionOf(entry.old_version) + 1) continue;
      std::vector<char> buf(16 + info.layout.padded_value_size(), 0);
      EncodeFixed64(buf.data(), entry.old_version);
      EncodeFixed64(buf.data() + 8, entry.key);
      if (!entry.old_value.empty()) {
        std::memcpy(buf.data() + 16, entry.old_value.data(),
                    std::min<size_t>(entry.old_value.size(),
                                     buf.size() - 16));
      }
      // For inserts old_version is 0, which makes the slot invisible
      // again (the key claim itself is left in place; harmless).
      PANDORA_RETURN_NOT_OK(qp(view.node)->Write(
          info.region_rkeys[view.node],
          info.layout.VersionOffset(view.slot), buf.data(), buf.size()));
      stats->objects_restored++;
    }
    PANDORA_RETURN_NOT_OK(
        ReleaseObjectLocks(coord_id, entry.table, entry.key, stats));
  }
  return Status::OK();
}

Status RecoveryCoordinator::TruncateLogs(
    uint16_t coord_id, const std::vector<rdma::NodeId>& servers) {
  const store::LogLayout& layout = cluster_->catalog().log_layout();
  const uint64_t marker = store::InvalidRecordMarker();
  rdma::VerbBatch batch;
  for (const rdma::NodeId server : servers) {
    if (!cluster_->membership().IsMemoryAlive(server)) continue;
    for (uint32_t s = 0; s < layout.config().slots_per_coordinator; ++s) {
      batch.Write(qp(server), cluster_->catalog().log_rkey(server),
                  layout.SlotOffset(coord_id, s), &marker, sizeof(marker));
    }
  }
  return batch.Execute();
}

Status RecoveryCoordinator::RecoverCoordinatorLogs(uint16_t coord_id,
                                                   txn::ProtocolMode mode,
                                                   RecoveryStats* stats) {
  const uint64_t start = NowNanos();

  // Scan every memory server's log area for this coordinator. Pandora's
  // legacy path confines records to the f+1 designated log servers, but
  // the merged commit doorbell places them on the transaction's touched
  // data servers instead (any union of replica sets is >= f+1), and the
  // baselines scatter per-object records everywhere — scanning all nodes
  // covers all three placements with the same one-read-per-server cost
  // profile, just over more servers.
  (void)mode;
  std::vector<rdma::NodeId> servers;
  for (uint32_t m = 0; m < cluster_->total_memory_nodes(); ++m) {
    servers.push_back(cluster_->memory_node_id(m));
  }

  std::vector<store::LogRecord> records;
  for (const rdma::NodeId server : servers) {
    if (!cluster_->membership().IsMemoryAlive(server)) continue;
    PANDORA_RETURN_NOT_OK(
        CollectRecords(coord_id, server, &records, stats));
  }

  // Merge record copies / per-object fragments by transaction id; keep
  // lock intents separate (they are processed last, Cor4-safe).
  std::map<uint64_t, MergedTxn> txns;
  std::vector<store::LogEntry> intents;
  for (store::LogRecord& record : records) {
    for (store::LogEntry& entry : record.entries) {
      if (entry.is_lock_intent) {
        intents.push_back(std::move(entry));
        continue;
      }
      MergedTxn& txn = txns[record.txn_id];
      txn.txn_id = record.txn_id;
      const bool duplicate =
          std::any_of(txn.entries.begin(), txn.entries.end(),
                      [&](const store::LogEntry& e) {
                        return e.table == entry.table && e.key == entry.key;
                      });
      if (!duplicate) txn.entries.push_back(std::move(entry));
    }
  }

  stats->logged_txns += txns.size();
  stats->lock_intents += intents.size();

  // Roll each logged transaction forward or back (Cor2). Process in
  // *descending* transaction order with a per-object handled set: a
  // coordinator's transactions are sequential, so only the latest logged
  // transaction touching an object can be responsible for its current
  // lock/state — records of earlier (necessarily completed) transactions
  // must not re-release a lock the latest transaction still holds.
  std::set<std::pair<store::TableId, store::Key>> handled;
  for (auto it = txns.rbegin(); it != txns.rend(); ++it) {
    PANDORA_RETURN_NOT_OK(MaybeFault());
    PANDORA_RETURN_NOT_OK(
        RecoverLoggedTxn(coord_id, it->second, &handled, stats));
  }

  // Traditional scheme: release any lock named by an intent. Processed
  // after full records so a logged transaction's locks were already
  // handled by its roll decision; the conditional CAS makes stale intents
  // no-ops.
  for (const store::LogEntry& intent : intents) {
    if (handled.count({intent.table, intent.key})) continue;
    PANDORA_RETURN_NOT_OK(
        ReleaseObjectLocks(coord_id, intent.table, intent.key, stats));
  }

  // Idempotent truncation (§3.2.3) before the stray-lock notification.
  PANDORA_RETURN_NOT_OK(MaybeFault());
  PANDORA_RETURN_NOT_OK(TruncateLogs(coord_id, servers));

  stats->log_recovery_ns += NowNanos() - start;
  return Status::OK();
}

Status RecoveryCoordinator::ScanAndReleaseStrayLocks(
    const std::vector<uint16_t>& failed_ids, RecoveryStats* stats) {
  const uint64_t start = NowNanos();
  for (size_t t = 0; t < cluster_->catalog().num_tables(); ++t) {
    const cluster::TableInfo& info =
        cluster_->catalog().table(static_cast<store::TableId>(t));
    const store::TableLayout& layout = info.layout;
    const uint64_t slot_size = layout.slot_size();
    // Chunked one-sided reads over the whole region (this is the
    // multi-second blocking path PILL exists to avoid, §3.1.1).
    const uint64_t slots_per_chunk = std::max<uint64_t>(
        1, (1u << 20) / slot_size);
    std::vector<char> chunk(slots_per_chunk * slot_size);

    for (uint32_t m = 0; m < cluster_->total_memory_nodes(); ++m) {
      const rdma::NodeId node = cluster_->memory_node_id(m);
      if (!cluster_->membership().IsMemoryAlive(node)) continue;
      for (uint64_t base = 0; base < layout.capacity();
           base += slots_per_chunk) {
        const uint64_t count =
            std::min(slots_per_chunk, layout.capacity() - base);
        PANDORA_RETURN_NOT_OK(
            qp(node)->Read(info.region_rkeys[node],
                           layout.SlotOffset(base), chunk.data(),
                           count * slot_size));
        if (scan_throttle_ns_per_slot_ > 0) {
          SpinForNanos(count * scan_throttle_ns_per_slot_);
        }
        for (uint64_t s = 0; s < count; ++s) {
          stats->slots_scanned++;
          const store::LockWord lock =
              DecodeFixed64(chunk.data() + s * slot_size);
          if (!store::LockHeld(lock)) continue;
          const uint16_t owner = store::LockOwner(lock);
          if (std::find(failed_ids.begin(), failed_ids.end(), owner) ==
              failed_ids.end()) {
            continue;
          }
          uint64_t observed = 0;
          PANDORA_RETURN_NOT_OK(qp(node)->CompareSwap(
              info.region_rkeys[node], layout.LockOffset(base + s), lock,
              store::kUnlocked, &observed));
          if (observed == lock) stats->locks_released++;
        }
      }
    }
  }
  stats->scan_ns += NowNanos() - start;
  return Status::OK();
}

}  // namespace recovery
}  // namespace pandora

#ifndef PANDORA_RECOVERY_FAILURE_DETECTOR_H_
#define PANDORA_RECOVERY_FAILURE_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/fixed_bitset.h"
#include "common/status.h"
#include "rdma/types.h"

namespace pandora {
namespace recovery {

/// Configuration of the heartbeat failure detector (§3.2.2 step 1 and
/// §3.2.4).
struct FdConfig {
  /// Failure is declared after this silence (the paper uses 5 ms).
  uint64_t timeout_us = 5000;
  /// Heartbeat send period on the compute side.
  uint64_t heartbeat_period_us = 1000;
  /// Detector poll period.
  uint64_t poll_period_us = 500;
  /// Number of FD replicas (1 = standalone, Figure 4a; 3 = the
  /// ZooKeeper-backed distributed FD of Figure 4b). A node is declared
  /// failed only when a majority of replicas see its heartbeat as stale.
  uint32_t replicas = 1;
  /// Extra per-replica latency for reaching consensus in the distributed
  /// configuration (models the ZooKeeper quorum round; §6.4 reports <20 ms
  /// recovery with 3 replicas vs ~5+ ms standalone).
  uint64_t quorum_latency_us = 0;
};

/// Heartbeat-based failure detector for compute servers.
///
/// Compute servers "write" their heartbeat timestamps directly into each FD
/// replica's heartbeat array — modelling the paper's one-sided RDMA
/// heartbeats into the FD replicas' memory (§3.2.4: "compute servers send
/// RDMA-based heartbeat messages to all Zookeeper replicas"). The detector
/// thread scans the arrays; when a majority of replicas see a node's last
/// heartbeat older than the timeout, the failure callback fires (once per
/// registered incarnation).
///
/// The FD also owns coordinator-id allocation (§3.1.2): ids are handed out
/// by a strictly serialized counter so no two coordinators ever share an
/// id, and the master failed-ids bitset lives here.
class FailureDetector {
 public:
  using FailureCallback =
      std::function<void(rdma::NodeId node,
                         const std::vector<uint16_t>& coordinator_ids)>;

  FailureDetector(cluster::Cluster* cluster, const FdConfig& config);
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Invoked (from the detector thread) when a compute server is declared
  /// failed. Must be set before Start().
  void set_failure_callback(FailureCallback callback) {
    failure_callback_ = std::move(callback);
  }

  void Start();
  void Stop();

  /// --- Compute-server control path --------------------------------------

  /// Registers a compute server and allocates `coordinators` fresh
  /// coordinator-ids for it. The returned ids are globally unique over the
  /// lifetime of the FD (never recycled unless RecycleIds runs). Also
  /// starts tracking heartbeats for the node.
  Status RegisterComputeNode(rdma::NodeId node, uint32_t coordinators,
                             std::vector<uint16_t>* ids);

  /// One-sided heartbeat: stores "now" into every FD replica's array.
  /// Called from a compute-side heartbeat thread; does nothing (heartbeat
  /// goes stale) once the node's fabric link is halted.
  void Heartbeat(rdma::NodeId node);

  /// Deregisters a node (clean shutdown — not a failure).
  void DeregisterComputeNode(rdma::NodeId node);

  /// --- Failed-id bookkeeping --------------------------------------------

  const FailedIdBitset& failed_ids() const { return failed_ids_; }
  void MarkFailed(uint16_t coord_id) { failed_ids_.Set(coord_id); }

  /// Fraction of the 64K id space consumed (recycling triggers at 95%).
  double IdSpaceUsed() const;

  /// Number of ids handed out so far.
  uint32_t ids_allocated() const {
    return next_coord_id_.load(std::memory_order_acquire);
  }

  /// Marks a set of ids as recycled (called by the recycling scanner after
  /// it has released all their stray locks, §3.1.2).
  void ReleaseRecycledIds(const std::vector<uint16_t>& ids);

 private:
  struct NodeRecord {
    rdma::NodeId node = rdma::kInvalidNodeId;
    std::vector<uint16_t> coordinator_ids;
    bool failed = false;
  };

  void DetectorLoop();
  bool MajoritySeesStale(rdma::NodeId node, uint64_t now_us) const;

  cluster::Cluster* cluster_;
  FdConfig config_;
  FailureCallback failure_callback_;

  // Heartbeat arrays, one per FD replica, indexed by NodeId. Atomic so the
  // compute-side "RDMA write" and the detector's read don't race.
  std::vector<std::unique_ptr<std::atomic<uint64_t>[]>> heartbeats_;

  mutable std::mutex mu_;  // Guards records_.
  std::vector<NodeRecord> records_;

  std::atomic<uint32_t> next_coord_id_{0};
  std::atomic<uint32_t> recycled_count_{0};
  std::vector<uint16_t> free_ids_;  // Recycled, reassignable ids.
  FailedIdBitset failed_ids_;

  std::atomic<bool> running_{false};
  std::thread detector_thread_;
};

/// Compute-side heartbeat pump: a thread per compute server that calls
/// FailureDetector::Heartbeat until the node halts or the pump stops.
class HeartbeatPump {
 public:
  HeartbeatPump(FailureDetector* fd, cluster::Cluster* cluster,
                rdma::NodeId node, uint64_t period_us);
  ~HeartbeatPump();

  HeartbeatPump(const HeartbeatPump&) = delete;
  HeartbeatPump& operator=(const HeartbeatPump&) = delete;

  void Stop();

 private:
  FailureDetector* fd_;
  cluster::Cluster* cluster_;
  rdma::NodeId node_;
  uint64_t period_us_;
  std::atomic<bool> running_{true};
  std::thread thread_;
};

}  // namespace recovery
}  // namespace pandora

#endif  // PANDORA_RECOVERY_FAILURE_DETECTOR_H_

#include "recovery/failure_detector.h"

#include "common/clock.h"
#include "common/logging.h"
#include "store/object_header.h"

namespace pandora {
namespace recovery {

FailureDetector::FailureDetector(cluster::Cluster* cluster,
                                 const FdConfig& config)
    : cluster_(cluster), config_(config) {
  PANDORA_CHECK(config_.replicas >= 1);
  heartbeats_.reserve(config_.replicas);
  for (uint32_t r = 0; r < config_.replicas; ++r) {
    auto array = std::make_unique<std::atomic<uint64_t>[]>(rdma::kMaxNodes);
    for (uint32_t i = 0; i < rdma::kMaxNodes; ++i) {
      array[i].store(0, std::memory_order_relaxed);
    }
    heartbeats_.push_back(std::move(array));
  }
}

FailureDetector::~FailureDetector() { Stop(); }

void FailureDetector::Start() {
  PANDORA_CHECK(!running_.load());
  running_.store(true);
  detector_thread_ = std::thread([this] { DetectorLoop(); });
}

void FailureDetector::Stop() {
  if (!running_.exchange(false)) return;
  if (detector_thread_.joinable()) detector_thread_.join();
}

Status FailureDetector::RegisterComputeNode(rdma::NodeId node,
                                            uint32_t coordinators,
                                            std::vector<uint16_t>* ids) {
  const uint32_t max_ids = std::min<uint32_t>(
      cluster_->catalog().log_layout().config().max_coordinators,
      store::kMaxCoordinatorIds);
  ids->clear();

  std::lock_guard<std::mutex> lock(mu_);
  // Prefer recycled ids (their stray locks were all released by the
  // recycling scan, §3.1.2).
  while (ids->size() < coordinators && !free_ids_.empty()) {
    ids->push_back(free_ids_.back());
    free_ids_.pop_back();
  }
  const uint32_t fresh = coordinators - static_cast<uint32_t>(ids->size());
  if (fresh > 0) {
    const uint32_t first =
        next_coord_id_.fetch_add(fresh, std::memory_order_acq_rel);
    if (first + fresh > max_ids) {
      return Status::ResourceExhausted(
          "coordinator-id space exhausted; recycling required");
    }
    for (uint32_t i = 0; i < fresh; ++i) {
      ids->push_back(static_cast<uint16_t>(first + i));
    }
  }

  // A node may re-register after a restart; it gets a fresh record with
  // fresh ids (old ids stay retired — the paper never reassigns ids whose
  // stray locks may exist).
  for (NodeRecord& record : records_) {
    if (record.node == node && !record.failed) {
      record.failed = true;  // Stale record from an unreported incarnation.
    }
  }
  NodeRecord record;
  record.node = node;
  record.coordinator_ids = *ids;
  records_.push_back(std::move(record));
  Heartbeat(node);
  return Status::OK();
}

void FailureDetector::Heartbeat(rdma::NodeId node) {
  if (cluster_->fabric().IsHalted(node)) return;  // Dead nodes are silent.
  const uint64_t now = NowMicros();
  for (auto& replica : heartbeats_) {
    replica[node].store(now, std::memory_order_release);
  }
}

void FailureDetector::DeregisterComputeNode(rdma::NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  for (NodeRecord& record : records_) {
    if (record.node == node) record.failed = true;
  }
}

double FailureDetector::IdSpaceUsed() const {
  const uint32_t allocated = next_coord_id_.load(std::memory_order_acquire);
  const uint32_t recycled = recycled_count_.load(std::memory_order_acquire);
  return static_cast<double>(allocated - recycled) /
         static_cast<double>(store::kMaxCoordinatorIds);
}

void FailureDetector::ReleaseRecycledIds(const std::vector<uint16_t>& ids) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const uint16_t id : ids) {
    failed_ids_.Clear(id);
    free_ids_.push_back(id);
  }
  recycled_count_.fetch_add(static_cast<uint32_t>(ids.size()),
                            std::memory_order_acq_rel);
}

bool FailureDetector::MajoritySeesStale(rdma::NodeId node,
                                        uint64_t now_us) const {
  uint32_t stale = 0;
  for (const auto& replica : heartbeats_) {
    const uint64_t last = replica[node].load(std::memory_order_acquire);
    if (now_us > last && now_us - last > config_.timeout_us) ++stale;
  }
  return stale * 2 > config_.replicas;
}

void FailureDetector::DetectorLoop() {
  while (running_.load(std::memory_order_acquire)) {
    SleepForMicros(config_.poll_period_us);
    const uint64_t now = NowMicros();

    // Collect verdicts under the lock, fire callbacks outside it.
    std::vector<NodeRecord> newly_failed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (NodeRecord& record : records_) {
        if (record.failed) continue;
        if (MajoritySeesStale(record.node, now)) {
          record.failed = true;
          newly_failed.push_back(record);
        }
      }
    }
    for (const NodeRecord& record : newly_failed) {
      // Distributed FD: reaching the quorum decision costs extra latency.
      if (config_.quorum_latency_us > 0 && config_.replicas > 1) {
        SleepForMicros(config_.quorum_latency_us);
      }
      PANDORA_LOG(kInfo) << "FD: compute node " << record.node
                         << " declared failed ("
                         << record.coordinator_ids.size()
                         << " coordinators)";
      for (const uint16_t id : record.coordinator_ids) {
        failed_ids_.Set(id);
      }
      if (failure_callback_) {
        failure_callback_(record.node, record.coordinator_ids);
      }
    }
  }
}

HeartbeatPump::HeartbeatPump(FailureDetector* fd, cluster::Cluster* cluster,
                             rdma::NodeId node, uint64_t period_us)
    : fd_(fd), cluster_(cluster), node_(node), period_us_(period_us) {
  thread_ = std::thread([this] {
    // Runs for the pump's lifetime; Heartbeat() itself goes silent while
    // the node is halted, and resumes if the node is restarted.
    while (running_.load(std::memory_order_acquire)) {
      fd_->Heartbeat(node_);
      SleepForMicros(period_us_);
    }
  });
}

HeartbeatPump::~HeartbeatPump() { Stop(); }

void HeartbeatPump::Stop() {
  running_.store(false, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

}  // namespace recovery
}  // namespace pandora

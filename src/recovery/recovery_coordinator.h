#ifndef PANDORA_RECOVERY_RECOVERY_COORDINATOR_H_
#define PANDORA_RECOVERY_RECOVERY_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <functional>

#include "cluster/cluster.h"
#include "common/status.h"
#include "rdma/queue_pair.h"
#include "store/log_layout.h"
#include "txn/txn_config.h"

namespace pandora {
namespace recovery {

/// Counters describing one recovery run (reported by the benches).
struct RecoveryStats {
  uint64_t log_bytes_read = 0;
  uint64_t logged_txns = 0;
  uint64_t lock_intents = 0;
  uint64_t rolled_forward = 0;
  uint64_t rolled_back = 0;
  uint64_t torn_records = 0;
  uint64_t locks_released = 0;
  uint64_t objects_restored = 0;
  uint64_t slots_scanned = 0;
  uint64_t log_recovery_ns = 0;
  uint64_t scan_ns = 0;

  void Add(const RecoveryStats& other);
};

/// The Recovery Coordinator (RC) of §3.2.2 step 3: a thread on a compute-
/// capable node that reads the failed coordinator's logs with f+1 one-sided
/// RDMA reads, decides roll-forward vs roll-back per logged transaction by
/// comparing replica versions against the undo images, repairs memory, and
/// truncates the logs.
///
/// Every mutation is a *conditional* CAS against "locked by the failed
/// coordinator" (or a value write under such a lock), so re-executing any
/// step is harmless — the idempotency §3.2.3 requires for surviving RC
/// failures.
class RecoveryCoordinator {
 public:
  explicit RecoveryCoordinator(cluster::Cluster* cluster);

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  /// Models the scan-bandwidth constraint of a production-sized KVS
  /// (§3.1.1: 100 GiB over a 100 Gbps link needs >= 8 s): the in-simulator
  /// dataset is tiny, so the Baseline's scan finishes unrealistically
  /// fast unless each scanned slot is charged the per-byte time a real
  /// deployment would pay. 0 disables the model.
  void set_scan_throttle_ns_per_slot(uint64_t ns) {
    scan_throttle_ns_per_slot_ = ns;
  }

  /// Fault injection for §3.2.3 idempotence validation: called between
  /// recovery steps; returning true makes the RC die mid-recovery
  /// (RecoverCoordinatorLogs returns Unavailable with memory in whatever
  /// partially-repaired state the steps so far produced). The next RC
  /// re-executes the whole procedure.
  void set_step_fault_hook(std::function<bool()> hook) {
    step_fault_hook_ = std::move(hook);
  }

  /// Log recovery for one failed coordinator id. For kPandora the RC reads
  /// the coordinator's f+1 designated log servers; for the baseline modes
  /// it reads the coordinator's area on every memory server (per-object log
  /// placement). Safe to call repeatedly (idempotent); must run *before*
  /// the stray-lock notification (Cor4).
  Status RecoverCoordinatorLogs(uint16_t coord_id, txn::ProtocolMode mode,
                                RecoveryStats* stats);

  /// The Baseline's stop-the-world stray-lock recovery (§3.1.1): scans
  /// every table region on every alive memory server with one-sided reads
  /// and releases locks owned by any of `failed_ids`. The caller must have
  /// quiesced the system (SystemGate::BlockAndQuiesce) so live locks cannot
  /// be confused with stray ones mid-scan.
  Status ScanAndReleaseStrayLocks(const std::vector<uint16_t>& failed_ids,
                                  RecoveryStats* stats);

 private:
  struct MergedTxn {
    uint64_t txn_id = 0;
    std::vector<store::LogEntry> entries;
  };

  rdma::QueuePair* qp(rdma::NodeId node) { return qps_[node].get(); }

  // Reads and parses every record slot in `coord_id`'s area on `server`.
  Status CollectRecords(uint16_t coord_id, rdma::NodeId server,
                        std::vector<store::LogRecord>* records,
                        RecoveryStats* stats);

  // Resolves the slot of (table, key) on `node` via the shared address
  // cache, probing remotely on a miss.
  Status ResolveSlot(store::TableId table, store::Key key,
                     rdma::NodeId node, uint64_t* slot, bool* found);

  // Applies the §3.2.2 decision rule to one logged transaction. `handled`
  // is the set of objects already repaired by later transactions of the
  // same coordinator (processed in descending transaction order).
  Status RecoverLoggedTxn(
      uint16_t coord_id, const MergedTxn& txn,
      std::set<std::pair<store::TableId, store::Key>>* handled,
      RecoveryStats* stats);

  // Conditionally releases (CAS locked-by-coord -> unlocked) the lock of
  // one object on every alive replica.
  Status ReleaseObjectLocks(uint16_t coord_id, store::TableId table,
                            store::Key key, RecoveryStats* stats);

  // Truncates (invalidates) all of `coord_id`'s log slots on `servers`.
  Status TruncateLogs(uint16_t coord_id,
                      const std::vector<rdma::NodeId>& servers);

  Status MaybeFault() {
    if (step_fault_hook_ && step_fault_hook_()) {
      return Status::Unavailable("recovery coordinator crashed");
    }
    return Status::OK();
  }

  cluster::Cluster* cluster_;
  std::vector<std::unique_ptr<rdma::QueuePair>> qps_;
  std::vector<char> area_buf_;  // Reusable log-area read buffer.
  std::function<bool()> step_fault_hook_;
  uint64_t scan_throttle_ns_per_slot_ = 0;
};

}  // namespace recovery
}  // namespace pandora

#endif  // PANDORA_RECOVERY_RECOVERY_COORDINATOR_H_

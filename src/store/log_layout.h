#ifndef PANDORA_STORE_LOG_LAYOUT_H_
#define PANDORA_STORE_LOG_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "store/table_layout.h"

namespace pandora {
namespace store {

/// On-memory-server undo-log area.
///
/// Every memory server reserves a log region holding a fixed number of
/// *record slots* for every coordinator-id (the paper allocates 32 KiB per
/// coordinator, §3.2.2 "F+1 Log Reads"). Fixed-size slots make the recovery
/// coordinator's scan unambiguous: each slot either holds a complete,
/// checksummed record or it does not; there is no variable-length framing to
/// resynchronize after a torn write.
///
/// Pandora writes a transaction's entire write-set as ONE record into the
/// coordinator's next slot (round-robin), with a single RDMA write per log
/// server (§3.1.4). The FORD baseline reuses the same slot format but writes
/// one single-entry record per object per object-replica.
struct LogConfig {
  /// Record slots per coordinator. With synchronous coordinators one
  /// outstanding transaction exists per coordinator, but multiple slots keep
  /// history for the FORD baseline's per-object records.
  uint32_t slots_per_coordinator = 8;
  /// Bytes per record slot. Must fit the largest write-set record; the log
  /// writer returns ResourceExhausted otherwise. 8 slots x 4 KiB = the
  /// paper's 32 KiB per coordinator.
  uint32_t slot_bytes = 4096;
  /// Number of coordinator-ids the region provisions space for.
  uint32_t max_coordinators = 1024;
};

/// Byte layout of a log region under a LogConfig.
class LogLayout {
 public:
  LogLayout() = default;
  explicit LogLayout(const LogConfig& config) : config_(config) {}

  const LogConfig& config() const { return config_; }

  uint64_t region_size() const {
    return static_cast<uint64_t>(config_.max_coordinators) *
           config_.slots_per_coordinator * config_.slot_bytes;
  }

  uint64_t CoordinatorBase(uint16_t coord_id) const {
    return static_cast<uint64_t>(coord_id) * config_.slots_per_coordinator *
           config_.slot_bytes;
  }

  uint64_t SlotOffset(uint16_t coord_id, uint32_t slot) const {
    return CoordinatorBase(coord_id) +
           static_cast<uint64_t>(slot) * config_.slot_bytes;
  }

  uint64_t CoordinatorAreaSize() const {
    return static_cast<uint64_t>(config_.slots_per_coordinator) *
           config_.slot_bytes;
  }

 private:
  LogConfig config_;
};

/// One write-set entry inside a log record: the undo image of an object.
struct LogEntry {
  TableId table = 0;
  Key key = 0;
  /// Version word observed when the object was locked (pre-update).
  /// Recovery compares replica versions against VersionOf(old_version) to
  /// decide roll-forward vs roll-back (§3.2.2 step 3).
  uint64_t old_version = 0;
  /// Undo image of the value (empty for inserts, which have no old value).
  std::vector<char> old_value;
  /// True if this entry is an insert (slot claimed by this transaction).
  bool is_insert = false;
  /// True if this entry deletes the object (commit sets the tombstone).
  bool is_delete = false;
  /// True for the traditional lock-logging scheme's lock-intent records
  /// (§6.1 "Traditional Logging Scheme"): written *before* the lock CAS so
  /// recovery can release stray locks without scanning the KVS. Carries no
  /// undo image.
  bool is_lock_intent = false;
};

/// A parsed log record: one transaction's undo information.
struct LogRecord {
  uint64_t txn_id = 0;
  uint16_t coord_id = 0;
  std::vector<LogEntry> entries;
};

/// Serialized-size bookkeeping, exposed so the log writer can pack a
/// record into slot-sized fragments with O(entries) size accounting
/// instead of O(entries²) trial serialization.
size_t LogRecordHeaderBytes();
size_t LogEntrySerializedSize(const LogEntry& entry);

/// Serializes `record` into `buf` (which must hold at least `slot_bytes`).
/// Returns ResourceExhausted if the record does not fit. The serialized
/// image is 8-byte aligned and carries a magic word and checksum.
Status SerializeLogRecord(const LogRecord& record, uint32_t slot_bytes,
                          std::vector<char>* buf);

/// Serializes only entries [first, first + count) of `record` — the
/// fragmenting path: fragments share the record's txn_id/coord_id and
/// recovery merges them back by transaction id.
Status SerializeLogRecordSpan(const LogRecord& record, size_t first,
                              size_t count, uint32_t slot_bytes,
                              std::vector<char>* buf);

/// Streaming serializer producing the same wire image as
/// SerializeLogRecordSpan, but fed entry by entry straight from the
/// coordinator's write set — the hot commit path uses it to skip building
/// an intermediate LogRecord (whose per-entry value strings are a pure
/// copy + cache-miss tax). Usage: construct over a reused buffer, AddEntry
/// until it reports the slot is full (start the next fragment then), and
/// Finish() to seal header fields and checksum.
class LogRecordWriter {
 public:
  LogRecordWriter(uint64_t txn_id, uint16_t coord_id, uint32_t slot_bytes,
                  std::vector<char>* buf);

  /// Appends one entry. Returns false — without writing — when the entry
  /// does not fit the remaining slot space; a false return from a
  /// fresh writer means the entry alone exceeds the slot size.
  bool AddEntry(TableId table, Key key, uint64_t old_version,
                bool is_insert, bool is_delete, const void* old_value,
                size_t old_value_len);

  size_t entries() const { return entries_; }

  /// Seals num_entries / payload_bytes / checksum. The buffer then holds
  /// exactly the serialized fragment.
  void Finish();

 private:
  uint32_t slot_bytes_;
  std::vector<char>* buf_;
  size_t entries_ = 0;
};

/// Parses the record in a slot image. Returns:
///  - OK and fills `record` for a valid record,
///  - NotFound for an empty or invalidated slot,
///  - Corruption for a torn/garbled record (treated by recovery as
///    not-logged, which is safe: the log write had not completed, so the
///    transaction cannot have applied any update).
Status ParseLogRecord(const char* slot_image, uint32_t slot_bytes,
                      LogRecord* record);

/// Writes the "invalid" marker over a serialized slot image's magic word.
/// Used by the abort path ("truncate", §3.1.5) and by the recovery
/// coordinator's idempotent truncation (§3.2.3). Only the first 8 bytes of
/// the slot need to be rewritten.
uint64_t InvalidRecordMarker();

}  // namespace store
}  // namespace pandora

#endif  // PANDORA_STORE_LOG_LAYOUT_H_

#ifndef PANDORA_STORE_REMOTE_OBJECT_H_
#define PANDORA_STORE_REMOTE_OBJECT_H_

#include <cstdint>

#include "common/status.h"
#include "rdma/queue_pair.h"
#include "store/object_header.h"
#include "store/table_layout.h"

namespace pandora {
namespace store {

/// Snapshot of a slot's control words as observed by a one-sided read.
struct SlotState {
  uint64_t slot = 0;
  LockWord lock = 0;
  VersionWord version = 0;
};

/// Compute-side one-sided operations on table regions that need more than a
/// single verb: hash-table probing and insert-slot claiming. Everything
/// else (lock CAS, slot reads/writes) is a single verb that the protocols
/// issue directly through TableLayout offsets.

/// Probes for `key` with one-sided 24-byte reads ({lock, version, key} per
/// slot). On success fills `state`. Returns NotFound if the probe hits a
/// free slot (key absent) and ResourceExhausted if the whole region was
/// scanned.
Status FindSlotByProbe(rdma::QueuePair* qp, rdma::RKey rkey,
                       const TableLayout& layout, Key key, SlotState* state);

/// Finds the slot for `key`, or claims a free slot for an insert by CASing
/// the key word from kFreeKey to `key`. On success `*state` names the
/// object's slot (existing or newly claimed) and `*existed` says which.
/// Claiming is idempotent under races: if another coordinator claims the
/// probed slot first, probing continues.
Status FindOrClaimSlot(rdma::QueuePair* qp, rdma::RKey rkey,
                       const TableLayout& layout, Key key, SlotState* state,
                       bool* existed);

}  // namespace store
}  // namespace pandora

#endif  // PANDORA_STORE_REMOTE_OBJECT_H_

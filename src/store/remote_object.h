#ifndef PANDORA_STORE_REMOTE_OBJECT_H_
#define PANDORA_STORE_REMOTE_OBJECT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rdma/queue_pair.h"
#include "store/object_header.h"
#include "store/table_layout.h"

namespace pandora {
namespace store {

/// Snapshot of a slot's control words as observed by a one-sided read.
struct SlotState {
  uint64_t slot = 0;
  LockWord lock = 0;
  VersionWord version = 0;
};

/// Compute-side one-sided operations on table regions that need more than a
/// single verb: hash-table probing and insert-slot claiming. Everything
/// else (lock CAS, slot reads/writes) is a single verb that the protocols
/// issue directly through TableLayout offsets.

/// Probes for `key` with one-sided 24-byte reads ({lock, version, key} per
/// slot). On success fills `state`. Returns NotFound if the probe hits a
/// free slot (key absent) and ResourceExhausted if the whole region was
/// scanned. `rtts` (optional) accumulates the round trips spent probing.
Status FindSlotByProbe(rdma::QueuePair* qp, rdma::RKey rkey,
                       const TableLayout& layout, Key key, SlotState* state,
                       uint64_t* rtts = nullptr);

/// Finds the slot for `key`, or claims a free slot for an insert by CASing
/// the key word from kFreeKey to `key`. On success `*state` names the
/// object's slot (existing or newly claimed) and `*existed` says which.
/// Claiming is idempotent under races: if another coordinator claims the
/// probed slot first, probing continues. `rtts` (optional) accumulates the
/// round trips spent.
Status FindOrClaimSlot(rdma::QueuePair* qp, rdma::RKey rkey,
                       const TableLayout& layout, Key key, SlotState* state,
                       bool* existed, uint64_t* rtts = nullptr);

/// --- Combined slot reads (lock + version + key + value in one verb) ----

/// Bytes a combined slot read covers: the full slot from the lock word.
inline size_t SlotReadSize(const TableLayout& layout) {
  return 24 + layout.padded_value_size();
}

/// Posts a combined read of `slot`'s {lock, version, key, value} into
/// `batch`. `buf` must hold SlotReadSize(layout) bytes and stay alive
/// until the batch executes.
void PostSlotRead(rdma::VerbBatch* batch, rdma::QueuePair* qp,
                  rdma::RKey rkey, const TableLayout& layout, uint64_t slot,
                  char* buf);

/// Decoded view over a combined slot read. `value` aliases `buf`.
struct SlotReadView {
  LockWord lock = 0;
  VersionWord version = 0;
  Key key = 0;
  const char* value = nullptr;
};
SlotReadView DecodeSlotRead(const char* buf);

/// --- Batched slot resolution -------------------------------------------

/// One key's slot-resolution request in a batched probe: the key may live
/// on any server (per-request QP/rkey), so a range scan batches across its
/// keys and a replica-set resolution batches the same key across replicas.
struct ProbeRequest {
  rdma::QueuePair* qp = nullptr;
  rdma::RKey rkey = rdma::kInvalidRKey;
  Key key = 0;
};

struct ProbeOutcome {
  Status status;    // OK, NotFound (key absent), or a verb error.
  SlotState state;  // Valid when status.ok().
};

/// Reusable per-caller working state for FindSlotsByBatchedProbe: probe
/// cursors and the per-request 24-byte read views. A caller that batches
/// probes repeatedly (e.g. a coordinator's range reads) holds one of these
/// so steady-state resolution reuses the grown vectors instead of
/// allocating a cursor array and buffer pool per call.
struct BatchedProbeScratch {
  struct Cursor {
    uint64_t probe = 0;
    uint64_t scanned = 0;
    bool done = false;
  };
  std::vector<Cursor> cursors;
  std::vector<std::array<char, 24>> bufs;
};

/// Resolves many keys' slots by linear probing, batching each probe step
/// across all still-unresolved requests into one doorbell — max-RTT rounds
/// instead of per-key sequential probe chains. Per-key results land in
/// `outcomes` (resized to match `requests`); the return value is the first
/// verb-level error, which also fails every still-unresolved request.
/// `rounds` (optional) accumulates the number of round trips spent.
/// `scratch` (optional) supplies reusable working vectors; without it the
/// call allocates its own.
Status FindSlotsByBatchedProbe(const TableLayout& layout,
                               const std::vector<ProbeRequest>& requests,
                               std::vector<ProbeOutcome>* outcomes,
                               uint64_t* rounds = nullptr,
                               BatchedProbeScratch* scratch = nullptr);

}  // namespace store
}  // namespace pandora

#endif  // PANDORA_STORE_REMOTE_OBJECT_H_

#ifndef PANDORA_STORE_TABLE_LAYOUT_H_
#define PANDORA_STORE_TABLE_LAYOUT_H_

#include <cstdint>
#include <string>

#include "common/coding.h"

namespace pandora {
namespace store {

using TableId = uint32_t;

/// Keys are 8-byte integers (§4.1: all three OLTP benchmarks use 8 B keys).
/// kFreeKey marks an unoccupied hash-table slot and is not a legal key.
using Key = uint64_t;
constexpr Key kFreeKey = 0xffffffffffffffffULL;

/// Static description of one table, fixed at load time.
struct TableSpec {
  TableId id = 0;
  std::string name;
  /// Raw value size in bytes; padded to 8 in the slot layout.
  uint32_t value_size = 8;
  /// Hash-table capacity (slots) of this table's region on *each* replica
  /// server. Sized by the loader for a <= 60% load factor.
  uint64_t capacity = 1024;
};

/// Byte layout of a table region: an open-addressing (linear probe) array of
/// fixed-size slots. Each slot is
///
///   [LockWord : 8B][VersionWord : 8B][Key : 8B][value : padded to 8B]
///
/// Slots are 8-byte aligned so the lock word supports RDMA CAS; the lock
/// and version words are adjacent so validation fetches both in one 16-byte
/// read; and a whole slot can be fetched with a single RDMA read.
class TableLayout {
 public:
  TableLayout() = default;
  TableLayout(TableId table, uint32_t value_size, uint64_t capacity)
      : table_(table),
        value_size_(value_size),
        padded_value_size_(AlignUp(value_size, 8)),
        capacity_(capacity) {}

  TableId table() const { return table_; }
  uint32_t value_size() const { return value_size_; }
  uint32_t padded_value_size() const {
    return static_cast<uint32_t>(padded_value_size_);
  }
  uint64_t capacity() const { return capacity_; }

  uint64_t slot_size() const { return 24 + padded_value_size_; }
  uint64_t region_size() const { return slot_size() * capacity_; }

  uint64_t SlotOffset(uint64_t slot) const { return slot * slot_size(); }
  uint64_t LockOffset(uint64_t slot) const { return SlotOffset(slot); }
  uint64_t VersionOffset(uint64_t slot) const { return SlotOffset(slot) + 8; }
  uint64_t KeyOffset(uint64_t slot) const { return SlotOffset(slot) + 16; }
  uint64_t ValueOffset(uint64_t slot) const { return SlotOffset(slot) + 24; }

  /// First slot of the probe sequence for `key`.
  uint64_t HomeSlot(uint64_t key_hash) const { return key_hash % capacity_; }

  uint64_t NextSlot(uint64_t slot) const {
    return slot + 1 == capacity_ ? 0 : slot + 1;
  }

 private:
  TableId table_ = 0;
  uint32_t value_size_ = 0;
  uint64_t padded_value_size_ = 0;
  uint64_t capacity_ = 0;
};

}  // namespace store
}  // namespace pandora

#endif  // PANDORA_STORE_TABLE_LAYOUT_H_

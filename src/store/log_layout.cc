#include "store/log_layout.h"

#include <cstring>

#include "common/checksum.h"
#include "common/coding.h"

namespace pandora {
namespace store {

namespace {

// "PANDORA1" little-endian.
constexpr uint64_t kRecordMagic = 0x3141524f444e4150ULL;
constexpr uint64_t kRecordInvalid = 0;

// Serialized record layout (all fields 8-byte aligned):
//   [0]  magic            (8B)
//   [8]  txn_id           (8B)
//   [16] coord_id (4B) | num_entries (4B)
//   [24] payload_bytes    (8B)  -- bytes of entry payload after checksum
//   [32] checksum         (8B)  -- word-folded FNV-1a over header[8..32) + payload
//   [40] payload: per entry
//        table (4B) | flags (4B) | key (8B) | old_header (8B)
//        | value_bytes (8B) | value (padded to 8B)
constexpr size_t kRecordHeaderBytes = 40;
constexpr size_t kEntryFixedBytes = 32;

constexpr uint32_t kFlagInsert = 1u << 0;
constexpr uint32_t kFlagDelete = 1u << 1;
constexpr uint32_t kFlagLockIntent = 1u << 2;

size_t EntrySerializedSize(const LogEntry& e) {
  return kEntryFixedBytes + AlignUp(e.old_value.size(), 8);
}

}  // namespace

uint64_t InvalidRecordMarker() { return kRecordInvalid; }

size_t LogRecordHeaderBytes() { return kRecordHeaderBytes; }

size_t LogEntrySerializedSize(const LogEntry& entry) {
  return EntrySerializedSize(entry);
}

Status SerializeLogRecord(const LogRecord& record, uint32_t slot_bytes,
                          std::vector<char>* buf) {
  return SerializeLogRecordSpan(record, 0, record.entries.size(),
                                slot_bytes, buf);
}

Status SerializeLogRecordSpan(const LogRecord& record, size_t first,
                              size_t count, uint32_t slot_bytes,
                              std::vector<char>* buf) {
  size_t total = kRecordHeaderBytes;
  for (size_t i = first; i < first + count; ++i) {
    total += EntrySerializedSize(record.entries[i]);
  }
  if (total > slot_bytes) {
    return Status::ResourceExhausted(
        "log record exceeds slot size; raise LogConfig::slot_bytes");
  }
  buf->assign(total, 0);
  char* p = buf->data();
  EncodeFixed64(p + 0, kRecordMagic);
  EncodeFixed64(p + 8, record.txn_id);
  EncodeFixed32(p + 16, record.coord_id);
  EncodeFixed32(p + 20, static_cast<uint32_t>(count));
  EncodeFixed64(p + 24, static_cast<uint64_t>(total - kRecordHeaderBytes));

  char* q = p + kRecordHeaderBytes;
  for (size_t i = first; i < first + count; ++i) {
    const LogEntry& e = record.entries[i];
    uint32_t flags = 0;
    if (e.is_insert) flags |= kFlagInsert;
    if (e.is_delete) flags |= kFlagDelete;
    if (e.is_lock_intent) flags |= kFlagLockIntent;
    EncodeFixed32(q + 0, e.table);
    EncodeFixed32(q + 4, flags);
    EncodeFixed64(q + 8, e.key);
    EncodeFixed64(q + 16, e.old_version);
    EncodeFixed64(q + 24, static_cast<uint64_t>(e.old_value.size()));
    if (!e.old_value.empty()) {
      std::memcpy(q + kEntryFixedBytes, e.old_value.data(),
                  e.old_value.size());
    }
    q += EntrySerializedSize(e);
  }

  // Checksum covers everything except the magic and the checksum itself, so
  // a torn write of any byte is detected.
  const uint64_t checksum =
      Fnv1a64Words(p + 8, 24) ^
      Fnv1a64Words(p + kRecordHeaderBytes, total - kRecordHeaderBytes);
  EncodeFixed64(p + 32, checksum);
  return Status::OK();
}

LogRecordWriter::LogRecordWriter(uint64_t txn_id, uint16_t coord_id,
                                 uint32_t slot_bytes,
                                 std::vector<char>* buf)
    : slot_bytes_(slot_bytes), buf_(buf) {
  buf_->resize(kRecordHeaderBytes);
  char* p = buf_->data();
  EncodeFixed64(p + 0, kRecordMagic);
  EncodeFixed64(p + 8, txn_id);
  EncodeFixed32(p + 16, coord_id);
  // num_entries, payload_bytes and checksum are sealed by Finish().
}

bool LogRecordWriter::AddEntry(TableId table, Key key, uint64_t old_version,
                               bool is_insert, bool is_delete,
                               const void* old_value,
                               size_t old_value_len) {
  const size_t padded_value = AlignUp(old_value_len, 8);
  const size_t entry_bytes = kEntryFixedBytes + padded_value;
  const size_t used = buf_->size();
  if (used + entry_bytes > slot_bytes_) return false;
  buf_->resize(used + entry_bytes);
  char* q = buf_->data() + used;
  uint32_t flags = 0;
  if (is_insert) flags |= kFlagInsert;
  if (is_delete) flags |= kFlagDelete;
  EncodeFixed32(q + 0, table);
  EncodeFixed32(q + 4, flags);
  EncodeFixed64(q + 8, key);
  EncodeFixed64(q + 16, old_version);
  EncodeFixed64(q + 24, static_cast<uint64_t>(old_value_len));
  if (old_value_len > 0) {
    std::memcpy(q + kEntryFixedBytes, old_value, old_value_len);
  }
  if (padded_value > old_value_len) {
    // Zero the alignment padding: it is covered by the checksum.
    std::memset(q + kEntryFixedBytes + old_value_len, 0,
                padded_value - old_value_len);
  }
  ++entries_;
  return true;
}

void LogRecordWriter::Finish() {
  char* p = buf_->data();
  EncodeFixed32(p + 20, static_cast<uint32_t>(entries_));
  const uint64_t payload =
      static_cast<uint64_t>(buf_->size() - kRecordHeaderBytes);
  EncodeFixed64(p + 24, payload);
  const uint64_t checksum =
      Fnv1a64Words(p + 8, 24) ^
      Fnv1a64Words(p + kRecordHeaderBytes, payload);
  EncodeFixed64(p + 32, checksum);
}

Status ParseLogRecord(const char* slot_image, uint32_t slot_bytes,
                      LogRecord* record) {
  if (slot_bytes < kRecordHeaderBytes) {
    return Status::InvalidArgument("slot smaller than record header");
  }
  const uint64_t magic = DecodeFixed64(slot_image);
  if (magic == kRecordInvalid) {
    return Status::NotFound("empty or invalidated log slot");
  }
  if (magic != kRecordMagic) {
    return Status::Corruption("bad log record magic");
  }
  const uint64_t payload_bytes = DecodeFixed64(slot_image + 24);
  if (kRecordHeaderBytes + payload_bytes > slot_bytes) {
    return Status::Corruption("log record payload length out of range");
  }
  const uint64_t expected =
      Fnv1a64Words(slot_image + 8, 24) ^
      Fnv1a64Words(slot_image + kRecordHeaderBytes, payload_bytes);
  if (expected != DecodeFixed64(slot_image + 32)) {
    return Status::Corruption("log record checksum mismatch (torn write)");
  }

  record->txn_id = DecodeFixed64(slot_image + 8);
  record->coord_id = static_cast<uint16_t>(DecodeFixed32(slot_image + 16));
  const uint32_t num_entries = DecodeFixed32(slot_image + 20);
  record->entries.clear();
  record->entries.reserve(num_entries);

  const char* q = slot_image + kRecordHeaderBytes;
  const char* end = q + payload_bytes;
  for (uint32_t i = 0; i < num_entries; ++i) {
    if (q + kEntryFixedBytes > end) {
      return Status::Corruption("log entry truncated");
    }
    LogEntry e;
    e.table = DecodeFixed32(q + 0);
    const uint32_t flags = DecodeFixed32(q + 4);
    e.is_insert = (flags & kFlagInsert) != 0;
    e.is_delete = (flags & kFlagDelete) != 0;
    e.is_lock_intent = (flags & kFlagLockIntent) != 0;
    e.key = DecodeFixed64(q + 8);
    e.old_version = DecodeFixed64(q + 16);
    const uint64_t value_bytes = DecodeFixed64(q + 24);
    if (q + kEntryFixedBytes + value_bytes > end) {
      return Status::Corruption("log entry value truncated");
    }
    e.old_value.assign(q + kEntryFixedBytes,
                       q + kEntryFixedBytes + value_bytes);
    q += kEntryFixedBytes + AlignUp(value_bytes, 8);
    record->entries.push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace store
}  // namespace pandora

#include "store/log_layout.h"

#include <cstring>

#include "common/checksum.h"
#include "common/coding.h"

namespace pandora {
namespace store {

namespace {

// "PANDORA1" little-endian.
constexpr uint64_t kRecordMagic = 0x3141524f444e4150ULL;
constexpr uint64_t kRecordInvalid = 0;

// Serialized record layout (all fields 8-byte aligned):
//   [0]  magic            (8B)
//   [8]  txn_id           (8B)
//   [16] coord_id (4B) | num_entries (4B)
//   [24] payload_bytes    (8B)  -- bytes of entry payload after checksum
//   [32] checksum         (8B)  -- FNV-1a over header[8..32) + payload
//   [40] payload: per entry
//        table (4B) | flags (4B) | key (8B) | old_header (8B)
//        | value_bytes (8B) | value (padded to 8B)
constexpr size_t kRecordHeaderBytes = 40;
constexpr size_t kEntryFixedBytes = 32;

constexpr uint32_t kFlagInsert = 1u << 0;
constexpr uint32_t kFlagDelete = 1u << 1;
constexpr uint32_t kFlagLockIntent = 1u << 2;

size_t EntrySerializedSize(const LogEntry& e) {
  return kEntryFixedBytes + AlignUp(e.old_value.size(), 8);
}

}  // namespace

uint64_t InvalidRecordMarker() { return kRecordInvalid; }

Status SerializeLogRecord(const LogRecord& record, uint32_t slot_bytes,
                          std::vector<char>* buf) {
  size_t total = kRecordHeaderBytes;
  for (const LogEntry& e : record.entries) total += EntrySerializedSize(e);
  if (total > slot_bytes) {
    return Status::ResourceExhausted(
        "log record exceeds slot size; raise LogConfig::slot_bytes");
  }
  buf->assign(total, 0);
  char* p = buf->data();
  EncodeFixed64(p + 0, kRecordMagic);
  EncodeFixed64(p + 8, record.txn_id);
  EncodeFixed32(p + 16, record.coord_id);
  EncodeFixed32(p + 20, static_cast<uint32_t>(record.entries.size()));
  EncodeFixed64(p + 24, static_cast<uint64_t>(total - kRecordHeaderBytes));

  char* q = p + kRecordHeaderBytes;
  for (const LogEntry& e : record.entries) {
    uint32_t flags = 0;
    if (e.is_insert) flags |= kFlagInsert;
    if (e.is_delete) flags |= kFlagDelete;
    if (e.is_lock_intent) flags |= kFlagLockIntent;
    EncodeFixed32(q + 0, e.table);
    EncodeFixed32(q + 4, flags);
    EncodeFixed64(q + 8, e.key);
    EncodeFixed64(q + 16, e.old_version);
    EncodeFixed64(q + 24, static_cast<uint64_t>(e.old_value.size()));
    if (!e.old_value.empty()) {
      std::memcpy(q + kEntryFixedBytes, e.old_value.data(),
                  e.old_value.size());
    }
    q += EntrySerializedSize(e);
  }

  // Checksum covers everything except the magic and the checksum itself, so
  // a torn write of any byte is detected.
  const uint64_t checksum =
      Fnv1a64(p + 8, 24) ^
      Fnv1a64(p + kRecordHeaderBytes, total - kRecordHeaderBytes);
  EncodeFixed64(p + 32, checksum);
  return Status::OK();
}

Status ParseLogRecord(const char* slot_image, uint32_t slot_bytes,
                      LogRecord* record) {
  if (slot_bytes < kRecordHeaderBytes) {
    return Status::InvalidArgument("slot smaller than record header");
  }
  const uint64_t magic = DecodeFixed64(slot_image);
  if (magic == kRecordInvalid) {
    return Status::NotFound("empty or invalidated log slot");
  }
  if (magic != kRecordMagic) {
    return Status::Corruption("bad log record magic");
  }
  const uint64_t payload_bytes = DecodeFixed64(slot_image + 24);
  if (kRecordHeaderBytes + payload_bytes > slot_bytes) {
    return Status::Corruption("log record payload length out of range");
  }
  const uint64_t expected =
      Fnv1a64(slot_image + 8, 24) ^
      Fnv1a64(slot_image + kRecordHeaderBytes, payload_bytes);
  if (expected != DecodeFixed64(slot_image + 32)) {
    return Status::Corruption("log record checksum mismatch (torn write)");
  }

  record->txn_id = DecodeFixed64(slot_image + 8);
  record->coord_id = static_cast<uint16_t>(DecodeFixed32(slot_image + 16));
  const uint32_t num_entries = DecodeFixed32(slot_image + 20);
  record->entries.clear();
  record->entries.reserve(num_entries);

  const char* q = slot_image + kRecordHeaderBytes;
  const char* end = q + payload_bytes;
  for (uint32_t i = 0; i < num_entries; ++i) {
    if (q + kEntryFixedBytes > end) {
      return Status::Corruption("log entry truncated");
    }
    LogEntry e;
    e.table = DecodeFixed32(q + 0);
    const uint32_t flags = DecodeFixed32(q + 4);
    e.is_insert = (flags & kFlagInsert) != 0;
    e.is_delete = (flags & kFlagDelete) != 0;
    e.is_lock_intent = (flags & kFlagLockIntent) != 0;
    e.key = DecodeFixed64(q + 8);
    e.old_version = DecodeFixed64(q + 16);
    const uint64_t value_bytes = DecodeFixed64(q + 24);
    if (q + kEntryFixedBytes + value_bytes > end) {
      return Status::Corruption("log entry value truncated");
    }
    e.old_value.assign(q + kEntryFixedBytes,
                       q + kEntryFixedBytes + value_bytes);
    q += kEntryFixedBytes + AlignUp(value_bytes, 8);
    record->entries.push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace store
}  // namespace pandora

#ifndef PANDORA_STORE_OBJECT_HEADER_H_
#define PANDORA_STORE_OBJECT_HEADER_H_

#include <cstdint>

namespace pandora {
namespace store {

/// Every object slot starts with two adjacent 64-bit words:
///
///   word 0: LOCK word     [63] lock bit | [62..47] owner coordinator-id
///                         | [46..0] zero
///   word 1: VERSION word  [63] tombstone bit | [62..0] version
///
/// Keeping the lock in its own word lets a coordinator lock with a single
/// *unconditional* CAS (0 -> locked(owner)) without knowing the current
/// version — exactly FORD's eager-lock scheme (§2.3). Keeping the version
/// word adjacent lets validation fetch lock + version with one 16-byte RDMA
/// read, which is what makes the Covert Locks fix free (§5.1: "the lock and
/// version for each object in FORD's KVS are stored together").
///
/// PILL (§3.1.2) is the 16-bit owner id embedded in the lock word: when a
/// lock CAS fails, the returned word names the owner, and a check against
/// the failed-ids bitset tells the coordinator whether the lock is stray
/// (stealable with one more CAS) or live (conflict).
using LockWord = uint64_t;
using VersionWord = uint64_t;

/// Number of distinct coordinator-ids over the lifetime of the system
/// (16-bit ids, §3.1.2).
constexpr uint32_t kMaxCoordinatorIds = 65536;

// ------------------------------------------------------------- Lock word --

constexpr uint64_t kLockBit = 1ULL << 63;
constexpr int kLockOwnerShift = 47;
constexpr LockWord kUnlocked = 0;

inline constexpr LockWord MakeLock(uint16_t owner) {
  return kLockBit | (static_cast<uint64_t>(owner) << kLockOwnerShift);
}

inline constexpr bool LockHeld(LockWord w) { return (w & kLockBit) != 0; }

inline constexpr uint16_t LockOwner(LockWord w) {
  return static_cast<uint16_t>((w >> kLockOwnerShift) & 0xffff);
}

// ---------------------------------------------------------- Version word --

constexpr uint64_t kTombstoneBit = 1ULL << 63;
constexpr uint64_t kVersionMask = kTombstoneBit - 1;

inline constexpr VersionWord MakeVersion(uint64_t version, bool tombstone) {
  return (tombstone ? kTombstoneBit : 0) | (version & kVersionMask);
}

inline constexpr uint64_t VersionOf(VersionWord w) {
  return w & kVersionMask;
}

inline constexpr bool VersionTombstone(VersionWord w) {
  return (w & kTombstoneBit) != 0;
}

/// Version word after a committed update: version bumped by one.
inline constexpr VersionWord BumpVersion(VersionWord old_word,
                                         bool tombstone) {
  return MakeVersion(VersionOf(old_word) + 1, tombstone);
}

/// True if the object is visible to reads: committed at least once (version
/// 0 means a slot claimed by an in-flight insert) and not deleted.
inline constexpr bool ObjectVisible(VersionWord w) {
  return VersionOf(w) != 0 && !VersionTombstone(w);
}

}  // namespace store
}  // namespace pandora

#endif  // PANDORA_STORE_OBJECT_HEADER_H_

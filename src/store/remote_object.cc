#include "store/remote_object.h"

#include <array>

#include "common/checksum.h"
#include "common/coding.h"

namespace pandora {
namespace store {

namespace {

// One probe step's view: lock, version, key.
struct ProbeView {
  LockWord lock;
  VersionWord version;
  Key key;
};

Status ReadProbeView(rdma::QueuePair* qp, rdma::RKey rkey,
                     const TableLayout& layout, uint64_t slot,
                     ProbeView* view, uint64_t* rtts) {
  alignas(8) char buf[24];
  if (rtts != nullptr) ++*rtts;
  PANDORA_RETURN_NOT_OK(
      qp->Read(rkey, layout.LockOffset(slot), buf, sizeof(buf)));
  view->lock = DecodeFixed64(buf);
  view->version = DecodeFixed64(buf + 8);
  view->key = DecodeFixed64(buf + 16);
  return Status::OK();
}

}  // namespace

Status FindSlotByProbe(rdma::QueuePair* qp, rdma::RKey rkey,
                       const TableLayout& layout, Key key, SlotState* state,
                       uint64_t* rtts) {
  uint64_t probe = layout.HomeSlot(HashKey(key));
  for (uint64_t scanned = 0; scanned < layout.capacity(); ++scanned) {
    ProbeView view;
    PANDORA_RETURN_NOT_OK(
        ReadProbeView(qp, rkey, layout, probe, &view, rtts));
    if (view.key == key) {
      state->slot = probe;
      state->lock = view.lock;
      state->version = view.version;
      return Status::OK();
    }
    if (view.key == kFreeKey) {
      return Status::NotFound("key absent");
    }
    probe = layout.NextSlot(probe);
  }
  return Status::ResourceExhausted("probed entire region");
}

Status FindOrClaimSlot(rdma::QueuePair* qp, rdma::RKey rkey,
                       const TableLayout& layout, Key key, SlotState* state,
                       bool* existed, uint64_t* rtts) {
  uint64_t probe = layout.HomeSlot(HashKey(key));
  for (uint64_t scanned = 0; scanned < layout.capacity(); ++scanned) {
    ProbeView view;
    PANDORA_RETURN_NOT_OK(
        ReadProbeView(qp, rkey, layout, probe, &view, rtts));
    if (view.key == key) {
      state->slot = probe;
      state->lock = view.lock;
      state->version = view.version;
      *existed = true;
      return Status::OK();
    }
    if (view.key == kFreeKey) {
      uint64_t observed = 0;
      if (rtts != nullptr) ++*rtts;
      PANDORA_RETURN_NOT_OK(qp->CompareSwap(rkey, layout.KeyOffset(probe),
                                            kFreeKey, key, &observed));
      if (observed == kFreeKey || observed == key) {
        // Claimed by us, or concurrently claimed for the same key.
        state->slot = probe;
        state->lock = view.lock;
        state->version = view.version;
        *existed = (observed == key);
        return Status::OK();
      }
      // Claimed for a different key; keep probing past it.
    }
    probe = layout.NextSlot(probe);
  }
  return Status::ResourceExhausted("probed entire region");
}

void PostSlotRead(rdma::VerbBatch* batch, rdma::QueuePair* qp,
                  rdma::RKey rkey, const TableLayout& layout, uint64_t slot,
                  char* buf) {
  batch->Read(qp, rkey, layout.LockOffset(slot), buf,
              SlotReadSize(layout));
}

SlotReadView DecodeSlotRead(const char* buf) {
  SlotReadView view;
  view.lock = DecodeFixed64(buf);
  view.version = DecodeFixed64(buf + 8);
  view.key = DecodeFixed64(buf + 16);
  view.value = buf + 24;
  return view;
}

Status FindSlotsByBatchedProbe(const TableLayout& layout,
                               const std::vector<ProbeRequest>& requests,
                               std::vector<ProbeOutcome>* outcomes,
                               uint64_t* rounds,
                               BatchedProbeScratch* scratch) {
  outcomes->assign(requests.size(), ProbeOutcome{});

  // Working state lives in the caller's scratch when provided (repeated
  // callers reuse the grown vectors), else in a local one.
  BatchedProbeScratch local;
  if (scratch == nullptr) scratch = &local;
  std::vector<BatchedProbeScratch::Cursor>& cursors = scratch->cursors;
  cursors.assign(requests.size(), BatchedProbeScratch::Cursor{});
  for (size_t i = 0; i < requests.size(); ++i) {
    cursors[i].probe = layout.HomeSlot(HashKey(requests[i].key));
  }

  // 24-byte {lock, version, key} views, one per request, reused per round.
  std::vector<std::array<char, 24>>& bufs = scratch->bufs;
  if (bufs.size() < requests.size()) bufs.resize(requests.size());
  rdma::VerbBatch batch;

  size_t unresolved = requests.size();
  while (unresolved > 0) {
    for (size_t i = 0; i < requests.size(); ++i) {
      if (cursors[i].done) continue;
      batch.Read(requests[i].qp, requests[i].rkey,
                 layout.LockOffset(cursors[i].probe), bufs[i].data(), 24);
    }
    if (rounds != nullptr) ++*rounds;
    const Status status = batch.Execute();
    if (!status.ok()) {
      // VerbBatch reports the first error only; a dead server or halted
      // compute node fails the whole round. Callers fall back to the
      // sequential per-key path, which has the retry machinery.
      for (size_t i = 0; i < requests.size(); ++i) {
        if (!cursors[i].done) (*outcomes)[i].status = status;
      }
      return status;
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      BatchedProbeScratch::Cursor& cursor = cursors[i];
      if (cursor.done) continue;
      const Key key = DecodeFixed64(bufs[i].data() + 16);
      if (key == requests[i].key) {
        (*outcomes)[i].status = Status::OK();
        (*outcomes)[i].state.slot = cursor.probe;
        (*outcomes)[i].state.lock = DecodeFixed64(bufs[i].data());
        (*outcomes)[i].state.version = DecodeFixed64(bufs[i].data() + 8);
        cursor.done = true;
        --unresolved;
      } else if (key == kFreeKey) {
        (*outcomes)[i].status = Status::NotFound("key absent");
        cursor.done = true;
        --unresolved;
      } else if (++cursor.scanned >= layout.capacity()) {
        (*outcomes)[i].status =
            Status::ResourceExhausted("probed entire region");
        cursor.done = true;
        --unresolved;
      } else {
        cursor.probe = layout.NextSlot(cursor.probe);
      }
    }
  }
  return Status::OK();
}

}  // namespace store
}  // namespace pandora

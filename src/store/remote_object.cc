#include "store/remote_object.h"

#include "common/checksum.h"
#include "common/coding.h"

namespace pandora {
namespace store {

namespace {

// One probe step's view: lock, version, key.
struct ProbeView {
  LockWord lock;
  VersionWord version;
  Key key;
};

Status ReadProbeView(rdma::QueuePair* qp, rdma::RKey rkey,
                     const TableLayout& layout, uint64_t slot,
                     ProbeView* view) {
  alignas(8) char buf[24];
  PANDORA_RETURN_NOT_OK(
      qp->Read(rkey, layout.LockOffset(slot), buf, sizeof(buf)));
  view->lock = DecodeFixed64(buf);
  view->version = DecodeFixed64(buf + 8);
  view->key = DecodeFixed64(buf + 16);
  return Status::OK();
}

}  // namespace

Status FindSlotByProbe(rdma::QueuePair* qp, rdma::RKey rkey,
                       const TableLayout& layout, Key key,
                       SlotState* state) {
  uint64_t probe = layout.HomeSlot(HashKey(key));
  for (uint64_t scanned = 0; scanned < layout.capacity(); ++scanned) {
    ProbeView view;
    PANDORA_RETURN_NOT_OK(ReadProbeView(qp, rkey, layout, probe, &view));
    if (view.key == key) {
      state->slot = probe;
      state->lock = view.lock;
      state->version = view.version;
      return Status::OK();
    }
    if (view.key == kFreeKey) {
      return Status::NotFound("key absent");
    }
    probe = layout.NextSlot(probe);
  }
  return Status::ResourceExhausted("probed entire region");
}

Status FindOrClaimSlot(rdma::QueuePair* qp, rdma::RKey rkey,
                       const TableLayout& layout, Key key, SlotState* state,
                       bool* existed) {
  uint64_t probe = layout.HomeSlot(HashKey(key));
  for (uint64_t scanned = 0; scanned < layout.capacity(); ++scanned) {
    ProbeView view;
    PANDORA_RETURN_NOT_OK(ReadProbeView(qp, rkey, layout, probe, &view));
    if (view.key == key) {
      state->slot = probe;
      state->lock = view.lock;
      state->version = view.version;
      *existed = true;
      return Status::OK();
    }
    if (view.key == kFreeKey) {
      uint64_t observed = 0;
      PANDORA_RETURN_NOT_OK(qp->CompareSwap(rkey, layout.KeyOffset(probe),
                                            kFreeKey, key, &observed));
      if (observed == kFreeKey || observed == key) {
        // Claimed by us, or concurrently claimed for the same key.
        state->slot = probe;
        state->lock = view.lock;
        state->version = view.version;
        *existed = (observed == key);
        return Status::OK();
      }
      // Claimed for a different key; keep probing past it.
    }
    probe = layout.NextSlot(probe);
  }
  return Status::ResourceExhausted("probed entire region");
}

}  // namespace store
}  // namespace pandora

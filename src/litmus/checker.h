#ifndef PANDORA_LITMUS_CHECKER_H_
#define PANDORA_LITMUS_CHECKER_H_

#include <optional>
#include <string>
#include <vector>

#include "litmus/litmus_spec.h"

namespace pandora {
namespace litmus {

/// What the harness learned about one executed litmus transaction.
struct TxnObservation {
  enum class Outcome {
    kCommitted,  // commit-ack received
    kAborted,    // abort-ack received (no effects)
    kUnknown,    // coordinator crashed before any ack: effects may or may
                 // not survive, depending on the recovery decision
  };

  Outcome outcome = Outcome::kAborted;
  /// Values returned by the transaction's kLoad ops, in program order
  /// (std::nullopt = key absent). Only trusted for committed txns.
  std::vector<std::optional<uint64_t>> reads;
};

/// Value of every litmus variable (std::nullopt = absent/deleted).
using VarState = std::vector<std::optional<uint64_t>>;

/// Application-observable-state serializability checker (after Crooks et
/// al. [19], as adopted by the paper's litmus framework §5).
///
/// A run is accepted iff there exists (a) a subset S of transactions that
/// contains every committed transaction, no aborted transaction, and any
/// subset of the unknown (crashed) ones, and (b) a serial order of S under
/// which every committed transaction's observed reads match the model
/// state at its position and the model's final state equals the observed
/// final state. With <= 5 short transactions the exhaustive search is
/// trivial; violations come with a human-readable explanation.
class SerializabilityChecker {
 public:
  explicit SerializabilityChecker(const LitmusSpec& spec) : spec_(spec) {}

  /// Returns true if the observed run is serializable. On failure,
  /// `explanation` describes the observation that no serial order covers.
  bool Check(const std::vector<TxnObservation>& observations,
             const VarState& final_state, std::string* explanation) const;

 private:
  // Applies `txn` to `state` in the model. Returns false (and stops) if a
  // committed txn's observed read contradicts the model state.
  bool ApplyTxn(const LitmusTxn& txn, const TxnObservation& observation,
                bool check_reads, VarState* state) const;

  const LitmusSpec& spec_;
};

/// Renders a VarState like "{X=1, Y=absent}" for reports.
std::string FormatVarState(const VarState& state);

}  // namespace litmus
}  // namespace pandora

#endif  // PANDORA_LITMUS_CHECKER_H_

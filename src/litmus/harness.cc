#include "litmus/harness.h"

#include <atomic>
#include <thread>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/checksum.h"
#include "common/coding.h"
#include "common/logging.h"
#include "common/random.h"
#include "txn/coordinator.h"

namespace pandora {
namespace litmus {

namespace {

// Keys per iteration (upper bound on litmus variables).
constexpr uint64_t kVarStride = 16;

store::Key VarKey(int iteration, Var var) {
  return static_cast<store::Key>(iteration) * kVarStride + var;
}

// Hook that never fires. Installed on every coordinator so the protocols
// run their litmus-grade sequential (per-replica) apply/unlock paths,
// maximizing the interleavings a litmus test can observe.
class NeverCrash : public txn::CrashHook {
 public:
  bool MaybeCrash(txn::CrashPoint) override { return false; }
};

// Crash hook firing at the Nth protocol crash point the coordinator hits.
class CrashAtOccurrence : public txn::CrashHook {
 public:
  explicit CrashAtOccurrence(int occurrence) : remaining_(occurrence) {}

  bool MaybeCrash(txn::CrashPoint point) override {
    return --remaining_ == 0;
  }

  bool fired() const { return remaining_ <= 0; }

 private:
  std::atomic<int> remaining_;
};

// Executes one litmus program on a coordinator; fills the observation.
void ExecuteProgram(txn::Coordinator* coord, const LitmusTxn& program,
                    int iteration, store::TableId table,
                    TxnObservation* out) {
  // Outcome is keyed off the client acks (Cor3), not local return codes.
  std::atomic<int> ack{-1};  // -1 none, 0 abort-ack, 1 commit-ack
  coord->set_ack_callback([&ack](uint64_t, bool committed) {
    ack.store(committed ? 1 : 0, std::memory_order_release);
  });

  out->reads.clear();
  Status status = coord->Begin();
  if (!status.ok()) {
    // Never started: no effects are possible.
    out->outcome = TxnObservation::Outcome::kAborted;
    return;
  }
  for (size_t i = 0; status.ok() && i < program.ops.size(); ++i) {
    const LitmusOp& op = program.ops[i];
    char buf[8];
    switch (op.kind) {
      case LitmusOp::Kind::kLoad: {
        std::string value;
        status = coord->Read(table, VarKey(iteration, op.src), &value);
        if (status.ok()) {
          out->reads.push_back(DecodeFixed64(value.data()));
        } else if (status.IsNotFound()) {
          out->reads.push_back(std::nullopt);
          status = Status::OK();
        }
        break;
      }
      case LitmusOp::Kind::kStoreConst:
        EncodeFixed64(buf, op.value);
        status = coord->Write(table, VarKey(iteration, op.dst),
                              Slice(buf, 8));
        break;
      case LitmusOp::Kind::kStoreRegPlus: {
        // Registers live in the reads vector via the preceding kLoad ops;
        // recompute from the recorded loads.
        uint64_t reg_value = 0;
        size_t seen = 0;
        for (size_t j = 0; j < i; ++j) {
          if (program.ops[j].kind != LitmusOp::Kind::kLoad) continue;
          if (program.ops[j].reg == op.reg) {
            reg_value = out->reads[seen].value_or(0);
          }
          ++seen;
        }
        EncodeFixed64(buf, reg_value + op.value);
        status = coord->Write(table, VarKey(iteration, op.dst),
                              Slice(buf, 8));
        break;
      }
      case LitmusOp::Kind::kInsertConst:
        EncodeFixed64(buf, op.value);
        status = coord->Insert(table, VarKey(iteration, op.dst),
                               Slice(buf, 8));
        break;
      case LitmusOp::Kind::kDelete:
        status = coord->Delete(table, VarKey(iteration, op.dst));
        if (status.IsNotFound()) status = Status::OK();
        break;
    }
  }
  if (status.ok()) {
    status = coord->Commit();
  } else if (coord->in_txn() && !status.IsUnavailable()) {
    coord->Abort();
  }

  switch (ack.load(std::memory_order_acquire)) {
    case 1:
      out->outcome = TxnObservation::Outcome::kCommitted;
      break;
    case 0:
      out->outcome = TxnObservation::Outcome::kAborted;
      break;
    default:
      // No ack: either a crash (unknown) or an abort that crashed before
      // notifying. Both are "unknown" to the client.
      out->outcome = TxnObservation::Outcome::kUnknown;
      break;
  }
}

// Memory-level audit run after each iteration has quiesced: every alive
// replica of every litmus variable must agree on visibility, version and
// value, and no lock may be held except stray locks of failed
// coordinators. Replica divergence is how double-lock-holder bugs (e.g.
// Complicit Aborts) manifest even when the final primary values look
// plausible.
bool AuditReplicas(cluster::Cluster* cluster, store::TableId table,
                   int iteration, size_t num_vars,
                   const FailedIdBitset& failed_ids, std::string* error) {
  const cluster::TableInfo& info = cluster->catalog().table(table);
  for (Var v = 0; v < num_vars; ++v) {
    const store::Key key = VarKey(iteration, v);
    bool have_reference = false;
    bool ref_visible = false;
    uint64_t ref_version = 0;
    uint64_t ref_value = 0;
    for (const rdma::NodeId node : cluster->ReplicasFor(table, key)) {
      if (!cluster->membership().IsMemoryAlive(node)) continue;
      rdma::ProtectionDomain* pd = cluster->fabric().GetMemoryNode(node);
      rdma::MemoryRegion* region = pd->GetRegion(info.region_rkeys[node]);
      // Locate the key (control-path scan; this is the checker, not the
      // protocol).
      bool found = false;
      uint64_t slot = info.layout.HomeSlot(HashKey(key));
      for (uint64_t scanned = 0; scanned < info.layout.capacity();
           ++scanned) {
        const uint64_t slot_key =
            DecodeFixed64(region->base() + info.layout.KeyOffset(slot));
        if (slot_key == key) {
          found = true;
          break;
        }
        if (slot_key == store::kFreeKey) break;
        slot = info.layout.NextSlot(slot);
      }
      bool visible = false;
      uint64_t version = 0;
      uint64_t value = 0;
      if (found) {
        const store::LockWord lock =
            DecodeFixed64(region->base() + info.layout.LockOffset(slot));
        const store::VersionWord vw =
            DecodeFixed64(region->base() + info.layout.VersionOffset(slot));
        if (store::LockHeld(lock) &&
            !failed_ids.Test(store::LockOwner(lock))) {
          *error = "audit: var " + std::to_string(v) + " on node " +
                   std::to_string(node) + " locked by live coordinator " +
                   std::to_string(store::LockOwner(lock)) +
                   " after quiescence";
          return false;
        }
        visible = store::ObjectVisible(vw);
        version = store::VersionOf(vw);
        value =
            DecodeFixed64(region->base() + info.layout.ValueOffset(slot));
      }
      if (!visible) version = value = 0;  // Absent/invisible normalize.
      if (!have_reference) {
        have_reference = true;
        ref_visible = visible;
        ref_version = version;
        ref_value = value;
      } else if (visible != ref_visible || version != ref_version ||
                 value != ref_value) {
        *error = "audit: var " + std::to_string(v) +
                 " replicas diverge (visible " +
                 std::to_string(ref_visible) + "/" +
                 std::to_string(visible) + ", version " +
                 std::to_string(ref_version) + "/" +
                 std::to_string(version) + ", value " +
                 std::to_string(ref_value) + "/" + std::to_string(value) +
                 ")";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

LitmusReport LitmusHarness::Run(const LitmusSpec& spec) {
  LitmusReport report;
  report.spec_name = spec.name;

  const uint32_t num_txns = static_cast<uint32_t>(spec.txns.size());
  const uint32_t compute_nodes = num_txns + 1;  // +1 observer node

  cluster::ClusterConfig cluster_config;
  cluster_config.memory_nodes = config_.memory_nodes;
  cluster_config.compute_nodes = compute_nodes;
  cluster_config.replication = config_.replication;
  cluster_config.net = config_.net;
  cluster_config.log.slot_bytes = 512;
  cluster_config.log.slots_per_coordinator = 8;
  cluster_config.log.max_coordinators = static_cast<uint32_t>(
      (config_.iterations + 2) * compute_nodes + 16);

  cluster::Cluster cluster(cluster_config);
  const store::TableId table = cluster.CreateTable(
      "litmus", /*value_size=*/8,
      static_cast<uint64_t>(config_.iterations + 1) * kVarStride);

  // Preload every iteration's copy of the initialized variables.
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    for (Var v = 0; v < spec.initial.size(); ++v) {
      if (!spec.initial[v].has_value()) continue;
      char buf[8];
      EncodeFixed64(buf, *spec.initial[v]);
      PANDORA_CHECK(
          cluster.LoadRow(table, VarKey(iteration, v), Slice(buf, 8)).ok());
    }
  }

  txn::SystemGate gate;
  recovery::RecoveryManagerConfig rm_config;
  rm_config.mode = config_.txn.mode;
  rm_config.fd = config_.fd;
  recovery::RecoveryManager manager(&cluster, rm_config, &gate);
  manager.Start();

  Random rng(config_.seed);

  // The checker sees one logical transaction per *run*: expand the spec.
  const int runs = std::max(1, config_.runs_per_txn);
  LitmusSpec expanded = spec;
  expanded.txns.clear();
  for (int r = 0; r < runs; ++r) {
    for (const LitmusTxn& txn : spec.txns) {
      LitmusTxn copy = txn;
      copy.name = txn.name + "#" + std::to_string(r + 1);
      expanded.txns.push_back(std::move(copy));
    }
  }
  const SerializabilityChecker checker(expanded);

  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    // Fresh coordinators (fresh ids) per iteration; txn i runs on compute
    // node i, the observer on the last node.
    std::vector<std::unique_ptr<txn::Coordinator>> coords;
    NeverCrash no_crash;
    for (uint32_t t = 0; t < num_txns; ++t) {
      std::vector<uint16_t> ids;
      PANDORA_CHECK(
          manager.RegisterComputeNode(cluster.compute(t), 1, &ids).ok());
      coords.push_back(std::make_unique<txn::Coordinator>(
          &cluster, cluster.compute(t), ids[0], config_.txn, &gate));
      coords.back()->set_crash_hook(&no_crash);
    }

    // Crash plan.
    int victim = -1;
    uint64_t recoveries_before = 0;
    std::unique_ptr<CrashAtOccurrence> hook;
    if (config_.crash_percent > 0 &&
        rng.PercentTrue(config_.crash_percent)) {
      victim = static_cast<int>(rng.Uniform(num_txns));
      recoveries_before =
          manager.recovery_count(cluster.compute_node_id(victim));
      hook = std::make_unique<CrashAtOccurrence>(
          static_cast<int>(1 + rng.Uniform(14)));
      coords[victim]->set_crash_hook(hook.get());
    }

    // Run the spec's transactions concurrently; each thread repeats its
    // program `runs` times. Observation order matches the expanded spec:
    // run-major (run r of txn t sits at index r * num_txns + t).
    std::vector<TxnObservation> observations(
        static_cast<size_t>(runs) * num_txns);
    std::vector<std::thread> threads;
    std::atomic<bool> go{false};
    for (uint32_t t = 0; t < num_txns; ++t) {
      threads.emplace_back([&, t] {
        // Start barrier: release every transaction at once so short
        // programs actually overlap (racy interleavings are the whole
        // point of a litmus test).
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        for (int r = 0; r < runs; ++r) {
          ExecuteProgram(coords[t].get(), spec.txns[t], iteration, table,
                         &observations[static_cast<size_t>(r) * num_txns +
                                       t]);
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();

    const bool crashed =
        victim >= 0 &&
        cluster.fabric().IsHalted(cluster.compute_node_id(victim));
    if (crashed) {
      report.crashes_injected++;
      if (!manager.WaitForComputeRecovery(cluster.compute_node_id(victim),
                                          5'000'000, recoveries_before)) {
        report.violations++;
        report.failures.push_back("iteration " +
                                  std::to_string(iteration) +
                                  ": recovery never completed");
        cluster.RestartComputeNode(cluster.compute_node_id(victim));
        continue;
      }
    }

    // Observe the final application state from the observer node.
    VarState final_state(spec.initial.size());
    bool observed = false;
    std::vector<uint16_t> observer_ids;
    PANDORA_CHECK(manager
                      .RegisterComputeNode(
                          cluster.compute(compute_nodes - 1), 1,
                          &observer_ids)
                      .ok());
    txn::Coordinator reader(&cluster, cluster.compute(compute_nodes - 1),
                            observer_ids[0], config_.txn, &gate);
    std::string observe_error;
    for (int attempt = 0; attempt < 10 && !observed; ++attempt) {
      const Status begin_status = reader.Begin();
      if (!begin_status.ok()) {
        if (observe_error.empty()) {
          observe_error = "begin: " + begin_status.ToString();
        }
        SleepForMicros(200);
        continue;
      }
      bool ok = true;
      for (Var v = 0; v < spec.initial.size() && ok; ++v) {
        std::string value;
        const Status status = reader.Read(table, VarKey(iteration, v),
                                          &value);
        if (status.ok()) {
          final_state[v] = DecodeFixed64(value.data());
        } else if (status.IsNotFound()) {
          final_state[v] = std::nullopt;
        } else {
          if (observe_error.empty()) {
            observe_error = "read var " + std::to_string(v) + ": " +
                            status.ToString();
          }
          ok = false;
        }
      }
      if (ok) {
        const Status commit_status = reader.Commit();
        if (commit_status.ok()) {
          observed = true;
        } else if (observe_error.empty()) {
          observe_error = "commit: " + commit_status.ToString();
        }
      }
      if (!observed && reader.in_txn()) reader.Abort();
      SleepForMicros(200);
    }

    if (!observed) {
      if (observe_error.find("PermissionDenied") != std::string::npos) {
        // The observer was repeatedly fenced (false positives under CPU
        // pressure); no verdict about the protocol is possible.
        report.inconclusive++;
      } else {
        report.violations++;
        if (report.failures.size() < 10) {
          report.failures.push_back(
              "iteration " + std::to_string(iteration) +
              ": final state unreadable (" + observe_error + ")");
        }
      }
    } else {
      std::string explanation;
      if (!checker.Check(observations, final_state, &explanation)) {
        report.violations++;
        if (report.failures.size() < 10) {
          report.failures.push_back("iteration " +
                                    std::to_string(iteration) + ": " +
                                    explanation);
        }
      }
    }

    for (const TxnObservation& obs : observations) {
      switch (obs.outcome) {
        case TxnObservation::Outcome::kCommitted:
          report.committed++;
          break;
        case TxnObservation::Outcome::kAborted:
          report.aborted++;
          break;
        case TxnObservation::Outcome::kUnknown:
          report.unknown++;
          break;
      }
    }

    // End of iteration: wait for any in-flight (possibly false-positive)
    // recoveries, then restore every compute node's links so the next
    // iteration starts from a healthy membership. Restoring only after
    // recoveries completed preserves Cor1.
    {
      const uint64_t deadline = NowMicros() + 5'000'000;
      while (manager.pending_recoveries() > 0 && NowMicros() < deadline) {
        SleepForMicros(200);
      }
    }
    for (uint32_t n = 0; n < compute_nodes; ++n) {
      cluster.RestartComputeNode(cluster.compute_node_id(n));
    }

    // Memory-level invariants: replicas must agree, locks must be free or
    // stray.
    std::string audit_error;
    if (!AuditReplicas(&cluster, table, iteration, spec.initial.size(),
                       manager.fd().failed_ids(), &audit_error)) {
      report.violations++;
      if (report.failures.size() < 10) {
        report.failures.push_back("iteration " + std::to_string(iteration) +
                                  ": " + audit_error);
      }
    }
    report.iterations++;
  }

  manager.Stop();
  return report;
}

std::vector<LitmusReport> LitmusHarness::RunAll() {
  std::vector<LitmusReport> reports;
  for (const LitmusSpec& spec : AllLitmusSpecs()) {
    reports.push_back(Run(spec));
  }
  return reports;
}

}  // namespace litmus
}  // namespace pandora

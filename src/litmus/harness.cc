#include "litmus/harness.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/checksum.h"
#include "common/coding.h"
#include "common/logging.h"
#include "common/random.h"
#include "txn/coordinator.h"

namespace pandora {
namespace litmus {

namespace {

// Keys per iteration (upper bound on litmus variables).
constexpr uint64_t kVarStride = 16;

store::Key VarKey(int iteration, Var var) {
  return static_cast<store::Key>(iteration) * kVarStride + var;
}

// Executes one litmus program on a coordinator; fills the observation.
void ExecuteProgram(txn::Coordinator* coord, const LitmusTxn& program,
                    int iteration, store::TableId table,
                    TxnObservation* out) {
  // Outcome is keyed off the client acks (Cor3), not local return codes.
  std::atomic<int> ack{-1};  // -1 none, 0 abort-ack, 1 commit-ack
  coord->set_ack_callback([&ack](uint64_t, bool committed) {
    ack.store(committed ? 1 : 0, std::memory_order_release);
  });

  out->reads.clear();
  Status status = coord->Begin();
  if (!status.ok()) {
    // Never started: no effects are possible.
    out->outcome = TxnObservation::Outcome::kAborted;
    return;
  }
  for (size_t i = 0; status.ok() && i < program.ops.size(); ++i) {
    const LitmusOp& op = program.ops[i];
    char buf[8];
    switch (op.kind) {
      case LitmusOp::Kind::kLoad: {
        std::string value;
        status = coord->Read(table, VarKey(iteration, op.src), &value);
        if (status.ok()) {
          out->reads.push_back(DecodeFixed64(value.data()));
        } else if (status.IsNotFound()) {
          out->reads.push_back(std::nullopt);
          status = Status::OK();
        }
        break;
      }
      case LitmusOp::Kind::kStoreConst:
        EncodeFixed64(buf, op.value);
        status = coord->Write(table, VarKey(iteration, op.dst),
                              Slice(buf, 8));
        break;
      case LitmusOp::Kind::kStoreRegPlus: {
        // Registers live in the reads vector via the preceding kLoad ops;
        // recompute from the recorded loads.
        uint64_t reg_value = 0;
        size_t seen = 0;
        for (size_t j = 0; j < i; ++j) {
          if (program.ops[j].kind != LitmusOp::Kind::kLoad) continue;
          if (program.ops[j].reg == op.reg) {
            reg_value = out->reads[seen].value_or(0);
          }
          ++seen;
        }
        EncodeFixed64(buf, reg_value + op.value);
        status = coord->Write(table, VarKey(iteration, op.dst),
                              Slice(buf, 8));
        break;
      }
      case LitmusOp::Kind::kInsertConst:
        EncodeFixed64(buf, op.value);
        status = coord->Insert(table, VarKey(iteration, op.dst),
                               Slice(buf, 8));
        break;
      case LitmusOp::Kind::kDelete:
        status = coord->Delete(table, VarKey(iteration, op.dst));
        if (status.IsNotFound()) status = Status::OK();
        break;
    }
  }
  if (status.ok()) {
    status = coord->Commit();
  } else if (coord->in_txn() && !status.IsUnavailable()) {
    coord->Abort();
  }

  switch (ack.load(std::memory_order_acquire)) {
    case 1:
      out->outcome = TxnObservation::Outcome::kCommitted;
      break;
    case 0:
      out->outcome = TxnObservation::Outcome::kAborted;
      break;
    default:
      // No ack: either a crash (unknown) or an abort that crashed before
      // notifying. Both are "unknown" to the client.
      out->outcome = TxnObservation::Outcome::kUnknown;
      break;
  }
}

// Memory-level audit run after each iteration has quiesced: every alive
// replica of every litmus variable must agree on visibility, version and
// value, and no lock may be held except stray locks of failed
// coordinators. Replica divergence is how double-lock-holder bugs (e.g.
// Complicit Aborts) manifest even when the final primary values look
// plausible.
bool AuditReplicas(cluster::Cluster* cluster, store::TableId table,
                   int iteration, size_t num_vars,
                   const FailedIdBitset& failed_ids, std::string* error) {
  const cluster::TableInfo& info = cluster->catalog().table(table);
  for (Var v = 0; v < num_vars; ++v) {
    const store::Key key = VarKey(iteration, v);
    bool have_reference = false;
    bool ref_visible = false;
    uint64_t ref_version = 0;
    uint64_t ref_value = 0;
    for (const rdma::NodeId node : cluster->ReplicaSetFor(table, key)) {
      if (!cluster->membership().IsMemoryAlive(node)) continue;
      rdma::ProtectionDomain* pd = cluster->fabric().GetMemoryNode(node);
      rdma::MemoryRegion* region = pd->GetRegion(info.region_rkeys[node]);
      // Locate the key (control-path scan; this is the checker, not the
      // protocol).
      bool found = false;
      uint64_t slot = info.layout.HomeSlot(HashKey(key));
      for (uint64_t scanned = 0; scanned < info.layout.capacity();
           ++scanned) {
        const uint64_t slot_key =
            DecodeFixed64(region->base() + info.layout.KeyOffset(slot));
        if (slot_key == key) {
          found = true;
          break;
        }
        if (slot_key == store::kFreeKey) break;
        slot = info.layout.NextSlot(slot);
      }
      bool visible = false;
      uint64_t version = 0;
      uint64_t value = 0;
      if (found) {
        const store::LockWord lock =
            DecodeFixed64(region->base() + info.layout.LockOffset(slot));
        const store::VersionWord vw =
            DecodeFixed64(region->base() + info.layout.VersionOffset(slot));
        if (store::LockHeld(lock) &&
            !failed_ids.Test(store::LockOwner(lock))) {
          *error = "audit: var " + std::to_string(v) + " on node " +
                   std::to_string(node) + " locked by live coordinator " +
                   std::to_string(store::LockOwner(lock)) +
                   " after quiescence";
          return false;
        }
        visible = store::ObjectVisible(vw);
        version = store::VersionOf(vw);
        value =
            DecodeFixed64(region->base() + info.layout.ValueOffset(slot));
      }
      if (!visible) version = value = 0;  // Absent/invisible normalize.
      if (!have_reference) {
        have_reference = true;
        ref_visible = visible;
        ref_version = version;
        ref_value = value;
      } else if (visible != ref_visible || version != ref_version ||
                 value != ref_value) {
        *error = "audit: var " + std::to_string(v) +
                 " replicas diverge (visible " +
                 std::to_string(ref_visible) + "/" +
                 std::to_string(visible) + ", version " +
                 std::to_string(ref_version) + "/" +
                 std::to_string(version) + ", value " +
                 std::to_string(ref_value) + "/" + std::to_string(value) +
                 ")";
        return false;
      }
    }
  }
  return true;
}

// Schedule-armed migration fault injector: counts every consulted
// ReconfigCrashPoint (coverage), optionally abandons the migration at one
// scheduled point, and optionally halts the join target at the first
// kMidRangeCopy visit (the bulk-copy window), forcing the rollback path.
// Driven solely from the migration thread; read after that thread joins.
class ScheduledReconfigInjector : public cluster::ReconfigFaultInjector {
 public:
  ScheduledReconfigInjector(int crash_point, bool kill_target,
                            cluster::Cluster* cluster,
                            rdma::NodeId target)
      : crash_point_(crash_point),
        kill_target_(kill_target),
        cluster_(cluster),
        target_(target) {}

  bool MaybeCrash(cluster::ReconfigCrashPoint point) override {
    const int p = static_cast<int>(point);
    visits_[p]++;
    if (kill_target_ && !killed_ &&
        point == cluster::ReconfigCrashPoint::kMidRangeCopy) {
      killed_ = true;
      cluster_->fabric().HaltNode(target_);
    }
    if (p == crash_point_ && !fired_) {
      fired_ = true;
      return true;
    }
    return false;
  }

  bool fired() const { return fired_; }
  bool killed() const { return killed_; }
  int visits(int point) const { return visits_[point]; }

 private:
  const int crash_point_;  // -1 = never crash the driver
  const bool kill_target_;
  cluster::Cluster* cluster_;
  const rdma::NodeId target_;
  int visits_[cluster::kNumReconfigCrashPoints] = {0};
  bool fired_ = false;
  bool killed_ = false;
};

// Outcome of executing one schedule (one litmus iteration).
struct IterationResult {
  int iteration = 0;
  bool violation = false;
  std::string explanation;  // set when violation
  // What actually happened, as a replayable schedule (crash directives
  // resolved to the precise point/run/occurrence that fired).
  CrashSchedule executed;
  // An armed crash directive never fired: the execution diverged from the
  // profiled path and the schedule proved nothing.
  bool noop = false;
  int sync_timeouts = 0;
  // Crash points visited, per [slot][run], from the recorder hooks.
  std::vector<std::vector<std::vector<txn::CrashPoint>>> visits;
  // Verb-controller harvest (iterations that installed one): the applied
  // mutating-token stream, which slot a verb-kill halted (-1 none),
  // whether an enforced order proved unrealizable, and how many injected
  // bugs the iteration's coordinators actually exercised.
  std::vector<VerbToken> applied_verbs;
  int verb_killed_slot = -1;
  bool verb_diverged = false;
  uint64_t bug_injections = 0;
};

// Per-spec deployment: one simulated DKVS shared by every iteration of
// every schedule (including minimizer replays, which consume fresh
// iteration indices so they never collide with recorded state).
struct SpecRun {
  const HarnessConfig& config;
  const LitmusSpec& spec;
  const uint32_t num_txns;
  const uint32_t compute_nodes;
  const int runs;
  const int max_iterations;
  cluster::Cluster cluster;
  store::TableId table = 0;
  txn::SystemGate gate;
  std::unique_ptr<recovery::RecoveryManager> manager;
  LitmusSpec expanded;
  std::unique_ptr<SerializabilityChecker> checker;
  int next_iteration = 0;
  /// Online-reconfiguration machinery (standby deployments only): the
  /// fenced migrator, a deliberately naive one (epoch fence off, no
  /// quiesce hooks) for the teeth schedules, and the standby's node id.
  std::unique_ptr<cluster::ReconfigManager> migrator;
  std::unique_ptr<cluster::ReconfigManager> migrator_unfenced;
  rdma::NodeId standby_node = rdma::kInvalidNodeId;

  static cluster::ClusterConfig MakeClusterConfig(
      const HarnessConfig& config, uint32_t compute_nodes,
      int max_iterations) {
    cluster::ClusterConfig cluster_config;
    cluster_config.memory_nodes = config.memory_nodes;
    // Reconfiguration runs need a standby memory server to join/drain
    // (also when only the replayed schedule carries the migration).
    cluster_config.standby_memory_nodes =
        (config.reconfig != ReconfigKind::kNone ||
         config.replay.reconfig != ReconfigKind::kNone)
            ? 1
            : 0;
    cluster_config.compute_nodes = compute_nodes;
    cluster_config.replication = config.replication;
    cluster_config.net = config.net;
    cluster_config.log.slot_bytes = 512;
    cluster_config.log.slots_per_coordinator = 8;
    cluster_config.log.max_coordinators = static_cast<uint32_t>(
        (max_iterations + 2) * compute_nodes + 16);
    return cluster_config;
  }

  // `runs_override` > 0 replaces config.runs_per_txn (kVerbExhaustive
  // explores both 1 and the configured count). `phase_budget_multiplier`
  // scales the iteration budget for policies that run several exploration
  // phases against the same deployment.
  SpecRun(const HarnessConfig& config_in, const LitmusSpec& spec_in,
          int runs_override = 0, int phase_budget_multiplier = 1)
      : config(config_in),
        spec(spec_in),
        num_txns(static_cast<uint32_t>(spec_in.txns.size())),
        compute_nodes(num_txns + 1),  // +1 observer node
        runs(runs_override > 0 ? runs_override
                               : std::max(1, config_in.runs_per_txn)),
        // Iteration budget plus minimizer replays (at most 10 reported
        // violations are shrunk) plus slack.
        max_iterations(phase_budget_multiplier * config_in.iterations +
                       10 * (std::max(0, config_in.minimize_budget) + 1) +
                       8),
        cluster(MakeClusterConfig(config_in, num_txns + 1,
                                  max_iterations)) {
    table = cluster.CreateTable(
        "litmus", /*value_size=*/8,
        static_cast<uint64_t>(max_iterations + 1) * kVarStride);

    recovery::RecoveryManagerConfig rm_config;
    rm_config.mode = config.txn.mode;
    rm_config.fd = config.fd;
    manager =
        std::make_unique<recovery::RecoveryManager>(&cluster, rm_config,
                                                    &gate);
    manager->Start();

    if (cluster.config().standby_memory_nodes > 0) {
      standby_node = cluster.memory_node_id(config.memory_nodes);
      // Few ranges keep the per-migration kMidRangeCopy visit count (and
      // thus the lockstep-profiled occurrence space) small; a short
      // verdict timeout keeps source-death rollbacks fast.
      cluster::ReconfigOptions fenced = manager->MakeReconfigOptions();
      fenced.ranges = 8;
      fenced.verdict_timeout_us = 20'000;
      migrator =
          std::make_unique<cluster::ReconfigManager>(&cluster, fenced);
      cluster::ReconfigOptions naive;
      naive.ranges = 8;
      naive.epoch_fence = false;
      naive.verdict_timeout_us = 20'000;
      migrator_unfenced =
          std::make_unique<cluster::ReconfigManager>(&cluster, naive);
    }

    // The checker sees one logical transaction per *run*: expand the
    // spec. Observation order is run-major (run r of txn t sits at index
    // r * num_txns + t).
    expanded = spec;
    expanded.txns.clear();
    for (int r = 0; r < runs; ++r) {
      for (const LitmusTxn& txn : spec.txns) {
        LitmusTxn copy = txn;
        copy.name = txn.name + "#" + std::to_string(r + 1);
        expanded.txns.push_back(std::move(copy));
      }
    }
    checker = std::make_unique<SerializabilityChecker>(expanded);
  }

  ~SpecRun() { manager->Stop(); }

  // Executes `schedule` as one litmus iteration against fresh keys. With
  // `record` set, aggregate counters (iterations, outcomes, coverage,
  // bug_injections) accumulate into `report`; minimizer probes pass
  // record=false so they do not distort the run's statistics.
  void RunIteration(const CrashSchedule& schedule, LitmusReport* report,
                    bool record, IterationResult* out);
};

void SpecRun::RunIteration(const CrashSchedule& schedule,
                           LitmusReport* report, bool record,
                           IterationResult* out) {
  PANDORA_CHECK(next_iteration < max_iterations);
  // Key-space salt: the seed shifts every iteration's variable keys to a
  // different ring position, so repeated single-schedule runs (e.g. the
  // naive-cutover teeth hunt) can re-roll WHICH variables a join actually
  // moves by varying the seed. Within one deployment the salt is constant,
  // so iterations stay disjoint and replays stay deterministic.
  const int iteration =
      next_iteration++ +
      static_cast<int>(config.seed % 4096) * (max_iterations + 2);
  out->iteration = iteration;
  out->executed.sync = schedule.sync;
  out->executed.runs = runs;

  // Coordinator config for this iteration; fence-off (teeth) schedules
  // disable the coordinators' placement-epoch fence along with the
  // migrator's, running the deliberately naive cutover end to end.
  txn::TxnConfig txn_config = config.txn;
  if (schedule.reconfig_fence_off) txn_config.reconfig_fence = false;

  // Lazily preload this iteration's copy of the initialized variables.
  for (Var v = 0; v < spec.initial.size(); ++v) {
    if (!spec.initial[v].has_value()) continue;
    char buf[8];
    EncodeFixed64(buf, *spec.initial[v]);
    PANDORA_CHECK(
        cluster.LoadRow(table, VarKey(iteration, v), Slice(buf, 8)).ok());
  }

  // Fresh coordinators (fresh ids) per iteration; txn t runs on compute
  // node t, the observer on the last node. Installing a (never-firing
  // unless armed) recorder hook on every coordinator also forces the
  // litmus-grade sequential (per-replica) apply/unlock paths, maximizing
  // the interleavings a litmus test can observe.
  // Reconfig schedules shorten the lockstep fallback: during the cutover
  // quiesce a participant blocked at the gate cannot arrive, and every
  // phase of its peers would otherwise stall for the full 250ms timeout.
  LockstepController lockstep(
      static_cast<int>(num_txns),
      schedule.reconfig != ReconfigKind::kNone ? 20'000 : 250'000);
  std::vector<std::unique_ptr<txn::Coordinator>> coords;
  std::vector<std::unique_ptr<txn::ScheduleRecorderHook>> hooks;
  std::vector<uint64_t> recoveries_before(num_txns, 0);
  for (uint32_t t = 0; t < num_txns; ++t) {
    std::vector<uint16_t> ids;
    PANDORA_CHECK(
        manager->RegisterComputeNode(cluster.compute(t), 1, &ids).ok());
    coords.push_back(std::make_unique<txn::Coordinator>(
        &cluster, cluster.compute(t), ids[0], txn_config, &gate));
    hooks.push_back(std::make_unique<txn::ScheduleRecorderHook>());
    if (schedule.sync == SyncMode::kLockstep) {
      hooks.back()->set_point_observer(
          [&lockstep](txn::CrashPoint, int, int) { lockstep.Arrive(); });
    }
    coords.back()->set_crash_hook(hooks.back().get());
    recoveries_before[t] =
        manager->recovery_count(cluster.compute_node_id(t));
  }
  for (const CrashDirective& crash : schedule.crashes) {
    if (crash.slot < 0 || crash.slot >= static_cast<int>(num_txns)) {
      continue;
    }
    if (crash.any_point) {
      hooks[crash.slot]->ArmCrashAtGlobalOccurrence(
          crash.global_occurrence);
    } else {
      hooks[crash.slot]->ArmCrashAt(crash.run, crash.point,
                                    crash.occurrence);
    }
  }

  // Verb-level scheduling: install a fabric hook that records the
  // iteration's mutating-verb stream and/or enforces a candidate verb
  // order (and verb-kill) from the schedule. Unit identity is the litmus
  // variable: each variable's hash-table slot is predicted with the same
  // linear probe the store uses (the key's slot if present, else the
  // first free slot an insert will claim), probed on one replica —
  // offsets are replica-invariant, so one [lo, hi) range covers every
  // copy of the word cluster.
  const bool want_verbs = schedule.record_verbs ||
                          !schedule.verb_order.empty() ||
                          schedule.has_verb_kill;
  std::unique_ptr<VerbOrderController> verb_ctl;
  if (want_verbs) {
    VerbOrderController::Options opts;
    opts.fabric = &cluster.fabric();
    for (uint32_t t = 0; t < num_txns; ++t) {
      opts.slot_nodes.push_back(cluster.compute_node_id(t));
    }
    const cluster::TableInfo& info = cluster.catalog().table(table);
    for (const rdma::RKey rkey : info.region_rkeys) {
      if (rkey != rdma::kInvalidRKey) opts.data_rkeys.push_back(rkey);
    }
    for (Var v = 0; v < spec.initial.size(); ++v) {
      const store::Key key = VarKey(iteration, v);
      const cluster::ReplicaSet replicas =
          cluster.ReplicaSetFor(table, key);
      PANDORA_CHECK(!replicas.empty());
      rdma::ProtectionDomain* pd =
          cluster.fabric().GetMemoryNode(replicas[0]);
      rdma::MemoryRegion* region =
          pd->GetRegion(info.region_rkeys[replicas[0]]);
      uint64_t slot = info.layout.HomeSlot(HashKey(key));
      for (uint64_t scanned = 0; scanned < info.layout.capacity();
           ++scanned) {
        const uint64_t slot_key =
            DecodeFixed64(region->base() + info.layout.KeyOffset(slot));
        if (slot_key == key || slot_key == store::kFreeKey) break;
        slot = info.layout.NextSlot(slot);
      }
      opts.unit_ranges.emplace_back(
          info.layout.SlotOffset(slot),
          info.layout.SlotOffset(slot) + info.layout.slot_size());
    }
    opts.order = schedule.verb_order;
    opts.has_kill = schedule.has_verb_kill;
    opts.kill = schedule.verb_kill;
    verb_ctl = std::make_unique<VerbOrderController>(std::move(opts));
    cluster.fabric().set_verb_hook(verb_ctl.get());
  }

  // Online reconfiguration racing this iteration's transactions: a join
  // (or, after a quiet pre-join, a drain) of the standby memory server,
  // driven from its own thread off the same start barrier, with a
  // schedule-armed fault injector counting migration-point coverage.
  const ReconfigKind reconfig_kind =
      migrator != nullptr ? schedule.reconfig : ReconfigKind::kNone;
  cluster::ReconfigManager* migration_mgr = nullptr;
  std::unique_ptr<ScheduledReconfigInjector> reconfig_injector;
  uint64_t rollbacks_before = 0;
  if (reconfig_kind != ReconfigKind::kNone) {
    migration_mgr = schedule.reconfig_fence_off ? migrator_unfenced.get()
                                                : migrator.get();
    if (reconfig_kind == ReconfigKind::kDrain) {
      // The drain race needs the standby in the ring first: join it
      // quietly (fenced, no faults) before the transactions start.
      const Status pre = migrator->JoinMemoryNode(standby_node);
      if (!pre.ok()) {
        PANDORA_LOG(kWarning)
            << "litmus: pre-join for drain schedule failed: "
            << pre.ToString();
      }
    }
    reconfig_injector = std::make_unique<ScheduledReconfigInjector>(
        schedule.reconfig_crash,
        schedule.reconfig_kill_target &&
            reconfig_kind == ReconfigKind::kJoin,
        &cluster, standby_node);
    rollbacks_before = migration_mgr->stats().rollbacks;
    migration_mgr->set_fault_injector(reconfig_injector.get());
  } else if (schedule.reconfig != ReconfigKind::kNone) {
    out->noop = true;  // No standby deployed: the schedule cannot run.
  }

  // Compound: a one-shot recovery-coordinator death; the manager restarts
  // the RC and re-runs recovery (idempotent, §3.2.3).
  std::atomic<int> rc_deaths{0};
  if (schedule.rc_fault) {
    manager->rc().set_step_fault_hook(
        [&rc_deaths] { return rc_deaths.fetch_add(1) == 0; });
  }

  // Run the spec's transactions concurrently; each thread repeats its
  // program `runs` times.
  std::vector<TxnObservation> observations(
      static_cast<size_t>(runs) * num_txns);
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (uint32_t t = 0; t < num_txns; ++t) {
    threads.emplace_back([&, t] {
      // Start barrier: release every transaction at once so short
      // programs actually overlap (racy interleavings are the whole
      // point of a litmus test).
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      bool retired = false;
      for (int r = 0; r < runs; ++r) {
        if (hooks[t] != nullptr) hooks[t]->BeginRun(r);
        if (verb_ctl != nullptr) {
          verb_ctl->BeginRun(static_cast<int>(t), r);
        }
        ExecuteProgram(coords[t].get(), spec.txns[t], iteration, table,
                       &observations[static_cast<size_t>(r) * num_txns +
                                     t]);
        if (!retired && hooks[t] != nullptr && hooks[t]->fired()) {
          // Crashed: leave the rendezvous so live peers stop waiting.
          lockstep.Retire();
          retired = true;
        }
      }
      if (!retired) lockstep.Retire();
    });
  }
  std::thread migration_thread;
  Status migration_status;
  if (migration_mgr != nullptr) {
    migration_thread = std::thread([&] {
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      migration_status =
          reconfig_kind == ReconfigKind::kJoin
              ? migration_mgr->JoinMemoryNode(standby_node)
              : migration_mgr->DrainMemoryNode(standby_node);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  if (migration_thread.joinable()) migration_thread.join();
  out->sync_timeouts = lockstep.timeouts();

  // Migration harvest: record the executed reconfiguration (resolved
  // crash / kill), coverage counters, and injection no-ops.
  if (migration_mgr != nullptr) {
    migration_mgr->set_fault_injector(nullptr);
    out->executed.reconfig = reconfig_kind;
    out->executed.reconfig_fence_off = schedule.reconfig_fence_off;
    if (record) {
      report->reconfigs_run++;
      for (int p = 0;
           p < static_cast<int>(cluster::kNumReconfigCrashPoints); ++p) {
        report->reconfig_point_visits[p] += reconfig_injector->visits(p);
      }
      report->reconfig_rollbacks += static_cast<int>(
          migration_mgr->stats().rollbacks - rollbacks_before);
    }
    if (schedule.reconfig_crash >= 0) {
      if (reconfig_injector->fired()) {
        out->executed.reconfig_crash = schedule.reconfig_crash;
        if (record) {
          report->reconfig_crashes_injected++;
          report->reconfig_point_crashes[schedule.reconfig_crash]++;
        }
      } else {
        out->noop = true;  // Migration never reached the scheduled point.
      }
    }
    if (schedule.reconfig_kill_target) {
      if (reconfig_injector->killed()) {
        out->executed.reconfig_kill_target = true;
        if (record) report->reconfig_kills_injected++;
      } else {
        out->noop = true;  // The kill window was never reached.
      }
    }
    if (!migration_status.ok() && schedule.reconfig_crash < 0 &&
        !schedule.reconfig_kill_target) {
      PANDORA_LOG(kInfo) << "litmus: scheduled migration rolled back: "
                         << migration_status.ToString();
    }
  }

  // Verb-controller harvest. Release any verb still parked (recovery
  // traffic is never held, but an unrealizable order may leave the slots'
  // last verbs waiting), then uninstall — set_verb_hook(nullptr) drains
  // in-flight callbacks, after which the controller is safe to read and
  // destroy. The applied stream becomes the executed trace's verb order,
  // so a violating iteration replays with its full window enforced.
  if (verb_ctl != nullptr) {
    verb_ctl->ReleaseAll();
    cluster.fabric().set_verb_hook(nullptr);
    out->applied_verbs = verb_ctl->applied();
    out->verb_killed_slot = verb_ctl->killed_slot();
    out->verb_diverged = verb_ctl->diverged();
    out->executed.verb_order = out->applied_verbs;
    if (schedule.has_verb_kill) {
      if (out->verb_killed_slot >= 0) {
        out->executed.has_verb_kill = true;
        out->executed.verb_kill = schedule.verb_kill;
        if (record) report->verb_kills_injected++;
      } else {
        out->noop = true;  // Planned kill verb was never issued.
      }
    }
    if (out->verb_diverged) {
      out->noop = true;  // Enforced order proved unrealizable.
      if (record) report->verb_schedules_diverged++;
    }
  }

  // Harvest the recorders: visited-point traces, resolved crashes,
  // injection no-ops.
  out->visits.resize(num_txns);
  bool any_fired = false;
  for (uint32_t t = 0; t < num_txns; ++t) {
    if (hooks[t] == nullptr) continue;
    const txn::ScheduleRecorderHook& hook = *hooks[t];
    auto& slot_visits = out->visits[t];
    slot_visits.resize(static_cast<size_t>(hook.runs_recorded()));
    for (int r = 0; r < hook.runs_recorded(); ++r) {
      slot_visits[static_cast<size_t>(r)] = hook.visited(r);
      if (record) {
        for (const txn::CrashPoint point : hook.visited(r)) {
          report->point_visits[static_cast<int>(point)]++;
        }
      }
    }
    if (hook.armed()) {
      if (hook.fired()) {
        any_fired = true;
        CrashDirective resolved;
        resolved.slot = static_cast<int>(t);
        resolved.run = hook.fired_run();
        resolved.point = hook.fired_point();
        resolved.occurrence = hook.fired_occurrence();
        out->executed.crashes.push_back(resolved);
        if (record) {
          report->crashes_injected++;
          report->point_crashes[static_cast<int>(hook.fired_point())]++;
        }
      } else {
        out->noop = true;
      }
    }
  }

  // Compound: fail a memory node right after the coordinator crash, so
  // recovery must run against a degraded replica set (§3.2.5).
  rdma::NodeId killed_memory_node = rdma::kInvalidNodeId;
  if (schedule.kill_memory_node >= 0 && any_fired) {
    const uint32_t index = static_cast<uint32_t>(schedule.kill_memory_node) %
                           config.memory_nodes;
    killed_memory_node = cluster.memory_node_id(index);
    cluster.CrashMemoryNode(killed_memory_node);
    manager->RecoverMemoryFailure(killed_memory_node);
    out->executed.kill_memory_node = static_cast<int>(index);
    if (record) report->memory_kills_injected++;
  }

  // Wait for detection + recovery of every crashed slot before observing.
  bool recovery_timed_out = false;
  for (uint32_t t = 0; t < num_txns && !recovery_timed_out; ++t) {
    const bool crashed =
        (hooks[t] != nullptr && hooks[t]->fired()) ||
        out->verb_killed_slot == static_cast<int>(t);
    if (!crashed) continue;
    if (!manager->WaitForComputeRecovery(cluster.compute_node_id(t),
                                         5'000'000,
                                         recoveries_before[t])) {
      out->violation = true;
      out->explanation = "recovery never completed";
      recovery_timed_out = true;
    }
  }
  if (schedule.rc_fault) {
    manager->rc().set_step_fault_hook(nullptr);
    if (rc_deaths.load(std::memory_order_acquire) > 0) {
      out->executed.rc_fault = true;
      if (record) report->rc_faults_injected++;
    }
  }

  if (!recovery_timed_out) {
    // Observe the final application state from the observer node.
    VarState final_state(spec.initial.size());
    bool observed = false;
    std::vector<uint16_t> observer_ids;
    PANDORA_CHECK(manager
                      ->RegisterComputeNode(
                          cluster.compute(compute_nodes - 1), 1,
                          &observer_ids)
                      .ok());
    txn::Coordinator reader(&cluster, cluster.compute(compute_nodes - 1),
                            observer_ids[0], txn_config, &gate);
    std::string observe_error;
    for (int attempt = 0; attempt < 10 && !observed; ++attempt) {
      const Status begin_status = reader.Begin();
      if (!begin_status.ok()) {
        if (observe_error.empty()) {
          observe_error = "begin: " + begin_status.ToString();
        }
        SleepForMicros(200);
        continue;
      }
      bool ok = true;
      for (Var v = 0; v < spec.initial.size() && ok; ++v) {
        std::string value;
        const Status status = reader.Read(table, VarKey(iteration, v),
                                          &value);
        if (status.ok()) {
          final_state[v] = DecodeFixed64(value.data());
        } else if (status.IsNotFound()) {
          final_state[v] = std::nullopt;
        } else {
          if (observe_error.empty()) {
            observe_error = "read var " + std::to_string(v) + ": " +
                            status.ToString();
          }
          ok = false;
        }
      }
      if (ok) {
        const Status commit_status = reader.Commit();
        if (commit_status.ok()) {
          observed = true;
        } else if (observe_error.empty()) {
          observe_error = "commit: " + commit_status.ToString();
        }
      }
      if (!observed && reader.in_txn()) reader.Abort();
      SleepForMicros(200);
    }

    if (!observed) {
      if (observe_error.find("PermissionDenied") != std::string::npos) {
        // The observer was repeatedly fenced (false positives under CPU
        // pressure); no verdict about the protocol is possible.
        if (record) report->inconclusive++;
      } else {
        out->violation = true;
        out->explanation =
            "final state unreadable (" + observe_error + ")";
      }
    } else {
      std::string explanation;
      if (!checker->Check(observations, final_state, &explanation)) {
        out->violation = true;
        out->explanation = explanation;
      }
    }

    if (record) {
      for (const TxnObservation& obs : observations) {
        switch (obs.outcome) {
          case TxnObservation::Outcome::kCommitted:
            report->committed++;
            break;
          case TxnObservation::Outcome::kAborted:
            report->aborted++;
            break;
          case TxnObservation::Outcome::kUnknown:
            report->unknown++;
            break;
        }
      }
    }
  }

  for (uint32_t t = 0; t < num_txns; ++t) {
    out->bug_injections += coords[t]->stats().bug_injections;
  }
  if (record) report->bug_injections += out->bug_injections;

  // End of iteration: wait for any in-flight (possibly false-positive)
  // recoveries, then restore every compute node's links and rebuild a
  // killed memory node, so the next iteration starts from a healthy
  // membership. Restoring only after recoveries completed preserves Cor1.
  {
    const uint64_t deadline = NowMicros() + 5'000'000;
    while (manager->pending_recoveries() > 0 && NowMicros() < deadline) {
      SleepForMicros(200);
    }
  }
  for (uint32_t n = 0; n < compute_nodes; ++n) {
    cluster.RestartComputeNode(cluster.compute_node_id(n));
  }
  if (killed_memory_node != rdma::kInvalidNodeId) {
    const Status status = manager->ReplaceMemoryNode(killed_memory_node);
    if (!status.ok()) {
      PANDORA_LOG(kError) << "litmus: memory node re-replication failed: "
                          << status.ToString();
    }
  }
  // Reconfiguration baseline restore: resume a killed join target, then
  // take the standby back out of the ring (quiet fenced drain) so the
  // next iteration starts from the baseline placement. This runs after
  // the checker observed the migrated state, so it never masks a cutover
  // bug — it only re-establishes iteration independence.
  if (migration_mgr != nullptr) {
    if (reconfig_injector->killed()) {
      cluster.fabric().ResumeNode(standby_node);
      cluster.WipeMemoryNode(standby_node);
    }
    const std::vector<rdma::NodeId>& ring_nodes = cluster.ring().nodes();
    if (std::find(ring_nodes.begin(), ring_nodes.end(), standby_node) !=
        ring_nodes.end()) {
      const Status restore = migrator->DrainMemoryNode(standby_node);
      if (!restore.ok()) {
        PANDORA_LOG(kError) << "litmus: standby restore drain failed: "
                            << restore.ToString();
      }
    }
  }

  // Memory-level invariants: replicas must agree, locks must be free or
  // stray. Skipped when recovery already timed out (the iteration is
  // already a violation and memory may legitimately hold stray locks).
  if (!recovery_timed_out && !out->violation) {
    std::string audit_error;
    if (!AuditReplicas(&cluster, table, iteration, spec.initial.size(),
                       manager->fd().failed_ids(), &audit_error)) {
      out->violation = true;
      out->explanation = audit_error;
    }
  }

  if (record) report->iterations++;
}

}  // namespace

std::string LitmusReport::CoverageSummary() const {
  std::string out;
  for (int p = 0; p < txn::kNumCrashPoints; ++p) {
    if (point_visits[p] == 0 && point_crashes[p] == 0) continue;
    if (!out.empty()) out += "\n";
    out += std::string(txn::CrashPointName(
               static_cast<txn::CrashPoint>(p))) +
           ": " + std::to_string(point_visits[p]) + " visits, " +
           std::to_string(point_crashes[p]) + " crashes";
  }
  for (int p = 0; p < static_cast<int>(cluster::kNumReconfigCrashPoints);
       ++p) {
    if (reconfig_point_visits[p] == 0 && reconfig_point_crashes[p] == 0) {
      continue;
    }
    if (!out.empty()) out += "\n";
    out += "reconfig " +
           std::string(cluster::ReconfigCrashPointName(
               static_cast<cluster::ReconfigCrashPoint>(p))) +
           ": " + std::to_string(reconfig_point_visits[p]) + " visits, " +
           std::to_string(reconfig_point_crashes[p]) + " crashes";
  }
  return out;
}

LitmusReport LitmusHarness::Run(const LitmusSpec& spec) {
  LitmusReport report;
  report.spec_name = spec.name;

  // Delta-debugging: greedily drop schedule components (memory kill, RC
  // fault, individual crash directives, the verb kill, the verb order —
  // cleared, then halved from the tail), keeping a candidate only when
  // the reduced schedule still reproduces a violation, then replay the
  // final schedule once to confirm determinism.
  auto minimize = [&](SpecRun& run,
                      const IterationResult& result) -> std::string {
    if (config_.minimize_budget <= 0) return "";
    CrashSchedule best = result.executed;
    int budget = config_.minimize_budget;
    auto reproduces = [&](const CrashSchedule& candidate) {
      if (budget <= 0) return false;
      --budget;
      IterationResult probe;
      run.RunIteration(candidate, &report, /*record=*/false, &probe);
      return probe.violation;
    };
    if (best.kill_memory_node >= 0) {
      CrashSchedule candidate = best;
      candidate.kill_memory_node = -1;
      if (reproduces(candidate)) best = candidate;
    }
    if (best.rc_fault) {
      CrashSchedule candidate = best;
      candidate.rc_fault = false;
      if (reproduces(candidate)) best = candidate;
    }
    for (size_t i = best.crashes.size(); i-- > 0;) {
      CrashSchedule candidate = best;
      candidate.crashes.erase(candidate.crashes.begin() +
                              static_cast<long>(i));
      if (reproduces(candidate)) best = candidate;
    }
    if (best.reconfig_kill_target) {
      CrashSchedule candidate = best;
      candidate.reconfig_kill_target = false;
      if (reproduces(candidate)) best = candidate;
    }
    if (best.reconfig_crash >= 0) {
      CrashSchedule candidate = best;
      candidate.reconfig_crash = -1;
      if (reproduces(candidate)) best = candidate;
    }
    if (best.reconfig != ReconfigKind::kNone) {
      CrashSchedule candidate = best;
      candidate.reconfig = ReconfigKind::kNone;
      candidate.reconfig_crash = -1;
      candidate.reconfig_fence_off = false;
      candidate.reconfig_kill_target = false;
      if (reproduces(candidate)) best = candidate;
    }
    if (best.has_verb_kill) {
      CrashSchedule candidate = best;
      candidate.has_verb_kill = false;
      if (reproduces(candidate)) best = candidate;
    }
    if (!best.verb_order.empty()) {
      CrashSchedule candidate = best;
      candidate.verb_order.clear();
      if (reproduces(candidate)) best = candidate;
    }
    while (best.verb_order.size() > 1) {
      CrashSchedule candidate = best;
      candidate.verb_order.resize(candidate.verb_order.size() / 2);
      if (!reproduces(candidate)) break;
      best = candidate;
    }
    const bool confirmed = reproduces(best);
    return " | minimal repro: spec=" + spec.name +
           " seed=" + std::to_string(config_.seed) + " schedule={" +
           best.ToString() + "}" +
           (confirmed ? " (replay-confirmed)"
                      : " (not re-confirmed; may be timing-dependent)");
  };

  auto execute = [&](SpecRun& run, const CrashSchedule& schedule) {
    IterationResult result;
    run.RunIteration(schedule, &report, /*record=*/true, &result);
    if (result.noop) report.schedule_noops++;
    report.sync_timeouts += result.sync_timeouts;
    if (result.violation) {
      report.violations++;
      report.violation_traces.push_back(result.executed.ToString());
      report.violation_explanations.push_back(result.explanation);
      if (report.failures.size() < 10) {
        report.failures.push_back(
            "iteration " + std::to_string(result.iteration) + ": " +
            result.explanation + minimize(run, result));
      }
    }
    return result;
  };
  auto should_stop = [&] {
    return config_.stop_after_violations > 0 &&
           report.violations >= config_.stop_after_violations;
  };

  // Bounded crash-point model checking (the kExhaustive body, shared by
  // kVerbExhaustive as its first phase).
  auto crash_point_exhaustive = [&](SpecRun& run) {
    // Profiling iteration: lockstep, no crash. Records the reachable
    // (slot, run, point, occurrence) tuples that bound the enumeration
    // — and doubles as the no-crash litmus check (lockstep alone
    // surfaces ordering bugs like covert/relaxed locks).
    CrashSchedule profile_schedule;
    profile_schedule.sync = SyncMode::kLockstep;
    // With reconfiguration enabled every enumerated schedule (profile
    // included) races the migration, so the profiled tuples reflect the
    // fenced-abort/retry paths the migration provokes.
    const ReconfigKind reconfig_kind = config_.reconfig;
    profile_schedule.reconfig = reconfig_kind;
    report.schedules_planned++;
    const IterationResult profile = execute(run, profile_schedule);

    std::vector<CrashDirective> tuples;
    for (uint32_t t = 0; t < run.num_txns; ++t) {
      if (t >= profile.visits.size()) break;
      for (size_t r = 0; r < profile.visits[t].size(); ++r) {
        std::vector<int> counts(txn::kNumCrashPoints, 0);
        for (const txn::CrashPoint point : profile.visits[t][r]) {
          counts[static_cast<int>(point)]++;
        }
        for (int p = 0; p < txn::kNumCrashPoints; ++p) {
          for (int occ = 1; occ <= counts[p]; ++occ) {
            CrashDirective crash;
            crash.slot = static_cast<int>(t);
            crash.run = static_cast<int>(r);
            crash.point = static_cast<txn::CrashPoint>(p);
            crash.occurrence = occ;
            tuples.push_back(crash);
          }
        }
      }
    }

    std::vector<CrashSchedule> worklist;
    // Migration-driver crashes first: one schedule per ReconfigCrashPoint
    // (plus a join-target kill mid-copy), proving the rollback /
    // roll-forward rule at every point of the migration. The crash-free
    // migration itself is covered by the profiling iteration.
    if (reconfig_kind != ReconfigKind::kNone) {
      for (int p = 0;
           p < static_cast<int>(cluster::kNumReconfigCrashPoints); ++p) {
        CrashSchedule schedule;
        schedule.sync = SyncMode::kLockstep;
        schedule.reconfig = reconfig_kind;
        schedule.reconfig_crash = p;
        worklist.push_back(schedule);
      }
      if (reconfig_kind == ReconfigKind::kJoin) {
        CrashSchedule schedule;
        schedule.sync = SyncMode::kLockstep;
        schedule.reconfig = reconfig_kind;
        schedule.reconfig_kill_target = true;
        worklist.push_back(schedule);
      }
    }
    for (const CrashDirective& crash : tuples) {
      CrashSchedule schedule;
      schedule.sync = SyncMode::kLockstep;
      schedule.reconfig = reconfig_kind;  // kNone when reconfig is off
      schedule.crashes.push_back(crash);
      worklist.push_back(schedule);
      if (config_.compound_rc_fault) {
        CrashSchedule compound = schedule;
        compound.rc_fault = true;
        worklist.push_back(compound);
      }
      if (config_.compound_memory_kill) {
        CrashSchedule compound = schedule;
        compound.kill_memory_node =
            static_cast<int>(worklist.size() % config_.memory_nodes);
        worklist.push_back(compound);
      }
    }
    // Coordinator crash *pairs*: two slots dying at different points of
    // the same iteration. Bounded to the contested window — both crashes
    // at points where locks can be held, first occurrences, first run —
    // which is where stray-lock interactions between two simultaneous
    // recoveries actually live.
    if (config_.crash_pairs) {
      const auto contested = [](txn::CrashPoint p) {
        switch (p) {
          case txn::CrashPoint::kAfterLock:
          case txn::CrashPoint::kAfterLockFetch:
          case txn::CrashPoint::kBeforeLogWrite:
          case txn::CrashPoint::kAfterLogWrite:
          case txn::CrashPoint::kAfterValidation:
          case txn::CrashPoint::kBeforeCommitApply:
          case txn::CrashPoint::kMidCommitApply:
          case txn::CrashPoint::kAfterCommitApply:
          case txn::CrashPoint::kAfterClientAck:
          case txn::CrashPoint::kBeforeUnlock:
          case txn::CrashPoint::kMidUnlock:
            return true;
          default:
            return false;
        }
      };
      const auto in_window = [&](const CrashDirective& d) {
        return d.run == 0 && d.occurrence == 1 && contested(d.point);
      };
      for (size_t a = 0; a < tuples.size(); ++a) {
        if (!in_window(tuples[a])) continue;
        for (size_t b = a + 1; b < tuples.size(); ++b) {
          if (tuples[b].slot == tuples[a].slot) continue;
          if (!in_window(tuples[b])) continue;
          CrashSchedule schedule;
          schedule.sync = SyncMode::kLockstep;
          schedule.reconfig = reconfig_kind;
          schedule.crashes.push_back(tuples[a]);
          schedule.crashes.push_back(tuples[b]);
          worklist.push_back(schedule);
        }
      }
    }
    report.schedules_planned += static_cast<int>(worklist.size());

    int budget = config_.iterations - 1;  // profiling consumed one
    for (size_t i = 0; i < worklist.size() && !should_stop(); ++i) {
      if (budget-- <= 0) {
        report.schedules_skipped += static_cast<int>(worklist.size() - i);
        PANDORA_LOG(kWarning)
            << "litmus: schedule enumeration truncated, "
            << (worklist.size() - i) << " of " << worklist.size()
            << " schedules skipped (raise HarnessConfig::iterations)";
        break;
      }
      execute(run, worklist[i]);
    }
  };

  // kVerbExhaustive phase two: bounded-DPOR exploration of the contested
  // verb window.
  auto verb_explore = [&](SpecRun& run) {
    constexpr size_t kWindowCap = 12;
    constexpr size_t kKillCap = 8;

    // Seed: a lockstep recording iteration captures the applied
    // mutating-verb stream. Lockstep maximizes contention, so the window
    // it records is the richest one; enforced iterations then free-run
    // (the holds replace the barrier, which would deadlock against them).
    CrashSchedule seed_schedule;
    seed_schedule.sync = SyncMode::kLockstep;
    seed_schedule.record_verbs = true;
    report.schedules_planned++;
    const IterationResult seed = execute(run, seed_schedule);

    // Restrict a stream to contested units (touched by >= 2 slots).
    auto contested_window = [&](const std::vector<VerbToken>& stream) {
      std::map<int, std::set<int>> unit_slots;
      for (const VerbToken& verb : stream) {
        unit_slots[verb.unit].insert(verb.slot);
      }
      std::vector<VerbToken> window;
      for (const VerbToken& verb : stream) {
        if (unit_slots[verb.unit].size() < 2) continue;
        window.push_back(verb);
        if (window.size() >= kWindowCap) break;
      }
      return window;
    };
    const std::vector<VerbToken> window =
        contested_window(seed.applied_verbs);
    report.verb_window =
        std::max(report.verb_window, static_cast<int>(window.size()));
    if (window.empty()) return;

    std::set<std::string> seen;
    std::deque<CrashSchedule> queue;
    auto enqueue = [&](CrashSchedule candidate, bool front) {
      if (!seen.insert(candidate.ToString()).second) {
        report.verb_orders_pruned++;  // Equivalent order already tried.
        return;
      }
      if (front) {
        queue.push_front(std::move(candidate));
      } else {
        queue.push_back(std::move(candidate));
      }
    };

    // DPOR reversals: for each conflicting pair (i, j) — same unit,
    // different slots — schedule w[j] to land before w[i] under the
    // prefix that actually preceded them. Valid only when no verb
    // between them belongs to w[j]'s slot (w[j] cannot be issued until
    // those land, so the reversal would be unrealizable).
    auto reversals = [&](const std::vector<VerbToken>& stream,
                         bool front) {
      const std::vector<VerbToken> w = contested_window(stream);
      for (size_t i = 0; i < w.size(); ++i) {
        for (size_t j = i + 1; j < w.size(); ++j) {
          if (w[i].unit != w[j].unit || w[i].slot == w[j].slot) continue;
          bool realizable = true;
          for (size_t k = i + 1; k < j && realizable; ++k) {
            if (w[k].slot == w[j].slot) realizable = false;
          }
          if (!realizable) continue;
          CrashSchedule candidate;
          candidate.verb_order.assign(w.begin(),
                                      w.begin() + static_cast<long>(i));
          candidate.verb_order.push_back(w[j]);
          candidate.verb_order.push_back(w[i]);
          enqueue(std::move(candidate), front);
        }
      }
    };

    // Who-wins-the-word permutations: every order of the slots' first
    // accesses to the hottest unit (<= 3! with three slots).
    {
      std::map<int, int> heat;
      for (const VerbToken& verb : window) heat[verb.unit]++;
      int hottest = window[0].unit;
      for (const auto& [unit, count] : heat) {
        if (count > heat[hottest]) hottest = unit;
      }
      std::vector<VerbToken> firsts;
      std::set<int> seen_slots;
      for (const VerbToken& verb : window) {
        if (verb.unit != hottest) continue;
        if (seen_slots.insert(verb.slot).second) firsts.push_back(verb);
      }
      auto token_less = [](const VerbToken& a, const VerbToken& b) {
        return std::tie(a.slot, a.run, a.unit, a.access) <
               std::tie(b.slot, b.run, b.unit, b.access);
      };
      std::sort(firsts.begin(), firsts.end(), token_less);
      if (firsts.size() >= 2 && firsts.size() <= 3) {
        std::vector<VerbToken> perm = firsts;
        do {
          CrashSchedule candidate;
          candidate.verb_order = perm;
          enqueue(std::move(candidate), false);
        } while (
            std::next_permutation(perm.begin(), perm.end(), token_less));
      }
    }
    reversals(seed.applied_verbs, /*front=*/false);
    // Verb-level kills: die after posting the a-th window verb, with the
    // preceding window enforced as recorded.
    for (size_t a = 0; a < window.size() && a < kKillCap; ++a) {
      CrashSchedule candidate;
      candidate.verb_order.assign(window.begin(),
                                  window.begin() + static_cast<long>(a));
      candidate.has_verb_kill = true;
      candidate.verb_kill = window[a];
      enqueue(std::move(candidate), false);
    }

    int budget = config_.iterations - 1;  // the recording seed used one
    while (!queue.empty() && !should_stop()) {
      if (budget-- <= 0) {
        report.schedules_skipped += static_cast<int>(queue.size());
        break;
      }
      CrashSchedule candidate = queue.front();
      queue.pop_front();
      report.schedules_planned++;
      const IterationResult result = execute(run, candidate);
      report.verb_orders_explored++;
      // Iterations that exercised an injected bug (or violated outright)
      // are where the races hide: their realized streams seed the next
      // DPOR generation, explored depth-first.
      if (result.violation || result.bug_injections > 0) {
        reversals(result.applied_verbs, /*front=*/true);
      }
    }
  };

  switch (config_.schedule) {
    case SchedulePolicy::kRandom: {
      SpecRun run(config_, spec);
      Random rng(config_.seed);
      for (int i = 0; i < config_.iterations && !should_stop(); ++i) {
        CrashSchedule schedule;  // free-running, maybe one random crash
        if (config_.reconfig != ReconfigKind::kNone) {
          // Every iteration races the migration; some also crash the
          // migration driver at a random point.
          schedule.reconfig = config_.reconfig;
          if (rng.PercentTrue(40)) {
            schedule.reconfig_crash = static_cast<int>(
                rng.Uniform(cluster::kNumReconfigCrashPoints));
          }
        }
        if (config_.crash_percent > 0 &&
            rng.PercentTrue(config_.crash_percent)) {
          CrashDirective crash;
          crash.slot = static_cast<int>(rng.Uniform(run.num_txns));
          crash.any_point = true;
          crash.global_occurrence = static_cast<int>(1 + rng.Uniform(14));
          schedule.crashes.push_back(crash);
        }
        report.schedules_planned++;
        execute(run, schedule);
      }
      break;
    }
    case SchedulePolicy::kExhaustive: {
      SpecRun run(config_, spec);
      crash_point_exhaustive(run);
      break;
    }
    case SchedulePolicy::kVerbExhaustive: {
      // Try run count 1 first (single-shot races need no repeats and
      // explore fastest), then the configured repeat count, each against
      // a fresh deployment: crash-point enumeration, then verb-order
      // exploration.
      std::vector<int> run_counts{1};
      const int configured = std::max(1, config_.runs_per_txn);
      if (configured != 1) run_counts.push_back(configured);
      for (const int count : run_counts) {
        if (should_stop()) break;
        SpecRun run(config_, spec, count, /*phase_budget_multiplier=*/2);
        crash_point_exhaustive(run);
        if (!should_stop()) verb_explore(run);
      }
      break;
    }
    case SchedulePolicy::kReplay: {
      // Honor the trace's recorded run count (0 = config default).
      SpecRun run(config_, spec, config_.replay.runs);
      report.schedules_planned++;
      execute(run, config_.replay);
      break;
    }
  }

  // A clean run with enabled-but-unexercised bug flags proves nothing:
  // fail loudly instead of reporting a false pass.
  if (config_.txn.bugs.AnySet() && report.bug_injections == 0) {
    report.harness_error =
        "bug flags enabled but never exercised (injection no-op)";
  }

  return report;
}

std::vector<LitmusReport> LitmusHarness::RunAll() {
  std::vector<LitmusReport> reports;
  for (const LitmusSpec& spec : AllLitmusSpecs()) {
    reports.push_back(Run(spec));
  }
  return reports;
}

}  // namespace litmus
}  // namespace pandora

#ifndef PANDORA_LITMUS_LITMUS_SPEC_H_
#define PANDORA_LITMUS_LITMUS_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pandora {
namespace litmus {

/// Variables are small indices (X=0, Y=1, Z=2, ...) mapped to fresh store
/// keys on every litmus iteration.
using Var = uint32_t;

/// One step of a litmus transaction. Programs use two registers so every
/// test in Figure 5 (and the compound extensions) can be expressed.
struct LitmusOp {
  enum class Kind {
    kLoad,          // reg[r] = read(src); aborts txn on conflict
    kStoreConst,    // write(dst, value)
    kStoreRegPlus,  // write(dst, reg[r] + value)
    kInsertConst,   // insert(dst, value)   (litmus-1 insert variant)
    kDelete,        // delete(dst)          (litmus-1 delete variant)
  };

  Kind kind = Kind::kLoad;
  Var dst = 0;
  Var src = 0;
  uint32_t reg = 0;
  uint64_t value = 0;

  static LitmusOp Load(uint32_t reg, Var src) {
    LitmusOp op;
    op.kind = Kind::kLoad;
    op.reg = reg;
    op.src = src;
    return op;
  }
  static LitmusOp StoreConst(Var dst, uint64_t value) {
    LitmusOp op;
    op.kind = Kind::kStoreConst;
    op.dst = dst;
    op.value = value;
    return op;
  }
  static LitmusOp StoreRegPlus(Var dst, uint32_t reg, uint64_t delta) {
    LitmusOp op;
    op.kind = Kind::kStoreRegPlus;
    op.dst = dst;
    op.reg = reg;
    op.value = delta;
    return op;
  }
  static LitmusOp InsertConst(Var dst, uint64_t value) {
    LitmusOp op;
    op.kind = Kind::kInsertConst;
    op.dst = dst;
    op.value = value;
    return op;
  }
  static LitmusOp Delete(Var dst) {
    LitmusOp op;
    op.kind = Kind::kDelete;
    op.dst = dst;
    return op;
  }
};

/// One litmus transaction: a short program run by one coordinator.
struct LitmusTxn {
  std::string name;
  std::vector<LitmusOp> ops;
};

/// A litmus test: initial variable values (absent = not preloaded), the
/// concurrent transactions, and a human-readable description.
struct LitmusSpec {
  std::string name;
  std::string checks;  // e.g. "direct-write cycles (Figure 5a)"
  std::vector<std::optional<uint64_t>> initial;  // indexed by Var
  std::vector<LitmusTxn> txns;
};

/// The three basic litmus tests of Figure 5 plus variants.
LitmusSpec Litmus1();          // direct-write cycles: T1/T2 write {X,Y}
LitmusSpec Litmus1Inserts();   // litmus 1 with inserts instead of writes
LitmusSpec Litmus1Deletes();   // litmus 1 where T2 deletes {X,Y}
LitmusSpec Litmus2();          // read-write cycles
LitmusSpec Litmus3();          // indirect-write cycles (+ read-only T3/T4)
LitmusSpec Litmus3AbortLogging();  // aborted-but-logged txns (C2 bugs)
LitmusSpec Litmus1PartialOverlap();  // log-without-lock corner case
LitmusSpec Litmus1LockRelease();     // complicit-abort corner case
LitmusSpec CompoundLitmus();   // stretched/combined variant (§5 "Compound")
LitmusSpec LitmusSingle();     // one solo txn: crash-point coverage probe

/// Online-reconfiguration litmus: read-modify-write counters over four
/// variables, every one a lost-update detector. Raced against a live
/// memory-node join/drain (HarnessConfig::reconfig), a correct cutover
/// must preserve every committed increment; the deliberately naive
/// cutover (epoch fence off) drops updates committed — and skips objects
/// locked — during the bulk copy, which this spec turns into checker
/// violations. Not part of AllLitmusSpecs(): it needs a standby-equipped
/// deployment.
LitmusSpec LitmusReconfig();

/// All of the above (except LitmusReconfig).
std::vector<LitmusSpec> AllLitmusSpecs();

/// Randomized compound litmus generator (§5 "Compound Tests", generalized
/// into a fuzzer): 2-4 transactions of 2-4 operations over 2-4 variables,
/// mixing loads, constant stores, read-dependent stores, inserts and
/// deletes. Deterministic for a given seed.
LitmusSpec RandomLitmusSpec(uint64_t seed);

}  // namespace litmus
}  // namespace pandora

#endif  // PANDORA_LITMUS_LITMUS_SPEC_H_

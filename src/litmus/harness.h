#ifndef PANDORA_LITMUS_HARNESS_H_
#define PANDORA_LITMUS_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "litmus/checker.h"
#include "litmus/litmus_spec.h"
#include "rdma/network_model.h"
#include "recovery/recovery_manager.h"
#include "txn/txn_config.h"

namespace pandora {
namespace litmus {

/// Litmus-run configuration: which protocol (and which injected bugs) to
/// validate, and how hard to shake it.
struct HarnessConfig {
  txn::TxnConfig txn;
  /// Iterations per litmus spec. Each iteration runs the spec's
  /// transactions concurrently on separate compute servers against fresh
  /// keys.
  int iterations = 100;
  uint64_t seed = 1;
  /// Probability (percent) that an iteration crashes one transaction's
  /// compute server at a random protocol point (§5 "we randomly inject
  /// crashes after any operation").
  uint32_t crash_percent = 60;
  /// Each transaction slot executes its program this many times in
  /// sequence per iteration. Repeat runs widen the window for bugs whose
  /// manifestation needs a *completed* earlier transaction of the same
  /// coordinator (e.g. an aborted-but-still-logged one) plus a later
  /// crash.
  int runs_per_txn = 2;
  uint32_t memory_nodes = 3;
  uint32_t replication = 2;
  rdma::NetworkConfig net;  // Zero-latency by default: litmus tests
                            // exercise semantics, not timing.
  recovery::FdConfig fd;
};

/// Result of running one litmus spec.
struct LitmusReport {
  std::string spec_name;
  int iterations = 0;
  int crashes_injected = 0;
  int violations = 0;
  /// Iterations whose final state could not be observed because the
  /// observer itself kept getting fenced by failure-detector false
  /// positives (possible when the host CPU starves heartbeats). Says
  /// nothing about serializability; reported separately.
  int inconclusive = 0;
  int committed = 0;
  int aborted = 0;
  int unknown = 0;
  /// First few violation explanations, for diagnosis.
  std::vector<std::string> failures;

  bool passed() const { return violations == 0; }
};

/// End-to-end litmus executor: deploys a fresh simulated DKVS per spec,
/// runs the spec's transactions concurrently with randomized crash
/// injection, drives detection + recovery, reads the application-
/// observable final state, and validates it with the subset-serializability
/// checker.
class LitmusHarness {
 public:
  explicit LitmusHarness(const HarnessConfig& config) : config_(config) {}

  LitmusReport Run(const LitmusSpec& spec);

  /// Runs every spec in AllLitmusSpecs(); stops early per spec only on
  /// unrecoverable harness errors, never on violations (they are counted).
  std::vector<LitmusReport> RunAll();

 private:
  HarnessConfig config_;
};

}  // namespace litmus
}  // namespace pandora

#endif  // PANDORA_LITMUS_HARNESS_H_

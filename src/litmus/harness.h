#ifndef PANDORA_LITMUS_HARNESS_H_
#define PANDORA_LITMUS_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/reconfig.h"
#include "litmus/checker.h"
#include "litmus/litmus_spec.h"
#include "litmus/schedule.h"
#include "rdma/network_model.h"
#include "recovery/recovery_manager.h"
#include "txn/txn_config.h"

namespace pandora {
namespace litmus {

/// Litmus-run configuration: which protocol (and which injected bugs) to
/// validate, and how hard to shake it.
struct HarnessConfig {
  txn::TxnConfig txn;
  /// Iteration budget per litmus spec. Each iteration runs the spec's
  /// transactions concurrently on separate compute servers against fresh
  /// keys. Under kExhaustive this caps the number of enumerated schedules
  /// (profiling iteration included). Under kVerbExhaustive it is a
  /// per-phase budget: the crash-point enumeration and the verb-order
  /// exploration each get this many iterations, per explored run count.
  int iterations = 100;
  uint64_t seed = 1;
  /// kRandom only: probability (percent) that an iteration crashes one
  /// transaction's compute server at a random protocol point (§5 "we
  /// randomly inject crashes after any operation").
  uint32_t crash_percent = 60;
  /// Each transaction slot executes its program this many times in
  /// sequence per iteration. Repeat runs widen the window for bugs whose
  /// manifestation needs a *completed* earlier transaction of the same
  /// coordinator (e.g. an aborted-but-still-logged one) plus a later
  /// crash.
  int runs_per_txn = 2;
  uint32_t memory_nodes = 3;
  uint32_t replication = 2;
  rdma::NetworkConfig net;  // Zero-latency by default: litmus tests
                            // exercise semantics, not timing.
  recovery::FdConfig fd;

  /// How crash schedules are chosen (see SchedulePolicy).
  SchedulePolicy schedule = SchedulePolicy::kRandom;
  /// kReplay: the schedule to re-execute, exactly once.
  CrashSchedule replay;
  /// Stop the run once this many violations were found (0 = never stop
  /// early). Bug-hunt tests set 1: a single confirmed violation proves the
  /// bug is caught.
  int stop_after_violations = 0;
  /// kExhaustive: additionally enumerate compound schedules chaining each
  /// coordinator crash with a recovery-coordinator death mid-recovery...
  bool compound_rc_fault = false;
  /// ...and with a memory-node failure after the coordinator crash.
  bool compound_memory_kill = false;
  /// Replay budget of the delta-debugging minimizer that shrinks a
  /// violating schedule to a minimal reproducer (0 disables shrinking).
  int minimize_budget = 12;
  /// Online reconfiguration raced against the iterations (kNone = off).
  /// The cluster gets one standby memory server; kJoin live-joins it while
  /// the spec's transactions run, kDrain first joins it quietly and then
  /// races the planned drain. kExhaustive additionally enumerates one
  /// schedule per ReconfigCrashPoint (plus a join-target kill), proving
  /// the rollback / roll-forward rule at every point of the migration.
  ReconfigKind reconfig = ReconfigKind::kNone;
  /// kExhaustive: also enumerate coordinator crash *pairs* — two slots
  /// dying at different points of the same iteration — bounded to the
  /// contested window (both crashes at points where locks can be held).
  bool crash_pairs = false;
};

/// Result of running one litmus spec.
struct LitmusReport {
  std::string spec_name;
  int iterations = 0;
  int crashes_injected = 0;
  int violations = 0;
  /// Iterations whose final state could not be observed because the
  /// observer itself kept getting fenced by failure-detector false
  /// positives (possible when the host CPU starves heartbeats). Says
  /// nothing about serializability; reported separately.
  int inconclusive = 0;
  int committed = 0;
  int aborted = 0;
  int unknown = 0;
  /// First few violation explanations (with minimal reproducers), for
  /// diagnosis.
  std::vector<std::string> failures;

  /// Schedules the exploration planned (kExhaustive) or sampled (kRandom).
  int schedules_planned = 0;
  /// Planned schedules whose enumeration overflowed the iteration budget.
  int schedules_skipped = 0;
  /// Iterations where an armed crash directive never fired (the profiled
  /// execution diverged); the schedule proved nothing.
  int schedule_noops = 0;
  /// Lockstep rendezvous phases broken by the timed fallback.
  int sync_timeouts = 0;
  /// Recovery-coordinator deaths injected by compound schedules.
  int rc_faults_injected = 0;
  /// Memory-node failures injected by compound schedules.
  int memory_kills_injected = 0;
  /// Sum of TxnStats::bug_injections over all litmus coordinators: how
  /// often the enabled BugFlags actually deviated from the fixed protocol.
  uint64_t bug_injections = 0;
  /// Set when the harness itself is unsound for this configuration — e.g.
  /// bug flags were enabled but never exercised (injection no-op), so a
  /// clean run proves nothing.
  std::string harness_error;
  /// Replayable executed schedule of each violating iteration, parseable
  /// by CrashSchedule::Parse (aligned with `violation_explanations`).
  std::vector<std::string> violation_traces;
  /// Checker/audit explanation of each violation, without the iteration
  /// prefix (stable across replays of the same schedule).
  std::vector<std::string> violation_explanations;
  /// Per crash point: times visited / times a scheduled crash fired there
  /// (indexed by CrashPoint).
  std::vector<int> point_visits = std::vector<int>(txn::kNumCrashPoints, 0);
  std::vector<int> point_crashes =
      std::vector<int>(txn::kNumCrashPoints, 0);

  /// --- kVerbExhaustive only --------------------------------------------
  /// Size of the largest contested-verb window a recording iteration
  /// captured (verbs by >=2 slots against the same word cluster).
  int verb_window = 0;
  /// Enforced verb orders actually executed.
  int verb_orders_explored = 0;
  /// Candidate orders dropped as duplicates of an already-enqueued order
  /// (the DPOR equivalence pruning).
  int verb_orders_pruned = 0;
  /// Verb-level kills (node death between posting a verb and the verb
  /// landing) that fired.
  int verb_kills_injected = 0;
  /// Enforced orders that turned out unrealizable (a hold timed out and
  /// the iteration degraded to free-running).
  int verb_schedules_diverged = 0;

  /// --- Online reconfiguration (schedules with reconfig != kNone) --------
  /// Migrations raced against an iteration's transactions.
  int reconfigs_run = 0;
  /// Scheduled migration-driver crashes that actually fired.
  int reconfig_crashes_injected = 0;
  /// Migrations that rolled back to the old ring (injected crash before
  /// the cutover publish, or a mid-copy failure).
  int reconfig_rollbacks = 0;
  /// Join-target deaths injected during the bulk-copy window.
  int reconfig_kills_injected = 0;
  /// Per migration crash point: times the driver consulted the injector
  /// there / times a scheduled crash fired there (indexed by
  /// cluster::ReconfigCrashPoint).
  std::vector<int> reconfig_point_visits =
      std::vector<int>(cluster::kNumReconfigCrashPoints, 0);
  std::vector<int> reconfig_point_crashes =
      std::vector<int>(cluster::kNumReconfigCrashPoints, 0);

  /// One line per visited crash point: "name visits/crashes".
  std::string CoverageSummary() const;

  bool passed() const { return violations == 0 && harness_error.empty(); }
};

/// End-to-end litmus executor: deploys a fresh simulated DKVS per spec,
/// runs the spec's transactions concurrently under a crash-schedule policy
/// (randomized sampling, exhaustive lockstep enumeration, or replay of a
/// recorded trace), drives detection + recovery, reads the application-
/// observable final state, and validates it with the subset-serializability
/// checker. Violating iterations are shrunk to minimal reproducers.
class LitmusHarness {
 public:
  explicit LitmusHarness(const HarnessConfig& config) : config_(config) {}

  LitmusReport Run(const LitmusSpec& spec);

  /// Runs every spec in AllLitmusSpecs(); stops early per spec only on
  /// unrecoverable harness errors, never on violations (they are counted).
  std::vector<LitmusReport> RunAll();

 private:
  HarnessConfig config_;
};

}  // namespace litmus
}  // namespace pandora

#endif  // PANDORA_LITMUS_HARNESS_H_

#ifndef PANDORA_LITMUS_SCHEDULE_H_
#define PANDORA_LITMUS_SCHEDULE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "txn/crash_hook.h"

namespace pandora {
namespace litmus {

/// How the harness chooses crash schedules.
enum class SchedulePolicy {
  /// Legacy sampler: each iteration crashes one random transaction at a
  /// random global crash-point occurrence with probability crash_percent.
  kRandom,
  /// Bounded model checking: a lockstep profiling iteration records every
  /// reachable (slot, run, point, occurrence) tuple, then one schedule per
  /// tuple is executed — optionally chained with a recovery-coordinator
  /// death or a memory-node failure (compound schedules).
  kExhaustive,
  /// Re-executes exactly one recorded schedule (HarnessConfig::replay).
  kReplay,
};

/// How concurrent transaction slots are interleaved within an iteration.
enum class SyncMode {
  /// Threads free-run (timing-dependent interleavings).
  kFree,
  /// Every transaction rendezvouses at every crash point: all slots reach
  /// their next protocol step before any proceeds. This deterministically
  /// produces the maximally-racy interleaving (all lock CASes together,
  /// all validations before any apply) that random timing only rarely
  /// hits.
  kLockstep,
};

/// One planned coordinator crash.
struct CrashDirective {
  int slot = 0;  // transaction slot (thread) to kill
  int run = 0;   // which repeat of the slot's program
  txn::CrashPoint point = txn::CrashPoint::kBeforeLock;
  int occurrence = 1;  // 1-based visit count of `point` within `run`
  /// Random-policy arming: fire at the Nth point hit overall instead of a
  /// precise (run, point, occurrence). Resolved to a precise directive in
  /// the executed trace.
  bool any_point = false;
  int global_occurrence = 0;
};

/// A complete, replayable crash schedule for one litmus iteration.
struct CrashSchedule {
  SyncMode sync = SyncMode::kFree;
  std::vector<CrashDirective> crashes;
  /// Chain: kill the recovery coordinator once, mid-recovery of the
  /// crashed transaction's node (it is then restarted and re-runs).
  bool rc_fault = false;
  /// Chain: fail this memory node (index, -1 = none) right after the
  /// coordinator crash, so recovery runs against a degraded replica set.
  int kill_memory_node = -1;

  bool empty() const {
    return crashes.empty() && !rc_fault && kill_memory_node < 0;
  }

  /// Serializes to a single-line replayable trace, e.g.
  ///   "sync=lockstep crash=0:1:AfterAbort:1 rc_fault=1 kill_mem=2".
  std::string ToString() const;
  /// Parses ToString() output. Returns false on malformed input.
  static bool Parse(const std::string& text, CrashSchedule* out);
};

/// Rendezvous barrier for SyncMode::kLockstep. Each participant calls
/// Arrive() from its crash-point observer; the call blocks until every
/// other active participant is also waiting (or has retired), then the
/// whole phase is released together. A timed fallback breaks the barrier
/// when a participant is blocked outside a crash point (recovery gates,
/// conflict stalls), so lockstep can never deadlock the harness — it only
/// degrades to free-running for that phase.
class LockstepController {
 public:
  explicit LockstepController(int participants,
                              uint64_t timeout_us = 250'000)
      : active_(participants), timeout_us_(timeout_us) {}

  /// Blocks until the current phase is released. Returns false if the
  /// wait timed out (phase released by fallback).
  bool Arrive();

  /// The participant will hit no more crash points (program finished or
  /// coordinator crashed).
  void Retire();

  int timeouts() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_;
  int waiting_ = 0;
  uint64_t phase_ = 0;
  int timeouts_ = 0;
  const uint64_t timeout_us_;
};

}  // namespace litmus
}  // namespace pandora

#endif  // PANDORA_LITMUS_SCHEDULE_H_

#ifndef PANDORA_LITMUS_SCHEDULE_H_
#define PANDORA_LITMUS_SCHEDULE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "rdma/fabric.h"
#include "rdma/verb_schedule.h"
#include "txn/crash_hook.h"

namespace pandora {
namespace litmus {

/// How the harness chooses crash schedules.
enum class SchedulePolicy {
  /// Legacy sampler: each iteration crashes one random transaction at a
  /// random global crash-point occurrence with probability crash_percent.
  kRandom,
  /// Bounded model checking: a lockstep profiling iteration records every
  /// reachable (slot, run, point, occurrence) tuple, then one schedule per
  /// tuple is executed — optionally chained with a recovery-coordinator
  /// death or a memory-node failure (compound schedules).
  kExhaustive,
  /// Re-executes exactly one recorded schedule (HarnessConfig::replay).
  kReplay,
  /// Verb-level bounded model checking: on top of the crash-point
  /// exhaustive pass, a recording iteration captures the stream of
  /// one-sided verbs each slot issues against contested memory words,
  /// then alternative release orders of that racing window are enforced
  /// through a fabric verb-schedule hook (bounded DPOR: only verbs
  /// touching the same word are reordered; equivalent orders are pruned).
  /// Verb-level kills — the issuing node dies between posting a verb and
  /// the verb landing — are also explored. Spec run counts are tried
  /// automatically (1 and the configured runs_per_txn).
  kVerbExhaustive,
};

/// How concurrent transaction slots are interleaved within an iteration.
enum class SyncMode {
  /// Threads free-run (timing-dependent interleavings).
  kFree,
  /// Every transaction rendezvouses at every crash point: all slots reach
  /// their next protocol step before any proceeds. This deterministically
  /// produces the maximally-racy interleaving (all lock CASes together,
  /// all validations before any apply) that random timing only rarely
  /// hits.
  kLockstep,
};

/// One planned coordinator crash.
struct CrashDirective {
  int slot = 0;  // transaction slot (thread) to kill
  int run = 0;   // which repeat of the slot's program
  txn::CrashPoint point = txn::CrashPoint::kBeforeLock;
  int occurrence = 1;  // 1-based visit count of `point` within `run`
  /// Random-policy arming: fire at the Nth point hit overall instead of a
  /// precise (run, point, occurrence). Resolved to a precise directive in
  /// the executed trace.
  bool any_point = false;
  int global_occurrence = 0;
};

/// Names one one-sided verb in a litmus iteration, independent of wall
/// time: the `access`-th mutating verb (WRITE/CAS/FAA — reads are never
/// constrained) that transaction slot `slot`, during its `run`-th program
/// repeat, issues against litmus variable `unit`'s word cluster. The
/// harness maps each variable to its remote offset range per iteration,
/// and offsets are identical across replicas, so one unit covers every
/// replica copy of the word. The naming is stable across executions of
/// the same spec, which is what makes verb orders replayable.
struct VerbToken {
  int slot = 0;
  int run = 0;
  int unit = 0;
  int access = 0;

  bool operator==(const VerbToken& other) const {
    return slot == other.slot && run == other.run && unit == other.unit &&
           access == other.access;
  }
};

/// "slot.run.unit.access" (dot-separated so it nests inside the
/// comma-separated vorder= trace token).
std::string VerbTokenToString(const VerbToken& token);
bool VerbTokenFromString(const std::string& text, VerbToken* out);

/// Which online reconfiguration (if any) races the iteration's
/// transactions: a live memory-node join of the standby, or a planned
/// drain of a previously joined node.
enum class ReconfigKind { kNone, kJoin, kDrain };

/// A complete, replayable crash schedule for one litmus iteration.
struct CrashSchedule {
  SyncMode sync = SyncMode::kFree;
  /// Program repeats per slot of the iteration that produced this trace
  /// (0 = unspecified, use the harness config). Recorded so a replay runs
  /// the same number of repeats as the exploration that found the
  /// violation — kVerbExhaustive tries run counts the config does not
  /// name.
  int runs = 0;
  std::vector<CrashDirective> crashes;
  /// Chain: kill the recovery coordinator once, mid-recovery of the
  /// crashed transaction's node (it is then restarted and re-runs).
  bool rc_fault = false;
  /// Chain: fail this memory node (index, -1 = none) right after the
  /// coordinator crash, so recovery runs against a degraded replica set.
  int kill_memory_node = -1;
  /// Enforced apply order for the racing verb window: each listed verb is
  /// held at the fabric until every earlier listed verb has landed.
  /// Unlisted verbs run unconstrained.
  std::vector<VerbToken> verb_order;
  /// Verb-level kill: this verb's issuing node halts after posting but
  /// before the verb lands (the verb is dropped). The kill waits for
  /// verb_order to finish applying first.
  bool has_verb_kill = false;
  VerbToken verb_kill;
  /// Online reconfiguration racing the transactions (kJoin / kDrain).
  ReconfigKind reconfig = ReconfigKind::kNone;
  /// Crash the migration driver at this ReconfigCrashPoint (index into
  /// cluster::ReconfigCrashPoint, -1 = run the migration to completion).
  int reconfig_crash = -1;
  /// Teeth check: disable the placement-epoch fence on BOTH sides (the
  /// migration cutover quiesce and the coordinators' TxnConfig), running
  /// the deliberately naive cutover the checker must catch.
  bool reconfig_fence_off = false;
  /// Chain: kill the joining/draining memory node itself mid-migration
  /// (bulk-copy window), forcing the rollback path.
  bool reconfig_kill_target = false;
  /// Transient (never serialized): install a recording hook so the
  /// executed trace captures the applied mutating-verb stream.
  bool record_verbs = false;

  bool empty() const {
    return crashes.empty() && !rc_fault && kill_memory_node < 0 &&
           verb_order.empty() && !has_verb_kill && !record_verbs &&
           reconfig == ReconfigKind::kNone;
  }

  /// Serializes to a single-line replayable trace, e.g.
  ///   "sync=lockstep crash=0:1:AfterAbort:1 rc_fault=1 kill_mem=2"
  ///   "sync=free vorder=0.0.0.0,1.0.0.0,1.0.0.1 vkill=2.0.0.1".
  std::string ToString() const;
  /// Parses ToString() output. Returns false on malformed input.
  static bool Parse(const std::string& text, CrashSchedule* out);
};

/// Rendezvous barrier for SyncMode::kLockstep. Each participant calls
/// Arrive() from its crash-point observer; the call blocks until every
/// other active participant is also waiting (or has retired), then the
/// whole phase is released together. A timed fallback breaks the barrier
/// when a participant is blocked outside a crash point (recovery gates,
/// conflict stalls), so lockstep can never deadlock the harness — it only
/// degrades to free-running for that phase.
class LockstepController {
 public:
  explicit LockstepController(int participants,
                              uint64_t timeout_us = 250'000)
      : active_(participants), timeout_us_(timeout_us) {}

  /// Blocks until the current phase is released. Returns false if the
  /// wait timed out (phase released by fallback).
  bool Arrive();

  /// The participant will hit no more crash points (program finished or
  /// coordinator crashed).
  void Retire();

  int timeouts() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_;
  int waiting_ = 0;
  uint64_t phase_ = 0;
  int timeouts_ = 0;
  const uint64_t timeout_us_;
};

/// Fabric verb-schedule hook that records and/or enforces VerbToken
/// orders for one litmus iteration.
///
/// Mapping: a verb maps to a token when its source node is a transaction
/// slot, its rkey is one of the table-data regions, its offset falls in a
/// litmus variable's word cluster, and it mutates memory (reads always
/// pass). Access indices count per (slot, run, unit), so the mapping is
/// deterministic across executions of the same spec.
///
/// Enforcement: a verb whose token appears in `order` is held — its
/// issuing thread parks in a fiber-aware sleep loop, so sibling fibers on
/// the same worker keep running — until every earlier token has landed.
/// The kill token (if any) additionally waits for the whole order, then
/// halts its source node and drops the verb. If an enforced order turns
/// out unrealizable (the program never issues a held-for verb), a hold
/// timeout marks the controller diverged and releases everything, so a
/// bad candidate order degrades to a free-run instead of wedging the
/// harness.
class VerbOrderController : public rdma::VerbScheduleHook {
 public:
  struct Options {
    rdma::Fabric* fabric = nullptr;
    /// slot -> compute NodeId running that slot's coordinator.
    std::vector<rdma::NodeId> slot_nodes;
    /// Table-data region rkeys on every memory node (replicas included).
    std::vector<rdma::RKey> data_rkeys;
    /// unit -> [lo, hi) remote offset range of that variable's words.
    /// Offsets are replica-invariant, so one range covers all copies.
    std::vector<std::pair<uint64_t, uint64_t>> unit_ranges;
    std::vector<VerbToken> order;
    bool has_kill = false;
    VerbToken kill;
    uint64_t hold_timeout_us = 50'000;
  };

  explicit VerbOrderController(Options options);

  /// Slot threads announce each program repeat before executing it.
  void BeginRun(int slot, int run);

  bool OnVerbIssue(const rdma::VerbDesc& desc) override;
  void OnVerbApplied(const rdma::VerbDesc& desc) override;

  /// Marks the controller diverged, releasing every held verb. Call
  /// before uninstalling the hook so no verb stays parked.
  void ReleaseAll();

  /// True when a hold timed out (the enforced order was unrealizable).
  bool diverged() const;
  /// Slot whose verb-kill fired, or -1.
  int killed_slot() const;
  /// Number of verbs that were held at least once.
  int holds() const;
  /// Applied mutating-token stream, in land order (capped).
  std::vector<VerbToken> applied() const;

 private:
  /// Maps a verb to its token, assigning the access index. Returns false
  /// when the verb is unconstrained (wrong source/region/offset or a
  /// read).
  bool MapToken(const rdma::VerbDesc& desc, int* slot, VerbToken* token);

  const Options opts_;
  mutable std::mutex mu_;
  std::vector<int> current_run_;  // slot -> active run
  std::map<std::tuple<int, int, int>, int> access_counts_;
  std::vector<std::pair<bool, VerbToken>> pending_;  // slot -> issued token
  size_t cursor_ = 0;  // next order_ entry allowed to land
  bool diverged_ = false;
  int killed_slot_ = -1;
  int holds_ = 0;
  std::vector<VerbToken> applied_;
};

}  // namespace litmus
}  // namespace pandora

#endif  // PANDORA_LITMUS_SCHEDULE_H_

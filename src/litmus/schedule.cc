#include "litmus/schedule.h"

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "cluster/reconfig.h"
#include "common/clock.h"

namespace pandora {
namespace litmus {

namespace {

const char* SyncModeName(SyncMode sync) {
  return sync == SyncMode::kLockstep ? "lockstep" : "free";
}

// strtol wrapper: full-string decimal parse, no exceptions.
bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

std::string VerbTokenToString(const VerbToken& token) {
  std::ostringstream out;
  out << token.slot << "." << token.run << "." << token.unit << "."
      << token.access;
  return out.str();
}

bool VerbTokenFromString(const std::string& text, VerbToken* out) {
  std::istringstream fields(text);
  std::string slot_s, run_s, unit_s, access_s;
  if (!std::getline(fields, slot_s, '.') ||
      !std::getline(fields, run_s, '.') ||
      !std::getline(fields, unit_s, '.') ||
      !std::getline(fields, access_s)) {
    return false;
  }
  VerbToken token;
  if (!ParseInt(slot_s, &token.slot) || !ParseInt(run_s, &token.run) ||
      !ParseInt(unit_s, &token.unit) ||
      !ParseInt(access_s, &token.access)) {
    return false;
  }
  *out = token;
  return true;
}

std::string CrashSchedule::ToString() const {
  std::ostringstream out;
  out << "sync=" << SyncModeName(sync);
  if (runs > 0) out << " runs=" << runs;
  for (const CrashDirective& crash : crashes) {
    out << " crash=" << crash.slot << ":" << crash.run << ":";
    if (crash.any_point) {
      out << "any:" << crash.global_occurrence;
    } else {
      out << txn::CrashPointName(crash.point) << ":" << crash.occurrence;
    }
  }
  if (rc_fault) out << " rc_fault=1";
  if (kill_memory_node >= 0) out << " kill_mem=" << kill_memory_node;
  if (!verb_order.empty()) {
    out << " vorder=";
    for (size_t i = 0; i < verb_order.size(); ++i) {
      if (i > 0) out << ",";
      out << VerbTokenToString(verb_order[i]);
    }
  }
  if (has_verb_kill) out << " vkill=" << VerbTokenToString(verb_kill);
  if (reconfig != ReconfigKind::kNone) {
    out << " reconfig="
        << (reconfig == ReconfigKind::kJoin ? "join" : "drain");
    if (reconfig_crash >= 0) {
      out << " reconfig_crash="
          << cluster::ReconfigCrashPointName(
                 static_cast<cluster::ReconfigCrashPoint>(reconfig_crash));
    }
    if (reconfig_fence_off) out << " reconfig_fence=0";
    if (reconfig_kill_target) out << " reconfig_kill_target=1";
  }
  return out.str();
}

bool CrashSchedule::Parse(const std::string& text, CrashSchedule* out) {
  CrashSchedule parsed;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "sync") {
      if (value == "lockstep") {
        parsed.sync = SyncMode::kLockstep;
      } else if (value == "free") {
        parsed.sync = SyncMode::kFree;
      } else {
        return false;
      }
    } else if (key == "crash") {
      // slot:run:point:occurrence
      std::istringstream fields(value);
      std::string slot_s, run_s, point_s, occ_s;
      if (!std::getline(fields, slot_s, ':') ||
          !std::getline(fields, run_s, ':') ||
          !std::getline(fields, point_s, ':') ||
          !std::getline(fields, occ_s)) {
        return false;
      }
      CrashDirective crash;
      if (!ParseInt(slot_s, &crash.slot) || !ParseInt(run_s, &crash.run)) {
        return false;
      }
      if (point_s == "any") {
        crash.any_point = true;
        if (!ParseInt(occ_s, &crash.global_occurrence)) return false;
      } else {
        if (!txn::CrashPointFromName(point_s, &crash.point)) return false;
        if (!ParseInt(occ_s, &crash.occurrence)) return false;
      }
      parsed.crashes.push_back(crash);
    } else if (key == "runs") {
      if (!ParseInt(value, &parsed.runs) || parsed.runs <= 0) return false;
    } else if (key == "rc_fault") {
      parsed.rc_fault = (value == "1");
    } else if (key == "kill_mem") {
      if (!ParseInt(value, &parsed.kill_memory_node)) return false;
    } else if (key == "vorder") {
      std::istringstream entries(value);
      std::string entry;
      while (std::getline(entries, entry, ',')) {
        VerbToken verb;
        if (!VerbTokenFromString(entry, &verb)) return false;
        parsed.verb_order.push_back(verb);
      }
      if (parsed.verb_order.empty()) return false;
    } else if (key == "vkill") {
      if (!VerbTokenFromString(value, &parsed.verb_kill)) return false;
      parsed.has_verb_kill = true;
    } else if (key == "reconfig") {
      if (value == "join") {
        parsed.reconfig = ReconfigKind::kJoin;
      } else if (value == "drain") {
        parsed.reconfig = ReconfigKind::kDrain;
      } else {
        return false;
      }
    } else if (key == "reconfig_crash") {
      cluster::ReconfigCrashPoint point;
      if (!cluster::ReconfigCrashPointFromName(value.c_str(), &point)) {
        return false;
      }
      parsed.reconfig_crash = static_cast<int>(point);
    } else if (key == "reconfig_fence") {
      parsed.reconfig_fence_off = (value == "0");
    } else if (key == "reconfig_kill_target") {
      parsed.reconfig_kill_target = (value == "1");
    } else {
      return false;
    }
  }
  *out = parsed;
  return true;
}

bool LockstepController::Arrive() {
  std::unique_lock<std::mutex> lock(mu_);
  if (active_ <= 1) return true;  // Nobody to rendezvous with.
  const uint64_t my_phase = phase_;
  ++waiting_;
  if (waiting_ >= active_) {
    waiting_ = 0;
    ++phase_;
    cv_.notify_all();
    return true;
  }
  const bool released = cv_.wait_for(
      lock, std::chrono::microseconds(timeout_us_),
      [&] { return phase_ != my_phase; });
  if (!released) {
    // A peer is blocked outside a crash point (gate, stall). Break the
    // barrier for everyone so the iteration keeps making progress.
    ++timeouts_;
    waiting_ = 0;
    ++phase_;
    cv_.notify_all();
  }
  return released;
}

void LockstepController::Retire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) --active_;
  if (active_ > 0 && waiting_ >= active_) {
    waiting_ = 0;
    ++phase_;
  }
  cv_.notify_all();
}

int LockstepController::timeouts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeouts_;
}

namespace {
// Applied-stream capture bound: litmus windows are tiny (a handful of
// contested words, a few accesses each); 64 tokens is several times the
// largest window any spec produces.
constexpr size_t kAppliedTokenCap = 64;
}  // namespace

VerbOrderController::VerbOrderController(Options options)
    : opts_(std::move(options)),
      current_run_(opts_.slot_nodes.size(), 0),
      pending_(opts_.slot_nodes.size(), {false, VerbToken{}}) {}

void VerbOrderController::BeginRun(int slot, int run) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= 0 && static_cast<size_t>(slot) < current_run_.size()) {
    current_run_[static_cast<size_t>(slot)] = run;
  }
}

bool VerbOrderController::MapToken(const rdma::VerbDesc& desc, int* slot,
                                   VerbToken* token) {
  // Caller holds mu_.
  if (!rdma::VerbMutates(desc.kind)) return false;
  int s = -1;
  for (size_t i = 0; i < opts_.slot_nodes.size(); ++i) {
    if (opts_.slot_nodes[i] == desc.src) {
      s = static_cast<int>(i);
      break;
    }
  }
  if (s < 0) return false;
  bool data_region = false;
  for (const rdma::RKey rkey : opts_.data_rkeys) {
    if (rkey == desc.rkey) {
      data_region = true;
      break;
    }
  }
  if (!data_region) return false;
  int unit = -1;
  for (size_t u = 0; u < opts_.unit_ranges.size(); ++u) {
    if (desc.offset >= opts_.unit_ranges[u].first &&
        desc.offset < opts_.unit_ranges[u].second) {
      unit = static_cast<int>(u);
      break;
    }
  }
  if (unit < 0) return false;
  const int run = current_run_[static_cast<size_t>(s)];
  const int access = access_counts_[std::make_tuple(s, run, unit)]++;
  token->slot = s;
  token->run = run;
  token->unit = unit;
  token->access = access;
  *slot = s;
  return true;
}

bool VerbOrderController::OnVerbIssue(const rdma::VerbDesc& desc) {
  VerbToken token;
  int slot = -1;
  bool is_kill = false;
  bool in_order = false;
  size_t position = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!MapToken(desc, &slot, &token)) return true;
    pending_[static_cast<size_t>(slot)] = {true, token};
    is_kill = opts_.has_kill && token == opts_.kill;
    if (!is_kill) {
      for (size_t i = 0; i < opts_.order.size(); ++i) {
        if (opts_.order[i] == token) {
          in_order = true;
          position = i;
          break;
        }
      }
    }
  }
  if (in_order || is_kill) {
    // The kill fires only once the whole enforced window has landed; an
    // ordered verb waits for its predecessors. The park is fiber-aware:
    // sibling fibers on the same worker keep running while we hold.
    const size_t wait_until = is_kill ? opts_.order.size() : position;
    const uint64_t deadline = NowNanos() + opts_.hold_timeout_us * 1000;
    bool counted_hold = false;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (diverged_ || cursor_ >= wait_until) break;
        if (!counted_hold) {
          counted_hold = true;
          ++holds_;
        }
      }
      if (NowNanos() > deadline) {
        // Unrealizable order (a predecessor verb is never issued):
        // degrade to free-running rather than wedge the iteration.
        ReleaseAll();
        break;
      }
      SleepForMicros(20);
    }
  }
  if (is_kill) {
    // Halt first so the drop is indistinguishable from the node dying
    // mid-verb (the QP re-checks liveness and fails with "halted").
    if (opts_.fabric != nullptr) opts_.fabric->HaltNode(desc.src);
    std::lock_guard<std::mutex> lock(mu_);
    killed_slot_ = slot;
    pending_[static_cast<size_t>(slot)].first = false;
    return false;
  }
  return true;
}

void VerbOrderController::OnVerbApplied(const rdma::VerbDesc& desc) {
  std::lock_guard<std::mutex> lock(mu_);
  int slot = -1;
  for (size_t i = 0; i < opts_.slot_nodes.size(); ++i) {
    if (opts_.slot_nodes[i] == desc.src) {
      slot = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0 || !pending_[static_cast<size_t>(slot)].first) return;
  const VerbToken token = pending_[static_cast<size_t>(slot)].second;
  pending_[static_cast<size_t>(slot)].first = false;
  if (applied_.size() < kAppliedTokenCap) applied_.push_back(token);
  if (cursor_ < opts_.order.size() && opts_.order[cursor_] == token) {
    ++cursor_;
  }
}

void VerbOrderController::ReleaseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!opts_.order.empty() && cursor_ < opts_.order.size()) {
    diverged_ = true;
  }
  cursor_ = opts_.order.size();
}

bool VerbOrderController::diverged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return diverged_;
}

int VerbOrderController::killed_slot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return killed_slot_;
}

int VerbOrderController::holds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return holds_;
}

std::vector<VerbToken> VerbOrderController::applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

}  // namespace litmus
}  // namespace pandora

#include "litmus/schedule.h"

#include <chrono>
#include <cstdlib>
#include <sstream>

namespace pandora {
namespace litmus {

namespace {

const char* SyncModeName(SyncMode sync) {
  return sync == SyncMode::kLockstep ? "lockstep" : "free";
}

// strtol wrapper: full-string decimal parse, no exceptions.
bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

std::string CrashSchedule::ToString() const {
  std::ostringstream out;
  out << "sync=" << SyncModeName(sync);
  for (const CrashDirective& crash : crashes) {
    out << " crash=" << crash.slot << ":" << crash.run << ":";
    if (crash.any_point) {
      out << "any:" << crash.global_occurrence;
    } else {
      out << txn::CrashPointName(crash.point) << ":" << crash.occurrence;
    }
  }
  if (rc_fault) out << " rc_fault=1";
  if (kill_memory_node >= 0) out << " kill_mem=" << kill_memory_node;
  return out.str();
}

bool CrashSchedule::Parse(const std::string& text, CrashSchedule* out) {
  CrashSchedule parsed;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "sync") {
      if (value == "lockstep") {
        parsed.sync = SyncMode::kLockstep;
      } else if (value == "free") {
        parsed.sync = SyncMode::kFree;
      } else {
        return false;
      }
    } else if (key == "crash") {
      // slot:run:point:occurrence
      std::istringstream fields(value);
      std::string slot_s, run_s, point_s, occ_s;
      if (!std::getline(fields, slot_s, ':') ||
          !std::getline(fields, run_s, ':') ||
          !std::getline(fields, point_s, ':') ||
          !std::getline(fields, occ_s)) {
        return false;
      }
      CrashDirective crash;
      if (!ParseInt(slot_s, &crash.slot) || !ParseInt(run_s, &crash.run)) {
        return false;
      }
      if (point_s == "any") {
        crash.any_point = true;
        if (!ParseInt(occ_s, &crash.global_occurrence)) return false;
      } else {
        if (!txn::CrashPointFromName(point_s, &crash.point)) return false;
        if (!ParseInt(occ_s, &crash.occurrence)) return false;
      }
      parsed.crashes.push_back(crash);
    } else if (key == "rc_fault") {
      parsed.rc_fault = (value == "1");
    } else if (key == "kill_mem") {
      if (!ParseInt(value, &parsed.kill_memory_node)) return false;
    } else {
      return false;
    }
  }
  *out = parsed;
  return true;
}

bool LockstepController::Arrive() {
  std::unique_lock<std::mutex> lock(mu_);
  if (active_ <= 1) return true;  // Nobody to rendezvous with.
  const uint64_t my_phase = phase_;
  ++waiting_;
  if (waiting_ >= active_) {
    waiting_ = 0;
    ++phase_;
    cv_.notify_all();
    return true;
  }
  const bool released = cv_.wait_for(
      lock, std::chrono::microseconds(timeout_us_),
      [&] { return phase_ != my_phase; });
  if (!released) {
    // A peer is blocked outside a crash point (gate, stall). Break the
    // barrier for everyone so the iteration keeps making progress.
    ++timeouts_;
    waiting_ = 0;
    ++phase_;
    cv_.notify_all();
  }
  return released;
}

void LockstepController::Retire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) --active_;
  if (active_ > 0 && waiting_ >= active_) {
    waiting_ = 0;
    ++phase_;
  }
  cv_.notify_all();
}

int LockstepController::timeouts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeouts_;
}

}  // namespace litmus
}  // namespace pandora

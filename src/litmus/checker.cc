#include "litmus/checker.h"

#include <algorithm>

#include "common/logging.h"

namespace pandora {
namespace litmus {

std::string FormatVarState(const VarState& state) {
  static const char* kNames[] = {"X", "Y", "Z", "W", "V4", "V5", "V6", "V7"};
  std::string out = "{";
  for (size_t i = 0; i < state.size(); ++i) {
    if (i > 0) out += ", ";
    out += i < 8 ? kNames[i] : ("V" + std::to_string(i));
    out += "=";
    out += state[i].has_value() ? std::to_string(*state[i]) : "absent";
  }
  return out + "}";
}

bool SerializabilityChecker::ApplyTxn(const LitmusTxn& txn,
                                      const TxnObservation& observation,
                                      bool check_reads,
                                      VarState* state) const {
  std::optional<uint64_t> regs[4];
  size_t read_index = 0;
  for (const LitmusOp& op : txn.ops) {
    switch (op.kind) {
      case LitmusOp::Kind::kLoad: {
        const std::optional<uint64_t> model_value = (*state)[op.src];
        if (check_reads && read_index < observation.reads.size() &&
            observation.reads[read_index] != model_value) {
          return false;  // Observed read has no place in this order.
        }
        ++read_index;
        regs[op.reg] = model_value;
        break;
      }
      case LitmusOp::Kind::kStoreConst:
      case LitmusOp::Kind::kInsertConst:
        (*state)[op.dst] = op.value;
        break;
      case LitmusOp::Kind::kStoreRegPlus:
        // A load that found the key absent aborts the real transaction
        // before the dependent store; model that as value 0 base (the
        // specs never store through an absent read in committed runs).
        (*state)[op.dst] = regs[op.reg].value_or(0) + op.value;
        break;
      case LitmusOp::Kind::kDelete:
        (*state)[op.dst] = std::nullopt;
        break;
    }
  }
  return true;
}

bool SerializabilityChecker::Check(
    const std::vector<TxnObservation>& observations,
    const VarState& final_state, std::string* explanation) const {
  PANDORA_CHECK(observations.size() == spec_.txns.size());

  // Partition transactions.
  std::vector<size_t> committed;
  std::vector<size_t> unknown;
  for (size_t i = 0; i < observations.size(); ++i) {
    switch (observations[i].outcome) {
      case TxnObservation::Outcome::kCommitted:
        committed.push_back(i);
        break;
      case TxnObservation::Outcome::kUnknown:
        unknown.push_back(i);
        break;
      case TxnObservation::Outcome::kAborted:
        break;
    }
  }

  // Every subset of the unknown transactions may or may not have taken
  // effect (the recovery decision).
  const size_t subsets = 1ull << unknown.size();
  for (size_t mask = 0; mask < subsets; ++mask) {
    std::vector<size_t> included = committed;
    for (size_t u = 0; u < unknown.size(); ++u) {
      if (mask & (1ull << u)) included.push_back(unknown[u]);
    }
    std::sort(included.begin(), included.end());

    // Try every serial order of the included transactions.
    do {
      VarState state = spec_.initial;
      bool order_ok = true;
      for (const size_t t : included) {
        const bool check_reads =
            observations[t].outcome == TxnObservation::Outcome::kCommitted;
        if (!ApplyTxn(spec_.txns[t], observations[t], check_reads,
                      &state)) {
          order_ok = false;
          break;
        }
      }
      if (order_ok && state == final_state) return true;
    } while (std::next_permutation(included.begin(), included.end()));
  }

  if (explanation != nullptr) {
    *explanation = "no serial execution explains final state " +
                   FormatVarState(final_state) + " (committed:";
    for (const size_t t : committed) {
      *explanation += " " + spec_.txns[t].name;
    }
    *explanation += "; unknown:";
    for (const size_t t : unknown) {
      *explanation += " " + spec_.txns[t].name;
    }
    *explanation += ")";
  }
  return false;
}

}  // namespace litmus
}  // namespace pandora

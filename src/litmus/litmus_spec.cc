#include "litmus/litmus_spec.h"

#include "common/random.h"

namespace pandora {
namespace litmus {

namespace {

constexpr Var kX = 0;
constexpr Var kY = 1;
constexpr Var kZ = 2;
constexpr Var kW = 3;

}  // namespace

LitmusSpec Litmus1() {
  // Figure 5(a): T1 writes X=V1, Y=V1; T2 writes X=V2, Y=V2. Any
  // serializable outcome has X == Y.
  LitmusSpec spec;
  spec.name = "litmus-1";
  spec.checks = "direct-write cycles (Figure 5a)";
  spec.initial = {0, 0};
  LitmusTxn t1{"T1",
               {LitmusOp::StoreConst(kX, 1), LitmusOp::StoreConst(kY, 1)}};
  LitmusTxn t2{"T2",
               {LitmusOp::StoreConst(kX, 2), LitmusOp::StoreConst(kY, 2)}};
  // A third writer widens the window for lock-discipline bugs (a lock
  // wrongly released by T2's abort path can then be re-taken by T3 while
  // T1 still holds it logically — the Complicit Aborts manifestation).
  LitmusTxn t3{"T3",
               {LitmusOp::StoreConst(kX, 3), LitmusOp::StoreConst(kY, 3)}};
  spec.txns = {t1, t2, t3};
  return spec;
}

LitmusSpec Litmus1Inserts() {
  // Litmus 1 variant replacing writes with inserts (§5.1 "We also ran
  // variants of this litmus test, replacing writes with inserts and
  // deletes") — the variant that exposed the Missing Actions bug.
  LitmusSpec spec;
  spec.name = "litmus-1-inserts";
  spec.checks = "direct-write cycles with inserts";
  spec.initial = {std::nullopt, std::nullopt};
  LitmusTxn t1{"T1",
               {LitmusOp::InsertConst(kX, 1), LitmusOp::InsertConst(kY, 1)}};
  LitmusTxn t2{"T2",
               {LitmusOp::InsertConst(kX, 2), LitmusOp::InsertConst(kY, 2)}};
  spec.txns = {t1, t2};
  return spec;
}

LitmusSpec Litmus1Deletes() {
  LitmusSpec spec;
  spec.name = "litmus-1-deletes";
  spec.checks = "direct-write cycles with deletes";
  spec.initial = {7, 7};
  LitmusTxn t1{"T1",
               {LitmusOp::StoreConst(kX, 1), LitmusOp::StoreConst(kY, 1)}};
  LitmusTxn t2{"T2", {LitmusOp::Delete(kX), LitmusOp::Delete(kY)}};
  spec.txns = {t1, t2};
  return spec;
}

LitmusSpec Litmus2() {
  // Figure 5(b): T1 reads X and writes Y=x+1; T2 reads Y and writes
  // X=y+1. The both-read-old outcome (X=1, Y=1) is not serializable.
  LitmusSpec spec;
  spec.name = "litmus-2";
  spec.checks = "read-write cycles (Figure 5b)";
  spec.initial = {0, 0};
  LitmusTxn t1{"T1",
               {LitmusOp::Load(0, kX), LitmusOp::StoreRegPlus(kY, 0, 1)}};
  LitmusTxn t2{"T2",
               {LitmusOp::Load(0, kY), LitmusOp::StoreRegPlus(kX, 0, 1)}};
  spec.txns = {t1, t2};
  return spec;
}

LitmusSpec Litmus3() {
  // Figure 5(c): T1: x=X; X=x+1; Y=x+1. T2: x=X; X=x+1; Z=x+1. T3/T4 are
  // read-only observers; any observation must fit some serial order
  // (which implies X >= Y and X >= Z at every serial point).
  LitmusSpec spec;
  spec.name = "litmus-3";
  spec.checks = "indirect-write cycles (Figure 5c)";
  spec.initial = {0, 0, 0};
  LitmusTxn t1{"T1",
               {LitmusOp::Load(0, kX), LitmusOp::StoreRegPlus(kX, 0, 1),
                LitmusOp::StoreRegPlus(kY, 0, 1)}};
  LitmusTxn t2{"T2",
               {LitmusOp::Load(0, kX), LitmusOp::StoreRegPlus(kX, 0, 1),
                LitmusOp::StoreRegPlus(kZ, 0, 1)}};
  LitmusTxn t3{"T3", {LitmusOp::Load(0, kX), LitmusOp::Load(1, kY)}};
  LitmusTxn t4{"T4", {LitmusOp::Load(0, kX), LitmusOp::Load(1, kZ)}};
  spec.txns = {t1, t2, t3, t4};
  return spec;
}

LitmusSpec CompoundLitmus() {
  // A stretched combination of litmus 1 and 3 over four variables (§5
  // "Compound Tests": basic tests stretched/combined).
  LitmusSpec spec;
  spec.name = "compound";
  spec.checks = "combined direct/indirect cycles over 4 variables";
  spec.initial = {0, 0, 0, 0};
  LitmusTxn t1{"T1",
               {LitmusOp::Load(0, kX), LitmusOp::StoreRegPlus(kX, 0, 1),
                LitmusOp::StoreRegPlus(kY, 0, 1),
                LitmusOp::StoreConst(kW, 1)}};
  LitmusTxn t2{"T2",
               {LitmusOp::Load(0, kX), LitmusOp::StoreRegPlus(kX, 0, 1),
                LitmusOp::StoreRegPlus(kZ, 0, 1),
                LitmusOp::StoreConst(kW, 2)}};
  LitmusTxn t3{"T3",
               {LitmusOp::Load(0, kY), LitmusOp::Load(1, kZ)}};
  spec.txns = {t1, t2, t3};
  return spec;
}

LitmusSpec Litmus3AbortLogging() {
  // Targets the C2 logging bugs (Lost Decision / Logging without locking):
  // T1 locks-and-logs Y and Z, then conflicts on X and aborts; T2 commits
  // X and Y afterwards. If T1's logs survive the abort (or name objects it
  // never locked), a later crash of T1's server makes recovery "roll back"
  // T2's committed updates.
  LitmusSpec spec;
  spec.name = "litmus-3-abort-logging";
  spec.checks = "indirect-write cycles via aborted-but-logged txns";
  spec.initial = {0, 0, 0};
  LitmusTxn t1{"T1",
               {LitmusOp::StoreConst(kY, 1), LitmusOp::StoreConst(kZ, 1),
                LitmusOp::StoreConst(kX, 1)}};
  LitmusTxn t2{"T2",
               {LitmusOp::StoreConst(kX, 2), LitmusOp::StoreConst(kY, 2)}};
  spec.txns = {t1, t2};
  return spec;
}

LitmusSpec Litmus1PartialOverlap() {
  // Direct-write test where the transactions overlap on only one
  // variable. T1 locks-and-logs Y first; if its log for Z is written
  // before Z's lock is taken (the Logging-without-locking corner case), a
  // crash in between leaves a log entry for an object T2 is free to
  // commit — which a buggy recovery then "rolls back".
  LitmusSpec spec;
  spec.name = "litmus-1-partial-overlap";
  spec.checks = "direct-write with partial write-set overlap";
  spec.initial = {0, 0, 0};
  LitmusTxn t1{"T1",
               {LitmusOp::StoreConst(kY, 1), LitmusOp::StoreConst(kZ, 1)}};
  LitmusTxn t2{"T2", {LitmusOp::StoreConst(kZ, 2)}};
  spec.txns = {t1, t2};
  return spec;
}

LitmusSpec Litmus1LockRelease() {
  // Write-only transactions with a single contended variable. T2's abort
  // path is the trigger: with the Complicit Aborts bug it releases X's
  // lock even though it never acquired it, letting T3 lock X while T1
  // still holds it logically — two writers applying under "the same" lock
  // diverge X's replicas.
  LitmusSpec spec;
  spec.name = "litmus-1-lock-release";
  spec.checks = "direct-write cycles via abort-path lock release";
  spec.initial = {0, 0};
  LitmusTxn t1{"T1",
               {LitmusOp::StoreConst(kX, 1), LitmusOp::StoreConst(kY, 1)}};
  LitmusTxn t2{"T2", {LitmusOp::StoreConst(kX, 2)}};
  LitmusTxn t3{"T3", {LitmusOp::StoreConst(kX, 3)}};
  spec.txns = {t1, t2, t3};
  return spec;
}

LitmusSpec RandomLitmusSpec(uint64_t seed) {
  Random rng(seed * 2654435761ULL + 17);
  LitmusSpec spec;
  spec.name = "fuzz-" + std::to_string(seed);
  spec.checks = "randomized compound cycles";

  const uint32_t num_vars = 2 + static_cast<uint32_t>(rng.Uniform(3));
  spec.initial.resize(num_vars);
  for (Var v = 0; v < num_vars; ++v) {
    // Most variables preloaded; some absent (exercises inserts).
    spec.initial[v] = rng.PercentTrue(80)
                          ? std::optional<uint64_t>(rng.Uniform(5))
                          : std::nullopt;
  }

  const uint32_t num_txns = 2 + static_cast<uint32_t>(rng.Uniform(3));
  uint64_t next_const = 10;  // Distinct constants aid the checker.
  for (uint32_t t = 0; t < num_txns; ++t) {
    LitmusTxn txn;
    txn.name = "F" + std::to_string(t + 1);
    bool loaded[4] = {false, false, false, false};
    const uint32_t num_ops = 2 + static_cast<uint32_t>(rng.Uniform(3));
    for (uint32_t o = 0; o < num_ops; ++o) {
      const Var var = static_cast<Var>(rng.Uniform(num_vars));
      switch (rng.Uniform(5)) {
        case 0:
          txn.ops.push_back(LitmusOp::Load(o % 2, var));
          loaded[o % 2] = true;
          break;
        case 1:
          txn.ops.push_back(LitmusOp::StoreConst(var, next_const++));
          break;
        case 2:
          if (loaded[0]) {
            txn.ops.push_back(LitmusOp::StoreRegPlus(var, 0, 1));
          } else {
            txn.ops.push_back(LitmusOp::Load(0, var));
            loaded[0] = true;
          }
          break;
        case 3:
          txn.ops.push_back(LitmusOp::InsertConst(var, next_const++));
          break;
        default:
          txn.ops.push_back(LitmusOp::Delete(var));
          break;
      }
    }
    spec.txns.push_back(std::move(txn));
  }
  return spec;
}

LitmusSpec LitmusSingle() {
  // One uncontended transaction: reads Y, writes X. Not a race test — it
  // exists so the schedule explorer can enumerate a crash at every
  // reachable protocol point of a solo commit (execution, logging,
  // validation, apply, unlock) and prove recovery handles each one.
  LitmusSpec spec;
  spec.name = "litmus-single";
  spec.checks = "solo-commit crash-point coverage";
  spec.initial = {0, 0};
  LitmusTxn t1{"T1", {LitmusOp::Load(0, kY), LitmusOp::StoreConst(kX, 1)}};
  spec.txns = {t1};
  return spec;
}

LitmusSpec LitmusReconfig() {
  // Counters with distinct initial values: T1 increments X then Y, T2
  // increments Z then W, T3 increments Y then Z — contended on Y and Z,
  // solo on X and W. Any committed increment a cutover loses (or any
  // preloaded object the bulk copy skips while locked) breaks every
  // serial order and is flagged by the checker.
  LitmusSpec spec;
  spec.name = "litmus-reconfig";
  spec.checks = "lost updates across an online-reconfiguration cutover";
  spec.initial = {10, 20, 30, 40};
  LitmusTxn t1{"T1",
               {LitmusOp::Load(0, kX), LitmusOp::StoreRegPlus(kX, 0, 1),
                LitmusOp::Load(1, kY), LitmusOp::StoreRegPlus(kY, 1, 1)}};
  LitmusTxn t2{"T2",
               {LitmusOp::Load(0, kZ), LitmusOp::StoreRegPlus(kZ, 0, 1),
                LitmusOp::Load(1, kW), LitmusOp::StoreRegPlus(kW, 1, 1)}};
  LitmusTxn t3{"T3",
               {LitmusOp::Load(0, kY), LitmusOp::StoreRegPlus(kY, 0, 1),
                LitmusOp::Load(1, kZ), LitmusOp::StoreRegPlus(kZ, 1, 1)}};
  spec.txns = {t1, t2, t3};
  return spec;
}

std::vector<LitmusSpec> AllLitmusSpecs() {
  return {Litmus1(),           Litmus1Inserts(), Litmus1Deletes(),
          Litmus2(),           Litmus3(),        Litmus3AbortLogging(),
          Litmus1PartialOverlap(),               Litmus1LockRelease(),
          CompoundLitmus(),                      LitmusSingle()};
}

}  // namespace litmus
}  // namespace pandora

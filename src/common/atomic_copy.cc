#include "common/atomic_copy.h"

#include <atomic>
#include <cassert>
#include <cstring>

namespace pandora {

namespace {

std::atomic<uint64_t>* AsAtomic(void* p) {
  assert(reinterpret_cast<uintptr_t>(p) % 8 == 0);
  return reinterpret_cast<std::atomic<uint64_t>*>(p);
}

const std::atomic<uint64_t>* AsAtomic(const void* p) {
  assert(reinterpret_cast<uintptr_t>(p) % 8 == 0);
  return reinterpret_cast<const std::atomic<uint64_t>*>(p);
}

}  // namespace

void AtomicCopyFromRegion(void* dst, const void* region_src, size_t size) {
  assert(size % 8 == 0);
  const std::atomic<uint64_t>* src = AsAtomic(region_src);
  uint64_t* out = static_cast<uint64_t*>(dst);
  for (size_t i = 0; i < size / 8; ++i) {
    out[i] = src[i].load(std::memory_order_relaxed);
  }
}

void AtomicCopyToRegion(void* region_dst, const void* src, size_t size) {
  assert(size % 8 == 0);
  std::atomic<uint64_t>* dst = AsAtomic(region_dst);
  const uint64_t* in = static_cast<const uint64_t*>(src);
  for (size_t i = 0; i < size / 8; ++i) {
    dst[i].store(in[i], std::memory_order_relaxed);
  }
}

uint64_t AtomicLoad64(const void* region_addr) {
  return AsAtomic(region_addr)->load(std::memory_order_acquire);
}

void AtomicStore64(void* region_addr, uint64_t value) {
  AsAtomic(region_addr)->store(value, std::memory_order_release);
}

bool AtomicCas64(void* region_addr, uint64_t expected, uint64_t desired,
                 uint64_t* observed) {
  uint64_t exp = expected;
  const bool ok = AsAtomic(region_addr)
                      ->compare_exchange_strong(exp, desired,
                                                std::memory_order_acq_rel);
  if (observed != nullptr) *observed = ok ? expected : exp;
  return ok;
}

uint64_t AtomicFetchAdd64(void* region_addr, uint64_t delta) {
  return AsAtomic(region_addr)->fetch_add(delta, std::memory_order_acq_rel);
}

}  // namespace pandora

#ifndef PANDORA_COMMON_CLOCK_H_
#define PANDORA_COMMON_CLOCK_H_

#include <cstdint>

namespace pandora {

/// Monotonic wall-clock nanoseconds. All latency accounting in the simulated
/// fabric and the benchmarks uses this clock.
uint64_t NowNanos();

/// Monotonic microseconds, for coarse-grained reporting.
uint64_t NowMicros();

/// Waits until NowNanos() >= deadline_ns. Inside a fiber (see
/// common/fiber.h) the wait suspends the fiber so another in-flight
/// transaction can use the core; otherwise, for short waits (< ~50 us,
/// i.e. simulated RDMA round trips) this spins, and for longer waits it
/// yields to the OS scheduler so multiplexed logical coordinators don't
/// starve each other on a small core count. Either way the caller
/// observes at least the requested wall-time delay.
void SpinUntilNanos(uint64_t deadline_ns);

/// Convenience: wait for `delay_ns` nanoseconds from now.
void SpinForNanos(uint64_t delay_ns);

/// Sleeps for the given duration — an OS sleep on a plain thread, a fiber
/// suspension inside a fiber. For heartbeat loops, failure-detector
/// timers, and retry backoffs where burning a core would be wrong.
void SleepForMicros(uint64_t micros);

}  // namespace pandora

#endif  // PANDORA_COMMON_CLOCK_H_

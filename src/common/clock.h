#ifndef PANDORA_COMMON_CLOCK_H_
#define PANDORA_COMMON_CLOCK_H_

#include <cstdint>

namespace pandora {

/// Monotonic wall-clock nanoseconds. All latency accounting in the simulated
/// fabric and the benchmarks uses this clock.
uint64_t NowNanos();

/// Monotonic microseconds, for coarse-grained reporting.
uint64_t NowMicros();

/// Busy-waits until NowNanos() >= deadline_ns. For short waits (< ~50 us,
/// i.e. simulated RDMA round trips) this spins; for longer waits it yields
/// to the OS scheduler so multiplexed logical coordinators don't starve
/// each other on a small core count.
void SpinUntilNanos(uint64_t deadline_ns);

/// Convenience: busy-wait for `delay_ns` nanoseconds from now.
void SpinForNanos(uint64_t delay_ns);

/// Sleeps (OS sleep, not spin) for the given duration. For heartbeat loops
/// and failure-detector timers where burning a core would be wrong.
void SleepForMicros(uint64_t micros);

}  // namespace pandora

#endif  // PANDORA_COMMON_CLOCK_H_

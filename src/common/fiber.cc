#include "common/fiber.h"

#include <algorithm>
#include <thread>

#include "common/clock.h"
#include "common/logging.h"

// Sanitizer fiber-switch annotations. Without them ASan sees a switched
// stack as a wild jump (false "stack-use-after-return"/overflow reports)
// and TSan sees impossible happens-before edges between fibers sharing one
// thread. GCC defines __SANITIZE_*__; clang exposes __has_feature.
#if defined(__SANITIZE_ADDRESS__)
#define PANDORA_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__)
#define PANDORA_TSAN_FIBERS 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PANDORA_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define PANDORA_TSAN_FIBERS 1
#endif
#endif

#if defined(PANDORA_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(PANDORA_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace pandora {

namespace {

thread_local FiberScheduler* tl_active_scheduler = nullptr;

// Raw spin used by the scheduler itself when no fiber is runnable. Must
// bypass the fiber wait hook in clock.cc (the scheduler is not a fiber);
// same spin/yield policy as the blocking SpinUntilNanos.
void IdleSpinUntilNanos(uint64_t deadline_ns) {
  constexpr uint64_t kSpinThresholdNs = 20'000;
  uint64_t now = NowNanos();
  while (now < deadline_ns) {
    if (deadline_ns - now > kSpinThresholdNs) {
      std::this_thread::yield();
    }
    now = NowNanos();
  }
}

}  // namespace

struct FiberScheduler::Fiber {
  std::function<void()> body;
  FiberScheduler* scheduler = nullptr;
  ucontext_t context;
  std::unique_ptr<char[]> stack;
  uint64_t ready_at_ns = 0;  // Runnable once NowNanos() >= this.
  uint64_t seq = 0;          // FIFO tie-break among equal deadlines.
  /// Wall instant the fiber last became runnable: max(deadline, yield
  /// time). Resume lag is measured from here, so a wait posted with an
  /// already-passed deadline is not charged for time before it yielded.
  /// 0 until the first suspension (first runs carry no lag).
  uint64_t runnable_from_ns = 0;
  bool done = false;
  void* fake_stack = nullptr;  // ASan fake-stack handle across suspension.
  void* tsan_fiber = nullptr;
};

FiberScheduler::FiberScheduler(size_t stack_bytes)
    : FiberScheduler(Options{stack_bytes, 0, 0}) {}

FiberScheduler::FiberScheduler(const Options& options) : options_(options) {}

FiberScheduler::~FiberScheduler() {
  PANDORA_CHECK(current_ == nullptr);
  for (auto& fiber : fibers_) {
    // Fibers must run to completion: destroying a suspended fiber would
    // leak whatever its stack owns.
    PANDORA_CHECK(fiber->done);
#if defined(PANDORA_TSAN_FIBERS)
    if (fiber->tsan_fiber != nullptr) __tsan_destroy_fiber(fiber->tsan_fiber);
#endif
  }
}

FiberScheduler* FiberScheduler::Active() { return tl_active_scheduler; }

void FiberScheduler::Trampoline(unsigned int hi, unsigned int lo) {
  auto* fiber = reinterpret_cast<Fiber*>(
      (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo));
  FiberScheduler* scheduler = fiber->scheduler;
  scheduler->FinishSwitchIntoFiber(fiber);
  fiber->body();
  fiber->done = true;
  scheduler->SwitchOut(fiber);
  PANDORA_CHECK(false);  // A done fiber is never resumed.
}

void FiberScheduler::Spawn(std::function<void()> body) {
  PANDORA_CHECK(current_ == nullptr);
  auto fiber = std::make_unique<Fiber>();
  fiber->body = std::move(body);
  fiber->scheduler = this;
  fiber->stack = std::make_unique<char[]>(options_.stack_bytes);
  fiber->seq = ++next_seq_;
  PANDORA_CHECK(getcontext(&fiber->context) == 0);
  fiber->context.uc_stack.ss_sp = fiber->stack.get();
  fiber->context.uc_stack.ss_size = options_.stack_bytes;
  fiber->context.uc_link = nullptr;  // Fibers exit via SwitchOut, never fall off.
  const uintptr_t addr = reinterpret_cast<uintptr_t>(fiber.get());
  makecontext(&fiber->context, reinterpret_cast<void (*)()>(&Trampoline), 2,
              static_cast<unsigned int>(addr >> 32),
              static_cast<unsigned int>(addr & 0xffffffffu));
#if defined(PANDORA_TSAN_FIBERS)
  fiber->tsan_fiber = __tsan_create_fiber(0);
#endif
  PushReady(fiber.get());
  fibers_.push_back(std::move(fiber));
}

// Strict-weak "resumes later than" on (deadline, yield seq): the heap
// comparator that makes ready_ a min-heap dispatching earliest deadline
// first with FIFO tie-break — exactly the order the old O(n) linear scan
// produced, now in O(log n).
bool FiberScheduler::ResumesAfter(const Fiber* a, const Fiber* b) {
  return a->ready_at_ns > b->ready_at_ns ||
         (a->ready_at_ns == b->ready_at_ns && a->seq > b->seq);
}

FiberScheduler::Fiber* FiberScheduler::PickNext() {
  if (ready_.empty()) return nullptr;
  std::pop_heap(ready_.begin(), ready_.end(), &ResumesAfter);
  Fiber* next = ready_.back();
  ready_.pop_back();
  return next;
}

void FiberScheduler::PushReady(Fiber* fiber) {
  ready_.push_back(fiber);
  std::push_heap(ready_.begin(), ready_.end(), &ResumesAfter);
}

void FiberScheduler::MaybeYieldOsThread(uint64_t now_ns) {
  if (options_.os_yield_every_ns == 0) return;
  if (last_os_yield_ns_ == 0) {
    last_os_yield_ns_ = now_ns;
    return;
  }
  if (now_ns - last_os_yield_ns_ < options_.os_yield_every_ns) return;
  std::this_thread::yield();
  stats_.os_yields++;
  last_os_yield_ns_ = NowNanos();
}

void FiberScheduler::Run() {
  PANDORA_CHECK(tl_active_scheduler == nullptr);
  tl_active_scheduler = this;
#if defined(PANDORA_TSAN_FIBERS)
  main_tsan_fiber_ = __tsan_get_current_fiber();
#endif
  while (Fiber* next = PickNext()) {
    uint64_t now = NowNanos();
    if (next->ready_at_ns > now) {
      // Nothing runnable: this is the only wall time a wait still costs.
      stats_.idle_ns += next->ready_at_ns - now;
      IdleSpinUntilNanos(next->ready_at_ns);
      now = next->ready_at_ns;
    }
    MaybeYieldOsThread(now);
    if (next->runnable_from_ns != 0) {
      stats_.resumes++;
      if (now > next->runnable_from_ns) {
        const uint64_t lag = now - next->runnable_from_ns;
        if (lag > stats_.max_resume_lag_ns) stats_.max_resume_lag_ns = lag;
        if (options_.lag_budget_ns != 0 && lag > options_.lag_budget_ns) {
          stats_.lag_budget_overruns++;
        }
      }
    }
    SwitchIn(next);
    if (next->done) next->stack.reset();  // Stack is dead; free it early.
  }
  tl_active_scheduler = nullptr;
}

void FiberScheduler::WaitUntilNanos(uint64_t deadline_ns) {
  stats_.yields++;
  const uint64_t now = NowNanos();
  if (deadline_ns > now) stats_.wait_ns += deadline_ns - now;
  SuspendCurrent(deadline_ns);
  // The scheduler resumes a fiber only once its deadline has passed, so
  // NowNanos() >= deadline_ns here — the simulated wait fully elapsed.
}

bool FiberScheduler::PaceAdmission() {
  Fiber* fiber = current_;
  PANDORA_CHECK(fiber != nullptr);
  if (options_.lag_budget_ns == 0 || ready_.empty()) return false;
  const uint64_t now = NowNanos();
  const Fiber* oldest = ready_.front();
  // First runs (runnable_from_ns == 0) and not-yet-due fibers carry no
  // lag; the scheduler is keeping up.
  if (oldest->runnable_from_ns == 0 || oldest->runnable_from_ns >= now) {
    return false;
  }
  if (now - oldest->runnable_from_ns <= options_.lag_budget_ns) return false;
  // The scheduler is behind on already-admitted work: donate this fiber's
  // slice to the backlog instead of starting another transaction. EDF
  // dispatches the overdue fibers first; this fiber re-enters the queue
  // behind a short quantum.
  stats_.paced_admissions++;
  const uint64_t quantum = std::max<uint64_t>(options_.lag_budget_ns / 2, 1000);
  SuspendCurrent(now + quantum);
  return true;
}

void FiberScheduler::SuspendCurrent(uint64_t deadline_ns) {
  Fiber* fiber = current_;
  PANDORA_CHECK(fiber != nullptr);
  fiber->ready_at_ns = deadline_ns;
  fiber->runnable_from_ns = std::max(deadline_ns, NowNanos());
  fiber->seq = ++next_seq_;
  PushReady(fiber);
  SwitchOut(fiber);
}

void FiberScheduler::SwitchIn(Fiber* fiber) {
#if defined(PANDORA_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&main_fake_stack_, fiber->stack.get(),
                                 options_.stack_bytes);
#endif
#if defined(PANDORA_TSAN_FIBERS)
  __tsan_switch_to_fiber(fiber->tsan_fiber, 0);
#endif
  current_ = fiber;
  PANDORA_CHECK(swapcontext(&main_context_, &fiber->context) == 0);
  current_ = nullptr;
#if defined(PANDORA_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(main_fake_stack_, nullptr, nullptr);
#endif
}

void FiberScheduler::SwitchOut(Fiber* fiber) {
#if defined(PANDORA_ASAN_FIBERS)
  // A dying fiber hands ASan a null save slot so its fake stack is freed.
  __sanitizer_start_switch_fiber(fiber->done ? nullptr : &fiber->fake_stack,
                                 main_stack_bottom_, main_stack_size_);
#endif
#if defined(PANDORA_TSAN_FIBERS)
  __tsan_switch_to_fiber(main_tsan_fiber_, 0);
#endif
  PANDORA_CHECK(swapcontext(&fiber->context, &main_context_) == 0);
  // Resumed by a later SwitchIn.
  FinishSwitchIntoFiber(fiber);
}

void FiberScheduler::FinishSwitchIntoFiber(Fiber* fiber) {
#if defined(PANDORA_ASAN_FIBERS)
  // On first entry fake_stack is null; bottom/size capture the scheduler
  // context's stack so SwitchOut can name it as the switch target.
  __sanitizer_finish_switch_fiber(fiber->fake_stack, &main_stack_bottom_,
                                  &main_stack_size_);
#else
  (void)fiber;
#endif
}

}  // namespace pandora

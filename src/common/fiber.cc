#include "common/fiber.h"

#include <thread>

#include "common/clock.h"
#include "common/logging.h"

// Sanitizer fiber-switch annotations. Without them ASan sees a switched
// stack as a wild jump (false "stack-use-after-return"/overflow reports)
// and TSan sees impossible happens-before edges between fibers sharing one
// thread. GCC defines __SANITIZE_*__; clang exposes __has_feature.
#if defined(__SANITIZE_ADDRESS__)
#define PANDORA_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__)
#define PANDORA_TSAN_FIBERS 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PANDORA_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define PANDORA_TSAN_FIBERS 1
#endif
#endif

#if defined(PANDORA_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(PANDORA_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace pandora {

namespace {

thread_local FiberScheduler* tl_active_scheduler = nullptr;

// Raw spin used by the scheduler itself when no fiber is runnable. Must
// bypass the fiber wait hook in clock.cc (the scheduler is not a fiber);
// same spin/yield policy as the blocking SpinUntilNanos.
void IdleSpinUntilNanos(uint64_t deadline_ns) {
  constexpr uint64_t kSpinThresholdNs = 20'000;
  uint64_t now = NowNanos();
  while (now < deadline_ns) {
    if (deadline_ns - now > kSpinThresholdNs) {
      std::this_thread::yield();
    }
    now = NowNanos();
  }
}

}  // namespace

struct FiberScheduler::Fiber {
  std::function<void()> body;
  FiberScheduler* scheduler = nullptr;
  ucontext_t context;
  std::unique_ptr<char[]> stack;
  uint64_t ready_at_ns = 0;  // Runnable once NowNanos() >= this.
  uint64_t seq = 0;          // FIFO tie-break among equal deadlines.
  bool done = false;
  void* fake_stack = nullptr;  // ASan fake-stack handle across suspension.
  void* tsan_fiber = nullptr;
};

FiberScheduler::FiberScheduler(size_t stack_bytes)
    : stack_bytes_(stack_bytes) {}

FiberScheduler::~FiberScheduler() {
  PANDORA_CHECK(current_ == nullptr);
  for (auto& fiber : fibers_) {
    // Fibers must run to completion: destroying a suspended fiber would
    // leak whatever its stack owns.
    PANDORA_CHECK(fiber->done);
#if defined(PANDORA_TSAN_FIBERS)
    if (fiber->tsan_fiber != nullptr) __tsan_destroy_fiber(fiber->tsan_fiber);
#endif
  }
}

FiberScheduler* FiberScheduler::Active() { return tl_active_scheduler; }

void FiberScheduler::Trampoline(unsigned int hi, unsigned int lo) {
  auto* fiber = reinterpret_cast<Fiber*>(
      (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo));
  FiberScheduler* scheduler = fiber->scheduler;
  scheduler->FinishSwitchIntoFiber(fiber);
  fiber->body();
  fiber->done = true;
  scheduler->SwitchOut(fiber);
  PANDORA_CHECK(false);  // A done fiber is never resumed.
}

void FiberScheduler::Spawn(std::function<void()> body) {
  PANDORA_CHECK(current_ == nullptr);
  auto fiber = std::make_unique<Fiber>();
  fiber->body = std::move(body);
  fiber->scheduler = this;
  fiber->stack = std::make_unique<char[]>(stack_bytes_);
  fiber->seq = ++next_seq_;
  PANDORA_CHECK(getcontext(&fiber->context) == 0);
  fiber->context.uc_stack.ss_sp = fiber->stack.get();
  fiber->context.uc_stack.ss_size = stack_bytes_;
  fiber->context.uc_link = nullptr;  // Fibers exit via SwitchOut, never fall off.
  const uintptr_t addr = reinterpret_cast<uintptr_t>(fiber.get());
  makecontext(&fiber->context, reinterpret_cast<void (*)()>(&Trampoline), 2,
              static_cast<unsigned int>(addr >> 32),
              static_cast<unsigned int>(addr & 0xffffffffu));
#if defined(PANDORA_TSAN_FIBERS)
  fiber->tsan_fiber = __tsan_create_fiber(0);
#endif
  fibers_.push_back(std::move(fiber));
}

FiberScheduler::Fiber* FiberScheduler::PickNext() {
  Fiber* best = nullptr;
  for (const auto& fiber : fibers_) {
    if (fiber->done) continue;
    if (best == nullptr || fiber->ready_at_ns < best->ready_at_ns ||
        (fiber->ready_at_ns == best->ready_at_ns &&
         fiber->seq < best->seq)) {
      best = fiber.get();
    }
  }
  return best;
}

void FiberScheduler::Run() {
  PANDORA_CHECK(tl_active_scheduler == nullptr);
  tl_active_scheduler = this;
#if defined(PANDORA_TSAN_FIBERS)
  main_tsan_fiber_ = __tsan_get_current_fiber();
#endif
  while (Fiber* next = PickNext()) {
    const uint64_t now = NowNanos();
    if (next->ready_at_ns > now) {
      // Nothing runnable: this is the only wall time a wait still costs.
      stats_.idle_ns += next->ready_at_ns - now;
      IdleSpinUntilNanos(next->ready_at_ns);
    }
    SwitchIn(next);
    if (next->done) next->stack.reset();  // Stack is dead; free it early.
  }
  tl_active_scheduler = nullptr;
}

void FiberScheduler::WaitUntilNanos(uint64_t deadline_ns) {
  Fiber* fiber = current_;
  PANDORA_CHECK(fiber != nullptr);
  stats_.yields++;
  const uint64_t now = NowNanos();
  if (deadline_ns > now) stats_.wait_ns += deadline_ns - now;
  fiber->ready_at_ns = deadline_ns;
  fiber->seq = ++next_seq_;
  SwitchOut(fiber);
  // The scheduler resumes a fiber only once its deadline has passed, so
  // NowNanos() >= deadline_ns here — the simulated wait fully elapsed.
}

void FiberScheduler::SwitchIn(Fiber* fiber) {
#if defined(PANDORA_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&main_fake_stack_, fiber->stack.get(),
                                 stack_bytes_);
#endif
#if defined(PANDORA_TSAN_FIBERS)
  __tsan_switch_to_fiber(fiber->tsan_fiber, 0);
#endif
  current_ = fiber;
  PANDORA_CHECK(swapcontext(&main_context_, &fiber->context) == 0);
  current_ = nullptr;
#if defined(PANDORA_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(main_fake_stack_, nullptr, nullptr);
#endif
}

void FiberScheduler::SwitchOut(Fiber* fiber) {
#if defined(PANDORA_ASAN_FIBERS)
  // A dying fiber hands ASan a null save slot so its fake stack is freed.
  __sanitizer_start_switch_fiber(fiber->done ? nullptr : &fiber->fake_stack,
                                 main_stack_bottom_, main_stack_size_);
#endif
#if defined(PANDORA_TSAN_FIBERS)
  __tsan_switch_to_fiber(main_tsan_fiber_, 0);
#endif
  PANDORA_CHECK(swapcontext(&fiber->context, &main_context_) == 0);
  // Resumed by a later SwitchIn.
  FinishSwitchIntoFiber(fiber);
}

void FiberScheduler::FinishSwitchIntoFiber(Fiber* fiber) {
#if defined(PANDORA_ASAN_FIBERS)
  // On first entry fake_stack is null; bottom/size capture the scheduler
  // context's stack so SwitchOut can name it as the switch target.
  __sanitizer_finish_switch_fiber(fiber->fake_stack, &main_stack_bottom_,
                                  &main_stack_size_);
#else
  (void)fiber;
#endif
}

}  // namespace pandora

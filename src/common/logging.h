#ifndef PANDORA_COMMON_LOGGING_H_
#define PANDORA_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pandora {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

namespace log_internal {

std::atomic<int>& MinLevel();
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal

/// Sets the global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);

}  // namespace pandora

#define PANDORA_LOG_ENABLED(level)                                      \
  (static_cast<int>(::pandora::LogLevel::level) >=                      \
   ::pandora::log_internal::MinLevel().load(std::memory_order_relaxed))

#define PANDORA_LOG(level)                                              \
  if (!PANDORA_LOG_ENABLED(level)) {                                    \
  } else                                                                \
    ::pandora::log_internal::LogMessage(::pandora::LogLevel::level,     \
                                        __FILE__, __LINE__)             \
        .stream()

/// Invariant check that stays on in release builds; prints and aborts on
/// violation. Protocol-correctness checks use this rather than assert() so
/// the litmus framework catches violations in optimized runs too.
#define PANDORA_CHECK(cond)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "PANDORA_CHECK failed at %s:%d: %s\n",      \
                   __FILE__, __LINE__, #cond);                         \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#endif  // PANDORA_COMMON_LOGGING_H_

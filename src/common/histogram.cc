#include "common/histogram.h"

#include <algorithm>

namespace pandora {

int LatencyHistogram::BucketFor(uint64_t nanos) {
  // Values below kSubBuckets are exact (one bucket per value).
  if (nanos < kSubBuckets) return static_cast<int>(nanos);
  const int octave = 63 - __builtin_clzll(nanos);
  // The kSubBucketShift bits below the leading bit select the sub-bucket.
  const int sub = static_cast<int>(
      (nanos >> (octave - kSubBucketShift)) & (kSubBuckets - 1));
  const int bucket = octave * kSubBuckets + sub;
  return std::min(bucket, kBuckets - 1);
}

uint64_t LatencyHistogram::BucketLowerBound(int bucket) {
  const int octave = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  if (octave < kSubBucketShift) return static_cast<uint64_t>(bucket);
  return (1ULL << octave) |
         (static_cast<uint64_t>(sub) << (octave - kSubBucketShift));
}

void LatencyHistogram::Record(uint64_t nanos) {
  counts_[BucketFor(nanos)]++;
  total_++;
  sum_ += nanos;
  max_ = std::max(max_, nanos);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

uint64_t LatencyHistogram::PercentileNanos(double p) const {
  if (total_ == 0) return 0;
  const double target = static_cast<double>(total_) * p / 100.0;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    const uint64_t seen_before = seen;
    seen += counts_[b];
    if (static_cast<double>(seen) < target) continue;
    // Interpolate linearly within the bucket: the target rank's offset
    // into this bucket's population maps onto [lower, upper).
    const uint64_t lower = BucketLowerBound(b);
    const uint64_t upper =
        b + 1 < kBuckets ? BucketLowerBound(b + 1) : max_ + 1;
    const double frac =
        (target - static_cast<double>(seen_before)) /
        static_cast<double>(counts_[b]);
    uint64_t value =
        lower + static_cast<uint64_t>(
                    static_cast<double>(upper - lower) *
                    std::min(std::max(frac, 0.0), 1.0));
    // Never report past the recorded maximum (the top bucket is open).
    return std::min(value, max_);
  }
  return max_;
}

}  // namespace pandora

#include "common/histogram.h"

#include <algorithm>

namespace pandora {

int LatencyHistogram::BucketFor(uint64_t nanos) {
  if (nanos < kSubBuckets) return static_cast<int>(nanos);
  const int octave = 63 - __builtin_clzll(nanos);
  // Two bits below the leading bit select the sub-bucket.
  const int sub =
      static_cast<int>((nanos >> (octave - 2)) & (kSubBuckets - 1));
  const int bucket = octave * kSubBuckets + sub;
  return std::min(bucket, kBuckets - 1);
}

uint64_t LatencyHistogram::BucketLowerBound(int bucket) {
  const int octave = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  if (octave == 0) return static_cast<uint64_t>(sub);
  return (1ULL << octave) |
         (static_cast<uint64_t>(sub) << (octave - 2));
}

void LatencyHistogram::Record(uint64_t nanos) {
  counts_[BucketFor(nanos)]++;
  total_++;
  sum_ += nanos;
  max_ = std::max(max_, nanos);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

uint64_t LatencyHistogram::PercentileNanos(double p) const {
  if (total_ == 0) return 0;
  const double target = static_cast<double>(total_) * p / 100.0;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (static_cast<double>(seen) >= target) return BucketLowerBound(b);
  }
  return max_;
}

}  // namespace pandora

#ifndef PANDORA_COMMON_STATUS_H_
#define PANDORA_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace pandora {

/// Error-code result of an operation, in the style of RocksDB/Arrow.
/// The project does not use exceptions; every fallible operation returns a
/// Status (or a Result<T>, see result.h).
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIoError = 4,
    kBusy = 5,            // Object locked by a live transaction.
    kAborted = 6,         // Transaction aborted (validation/lock failure).
    kPermissionDenied = 7,  // RDMA rights revoked (active-link termination).
    kUnavailable = 8,     // Remote node crashed or unreachable.
    kTimedOut = 9,
    kResourceExhausted = 10,
    kInternal = 11,
  };

  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = {}) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = {}) {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg = {}) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IoError(std::string_view msg = {}) {
    return Status(Code::kIoError, msg);
  }
  static Status Busy(std::string_view msg = {}) {
    return Status(Code::kBusy, msg);
  }
  static Status Aborted(std::string_view msg = {}) {
    return Status(Code::kAborted, msg);
  }
  static Status PermissionDenied(std::string_view msg = {}) {
    return Status(Code::kPermissionDenied, msg);
  }
  static Status Unavailable(std::string_view msg = {}) {
    return Status(Code::kUnavailable, msg);
  }
  static Status TimedOut(std::string_view msg = {}) {
    return Status(Code::kTimedOut, msg);
  }
  static Status ResourceExhausted(std::string_view msg = {}) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status Internal(std::string_view msg = {}) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsPermissionDenied() const { return code_ == Code::kPermissionDenied; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string for logs and error reports.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

}  // namespace pandora

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function. Standard early-return plumbing for the no-exceptions
/// error model.
#define PANDORA_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::pandora::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // PANDORA_COMMON_STATUS_H_

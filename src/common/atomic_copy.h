#ifndef PANDORA_COMMON_ATOMIC_COPY_H_
#define PANDORA_COMMON_ATOMIC_COPY_H_

#include <cstddef>
#include <cstdint>

namespace pandora {

/// Word-atomic memory copy primitives.
///
/// The simulated fabric shares address space between "compute" and "memory"
/// nodes, so a plain memcpy racing with a concurrent writer would be a C++
/// data race. Real RDMA reads/writes land in cache-line-sized chunks with no
/// language-level race, and the OCC protocol tolerates *torn values* (a read
/// overlapping a write is caught by version validation). These helpers copy
/// in relaxed 64-bit atomic chunks, giving the same semantics — per-word
/// atomicity, possible whole-object tearing — without undefined behaviour.
///
/// Both `dst`/`src` region pointers must be 8-byte aligned; `size` must be a
/// multiple of 8 (all slot/log layouts are 8-byte aligned and padded).

void AtomicCopyFromRegion(void* dst, const void* region_src, size_t size);
void AtomicCopyToRegion(void* region_dst, const void* src, size_t size);

/// 64-bit atomic accessors on a region word (8-byte aligned).
uint64_t AtomicLoad64(const void* region_addr);
void AtomicStore64(void* region_addr, uint64_t value);
bool AtomicCas64(void* region_addr, uint64_t expected, uint64_t desired,
                 uint64_t* observed);
uint64_t AtomicFetchAdd64(void* region_addr, uint64_t delta);

}  // namespace pandora

#endif  // PANDORA_COMMON_ATOMIC_COPY_H_

#ifndef PANDORA_COMMON_RANDOM_H_
#define PANDORA_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace pandora {

/// Small, fast xorshift128+ PRNG. Deterministic for a given seed; not
/// thread-safe (use one instance per thread / coordinator).
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi);

  /// True with probability `percent`/100.
  bool PercentTrue(uint32_t percent);

  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t s_[2];
};

/// Zipfian key-popularity generator over [0, n), using the rejection-
/// inversion method of Hörmann & Derflinger (as used by YCSB-style
/// generators). theta in (0, 1) controls skew; theta -> 0 is uniform-ish,
/// theta ~0.99 is the classic YCSB hot-spot distribution.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  /// Draws using an external PRNG (for sharing one generator across
  /// coordinator threads, each with its own Random).
  uint64_t Sample(Random* rng) const;

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace pandora

#endif  // PANDORA_COMMON_RANDOM_H_

#include "common/random.h"

#include <cassert>
#include <cmath>

namespace pandora {

namespace {

// SplitMix64, used to expand the user seed into the xorshift state so that
// small consecutive seeds still produce uncorrelated streams.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t state = seed;
  s_[0] = SplitMix64(&state);
  s_[1] = SplitMix64(&state);
  if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
}

uint64_t Random::Next() {
  uint64_t x = s_[0];
  const uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  return Next() % n;
}

uint64_t Random::Range(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

bool Random::PercentTrue(uint32_t percent) {
  return Uniform(100) < percent;
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  const double zeta2 = Zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) const {
  // Exact for small n; sampled approximation for very large n keeps
  // construction O(1M) instead of O(n).
  constexpr uint64_t kExactLimit = 10'000'000;
  if (n <= kExactLimit) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }
  // zeta(n) ~= zeta(m) + integral_{m}^{n} x^-theta dx.
  double sum = 0.0;
  for (uint64_t i = 1; i <= kExactLimit; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  const double m = static_cast<double>(kExactLimit);
  sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
          std::pow(m, 1.0 - theta)) /
         (1.0 - theta);
  return sum;
}

uint64_t ZipfGenerator::Next() { return Sample(&rng_); }

uint64_t ZipfGenerator::Sample(Random* rng) const {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace pandora

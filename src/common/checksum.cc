#include "common/checksum.h"

namespace pandora {

uint64_t Fnv1a64(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Fnv1a64Words(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ULL;
  uint64_t word;
  for (size_t i = 0; i + 8 <= size; i += 8) {
    __builtin_memcpy(&word, p + i, 8);
    hash ^= word;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t HashKey(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace pandora

#ifndef PANDORA_COMMON_CODING_H_
#define PANDORA_COMMON_CODING_H_

#include <cstdint>
#include <cstring>

namespace pandora {

/// Little-endian fixed-width encode/decode helpers for on-"wire"/in-region
/// record framing. memcpy-based so they are safe for unaligned addresses.

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

/// Rounds `n` up to the next multiple of `align` (align must be a power of
/// two). Object slots and log records are 8-byte aligned so header words can
/// be accessed with 64-bit atomics.
inline constexpr uint64_t AlignUp(uint64_t n, uint64_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace pandora

#endif  // PANDORA_COMMON_CODING_H_

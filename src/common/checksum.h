#ifndef PANDORA_COMMON_CHECKSUM_H_
#define PANDORA_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace pandora {

/// 64-bit FNV-1a hash over a byte range. Used to (a) frame log records so
/// the recovery coordinator can detect torn writes from a coordinator that
/// crashed mid-log, and (b) hash keys into hash-table slots.
uint64_t Fnv1a64(const void* data, size_t size);

/// FNV-1a folded over 64-bit words instead of bytes — 8x fewer multiply
/// steps on the commit path. Requires `size % 8 == 0` (trailing bytes of a
/// non-multiple are ignored). Detection granularity is one word, which
/// matches the simulated fabric's word-atomic writes: a torn write can only
/// differ at 8-byte boundaries, and any changed word changes the hash.
uint64_t Fnv1a64Words(const void* data, size_t size);

/// Hash of a 64-bit key (cheap integer mix, SplitMix64 finalizer). Used for
/// slot selection and consistent-hash placement.
uint64_t HashKey(uint64_t key);

}  // namespace pandora

#endif  // PANDORA_COMMON_CHECKSUM_H_

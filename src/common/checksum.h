#ifndef PANDORA_COMMON_CHECKSUM_H_
#define PANDORA_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace pandora {

/// 64-bit FNV-1a hash over a byte range. Used to (a) frame log records so
/// the recovery coordinator can detect torn writes from a coordinator that
/// crashed mid-log, and (b) hash keys into hash-table slots.
uint64_t Fnv1a64(const void* data, size_t size);

/// Hash of a 64-bit key (cheap integer mix, SplitMix64 finalizer). Used for
/// slot selection and consistent-hash placement.
uint64_t HashKey(uint64_t key);

}  // namespace pandora

#endif  // PANDORA_COMMON_CHECKSUM_H_

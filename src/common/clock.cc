#include "common/clock.h"

#include <chrono>
#include <thread>

#include "common/fiber.h"

namespace pandora {

namespace {

using Clock = std::chrono::steady_clock;

const Clock::time_point kEpoch = Clock::now();

}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           kEpoch)
          .count());
}

uint64_t NowMicros() { return NowNanos() / 1000; }

void SpinUntilNanos(uint64_t deadline_ns) {
  // Cooperative wait hook: inside a fiber, suspend it until the deadline
  // and let another in-flight transaction use the core. The scheduler
  // resumes the fiber no earlier than deadline_ns, so callers observe the
  // same elapsed wall time as the blocking spin below.
  FiberScheduler* scheduler = FiberScheduler::Active();
  if (scheduler != nullptr && scheduler->InFiber()) {
    scheduler->WaitUntilNanos(deadline_ns);
    return;
  }
  // Spin for short waits; yield for longer ones. With only a couple of
  // physical cores, pure spinning across many coordinator threads would
  // serialize the whole simulation.
  constexpr uint64_t kSpinThresholdNs = 20'000;
  uint64_t now = NowNanos();
  while (now < deadline_ns) {
    if (deadline_ns - now > kSpinThresholdNs) {
      std::this_thread::yield();
    }
    now = NowNanos();
  }
}

void SpinForNanos(uint64_t delay_ns) {
  SpinUntilNanos(NowNanos() + delay_ns);
}

void SleepForMicros(uint64_t micros) {
  // Same cooperative hook as SpinUntilNanos: a sleeping fiber (stall
  // retry, gate wait, pacing) must not block its whole worker thread.
  FiberScheduler* scheduler = FiberScheduler::Active();
  if (scheduler != nullptr && scheduler->InFiber()) {
    scheduler->WaitUntilNanos(NowNanos() + micros * 1000);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace pandora

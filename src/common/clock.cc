#include "common/clock.h"

#include <chrono>
#include <thread>

namespace pandora {

namespace {

using Clock = std::chrono::steady_clock;

const Clock::time_point kEpoch = Clock::now();

}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           kEpoch)
          .count());
}

uint64_t NowMicros() { return NowNanos() / 1000; }

void SpinUntilNanos(uint64_t deadline_ns) {
  // Spin for short waits; yield for longer ones. With only a couple of
  // physical cores, pure spinning across many coordinator threads would
  // serialize the whole simulation.
  constexpr uint64_t kSpinThresholdNs = 20'000;
  uint64_t now = NowNanos();
  while (now < deadline_ns) {
    if (deadline_ns - now > kSpinThresholdNs) {
      std::this_thread::yield();
    }
    now = NowNanos();
  }
}

void SpinForNanos(uint64_t delay_ns) {
  SpinUntilNanos(NowNanos() + delay_ns);
}

void SleepForMicros(uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace pandora

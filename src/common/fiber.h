#ifndef PANDORA_COMMON_FIBER_H_
#define PANDORA_COMMON_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace pandora {

/// Cooperative stackful fibers: the concurrency substrate that lets one OS
/// worker thread overlap the simulated RDMA waits of many in-flight
/// transactions, the way the paper's testbed overlaps its 128 latency-bound
/// coordinators over a handful of cores.
///
/// A FiberScheduler owns N fibers on ONE thread. Fibers never migrate
/// between threads and never run concurrently — every switch is explicit —
/// so code running inside fibers needs no synchronization against its
/// sibling fibers (cross-thread synchronization rules are unchanged).
///
/// The simulated fabric's waits (SpinUntilNanos / SleepForMicros, and
/// through them QueuePair::Wait, VerbBatch::Execute, OrderedBatch::Execute,
/// stall retries, and the system gate) consult the thread's active
/// scheduler: inside a fiber they suspend it with a ready-at deadline
/// instead of burning the core, and the scheduler resumes the
/// earliest-ready runnable fiber. A fiber is never resumed before its
/// deadline — the scheduler spins only when *nothing* is runnable — so
/// simulated-RTT accounting is identical to the blocking implementation;
/// only the real CPU time of the wait is reclaimed for other fibers.
///
/// Tail fairness: the ready queue is a min-heap on (deadline, yield seq),
/// so dispatch is earliest-deadline-first in O(log n) regardless of fiber
/// count. EDF alone cannot starve an overdue fiber, but two second-order
/// effects can still blow up the tail: (1) the worker thread itself gets
/// descheduled for a whole OS quantum on an oversubscribed host, stalling
/// every in-flight fiber at once, and (2) fibers keep *admitting* new work
/// while the scheduler is already behind on work it has admitted. The
/// scheduler therefore (a) measures the resume lag of every dispatch
/// (wall time between a fiber becoming runnable and actually resuming),
/// (b) optionally yields the OS thread on a fixed CPU cadence so a
/// co-scheduled sibling worker is never blocked for a full OS quantum, and
/// (c) offers PaceAdmission(), which lets a fiber donate its slice to the
/// backlog instead of starting new work whenever the oldest runnable
/// fiber is overdue past a configurable lag budget.
///
/// Threads that never install a scheduler (unit tests, the litmus
/// harness's lockstep slots, recovery and heartbeat threads) are
/// untouched: the wait hook is inert without a thread-local scheduler.
class FiberScheduler {
 public:
  struct Stats {
    /// Fiber suspensions through the wait hook.
    uint64_t yields = 0;
    /// Simulated wait nanoseconds suspended through the scheduler — the
    /// time the blocking implementation would have burned spinning.
    uint64_t wait_ns = 0;
    /// Wall nanoseconds the scheduler truly idled because no fiber was
    /// runnable yet. wait_ns / idle_ns is the overlap factor: ~1 means no
    /// overlap (a single fiber), ~N means N waits hidden behind each
    /// other.
    uint64_t idle_ns = 0;
    /// Fiber dispatches (resumes after a suspension; first runs excluded).
    uint64_t resumes = 0;
    /// Worst resume lag observed: wall nanoseconds between a fiber
    /// becoming runnable (its deadline passing) and the scheduler actually
    /// dispatching it. The starvation metric behind the fibers8 p99 gate.
    uint64_t max_resume_lag_ns = 0;
    /// Dispatches whose resume lag exceeded Options::lag_budget_ns.
    uint64_t lag_budget_overruns = 0;
    /// Times PaceAdmission() deferred new work because the oldest
    /// runnable fiber was overdue past the lag budget.
    uint64_t paced_admissions = 0;
    /// Cooperative OS-thread yields taken on the os_yield_every_ns cadence.
    uint64_t os_yields = 0;
  };

  static constexpr size_t kDefaultStackBytes = 256 * 1024;

  struct Options {
    size_t stack_bytes = kDefaultStackBytes;
    /// Resume lag past which PaceAdmission() defers new admissions (and
    /// past which a dispatch counts as a lag_budget_overrun). 0 disables
    /// pacing and overrun accounting; max_resume_lag_ns is always kept.
    uint64_t lag_budget_ns = 0;
    /// Yield the OS thread after at least this much scheduler CPU time,
    /// even when fibers are always runnable, so a sibling worker thread on
    /// an oversubscribed core is not stalled for a full OS quantum (the
    /// dominant fiber tail-latency term when threads > cores). 0 = never.
    uint64_t os_yield_every_ns = 0;
  };

  explicit FiberScheduler(size_t stack_bytes = kDefaultStackBytes);
  explicit FiberScheduler(const Options& options);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Registers a fiber; it starts running on the next Run(). Must be
  /// called from the thread that will call Run(), outside any fiber.
  void Spawn(std::function<void()> body);

  /// Runs every spawned fiber to completion, interleaving them at wait
  /// points. Installs this scheduler as the calling thread's active one
  /// for the duration. Not reentrant: nesting schedulers on one thread is
  /// a programming error.
  void Run();

  /// The calling thread's scheduler while inside Run(), else nullptr.
  static FiberScheduler* Active();

  /// True while a fiber body is executing (the wait hook fires only then).
  bool InFiber() const { return current_ != nullptr; }

  /// Suspends the current fiber until NowNanos() >= deadline_ns, running
  /// other fibers meanwhile. The wait hook's entry point; callable only
  /// from inside a fiber.
  void WaitUntilNanos(uint64_t deadline_ns);

  /// Admission pacing (bounded in-flight work): call from a fiber before
  /// starting a NEW unit of work. If the oldest runnable sibling is
  /// overdue past the lag budget, the calling fiber suspends for a short
  /// quantum — donating its slice to the backlog — and true is returned;
  /// the caller should re-check its own stop conditions before retrying.
  /// No-op (returns false) when no lag budget is configured or nothing is
  /// overdue. Unlike WaitUntilNanos, the pacing suspension is NOT counted
  /// as simulated wait (a blocking implementation has no analogue).
  bool PaceAdmission();

  const Stats& stats() const { return stats_; }
  size_t num_fibers() const { return fibers_.size(); }

 private:
  struct Fiber;

  static void Trampoline(unsigned int hi, unsigned int lo);
  void SwitchIn(Fiber* fiber);         // Scheduler context -> fiber.
  void SwitchOut(Fiber* fiber);        // Fiber -> scheduler context.
  void FinishSwitchIntoFiber(Fiber* fiber);  // Sanitizer arrival hook.
  /// Pops the earliest-deadline fiber (FIFO tie-break) off the ready
  /// heap; nullptr when no fiber remains. O(log n).
  Fiber* PickNext();
  static bool ResumesAfter(const Fiber* a, const Fiber* b);
  /// Re-queues the current fiber with the given deadline and switches to
  /// the scheduler. Wait/pacing accounting is done by the callers.
  void SuspendCurrent(uint64_t deadline_ns);
  void PushReady(Fiber* fiber);
  void MaybeYieldOsThread(uint64_t now_ns);

  Options options_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  /// Min-heap of runnable/suspended fibers on (ready_at_ns, seq).
  std::vector<Fiber*> ready_;
  Fiber* current_ = nullptr;
  ucontext_t main_context_;
  uint64_t next_seq_ = 0;
  uint64_t last_os_yield_ns_ = 0;
  Stats stats_;

  // Sanitizer bookkeeping for the scheduler (thread) context.
  void* main_fake_stack_ = nullptr;
  const void* main_stack_bottom_ = nullptr;
  size_t main_stack_size_ = 0;
  void* main_tsan_fiber_ = nullptr;
};

}  // namespace pandora

#endif  // PANDORA_COMMON_FIBER_H_

#ifndef PANDORA_COMMON_FIBER_H_
#define PANDORA_COMMON_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace pandora {

/// Cooperative stackful fibers: the concurrency substrate that lets one OS
/// worker thread overlap the simulated RDMA waits of many in-flight
/// transactions, the way the paper's testbed overlaps its 128 latency-bound
/// coordinators over a handful of cores.
///
/// A FiberScheduler owns N fibers on ONE thread. Fibers never migrate
/// between threads and never run concurrently — every switch is explicit —
/// so code running inside fibers needs no synchronization against its
/// sibling fibers (cross-thread synchronization rules are unchanged).
///
/// The simulated fabric's waits (SpinUntilNanos / SleepForMicros, and
/// through them QueuePair::Wait, VerbBatch::Execute, OrderedBatch::Execute,
/// stall retries, and the system gate) consult the thread's active
/// scheduler: inside a fiber they suspend it with a ready-at deadline
/// instead of burning the core, and the scheduler resumes the
/// earliest-ready runnable fiber. A fiber is never resumed before its
/// deadline — the scheduler spins only when *nothing* is runnable — so
/// simulated-RTT accounting is identical to the blocking implementation;
/// only the real CPU time of the wait is reclaimed for other fibers.
///
/// Threads that never install a scheduler (unit tests, the litmus
/// harness's lockstep slots, recovery and heartbeat threads) are
/// untouched: the wait hook is inert without a thread-local scheduler.
class FiberScheduler {
 public:
  struct Stats {
    /// Fiber suspensions through the wait hook.
    uint64_t yields = 0;
    /// Simulated wait nanoseconds suspended through the scheduler — the
    /// time the blocking implementation would have burned spinning.
    uint64_t wait_ns = 0;
    /// Wall nanoseconds the scheduler truly idled because no fiber was
    /// runnable yet. wait_ns / idle_ns is the overlap factor: ~1 means no
    /// overlap (a single fiber), ~N means N waits hidden behind each
    /// other.
    uint64_t idle_ns = 0;
  };

  static constexpr size_t kDefaultStackBytes = 256 * 1024;

  explicit FiberScheduler(size_t stack_bytes = kDefaultStackBytes);
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Registers a fiber; it starts running on the next Run(). Must be
  /// called from the thread that will call Run(), outside any fiber.
  void Spawn(std::function<void()> body);

  /// Runs every spawned fiber to completion, interleaving them at wait
  /// points. Installs this scheduler as the calling thread's active one
  /// for the duration. Not reentrant: nesting schedulers on one thread is
  /// a programming error.
  void Run();

  /// The calling thread's scheduler while inside Run(), else nullptr.
  static FiberScheduler* Active();

  /// True while a fiber body is executing (the wait hook fires only then).
  bool InFiber() const { return current_ != nullptr; }

  /// Suspends the current fiber until NowNanos() >= deadline_ns, running
  /// other fibers meanwhile. The wait hook's entry point; callable only
  /// from inside a fiber.
  void WaitUntilNanos(uint64_t deadline_ns);

  const Stats& stats() const { return stats_; }
  size_t num_fibers() const { return fibers_.size(); }

 private:
  struct Fiber;

  static void Trampoline(unsigned int hi, unsigned int lo);
  void SwitchIn(Fiber* fiber);         // Scheduler context -> fiber.
  void SwitchOut(Fiber* fiber);        // Fiber -> scheduler context.
  void FinishSwitchIntoFiber(Fiber* fiber);  // Sanitizer arrival hook.
  Fiber* PickNext();  // Earliest-deadline non-done fiber, FIFO tie-break.

  size_t stack_bytes_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  Fiber* current_ = nullptr;
  ucontext_t main_context_;
  uint64_t next_seq_ = 0;
  Stats stats_;

  // Sanitizer bookkeeping for the scheduler (thread) context.
  void* main_fake_stack_ = nullptr;
  const void* main_stack_bottom_ = nullptr;
  size_t main_stack_size_ = 0;
  void* main_tsan_fiber_ = nullptr;
};

}  // namespace pandora

#endif  // PANDORA_COMMON_FIBER_H_

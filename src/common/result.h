#ifndef PANDORA_COMMON_RESULT_H_
#define PANDORA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pandora {

/// Either a value of type T or a non-OK Status, in the style of
/// arrow::Result. A Result constructed from a value is OK; a Result
/// constructed from a Status must carry a non-OK status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pandora

/// Assigns the value of a Result expression to `lhs`, or early-returns its
/// Status if the Result holds an error.
#define PANDORA_ASSIGN_OR_RETURN(lhs, expr)          \
  PANDORA_ASSIGN_OR_RETURN_IMPL_(                    \
      PANDORA_CONCAT_(_result_, __COUNTER__), lhs, expr)

#define PANDORA_CONCAT_INNER_(a, b) a##b
#define PANDORA_CONCAT_(a, b) PANDORA_CONCAT_INNER_(a, b)
#define PANDORA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#endif  // PANDORA_COMMON_RESULT_H_

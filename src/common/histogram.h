#ifndef PANDORA_COMMON_HISTOGRAM_H_
#define PANDORA_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace pandora {

/// Log-bucketed latency histogram: 16 sub-buckets per power of two, so a
/// bucket spans at most 1/16 of its value (~6.25%), and percentiles are
/// linearly interpolated inside the target bucket — tight enough that
/// millisecond-scale p99 regression gates are not quantization artifacts.
/// Single-writer; merge across threads at the end of a run.
class LatencyHistogram {
 public:
  LatencyHistogram() { counts_.fill(0); }

  void Record(uint64_t nanos);
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return total_; }
  uint64_t sum_nanos() const { return sum_; }
  double MeanNanos() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(total_);
  }

  /// Approximate latency at percentile `p` in [0, 100]. Interpolated
  /// within the target bucket; max relative error is bounded by the
  /// bucket width (1/16 of the value).
  uint64_t PercentileNanos(double p) const;

  uint64_t MaxNanos() const { return max_; }

 private:
  static constexpr int kSubBuckets = 16;
  static constexpr int kSubBucketShift = 4;  // log2(kSubBuckets)
  static constexpr int kOctaves = 64;
  static constexpr int kBuckets = kSubBuckets * kOctaves;

  static int BucketFor(uint64_t nanos);
  static uint64_t BucketLowerBound(int bucket);

  std::array<uint64_t, kBuckets> counts_;
  uint64_t total_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace pandora

#endif  // PANDORA_COMMON_HISTOGRAM_H_

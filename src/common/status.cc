#include "common/status.h"

namespace pandora {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kPermissionDenied:
      return "PermissionDenied";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace pandora

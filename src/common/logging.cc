#include "common/logging.h"

#include <cstring>
#include <mutex>

#include "common/clock.h"

namespace pandora {
namespace log_internal {

std::atomic<int>& MinLevel() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarning)};
  return level;
}

void Emit(LogLevel level, const char* file, int line,
          const std::string& msg) {
  static std::mutex mu;
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarning:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kOff:
      return;
  }
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %9.3fms %s:%d] %s\n", tag,
               static_cast<double>(NowNanos()) / 1e6, base, line,
               msg.c_str());
}

}  // namespace log_internal

void SetLogLevel(LogLevel level) {
  log_internal::MinLevel().store(static_cast<int>(level),
                                 std::memory_order_relaxed);
}

}  // namespace pandora

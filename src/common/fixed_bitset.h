#ifndef PANDORA_COMMON_FIXED_BITSET_H_
#define PANDORA_COMMON_FIXED_BITSET_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pandora {

/// Compact, lock-free bitset with a compile-time number of bits.
///
/// This is the representation the paper prescribes for the *failed-ids* set
/// (§3.1.2): 64K entries so that the per-lock-conflict membership check stays
/// O(1) regardless of how many compute servers have failed over the lifetime
/// of the system. Reads are wait-free relaxed atomic loads (the check is on
/// the transaction fast path); writes are rare (one per failure).
template <size_t kBits>
class AtomicFixedBitset {
 public:
  static_assert(kBits % 64 == 0, "bit count must be a multiple of 64");

  AtomicFixedBitset() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  // Bitsets are identity objects shared across threads; no copies.
  AtomicFixedBitset(const AtomicFixedBitset&) = delete;
  AtomicFixedBitset& operator=(const AtomicFixedBitset&) = delete;

  static constexpr size_t size() { return kBits; }

  void Set(size_t bit) {
    words_[bit / 64].fetch_or(1ULL << (bit % 64), std::memory_order_release);
  }

  void Clear(size_t bit) {
    words_[bit / 64].fetch_and(~(1ULL << (bit % 64)),
                               std::memory_order_release);
  }

  bool Test(size_t bit) const {
    return (words_[bit / 64].load(std::memory_order_acquire) >>
            (bit % 64)) &
           1ULL;
  }

  /// Number of set bits. O(kBits/64); not on the fast path.
  size_t Count() const {
    size_t count = 0;
    for (const auto& w : words_) {
      count += static_cast<size_t>(
          __builtin_popcountll(w.load(std::memory_order_acquire)));
    }
    return count;
  }

  void Reset() {
    for (auto& w : words_) w.store(0, std::memory_order_release);
  }

  /// Copies the contents of `other` into this bitset (used when a compute
  /// server receives the initial failed-ids configuration from the FD).
  void CopyFrom(const AtomicFixedBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i].store(other.words_[i].load(std::memory_order_acquire),
                      std::memory_order_release);
    }
  }

 private:
  std::array<std::atomic<uint64_t>, kBits / 64> words_;
};

/// The paper uses 16-bit coordinator-ids, giving 64K ids over the lifetime
/// of the system (§3.1.2 "Recycling coordinator-ids").
using FailedIdBitset = AtomicFixedBitset<65536>;

/// Plain (single-threaded) fixed bitset for hot-path set arithmetic, e.g.
/// deduplicating the memory servers touched by a transaction's write set
/// without a per-commit allocate + sort + unique pass. ForEachSet visits set
/// bits in ascending order via a word-at-a-time count-trailing-zeros walk,
/// so callers that need a sorted id list get one for free.
template <size_t kBits>
class FixedBitset {
 public:
  static_assert(kBits % 64 == 0, "bit count must be a multiple of 64");

  static constexpr size_t size() { return kBits; }

  void Set(size_t bit) { words_[bit / 64] |= 1ULL << (bit % 64); }

  void Clear(size_t bit) { words_[bit / 64] &= ~(1ULL << (bit % 64)); }

  bool Test(size_t bit) const {
    return (words_[bit / 64] >> (bit % 64)) & 1ULL;
  }

  size_t Count() const {
    size_t count = 0;
    for (const uint64_t w : words_) {
      count += static_cast<size_t>(__builtin_popcountll(w));
    }
    return count;
  }

  void Reset() { words_.fill(0); }

  /// Calls fn(bit) for every set bit, in ascending bit order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i];
      while (w != 0) {
        const int tz = __builtin_ctzll(w);
        fn(i * 64 + static_cast<size_t>(tz));
        w &= w - 1;
      }
    }
  }

 private:
  std::array<uint64_t, kBits / 64> words_{};
};

}  // namespace pandora

#endif  // PANDORA_COMMON_FIXED_BITSET_H_

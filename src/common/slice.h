#ifndef PANDORA_COMMON_SLICE_H_
#define PANDORA_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace pandora {

/// Non-owning view over a byte range, in the style of rocksdb::Slice.
/// The referenced memory must outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(s.data()), size_(s.size()) {}
  Slice(std::string_view s)  // NOLINT(runtime/explicit)
      : data_(s.data()), size_(s.size()) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace pandora

#endif  // PANDORA_COMMON_SLICE_H_
